// Certification window: the recent committed-transaction list "DB" of
// Algorithm 2.
//
// Certifying a delivered transaction t compares it against every
// transaction committed after t's snapshot (DB[t.st[p]..SC]). Servers only
// keep the last `capacity` records (the paper's prototype keeps the last K
// bloom filters); a transaction whose snapshot predates the window can no
// longer be certified and must abort.
//
// Records store both the readset and writeset (as exact or bloom KeySets):
// local certification needs committed writesets, global certification
// additionally intersects against committed readsets (Section III-B).
#pragma once

#include <cstdint>
#include <deque>

#include "storage/mvstore.h"
#include "util/bloom.h"

namespace sdur::storage {

struct CommitRecord {
  std::uint64_t txid = 0;
  bool global = false;
  util::KeySet readset;
  util::KeySet writeset;
};

class CommitWindow {
 public:
  explicit CommitWindow(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Appends the record for the commit that produced snapshot `version`.
  /// Versions must be pushed in strictly increasing order.
  void push(Version version, CommitRecord rec);

  /// Oldest / newest record versions in the window (0 if empty).
  Version oldest() const { return records_.empty() ? 0 : base_; }
  Version newest() const {
    return records_.empty() ? 0 : base_ + static_cast<Version>(records_.size()) - 1;
  }

  /// True if a transaction with snapshot `st` can still be certified, i.e.
  /// every commit record in (st, newest] is in the window.
  bool covers(Version st) const {
    return records_.empty() || st + 1 >= base_;
  }

  /// Invokes `fn(record)` for every commit with version in (st, newest],
  /// stopping early if `fn` returns false. Returns false if it stopped
  /// early, true otherwise. Precondition: covers(st).
  template <typename Fn>
  bool scan_after(Version st, Fn&& fn) const {
    if (records_.empty()) return true;
    Version from = st + 1;
    if (from < base_) from = base_;  // caller should have checked covers()
    for (auto i = static_cast<std::size_t>(from - base_); i < records_.size(); ++i) {
      if (!fn(records_[i])) return false;
    }
    return true;
  }

  std::size_t size() const { return records_.size(); }

 private:
  std::size_t capacity_;
  Version base_ = 0;  // version of records_.front()
  std::deque<CommitRecord> records_;
};

}  // namespace sdur::storage
