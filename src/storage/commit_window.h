// Certification window: the recent committed-transaction list "DB" of
// Algorithm 2.
//
// Certifying a delivered transaction t compares it against every
// transaction committed after t's snapshot (DB[t.st[p]..SC]). Servers only
// keep the last `capacity` records (the paper's prototype keeps the last K
// bloom filters); a transaction whose snapshot predates the window can no
// longer be certified and must abort.
//
// Records store both the readset and writeset (as exact or bloom KeySets):
// local certification needs committed writesets, global certification
// additionally intersects against committed readsets (Section III-B).
//
// STORAGE. Records live in a ring-buffer arena sized to the capacity:
// eviction recycles the oldest slot in place for the incoming record
// instead of churning deque nodes, so a saturated window performs zero
// container allocations per push.
//
// CONFLICT CHECKS. conflicts() answers the certification question through
// the per-key CertIndex (storage/cert_index.h) — O(|rs| + |ws|) probes
// plus a scan of only the bloom-encoded suffix — with an SDUR_AUDIT
// cross-check against the legacy full scan. conflicts_scan() and
// conflicts_indexed() expose the two strategies separately for the
// equivalence property tests and bench/cert_perf.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "audit/audit.h"
#include "storage/cert_index.h"
#include "storage/mvstore.h"
#include "util/bloom.h"

namespace sdur::storage {

struct CommitRecord {
  std::uint64_t txid = 0;
  bool global = false;
  util::KeySet readset;
  util::KeySet writeset;
};

class CommitWindow {
 public:
  explicit CommitWindow(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Appends the record for the commit that produced snapshot `version`.
  /// Versions must be pushed in strictly increasing order.
  void push(Version version, CommitRecord rec);

  /// Oldest / newest record versions in the window (0 if empty).
  Version oldest() const { return count_ == 0 ? 0 : base_; }
  Version newest() const {
    return count_ == 0 ? 0 : base_ + static_cast<Version>(count_) - 1;
  }

  /// True if a transaction with snapshot `st` can still be certified, i.e.
  /// every commit record in (st, newest] is in the window. Written without
  /// `st + 1` so st == INT64_MAX cannot overflow.
  bool covers(Version st) const { return count_ == 0 || st >= base_ - 1; }

  /// Invokes `fn(record)` for every commit with version in (st, newest],
  /// stopping early if `fn` returns false. Returns false if it stopped
  /// early, true otherwise. Precondition: covers(st) — violating it is an
  /// audit violation (the scan then starts at the window base, silently
  /// exempting the evicted records).
  template <typename Fn>
  bool scan_after(Version st, Fn&& fn) const {
    if (count_ == 0 || st >= newest()) return true;
    // st < newest <= INT64_MAX, so st + 1 cannot overflow here.
    Version from = st + 1;
    SDUR_AUDIT_CHECK("storage", "scan-covers-precondition", from >= base_,
                     "scan_after(st=" << st << ") predates window base " << base_
                                      << ": evicted commits are exempt from this scan");
    if (from < base_) from = base_;
    for (Version v = from; v <= newest(); ++v) {
      if (!fn(at(v))) return false;
    }
    return true;
  }

  /// Certification conflict check for a transaction with readset `rs`,
  /// writeset `ws` and snapshot `st`: true iff some record in (st, newest]
  /// wrote a key in `rs`, or — for a global transaction — read a key in
  /// `ws` (Section III-B). Indexed; audit builds cross-check the verdict
  /// against the legacy scan. Precondition: covers(st).
  bool conflicts(const util::KeySet& rs, const util::KeySet& ws, bool global, Version st) const {
    const bool indexed = conflicts_indexed(rs, ws, global, st);
    SDUR_AUDIT_CHECK("storage", "index-scan-equivalence",
                     indexed == conflicts_scan(rs, ws, global, st),
                     "indexed certification verdict " << (indexed ? "conflict" : "clear")
                                                      << " diverges from window scan (st=" << st
                                                      << ", window [" << oldest() << ", "
                                                      << newest() << "])");
    return indexed;
  }

  /// The legacy strategy: full scan of (st, newest].
  bool conflicts_scan(const util::KeySet& rs, const util::KeySet& ws, bool global,
                      Version st) const {
    bool hit = false;
    scan_after(st, [&](const CommitRecord& r) {
      if (rs.intersects(r.writeset) || (global && ws.intersects(r.readset))) {
        hit = true;
        return false;
      }
      return true;
    });
    return hit;
  }

  /// The indexed strategy: key probes plus a scan over only the
  /// bloom-encoded suffix (bit-identical verdict to conflicts_scan).
  bool conflicts_indexed(const util::KeySet& rs, const util::KeySet& ws, bool global,
                         Version st) const;

  std::size_t size() const { return count_; }
  const CertIndex& index() const { return index_; }

 private:
  const CommitRecord& at(Version v) const {
    return ring_[(head_ + static_cast<std::size_t>(v - base_)) % ring_.size()];
  }

  std::size_t capacity_;
  std::vector<CommitRecord> ring_;  // arena; slot i reused as the window slides
  std::size_t head_ = 0;            // ring index of the oldest record
  std::size_t count_ = 0;
  Version base_ = 0;  // version of the oldest record
  CertIndex index_;
};

}  // namespace sdur::storage
