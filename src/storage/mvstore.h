// Multiversion key-value store (one per server, holding one partition).
//
// Matches the paper's database model (Section II-B): each item is a tuple
// (key, value, version) and the store is multiversion — reads at snapshot
// `st` return the most recent version <= st, so transactions observe a
// consistent view of the partition as of their first read.
//
// Versions are the partition's snapshot counter values: committing
// transaction t under snapshot counter SC writes its updates with version
// SC+1 and then advances the counter, so a transaction that began at
// snapshot SC never observes t's writes.
//
// HOT PATH. get()/put() run once per read / per committed write across
// every simulated server, so the store avoids std::unordered_map's
// per-node allocations: keys live in an open-addressing flat table
// (storage/flat_table.h) and each key's version chain keeps its first two
// versions inline — most keys never see more than a couple of live
// versions between GC horizons, so the common chain never touches the
// heap. Chains spill into a vector past the inline slots.
#pragma once

#include <cstdint>

#include "storage/flat_table.h"
#include "util/bytes.h"
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sdur::storage {

using Key = std::uint64_t;
/// A snapshot-counter value; version 0 is "initial load".
using Version = std::int64_t;

struct VersionedValue {
  Version version = 0;
  std::string value;
};

/// A key's versions in ascending version order: `kInline` slots stored in
/// place, the rest spilled to a heap vector. Indexable like a vector.
class VersionChain {
 public:
  static constexpr std::size_t kInline = 2;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const VersionedValue& operator[](std::size_t i) const {
    return i < kInline ? inline_[i] : spill_[i - kInline];
  }
  VersionedValue& operator[](std::size_t i) {
    return i < kInline ? inline_[i] : spill_[i - kInline];
  }
  const VersionedValue& front() const { return (*this)[0]; }
  const VersionedValue& back() const { return (*this)[size_ - 1]; }
  VersionedValue& back() { return (*this)[size_ - 1]; }

  void push_back(VersionedValue vv) {
    if (size_ < kInline) {
      inline_[size_] = std::move(vv);
    } else {
      spill_.push_back(std::move(vv));
    }
    ++size_;
  }

  void pop_back() {
    --size_;
    if (size_ >= kInline) {
      spill_.pop_back();
    } else {
      inline_[size_] = VersionedValue{};
    }
  }

  /// Drops the first `n` versions (GC of pre-horizon versions).
  void drop_front(std::size_t n) {
    if (n == 0) return;
    for (std::size_t i = n; i < size_; ++i) (*this)[i - n] = std::move((*this)[i]);
    for (std::size_t i = 0; i < n; ++i) pop_back();
  }

  void reserve(std::size_t n) {
    if (n > kInline) spill_.reserve(n - kInline);
  }

  /// Read-only forward iteration in version order (inline slots first,
  /// then the spill vector).
  class const_iterator {
   public:
    const_iterator(const VersionChain* chain, std::size_t i) : chain_(chain), i_(i) {}
    const VersionedValue& operator*() const { return (*chain_)[i_]; }
    const VersionedValue* operator->() const { return &(*chain_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const VersionChain* chain_;
    std::size_t i_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }

  /// Index of the first version > `snapshot` (== size() if none).
  std::size_t upper_bound(Version snapshot) const {
    std::size_t lo = 0, hi = size_;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if ((*this)[mid].version <= snapshot) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::size_t size_ = 0;
  VersionedValue inline_[kInline];
  std::vector<VersionedValue> spill_;
};

class MVStore {
 public:
  /// Most recent version of `k` with version <= snapshot.
  std::optional<VersionedValue> get(Key k, Version snapshot) const;

  /// Latest version of `k`.
  std::optional<VersionedValue> get_latest(Key k) const;

  /// Installs `value` for `k` at `version`. Versions per key must be
  /// non-decreasing (commits are applied in snapshot-counter order).
  void put(Key k, std::string value, Version version);

  /// Bulk load at version 0 (initial database population).
  void load(Key k, std::string value) { put(k, std::move(value), 0); }

  // --- Speculative versions (cfg.speculation; DESIGN.md "Speculative
  // global commit") ---------------------------------------------------------
  // A speculative put is a normal chain insert plus an undo-log record
  // keyed by version: promote() discharges the record (the versions become
  // permanent), rollback() erases the version from every written key's
  // chain. Erasing mid-chain keeps per-key version order intact, so the
  // version-order audit in put() stays authoritative. Legacy runs never
  // call these and pay nothing.

  /// put() plus an undo-log record for `version`.
  void put_speculative(Key k, std::string value, Version version);

  /// Makes every write at `version` permanent; returns the number of
  /// undo-log records discharged (0 if `version` was never speculative).
  std::size_t promote(Version version);

  /// Erases every speculative write at `version` and discharges its
  /// undo-log record; returns the number of chain entries removed.
  std::size_t rollback(Version version);

  /// Re-registers undo-log records without writing (checkpoint install:
  /// the chains already carry the speculative versions).
  void mark_speculative(Version version, const std::vector<Key>& ks);

  /// Outstanding speculative versions.
  std::size_t speculative_count() const { return spec_log_.size(); }

  /// Every outstanding speculative version must be above `floor` — the
  /// resolved (stable) prefix must never retain speculative state. A
  /// violation means a rollback or promote was missed; audited and fatal.
  void audit_spec_floor(Version floor) const;

  /// Drops every version newer than `horizon` (crash recovery rolls the
  /// store back to the initial load, then deliveries are replayed).
  void truncate_above(Version horizon);

  /// Drops versions older than `horizon` for every key, keeping at least
  /// the newest one (snapshot reads older than the horizon become
  /// unanswerable; the certification window bounds how old a snapshot can
  /// be anyway).
  void gc(Version horizon);

  std::size_t key_count() const { return map_.size(); }
  std::size_t version_count() const { return versions_; }

  /// Serializes the full store into a checkpoint / replaces it from one.
  void encode(util::Writer& w) const;
  void install(util::Reader& r);

  /// All keys present in the store, in hash order — callers that care
  /// about determinism must sort (encode() does).
  std::vector<Key> keys() const {
    std::vector<Key> out;
    out.reserve(map_.size());
    map_.for_each([&](Key k, const VersionChain&) { out.push_back(k); });
    return out;
  }

  /// All versions of a key in ascending version order (nullptr if absent).
  /// Used by tests (e.g. to recover the per-key write order for the
  /// serializability checker).
  const VersionChain* versions_of(Key k) const { return map_.find(k); }

 private:
  FlatTable<VersionChain> map_;
  std::size_t versions_ = 0;
  /// Undo log: speculative version -> keys written at it (ascending
  /// version order; std::map so encode/iteration are deterministic).
  std::map<Version, std::vector<Key>> spec_log_;
};

}  // namespace sdur::storage
