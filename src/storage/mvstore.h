// Multiversion key-value store (one per server, holding one partition).
//
// Matches the paper's database model (Section II-B): each item is a tuple
// (key, value, version) and the store is multiversion — reads at snapshot
// `st` return the most recent version <= st, so transactions observe a
// consistent view of the partition as of their first read.
//
// Versions are the partition's snapshot counter values: committing
// transaction t under snapshot counter SC writes its updates with version
// SC+1 and then advances the counter, so a transaction that began at
// snapshot SC never observes t's writes.
#pragma once

#include <cstdint>

#include "util/bytes.h"
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace sdur::storage {

using Key = std::uint64_t;
/// A snapshot-counter value; version 0 is "initial load".
using Version = std::int64_t;

struct VersionedValue {
  Version version = 0;
  std::string value;
};

class MVStore {
 public:
  /// Most recent version of `k` with version <= snapshot.
  std::optional<VersionedValue> get(Key k, Version snapshot) const;

  /// Latest version of `k`.
  std::optional<VersionedValue> get_latest(Key k) const;

  /// Installs `value` for `k` at `version`. Versions per key must be
  /// non-decreasing (commits are applied in snapshot-counter order).
  void put(Key k, std::string value, Version version);

  /// Bulk load at version 0 (initial database population).
  void load(Key k, std::string value) { put(k, std::move(value), 0); }

  /// Drops every version newer than `horizon` (crash recovery rolls the
  /// store back to the initial load, then deliveries are replayed).
  void truncate_above(Version horizon);

  /// Drops versions older than `horizon` for every key, keeping at least
  /// the newest one (snapshot reads older than the horizon become
  /// unanswerable; the certification window bounds how old a snapshot can
  /// be anyway).
  void gc(Version horizon);

  std::size_t key_count() const { return map_.size(); }
  std::size_t version_count() const { return versions_; }

  /// Serializes the full store into a checkpoint / replaces it from one.
  void encode(util::Writer& w) const;
  void install(util::Reader& r);

  /// All keys present in the store, in hash-map order — callers that care
  /// about determinism must sort (encode() does).
  std::vector<Key> keys() const {
    std::vector<Key> out;
    out.reserve(map_.size());
    for (const auto& [k, v] : map_) out.push_back(k);
    return out;
  }

  /// All versions of a key in ascending version order (nullptr if absent).
  /// Used by tests (e.g. to recover the per-key write order for the
  /// serializability checker).
  const std::vector<VersionedValue>* versions_of(Key k) const {
    auto it = map_.find(k);
    return it == map_.end() ? nullptr : &it->second;
  }

 private:
  // Versions stored ascending; lookups binary-search from the back.
  std::unordered_map<Key, std::vector<VersionedValue>> map_;
  std::size_t versions_ = 0;
};

}  // namespace sdur::storage
