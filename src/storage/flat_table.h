// Open-addressing hash table for the storage hot paths.
//
// A minimal flat map from 64-bit keys to an arbitrary value type: one
// contiguous slot array, linear probing, power-of-two capacity, backward-
// shift deletion (no tombstones, so probe chains never rot). It replaces
// std::unordered_map where the per-node allocation and pointer chasing
// dominate (MVStore::get/put, the certification index): a probe touches
// one cache line in the common case instead of a bucket head plus a heap
// node.
//
// DETERMINISM. The table deliberately exposes no iterators. The only way
// to walk it is for_each(), which visits slots in hash/probe order — an
// order that depends on insertion history and must never leak into
// protocol decisions or serialized state. Callers either sort what they
// collect (MVStore::encode) or perform provably order-insensitive per-key
// mutations (MVStore::gc). The certification index (cert_index.h) never
// iterates at all — probes only — and tools/lint_determinism.py enforces
// that (rule cert-index-iteration).
#pragma once

#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/hash.h"

namespace sdur::storage {

template <typename V>
class FlatTable {
 public:
  using KeyType = std::uint64_t;

  FlatTable() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pointer to the value for `k`, or nullptr if absent.
  const V* find(KeyType k) const {
    if (slots_.empty()) return nullptr;
    std::size_t i = bucket(k);
    while (slots_[i].used) {
      if (slots_[i].key == k) return &slots_[i].value;
      i = (i + 1) & mask();
    }
    return nullptr;
  }
  V* find(KeyType k) { return const_cast<V*>(std::as_const(*this).find(k)); }

  /// Value for `k`, default-constructed and inserted if absent.
  V& operator[](KeyType k) {
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) grow();
    std::size_t i = bucket(k);
    while (slots_[i].used) {
      if (slots_[i].key == k) return slots_[i].value;
      i = (i + 1) & mask();
    }
    slots_[i].used = true;
    slots_[i].key = k;
    slots_[i].value = V{};
    ++size_;
    return slots_[i].value;
  }

  /// Removes `k`; returns false if absent. Backward-shift deletion keeps
  /// every remaining probe chain contiguous.
  bool erase(KeyType k) {
    if (slots_.empty()) return false;
    std::size_t i = bucket(k);
    while (true) {
      if (!slots_[i].used) return false;
      if (slots_[i].key == k) break;
      i = (i + 1) & mask();
    }
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask();
      if (!slots_[j].used) break;
      const std::size_t home = bucket(slots_[j].key);
      // Slot j may fill the hole at i only if i lies on j's probe path
      // (cyclically between j's home bucket and j).
      if (((j - i) & mask()) <= ((j - home) & mask())) {
        slots_[i].key = slots_[j].key;
        slots_[i].value = std::move(slots_[j].value);
        i = j;
      }
    }
    slots_[i].used = false;
    slots_[i].value = V{};  // release any heap buffers the value held
    --size_;
    return true;
  }

  void clear() {
    slots_.clear();
    size_ = 0;
  }

  void reserve(std::size_t n) {
    std::size_t cap = 16;
    while (n * 4 > cap * 3) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  /// Visits every (key, value) in HASH ORDER — see the determinism note in
  /// the header comment. `fn(key, value)`; the mutable overload may change
  /// values but must not insert or erase.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.used) fn(s.key, s.value);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.used) fn(s.key, s.value);
    }
  }

 private:
  struct Slot {
    KeyType key = 0;
    V value{};
    bool used = false;
  };

  std::size_t mask() const { return slots_.size() - 1; }
  std::size_t bucket(KeyType k) const { return util::mix64(k) & mask(); }

  void grow() { rehash(slots_.empty() ? 16 : slots_.size() * 2); }

  void rehash(std::size_t cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    size_ = 0;
    for (Slot& s : old) {
      if (s.used) (*this)[s.key] = std::move(s.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace sdur::storage
