#include "storage/cert_index.h"

namespace sdur::storage {

namespace {

/// A set participates in the key index iff it can be enumerated. Empty
/// bloom sets are treated as exact: they intersect nothing either way.
bool indexable(const util::KeySet& s) { return !s.is_bloom() || s.empty(); }

}  // namespace

void CertIndex::insert(Version v, const util::KeySet& readset, const util::KeySet& writeset) {
  if (indexable(readset)) {
    for (std::uint64_t k : readset.keys()) table_[k].reader = v;
  } else {
    bloom_rs_.push_back(v);
  }
  if (indexable(writeset)) {
    for (std::uint64_t k : writeset.keys()) table_[k].writer = v;
  } else {
    bloom_ws_.push_back(v);
  }
}

void CertIndex::evict(Version v, const util::KeySet& readset, const util::KeySet& writeset) {
  if (indexable(readset)) {
    for (std::uint64_t k : readset.keys()) {
      Entry* e = table_.find(k);
      // The entry survives eviction iff a newer record also reads k (its
      // recorded version then exceeds the evicted one).
      if (e != nullptr && e->reader == v) {
        e->reader = kNone;
        if (e->writer == kNone) table_.erase(k);
      }
    }
  } else {
    while (!bloom_rs_.empty() && bloom_rs_.front() <= v) bloom_rs_.pop_front();
  }
  if (indexable(writeset)) {
    for (std::uint64_t k : writeset.keys()) {
      Entry* e = table_.find(k);
      if (e != nullptr && e->writer == v) {
        e->writer = kNone;
        if (e->reader == kNone) table_.erase(k);
      }
    }
  } else {
    while (!bloom_ws_.empty() && bloom_ws_.front() <= v) bloom_ws_.pop_front();
  }
}

void CertIndex::clear() {
  table_.clear();
  bloom_rs_.clear();
  bloom_ws_.clear();
}

bool CertIndex::reads_conflict(const util::KeySet& readset, Version st) const {
  for (std::uint64_t k : readset.keys()) {
    ++probes_;
    const Entry* e = table_.find(k);
    if (e != nullptr && e->writer > st) return true;
  }
  return false;
}

bool CertIndex::writes_conflict(const util::KeySet& writeset, Version st) const {
  for (std::uint64_t k : writeset.keys()) {
    ++probes_;
    const Entry* e = table_.find(k);
    if (e != nullptr && e->reader > st) return true;
  }
  return false;
}

}  // namespace sdur::storage
