// Indexed certification: per-key last-writer / last-reader version index
// over a window of commit records.
//
// Certifying a transaction t with snapshot st against a window of commit
// records asks two existence questions (Algorithm 2 lines 46-47 plus the
// Section III-B global check):
//
//   A. does any record with version > st have a writeset intersecting
//      rs(t)?
//   B. (global t only) does any record with version > st have a readset
//      intersecting ws(t)?
//
// The classic implementation scans every record in (st, SC] — O(window
// depth x set size) per delivery, the serial heart of deferred update
// replication. This index answers both questions with O(|rs| + |ws|) hash
// probes instead: for every key it tracks the *largest* window version
// whose writeset (resp. readset) contains the key, so question A becomes
// "exists k in rs(t) with last_writer[k] > st" — the same boolean, because
// an intersection with *some* record newer than st exists iff the newest
// writer of *some* probed key is newer than st.
//
// Bloom-encoded sets cannot be enumerated into a key index. The index
// keeps a per-mode strategy, preserving bit-identical verdicts:
//
//   * records with an exact set feed the key index;
//   * records with a bloom set are remembered in an ascending version list
//     (the "bloom suffix"); the caller scans only those records with the
//     original KeySet::intersects test;
//   * a *probe* set that is bloom-encoded cannot drive key probes at all —
//     the caller falls back to the legacy scan for that component.
//
// The index is maintained incrementally: insert() on commit, evict() when
// the window drops its oldest record (the evicted record's sets are
// re-presented, so a key's entry is erased exactly when its newest
// reader/writer leaves the window), clear()+reinsert on checkpoint
// install. Consumers (sdur::Certifier, storage::CommitWindow, the P-DUR
// pdur::ParallelWindow lanes) compose these pieces and cross-check the
// result against the legacy scan under SDUR_AUDIT
// ("index-scan-equivalence").
//
// DETERMINISM. The index is probe-only: no operation iterates the hash
// table (tools/lint_determinism.py rule cert-index-iteration), so hash
// order cannot leak into verdicts. The bloom suffix lists are kept in
// version order by construction.
#pragma once

#include <cstdint>
#include <deque>

#include "storage/flat_table.h"
#include "storage/mvstore.h"
#include "util/bloom.h"

namespace sdur::storage {

class CertIndex {
 public:
  /// Registers the commit record for `v`. Versions must be inserted in
  /// strictly increasing order (they are: window pushes are ordered).
  void insert(Version v, const util::KeySet& readset, const util::KeySet& writeset);

  /// Unregisters the record for `v` as it leaves the window. Must be
  /// called with the window's *oldest* record (eviction order), with the
  /// same sets that were inserted.
  void evict(Version v, const util::KeySet& readset, const util::KeySet& writeset);

  void clear();

  /// Question A for an *exact* probe readset: true iff some indexed record
  /// with version > st wrote one of `readset`'s keys. Records whose
  /// writeset is bloom-encoded are not covered — scan bloom_write_versions().
  bool reads_conflict(const util::KeySet& readset, Version st) const;

  /// Question B for an *exact* probe writeset: true iff some indexed
  /// record with version > st read one of `writeset`'s keys. Records whose
  /// readset is bloom-encoded are not covered — scan bloom_read_versions().
  bool writes_conflict(const util::KeySet& writeset, Version st) const;

  /// Versions (ascending) of window records whose readset / writeset is
  /// bloom-encoded: the suffix the caller must still scan exactly.
  const std::deque<Version>& bloom_read_versions() const { return bloom_rs_; }
  const std::deque<Version>& bloom_write_versions() const { return bloom_ws_; }

  /// Distinct keys currently indexed (metrics / tests).
  std::size_t key_count() const { return table_.size(); }
  /// Cumulative key probes served (cost metric for benches).
  std::uint64_t probes() const { return probes_; }

 private:
  /// Sentinel "no record in the window reads/writes this key". All real
  /// window versions are >= 0 and snapshots are >= -1, so the sentinel
  /// never compares as newer than a snapshot.
  static constexpr Version kNone = INT64_MIN;

  struct Entry {
    Version writer = kNone;  // newest window version writing the key
    Version reader = kNone;  // newest window version reading the key
  };

  FlatTable<Entry> table_;
  std::deque<Version> bloom_rs_;
  std::deque<Version> bloom_ws_;
  mutable std::uint64_t probes_ = 0;
};

}  // namespace sdur::storage
