#include "storage/mvstore.h"

#include <algorithm>
#include <stdexcept>

#include "audit/audit.h"

namespace sdur::storage {

std::optional<VersionedValue> MVStore::get(Key k, Version snapshot) const {
  const VersionChain* chain = map_.find(k);
  if (chain == nullptr || chain->empty()) return std::nullopt;
  // First version with version > snapshot; the predecessor is the answer.
  const std::size_t pos = chain->upper_bound(snapshot);
  if (pos == 0) return std::nullopt;
  return (*chain)[pos - 1];
}

std::optional<VersionedValue> MVStore::get_latest(Key k) const {
  const VersionChain* chain = map_.find(k);
  if (chain == nullptr || chain->empty()) return std::nullopt;
  return chain->back();
}

void MVStore::put(Key k, std::string value, Version version) {
  VersionChain& chain = map_[k];
  // Commits are applied in snapshot-counter order, so per-key versions are
  // non-decreasing; a regression means the apply order diverged from the
  // commit order.
  SDUR_AUDIT_CHECK("storage", "version-order", chain.empty() || chain.back().version <= version,
                   "key " << k << " written at version " << version << " after version "
                          << chain.back().version);
  if (!chain.empty() && chain.back().version > version) {
    throw std::logic_error("MVStore::put: version regression");
  }
  if (!chain.empty() && chain.back().version == version) {
    chain.back().value = std::move(value);  // same-snapshot overwrite
    return;
  }
  chain.push_back(VersionedValue{version, std::move(value)});
  ++versions_;
}

void MVStore::put_speculative(Key k, std::string value, Version version) {
  put(k, std::move(value), version);
  std::vector<Key>& ks = spec_log_[version];
  // A transaction may write the same key twice (same-version overwrite in
  // put); one undo record per key is enough.
  if (ks.empty() || ks.back() != k) ks.push_back(k);
}

std::size_t MVStore::promote(Version version) {
  return spec_log_.erase(version);
}

std::size_t MVStore::rollback(Version version) {
  auto it = spec_log_.find(version);
  if (it == spec_log_.end()) return 0;
  std::size_t erased = 0;
  for (Key k : it->second) {
    VersionChain* chain = map_.find(k);
    if (chain == nullptr) continue;
    // The entry sits at upper_bound(version) - 1 if present; later
    // committed versions of the key may follow it, so close the gap.
    std::size_t pos = chain->upper_bound(version);
    if (pos == 0 || (*chain)[pos - 1].version != version) continue;
    --pos;
    for (std::size_t i = pos + 1; i < chain->size(); ++i)
      (*chain)[i - 1] = std::move((*chain)[i]);
    chain->pop_back();
    --versions_;
    ++erased;
    if (chain->empty()) map_.erase(k);
  }
  spec_log_.erase(it);
  return erased;
}

void MVStore::mark_speculative(Version version, const std::vector<Key>& ks) {
  if (!ks.empty()) spec_log_[version] = ks;
}

void MVStore::audit_spec_floor(Version floor) const {
  if (spec_log_.empty() || spec_log_.begin()->first > floor) return;
  SDUR_AUDIT_CHECK("storage", "spec-floor", false,
                   "speculative version " << spec_log_.begin()->first
                                          << " at or below resolved floor " << floor
                                          << " — a rollback or promote was missed");
  throw std::logic_error("MVStore: speculative version below resolved floor");
}

void MVStore::truncate_above(Version horizon) {
  // Collect first: erase() perturbs the probe layout mid-walk.
  std::vector<Key> ks = keys();
  for (Key k : ks) {
    VersionChain& chain = *map_.find(k);
    while (!chain.empty() && chain.back().version > horizon) {
      chain.pop_back();
      --versions_;
    }
    if (chain.empty()) map_.erase(k);
  }
  spec_log_.erase(spec_log_.upper_bound(horizon), spec_log_.end());
}

void MVStore::gc(Version horizon) {
  map_.for_each([&](Key, VersionChain& chain) {
    if (chain.size() <= 1) return;
    // Keep the newest version <= horizon (still readable at the horizon)
    // and everything newer.
    const std::size_t pos = chain.upper_bound(horizon);
    if (pos <= 1) return;
    const std::size_t drop = pos - 1;
    chain.drop_front(drop);
    versions_ -= drop;
  });
}

void MVStore::encode(util::Writer& w) const {
  // Keys are serialized sorted so a checkpoint blob is a canonical function
  // of the store's contents — byte-identical across replicas regardless of
  // hash-table probe order.
  std::vector<Key> ks = keys();
  std::sort(ks.begin(), ks.end());
  w.varint(ks.size());
  for (Key k : ks) {
    const VersionChain& chain = *map_.find(k);
    w.u64(k);
    w.varint(chain.size());
    for (std::size_t i = 0; i < chain.size(); ++i) {
      w.i64(chain[i].version);
      w.bytes(chain[i].value);
    }
  }
}

void MVStore::install(util::Reader& r) {
  map_.clear();
  versions_ = 0;
  spec_log_.clear();  // the installer re-marks from its own spec records
  const std::uint64_t nkeys = r.varint();
  map_.reserve(nkeys);
  for (std::uint64_t i = 0; i < nkeys; ++i) {
    const Key k = r.u64();
    const std::uint64_t nv = r.varint();
    VersionChain& chain = map_[k];
    chain.reserve(nv);
    for (std::uint64_t j = 0; j < nv; ++j) {
      VersionedValue vv;
      vv.version = r.i64();
      vv.value = r.bytes();
      chain.push_back(std::move(vv));
    }
    versions_ += nv;
  }
}

}  // namespace sdur::storage
