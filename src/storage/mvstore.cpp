#include "storage/mvstore.h"

#include <algorithm>
#include <stdexcept>

#include "audit/audit.h"

namespace sdur::storage {

std::optional<VersionedValue> MVStore::get(Key k, Version snapshot) const {
  auto it = map_.find(k);
  if (it == map_.end()) return std::nullopt;
  const auto& versions = it->second;
  // First version with version > snapshot; the predecessor is the answer.
  auto pos = std::upper_bound(versions.begin(), versions.end(), snapshot,
                              [](Version s, const VersionedValue& v) { return s < v.version; });
  if (pos == versions.begin()) return std::nullopt;
  return *(pos - 1);
}

std::optional<VersionedValue> MVStore::get_latest(Key k) const {
  auto it = map_.find(k);
  if (it == map_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

void MVStore::put(Key k, std::string value, Version version) {
  auto& versions = map_[k];
  // Commits are applied in snapshot-counter order, so per-key versions are
  // non-decreasing; a regression means the apply order diverged from the
  // commit order.
  SDUR_AUDIT_CHECK("storage", "version-order", versions.empty() || versions.back().version <= version,
                   "key " << k << " written at version " << version << " after version "
                          << versions.back().version);
  if (!versions.empty() && versions.back().version > version) {
    throw std::logic_error("MVStore::put: version regression");
  }
  if (!versions.empty() && versions.back().version == version) {
    versions.back().value = std::move(value);  // same-snapshot overwrite
    return;
  }
  versions.push_back(VersionedValue{version, std::move(value)});
  ++versions_;
}

void MVStore::truncate_above(Version horizon) {
  for (auto it = map_.begin(); it != map_.end();) {
    auto& versions = it->second;
    while (!versions.empty() && versions.back().version > horizon) {
      versions.pop_back();
      --versions_;
    }
    it = versions.empty() ? map_.erase(it) : std::next(it);
  }
}

void MVStore::gc(Version horizon) {
  for (auto& [k, versions] : map_) {
    if (versions.size() <= 1) continue;
    // Keep the newest version <= horizon (still readable at the horizon)
    // and everything newer.
    auto pos = std::upper_bound(versions.begin(), versions.end(), horizon,
                                [](Version s, const VersionedValue& v) { return s < v.version; });
    if (pos == versions.begin()) continue;
    auto first_kept = pos - 1;
    if (first_kept == versions.begin()) continue;
    versions_ -= static_cast<std::size_t>(first_kept - versions.begin());
    versions.erase(versions.begin(), first_kept);
  }
}

void MVStore::encode(util::Writer& w) const {
  // Keys are serialized sorted so a checkpoint blob is a canonical function
  // of the store's contents — byte-identical across replicas regardless of
  // hash-map iteration order.
  std::vector<Key> ks = keys();
  std::sort(ks.begin(), ks.end());
  w.varint(ks.size());
  for (Key k : ks) {
    const auto& versions = map_.at(k);
    w.u64(k);
    w.varint(versions.size());
    for (const auto& vv : versions) {
      w.i64(vv.version);
      w.bytes(vv.value);
    }
  }
}

void MVStore::install(util::Reader& r) {
  map_.clear();
  versions_ = 0;
  const std::uint64_t nkeys = r.varint();
  map_.reserve(nkeys);
  for (std::uint64_t i = 0; i < nkeys; ++i) {
    const Key k = r.u64();
    const std::uint64_t nv = r.varint();
    auto& versions = map_[k];
    versions.reserve(nv);
    for (std::uint64_t j = 0; j < nv; ++j) {
      VersionedValue vv;
      vv.version = r.i64();
      vv.value = r.bytes();
      versions.push_back(std::move(vv));
    }
    versions_ += nv;
  }
}

}  // namespace sdur::storage
