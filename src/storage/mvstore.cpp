#include "storage/mvstore.h"

#include <algorithm>
#include <stdexcept>

#include "audit/audit.h"

namespace sdur::storage {

std::optional<VersionedValue> MVStore::get(Key k, Version snapshot) const {
  const VersionChain* chain = map_.find(k);
  if (chain == nullptr || chain->empty()) return std::nullopt;
  // First version with version > snapshot; the predecessor is the answer.
  const std::size_t pos = chain->upper_bound(snapshot);
  if (pos == 0) return std::nullopt;
  return (*chain)[pos - 1];
}

std::optional<VersionedValue> MVStore::get_latest(Key k) const {
  const VersionChain* chain = map_.find(k);
  if (chain == nullptr || chain->empty()) return std::nullopt;
  return chain->back();
}

void MVStore::put(Key k, std::string value, Version version) {
  VersionChain& chain = map_[k];
  // Commits are applied in snapshot-counter order, so per-key versions are
  // non-decreasing; a regression means the apply order diverged from the
  // commit order.
  SDUR_AUDIT_CHECK("storage", "version-order", chain.empty() || chain.back().version <= version,
                   "key " << k << " written at version " << version << " after version "
                          << chain.back().version);
  if (!chain.empty() && chain.back().version > version) {
    throw std::logic_error("MVStore::put: version regression");
  }
  if (!chain.empty() && chain.back().version == version) {
    chain.back().value = std::move(value);  // same-snapshot overwrite
    return;
  }
  chain.push_back(VersionedValue{version, std::move(value)});
  ++versions_;
}

void MVStore::truncate_above(Version horizon) {
  // Collect first: erase() perturbs the probe layout mid-walk.
  std::vector<Key> ks = keys();
  for (Key k : ks) {
    VersionChain& chain = *map_.find(k);
    while (!chain.empty() && chain.back().version > horizon) {
      chain.pop_back();
      --versions_;
    }
    if (chain.empty()) map_.erase(k);
  }
}

void MVStore::gc(Version horizon) {
  map_.for_each([&](Key, VersionChain& chain) {
    if (chain.size() <= 1) return;
    // Keep the newest version <= horizon (still readable at the horizon)
    // and everything newer.
    const std::size_t pos = chain.upper_bound(horizon);
    if (pos <= 1) return;
    const std::size_t drop = pos - 1;
    chain.drop_front(drop);
    versions_ -= drop;
  });
}

void MVStore::encode(util::Writer& w) const {
  // Keys are serialized sorted so a checkpoint blob is a canonical function
  // of the store's contents — byte-identical across replicas regardless of
  // hash-table probe order.
  std::vector<Key> ks = keys();
  std::sort(ks.begin(), ks.end());
  w.varint(ks.size());
  for (Key k : ks) {
    const VersionChain& chain = *map_.find(k);
    w.u64(k);
    w.varint(chain.size());
    for (std::size_t i = 0; i < chain.size(); ++i) {
      w.i64(chain[i].version);
      w.bytes(chain[i].value);
    }
  }
}

void MVStore::install(util::Reader& r) {
  map_.clear();
  versions_ = 0;
  const std::uint64_t nkeys = r.varint();
  map_.reserve(nkeys);
  for (std::uint64_t i = 0; i < nkeys; ++i) {
    const Key k = r.u64();
    const std::uint64_t nv = r.varint();
    VersionChain& chain = map_[k];
    chain.reserve(nv);
    for (std::uint64_t j = 0; j < nv; ++j) {
      VersionedValue vv;
      vv.version = r.i64();
      vv.value = r.bytes();
      chain.push_back(std::move(vv));
    }
    versions_ += nv;
  }
}

}  // namespace sdur::storage
