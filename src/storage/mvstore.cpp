#include "storage/mvstore.h"

#include <algorithm>
#include <stdexcept>

namespace sdur::storage {

std::optional<VersionedValue> MVStore::get(Key k, Version snapshot) const {
  auto it = map_.find(k);
  if (it == map_.end()) return std::nullopt;
  const auto& versions = it->second;
  // First version with version > snapshot; the predecessor is the answer.
  auto pos = std::upper_bound(versions.begin(), versions.end(), snapshot,
                              [](Version s, const VersionedValue& v) { return s < v.version; });
  if (pos == versions.begin()) return std::nullopt;
  return *(pos - 1);
}

std::optional<VersionedValue> MVStore::get_latest(Key k) const {
  auto it = map_.find(k);
  if (it == map_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

void MVStore::put(Key k, std::string value, Version version) {
  auto& versions = map_[k];
  if (!versions.empty() && versions.back().version > version) {
    throw std::logic_error("MVStore::put: version regression");
  }
  if (!versions.empty() && versions.back().version == version) {
    versions.back().value = std::move(value);  // same-snapshot overwrite
    return;
  }
  versions.push_back(VersionedValue{version, std::move(value)});
  ++versions_;
}

void MVStore::truncate_above(Version horizon) {
  for (auto it = map_.begin(); it != map_.end();) {
    auto& versions = it->second;
    while (!versions.empty() && versions.back().version > horizon) {
      versions.pop_back();
      --versions_;
    }
    it = versions.empty() ? map_.erase(it) : std::next(it);
  }
}

void MVStore::gc(Version horizon) {
  for (auto& [k, versions] : map_) {
    if (versions.size() <= 1) continue;
    // Keep the newest version <= horizon (still readable at the horizon)
    // and everything newer.
    auto pos = std::upper_bound(versions.begin(), versions.end(), horizon,
                                [](Version s, const VersionedValue& v) { return s < v.version; });
    if (pos == versions.begin()) continue;
    auto first_kept = pos - 1;
    if (first_kept == versions.begin()) continue;
    versions_ -= static_cast<std::size_t>(first_kept - versions.begin());
    versions.erase(versions.begin(), first_kept);
  }
}

void MVStore::encode(util::Writer& w) const {
  w.varint(map_.size());
  for (const auto& [k, versions] : map_) {
    w.u64(k);
    w.varint(versions.size());
    for (const auto& vv : versions) {
      w.i64(vv.version);
      w.bytes(vv.value);
    }
  }
}

void MVStore::install(util::Reader& r) {
  map_.clear();
  versions_ = 0;
  const std::uint64_t nkeys = r.varint();
  map_.reserve(nkeys);
  for (std::uint64_t i = 0; i < nkeys; ++i) {
    const Key k = r.u64();
    const std::uint64_t nv = r.varint();
    auto& versions = map_[k];
    versions.reserve(nv);
    for (std::uint64_t j = 0; j < nv; ++j) {
      VersionedValue vv;
      vv.version = r.i64();
      vv.value = r.bytes();
      versions.push_back(std::move(vv));
    }
    versions_ += nv;
  }
}

}  // namespace sdur::storage
