#include "storage/commit_window.h"

#include <stdexcept>

#include "audit/audit.h"

namespace sdur::storage {

void CommitWindow::push(Version version, CommitRecord rec) {
  // The window is a contiguous suffix of the commit sequence: a gap would
  // silently exempt the missing commit from every later certification.
  SDUR_AUDIT_CHECK("storage", "commit-window-contiguous",
                   records_.empty() || version == newest() + 1,
                   "commit record for tx " << rec.txid << " pushed at version " << version
                                           << ", window newest is " << newest());
  if (!records_.empty() && version != newest() + 1) {
    throw std::logic_error("CommitWindow::push: versions must be contiguous");
  }
  if (records_.empty()) base_ = version;
  records_.push_back(std::move(rec));
  while (records_.size() > capacity_) {
    records_.pop_front();
    ++base_;
  }
}

}  // namespace sdur::storage
