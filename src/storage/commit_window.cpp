#include "storage/commit_window.h"

#include <stdexcept>

namespace sdur::storage {

void CommitWindow::push(Version version, CommitRecord rec) {
  // The window is a contiguous suffix of the commit sequence: a gap would
  // silently exempt the missing commit from every later certification.
  SDUR_AUDIT_CHECK("storage", "commit-window-contiguous",
                   count_ == 0 || version == newest() + 1,
                   "commit record for tx " << rec.txid << " pushed at version " << version
                                           << ", window newest is " << newest());
  if (count_ != 0 && version != newest() + 1) {
    throw std::logic_error("CommitWindow::push: versions must be contiguous");
  }
  if (count_ == 0) {
    base_ = version;
    head_ = 0;
  }
  index_.insert(version, rec.readset, rec.writeset);
  if (count_ == capacity_) {
    // Saturated: evict the oldest record and recycle its arena slot (the
    // tail position equals head_ when the ring is full).
    const CommitRecord& oldest_rec = ring_[head_];
    index_.evict(base_, oldest_rec.readset, oldest_rec.writeset);
    ring_[head_] = std::move(rec);
    head_ = (head_ + 1) % ring_.size();
    ++base_;
    return;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));  // arena still filling up
  } else {
    ring_[(head_ + count_) % ring_.size()] = std::move(rec);
  }
  ++count_;
}

bool CommitWindow::conflicts_indexed(const util::KeySet& rs, const util::KeySet& ws, bool global,
                                     Version st) const {
  if (count_ == 0 || st >= newest()) return false;
  // Component A: rs vs committed writesets. A bloom probe readset cannot
  // drive key probes — fall back to the legacy scan for this component.
  if (rs.is_bloom() && !rs.empty()) {
    bool hit = false;
    scan_after(st, [&](const CommitRecord& r) {
      if (rs.intersects(r.writeset)) {
        hit = true;
        return false;
      }
      return true;
    });
    if (hit) return true;
  } else {
    if (index_.reads_conflict(rs, st)) return true;
    const auto& bws = index_.bloom_write_versions();
    for (auto it = std::upper_bound(bws.begin(), bws.end(), st); it != bws.end(); ++it) {
      if (rs.intersects(at(*it).writeset)) return true;
    }
  }
  if (!global) return false;
  // Component B: ws vs committed readsets (global transactions only).
  if (ws.is_bloom() && !ws.empty()) {
    bool hit = false;
    scan_after(st, [&](const CommitRecord& r) {
      if (ws.intersects(r.readset)) {
        hit = true;
        return false;
      }
      return true;
    });
    return hit;
  }
  if (index_.writes_conflict(ws, st)) return true;
  const auto& brs = index_.bloom_read_versions();
  for (auto it = std::upper_bound(brs.begin(), brs.end(), st); it != brs.end(); ++it) {
    if (ws.intersects(at(*it).readset)) return true;
  }
  return false;
}

}  // namespace sdur::storage
