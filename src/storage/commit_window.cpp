#include "storage/commit_window.h"

#include <stdexcept>

namespace sdur::storage {

void CommitWindow::push(Version version, CommitRecord rec) {
  if (!records_.empty() && version != newest() + 1) {
    throw std::logic_error("CommitWindow::push: versions must be contiguous");
  }
  if (records_.empty()) base_ = version;
  records_.push_back(std::move(rec));
  while (records_.size() > capacity_) {
    records_.pop_front();
    ++base_;
  }
}

}  // namespace sdur::storage
