// Byte-buffer codec used for all wire messages.
//
// Every protocol message in this repository is encoded through Writer and
// decoded through Reader, so message formats are exercised end-to-end and
// wire sizes are measurable (e.g. to quantify the bloom-filter bandwidth
// saving the paper mentions in Section V).
//
// Encoding: little-endian fixed-width integers, LEB128 varints for counts,
// and length-prefixed byte strings. Decoding is bounds-checked; a malformed
// buffer throws CodecError rather than reading out of range.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace sdur::util {

using Bytes = std::vector<std::uint8_t>;

/// Thrown by Reader when a buffer is truncated or malformed.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends primitive values to a growable byte buffer.
class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { fixed(v, 2); }
  void u32(std::uint32_t v) { fixed(v, 4); }
  void u64(std::uint64_t v) { fixed(v, 8); }
  void i64(std::int64_t v) { fixed(static_cast<std::uint64_t>(v), 8); }

  /// LEB128 variable-width unsigned integer (used for counts/sizes).
  void varint(std::uint64_t v);

  /// Length-prefixed byte string.
  void bytes(std::string_view s);
  void bytes(const Bytes& b);

  /// Raw append without a length prefix (caller must know the size).
  void raw(const void* data, std::size_t n);

  std::size_t size() const { return buf_.size(); }
  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  void fixed(std::uint64_t v, int n) {
    const std::size_t old = buf_.size();
    ensure(static_cast<std::size_t>(n));
    buf_.resize(old + static_cast<std::size_t>(n));
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(buf_.data() + old, &v, static_cast<std::size_t>(n));
    } else {
      for (int i = 0; i < n; ++i) {
        buf_[old + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * i));
      }
    }
  }

  /// Grows capacity geometrically when `extra` more bytes won't fit.
  /// (A bare reserve(size+extra) per call would pin capacity to the exact
  /// size and make repeated appends quadratic.)
  void ensure(std::size_t extra) {
    const std::size_t need = buf_.size() + extra;
    if (need > buf_.capacity()) buf_.reserve(std::max(need, buf_.capacity() * 2));
  }

  Bytes buf_;
};

/// Bounds-checked sequential reader over an immutable byte span.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t n) : data_(data), size_(n) {}
  explicit Reader(const Bytes& b) : Reader(b.data(), b.size()) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(fixed(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(fixed(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(fixed(4)); }
  std::uint64_t u64() { return fixed(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(fixed(8)); }

  std::uint64_t varint();
  std::string bytes();

  /// Reads n raw bytes without a length prefix.
  void raw(void* out, std::size_t n);

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  std::uint64_t fixed(int n);
  void need(std::size_t n) const {
    if (pos_ + n > size_) throw CodecError("truncated buffer");
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace sdur::util
