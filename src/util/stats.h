// Latency/throughput statistics used by the benchmark harness.
//
// Histogram is a log-bucketed histogram (HdrHistogram-style) with bounded
// relative error, suitable for recording millions of latency samples with
// O(1) memory. It supports means, arbitrary percentiles (the paper reports
// averages and 99th percentiles), and CDF export (paper Figure 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sdur::util {

class Histogram {
 public:
  /// `sub_bucket_bits` controls relative precision: 2^bits sub-buckets per
  /// power of two, i.e. ~1.5% worst-case relative error at the default 6.
  explicit Histogram(int sub_bucket_bits = 6);

  void record(std::int64_t value);
  void record_n(std::int64_t value, std::uint64_t n);

  std::uint64_t count() const { return count_; }
  std::int64_t min() const;
  std::int64_t max() const { return max_; }
  double mean() const;

  /// Value at percentile p in [0, 100].
  std::int64_t percentile(double p) const;

  /// (value, cumulative fraction) pairs for plotting a CDF; one point per
  /// non-empty bucket.
  std::vector<std::pair<std::int64_t, double>> cdf() const;

  void merge(const Histogram& other);
  void clear();

 private:
  std::size_t bucket_index(std::int64_t value) const;
  std::int64_t bucket_value(std::size_t index) const;

  int sub_bits_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  std::vector<std::uint64_t> buckets_;
};

/// Accumulates a named group of counters for an experiment run.
struct Counters {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t certification_aborts = 0;
  std::uint64_t reordered = 0;
  std::uint64_t messages = 0;
  std::uint64_t message_bytes = 0;

  void merge(const Counters& o) {
    committed += o.committed;
    aborted += o.aborted;
    certification_aborts += o.certification_aborts;
    reordered += o.reordered;
    messages += o.messages;
    message_bytes += o.message_bytes;
  }
};

/// Formats a microsecond value as milliseconds with one decimal ("32.6").
std::string format_ms(std::int64_t micros);

/// Formats a throughput value as e.g. "6.3K".
std::string format_k(double v);

}  // namespace sdur::util
