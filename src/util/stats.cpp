#include "util/stats.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

namespace sdur::util {

namespace {
// 64 powers of two, each split into 2^sub_bits sub-buckets, covers the full
// int64 range; in practice latencies are < 2^40 microseconds.
constexpr int kExponents = 48;
}  // namespace

Histogram::Histogram(int sub_bucket_bits)
    : sub_bits_(std::clamp(sub_bucket_bits, 0, 12)),
      min_(std::numeric_limits<std::int64_t>::max()),
      buckets_(static_cast<std::size_t>(kExponents) << sub_bits_, 0) {}

std::size_t Histogram::bucket_index(std::int64_t value) const {
  const std::uint64_t v = value <= 0 ? 0 : static_cast<std::uint64_t>(value);
  if (v < (1ULL << sub_bits_)) return static_cast<std::size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const int exponent = msb - sub_bits_ + 1;  // >= 1
  const std::uint64_t sub = v >> exponent;   // in [2^(sub_bits-1), 2^sub_bits)
  std::size_t idx = (static_cast<std::size_t>(exponent) << sub_bits_) + static_cast<std::size_t>(sub);
  return std::min(idx, buckets_.size() - 1);
}

std::int64_t Histogram::bucket_value(std::size_t index) const {
  const std::size_t exponent = index >> sub_bits_;
  const std::uint64_t sub = index & ((1ULL << sub_bits_) - 1);
  if (exponent == 0) return static_cast<std::int64_t>(sub);
  // Midpoint of the bucket range for low bias.
  const std::uint64_t lo = sub << exponent;
  const std::uint64_t width = 1ULL << exponent;
  return static_cast<std::int64_t>(lo + width / 2);
}

void Histogram::record(std::int64_t value) { record_n(value, 1); }

void Histogram::record_n(std::int64_t value, std::uint64_t n) {
  if (n == 0) return;
  buckets_[bucket_index(value)] += n;
  count_ += n;
  sum_ += static_cast<double>(value) * static_cast<double>(n);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

std::int64_t Histogram::min() const {
  return count_ == 0 ? 0 : min_;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::int64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const auto target = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count_) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) return bucket_value(i);
  }
  return max_;
}

std::vector<std::pair<std::int64_t, double>> Histogram::cdf() const {
  std::vector<std::pair<std::int64_t, double>> out;
  if (count_ == 0) return out;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    out.emplace_back(bucket_value(i), static_cast<double>(seen) / static_cast<double>(count_));
  }
  return out;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.sub_bits_ == sub_bits_) {
    for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    return;
  }
  // Different precision: re-record bucket midpoints.
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    if (other.buckets_[i] > 0) record_n(other.bucket_value(i), other.buckets_[i]);
  }
}

void Histogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<std::int64_t>::max();
  max_ = 0;
}

std::string format_ms(std::int64_t micros) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(micros) / 1000.0);
  return buf;
}

std::string format_k(double v) {
  char buf[32];
  if (v >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.1fK", v / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

}  // namespace sdur::util
