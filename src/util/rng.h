// Deterministic pseudo-random number generation.
//
// Every source of randomness in the simulator (latency jitter, workload key
// choice, client think times) draws from an Rng seeded from the experiment
// seed, so whole experiments replay bit-identically.
#pragma once

#include <cstdint>

#include "util/hash.h"

namespace sdur::util {

/// xoshiro256** — fast, high-quality, 64-bit PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9E3779B97F4A7C15ULL;
      si = mix64(x);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Fork an independent stream (for per-client generators).
  Rng fork() { return Rng(next() ^ 0xA5A5A5A5A5A5A5A5ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace sdur::util
