// Bloom filters for certification (paper Section V).
//
// The SDUR prototype broadcasts only hashes of a transaction's readset and
// keeps the last K committed writesets as bloom filters. Intersection tests
// between read/write sets then become bloom-filter queries, which trades a
// small false-positive abort rate for large bandwidth and memory savings.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/hash.h"

namespace sdur::util {

/// A fixed-size bloom filter over 64-bit keys.
///
/// Bit count and hash count are chosen at construction; `for_capacity`
/// picks near-optimal parameters for a target element count and false
/// positive rate.
class BloomFilter {
 public:
  BloomFilter() : BloomFilter(64, 4) {}
  BloomFilter(std::uint32_t bits, std::uint32_t hashes);

  /// Sizes the filter for `n` expected elements at false-positive rate `fp`.
  static BloomFilter for_capacity(std::size_t n, double fp);

  void insert(std::uint64_t key);
  bool may_contain(std::uint64_t key) const;

  /// True if no element of `other` can be in this filter (guaranteed empty
  /// intersection). False means the intersection *may* be non-empty.
  bool disjoint(const BloomFilter& other) const;

  bool empty() const { return count_ == 0; }
  std::size_t count() const { return count_; }
  std::uint32_t bit_count() const { return bits_; }
  std::size_t byte_size() const { return words_.size() * 8; }

  /// Estimated false-positive probability at the current fill level.
  double estimated_fp_rate() const;

  void clear();

  void encode(Writer& w) const;
  static BloomFilter decode(Reader& r);

  bool operator==(const BloomFilter& other) const = default;

 private:
  void bit_positions(std::uint64_t key, std::uint32_t* out) const;

  std::uint32_t bits_;
  std::uint32_t hashes_;
  std::size_t count_ = 0;
  std::vector<std::uint64_t> words_;
};

/// A set of 64-bit keys with a pluggable exact/bloom representation, used
/// for certification records. In exact mode intersection tests are precise;
/// in bloom mode they may report spurious overlap (false-positive aborts,
/// as in the paper's prototype).
class KeySet {
 public:
  /// Default: an empty exact set.
  KeySet() = default;

  /// Exact representation (sorted vector).
  static KeySet exact(std::vector<std::uint64_t> keys);
  /// Bloom representation sized for the given keys.
  static KeySet bloom(const std::vector<std::uint64_t>& keys, double fp_rate = 0.01);

  bool is_bloom() const { return is_bloom_; }
  bool empty() const { return is_bloom_ ? bloom_.empty() : keys_.empty(); }
  std::size_t size_hint() const { return is_bloom_ ? bloom_.count() : keys_.size(); }

  /// True if the intersection with `other` is (possibly) non-empty.
  bool intersects(const KeySet& other) const;

  /// Membership test for a single key (may false-positive in bloom mode).
  bool may_contain(std::uint64_t key) const;

  /// Wire size: bloom mode ships only the filter bits.
  void encode(Writer& w) const;
  static KeySet decode(Reader& r);

  /// Exact keys (only valid in exact mode; used by tests).
  const std::vector<std::uint64_t>& keys() const { return keys_; }

 private:
  bool is_bloom_ = false;
  std::vector<std::uint64_t> keys_;  // sorted, exact mode
  BloomFilter bloom_;                // bloom mode
};

}  // namespace sdur::util
