// Minimal leveled logging.
//
// The simulator installs a clock callback so log lines carry virtual time.
// Logging defaults to WARN so experiment binaries stay quiet; tests raise
// the level when debugging.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace sdur::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Clock used to prefix each line (virtual time in microseconds);
  /// unset means wall-clock-free plain output.
  void set_clock(std::function<std::int64_t()> clock) { clock_ = std::move(clock); }

  void write(LogLevel level, const std::string& component, const std::string& message);

 private:
  LogLevel level_ = LogLevel::kWarn;
  std::function<std::int64_t()> clock_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string component) : level_(level), component_(std::move(component)) {}
  ~LogLine() { Logger::instance().write(level_, component_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace sdur::util

#define SDUR_LOG(lvl, component)                                            \
  if (static_cast<int>(lvl) <                                               \
      static_cast<int>(::sdur::util::Logger::instance().level())) {         \
  } else                                                                    \
    ::sdur::util::detail::LogLine(lvl, component)

#define SDUR_DEBUG(component) SDUR_LOG(::sdur::util::LogLevel::kDebug, component)
#define SDUR_INFO(component) SDUR_LOG(::sdur::util::LogLevel::kInfo, component)
#define SDUR_WARN(component) SDUR_LOG(::sdur::util::LogLevel::kWarn, component)
#define SDUR_ERROR(component) SDUR_LOG(::sdur::util::LogLevel::kError, component)
