#include "util/bytes.h"

#include <cstring>

namespace sdur::util {

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::bytes(std::string_view s) {
  ensure(s.size() + 10);  // worst-case varint prefix is 10 bytes
  varint(s.size());
  raw(s.data(), s.size());
}

void Writer::bytes(const Bytes& b) {
  ensure(b.size() + 10);
  varint(b.size());
  raw(b.data(), b.size());
}

void Writer::raw(const void* data, std::size_t n) {
  ensure(n);
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    need(1);
    std::uint8_t b = data_[pos_++];
    if (shift >= 64) throw CodecError("varint overflow");
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

std::string Reader::bytes() {
  std::uint64_t n = varint();
  need(n);
  std::string out(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return out;
}

void Reader::raw(void* out, std::size_t n) {
  need(n);
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
}

std::uint64_t Reader::fixed(int n) {
  need(static_cast<std::size_t>(n));
  std::uint64_t v = 0;
  for (int i = 0; i < n; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += static_cast<std::size_t>(n);
  return v;
}

}  // namespace sdur::util
