// Small, fast, non-cryptographic hash functions.
//
// Used by the bloom filters (Section V of the paper: servers exchange only
// hashes of readsets) and by the hash partitioning scheme.
#pragma once

#include <cstdint>
#include <string_view>

namespace sdur::util {

/// 64-bit finalizer from SplitMix64; a good integer mixer.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// FNV-1a over arbitrary bytes.
constexpr std::uint64_t fnv1a(std::string_view s, std::uint64_t seed = 0xCBF29CE484222325ULL) {
  std::uint64_t h = seed;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Double hashing helper: derives the i-th hash from two base hashes.
/// Kirsch & Mitzenmacher: h_i = h1 + i*h2 is sufficient for bloom filters.
constexpr std::uint64_t nth_hash(std::uint64_t h1, std::uint64_t h2, std::uint32_t i) {
  return h1 + static_cast<std::uint64_t>(i) * (h2 | 1);
}

}  // namespace sdur::util
