#include "util/bloom.h"

#include <algorithm>
#include <cmath>

namespace sdur::util {

BloomFilter::BloomFilter(std::uint32_t bits, std::uint32_t hashes)
    : bits_(std::max<std::uint32_t>(bits, 64)),
      hashes_(std::clamp<std::uint32_t>(hashes, 1, 16)),
      words_((bits_ + 63) / 64, 0) {}

BloomFilter BloomFilter::for_capacity(std::size_t n, double fp) {
  n = std::max<std::size_t>(n, 1);
  fp = std::clamp(fp, 1e-9, 0.5);
  const double ln2 = 0.6931471805599453;
  auto bits = static_cast<std::uint32_t>(
      std::ceil(-static_cast<double>(n) * std::log(fp) / (ln2 * ln2)));
  auto hashes = static_cast<std::uint32_t>(std::round(ln2 * bits / static_cast<double>(n)));
  return BloomFilter(bits, std::max<std::uint32_t>(hashes, 1));
}

void BloomFilter::bit_positions(std::uint64_t key, std::uint32_t* out) const {
  const std::uint64_t h1 = mix64(key);
  const std::uint64_t h2 = mix64(key ^ 0x9E3779B97F4A7C15ULL);
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    out[i] = static_cast<std::uint32_t>(nth_hash(h1, h2, i) % bits_);
  }
}

void BloomFilter::insert(std::uint64_t key) {
  std::uint32_t pos[16];
  bit_positions(key, pos);
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    words_[pos[i] >> 6] |= 1ULL << (pos[i] & 63);
  }
  ++count_;
}

bool BloomFilter::may_contain(std::uint64_t key) const {
  std::uint32_t pos[16];
  bit_positions(key, pos);
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    if ((words_[pos[i] >> 6] & (1ULL << (pos[i] & 63))) == 0) return false;
  }
  return true;
}

bool BloomFilter::disjoint(const BloomFilter& other) const {
  if (empty() || other.empty()) return true;
  if (bits_ == other.bits_) {
    // Same geometry: filters are disjoint if their bit sets do not overlap.
    // This is conservative (may report overlap without a common element),
    // which is the safe direction for certification.
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & other.words_[i]) != 0) return false;
    }
    return true;
  }
  // Different geometries cannot be compared bitwise; conservatively assume
  // a possible intersection.
  return false;
}

double BloomFilter::estimated_fp_rate() const {
  const double k = hashes_;
  const double n = static_cast<double>(count_);
  const double m = static_cast<double>(bits_);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

void BloomFilter::clear() {
  std::fill(words_.begin(), words_.end(), 0);
  count_ = 0;
}

void BloomFilter::encode(Writer& w) const {
  w.u32(bits_);
  w.u32(hashes_);
  w.varint(count_);
  for (std::uint64_t word : words_) w.u64(word);
}

BloomFilter BloomFilter::decode(Reader& r) {
  const std::uint32_t bits = r.u32();
  const std::uint32_t hashes = r.u32();
  BloomFilter f(bits, hashes);
  f.count_ = r.varint();
  for (auto& word : f.words_) word = r.u64();
  return f;
}

KeySet KeySet::exact(std::vector<std::uint64_t> keys) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  KeySet s;
  s.is_bloom_ = false;
  s.keys_ = std::move(keys);
  return s;
}

KeySet KeySet::bloom(const std::vector<std::uint64_t>& keys, double fp_rate) {
  KeySet s;
  s.is_bloom_ = true;
  s.bloom_ = BloomFilter::for_capacity(std::max<std::size_t>(keys.size(), 4), fp_rate);
  for (std::uint64_t k : keys) s.bloom_.insert(k);
  return s;
}

bool KeySet::may_contain(std::uint64_t key) const {
  if (is_bloom_) return bloom_.may_contain(key);
  return std::binary_search(keys_.begin(), keys_.end(), key);
}

bool KeySet::intersects(const KeySet& other) const {
  if (empty() || other.empty()) return false;
  if (!is_bloom_ && !other.is_bloom_) {
    // Exact/exact: merge-scan of two sorted vectors.
    auto a = keys_.begin();
    auto b = other.keys_.begin();
    while (a != keys_.end() && b != other.keys_.end()) {
      if (*a == *b) return true;
      if (*a < *b) ++a; else ++b;
    }
    return false;
  }
  if (is_bloom_ && other.is_bloom_) return !bloom_.disjoint(other.bloom_);
  // Mixed: probe the exact side's keys against the bloom side.
  const KeySet& exact_side = is_bloom_ ? other : *this;
  const KeySet& bloom_side = is_bloom_ ? *this : other;
  return std::any_of(exact_side.keys_.begin(), exact_side.keys_.end(),
                     [&](std::uint64_t k) { return bloom_side.bloom_.may_contain(k); });
}

void KeySet::encode(Writer& w) const {
  w.u8(is_bloom_ ? 1 : 0);
  if (is_bloom_) {
    bloom_.encode(w);
  } else {
    w.varint(keys_.size());
    for (std::uint64_t k : keys_) w.u64(k);
  }
}

KeySet KeySet::decode(Reader& r) {
  KeySet s;
  s.is_bloom_ = r.u8() != 0;
  if (s.is_bloom_) {
    s.bloom_ = BloomFilter::decode(r);
  } else {
    const std::uint64_t n = r.varint();
    s.keys_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) s.keys_.push_back(r.u64());
  }
  return s;
}

}  // namespace sdur::util
