#include "util/logging.h"

#include <cstdio>

namespace sdur::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& component, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const char* name = kNames[static_cast<int>(level)];
  if (clock_) {
    const std::int64_t t = clock_();
    std::fprintf(stderr, "[%10.3fms] %-5s %s: %s\n", static_cast<double>(t) / 1000.0, name,
                 component.c_str(), message.c_str());
  } else {
    std::fprintf(stderr, "%-5s %s: %s\n", name, component.c_str(), message.c_str());
  }
}

}  // namespace sdur::util
