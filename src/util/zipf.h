// Zipf-distributed key selection for skewed workloads.
//
// The paper's microbenchmark draws keys uniformly; the Zipf generator is
// used by the ablation benches to study contention sensitivity (hotter keys
// raise the certification abort rate).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace sdur::util {

/// Samples ranks in [0, n) with P(rank = k) proportional to 1/(k+1)^theta.
/// Uses the Gray et al. computation with O(1) sampling after O(n)-free
/// setup (rejection-inversion is avoided: we use the standard two-constant
/// approximation which is exact in distribution).
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta);

  std::uint64_t sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta);

  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace sdur::util
