#include "util/zipf.h"

#include <algorithm>
#include <cmath>

namespace sdur::util {

double ZipfGenerator::zeta(std::uint64_t n, double theta) {
  // Direct sum is fine: called once per generator, and n is bounded by the
  // number of distinct keys in a partition.
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(std::max<std::uint64_t>(n, 1)), theta_(theta) {
  // Cap the harmonic-sum length for very large keyspaces; beyond a few
  // million terms the tail contribution is negligible for theta >= 0.5.
  const std::uint64_t zn = std::min<std::uint64_t>(n_, 10'000'000);
  zetan_ = zeta(zn, theta_);
  if (zn < n_) {
    // Approximate the remaining tail with the integral of x^-theta.
    if (theta_ != 1.0) {
      zetan_ += (std::pow(static_cast<double>(n_), 1 - theta_) -
                 std::pow(static_cast<double>(zn), 1 - theta_)) /
                (1 - theta_);
    } else {
      zetan_ += std::log(static_cast<double>(n_) / static_cast<double>(zn));
    }
  }
  const double zeta2 = zeta(std::min<std::uint64_t>(n_, 2), theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) / (1.0 - zeta2 / zetan_);
}

std::uint64_t ZipfGenerator::sample(Rng& rng) const {
  if (n_ == 1) return 0;
  const double u = rng.uniform();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::min(rank, n_ - 1);
}

}  // namespace sdur::util
