// YCSB-style workloads (Cooper et al., SoCC'10), adapted to SDUR.
//
// The paper evaluates with its own microbenchmark and a social network;
// YCSB is the de-facto standard for key-value stores, so downstream users
// get the familiar mixes here as well:
//
//   A  update-heavy   50% read / 50% read-modify-write
//   B  read-mostly    95% read /  5% read-modify-write
//   C  read-only     100% read
//
// Reads are single-key snapshot transactions (committed locally, never
// abort); updates are single-key read-modify-write transactions that go
// through certification. Keys are drawn Zipf(theta) over the whole
// keyspace, so a fraction of operations crosses partitions implicitly
// (multi-partition reads route transparently; updates touch one key, so
// they are always single-partition — SDUR's sweet spot).
#pragma once

#include "sdur/partitioning.h"
#include "workload/driver.h"

namespace sdur::workload {

struct YcsbConfig {
  enum class Mix { kA, kB, kC };

  Mix mix = Mix::kA;
  std::uint64_t records_per_partition = 100'000;
  std::size_t value_size = 100;  // YCSB default field size is ~100B
  double zipf_theta = 0.99;      // YCSB default request distribution

  std::function<bool()> keep_running;

  double update_fraction() const {
    switch (mix) {
      case Mix::kA:
        return 0.5;
      case Mix::kB:
        return 0.05;
      case Mix::kC:
        return 0.0;
    }
    return 0;
  }
  static const char* mix_name(Mix m) {
    switch (m) {
      case Mix::kA:
        return "A (50/50)";
      case Mix::kB:
        return "B (95/5)";
      case Mix::kC:
        return "C (read-only)";
    }
    return "?";
  }
};

class YcsbWorkload final : public Workload {
 public:
  explicit YcsbWorkload(YcsbConfig cfg) : cfg_(std::move(cfg)) {}

  static PartitioningPtr make_partitioning(PartitionId partitions,
                                           std::uint64_t records_per_partition) {
    return std::make_shared<RangePartitioning>(partitions, records_per_partition);
  }

  void populate(Deployment& dep, util::Rng& rng) override;
  std::unique_ptr<Session> make_session(Client& client, PartitionId home, PartitionId partitions,
                                        util::Rng rng, Recorder& rec) override;

 private:
  YcsbConfig cfg_;
};

}  // namespace sdur::workload
