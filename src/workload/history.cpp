#include "workload/history.h"

#include <sstream>
#include <unordered_set>

namespace sdur::workload {

void SerializabilityChecker::add_committed(TxId id, std::vector<std::pair<Key, TxId>> reads,
                                           std::vector<Key> writes) {
  txs_.push_back(Tx{id, std::move(reads), std::move(writes)});
}

void SerializabilityChecker::set_key_order(Key k, std::vector<TxId> writers_in_order) {
  key_order_[k] = std::move(writers_in_order);
}

bool SerializabilityChecker::check(std::string* why) const {
  // Index transactions and validate writes against the recovered key orders.
  std::unordered_map<TxId, std::size_t> index;
  for (std::size_t i = 0; i < txs_.size(); ++i) index[txs_[i].id] = i;

  // Per key: writer -> position in the version order.
  std::unordered_map<Key, std::unordered_map<TxId, std::size_t>> position;
  for (const auto& [k, order] : key_order_) {
    auto& pos = position[k];
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (!index.contains(order[i])) {
        if (why) {
          std::ostringstream os;
          os << "key " << k << " has installed version from unknown/uncommitted tx " << order[i];
          *why = os.str();
        }
        return false;
      }
      pos[order[i]] = i;
    }
  }

  std::vector<std::vector<std::size_t>> adj(txs_.size());
  auto add_edge = [&](std::size_t a, std::size_t b) {
    if (a != b) adj[a].push_back(b);
  };

  // ww edges: consecutive writers in every key's version order.
  for (const auto& [k, order] : key_order_) {
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      add_edge(index.at(order[i]), index.at(order[i + 1]));
    }
  }

  // wr and rw edges.
  for (std::size_t r = 0; r < txs_.size(); ++r) {
    for (const auto& [k, writer] : txs_[r].reads) {
      auto ko = key_order_.find(k);
      const std::vector<TxId>* order = ko == key_order_.end() ? nullptr : &ko->second;
      if (writer != 0) {
        auto it = index.find(writer);
        if (it == index.end()) {
          if (why) {
            std::ostringstream os;
            os << "tx " << txs_[r].id << " read key " << k << " from uncommitted tx " << writer;
            *why = os.str();
          }
          return false;  // dirty read: observed a write of an aborted tx
        }
        add_edge(it->second, r);  // wr
        if (order) {
          auto pos = position[k].find(writer);
          if (pos == position[k].end()) {
            if (why) {
              std::ostringstream os;
              os << "tx " << txs_[r].id << " read key " << k << " version from tx " << writer
                 << " which is not in the installed order";
              *why = os.str();
            }
            return false;
          }
          if (pos->second + 1 < order->size()) {
            add_edge(r, index.at((*order)[pos->second + 1]));  // rw
          }
        }
      } else if (order && !order->empty()) {
        add_edge(r, index.at(order->front()));  // read initial -> first writer
      }
    }
  }

  // Cycle detection (iterative DFS, 0=white 1=grey 2=black).
  std::vector<int> color(txs_.size(), 0);
  std::vector<std::size_t> parent(txs_.size(), SIZE_MAX);
  for (std::size_t s = 0; s < txs_.size(); ++s) {
    if (color[s] != 0) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack{{s, 0}};
    color[s] = 1;
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      if (next < adj[u].size()) {
        const std::size_t v = adj[u][next++];
        if (color[v] == 0) {
          color[v] = 1;
          parent[v] = u;
          stack.emplace_back(v, 0);
        } else if (color[v] == 1) {
          if (why) {
            std::ostringstream os;
            os << "cycle: tx " << txs_[v].id;
            for (std::size_t w = u; w != SIZE_MAX && w != v; w = parent[w]) {
              os << " <- tx " << txs_[w].id;
            }
            os << " <- tx " << txs_[v].id;
            *why = os.str();
          }
          return false;
        }
      } else {
        color[u] = 2;
        stack.pop_back();
      }
    }
  }
  return true;
}

}  // namespace sdur::workload
