#include "workload/driver.h"

#include <algorithm>

#include "util/logging.h"

namespace sdur::workload {

void Recorder::record(const std::string& cls, Outcome outcome, sim::Time latency, sim::Time now) {
  if (now < begin_ || now > end_) return;
  auto& st = classes_[cls];
  switch (outcome) {
    case Outcome::kCommit:
      ++st.committed;
      st.latency.record(latency);
      if (timeline_bucket_ > 0) {
        auto& series = timelines_[cls];
        const auto idx = static_cast<std::size_t>((now - begin_) / timeline_bucket_);
        if (series.size() <= idx) {
          series.resize(idx + 1);
          for (std::size_t i = 0; i < series.size(); ++i) {
            series[i].start = begin_ + static_cast<sim::Time>(i) * timeline_bucket_;
          }
        }
        TimelineBucket& b = series[idx];
        ++b.count;
        b.sum += static_cast<double>(latency);
        b.max = std::max(b.max, latency);
      }
      break;
    case Outcome::kAbort:
      ++st.aborted;
      break;
    default:
      ++st.unknown;
      break;
  }
}

const std::vector<Recorder::TimelineBucket>& Recorder::timeline(const std::string& cls) const {
  static const std::vector<TimelineBucket> kEmpty;
  auto it = timelines_.find(cls);
  return it == timelines_.end() ? kEmpty : it->second;
}

const Recorder::ClassStats& Recorder::of(const std::string& cls) const {
  static const ClassStats kEmpty;
  auto it = classes_.find(cls);
  return it == classes_.end() ? kEmpty : it->second;
}

double Recorder::throughput(const std::string& cls) const {
  const double window = static_cast<double>(end_ - begin_) / 1e6;
  if (window <= 0) return 0;
  if (!cls.empty()) return static_cast<double>(of(cls).committed) / window;
  return static_cast<double>(total_committed()) / window;
}

std::uint64_t Recorder::total_committed() const {
  std::uint64_t n = 0;
  for (const auto& [cls, st] : classes_) n += st.committed;
  return n;
}

std::uint64_t Recorder::total_aborted() const {
  std::uint64_t n = 0;
  for (const auto& [cls, st] : classes_) n += st.aborted;
  return n;
}

double RunResult::throughput(const std::string& cls) const {
  if (duration_sec <= 0) return 0;
  std::uint64_t n = 0;
  for (const auto& [name, st] : classes) {
    if (cls.empty() || name == cls) n += st.committed;
  }
  return static_cast<double>(n) / duration_sec;
}

std::int64_t RunResult::p99(const std::string& cls) const {
  auto it = classes.find(cls);
  return it == classes.end() ? 0 : it->second.latency.percentile(99.0);
}

std::int64_t RunResult::mean(const std::string& cls) const {
  auto it = classes.find(cls);
  return it == classes.end() ? 0 : static_cast<std::int64_t>(it->second.latency.mean());
}

RunResult run_experiment(Deployment& dep, Workload& wl, const RunConfig& cfg) {
  util::Rng rng(cfg.seed);
  wl.populate(dep, rng);
  dep.start();

  // Heap-allocated and retained: sessions keep recording after this
  // function returns if the caller continues running the simulation.
  auto recorder_ptr = std::make_shared<Recorder>();
  Recorder& recorder = *recorder_ptr;
  dep.retain(recorder_ptr);
  const sim::Time t0 = dep.simulator().now();
  const sim::Time begin = t0 + cfg.settle + cfg.warmup;
  const sim::Time end = begin + cfg.measure;
  recorder.set_window(begin, end);
  if (cfg.timeline_bucket > 0) recorder.enable_timeline(cfg.timeline_bucket);

  for (std::uint32_t i = 0; i < cfg.clients; ++i) {
    const PartitionId home = wl.client_home(i, dep.partition_count());
    Client& c = dep.add_client(home);
    std::shared_ptr<Session> session =
        wl.make_session(c, home, dep.partition_count(), rng.fork(), recorder);
    // Stagger session starts across the settle window to avoid a thundering
    // herd against a just-elected leader. Sessions are retained by the
    // deployment: their continuations live in the event queue and in
    // client callback tables, so they must survive this function.
    const sim::Time start_at = t0 + cfg.settle * (i + 1) / (cfg.clients + 1);
    dep.simulator().schedule_at(start_at, [session] { session->start(); });
    dep.retain(std::move(session));
  }

  dep.run_until(end);

  RunResult result;
  result.classes = recorder.classes();
  for (const auto& [cls, st] : recorder.classes()) {
    const auto& tl = recorder.timeline(cls);
    if (!tl.empty()) result.timelines[cls] = tl;
  }
  result.duration_sec = static_cast<double>(cfg.measure) / 1e6;
  result.servers = dep.total_stats();
  result.net = dep.network().stats();
  return result;
}

std::uint32_t find_operating_point(const DeploymentFactory& make_dep, const WorkloadFactory& make_wl,
                                   const RunConfig& probe, double fraction,
                                   std::uint32_t start_clients, std::uint32_t max_clients) {
  struct Point {
    std::uint32_t clients;
    double tput;
  };
  std::vector<Point> points;
  auto measure = [&](std::uint32_t clients) {
    auto dep = make_dep();
    auto wl = make_wl();
    RunConfig cfg = probe;
    cfg.clients = clients;
    const RunResult r = run_experiment(*dep, *wl, cfg);
    const double tput = r.throughput();
    points.push_back({clients, tput});
    SDUR_INFO("driver") << "probe clients=" << clients << " tput=" << tput;
    return tput;
  };

  // Double the offered load until saturation or the cap. Mixed workloads
  // have a convoy plateau (latency jumps once globals appear before
  // throughput picks up again with more clients), so require two
  // consecutive low-gain doublings before declaring saturation.
  std::uint32_t clients = std::max(start_clients, 1u);
  double best = measure(clients);
  int flat_rounds = 0;
  while (clients * 2 <= max_clients) {
    const double t = measure(clients * 2);
    clients *= 2;
    if (t < best * 1.08) {
      if (++flat_rounds >= 2) {
        best = std::max(best, t);
        break;
      }
    } else {
      flat_rounds = 0;
    }
    best = std::max(best, t);
  }

  // Interpolate the client count whose throughput is ~fraction*best.
  const double target = fraction * best;
  std::uint32_t candidate = points.back().clients;
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) { return a.clients < b.clients; });
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].tput >= target) {
      if (i == 0) {
        candidate = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(points[0].clients * target / std::max(points[0].tput, 1.0)));
      } else {
        const double span = points[i].tput - points[i - 1].tput;
        const double alpha = span <= 0 ? 1.0 : (target - points[i - 1].tput) / span;
        candidate = points[i - 1].clients +
                    static_cast<std::uint32_t>(alpha * (points[i].clients - points[i - 1].clients));
      }
      break;
    }
  }
  candidate = std::clamp<std::uint32_t>(candidate, 1, max_clients);
  SDUR_INFO("driver") << "operating point: clients=" << candidate << " (target " << target
                      << " tps of max " << best << ")";
  return candidate;
}

}  // namespace sdur::workload
