#include "workload/ycsb.h"

#include "util/zipf.h"

namespace sdur::workload {

void YcsbWorkload::populate(Deployment& dep, util::Rng& rng) {
  (void)rng;
  const std::uint64_t total = cfg_.records_per_partition * dep.partition_count();
  for (std::uint64_t k = 0; k < total; ++k) {
    dep.load(k, std::string(cfg_.value_size, 'y'));
  }
}

namespace {

class YcsbSession final : public Session {
 public:
  YcsbSession(Client& client, util::Rng rng, Recorder& rec, const YcsbConfig& cfg,
              PartitionId partitions)
      : client_(client),
        rng_(rng),
        rec_(rec),
        cfg_(cfg),
        partitions_(partitions),
        zipf_(cfg.records_per_partition * partitions, cfg.zipf_theta) {}

  void start() override { next(); }

 private:
  Key pick_key() { return zipf_.sample(rng_); }

  void next() {
    if (cfg_.keep_running && !cfg_.keep_running()) return;
    if (rng_.chance(cfg_.update_fraction())) {
      update();
    } else {
      read();
    }
  }

  void finish(const char* cls, Outcome outcome, sim::Time begin) {
    const sim::Time now = client_.now();
    rec_.record(cls, outcome, now - begin, now);
    next();
  }

  void read() {
    const Key k = pick_key();
    client_.begin();
    const sim::Time begin = client_.now();
    client_.read(k, [this, begin](bool, const std::string&) {
      // Single-key snapshot read: commits locally without certification.
      client_.commit([this, begin](Outcome o) { finish("read", o, begin); });
    });
  }

  void update() {
    const Key k = pick_key();
    client_.begin();
    const sim::Time begin = client_.now();
    client_.read(k, [this, k, begin](bool, const std::string&) {
      client_.write(k, std::string(cfg_.value_size, 'z'));
      client_.commit([this, begin](Outcome o) { finish("update", o, begin); });
    });
  }

  Client& client_;
  util::Rng rng_;
  Recorder& rec_;
  const YcsbConfig& cfg_;
  PartitionId partitions_;
  util::ZipfGenerator zipf_;
};

}  // namespace

std::unique_ptr<Session> YcsbWorkload::make_session(Client& client, PartitionId home,
                                                    PartitionId partitions, util::Rng rng,
                                                    Recorder& rec) {
  (void)home;
  return std::make_unique<YcsbSession>(client, rng, rec, cfg_, partitions);
}

}  // namespace sdur::workload
