// Offline serializability checker.
//
// Property tests drive random workloads whose writes carry globally unique
// transaction ids; after the run, the checker rebuilds the multiversion
// serialization graph from (a) each committed transaction's observed reads
// (key -> id of the transaction whose write it saw) and (b) the per-key
// version order recovered from a replica's multiversion store. The history
// is serializable iff the graph is acyclic (Bernstein et al., multiversion
// serialization graph theorem with committed versions ordered per key).
//
// Edge rules, with tx 0 standing for the initial database load:
//   wr: w wrote the version r read            -> edge w -> r
//   ww: w1's version precedes w2's on a key   -> edge w1 -> w2
//   rw: r read the version before w2's        -> edge r -> w2
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sdur/transaction.h"

namespace sdur::workload {

class SerializabilityChecker {
 public:
  /// Registers a committed transaction: `reads` maps each key to the id of
  /// the transaction whose write was observed (0 = initial value); `writes`
  /// lists the keys the transaction wrote.
  void add_committed(TxId id, std::vector<std::pair<Key, TxId>> reads, std::vector<Key> writes);

  /// Sets the version order of a key: ids of the committed writers in
  /// ascending version order (excluding the initial load).
  void set_key_order(Key k, std::vector<TxId> writers_in_order);

  /// True if the history is serializable. On failure `why` (if non-null)
  /// describes a cycle or inconsistency.
  bool check(std::string* why = nullptr) const;

  std::size_t committed_count() const { return txs_.size(); }

 private:
  struct Tx {
    TxId id;
    std::vector<std::pair<Key, TxId>> reads;
    std::vector<Key> writes;
  };
  std::vector<Tx> txs_;
  std::unordered_map<Key, std::vector<TxId>> key_order_;
};

}  // namespace sdur::workload
