// Twitter-like social network benchmark (paper Section VI-A).
//
// Per user u the store keeps three records, partitioned by user (a user's
// records all live in one partition):
//   consumers(u): ids of users following u
//   producers(u): ids of users u follows
//   posts(u):     u's most recent messages
//
// Operations and their transaction classes:
//   post      — append a message to posts(u); always local.
//   follow    — u follows v: update producers(u) and consumers(v); local or
//               global depending on where v lives ("follow_global").
//   timeline  — read producers(u), then merge the posts of every followed
//               user; a global read-only transaction (never aborts).
//
// The paper's mix: 85% timeline, 7.5% post, 7.5% follow, follows global
// with 50% probability; two partitions of 100k users (default here is
// smaller and configurable; see DESIGN.md).
#pragma once

#include "sdur/partitioning.h"
#include "workload/driver.h"

namespace sdur::workload {

struct SocialConfig {
  std::uint64_t users_per_partition = 20'000;
  double timeline_fraction = 0.85;
  double post_fraction = 0.075;  // remainder is follow
  double follow_global_probability = 0.5;
  std::uint32_t initial_follows = 10;  // producers preloaded per user
  std::uint32_t initial_posts = 3;
  std::uint32_t posts_cap = 10;      // ring of most recent posts
  std::uint32_t follows_cap = 200;   // bound on list growth

  /// Run timelines as *certified* read-only transactions (paper Section
  /// III-A's first option: certify snapshot consistency at termination,
  /// which can abort but always sees fresh data) instead of executing
  /// against an asynchronously built global snapshot (never aborts, may
  /// be slightly stale). Compared by bench/ablation_readonly.
  bool certified_timeline = false;

  /// Sessions stop starting new operations once this returns false.
  std::function<bool()> keep_running;
};

/// Key layout: key = (user << 2) | field.
enum SocialField : Key { kConsumers = 0, kProducers = 1, kPosts = 2 };

inline Key social_key(std::uint64_t user, SocialField field) {
  return (user << 2) | static_cast<Key>(field);
}

/// Users are partitioned round-robin: partition(u) = u % P, so "user u of
/// partition p" is easy to sample (u = p + k*P).
class UserPartitioning final : public Partitioning {
 public:
  explicit UserPartitioning(PartitionId count) : Partitioning(count) {}
  PartitionId partition_of(Key k) const override {
    return static_cast<PartitionId>((k >> 2) % count());
  }
};

/// List codecs (id lists for consumers/producers, string lists for posts).
std::string encode_id_list(const std::vector<std::uint64_t>& ids);
std::vector<std::uint64_t> decode_id_list(const std::string& value);
std::string encode_post_list(const std::vector<std::string>& posts);
std::vector<std::string> decode_post_list(const std::string& value);

class SocialWorkload final : public Workload {
 public:
  explicit SocialWorkload(SocialConfig cfg) : cfg_(cfg) {}

  static PartitioningPtr make_partitioning(PartitionId partitions) {
    return std::make_shared<UserPartitioning>(partitions);
  }

  void populate(Deployment& dep, util::Rng& rng) override;
  std::unique_ptr<Session> make_session(Client& client, PartitionId home, PartitionId partitions,
                                        util::Rng rng, Recorder& rec) override;

  const SocialConfig& config() const { return cfg_; }

 private:
  SocialConfig cfg_;
};

}  // namespace sdur::workload
