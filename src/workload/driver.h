// Experiment driver: closed-loop clients, measurement windows, and the
// "75% of maximum performance" operating-point search used throughout the
// paper's evaluation (Section VI-A).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "sdur/deployment.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sdur::workload {

/// Collects per-class latency histograms and commit/abort counts inside a
/// measurement window (records outside the window are dropped).
class Recorder {
 public:
  struct ClassStats {
    util::Histogram latency{6};  // microseconds
    std::uint64_t committed = 0;
    std::uint64_t aborted = 0;
    std::uint64_t unknown = 0;
  };

  void set_window(sim::Time begin, sim::Time end) {
    begin_ = begin;
    end_ = end;
  }
  sim::Time window_begin() const { return begin_; }

  void record(const std::string& cls, Outcome outcome, sim::Time latency, sim::Time now);

  /// Enables per-class latency time series (bucketed by wall-clock window);
  /// used to visualize the convoy effect over time.
  void enable_timeline(sim::Time bucket_width) { timeline_bucket_ = bucket_width; }

  struct TimelineBucket {
    sim::Time start = 0;
    std::uint64_t count = 0;
    double sum = 0;
    sim::Time max = 0;
  };
  const std::vector<TimelineBucket>& timeline(const std::string& cls) const;

  const std::map<std::string, ClassStats>& classes() const { return classes_; }
  const ClassStats& of(const std::string& cls) const;

  /// Committed transactions per second for one class ("" = all classes).
  double throughput(const std::string& cls = "") const;

  std::uint64_t total_committed() const;
  std::uint64_t total_aborted() const;

 private:
  sim::Time begin_ = 0;
  sim::Time end_ = 0;
  sim::Time timeline_bucket_ = 0;
  std::map<std::string, ClassStats> classes_;
  std::map<std::string, std::vector<TimelineBucket>> timelines_;
};

/// One closed-loop client session; start() begins issuing transactions and
/// each completion immediately starts the next.
class Session {
 public:
  virtual ~Session() = default;
  virtual void start() = 0;
};

/// A benchmark workload: initial data + a session per client.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Loads the initial database into every replica. Called before start().
  virtual void populate(Deployment& dep, util::Rng& rng) = 0;

  /// Home partition of the i-th client (clients are spread across
  /// partitions' home regions by default).
  virtual PartitionId client_home(std::uint32_t index, PartitionId partitions) const {
    return index % partitions;
  }

  /// Creates the i-th client's session. `home` is the partition the client
  /// was homed on (its region hosts that partition's preferred server).
  virtual std::unique_ptr<Session> make_session(Client& client, PartitionId home,
                                                PartitionId partitions, util::Rng rng,
                                                Recorder& rec) = 0;
};

struct RunConfig {
  std::uint32_t clients = 32;
  /// > 0 enables per-class latency time series with this bucket width.
  sim::Time timeline_bucket = 0;
  sim::Time settle = sim::msec(800);  // leader election + gossip warmup
  sim::Time warmup = sim::sec(2);
  sim::Time measure = sim::sec(8);
  std::uint64_t seed = 7;
};

struct RunResult {
  std::map<std::string, Recorder::ClassStats> classes;
  std::map<std::string, std::vector<Recorder::TimelineBucket>> timelines;
  double duration_sec = 0;
  Server::Stats servers;
  sim::NetworkStats net;

  double throughput(const std::string& cls = "") const;
  /// p99 / mean latency in microseconds for a class (0 if absent).
  std::int64_t p99(const std::string& cls) const;
  std::int64_t mean(const std::string& cls) const;
};

/// Runs `wl` on `dep` with cfg.clients closed-loop clients and returns the
/// measured statistics. `dep` must be freshly built (the run pollutes it).
RunResult run_experiment(Deployment& dep, Workload& wl, const RunConfig& cfg);

using DeploymentFactory = std::function<std::unique_ptr<Deployment>()>;
using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

/// Finds the number of closed-loop clients at which committed throughput is
/// roughly `fraction` of the saturation throughput (paper: results are
/// reported at 75% of maximum performance). Uses short probe runs: client
/// counts double until throughput stops improving, then the count is
/// back-interpolated to the target.
std::uint32_t find_operating_point(const DeploymentFactory& make_dep, const WorkloadFactory& make_wl,
                                   const RunConfig& probe, double fraction = 0.75,
                                   std::uint32_t start_clients = 8,
                                   std::uint32_t max_clients = 4096);

}  // namespace sdur::workload
