// Microbenchmark (paper Section VI-A).
//
// Each transaction updates two objects (two reads + two writes). A local
// transaction picks both keys in the client's home partition; a global
// transaction (with probability `global_fraction`) updates one local and
// one remote object. Keys are drawn uniformly from `items_per_partition`
// items per partition (the paper uses one million 4-byte items; the default
// here is smaller to keep simulation memory modest — contention is
// negligible either way — and is configurable).
#pragma once

#include "sdur/partitioning.h"
#include "workload/driver.h"
#include "workload/history.h"

namespace sdur::workload {

struct MicroConfig {
  std::uint64_t items_per_partition = 100'000;
  double global_fraction = 0.1;
  std::size_t value_size = 4;

  /// Items read and written per transaction (the paper uses 2: "two read
  /// and two write operations"). A global transaction keeps exactly one
  /// remote item regardless.
  std::size_t ops_per_txn = 2;

  /// Key skew: 0 = uniform (the paper's setting); > 0 draws keys from a
  /// Zipf distribution with this theta, concentrating load on hot items
  /// and raising the certification abort rate (bench/ablation_contention).
  double zipf_theta = 0.0;

  /// P-DUR core-affinity shaping (meaningful when the servers model
  /// pdur.cores > 1; set to the same core count). cores > 1 makes sessions
  /// core-aware: with probability 1 - cross_core_fraction all of a
  /// transaction's home-partition keys are homed on one simulated core
  /// (P-DUR's single-core fast path); otherwise the keys deliberately span
  /// at least two cores, exercising the cross-core barrier. cores == 1
  /// (default) leaves key choice untouched and consumes no extra
  /// randomness — legacy runs are bit-identical.
  std::uint32_t cores = 1;
  double cross_core_fraction = 0.0;

  /// When set, written values encode the writing transaction id and every
  /// commit is reported here — used by the serializability property tests.
  std::function<void(TxId, std::vector<std::pair<Key, TxId>>, std::vector<Key>)> commit_hook;

  /// Sessions stop starting new transactions once this returns false
  /// (lets tests quiesce the system before inspecting state).
  std::function<bool()> keep_running;
};

class MicroWorkload final : public Workload {
 public:
  explicit MicroWorkload(MicroConfig cfg) : cfg_(std::move(cfg)) {}

  /// Partitioning matching this workload's key layout.
  static PartitioningPtr make_partitioning(PartitionId partitions, std::uint64_t items_per_partition) {
    return std::make_shared<RangePartitioning>(partitions, items_per_partition);
  }

  void populate(Deployment& dep, util::Rng& rng) override;
  std::unique_ptr<Session> make_session(Client& client, PartitionId home, PartitionId partitions,
                                        util::Rng rng, Recorder& rec) override;

  /// Encodes a value; carries the writer's txid when a commit hook is set.
  static std::string encode_value(TxId writer, std::size_t size);
  /// Recovers the writer txid from a value (0 = initial load).
  static TxId decode_writer(const std::string& value);

 private:
  MicroConfig cfg_;
};

}  // namespace sdur::workload
