#include "workload/social.h"

#include <algorithm>

namespace sdur::workload {

std::string encode_id_list(const std::vector<std::uint64_t>& ids) {
  util::Writer w;
  w.varint(ids.size());
  for (std::uint64_t id : ids) w.u64(id);
  return {reinterpret_cast<const char*>(w.data().data()), w.size()};
}

std::vector<std::uint64_t> decode_id_list(const std::string& value) {
  if (value.empty()) return {};
  util::Reader r(reinterpret_cast<const std::uint8_t*>(value.data()), value.size());
  const std::uint64_t n = r.varint();
  std::vector<std::uint64_t> ids;
  ids.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) ids.push_back(r.u64());
  return ids;
}

std::string encode_post_list(const std::vector<std::string>& posts) {
  util::Writer w;
  w.varint(posts.size());
  for (const auto& p : posts) w.bytes(p);
  return {reinterpret_cast<const char*>(w.data().data()), w.size()};
}

std::vector<std::string> decode_post_list(const std::string& value) {
  if (value.empty()) return {};
  util::Reader r(reinterpret_cast<const std::uint8_t*>(value.data()), value.size());
  const std::uint64_t n = r.varint();
  std::vector<std::string> posts;
  posts.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) posts.push_back(r.bytes());
  return posts;
}

void SocialWorkload::populate(Deployment& dep, util::Rng& rng) {
  const PartitionId partitions = dep.partition_count();
  const std::uint64_t total_users = cfg_.users_per_partition * partitions;

  std::vector<std::vector<std::uint64_t>> producers(total_users);
  std::vector<std::vector<std::uint64_t>> consumers(total_users);

  for (std::uint64_t u = 0; u < total_users; ++u) {
    for (std::uint32_t f = 0; f < cfg_.initial_follows; ++f) {
      // 50% of the initial graph crosses partitions, mirroring the
      // benchmark's follow behaviour.
      std::uint64_t v;
      if (partitions > 1 && rng.chance(cfg_.follow_global_probability)) {
        PartitionId other = static_cast<PartitionId>(rng.below(partitions - 1));
        if (other >= u % partitions) ++other;
        v = other + partitions * rng.below(cfg_.users_per_partition);
      } else {
        v = (u % partitions) + partitions * rng.below(cfg_.users_per_partition);
      }
      if (v == u) continue;
      if (std::find(producers[u].begin(), producers[u].end(), v) != producers[u].end()) continue;
      producers[u].push_back(v);
      consumers[v].push_back(u);
    }
  }

  for (std::uint64_t u = 0; u < total_users; ++u) {
    std::vector<std::string> posts;
    for (std::uint32_t i = 0; i < cfg_.initial_posts; ++i) {
      posts.push_back("init-" + std::to_string(u) + "-" + std::to_string(i));
    }
    dep.load(social_key(u, kProducers), encode_id_list(producers[u]));
    dep.load(social_key(u, kConsumers), encode_id_list(consumers[u]));
    dep.load(social_key(u, kPosts), encode_post_list(posts));
  }
}

namespace {

class SocialSession final : public Session {
 public:
  SocialSession(Client& client, util::Rng rng, Recorder& rec, const SocialConfig& cfg,
                PartitionId home, PartitionId partitions)
      : client_(client), rng_(rng), rec_(rec), cfg_(cfg), home_(home), partitions_(partitions) {}

  void start() override { next(); }

 private:
  std::uint64_t user_in(PartitionId p) { return p + partitions_ * rng_.below(cfg_.users_per_partition); }

  std::uint64_t local_user() { return user_in(home_); }

  void next() {
    if (cfg_.keep_running && !cfg_.keep_running()) return;
    const double dice = rng_.uniform();
    if (dice < cfg_.timeline_fraction) {
      timeline();
    } else if (dice < cfg_.timeline_fraction + cfg_.post_fraction) {
      post();
    } else {
      follow();
    }
  }

  void finish(const char* cls, Outcome outcome, sim::Time begin) {
    const sim::Time now = client_.now();
    rec_.record(cls, outcome, now - begin, now);
    next();
  }

  // --- timeline: global read-only -----------------------------------------
  void timeline() {
    const std::uint64_t u = local_user();
    const sim::Time begin = client_.now();
    if (cfg_.certified_timeline) {
      // Certified mode: a plain transaction with an empty writeset — goes
      // through the full termination protocol and may abort on snapshot
      // inconsistency, but reads the freshest committed state.
      client_.begin();
      read_timeline_body(u, begin);
      return;
    }
    client_.begin_read_only([this, u, begin] {
      client_.read(social_key(u, kProducers), [this, begin](bool found, const std::string& value) {
        const std::vector<std::uint64_t> follows = found ? decode_id_list(value) : std::vector<std::uint64_t>{};
        if (follows.empty()) {
          client_.commit([this, begin](Outcome o) { finish("timeline", o, begin); });
          return;
        }
        std::vector<Key> keys;
        keys.reserve(follows.size());
        for (std::uint64_t v : follows) keys.push_back(social_key(v, kPosts));
        client_.read_many(keys, [this, begin](std::vector<std::optional<std::string>> values) {
          // Merge the timelines client-side (result unused, but decode to
          // exercise the data path).
          std::size_t total = 0;
          for (const auto& v : values) {
            if (v) total += decode_post_list(*v).size();
          }
          (void)total;
          client_.commit([this, begin](Outcome o) { finish("timeline", o, begin); });
        });
      });
    });
  }

  void read_timeline_body(std::uint64_t u, sim::Time begin) {
    client_.read(social_key(u, kProducers), [this, begin](bool found, const std::string& value) {
      const auto follows = found ? decode_id_list(value) : std::vector<std::uint64_t>{};
      if (follows.empty()) {
        client_.commit([this, begin](Outcome o) { finish("timeline", o, begin); });
        return;
      }
      std::vector<Key> keys;
      keys.reserve(follows.size());
      for (std::uint64_t v : follows) keys.push_back(social_key(v, kPosts));
      client_.read_many(keys, [this, begin](std::vector<std::optional<std::string>> values) {
        for (const auto& v : values) {
          if (v) (void)decode_post_list(*v).size();
        }
        client_.commit([this, begin](Outcome o) { finish("timeline", o, begin); });
      });
    });
  }

  // --- post: local update ----------------------------------------------------
  void post() {
    const std::uint64_t u = local_user();
    client_.begin();
    const sim::Time begin = client_.now();
    const Key k = social_key(u, kPosts);
    client_.read(k, [this, k, begin](bool found, const std::string& value) {
      std::vector<std::string> posts = found ? decode_post_list(value) : std::vector<std::string>{};
      posts.push_back("post-" + std::to_string(client_.current_txid()));
      if (posts.size() > cfg_.posts_cap) {
        posts.erase(posts.begin(), posts.end() - cfg_.posts_cap);
      }
      client_.write(k, encode_post_list(posts));
      client_.commit([this, begin](Outcome o) { finish("post", o, begin); });
    });
  }

  // --- follow: local or global update ------------------------------------------
  void follow() {
    const std::uint64_t u = local_user();
    const bool global = partitions_ > 1 && rng_.chance(cfg_.follow_global_probability);
    std::uint64_t v;
    if (global) {
      PartitionId other = static_cast<PartitionId>(rng_.below(partitions_ - 1));
      if (other >= home_) ++other;
      v = user_in(other);
    } else {
      do {
        v = local_user();
      } while (v == u);
    }
    client_.begin();
    const sim::Time begin = client_.now();
    const Key ku = social_key(u, kProducers);
    const Key kv = social_key(v, kConsumers);
    client_.read_many({ku, kv}, [this, u, v, ku, kv, begin,
                                 global](std::vector<std::optional<std::string>> values) {
      std::vector<std::uint64_t> prod = values[0] ? decode_id_list(*values[0]) : std::vector<std::uint64_t>{};
      std::vector<std::uint64_t> cons = values[1] ? decode_id_list(*values[1]) : std::vector<std::uint64_t>{};
      if (prod.size() < cfg_.follows_cap &&
          std::find(prod.begin(), prod.end(), v) == prod.end()) {
        prod.push_back(v);
        cons.push_back(u);
        if (cons.size() > cfg_.follows_cap) cons.erase(cons.begin());
      }
      client_.write(ku, encode_id_list(prod));
      client_.write(kv, encode_id_list(cons));
      client_.commit([this, begin, global](Outcome o) {
        finish(global ? "follow_global" : "follow", o, begin);
      });
    });
  }

  Client& client_;
  util::Rng rng_;
  Recorder& rec_;
  const SocialConfig& cfg_;
  PartitionId home_;
  PartitionId partitions_;
};

}  // namespace

std::unique_ptr<Session> SocialWorkload::make_session(Client& client, PartitionId home,
                                                      PartitionId partitions, util::Rng rng,
                                                      Recorder& rec) {
  return std::make_unique<SocialSession>(client, rng, rec, cfg_, home, partitions);
}

}  // namespace sdur::workload
