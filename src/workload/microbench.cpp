#include "workload/microbench.h"

#include <algorithm>
#include <cstring>

#include "pdur/core_partitioner.h"
#include "util/zipf.h"

namespace sdur::workload {

std::string MicroWorkload::encode_value(TxId writer, std::size_t size) {
  std::string v(std::max<std::size_t>(size, sizeof(TxId)), '\0');
  std::memcpy(v.data(), &writer, sizeof(TxId));
  return v;
}

TxId MicroWorkload::decode_writer(const std::string& value) {
  if (value.size() < sizeof(TxId)) return 0;
  TxId id;
  std::memcpy(&id, value.data(), sizeof(TxId));
  return id;
}

void MicroWorkload::populate(Deployment& dep, util::Rng& rng) {
  (void)rng;
  const std::uint64_t total = cfg_.items_per_partition * dep.partition_count();
  const bool tagged = static_cast<bool>(cfg_.commit_hook);
  for (std::uint64_t k = 0; k < total; ++k) {
    dep.load(k, tagged ? encode_value(0, cfg_.value_size) : std::string(cfg_.value_size, 'x'));
  }
}

namespace {

class MicroSession final : public Session {
 public:
  MicroSession(Client& client, util::Rng rng, Recorder& rec, const MicroConfig& cfg,
               PartitionId home, PartitionId partitions)
      : client_(client), rng_(rng), rec_(rec), cfg_(cfg), home_(home), partitions_(partitions) {
    if (cfg_.zipf_theta > 0) {
      zipf_.emplace(cfg_.items_per_partition, cfg_.zipf_theta);
    }
    if (cfg_.cores > 1) part_.emplace(cfg_.cores);
  }

  void start() override { next(); }

 private:
  Key key_in(PartitionId p) {
    const std::uint64_t rank =
        zipf_ ? zipf_->sample(rng_) : rng_.below(cfg_.items_per_partition);
    return p * cfg_.items_per_partition + rank;
  }

  /// Rejection-samples a key in partition p homed on core c (matching =
  /// true) or anywhere but c (matching = false). Bounded tries keep the
  /// session live even with degenerate core/key layouts.
  Key key_for_core(PartitionId p, pdur::CoreId c, bool matching) {
    for (int tries = 0; tries < 256; ++tries) {
      const Key k = key_in(p);
      if ((part_->core_of(k) == c) == matching) return k;
    }
    return key_in(p);
  }

  void next() {
    if (cfg_.keep_running && !cfg_.keep_running()) return;
    client_.begin();
    const bool global = partitions_ > 1 && rng_.chance(cfg_.global_fraction);

    // ops_per_txn distinct keys; a global transaction keeps exactly one
    // remote item (paper: "updates one local object and one remote object").
    std::vector<Key> keys;
    const std::size_t ops = std::max<std::size_t>(cfg_.ops_per_txn, 2);
    const std::size_t home_keys = ops - (global ? 1 : 0);
    if (part_) {
      // Core-aware key choice (P-DUR workloads): pin the transaction's
      // home-partition keys to the first key's core, or deliberately span
      // a second core with probability cross_core_fraction.
      const bool cross = home_keys > 1 && rng_.chance(cfg_.cross_core_fraction);
      const Key first = key_in(home_);
      keys.push_back(first);
      const pdur::CoreId c0 = part_->core_of(first);
      while (keys.size() < home_keys) {
        const bool off_core = cross && keys.size() == 1;
        const Key k = key_for_core(home_, c0, !off_core);
        if (std::find(keys.begin(), keys.end(), k) == keys.end()) keys.push_back(k);
      }
    } else {
      while (keys.size() < home_keys) {
        const Key k = key_in(home_);
        if (std::find(keys.begin(), keys.end(), k) == keys.end()) keys.push_back(k);
      }
    }
    if (global) {
      PartitionId other = static_cast<PartitionId>(rng_.below(partitions_ - 1));
      if (other >= home_) ++other;
      keys.push_back(key_in(other));
    }
    const sim::Time begin = client_.now();
    const TxId txid = client_.current_txid();

    client_.read_many(keys, [this, keys, begin, global, txid](
                                std::vector<std::optional<std::string>> values) {
      std::vector<std::pair<Key, TxId>> reads;
      const bool tagged = static_cast<bool>(cfg_.commit_hook);
      for (std::size_t i = 0; i < keys.size(); ++i) {
        if (tagged) {
          reads.emplace_back(keys[i],
                             values[i] ? MicroWorkload::decode_writer(*values[i]) : 0);
        }
        client_.write(keys[i], MicroWorkload::encode_value(tagged ? txid : 0, cfg_.value_size));
      }
      client_.commit([this, begin, global, txid, keys,
                      reads = std::move(reads)](Outcome outcome) mutable {
        const sim::Time now = client_.now();
        rec_.record(global ? "global" : "local", outcome, now - begin, now);
        if (outcome == Outcome::kCommit && cfg_.commit_hook) {
          cfg_.commit_hook(txid, std::move(reads), keys);
        }
        next();
      });
    });
  }

  Client& client_;
  util::Rng rng_;
  Recorder& rec_;
  const MicroConfig& cfg_;
  PartitionId home_;
  PartitionId partitions_;
  std::optional<util::ZipfGenerator> zipf_;
  std::optional<pdur::CorePartitioner> part_;  // set when cfg.cores > 1
};

}  // namespace

std::unique_ptr<Session> MicroWorkload::make_session(Client& client, PartitionId home,
                                                     PartitionId partitions, util::Rng rng,
                                                     Recorder& rec) {
  return std::make_unique<MicroSession>(client, rng, rec, cfg_, home, partitions);
}

}  // namespace sdur::workload
