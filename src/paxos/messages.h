// Paxos wire messages (tag range 1-19).
//
// All messages are encoded through util::Writer/Reader; the engine decodes
// on receipt. Values are opaque byte strings supplied by the layer above
// (SDUR encodes transactions into them).
#pragma once

#include <vector>

#include "paxos/types.h"
#include "sim/message.h"

namespace sdur::paxos {

namespace msgtype {
constexpr sim::MsgType kPhase1A = 1;
constexpr sim::MsgType kPhase1B = 2;
constexpr sim::MsgType kPhase2A = 3;
constexpr sim::MsgType kPhase2B = 4;
constexpr sim::MsgType kNack = 5;
constexpr sim::MsgType kHeartbeat = 6;
constexpr sim::MsgType kForward = 7;
constexpr sim::MsgType kCatchupReq = 8;
constexpr sim::MsgType kCatchupResp = 9;
constexpr sim::MsgType kStateTransfer = 10;
constexpr sim::MsgType kFirst = kPhase1A;
constexpr sim::MsgType kLast = kStateTransfer;
}  // namespace msgtype

/// An accepted (instance, ballot, value) triple, reported in Phase 1B.
struct AcceptedEntry {
  InstanceId instance = 0;
  Ballot ballot;
  Value value;
};

struct Phase1A {
  Ballot ballot;
  InstanceId low_instance = 0;  // report accepted entries >= this

  sim::Message to_message() const;
  static Phase1A decode(util::Reader& r);
};

struct Phase1B {
  Ballot ballot;                       // the promise
  InstanceId next_deliver = 0;         // acceptor's decided prefix
  std::vector<AcceptedEntry> entries;  // accepted at >= low_instance

  sim::Message to_message() const;
  static Phase1B decode(util::Reader& r);
};

struct Phase2A {
  Ballot ballot;
  InstanceId instance = 0;
  Value value;

  sim::Message to_message() const;
  static Phase2A decode(util::Reader& r);
};

struct Phase2B {
  Ballot ballot;
  InstanceId instance = 0;
  std::uint32_t acceptor_index = 0;

  sim::Message to_message() const;
  static Phase2B decode(util::Reader& r);
};

/// Rejection carrying the highest promised ballot, so a stale proposer can
/// pick a higher round.
struct Nack {
  Ballot promised;

  sim::Message to_message() const;
  static Nack decode(util::Reader& r);
};

struct Heartbeat {
  Ballot ballot;
  InstanceId decided_upto = 0;  // leader's contiguous decided prefix

  sim::Message to_message() const;
  static Heartbeat decode(util::Reader& r);
};

/// A client value forwarded to the (believed) leader.
struct Forward {
  Value value;

  sim::Message to_message() const;
  static Forward decode(util::Reader& r);
};

struct CatchupReq {
  InstanceId from_instance = 0;

  sim::Message to_message() const;
  static CatchupReq decode(util::Reader& r);
};

struct CatchupResp {
  InstanceId first_instance = 0;
  std::vector<Value> values;  // decided values, contiguous from first_instance

  sim::Message to_message() const;
  static CatchupResp decode(util::Reader& r);
};

/// A full application checkpoint shipped to a replica that fell behind a
/// log truncation point: "install this state, then resume delivery at
/// `resume_at`".
struct StateTransfer {
  InstanceId resume_at = 0;
  Value app_state;

  sim::Message to_message() const;
  static StateTransfer decode(util::Reader& r);
};

/// Batch helpers: a Paxos value proposed by the leader is a batch of client
/// values (possibly empty = no-op used for gap filling).
Value encode_batch(const std::vector<Value>& values);
std::vector<Value> decode_batch(const Value& batch);

}  // namespace sdur::paxos
