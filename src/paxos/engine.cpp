#include "paxos/engine.h"

#include <algorithm>
#include <bit>

#include "audit/audit.h"
#include "util/hash.h"
#include "util/logging.h"

namespace sdur::paxos {

namespace {
constexpr std::size_t kMaxCatchupValues = 256;
constexpr std::uint32_t kBehindHeartbeatsBeforeCatchup = 3;

std::uint64_t value_hash(const Value& v) {
  return sdur::util::fnv1a(
      std::string_view(reinterpret_cast<const char*>(v.data()), v.size()));
}
}

PaxosEngine::PaxosEngine(sim::Endpoint& endpoint, GroupConfig config,
                         std::unique_ptr<DurableLog> log, DeliverFn deliver)
    : ep_(endpoint), cfg_(std::move(config)), log_(std::move(log)), deliver_(std::move(deliver)) {
  for (std::uint32_t i = 0; i < cfg_.members.size(); ++i) index_of_[cfg_.members[i]] = i;
  promised_ = log_->load_promise();
  highest_seen_ = promised_;
  trace_track_ = SDUR_TRACE_REGISTER(ep_.self(), "paxos-" + std::to_string(ep_.self()), -1);
  // Group identity for the cross-replica audit oracle: every member hashes
  // the same member list, and distinct groups have distinct member sets.
  SDUR_AUDIT({
    std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
    for (ProcessId pid : cfg_.members) h = (h ^ pid) * 1099511628211ULL;
    audit_group_ = h;
  });
}

void PaxosEngine::start() {
  started_ = true;
  last_leader_contact_ = ep_.current_time();
  if (cfg_.self_index == 0) start_campaign();
  ep_.start_timer(cfg_.heartbeat_interval / 2, [this] { tick(); });
}

ProcessId PaxosEngine::leader_hint() const {
  if (role_ == Role::kLeader) return ep_.self();
  if (leader_hint_ != 0) return leader_hint_;
  // Fall back to the proposer of the highest promised ballot, or member 0.
  if (promised_.valid()) return cfg_.members[promised_.proposer_index() % cfg_.members.size()];
  return cfg_.members[0];
}

std::uint32_t PaxosEngine::member_index(ProcessId pid) const {
  auto it = index_of_.find(pid);
  return it == index_of_.end() ? 0xFFFFFFFF : it->second;
}

void PaxosEngine::broadcast(const sim::Message& m) {
  for (ProcessId pid : cfg_.members) send_to(pid, m);
}

void PaxosEngine::send_to(ProcessId to, const sim::Message& m) {
  if (send_wrapper_) {
    ep_.send_message(to, send_wrapper_(to, m));
    return;
  }
  ep_.send_message(to, m);
}

Time PaxosEngine::election_deadline() const {
  // Staggered by member index so candidates do not duel.
  return last_leader_contact_ + cfg_.election_timeout +
         static_cast<Time>(cfg_.self_index) * (cfg_.election_timeout / 4);
}

void PaxosEngine::handle_message(const sim::Message& m, ProcessId from) {
  util::Reader r(m.payload);
  switch (m.type) {
    case msgtype::kPhase1A:
      on_phase1a(Phase1A::decode(r), from);
      break;
    case msgtype::kPhase1B:
      on_phase1b(Phase1B::decode(r), from);
      break;
    case msgtype::kPhase2A:
      on_phase2a(Phase2A::decode(r), from);
      break;
    case msgtype::kPhase2B:
      on_phase2b(Phase2B::decode(r), from);
      break;
    case msgtype::kNack:
      on_nack(Nack::decode(r));
      break;
    case msgtype::kHeartbeat:
      on_heartbeat(Heartbeat::decode(r), from);
      break;
    case msgtype::kForward:
      on_forward(Forward::decode(r), from);
      break;
    case msgtype::kCatchupReq:
      on_catchup_req(CatchupReq::decode(r), from);
      break;
    case msgtype::kCatchupResp:
      on_catchup_resp(CatchupResp::decode(r));
      break;
    case msgtype::kStateTransfer:
      on_state_transfer(StateTransfer::decode(r));
      break;
    default:
      break;
  }
}

// --- Leader election -------------------------------------------------------

void PaxosEngine::start_campaign() {
  const std::uint64_t round = std::max(highest_seen_.round(), promised_.round()) + 1;
  const Ballot ballot = Ballot::make(round, cfg_.self_index);
  role_ = Role::kCandidate;
  promised_ = ballot;
  highest_seen_ = ballot;
  log_->save_promise(ballot);
  promises_.clear();
  leader_hint_ = ep_.self();
  last_leader_contact_ = ep_.current_time();
  ++stats_.leader_elections;
  SDUR_DEBUG("paxos") << "campaign ballot=" << ballot.n << " self=" << ep_.self();
  broadcast(Phase1A{ballot, next_deliver_}.to_message());
}

void PaxosEngine::on_phase1a(const Phase1A& m, ProcessId from) {
  highest_seen_ = std::max(highest_seen_, m.ballot);
  if (m.ballot < promised_) {
    send_to(from, Nack{promised_}.to_message());
    ++stats_.nacks;
    return;
  }
  if (m.ballot > promised_) {
    promised_ = m.ballot;
    log_->save_promise(promised_);
    if (from != ep_.self()) {
      role_ = Role::kFollower;
      promises_.clear();
      open_.clear();
      leader_hint_ = from;
    }
  }
  last_leader_contact_ = ep_.current_time();
  Phase1B reply{m.ballot, next_deliver_, {}};
  for (auto& [inst, rec] : log_->accepted_from(std::min(m.low_instance, next_deliver_))) {
    reply.entries.push_back(AcceptedEntry{inst, rec.ballot, rec.value});
  }
  // Persist-before-ack: the promise hits the log before the reply leaves.
  ep_.start_timer(cfg_.log_write_latency,
                  [this, from, msg = reply.to_message()]() { send_to(from, msg); });
}

void PaxosEngine::on_phase1b(const Phase1B& m, ProcessId from) {
  if (role_ != Role::kCandidate || m.ballot != promised_) return;
  const std::uint32_t idx = member_index(from);
  if (idx == 0xFFFFFFFF) return;
  promises_[idx] = m;
  if (promises_.size() >= cfg_.quorum()) become_leader();
}

void PaxosEngine::become_leader() {
  role_ = Role::kLeader;
  leader_hint_ = ep_.self();
  SDUR_INFO("paxos") << "leader self=" << ep_.self() << " ballot=" << promised_.n;

  // Re-propose the highest-ballot accepted value for every instance at or
  // above our decided prefix; fill gaps with no-ops so delivery can proceed.
  std::map<InstanceId, AcceptedEntry> best;
  for (const auto& [idx, promise] : promises_) {
    for (const auto& e : promise.entries) {
      if (e.instance < next_deliver_) continue;
      auto it = best.find(e.instance);
      if (it == best.end() || e.ballot > it->second.ballot) best[e.instance] = e;
    }
  }
  InstanceId max_inst = next_deliver_ == 0 ? 0 : next_deliver_ - 1;
  bool any = false;
  if (!best.empty()) {
    max_inst = best.rbegin()->first;
    any = true;
  }
  next_instance_ = any ? max_inst + 1 : next_deliver_;
  open_.clear();
  for (InstanceId inst = next_deliver_; any && inst <= max_inst; ++inst) {
    auto it = best.find(inst);
    Value v = it != best.end() ? it->second.value : encode_batch({});
    std::vector<std::uint64_t> hashes;
    for (const Value& x : *decoded_batch(v)) hashes.push_back(value_hash(x));
    open_instance(inst, std::move(v), std::move(hashes));
  }
  // If the quorum's decided prefix is ahead of ours (we recovered from far
  // behind and the others checkpointed away the log we missed), pull the
  // gap explicitly — it will arrive as decided values or a state transfer.
  InstanceId quorum_decided = next_deliver_;
  ProcessId most_advanced = ep_.self();
  for (const auto& [idx, promise] : promises_) {
    if (promise.next_deliver > quorum_decided) {
      quorum_decided = promise.next_deliver;
      most_advanced = cfg_.members[idx];
    }
  }
  if (quorum_decided > next_deliver_) {
    send_to(most_advanced, CatchupReq{next_deliver_}.to_message());
  }
  next_instance_ = std::max(next_instance_, quorum_decided);
  promises_.clear();
  broadcast(Heartbeat{promised_, next_deliver_}.to_message());
  maybe_propose();
}

void PaxosEngine::step_down(Ballot seen) {
  highest_seen_ = std::max(highest_seen_, seen);
  if (role_ == Role::kFollower) return;
  SDUR_DEBUG("paxos") << "step down self=" << ep_.self();
  role_ = Role::kFollower;
  promises_.clear();
  open_.clear();
  last_leader_contact_ = ep_.current_time();
}

void PaxosEngine::on_nack(const Nack& m) {
  highest_seen_ = std::max(highest_seen_, m.promised);
  if (role_ != Role::kFollower && m.promised > promised_) step_down(m.promised);
}

void PaxosEngine::on_heartbeat(const Heartbeat& m, ProcessId from) {
  highest_seen_ = std::max(highest_seen_, m.ballot);
  if (m.ballot < promised_) return;
  if (m.ballot > promised_) {
    promised_ = m.ballot;
    log_->save_promise(promised_);
    if (role_ != Role::kFollower) step_down(m.ballot);
  }
  if (from != ep_.self()) {
    leader_hint_ = from;
    last_leader_contact_ = ep_.current_time();
    if (role_ != Role::kFollower && m.ballot == promised_ &&
        promised_.proposer_index() != cfg_.self_index) {
      step_down(m.ballot);
    }
    // Flush any values buffered while leaderless.
    if (!pending_.empty()) {
      for (auto& v : pending_) send_to(from, Forward{std::move(v)}.to_message());
      pending_.clear();
    }
    if (m.decided_upto > next_deliver_) {
      ++behind_heartbeats_;
      if (m.decided_upto > next_deliver_ + cfg_.catchup_threshold ||
          behind_heartbeats_ >= kBehindHeartbeatsBeforeCatchup) {
        behind_heartbeats_ = 0;
        send_to(from, CatchupReq{next_deliver_}.to_message());
      }
    } else {
      behind_heartbeats_ = 0;
      if (m.decided_upto < next_deliver_) {
        // The leader itself is behind us (it won an election right after
        // recovering from far behind): push it the tail or a checkpoint.
        on_catchup_req(CatchupReq{m.decided_upto}, from);
      }
    }
  }
}

// --- Phase 2 ----------------------------------------------------------------

void PaxosEngine::propose(Value v) {
  auto& entry = submitted_[value_hash(v)];
  if (entry.count == 0) entry.value = v;
  ++entry.count;
  entry.submitted_at = ep_.current_time();
  on_forward(Forward{std::move(v)}, ep_.self());
}

bool PaxosEngine::value_in_flight(std::uint64_t hash) const {
  for (const Value& v : pending_) {
    if (value_hash(v) == hash) return true;
  }
  // Open instances carry their item hashes (computed once at open time),
  // so this scan never re-decodes a batch.
  for (const auto& [inst, oi] : open_) {
    for (std::uint64_t h : oi.item_hashes) {
      if (h == hash) return true;
    }
  }
  return false;
}

std::shared_ptr<const std::vector<Value>> PaxosEngine::decoded_batch(const Value& batch) {
  if (decode_cache_vals_ && decode_cache_key_ == batch) {
    ++stats_.decode_cache_hits;
    return decode_cache_vals_;
  }
  ++stats_.decode_cache_misses;
  decode_cache_key_ = batch;
  decode_cache_vals_ = std::make_shared<const std::vector<Value>>(decode_batch(batch));
  return decode_cache_vals_;
}

void PaxosEngine::on_forward(Forward m, ProcessId from) {
  (void)from;
  pending_.push_back(std::move(m.value));
  if (role_ == Role::kLeader) {
    maybe_propose();
    return;
  }
  const ProcessId hint = leader_hint();
  if (hint != ep_.self()) {
    for (auto& v : pending_) send_to(hint, Forward{std::move(v)}.to_message());
    pending_.clear();
  }
  // Otherwise keep buffering until a leader is known (flushed on heartbeat).
}

void PaxosEngine::maybe_propose() {
  while (role_ == Role::kLeader && !pending_.empty() && open_.size() < cfg_.pipeline_window) {
    std::vector<Value> batch;
    while (!pending_.empty() && batch.size() < cfg_.max_batch) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    // Hash the items while they are still in plain form — cheaper than
    // decoding the encoded batch back apart in open_instance.
    std::vector<std::uint64_t> hashes;
    hashes.reserve(batch.size());
    for (const Value& v : batch) hashes.push_back(value_hash(v));
    open_instance(next_instance_++, encode_batch(batch), std::move(hashes));
  }
}

void PaxosEngine::open_instance(InstanceId inst, Value value,
                                std::vector<std::uint64_t> item_hashes) {
  open_[inst] = OpenInstance{value, ep_.current_time(), std::move(item_hashes)};
  ++stats_.proposed_batches;
  broadcast(Phase2A{promised_, inst, std::move(value)}.to_message());
}

void PaxosEngine::on_phase2a(Phase2A m, ProcessId from) {
  highest_seen_ = std::max(highest_seen_, m.ballot);
  if (m.ballot < promised_ && !test_accept_stale_ballots_) {
    send_to(from, Nack{promised_}.to_message());
    ++stats_.nacks;
    return;
  }
  // Acceptor safety: accepting below the promise would let a deposed
  // leader's value win against the quorum a newer leader read, so two
  // values could be chosen for one instance. Reachable only through the
  // test_accept_stale_ballots fault injection — or a real protocol bug.
  SDUR_AUDIT_CHECK("paxos", "accept-ballot-monotonic", m.ballot >= promised_,
                   "acceptor " << ep_.self() << " accepts instance " << m.instance
                               << " at stale ballot " << m.ballot.n << " < promised "
                               << promised_.n);
  if (m.ballot > promised_) {
    promised_ = m.ballot;
    log_->save_promise(promised_);
    if (role_ != Role::kFollower && from != ep_.self()) step_down(m.ballot);
  }
  if (from != ep_.self()) {
    leader_hint_ = from;
    last_leader_contact_ = ep_.current_time();
  }
  if (m.instance < next_deliver_) {
    // Already decided and delivered here: the proposer is a stale leader
    // catching up after isolation/recovery — feed it the decisions instead
    // of silently ignoring, or its re-proposals would never gain a quorum.
    on_catchup_req(CatchupReq{m.instance}, from);
    return;
  }
  log_->save_accepted(m.instance, m.ballot, std::move(m.value));
  // Persist-before-ack, then let every member learn.
  const Phase2B ack{m.ballot, m.instance, cfg_.self_index};
  ep_.start_timer(cfg_.log_write_latency,
                  [this, msg = ack.to_message()]() { broadcast(msg); });
}

void PaxosEngine::record_ack(InstanceId inst, Ballot b, std::uint32_t acceptor_index) {
  auto& st = acks_[inst];
  if (b > st.ballot) {
    st.ballot = b;
    st.mask = 0;
  }
  if (b < st.ballot || acceptor_index >= 64) return;
  st.mask |= 1ULL << acceptor_index;
  if (static_cast<std::size_t>(std::popcount(st.mask)) >= cfg_.quorum()) {
    // Quorum reached: the decided value is whatever we accepted at this
    // ballot. If we have not accepted it (lost Phase 2A), catchup will
    // bring the decision later.
    auto rec = log_->load_accepted(inst);
    if (rec && rec->ballot == st.ballot) {
      decide(inst, std::move(rec->value));
    }
  }
}

void PaxosEngine::on_phase2b(const Phase2B& m, ProcessId from) {
  (void)from;
  if (m.instance < next_deliver_ || undelivered_.contains(m.instance)) return;
  record_ack(m.instance, m.ballot, m.acceptor_index);
}

void PaxosEngine::decide(InstanceId inst, Value value) {
  if (inst < next_deliver_ || undelivered_.contains(inst)) return;
  // A decided instance is immutable: re-deciding it locally with different
  // bytes means the log prefix was rewritten.
  SDUR_AUDIT({
    if (const auto prev = log_->load_decided(inst)) {
      SDUR_AUDIT_CHECK("paxos", "decided-immutable", value_hash(*prev) == value_hash(value),
                       "replica " << ep_.self() << " re-decides instance " << inst
                                  << " with different value");
    }
  });
  // Cross-replica agreement: every group member must decide the same value
  // for this instance.
  SDUR_AUDIT(audit::Oracle::instance().record_chosen(audit_group_, inst, value_hash(value),
                                                     ep_.self(), ep_.current_time()));
  SDUR_AUDIT_NOTE(ep_.current_time(), "paxos replica " << ep_.self() << " decided instance "
                                                       << inst << " (" << value.size()
                                                       << " bytes)");
  log_->save_decided(inst, value);
  SDUR_TRACE_STMT({
    // Consensus span: proposal opened here -> decided here (leader view).
    if (role_ == Role::kLeader) {
      if (const auto oi = open_.find(inst); oi != open_.end()) {
        ::sdur::trace::Tracer::instance().record_span(
            trace_track_, ::sdur::trace::Point::kConsensus, inst, oi->second.proposed_at,
            ep_.current_time(), value.size());
      }
    }
  });
  undelivered_[inst] = std::move(value);
  acks_.erase(inst);
  ++stats_.decided_instances;
  if (role_ == Role::kLeader) open_.erase(inst);
  try_deliver();
  if (role_ == Role::kLeader) maybe_propose();
}

void PaxosEngine::try_deliver() {
  while (true) {
    auto it = undelivered_.find(next_deliver_);
    if (it == undelivered_.end()) break;
    // Hold the decoded batch by shared_ptr: a deliver_ callback can reenter
    // the engine and rotate the cache, which must not invalidate this loop.
    const auto batch = decoded_batch(it->second);
    for (const Value& v : *batch) {
      ++stats_.delivered_values;
      auto sub = submitted_.find(value_hash(v));
      if (sub != submitted_.end() && --sub->second.count == 0) submitted_.erase(sub);
      deliver_(v);
    }
    undelivered_.erase(it);
    ++next_deliver_;
  }
}

// --- Catchup ----------------------------------------------------------------

void PaxosEngine::save_checkpoint(Value app_state) {
  ++stats_.checkpoints;
  log_->save_checkpoint(app_state, next_deliver_);
  log_->truncate_below(next_deliver_);
}

void PaxosEngine::on_state_transfer(const StateTransfer& m) {
  if (m.resume_at <= next_deliver_ || !install_) return;
  // The delivered prefix only ever grows; a state transfer may jump it
  // forward, never backward (guarded above — this documents the invariant
  // for audit builds and catches regressions of the guard).
  SDUR_AUDIT_CHECK("paxos", "delivery-prefix-monotonic", m.resume_at > next_deliver_,
                   "state transfer would rewind replica " << ep_.self() << " from instance "
                                                          << next_deliver_ << " to "
                                                          << m.resume_at);
  ++stats_.state_transfers_installed;
  install_(m.app_state);
  // The checkpoint subsumes our log prefix: persist it and resume from the
  // transfer point.
  log_->save_checkpoint(m.app_state, m.resume_at);
  log_->truncate_below(m.resume_at);
  next_deliver_ = m.resume_at;
  next_instance_ = std::max(next_instance_, next_deliver_);
  undelivered_.erase(undelivered_.begin(), undelivered_.lower_bound(next_deliver_));
  acks_.erase(acks_.begin(), acks_.lower_bound(next_deliver_));
  open_.erase(open_.begin(), open_.lower_bound(next_deliver_));
  try_deliver();
}

void PaxosEngine::on_catchup_req(const CatchupReq& m, ProcessId from) {
  if (m.from_instance < log_->first_retained()) {
    // The requested prefix was truncated; ship the covering checkpoint.
    if (const auto cp = log_->load_checkpoint(); cp && cp->second > m.from_instance) {
      ++stats_.state_transfers_sent;
      send_to(from, StateTransfer{cp->second, cp->first}.to_message());
      return;
    }
  }
  CatchupResp resp;
  resp.first_instance = m.from_instance;
  for (InstanceId inst = m.from_instance; resp.values.size() < kMaxCatchupValues; ++inst) {
    auto v = log_->load_decided(inst);
    if (!v) break;
    resp.values.push_back(std::move(*v));
  }
  if (!resp.values.empty()) send_to(from, resp.to_message());
}

void PaxosEngine::on_catchup_resp(const CatchupResp& m) {
  for (std::size_t i = 0; i < m.values.size(); ++i) {
    decide(m.first_instance + i, m.values[i]);
  }
}

// --- Timers -----------------------------------------------------------------

void PaxosEngine::tick() {
  const Time now = ep_.current_time();
  if (role_ == Role::kLeader) {
    broadcast(Heartbeat{promised_, next_deliver_}.to_message());
    // Re-drive instances whose acknowledgements got lost.
    const Time resend_after = cfg_.election_timeout / 2;
    for (auto& [inst, oi] : open_) {
      if (now - oi.proposed_at >= resend_after) {
        oi.proposed_at = now;
        ++stats_.resends;
        broadcast(Phase2A{promised_, inst, oi.value}.to_message());
      }
    }
  } else if (now >= election_deadline()) {
    start_campaign();
  }
  // Re-drive values submitted here that still have not been delivered
  // (lost forward, or a leader crashed with them in flight) — unless the
  // value is already in this replica's own pending queue or an open
  // instance (then the instance resend above re-drives it and resubmitting
  // would only create duplicates).
  for (auto& [hash, sub] : submitted_) {
    if (now - sub.submitted_at < cfg_.election_timeout) continue;
    sub.submitted_at = now;
    if (value_in_flight(hash)) continue;
    ++stats_.resends;
    on_forward(Forward{sub.value}, ep_.self());
  }
  ep_.start_timer(cfg_.heartbeat_interval / 2, [this] { tick(); });
}

// --- Recovery ----------------------------------------------------------------

void PaxosEngine::on_recover() {
  role_ = Role::kFollower;
  promises_.clear();
  open_.clear();
  pending_.clear();
  acks_.clear();
  undelivered_.clear();
  submitted_.clear();
  behind_heartbeats_ = 0;
  decode_cache_key_.clear();
  decode_cache_vals_.reset();
  promised_ = log_->load_promise();
  highest_seen_ = promised_;
  leader_hint_ = 0;
  last_leader_contact_ = ep_.current_time();
  // Restore the latest checkpoint (if any), then redeliver the decided
  // tail so the application rebuilds its state deterministically; anything
  // beyond the contiguous prefix comes via catchup.
  next_deliver_ = 0;
  if (const auto cp = log_->load_checkpoint()) {
    if (install_) {
      install_(cp->first);
      next_deliver_ = cp->second;
    }
  }
  for (InstanceId inst = next_deliver_;; ++inst) {
    auto v = log_->load_decided(inst);
    if (!v) break;
    undelivered_[inst] = std::move(*v);
  }
  try_deliver();
  ep_.start_timer(cfg_.heartbeat_interval / 2, [this] { tick(); });
}

}  // namespace sdur::paxos
