#include "paxos/messages.h"

namespace sdur::paxos {

using sim::Message;
using util::Reader;
using util::Writer;

namespace {
void put_value(Writer& w, const Value& v) {
  w.varint(v.size());
  w.raw(v.data(), v.size());
}

Value get_value(Reader& r) {
  const std::uint64_t n = r.varint();
  Value v(n);
  r.raw(v.data(), n);
  return v;
}
}  // namespace

Message Phase1A::to_message() const {
  Writer w;
  w.u64(ballot.n);
  w.u64(low_instance);
  return {msgtype::kPhase1A, std::move(w)};
}

Phase1A Phase1A::decode(Reader& r) {
  Phase1A m;
  m.ballot.n = r.u64();
  m.low_instance = r.u64();
  return m;
}

Message Phase1B::to_message() const {
  Writer w;
  w.u64(ballot.n);
  w.u64(next_deliver);
  w.varint(entries.size());
  for (const auto& e : entries) {
    w.u64(e.instance);
    w.u64(e.ballot.n);
    put_value(w, e.value);
  }
  return {msgtype::kPhase1B, std::move(w)};
}

Phase1B Phase1B::decode(Reader& r) {
  Phase1B m;
  m.ballot.n = r.u64();
  m.next_deliver = r.u64();
  const std::uint64_t n = r.varint();
  m.entries.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    AcceptedEntry e;
    e.instance = r.u64();
    e.ballot.n = r.u64();
    e.value = get_value(r);
    m.entries.push_back(std::move(e));
  }
  return m;
}

Message Phase2A::to_message() const {
  Writer w;
  w.u64(ballot.n);
  w.u64(instance);
  put_value(w, value);
  return {msgtype::kPhase2A, std::move(w)};
}

Phase2A Phase2A::decode(Reader& r) {
  Phase2A m;
  m.ballot.n = r.u64();
  m.instance = r.u64();
  m.value = get_value(r);
  return m;
}

Message Phase2B::to_message() const {
  Writer w;
  w.u64(ballot.n);
  w.u64(instance);
  w.u32(acceptor_index);
  return {msgtype::kPhase2B, std::move(w)};
}

Phase2B Phase2B::decode(Reader& r) {
  Phase2B m;
  m.ballot.n = r.u64();
  m.instance = r.u64();
  m.acceptor_index = r.u32();
  return m;
}

Message Nack::to_message() const {
  Writer w;
  w.u64(promised.n);
  return {msgtype::kNack, std::move(w)};
}

Nack Nack::decode(Reader& r) {
  Nack m;
  m.promised.n = r.u64();
  return m;
}

Message Heartbeat::to_message() const {
  Writer w;
  w.u64(ballot.n);
  w.u64(decided_upto);
  return {msgtype::kHeartbeat, std::move(w)};
}

Heartbeat Heartbeat::decode(Reader& r) {
  Heartbeat m;
  m.ballot.n = r.u64();
  m.decided_upto = r.u64();
  return m;
}

Message Forward::to_message() const {
  Writer w;
  put_value(w, value);
  return {msgtype::kForward, std::move(w)};
}

Forward Forward::decode(Reader& r) {
  Forward m;
  m.value = get_value(r);
  return m;
}

Message CatchupReq::to_message() const {
  Writer w;
  w.u64(from_instance);
  return {msgtype::kCatchupReq, std::move(w)};
}

CatchupReq CatchupReq::decode(Reader& r) {
  CatchupReq m;
  m.from_instance = r.u64();
  return m;
}

Message CatchupResp::to_message() const {
  Writer w;
  w.u64(first_instance);
  w.varint(values.size());
  for (const auto& v : values) put_value(w, v);
  return {msgtype::kCatchupResp, std::move(w)};
}

CatchupResp CatchupResp::decode(Reader& r) {
  CatchupResp m;
  m.first_instance = r.u64();
  const std::uint64_t n = r.varint();
  m.values.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) m.values.push_back(get_value(r));
  return m;
}

Message StateTransfer::to_message() const {
  Writer w;
  w.u64(resume_at);
  put_value(w, app_state);
  return {msgtype::kStateTransfer, std::move(w)};
}

StateTransfer StateTransfer::decode(Reader& r) {
  StateTransfer m;
  m.resume_at = r.u64();
  m.app_state = get_value(r);
  return m;
}

Value encode_batch(const std::vector<Value>& values) {
  Writer w;
  w.varint(values.size());
  for (const auto& v : values) put_value(w, v);
  return std::move(w).take();
}

std::vector<Value> decode_batch(const Value& batch) {
  Reader r(batch);
  const std::uint64_t n = r.varint();
  std::vector<Value> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(get_value(r));
  return out;
}

}  // namespace sdur::paxos
