// Durable acceptor state.
//
// The paper's prototype logs delivered values with Berkeley DB so "the
// committed state of a server can be recovered from the log" (Section V).
// We model the same property: an acceptor persists its promise and every
// accepted (instance, ballot, value) before acknowledging, and a recovering
// replica reloads this state. The I/O cost is modeled by the engine, which
// delays acknowledgements by GroupConfig::log_write_latency.
//
// InMemoryDurableLog survives Process::crash()/recover() (the process
// object keeps owning it) — it plays the role of the disk.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "paxos/types.h"

namespace sdur::paxos {

struct LogRecord {
  Ballot ballot;
  Value value;
};

class DurableLog {
 public:
  virtual ~DurableLog() = default;

  /// Persists the highest promised ballot.
  virtual void save_promise(Ballot b) = 0;
  virtual Ballot load_promise() const = 0;

  /// Persists an accepted value for an instance (overwrites lower ballots).
  /// Takes the value by value so callers that are done with the buffer can
  /// move it into the log instead of copying.
  virtual void save_accepted(InstanceId inst, Ballot b, Value v) = 0;
  virtual std::optional<LogRecord> load_accepted(InstanceId inst) const = 0;

  /// Marks an instance decided (learner checkpoint used for catchup after
  /// recovery).
  virtual void save_decided(InstanceId inst, Value v) = 0;
  virtual std::optional<Value> load_decided(InstanceId inst) const = 0;
  virtual InstanceId decided_prefix() const = 0;

  /// All accepted records with instance >= low (for Phase 1B).
  virtual std::map<InstanceId, LogRecord> accepted_from(InstanceId low) const = 0;

  // --- Checkpointing -------------------------------------------------------
  /// Persists an application checkpoint covering every instance below
  /// `covered_upto`, then allows the log below it to be truncated.
  virtual void save_checkpoint(const Value& app_state, InstanceId covered_upto) = 0;
  /// Latest persisted checkpoint, if any: (app_state, covered_upto).
  virtual std::optional<std::pair<Value, InstanceId>> load_checkpoint() const = 0;
  /// Discards accepted and decided records below `bound` (they are covered
  /// by a checkpoint).
  virtual void truncate_below(InstanceId bound) = 0;
  /// Smallest retained decided instance (covered_upto if everything below
  /// was truncated; 0 on a fresh log).
  virtual InstanceId first_retained() const = 0;

  /// Number of persisted write operations (tests verify write-before-ack).
  virtual std::uint64_t write_count() const = 0;
};

class InMemoryDurableLog final : public DurableLog {
 public:
  void save_promise(Ballot b) override;
  Ballot load_promise() const override { return promise_; }

  void save_accepted(InstanceId inst, Ballot b, Value v) override;
  std::optional<LogRecord> load_accepted(InstanceId inst) const override;

  void save_decided(InstanceId inst, Value v) override;
  std::optional<Value> load_decided(InstanceId inst) const override;
  InstanceId decided_prefix() const override;

  std::map<InstanceId, LogRecord> accepted_from(InstanceId low) const override;

  void save_checkpoint(const Value& app_state, InstanceId covered_upto) override;
  std::optional<std::pair<Value, InstanceId>> load_checkpoint() const override;
  void truncate_below(InstanceId bound) override;
  InstanceId first_retained() const override { return truncated_below_; }

  std::uint64_t write_count() const override { return writes_; }

 private:
  Ballot promise_;
  std::map<InstanceId, LogRecord> accepted_;
  std::map<InstanceId, Value> decided_;
  std::optional<std::pair<Value, InstanceId>> checkpoint_;
  InstanceId truncated_below_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace sdur::paxos
