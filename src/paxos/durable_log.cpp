#include "paxos/durable_log.h"

#include <utility>

namespace sdur::paxos {

void InMemoryDurableLog::save_promise(Ballot b) {
  promise_ = b;
  ++writes_;
}

void InMemoryDurableLog::save_accepted(InstanceId inst, Ballot b, Value v) {
  accepted_[inst] = LogRecord{b, std::move(v)};
  ++writes_;
}

std::optional<LogRecord> InMemoryDurableLog::load_accepted(InstanceId inst) const {
  auto it = accepted_.find(inst);
  if (it == accepted_.end()) return std::nullopt;
  return it->second;
}

void InMemoryDurableLog::save_decided(InstanceId inst, Value v) {
  decided_[inst] = std::move(v);
  ++writes_;
}

std::optional<Value> InMemoryDurableLog::load_decided(InstanceId inst) const {
  auto it = decided_.find(inst);
  if (it == decided_.end()) return std::nullopt;
  return it->second;
}

InstanceId InMemoryDurableLog::decided_prefix() const {
  InstanceId next = truncated_below_;
  for (auto it = decided_.lower_bound(truncated_below_); it != decided_.end(); ++it) {
    if (it->first != next) break;
    ++next;
  }
  return next;
}

void InMemoryDurableLog::save_checkpoint(const Value& app_state, InstanceId covered_upto) {
  checkpoint_ = {app_state, covered_upto};
  ++writes_;
}

std::optional<std::pair<Value, InstanceId>> InMemoryDurableLog::load_checkpoint() const {
  return checkpoint_;
}

void InMemoryDurableLog::truncate_below(InstanceId bound) {
  accepted_.erase(accepted_.begin(), accepted_.lower_bound(bound));
  decided_.erase(decided_.begin(), decided_.lower_bound(bound));
  truncated_below_ = std::max(truncated_below_, bound);
  ++writes_;
}

std::map<InstanceId, LogRecord> InMemoryDurableLog::accepted_from(InstanceId low) const {
  std::map<InstanceId, LogRecord> out;
  for (auto it = accepted_.lower_bound(low); it != accepted_.end(); ++it) out.insert(*it);
  return out;
}

}  // namespace sdur::paxos
