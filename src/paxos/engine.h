// Multi-Paxos atomic broadcast engine for one replica group.
//
// One engine instance runs per server per partition; together the group's
// engines implement the abcast/adeliver primitive of the paper (Section
// II-A): all correct group members deliver the same values in the same
// order, tolerating f < n/2 crash failures.
//
// Protocol structure (classic Multi-Paxos with a stable leader):
//  - Leader election: the leader sends heartbeats; a follower that misses
//    them starts Phase 1 with a higher ballot (staggered by member index
//    to avoid dueling candidates).
//  - Phase 1 runs once per leadership change over all instances >= the
//    candidate's decided prefix; the new leader re-proposes the
//    highest-ballot accepted value per instance and fills gaps with no-ops.
//  - Phase 2: the leader batches forwarded values (up to max_batch per
//    instance) and pipelines up to pipeline_window open instances.
//    Acceptors persist to the durable log before acknowledging, and
//    broadcast Phase 2B to *all* members so every replica learns a decision
//    two message delays after the proposal (this is the 4-delta local
//    termination path of the paper's Figure 1).
//  - Lagging replicas catch up from the leader's decided log.
//
// Values are opaque bytes. Delivery is exactly-ordered but, as with any
// forwarding-based broadcast, a value can be delivered more than once after
// leader changes; the layer above deduplicates by transaction id.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "paxos/durable_log.h"
#include "paxos/messages.h"
#include "paxos/types.h"
#include "sim/endpoint.h"
#include "trace/trace.h"

namespace sdur::paxos {

class PaxosEngine {
 public:
  /// Called once per delivered value, in delivery order.
  using DeliverFn = std::function<void(const Value&)>;
  /// Called to install a full application checkpoint (state transfer /
  /// recovery); replaces all application state derived from the log.
  using InstallFn = std::function<void(const Value&)>;

  PaxosEngine(sim::Endpoint& endpoint, GroupConfig config, std::unique_ptr<DurableLog> log,
              DeliverFn deliver);

  /// Starts timers. Member 0 immediately campaigns so the group has a
  /// leader from the start.
  void start();

  /// True if `t` falls in the Paxos message-tag range.
  static bool handles(sim::MsgType t) {
    return t >= msgtype::kFirst && t <= msgtype::kLast;
  }

  /// Feeds a network message into the engine.
  void handle_message(const sim::Message& m, ProcessId from);

  /// Submits a value for atomic broadcast. Forwards to the believed leader
  /// if this replica is not the leader.
  void propose(Value v);

  /// Rebuilds volatile state from the durable log after a crash/recover.
  void on_recover();

  /// Registers the application checkpoint installer (required to accept
  /// state transfers and to recover from a checkpointed log).
  void set_install_handler(InstallFn fn) { install_ = std::move(fn); }

  /// Last-hop hook over every message the engine sends: the wrapper may
  /// replace the outgoing message (same destination) — e.g. the SDUR vote
  /// batcher piggybacks pending cross-partition votes on engine traffic.
  /// Identity when unset. The wrapper must preserve delivery semantics:
  /// the receiver-side unwrap dispatches the inner message unchanged.
  using SendWrapper = std::function<sim::Message(ProcessId, sim::Message)>;
  void set_send_wrapper(SendWrapper fn) { send_wrapper_ = std::move(fn); }

  /// Persists `app_state` as a checkpoint covering everything delivered so
  /// far and truncates the log below it. Lagging replicas that request
  /// truncated instances receive the checkpoint instead.
  void save_checkpoint(Value app_state);

  /// TEST-ONLY fault injection: when set, the acceptor skips the
  /// promised-ballot guard in Phase 2A and accepts values at stale
  /// ballots — a protocol safety bug the audit layer must catch
  /// (tests/audit_test.cpp). Never set outside tests.
  void test_accept_stale_ballots(bool v) { test_accept_stale_ballots_ = v; }

  bool is_leader() const { return role_ == Role::kLeader; }
  /// Process id of the believed leader (self if leading).
  ProcessId leader_hint() const;
  InstanceId next_deliver() const { return next_deliver_; }
  Ballot current_ballot() const { return promised_; }
  const GroupConfig& config() const { return cfg_; }
  const DurableLog& log() const { return *log_; }

  struct Stats {
    std::uint64_t proposed_batches = 0;
    std::uint64_t decided_instances = 0;
    std::uint64_t delivered_values = 0;
    std::uint64_t leader_elections = 0;
    std::uint64_t nacks = 0;
    std::uint64_t resends = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t state_transfers_sent = 0;
    std::uint64_t state_transfers_installed = 0;
    std::uint64_t decode_cache_hits = 0;
    std::uint64_t decode_cache_misses = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  enum class Role { kFollower, kCandidate, kLeader };

  // Message handlers.
  void on_phase1a(const Phase1A& m, ProcessId from);
  void on_phase1b(const Phase1B& m, ProcessId from);
  void on_phase2a(Phase2A m, ProcessId from);
  void on_phase2b(const Phase2B& m, ProcessId from);
  void on_nack(const Nack& m);
  void on_heartbeat(const Heartbeat& m, ProcessId from);
  void on_forward(Forward m, ProcessId from);
  void on_catchup_req(const CatchupReq& m, ProcessId from);
  void on_catchup_resp(const CatchupResp& m);
  void on_state_transfer(const StateTransfer& m);

  void start_campaign();
  void become_leader();
  void step_down(Ballot seen);
  void maybe_propose();
  void open_instance(InstanceId inst, Value value, std::vector<std::uint64_t> item_hashes);
  void record_ack(InstanceId inst, Ballot b, std::uint32_t acceptor_index);
  void decide(InstanceId inst, Value value);
  void try_deliver();
  void tick();
  void broadcast(const sim::Message& m);
  /// All engine sends funnel through here so send_wrapper_ sees each one.
  void send_to(ProcessId to, const sim::Message& m);
  bool value_in_flight(std::uint64_t hash) const;
  std::uint32_t member_index(ProcessId pid) const;
  Time election_deadline() const;

  /// Decode-once batch cache. A batch value is parsed many times on the
  /// hot path (delivery, leader re-proposal hashing); this memoizes the
  /// last decode keyed by the exact batch bytes. Returns a shared_ptr so
  /// callers stay valid even if a reentrant call (deliver_ callback
  /// scheduling more work) replaces the cache entry mid-iteration.
  std::shared_ptr<const std::vector<Value>> decoded_batch(const Value& batch);

  sim::Endpoint& ep_;
  GroupConfig cfg_;
  std::unique_ptr<DurableLog> log_;
  DeliverFn deliver_;
  InstallFn install_;
  SendWrapper send_wrapper_;

  Role role_ = Role::kFollower;
  Ballot promised_;          // highest ballot promised (persisted)
  Ballot highest_seen_;      // highest ballot observed anywhere
  ProcessId leader_hint_ = 0;
  Time last_leader_contact_ = 0;

  // Candidate state. Ordered so that become_leader()'s scan (and its
  // catchup-target tie-break) is independent of hashing/allocation.
  std::map<std::uint32_t, Phase1B> promises_;

  // Learner state: per-instance ack tracking (ballot, member bitmask).
  struct AckState {
    Ballot ballot;
    std::uint64_t mask = 0;
  };
  std::map<InstanceId, AckState> acks_;
  std::map<InstanceId, Value> undelivered_;  // decided, not yet delivered
  InstanceId next_deliver_ = 0;

  // Leader state.
  struct OpenInstance {
    Value value;
    Time proposed_at = 0;
    /// Hash of each value in the batch, computed once at open time so
    /// value_in_flight() never has to re-decode the batch.
    std::vector<std::uint64_t> item_hashes;
  };
  InstanceId next_instance_ = 0;
  std::map<InstanceId, OpenInstance> open_;
  std::deque<Value> pending_;

  /// Values submitted via propose() on this replica, tracked until they are
  /// delivered. Periodically re-proposed so that a value submitted by a
  /// correct process is eventually delivered even if a forward message was
  /// lost or a leader died with it in flight (the layer above deduplicates
  /// by transaction id).
  struct SubmittedValue {
    Value value;
    Time submitted_at = 0;
    std::uint32_t count = 0;  // identical values in flight (e.g. ticks)
  };
  /// Ordered: tick() re-proposes in iteration order, which must not depend
  /// on hashing/allocation.
  std::map<std::uint64_t, SubmittedValue> submitted_;
  std::uint32_t behind_heartbeats_ = 0;

  std::unordered_map<ProcessId, std::uint32_t> index_of_;
  /// Lifecycle trace track of this engine (kNoTrack in untraced runs).
  std::uint32_t trace_track_ = trace::kNoTrack;

  // Single-entry decode cache (see decoded_batch()). Batches deliver in
  // instance order, so one entry captures the common decode-again pattern
  // (leader: open-time hashing then delivery; every replica: repeated
  // decides of the same bytes after catchup/resend overlap).
  Value decode_cache_key_;
  std::shared_ptr<const std::vector<Value>> decode_cache_vals_;

  Stats stats_;
  bool started_ = false;
  bool test_accept_stale_ballots_ = false;
  /// Stable group identity for the audit oracle (hash of the member ids).
  std::uint64_t audit_group_ = 0;
};

}  // namespace sdur::paxos
