// Core Paxos types.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "sim/topology.h"
#include "util/bytes.h"

namespace sdur::paxos {

using sim::ProcessId;
using sim::Time;
using Value = util::Bytes;

/// Paxos log position.
using InstanceId = std::uint64_t;

/// Ballot number: (round << 8) | proposer-index. Higher rounds dominate;
/// the low byte makes ballots unique per proposer.
struct Ballot {
  std::uint64_t n = 0;

  static Ballot make(std::uint64_t round, std::uint32_t proposer_index) {
    return Ballot{(round << 8) | (proposer_index & 0xFF)};
  }
  std::uint64_t round() const { return n >> 8; }
  std::uint32_t proposer_index() const { return static_cast<std::uint32_t>(n & 0xFF); }
  bool valid() const { return n != 0; }

  auto operator<=>(const Ballot&) const = default;
};

/// Static configuration of one Paxos group (one database partition).
struct GroupConfig {
  /// Process ids of the group members, in index order. The proposer index
  /// of a ballot indexes into this vector.
  std::vector<ProcessId> members;
  std::uint32_t self_index = 0;

  /// Latency of a synchronous write to the durable log (Berkeley DB in the
  /// paper's prototype); responses that require persistence are delayed by
  /// this much.
  Time log_write_latency = sim::usec(500);

  /// Leader heartbeat period and follower election timeout. The timeout
  /// must exceed the worst round-trip inside the group (inter-region in
  /// the WAN 2 deployment).
  Time heartbeat_interval = sim::msec(100);
  Time election_timeout = sim::msec(600);

  /// Batching and pipelining at the leader.
  std::size_t max_batch = 64;
  std::size_t pipeline_window = 64;

  /// Followers this far behind the leader's decided prefix request catchup.
  InstanceId catchup_threshold = 8;

  std::size_t quorum() const { return members.size() / 2 + 1; }
};

}  // namespace sdur::paxos
