// Host-side (wall-clock) counters for the simulation fabric.
//
// These count *real* work done by the host while simulating — payload
// buffers deep-copied, closure allocations — not simulated quantities.
// They exist so bench/harness_perf can verify the zero-copy properties of
// the message fabric (e.g. broadcast fan-out performs zero per-peer payload
// copies) and track the cost trajectory across PRs.
//
// Counting never influences simulated behavior: results stay bit-identical
// whether the counters are compiled in or out. Release/audit builds can
// compile them away with -DSDUR_FABRIC_COUNTERS=0 (CMake option
// SDUR_FABRIC_COUNTERS=OFF).
#pragma once

#include <cstdint>

namespace sdur::sim {

struct FabricCounters {
  /// Payload buffers duplicated byte-for-byte (copy of a non-empty
  /// message payload that could not share its buffer).
  std::uint64_t payload_deep_copies = 0;
  /// Bytes moved by those duplications.
  std::uint64_t payload_bytes_copied = 0;
  /// Payload copies served by bumping a refcount instead of copying.
  std::uint64_t payload_shares = 0;
  /// Event-loop callables stored inline (no allocation).
  std::uint64_t fn_inline = 0;
  /// Event-loop callables that exceeded the inline buffer (one heap
  /// allocation each).
  std::uint64_t fn_heap_allocs = 0;

  void reset() { *this = FabricCounters{}; }
};

/// Process-wide counters (the simulation is single-threaded).
inline FabricCounters& fabric_counters() {
  static FabricCounters c;
  return c;
}

}  // namespace sdur::sim

#ifndef SDUR_FABRIC_COUNTERS
#define SDUR_FABRIC_COUNTERS 1
#endif

#if SDUR_FABRIC_COUNTERS
/// Applies `expr` to the global FabricCounters, e.g.
/// SDUR_FABRIC_COUNT(payload_bytes_copied += n).
#define SDUR_FABRIC_COUNT(expr) ((void)(sdur::sim::fabric_counters().expr))
#else
#define SDUR_FABRIC_COUNT(expr) ((void)0)
#endif
