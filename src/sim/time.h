// Virtual time for the discrete-event simulator.
//
// All protocol code measures time in microseconds of virtual time; the
// simulator advances the clock from event to event, so experiments are
// deterministic and run orders of magnitude faster than wall time.
#pragma once

#include <cstdint>

namespace sdur::sim {

/// Virtual time / duration in microseconds.
using Time = std::int64_t;

constexpr Time kNever = INT64_MAX;

constexpr Time usec(std::int64_t v) { return v; }
constexpr Time msec(std::int64_t v) { return v * 1000; }
constexpr Time sec(std::int64_t v) { return v * 1'000'000; }

constexpr double to_ms(Time t) { return static_cast<double>(t) / 1000.0; }
constexpr double to_sec(Time t) { return static_cast<double>(t) / 1'000'000.0; }

}  // namespace sdur::sim
