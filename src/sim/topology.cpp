#include "sim/topology.h"

#include <stdexcept>

namespace sdur::sim {

Topology::Topology() : intra_dc_(usec(250)), intra_region_(msec(1)) {
  inter_region_ = {{0}};
}

void Topology::set_regions(std::size_t n, std::vector<std::vector<Time>> one_way) {
  if (one_way.size() != n) throw std::invalid_argument("latency matrix size mismatch");
  for (const auto& row : one_way) {
    if (row.size() != n) throw std::invalid_argument("latency matrix row size mismatch");
  }
  inter_region_ = std::move(one_way);
}

Topology Topology::ec2_three_regions() {
  Topology t;
  const Time eu_use = msec(45);   // EU <-> US-EAST, ~90 ms RTT
  const Time use_usw = msec(50);  // US-EAST <-> US-WEST, ~100 ms RTT
  const Time eu_usw = msec(85);   // EU <-> US-WEST, ~170 ms RTT
  t.set_regions(3, {{0, eu_use, eu_usw}, {eu_use, 0, use_usw}, {eu_usw, use_usw, 0}});
  return t;
}

Topology Topology::lan() {
  Topology t;
  t.set_regions(1, {{0}});
  return t;
}

void Topology::place(ProcessId pid, Location loc) {
  if (pid >= locations_.size()) locations_.resize(pid + 1, kUnplaced);
  locations_[pid] = loc;
}

Location Topology::location(ProcessId pid) const {
  if (pid >= locations_.size() || locations_[pid] == kUnplaced) {
    throw std::out_of_range("process not placed in topology");
  }
  return locations_[pid];
}

Time Topology::region_delay(std::uint16_t from, std::uint16_t to) const {
  if (from == to) return intra_region_;
  if (from >= inter_region_.size() || to >= inter_region_.size()) {
    throw std::out_of_range("region out of range");
  }
  return inter_region_[from][to];
}

Time Topology::base_delay(ProcessId from, ProcessId to) const {
  if (from == to) return usec(1);  // loopback
  const Location a = location(from);
  const Location b = location(to);
  if (a.region != b.region) return inter_region_[a.region][b.region];
  if (a.datacenter != b.datacenter) return intra_region_;
  return intra_dc_;
}

Time Topology::delay(ProcessId from, ProcessId to, util::Rng& rng) const {
  const Time base = base_delay(from, to);
  if (jitter_ <= 0) return base;
  return static_cast<Time>(static_cast<double>(base) * (1.0 + rng.uniform() * jitter_));
}

}  // namespace sdur::sim
