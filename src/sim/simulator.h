// Discrete-event simulator core.
//
// A binary min-heap of (time, sequence, closure). Ties on time break by
// insertion order, so runs are fully deterministic given a seed. The
// simulator knows nothing about processes or networks; those layers
// schedule closures on it.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace sdur::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (clamped to now()).
  void schedule_at(Time t, std::function<void()> fn);

  /// Schedules `fn` after `delay` microseconds.
  void schedule_after(Time delay, std::function<void()> fn) {
    schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Runs the next event; returns false if the queue is empty or stopped.
  bool step();

  /// Runs until the queue drains, `stop()` is called, or the event budget
  /// is exhausted.
  void run();

  /// Runs events with time <= t, then sets now() = t.
  void run_until(Time t);

  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t pending_events() const { return queue_.size(); }

  /// Safety valve against runaway experiments (0 = unlimited).
  void set_event_budget(std::uint64_t budget) { event_budget_ = budget; }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  Time now_ = 0;
  bool stopped_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t event_budget_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace sdur::sim
