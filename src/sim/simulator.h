// Discrete-event simulator core.
//
// A binary min-heap of (time, sequence, closure). Ties on time break by
// insertion order, so runs are fully deterministic given a seed. The
// simulator knows nothing about processes or networks; those layers
// schedule closures on it.
//
// Hot-path design (see DESIGN.md "Simulation fabric hot path"):
//  - Events hold a move-only UniqueFn (sim/callable.h), so the common
//    closures live inline with no allocation.
//  - Callables live in a slab indexed by the heap nodes. Heap nodes are
//    24-byte PODs, so push/pop sifts are plain memmoves instead of calling
//    each closure's relocator O(log n) times per event.
//  - An event may carry a *guard*: a pointer to a u64 cell and the value it
//    must still hold at fire time. This is how Process implements its
//    crash/recover epoch check without wrapping the callable in a second
//    closure (the nested form exceeds any fixed inline buffer by
//    construction, forcing one heap allocation per scheduled event). A
//    guarded event that fails its check is popped and counted but its
//    closure does not run — exactly what the wrapper used to do.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/callable.h"
#include "sim/time.h"

namespace sdur::sim {

class Simulator {
 public:
  Simulator() {
    queue_.reserve(kHeapSlab);
    slots_.reserve(kHeapSlab);
    free_slots_.reserve(kHeapSlab);
  }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (clamped to now()).
  void schedule_at(Time t, UniqueFn fn) { schedule_at(t, std::move(fn), nullptr, 0); }

  /// Guarded variant: `fn` runs only if `*guard == expected` when the event
  /// fires (the event itself still pops and counts). `guard` must stay
  /// valid while the event is queued; pass nullptr for unconditional.
  void schedule_at(Time t, UniqueFn fn, const std::uint64_t* guard, std::uint64_t expected);

  /// Schedules `fn` after `delay` microseconds.
  void schedule_after(Time delay, UniqueFn fn) {
    schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }
  void schedule_after(Time delay, UniqueFn fn, const std::uint64_t* guard,
                      std::uint64_t expected) {
    schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn), guard, expected);
  }

  /// Runs the next event; returns false if the queue is empty or stopped.
  bool step();

  /// Runs until the queue drains, `stop()` is called, or the event budget
  /// is exhausted.
  void run();

  /// Runs events with time <= t, then sets now() = t.
  void run_until(Time t);

  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t pending_events() const { return queue_.size(); }

  /// Safety valve against runaway experiments (0 = unlimited).
  void set_event_budget(std::uint64_t budget) { event_budget_ = budget; }

 private:
  /// Initial capacity of the heap and callable slab; avoids reallocation
  /// churn while a deployment warms up.
  static constexpr std::size_t kHeapSlab = 4096;

  /// Heap node: plain data, cheap to sift.
  struct Event {
    Time time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };
  /// Slab entry owning the callable (and its optional guard) for one
  /// queued event. Recycled through free_slots_ (LIFO, deterministic).
  struct Slot {
    UniqueFn fn;
    const std::uint64_t* guard = nullptr;
    std::uint64_t expected = 0;
  };

  Time now_ = 0;
  bool stopped_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t event_budget_ = 0;
  std::vector<Event> queue_;  // heap ordered by Later (min on (time, seq))
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace sdur::sim
