// Simulated network with quasi-reliable links and fault injection.
//
// Matches the paper's link model (Section II-A): if both sender and
// receiver are correct, every message sent is eventually received. There is
// no duplication or corruption by default; message loss, process isolation
// and network partitions can be injected for protocol tests (Paxos must
// stay safe under all of them).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "sim/message.h"
#include "sim/simulator.h"
#include "sim/topology.h"
#include "util/rng.h"

namespace sdur::sim {

class Process;

/// Per-message-type counters as a flat fixed array. Message tags live in
/// 0–99 (sim/message.h); indexing replaces the hash-map lookups that used
/// to sit on the per-send hot path. Out-of-range tags share the last
/// bucket rather than growing storage.
class PerTypeCounters {
 public:
  static constexpr std::size_t kBuckets = 128;

  std::uint64_t& operator[](MsgType t) { return v_[index(t)]; }
  std::uint64_t at(MsgType t) const { return v_[index(t)]; }

  bool operator==(const PerTypeCounters&) const = default;

 private:
  static std::size_t index(MsgType t) {
    return t < kBuckets ? t : kBuckets - 1;
  }
  std::array<std::uint64_t, kBuckets> v_{};
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
  PerTypeCounters per_type_count;
  PerTypeCounters per_type_bytes;

  bool operator==(const NetworkStats&) const = default;
};

class Network {
 public:
  Network(Simulator& sim, Topology topology, std::uint64_t seed = 1);

  /// Registers a process endpoint at the given location.
  void attach(Process* p, Location loc);
  void detach(ProcessId pid);

  /// Sends `m` from `from` to `to` with the topology's delay + jitter.
  /// Drops silently if either endpoint is crashed/isolated/blocked or the
  /// loss dice say so.
  void send(ProcessId from, ProcessId to, Message m);

  const Topology& topology() const { return topology_; }
  Simulator& simulator() { return sim_; }

  Process* process(ProcessId pid) const;
  std::vector<ProcessId> process_ids() const;

  // --- Fault injection ---------------------------------------------------

  /// Uniform probability that any message is dropped in flight.
  void set_loss_rate(double p) { loss_rate_ = p; }

  /// Cuts both directions between `a` and `b`.
  void block_link(ProcessId a, ProcessId b);
  void unblock_link(ProcessId a, ProcessId b);

  /// Cuts a process off from everyone (it stays alive, e.g. to model a
  /// network partition of a single node).
  void isolate(ProcessId pid) { isolated_.insert(pid); }
  void heal(ProcessId pid) { isolated_.erase(pid); }
  void heal_all();

  /// Partitions the network into {group} vs. the rest.
  void partition(const std::vector<ProcessId>& group);

  const NetworkStats& stats() const { return stats_; }
  void reset_stats() { stats_ = NetworkStats{}; }

 private:
  static std::uint64_t link_key(ProcessId a, ProcessId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  Simulator& sim_;
  Topology topology_;
  util::Rng rng_;
  double loss_rate_ = 0.0;
  /// Indexed by pid (ids are small and dense; this lookup sits on the
  /// per-delivery hot path). nullptr = not attached.
  std::vector<Process*> processes_;
  std::unordered_set<std::uint64_t> blocked_links_;
  std::unordered_set<ProcessId> isolated_;
  NetworkStats stats_;
};

}  // namespace sdur::sim
