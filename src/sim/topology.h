// Geographic topology and latency model.
//
// Mirrors the paper's system model (Section IV-A): processes live in
// datacenters, datacenters live in regions; processes in the same
// datacenter or region communicate with low latency (delta), processes in
// different regions pay the inter-region delay (Delta >> delta).
//
// Inter-region one-way delays are configured as a matrix. The presets
// reproduce the EC2 latencies measured in the paper (Section VI-A):
// ~90 ms RTT EU <-> US-EAST, ~100 ms US-EAST <-> US-WEST, ~170 ms
// EU <-> US-WEST.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "util/rng.h"

namespace sdur::sim {

using ProcessId = std::uint32_t;

struct Location {
  std::uint16_t region = 0;
  std::uint16_t datacenter = 0;

  bool operator==(const Location&) const = default;
};

/// Region identifiers for the paper's three-region EC2 setup.
enum Region : std::uint16_t { kEU = 0, kUSEast = 1, kUSWest = 2 };

class Topology {
 public:
  Topology();

  /// Configures `n` regions with the given one-way delay matrix
  /// (matrix[i][j] = one-way delay region i -> region j; diagonal ignored).
  void set_regions(std::size_t n, std::vector<std::vector<Time>> one_way);

  /// Paper's three-region setup: EU, US-EAST, US-WEST with one-way delays
  /// of 45 ms, 50 ms and 85 ms respectively (half the measured RTTs).
  static Topology ec2_three_regions();

  /// Single-region topology for LAN experiments.
  static Topology lan();

  void set_intra_datacenter(Time t) { intra_dc_ = t; }
  void set_intra_region(Time t) { intra_region_ = t; }
  /// Multiplicative jitter: delays are scaled by U[1, 1+jitter].
  void set_jitter(double jitter) { jitter_ = jitter; }

  void place(ProcessId pid, Location loc);
  Location location(ProcessId pid) const;

  /// Base one-way delay between two placed processes (before jitter).
  Time base_delay(ProcessId from, ProcessId to) const;

  /// One-way delay with jitter drawn from `rng`.
  Time delay(ProcessId from, ProcessId to, util::Rng& rng) const;

  /// Base one-way delay between two regions (delta if equal).
  Time region_delay(std::uint16_t from, std::uint16_t to) const;

  std::size_t region_count() const { return inter_region_.size(); }
  Time intra_region() const { return intra_region_; }

 private:
  /// Sentinel marking a pid with no placement (process ids are small and
  /// dense, so placements live in a flat pid-indexed vector — location()
  /// sits on the per-message delay path).
  static constexpr Location kUnplaced{0xFFFF, 0xFFFF};

  Time intra_dc_;
  Time intra_region_;
  double jitter_ = 0.05;
  std::vector<std::vector<Time>> inter_region_;
  std::vector<Location> locations_;  // indexed by pid; kUnplaced = absent
};

}  // namespace sdur::sim
