#include "sim/network.h"

#include <algorithm>

#include "audit/audit.h"
#include "sim/process.h"

namespace sdur::sim {

Network::Network(Simulator& sim, Topology topology, std::uint64_t seed)
    : sim_(sim), topology_(std::move(topology)), rng_(seed) {
  // A Network marks the start of a fresh simulated run: clear the audit
  // layer so violations and oracle entries from a previous run in the same
  // process (earlier test, earlier deployment) cannot contaminate this one.
  SDUR_AUDIT(audit::Auditor::instance().reset());
  SDUR_AUDIT(audit::Oracle::instance().reset());
}

void Network::attach(Process* p, Location loc) {
  processes_[p->id()] = p;
  topology_.place(p->id(), loc);
}

void Network::detach(ProcessId pid) { processes_.erase(pid); }

Process* Network::process(ProcessId pid) const {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second;
}

std::vector<ProcessId> Network::process_ids() const {
  std::vector<ProcessId> ids;
  ids.reserve(processes_.size());
  for (const auto& [pid, p] : processes_) ids.push_back(pid);
  std::sort(ids.begin(), ids.end());  // callers iterate; order must be stable
  return ids;
}

void Network::block_link(ProcessId a, ProcessId b) {
  blocked_links_.insert(link_key(a, b));
  blocked_links_.insert(link_key(b, a));
}

void Network::unblock_link(ProcessId a, ProcessId b) {
  blocked_links_.erase(link_key(a, b));
  blocked_links_.erase(link_key(b, a));
}

void Network::heal_all() {
  blocked_links_.clear();
  isolated_.clear();
}

void Network::partition(const std::vector<ProcessId>& group) {
  std::unordered_set<ProcessId> in_group(group.begin(), group.end());
  for (const auto& [a, pa] : processes_) {
    for (const auto& [b, pb] : processes_) {
      if (a < b && in_group.contains(a) != in_group.contains(b)) block_link(a, b);
    }
  }
}

void Network::send(ProcessId from, ProcessId to, Message m) {
  ++stats_.messages_sent;
  stats_.bytes_sent += m.wire_size();
  ++stats_.per_type_count[m.type];
  stats_.per_type_bytes[m.type] += m.wire_size();

  const bool dropped = isolated_.contains(from) || isolated_.contains(to) ||
                       blocked_links_.contains(link_key(from, to)) ||
                       (loss_rate_ > 0 && rng_.chance(loss_rate_));
  if (dropped) {
    ++stats_.messages_dropped;
    return;
  }

  const Time delay = topology_.delay(from, to, rng_);
  sim_.schedule_after(delay, [this, from, to, m = std::move(m)]() mutable {
    auto it = processes_.find(to);
    if (it == processes_.end() || it->second->crashed()) {
      ++stats_.messages_dropped;
      return;
    }
    ++stats_.messages_delivered;
    it->second->incoming(std::move(m), from);
  });
}

}  // namespace sdur::sim
