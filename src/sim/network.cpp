#include "sim/network.h"

#include <algorithm>

#include "audit/audit.h"
#include "sim/process.h"

namespace sdur::sim {

Network::Network(Simulator& sim, Topology topology, std::uint64_t seed)
    : sim_(sim), topology_(std::move(topology)), rng_(seed) {
  // A Network marks the start of a fresh simulated run: clear the audit
  // layer so violations and oracle entries from a previous run in the same
  // process (earlier test, earlier deployment) cannot contaminate this one.
  SDUR_AUDIT(audit::Auditor::instance().reset());
  SDUR_AUDIT(audit::Oracle::instance().reset());
}

void Network::attach(Process* p, Location loc) {
  const ProcessId pid = p->id();
  if (pid >= processes_.size()) processes_.resize(pid + 1, nullptr);
  processes_[pid] = p;
  topology_.place(pid, loc);
}

void Network::detach(ProcessId pid) {
  if (pid < processes_.size()) processes_[pid] = nullptr;
}

Process* Network::process(ProcessId pid) const {
  return pid < processes_.size() ? processes_[pid] : nullptr;
}

std::vector<ProcessId> Network::process_ids() const {
  // Ascending by construction (pid-indexed table); callers iterate and the
  // order must be stable.
  std::vector<ProcessId> ids;
  for (ProcessId pid = 0; pid < processes_.size(); ++pid) {
    if (processes_[pid] != nullptr) ids.push_back(pid);
  }
  return ids;
}

void Network::block_link(ProcessId a, ProcessId b) {
  blocked_links_.insert(link_key(a, b));
  blocked_links_.insert(link_key(b, a));
}

void Network::unblock_link(ProcessId a, ProcessId b) {
  blocked_links_.erase(link_key(a, b));
  blocked_links_.erase(link_key(b, a));
}

void Network::heal_all() {
  blocked_links_.clear();
  isolated_.clear();
}

void Network::partition(const std::vector<ProcessId>& group) {
  // Each unordered pair exactly once (i < j over the sorted id list); block
  // the link iff the pair straddles the group boundary. The old version
  // walked the full n x n product of the process map to enumerate the same
  // pairs.
  const std::unordered_set<ProcessId> in_group(group.begin(), group.end());
  const std::vector<ProcessId> ids = process_ids();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const bool a_in = in_group.contains(ids[i]);
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      if (a_in != in_group.contains(ids[j])) block_link(ids[i], ids[j]);
    }
  }
}

void Network::send(ProcessId from, ProcessId to, Message m) {
  ++stats_.messages_sent;
  stats_.bytes_sent += m.wire_size();
  ++stats_.per_type_count[m.type];
  stats_.per_type_bytes[m.type] += m.wire_size();

  // RNG discipline (determinism contract, pinned by a digest test): the
  // loss die is rolled only when loss is enabled, and the delay jitter is
  // drawn only for messages that survive the drop checks. Dropped messages
  // must consume no jitter draw, or every later delay in the run would
  // shift. (The empty() guards skip hash probes on the fault-free path;
  // they cannot change which dice are rolled.)
  const bool dropped =
      (!isolated_.empty() && (isolated_.contains(from) || isolated_.contains(to))) ||
      (!blocked_links_.empty() && blocked_links_.contains(link_key(from, to))) ||
      (loss_rate_ > 0 && rng_.chance(loss_rate_));
  if (dropped) {
    ++stats_.messages_dropped;
    return;
  }

  const Time delay = topology_.delay(from, to, rng_);
  sim_.schedule_after(delay, [this, from, to, m = std::move(m)]() mutable {
    Process* p = process(to);
    if (p == nullptr || p->crashed()) {
      ++stats_.messages_dropped;
      return;
    }
    ++stats_.messages_delivered;
    p->incoming(std::move(m), from);
  });
}

}  // namespace sdur::sim
