#include "sim/process.h"

#include <algorithm>

#include "util/logging.h"

namespace sdur::sim {

Process::Process(Network& net, ProcessId id, std::string name, Location loc)
    : net_(net), id_(id), name_(std::move(name)) {
  net_.attach(this, loc);
}

Process::~Process() { net_.detach(id_); }

void Process::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++epoch_;
  SDUR_INFO(name_) << "crashed";
}

void Process::recover() {
  if (!crashed_) return;
  crashed_ = false;
  ++epoch_;
  std::fill(cpu_free_at_.begin(), cpu_free_at_.end(), now());
  SDUR_INFO(name_) << "recovered";
  on_recover();
}

void Process::send(ProcessId to, Message m) {
  if (crashed_) return;
  net_.send(id_, to, std::move(m));
}

void Process::set_timer(Time delay, UniqueFn fn) {
  if (crashed_) return;
  // Epoch guard without a wrapper closure: crash() and recover() both bump
  // epoch_, so anything scheduled before either is skipped at fire time.
  // (Nothing schedules while crashed — every entry point returns early —
  // so the epoch check alone is the complete crash-stop guard.)
  net_.simulator().schedule_after(delay, std::move(fn), &epoch_, epoch_);
}

void Process::set_core_count(std::size_t cores) {
  if (cores == 0) cores = 1;
  cpu_free_at_.resize(cores, now());
  core_busy_.resize(cores, 0);
}

void Process::charge_core(std::size_t core, Time cost) {
  if (core >= cpu_free_at_.size()) core = cpu_free_at_.size() - 1;
  if (cost < 0) cost = 0;
  cpu_free_at_[core] = std::max(now(), cpu_free_at_[core]) + cost;
  core_busy_[core] += cost;
}

Time Process::reserve_core(std::size_t core, Time cost) {
  if (core >= cpu_free_at_.size()) core = cpu_free_at_.size() - 1;
  if (cost < 0) cost = 0;
  const Time done = std::max(now(), cpu_free_at_[core]) + cost;
  cpu_free_at_[core] = done;
  core_busy_[core] += cost;
  return done;
}

void Process::enqueue_work_on(std::size_t core, Time cost, UniqueFn fn) {
  if (crashed_) return;
  const Time done = reserve_core(core, cost);
  net_.simulator().schedule_at(done, std::move(fn), &epoch_, epoch_);
}

void Process::enqueue_work_multi(const std::vector<std::uint32_t>& cores, Time cost,
                                 UniqueFn fn) {
  if (crashed_) return;
  if (cores.size() <= 1) {
    enqueue_work_on(cores.empty() ? 0 : cores.front(), cost, std::move(fn));
    return;
  }
  if (cost < 0) cost = 0;
  // Barrier semantics: the work starts once every involved core is free
  // (the earlier cores sit idle at the rendezvous, exactly like P-DUR
  // worker threads blocked on a cross-core transaction) and occupies all
  // of them until it completes.
  Time start = now();
  for (std::uint32_t c : cores) start = std::max(start, core_free_at(c));
  const Time done = start + cost;
  for (std::uint32_t c : cores) {
    const std::size_t i = c < cpu_free_at_.size() ? c : cpu_free_at_.size() - 1;
    core_busy_[i] += done - std::max(now(), cpu_free_at_[i]);
    cpu_free_at_[i] = done;
  }
  net_.simulator().schedule_at(done, std::move(fn), &epoch_, epoch_);
}

void Process::incoming(Message m, ProcessId from) {
  if (crashed_) return;
  // Hottest event in the fabric: schedule the handler directly (epoch-
  // guarded, core accounting identical to enqueue_work). The closure fits
  // UniqueFn's inline buffer, so delivering a message allocates nothing.
  const Time done = reserve_core(0, message_service_time_);
  net_.simulator().schedule_at(
      done, [this, from, m = std::move(m)]() { on_message(m, from); }, &epoch_, epoch_);
}

}  // namespace sdur::sim
