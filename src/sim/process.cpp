#include "sim/process.h"

#include "util/logging.h"

namespace sdur::sim {

Process::Process(Network& net, ProcessId id, std::string name, Location loc)
    : net_(net), id_(id), name_(std::move(name)) {
  net_.attach(this, loc);
}

Process::~Process() { net_.detach(id_); }

void Process::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++epoch_;
  SDUR_INFO(name_) << "crashed";
}

void Process::recover() {
  if (!crashed_) return;
  crashed_ = false;
  ++epoch_;
  cpu_free_at_ = now();
  SDUR_INFO(name_) << "recovered";
  on_recover();
}

void Process::send(ProcessId to, Message m) {
  if (crashed_) return;
  net_.send(id_, to, std::move(m));
}

void Process::set_timer(Time delay, std::function<void()> fn) {
  if (crashed_) return;
  const std::uint64_t epoch = epoch_;
  net_.simulator().schedule_after(delay, [this, epoch, fn = std::move(fn)]() {
    if (crashed_ || epoch_ != epoch) return;
    fn();
  });
}

void Process::enqueue_work(Time cost, std::function<void()> fn) {
  if (crashed_) return;
  const Time start = std::max(now(), cpu_free_at_);
  const Time done = start + (cost < 0 ? 0 : cost);
  cpu_free_at_ = done;
  const std::uint64_t epoch = epoch_;
  net_.simulator().schedule_at(done, [this, epoch, fn = std::move(fn)]() {
    if (crashed_ || epoch_ != epoch) return;
    fn();
  });
}

void Process::incoming(Message m, ProcessId from) {
  if (crashed_) return;
  enqueue_work(message_service_time_,
               [this, from, m = std::move(m)]() { on_message(m, from); });
}

}  // namespace sdur::sim
