// Wire message representation.
//
// A message is a 16-bit type tag plus an opaque encoded payload. Modules
// own disjoint tag ranges (documented below) so a single process can host
// several protocol layers (e.g. an SDUR server embedding a Paxos replica)
// and dispatch by tag.
//
// Zero-copy fabric: the payload is an immutable refcounted buffer
// (Payload). Copying a Message — broadcast fan-out, vote fan-out to peer
// partitions, capture in an in-flight delivery closure — bumps a refcount
// instead of duplicating the bytes, so a value is encoded exactly once no
// matter how many destinations receive it. Immutability is what makes the
// sharing sound: no writer exists after construction, so aliasing can
// never be observed (see DESIGN.md "Simulation fabric hot path").
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "sim/fabric_stats.h"
#include "util/bytes.h"

namespace sdur::sim {

/// Message tag ranges by module:
///   1–19   Paxos (src/paxos/messages.h)
///   20–49  SDUR server-to-server and client (src/sdur/messages.h)
///   50–99  reserved for applications/tests
using MsgType = std::uint16_t;

/// Immutable, refcounted byte buffer backing Message payloads.
///
/// Construction takes ownership of a util::Bytes buffer; afterwards the
/// bytes are never mutated, so copies share the buffer (refcount bump).
/// For equivalence testing, sharing can be disabled process-wide
/// (set_buffer_sharing(false)): copies then deep-copy, byte-identical
/// simulated behavior either way — only the fabric counters differ.
class Payload {
 public:
  Payload() = default;
  explicit Payload(util::Bytes b)
      : buf_(b.empty() ? nullptr : std::make_shared<const util::Bytes>(std::move(b))) {}

  Payload(const Payload& o) { assign(o); }
  Payload& operator=(const Payload& o) {
    if (this != &o) assign(o);
    return *this;
  }
  Payload(Payload&&) noexcept = default;
  Payload& operator=(Payload&&) noexcept = default;

  std::size_t size() const { return buf_ ? buf_->size() : 0; }
  bool empty() const { return size() == 0; }
  const std::uint8_t* data() const { return buf_ ? buf_->data() : nullptr; }
  std::uint8_t operator[](std::size_t i) const { return (*buf_)[i]; }

  const util::Bytes& bytes() const {
    static const util::Bytes kEmpty;
    return buf_ ? *buf_ : kEmpty;
  }
  /// Lets util::Reader (and legacy call sites) see the payload as Bytes.
  operator const util::Bytes&() const { return bytes(); }  // NOLINT(google-explicit-constructor)

  /// TEST KNOB — turns buffer sharing off (copies deep-copy) so the
  /// golden-digest equivalence test can prove sharing never changes
  /// simulated results. Sharing is ON by default.
  static void set_buffer_sharing(bool on) { sharing_enabled() = on; }
  static bool buffer_sharing() { return sharing_enabled(); }

 private:
  static bool& sharing_enabled() {
    static bool on = true;
    return on;
  }

  void assign(const Payload& o) {
    if (!o.buf_) {
      buf_ = nullptr;
    } else if (sharing_enabled()) {
      buf_ = o.buf_;
      SDUR_FABRIC_COUNT(payload_shares += 1);
    } else {
      buf_ = std::make_shared<const util::Bytes>(*o.buf_);
      SDUR_FABRIC_COUNT(payload_deep_copies += 1);
      SDUR_FABRIC_COUNT(payload_bytes_copied += o.buf_->size());
    }
  }

  std::shared_ptr<const util::Bytes> buf_;
};

struct Message {
  MsgType type = 0;
  Payload payload;

  Message() = default;
  Message(MsgType t, util::Bytes p) : type(t), payload(std::move(p)) {}
  Message(MsgType t, util::Writer&& w) : type(t), payload(std::move(w).take()) {}
  Message(MsgType t, Payload p) : type(t), payload(std::move(p)) {}

  /// Approximate wire size (payload + small header), used for bandwidth
  /// accounting.
  std::size_t wire_size() const { return payload.size() + 8; }
};

}  // namespace sdur::sim
