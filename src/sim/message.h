// Wire message representation.
//
// A message is a 16-bit type tag plus an opaque encoded payload. Modules
// own disjoint tag ranges (documented below) so a single process can host
// several protocol layers (e.g. an SDUR server embedding a Paxos replica)
// and dispatch by tag.
#pragma once

#include <cstdint>
#include <utility>

#include "util/bytes.h"

namespace sdur::sim {

/// Message tag ranges by module:
///   1–19   Paxos (src/paxos/messages.h)
///   20–49  SDUR server-to-server and client (src/sdur/messages.h)
///   50–99  reserved for applications/tests
using MsgType = std::uint16_t;

struct Message {
  MsgType type = 0;
  util::Bytes payload;

  Message() = default;
  Message(MsgType t, util::Bytes p) : type(t), payload(std::move(p)) {}
  Message(MsgType t, util::Writer&& w) : type(t), payload(std::move(w).take()) {}

  /// Approximate wire size (payload + small header), used for bandwidth
  /// accounting.
  std::size_t wire_size() const { return payload.size() + 8; }
};

}  // namespace sdur::sim
