// Transport-agnostic endpoint interface.
//
// Protocol engines (Paxos, SDUR server) are written against this interface
// rather than against the simulator directly, so the same engine code could
// be hosted on a real socket transport. In this repository the simulator's
// Process implements it.
#pragma once

#include "sim/callable.h"
#include "sim/message.h"
#include "sim/time.h"
#include "sim/topology.h"

namespace sdur::sim {

class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// This endpoint's process id.
  virtual ProcessId self() const = 0;

  /// Current time (virtual time in the simulator).
  virtual Time current_time() const = 0;

  /// Sends a message to another process.
  virtual void send_message(ProcessId to, Message m) = 0;

  /// One-shot timer; skipped if the host process crashes first.
  virtual void start_timer(Time delay, UniqueFn fn) = 0;

  /// Queues work on the host's serial CPU with the given cost.
  virtual void queue_work(Time cost, UniqueFn fn) = 0;
};

}  // namespace sdur::sim
