// Small-buffer-optimized, move-only callable for the event loop.
//
// The simulator processes millions of events per wall-clock second, and
// every event used to be a std::function: one heap allocation per scheduled
// closure (the common captures — this, pid, epoch, Message — exceed
// libstdc++'s 16-byte SBO) and a deep copy whenever an event was copied out
// of the priority queue. UniqueFn replaces it on the fabric hot path:
//
//  - 48 bytes of inline storage, sized for the fabric's two hottest
//    closures (network delivery: {Network*, from, to, Message}; message
//    service: {Process*, epoch, from, Message}) so they allocate nothing;
//  - move-only, so events are relocated, never duplicated;
//  - larger closures (protocol work items capturing a transaction) fall
//    back to a single heap allocation, same as std::function but without
//    the copy-constructibility requirement.
//
// The fabric counters record inline vs. heap placements so the perf
// harness can verify the hot path stays allocation-free.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/fabric_stats.h"

namespace sdur::sim {

class UniqueFn {
 public:
  /// Inline capture budget. Covers {ptr, 2x u64, Message} with room to
  /// spare; raising it grows every queued event, so keep it tight.
  static constexpr std::size_t kInlineSize = 48;

  UniqueFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::remove_cvref_t<F>, UniqueFn> &&
                                        std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  UniqueFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_.buf)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
      SDUR_FABRIC_COUNT(fn_inline += 1);
    } else {
      storage_.heap = new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
      SDUR_FABRIC_COUNT(fn_heap_allocs += 1);
    }
  }

  UniqueFn(UniqueFn&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) ops_->relocate(storage_, o.storage_);
    o.ops_ = nullptr;
  }

  UniqueFn& operator=(UniqueFn&& o) noexcept {
    if (this != &o) {
      if (ops_ != nullptr) ops_->destroy(storage_);
      ops_ = o.ops_;
      if (ops_ != nullptr) ops_->relocate(storage_, o.storage_);
      o.ops_ = nullptr;
    }
    return *this;
  }

  UniqueFn(const UniqueFn&) = delete;
  UniqueFn& operator=(const UniqueFn&) = delete;

  ~UniqueFn() {
    if (ops_ != nullptr) ops_->destroy(storage_);
  }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  union Storage {
    alignas(std::max_align_t) std::byte buf[kInlineSize];
    void* heap;
  };

  /// Manual vtable: relocate = move-construct into dst then destroy src
  /// (heap case: just steal the pointer).
  struct Ops {
    void (*invoke)(Storage&);
    void (*relocate)(Storage& dst, Storage& src);
    void (*destroy)(Storage&);
  };

  template <typename Fn>
  static Fn* inline_ptr(Storage& s) {
    return std::launder(reinterpret_cast<Fn*>(s.buf));
  }

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](Storage& s) { (*inline_ptr<Fn>(s))(); },
      [](Storage& dst, Storage& src) {
        Fn* p = inline_ptr<Fn>(src);
        ::new (static_cast<void*>(dst.buf)) Fn(std::move(*p));
        p->~Fn();
      },
      [](Storage& s) { inline_ptr<Fn>(s)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](Storage& s) { (*static_cast<Fn*>(s.heap))(); },
      [](Storage& dst, Storage& src) { dst.heap = src.heap; },
      [](Storage& s) { delete static_cast<Fn*>(s.heap); },
  };

  const Ops* ops_ = nullptr;
  Storage storage_;
};

}  // namespace sdur::sim
