// Process abstraction: a crash-stop actor with a serial CPU.
//
// Each process handles one piece of work at a time on a virtual CPU.
// Incoming messages and explicit work items queue behind the CPU, which is
// what produces realistic queueing delay and saturation (and the convoy
// effect the paper analyses: certification is serialized per replica).
//
// Crash-stop semantics: after crash() the process ignores messages, timers
// and queued work. recover() (used by Paxos recovery tests) bumps an epoch
// so anything scheduled before the crash stays dead, then calls
// on_recover() to let the subclass rebuild volatile state from its durable
// log.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/endpoint.h"
#include "sim/network.h"

namespace sdur::sim {

class Process : public Endpoint {
 public:
  Process(Network& net, ProcessId id, std::string name, Location loc);
  ~Process() override;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ProcessId id() const { return id_; }
  const std::string& name() const { return name_; }
  Time now() const { return net_.simulator().now(); }
  Network& network() { return net_; }

  bool crashed() const { return crashed_; }
  virtual void crash();
  virtual void recover();

  /// Per-message base CPU cost (default 10 us). Handlers can queue extra
  /// work with enqueue_work().
  void set_message_service_time(Time t) { message_service_time_ = t; }

  /// Sends a message through the network (no-op when crashed).
  void send(ProcessId to, Message m);

  /// One-shot timer. The callback is skipped if the process has crashed or
  /// recovered (epoch change) by the time it fires. Timers model protocol
  /// timeouts and do not consume CPU.
  void set_timer(Time delay, std::function<void()> fn);

  /// Queues `fn` on this process's serial CPU with the given cost. `fn`
  /// runs when the CPU has finished all previously queued work plus
  /// `cost` microseconds. This is the primitive behind message handling
  /// and explicit work like certification.
  void enqueue_work(Time cost, std::function<void()> fn);

  /// Extends the CPU busy period by `cost` without scheduling a callback;
  /// used to account for work done inline in a handler (e.g. applying a
  /// writeset). Only work enqueued *after* the charge queues behind it —
  /// already-enqueued work keeps its schedule.
  void charge_cpu(Time cost) {
    cpu_free_at_ = std::max(now(), cpu_free_at_) + (cost < 0 ? 0 : cost);
  }

  /// Virtual time at which the CPU becomes free (for tests/metrics).
  Time cpu_free_at() const { return cpu_free_at_; }

  // --- Endpoint interface (delegates to the methods above) ---------------
  ProcessId self() const override { return id_; }
  Time current_time() const override { return now(); }
  void send_message(ProcessId to, Message m) override { send(to, std::move(m)); }
  void start_timer(Time delay, std::function<void()> fn) override {
    set_timer(delay, std::move(fn));
  }
  void queue_work(Time cost, std::function<void()> fn) override {
    enqueue_work(cost, std::move(fn));
  }

 protected:
  /// Message handler; runs on the process CPU.
  virtual void on_message(const Message& m, ProcessId from) = 0;

  /// Called after recover(); rebuild volatile state from durable storage.
  virtual void on_recover() {}

 private:
  friend class Network;
  /// Entry point used by the network at delivery time.
  void incoming(Message m, ProcessId from);

  Network& net_;
  ProcessId id_;
  std::string name_;
  bool crashed_ = false;
  std::uint64_t epoch_ = 0;
  Time message_service_time_ = usec(10);
  Time cpu_free_at_ = 0;
};

}  // namespace sdur::sim
