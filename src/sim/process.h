// Process abstraction: a crash-stop actor with one or more serial CPUs.
//
// Each process handles one piece of work at a time per virtual CPU core.
// Incoming messages and explicit work items queue behind core 0 by default,
// which is what produces realistic queueing delay and saturation (and the
// convoy effect the paper analyses: certification is serialized per
// replica).
//
// Multi-core model (P-DUR, src/pdur/): a process may own K deterministic
// per-core serial run queues — simulated cores, not OS threads. Each core
// is just an independent "free at" horizon in virtual time; work enqueued
// on a core starts when that core drains, and enqueue_work_multi() models
// a cross-core barrier (all listed cores busy from the latest free time
// until the work completes). Scheduling is a pure function of the enqueue
// sequence, so multi-core runs stay bit-reproducible from the seed.
//
// Crash-stop semantics: after crash() the process ignores messages, timers
// and queued work. recover() (used by Paxos recovery tests) bumps an epoch
// so anything scheduled before the crash stays dead, then calls
// on_recover() to let the subclass rebuild volatile state from its durable
// log.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/endpoint.h"
#include "sim/network.h"

namespace sdur::sim {

class Process : public Endpoint {
 public:
  Process(Network& net, ProcessId id, std::string name, Location loc);
  ~Process() override;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ProcessId id() const { return id_; }
  const std::string& name() const { return name_; }
  Time now() const { return net_.simulator().now(); }
  Network& network() { return net_; }

  bool crashed() const { return crashed_; }
  virtual void crash();
  virtual void recover();

  /// Per-message base CPU cost (default 10 us). Handlers can queue extra
  /// work with enqueue_work().
  void set_message_service_time(Time t) { message_service_time_ = t; }

  /// Sends a message through the network (no-op when crashed).
  void send(ProcessId to, Message m);

  /// One-shot timer. The callback is skipped if the process has crashed or
  /// recovered (epoch change) by the time it fires. Timers model protocol
  /// timeouts and do not consume CPU.
  void set_timer(Time delay, UniqueFn fn);

  /// Queues `fn` on this process's serial CPU (core 0) with the given
  /// cost. `fn` runs when the CPU has finished all previously queued work
  /// plus `cost` microseconds. This is the primitive behind message
  /// handling and explicit work like certification.
  void enqueue_work(Time cost, UniqueFn fn) { enqueue_work_on(0, cost, std::move(fn)); }

  /// Extends the CPU (core 0) busy period by `cost` without scheduling a
  /// callback; used to account for work done inline in a handler (e.g.
  /// applying a writeset). Only work enqueued *after* the charge queues
  /// behind it — already-enqueued work keeps its schedule.
  void charge_cpu(Time cost) { charge_core(0, cost); }

  /// Virtual time at which the CPU (core 0) becomes free (tests/metrics).
  Time cpu_free_at() const { return cpu_free_at_[0]; }

  // --- Multi-core run queues (P-DUR replica model, src/pdur/) -----------

  /// Resizes the process to `cores` independent serial run queues. New
  /// cores start free at the current time; shrinking discards the tail
  /// horizons (already-scheduled callbacks still run). Core 0 always
  /// exists and carries message handling.
  void set_core_count(std::size_t cores);
  std::size_t core_count() const { return cpu_free_at_.size(); }

  /// Queues `fn` on one specific core (clamped to the last core).
  void enqueue_work_on(std::size_t core, Time cost, UniqueFn fn);

  /// Cross-core barrier: every core in `cores` is busy from the latest of
  /// their free times until `cost` later, when `fn` runs once. Models the
  /// P-DUR vote/synchronization step for transactions spanning cores. An
  /// empty list degenerates to core 0.
  void enqueue_work_multi(const std::vector<std::uint32_t>& cores, Time cost, UniqueFn fn);

  /// Extends one core's busy period without scheduling a callback.
  void charge_core(std::size_t core, Time cost);

  /// Virtual time at which `core` becomes free.
  Time core_free_at(std::size_t core) const {
    return cpu_free_at_[core < cpu_free_at_.size() ? core : cpu_free_at_.size() - 1];
  }

  /// Cumulative busy time charged to `core` (utilization metrics).
  Time core_busy_time(std::size_t core) const {
    return core_busy_[core < core_busy_.size() ? core : core_busy_.size() - 1];
  }

  // --- Endpoint interface (delegates to the methods above) ---------------
  ProcessId self() const override { return id_; }
  Time current_time() const override { return now(); }
  void send_message(ProcessId to, Message m) override { send(to, std::move(m)); }
  void start_timer(Time delay, UniqueFn fn) override { set_timer(delay, std::move(fn)); }
  void queue_work(Time cost, UniqueFn fn) override { enqueue_work(cost, std::move(fn)); }

 protected:
  /// Message handler; runs on the process CPU.
  virtual void on_message(const Message& m, ProcessId from) = 0;

  /// Called after recover(); rebuild volatile state from durable storage.
  virtual void on_recover() {}

 private:
  friend class Network;
  /// Entry point used by the network at delivery time.
  void incoming(Message m, ProcessId from);

  /// Reserves `cost` on `core` (clamped) starting when it next drains;
  /// returns the completion time. Shared accounting for enqueue_work_on
  /// and the direct-scheduled message path.
  Time reserve_core(std::size_t core, Time cost);

  Network& net_;
  ProcessId id_;
  std::string name_;
  bool crashed_ = false;
  std::uint64_t epoch_ = 0;
  Time message_service_time_ = usec(10);
  /// Per-core "free at" horizons; index 0 is the legacy serial CPU.
  std::vector<Time> cpu_free_at_ = std::vector<Time>(1, 0);
  std::vector<Time> core_busy_ = std::vector<Time>(1, 0);
};

}  // namespace sdur::sim
