#include "sim/simulator.h"

#include <stdexcept>

namespace sdur::sim {

void Simulator::schedule_at(Time t, std::function<void()> fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (stopped_ || queue_.empty()) return false;
  if (event_budget_ != 0 && events_processed_ >= event_budget_) {
    throw std::runtime_error("simulator event budget exhausted");
  }
  // priority_queue::top is const; move out via const_cast is UB-adjacent,
  // so copy the closure handle (shared state is cheap: std::function with
  // small captures, and correctness never depends on identity).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++events_processed_;
  ev.fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(Time t) {
  while (!stopped_ && !queue_.empty() && queue_.top().time <= t) {
    step();
  }
  if (!stopped_ && now_ < t) now_ = t;
}

}  // namespace sdur::sim
