#include "sim/simulator.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace sdur::sim {

void Simulator::schedule_at(Time t, UniqueFn fn, const std::uint64_t* guard,
                            std::uint64_t expected) {
  if (t < now_) t = now_;
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(Slot{std::move(fn), guard, expected});
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    Slot& s = slots_[slot];
    s.fn = std::move(fn);
    s.guard = guard;
    s.expected = expected;
  }
  queue_.push_back(Event{t, next_seq_++, slot});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

bool Simulator::step() {
  if (stopped_ || queue_.empty()) return false;
  if (event_budget_ != 0 && events_processed_ >= event_budget_) {
    throw std::runtime_error("simulator event budget exhausted");
  }
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  const Event ev = queue_.back();
  queue_.pop_back();
  now_ = ev.time;
  ++events_processed_;
  // Move the callable out and recycle the slot *before* invoking: the
  // closure may schedule new events that reuse it.
  Slot& s = slots_[ev.slot];
  UniqueFn fn = std::move(s.fn);
  const bool runnable = s.guard == nullptr || *s.guard == s.expected;
  s.guard = nullptr;
  free_slots_.push_back(ev.slot);
  if (runnable) fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(Time t) {
  while (!stopped_ && !queue_.empty() && queue_.front().time <= t) {
    step();
  }
  if (!stopped_ && now_ < t) now_ = t;
}

}  // namespace sdur::sim
