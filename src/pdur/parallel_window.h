// Per-core certification windows — the P-DUR decomposition of SDUR's
// conflict check (arXiv:1312.0742, Algorithm 1).
//
// The serial certifier scans every assigned version in (t.st, cc] and
// tests full read/write-set intersections. P-DUR splits that scan across
// cores: each core keeps, for the versions that touched it, only the
// projection of the certified read/write sets onto its own keys, and a
// delivered transaction is checked per core — each home core "votes" on
// its slice, the transaction aborts iff any core saw a conflict.
//
// The decomposition is exact, not approximate: a key belongs to exactly
// one core, so rs(t) ∩ ws(s) = ⋃_c (rs(t)|c ∩ ws(s)|c), and the union of
// the per-core verdicts over t's home cores equals the serial verdict.
// Bloom readsets cannot be split by key; the full filter is shared with
// every lane and probed with that lane's exact keys, which performs the
// same set of probes as the serial check. Certifier cross-checks this
// equivalence against the serial scan in SDUR_AUDIT builds.
//
// Version numbers are assigned by the (shared, delivery-ordered) certifier
// counter; the lanes only index their entries by it, so entries within a
// lane are version-sorted and the (st, cc] scan is a binary search plus a
// suffix walk over ~1/K of the window.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "pdur/core_partitioner.h"
#include "storage/mvstore.h"
#include "util/bloom.h"

namespace sdur::pdur {

class ParallelWindow {
 public:
  explicit ParallelWindow(CoreId cores) : part_(cores), lanes_(part_.cores()) {}

  const CorePartitioner& partitioner() const { return part_; }

  /// Inserts the per-core projections of a certified transaction at
  /// version `v` into its home cores' lanes. Versions must be inserted in
  /// increasing order (they are: the certifier assigns them at delivery).
  void insert(storage::Version v, const util::KeySet& readset, const util::KeySet& write_keys,
              const std::vector<CoreId>& cores);

  /// Parallel certification check for a transaction with snapshot `st`:
  /// every home core scans its lane over versions in (st, +inf) and votes;
  /// returns true iff any core detected a conflict. `global` adds the
  /// write/read check global transactions need (Section III-B of the SDUR
  /// paper).
  bool conflicts(const util::KeySet& readset, const util::KeySet& write_keys, bool global,
                 const std::vector<CoreId>& cores, storage::Version st) const;

  /// Drops every lane entry with version < `base` (window eviction).
  void evict_below(storage::Version base);

  void clear();

  /// Total lane entries currently held (across cores).
  std::size_t entry_count() const;
  /// Entries in one core's lane.
  std::size_t lane_size(CoreId c) const { return lanes_[c].size(); }
  /// Cumulative lane entries scanned by conflict checks (cost metric: the
  /// per-core scan depth is what P-DUR divides by K).
  std::uint64_t scanned() const { return scanned_; }

 private:
  struct Entry {
    storage::Version version = 0;
    util::KeySet readset;     // projection onto the lane's keys (full bloom if bloom-encoded)
    util::KeySet write_keys;  // exact projection onto the lane's keys
  };

  CorePartitioner part_;
  std::vector<std::deque<Entry>> lanes_;  // version-ascending per core
  mutable std::uint64_t scanned_ = 0;
};

}  // namespace sdur::pdur
