// Per-core certification windows — the P-DUR decomposition of SDUR's
// conflict check (arXiv:1312.0742, Algorithm 1).
//
// The serial certifier scans every assigned version in (t.st, cc] and
// tests full read/write-set intersections. P-DUR splits that scan across
// cores: each core keeps, for the versions that touched it, only the
// projection of the certified read/write sets onto its own keys, and a
// delivered transaction is checked per core — each home core "votes" on
// its slice, the transaction aborts iff any core saw a conflict.
//
// The decomposition is exact, not approximate: a key belongs to exactly
// one core, so rs(t) ∩ ws(s) = ⋃_c (rs(t)|c ∩ ws(s)|c), and the union of
// the per-core verdicts over t's home cores equals the serial verdict.
// Bloom readsets cannot be split by key; the full filter is shared with
// every lane and probed with that lane's exact keys, which performs the
// same set of probes as the serial check. Certifier cross-checks this
// equivalence against the serial scan in SDUR_AUDIT builds.
//
// Version numbers are assigned by the (shared, delivery-ordered) certifier
// counter; the lanes only index their entries by it, so entries within a
// lane are version-sorted and the (st, cc] scan is a binary search plus a
// suffix walk over ~1/K of the window.
//
// INDEXED LANES. Each lane additionally maintains a storage::CertIndex
// sub-index over its projected entries, so a core's vote is O(projected
// set size) hash probes plus a scan of only the lane's bloom-encoded
// suffix — the per-core mirror of the serial certifier's index. Audit
// builds cross-check every lane vote against that lane's scan
// ("index-scan-equivalence"), on top of the certifier-level
// parallel-vs-serial cross-check.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "pdur/core_partitioner.h"
#include "storage/cert_index.h"
#include "storage/mvstore.h"
#include "util/bloom.h"

namespace sdur::pdur {

class ParallelWindow {
 public:
  explicit ParallelWindow(CoreId cores) : part_(cores), lanes_(part_.cores()) {}

  const CorePartitioner& partitioner() const { return part_; }

  /// Inserts the per-core projections of a certified transaction at
  /// version `v` into its home cores' lanes. Versions must be inserted in
  /// increasing order (they are: the certifier assigns them at delivery).
  void insert(storage::Version v, const util::KeySet& readset, const util::KeySet& write_keys,
              const std::vector<CoreId>& cores);

  /// Parallel certification check for a transaction with snapshot `st`:
  /// every home core probes its lane sub-index (falling back to a lane
  /// scan for bloom-mode sets) and votes; returns true iff any core
  /// detected a conflict. `global` adds the write/read check global
  /// transactions need (Section III-B of the SDUR paper).
  bool conflicts(const util::KeySet& readset, const util::KeySet& write_keys, bool global,
                 const std::vector<CoreId>& cores, storage::Version st) const;

  /// Drops every lane entry with version < `base` (window eviction).
  void evict_below(storage::Version base);

  void clear();

  // --- Out-of-order local commit (cfg.ooo_bypass) -------------------------
  /// Per-lane sub-indexes over the write keys of the still-pending
  /// entries — the per-core decomposition of the certifier's pending-write
  /// bypass gate. Write keys are always exact; versions arrive ascending
  /// per lane (assigned at delivery / sorted on rebuild). Only the
  /// certifier's bypass path calls these; legacy runs never touch them.
  void pending_insert(storage::Version v, const util::KeySet& write_keys);
  void pending_evict(storage::Version v, const util::KeySet& write_keys);
  void pending_clear();
  /// Gate trigger over the transaction's home cores (exact probe sets
  /// only; the certifier handles bloom readsets upstream). Each home lane
  /// probes with the full sets: a lane's pending index only holds keys
  /// homed on it, so foreign probe keys miss by construction and the union
  /// of lane verdicts equals the serial pending-index probe.
  bool pending_writes_conflict(const util::KeySet& readset, const util::KeySet& write_keys,
                               const std::vector<CoreId>& cores) const;

  /// Total lane entries currently held (across cores).
  std::size_t entry_count() const;
  /// Entries in one core's lane.
  std::size_t lane_size(CoreId c) const { return lanes_[c].entries.size(); }
  /// Cumulative certification work units: index key probes plus lane
  /// entries touched by fallback scans (the cost P-DUR divides by K).
  std::uint64_t scanned() const { return scanned_; }

 private:
  struct Entry {
    storage::Version version = 0;
    util::KeySet readset;     // projection onto the lane's keys (full bloom if bloom-encoded)
    util::KeySet write_keys;  // exact projection onto the lane's keys
  };

  struct Lane {
    std::deque<Entry> entries;        // version-ascending
    storage::CertIndex index;         // sub-index over the projections
    storage::CertIndex pending;       // bypass gate: pending write keys homed here
  };

  /// Lane vote via the legacy scan over the lane's (st, +inf) suffix.
  bool lane_scan_vote(const Lane& lane, const util::KeySet& rs_c, const util::KeySet& ws_c,
                      bool global, storage::Version st) const;
  /// Lane vote via the sub-index (bit-identical to lane_scan_vote).
  bool lane_indexed_vote(const Lane& lane, const util::KeySet& rs_c, const util::KeySet& ws_c,
                         bool global, storage::Version st) const;
  /// Lane entry holding version `v` (binary search; must exist).
  const Entry& lane_entry(const Lane& lane, storage::Version v) const;

  CorePartitioner part_;
  std::vector<Lane> lanes_;
  mutable std::uint64_t scanned_ = 0;
};

}  // namespace sdur::pdur
