#include "pdur/parallel_window.h"

#include <algorithm>

#include "audit/audit.h"
#include "trace/trace.h"

namespace sdur::pdur {

namespace {

/// Projects a KeySet onto one core's keys. Bloom sets are shared whole
/// (they cannot be enumerated); exact sets are filtered, preserving the
/// sorted order KeySet::exact expects.
util::KeySet project(const util::KeySet& s, const CorePartitioner& part, CoreId c) {
  if (s.is_bloom()) return s;
  return util::KeySet::exact(part.keys_of(s.keys(), c));
}

}  // namespace

void ParallelWindow::insert(storage::Version v, const util::KeySet& readset,
                            const util::KeySet& write_keys, const std::vector<CoreId>& cores) {
  for (CoreId c : cores) {
    Entry e;
    e.version = v;
    e.readset = project(readset, part_, c);
    e.write_keys = project(write_keys, part_, c);
    if (e.readset.empty() && e.write_keys.empty()) continue;
    lanes_[c].index.insert(v, e.readset, e.write_keys);
    lanes_[c].entries.push_back(std::move(e));
  }
}

const ParallelWindow::Entry& ParallelWindow::lane_entry(const Lane& lane,
                                                        storage::Version v) const {
  auto it = std::lower_bound(
      lane.entries.begin(), lane.entries.end(), v,
      [](const Entry& e, storage::Version version) { return e.version < version; });
  return *it;
}

bool ParallelWindow::lane_scan_vote(const Lane& lane, const util::KeySet& rs_c,
                                    const util::KeySet& ws_c, bool global,
                                    storage::Version st) const {
  // Lane entries are version-ascending; start past the snapshot. This is
  // Algorithm 2's check restricted to one sub-partition.
  auto it = std::lower_bound(
      lane.entries.begin(), lane.entries.end(), st + 1,
      [](const Entry& e, storage::Version v) { return e.version < v; });
  for (; it != lane.entries.end(); ++it) {
    if (rs_c.intersects(it->write_keys)) return true;
    if (global && ws_c.intersects(it->readset)) return true;
  }
  return false;
}

bool ParallelWindow::lane_indexed_vote(const Lane& lane, const util::KeySet& rs_c,
                                       const util::KeySet& ws_c, bool global,
                                       storage::Version st) const {
  // Component A: the lane's projected readset vs its entries' write keys.
  // A bloom probe readset cannot drive key probes — scan the lane suffix.
  if (rs_c.is_bloom() && !rs_c.empty()) {
    auto it = std::lower_bound(
        lane.entries.begin(), lane.entries.end(), st + 1,
        [](const Entry& e, storage::Version v) { return e.version < v; });
    for (; it != lane.entries.end(); ++it) {
      ++scanned_;
      if (rs_c.intersects(it->write_keys)) return true;
    }
  } else {
    scanned_ += rs_c.keys().size();
    if (lane.index.reads_conflict(rs_c, st)) return true;
    const auto& bws = lane.index.bloom_write_versions();
    for (auto it = std::upper_bound(bws.begin(), bws.end(), st); it != bws.end(); ++it) {
      ++scanned_;
      if (rs_c.intersects(lane_entry(lane, *it).write_keys)) return true;
    }
  }
  if (!global) return false;
  // Component B: the lane's projected write keys vs its entries' readsets.
  if (ws_c.is_bloom() && !ws_c.empty()) {
    auto it = std::lower_bound(
        lane.entries.begin(), lane.entries.end(), st + 1,
        [](const Entry& e, storage::Version v) { return e.version < v; });
    for (; it != lane.entries.end(); ++it) {
      ++scanned_;
      if (ws_c.intersects(it->readset)) return true;
    }
    return false;
  }
  scanned_ += ws_c.keys().size();
  if (lane.index.writes_conflict(ws_c, st)) return true;
  const auto& brs = lane.index.bloom_read_versions();
  for (auto it = std::upper_bound(brs.begin(), brs.end(), st); it != brs.end(); ++it) {
    ++scanned_;
    if (ws_c.intersects(lane_entry(lane, *it).readset)) return true;
  }
  return false;
}

bool ParallelWindow::conflicts(const util::KeySet& readset, const util::KeySet& write_keys,
                               bool global, const std::vector<CoreId>& cores,
                               storage::Version st) const {
  for (CoreId c : cores) {
    const Lane& lane = lanes_[c];
    if (lane.entries.empty() || lane.entries.back().version <= st) continue;
    const util::KeySet rs_c = project(readset, part_, c);
    const util::KeySet ws_c = project(write_keys, part_, c);
    // Per-lane strategy instant (aux = the lane): a bloom component in this
    // lane's projection forces the lane-suffix scan, mirroring
    // lane_indexed_vote; attributed to the current delivery via the tracer
    // context the dispatcher set.
    SDUR_TRACE_STMT({
      const bool scans = (rs_c.is_bloom() && !rs_c.empty()) ||
                         (global && ws_c.is_bloom() && !ws_c.empty());
      SDUR_TRACE_CONTEXT_INSTANT(scans ? trace::Point::kCertScanFallback
                                       : trace::Point::kCertIndexProbe,
                                 static_cast<std::uint64_t>(c));
    });
    const bool vote = lane_indexed_vote(lane, rs_c, ws_c, global, st);
    // Each lane's sub-index must reproduce that lane's scan vote exactly —
    // the per-core slice of the index-scan equivalence bar.
    SDUR_AUDIT_CHECK("pdur", "index-scan-equivalence",
                     vote == lane_scan_vote(lane, rs_c, ws_c, global, st),
                     "lane " << c << " indexed vote " << (vote ? "conflict" : "clear")
                             << " (st=" << st << ") diverges from the lane scan");
    if (vote) return true;
  }
  return false;
}

// --- Out-of-order local commit (cfg.ooo_bypass) -------------------------------

void ParallelWindow::pending_insert(storage::Version v, const util::KeySet& write_keys) {
  // One insert per home lane of the write set, carrying the lane's
  // projection (cold-ish path: once per committed delivery, same idiom as
  // insert() above).
  for (CoreId c = 0; c < part_.cores(); ++c) {
    util::KeySet ws_c = project(write_keys, part_, c);
    if (ws_c.empty()) continue;
    lanes_[c].pending.insert(v, util::KeySet(), ws_c);
  }
}

void ParallelWindow::pending_evict(storage::Version v, const util::KeySet& write_keys) {
  for (CoreId c = 0; c < part_.cores(); ++c) {
    util::KeySet ws_c = project(write_keys, part_, c);
    if (ws_c.empty()) continue;
    lanes_[c].pending.evict(v, util::KeySet(), ws_c);
  }
}

void ParallelWindow::pending_clear() {
  for (auto& lane : lanes_) lane.pending.clear();
}

bool ParallelWindow::pending_writes_conflict(const util::KeySet& readset,
                                             const util::KeySet& write_keys,
                                             const std::vector<CoreId>& cores) const {
  // Snapshot 0 turns the last-writer probe into an existence probe
  // (versions start at 1). Probe keys homed elsewhere cannot be in this
  // lane's table, so no projection is needed — and none is allocated.
  for (CoreId c : cores) {
    const Lane& lane = lanes_[c];
    if (lane.pending.reads_conflict(readset, 0)) return true;
    if (lane.pending.reads_conflict(write_keys, 0)) return true;
  }
  return false;
}

void ParallelWindow::evict_below(storage::Version base) {
  for (auto& lane : lanes_) {
    while (!lane.entries.empty() && lane.entries.front().version < base) {
      const Entry& e = lane.entries.front();
      lane.index.evict(e.version, e.readset, e.write_keys);
      lane.entries.pop_front();
    }
  }
}

void ParallelWindow::clear() {
  for (auto& lane : lanes_) {
    lane.entries.clear();
    lane.index.clear();
    lane.pending.clear();
  }
  scanned_ = 0;
}

std::size_t ParallelWindow::entry_count() const {
  std::size_t n = 0;
  for (const auto& lane : lanes_) n += lane.entries.size();
  return n;
}

}  // namespace sdur::pdur
