#include "pdur/parallel_window.h"

#include <algorithm>

namespace sdur::pdur {

namespace {

/// Projects a KeySet onto one core's keys. Bloom sets are shared whole
/// (they cannot be enumerated); exact sets are filtered, preserving the
/// sorted order KeySet::exact expects.
util::KeySet project(const util::KeySet& s, const CorePartitioner& part, CoreId c) {
  if (s.is_bloom()) return s;
  return util::KeySet::exact(part.keys_of(s.keys(), c));
}

}  // namespace

void ParallelWindow::insert(storage::Version v, const util::KeySet& readset,
                            const util::KeySet& write_keys, const std::vector<CoreId>& cores) {
  for (CoreId c : cores) {
    Entry e;
    e.version = v;
    e.readset = project(readset, part_, c);
    e.write_keys = project(write_keys, part_, c);
    if (e.readset.empty() && e.write_keys.empty()) continue;
    lanes_[c].push_back(std::move(e));
  }
}

bool ParallelWindow::conflicts(const util::KeySet& readset, const util::KeySet& write_keys,
                               bool global, const std::vector<CoreId>& cores,
                               storage::Version st) const {
  for (CoreId c : cores) {
    const auto& lane = lanes_[c];
    // Lane entries are version-ascending; start past the snapshot.
    auto it = std::lower_bound(lane.begin(), lane.end(), st + 1,
                               [](const Entry& e, storage::Version v) { return e.version < v; });
    if (it == lane.end()) continue;
    // This core's vote: scan its slice of the window against the
    // transaction's projection onto its keys (Algorithm 2's check,
    // restricted to one sub-partition).
    const util::KeySet rs_c = project(readset, part_, c);
    const util::KeySet ws_c = project(write_keys, part_, c);
    for (; it != lane.end(); ++it) {
      ++scanned_;
      if (rs_c.intersects(it->write_keys)) return true;
      if (global && ws_c.intersects(it->readset)) return true;
    }
  }
  return false;
}

void ParallelWindow::evict_below(storage::Version base) {
  for (auto& lane : lanes_) {
    while (!lane.empty() && lane.front().version < base) lane.pop_front();
  }
}

void ParallelWindow::clear() {
  for (auto& lane : lanes_) lane.clear();
  scanned_ = 0;
}

std::size_t ParallelWindow::entry_count() const {
  std::size_t n = 0;
  for (const auto& lane : lanes_) n += lane.size();
  return n;
}

}  // namespace sdur::pdur
