// P-DUR intra-replica executor: schedules the certification/execution work
// of delivered transactions onto a replica's simulated cores.
//
// Single-core transactions (all keys homed on one core) take the fast
// path: the work queues on that core alone, so K cores drain K disjoint
// streams concurrently — this is where P-DUR's near-linear local
// throughput scaling comes from. Transactions spanning cores pay the
// deterministic cross-core vote/barrier: every involved core rendezvouses
// (the earliest ones idle until the last arrives), the sync surcharge is
// added, and all involved cores stay busy until the work completes —
// graceful degradation, mirroring the P-DUR paper's worker threads
// blocking on a multi-partition transaction.
//
// The executor only models *when* effects become visible; the decision
// logic itself (certification) stays a pure function of the delivered
// sequence, evaluated in delivery order by the dispatcher.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "pdur/config.h"
#include "pdur/core_partitioner.h"
#include "sim/process.h"
#include "trace/trace.h"

namespace sdur::pdur {

class Executor {
 public:
  Executor(sim::Process& proc, const Config& cfg) : proc_(proc), cfg_(cfg), part_(cfg.cores) {
    SDUR_TRACE_STMT({
      if (trace::Tracer::instance().enabled()) {
        lane_tracks_.reserve(cfg_.cores);
        for (std::uint32_t c = 0; c < cfg_.cores; ++c) {
          lane_tracks_.push_back(SDUR_TRACE_REGISTER(
              proc_.id(), proc_.name() + "-core" + std::to_string(c),
              static_cast<std::int32_t>(c)));
        }
      }
    });
  }

  /// Schedules `work_cost` of certification/execution for a transaction
  /// homed on `cores`; `done` runs (epoch/crash-guarded) when every
  /// involved core has finished. Cross-core transactions additionally pay
  /// cfg.cross_core_sync_cost under barrier semantics.
  void run(const std::vector<CoreId>& cores, sim::Time work_cost, sim::UniqueFn done) {
    if (cores.size() > 1) {
      ++cross_core_;
      trace_lane_spans(cores.data(), cores.size(), work_cost + cfg_.cross_core_sync_cost);
      proc_.enqueue_work_multi(cores, work_cost + cfg_.cross_core_sync_cost, std::move(done));
    } else {
      ++single_core_;
      const CoreId c = cores.empty() ? 0 : cores.front();
      trace_lane_spans(&c, 1, work_cost);
      proc_.enqueue_work_on(c, work_cost, std::move(done));
    }
  }

  /// Schedules a read on the owning core of `key`.
  void run_read(std::uint64_t key, sim::UniqueFn done) {
    const CoreId c = part_.core_of(key);
    SDUR_TRACE_STMT({
      if (c < lane_tracks_.size()) {
        const sim::Time start = std::max(proc_.now(), proc_.core_free_at(c));
        trace::Tracer::instance().record_span(lane_tracks_[c], trace::Point::kLaneWork, 0,
                                              start, start + cfg_.read_cost, key, proc_.now());
      }
    });
    proc_.enqueue_work_on(c, cfg_.read_cost, std::move(done));
  }

  std::uint64_t single_core_txns() const { return single_core_; }
  std::uint64_t cross_core_txns() const { return cross_core_; }

 private:
  /// Mirrors sim::Process's reservation math to record, at enqueue time,
  /// when each involved lane will rendezvous (kLaneWait) and run
  /// (kLaneWork). Purely observational: the process performs the identical
  /// computation when the work is enqueued right after.
  void trace_lane_spans(const CoreId* cores, std::size_t n, sim::Time cost) {
#if SDUR_TRACE
    if (lane_tracks_.empty()) return;
    auto& tracer = trace::Tracer::instance();
    if (!tracer.enabled()) return;
    const sim::Time t_now = proc_.now();
    sim::Time start = t_now;
    for (std::size_t i = 0; i < n; ++i) start = std::max(start, proc_.core_free_at(cores[i]));
    const std::uint64_t txid = tracer.context_id();
    for (std::size_t i = 0; i < n; ++i) {
      const CoreId c = cores[i];
      if (c >= lane_tracks_.size()) continue;
      const sim::Time free_c = std::max(t_now, proc_.core_free_at(c));
      if (free_c < start) {  // barrier: this lane idles until the last arrives
        tracer.record_span(lane_tracks_[c], trace::Point::kLaneWait, txid, free_c, start, n,
                           t_now);
      }
      tracer.record_span(lane_tracks_[c], trace::Point::kLaneWork, txid, start, start + cost, n,
                         t_now);
    }
#else
    (void)cores;
    (void)n;
    (void)cost;
#endif
  }

  sim::Process& proc_;
  Config cfg_;
  CorePartitioner part_;
  std::uint64_t single_core_ = 0;
  std::uint64_t cross_core_ = 0;
  /// Per-core lane trace tracks (empty in untraced runs).
  std::vector<std::uint32_t> lane_tracks_;
};

}  // namespace sdur::pdur
