// P-DUR intra-replica executor: schedules the certification/execution work
// of delivered transactions onto a replica's simulated cores.
//
// Single-core transactions (all keys homed on one core) take the fast
// path: the work queues on that core alone, so K cores drain K disjoint
// streams concurrently — this is where P-DUR's near-linear local
// throughput scaling comes from. Transactions spanning cores pay the
// deterministic cross-core vote/barrier: every involved core rendezvouses
// (the earliest ones idle until the last arrives), the sync surcharge is
// added, and all involved cores stay busy until the work completes —
// graceful degradation, mirroring the P-DUR paper's worker threads
// blocking on a multi-partition transaction.
//
// The executor only models *when* effects become visible; the decision
// logic itself (certification) stays a pure function of the delivered
// sequence, evaluated in delivery order by the dispatcher.
#pragma once

#include <cstdint>
#include <vector>

#include "pdur/config.h"
#include "pdur/core_partitioner.h"
#include "sim/process.h"

namespace sdur::pdur {

class Executor {
 public:
  Executor(sim::Process& proc, const Config& cfg) : proc_(proc), cfg_(cfg), part_(cfg.cores) {}

  /// Schedules `work_cost` of certification/execution for a transaction
  /// homed on `cores`; `done` runs (epoch/crash-guarded) when every
  /// involved core has finished. Cross-core transactions additionally pay
  /// cfg.cross_core_sync_cost under barrier semantics.
  void run(const std::vector<CoreId>& cores, sim::Time work_cost, sim::UniqueFn done) {
    if (cores.size() > 1) {
      ++cross_core_;
      proc_.enqueue_work_multi(cores, work_cost + cfg_.cross_core_sync_cost, std::move(done));
    } else {
      ++single_core_;
      proc_.enqueue_work_on(cores.empty() ? 0 : cores.front(), work_cost, std::move(done));
    }
  }

  /// Schedules a read on the owning core of `key`.
  void run_read(std::uint64_t key, sim::UniqueFn done) {
    proc_.enqueue_work_on(part_.core_of(key), cfg_.read_cost, std::move(done));
  }

  std::uint64_t single_core_txns() const { return single_core_; }
  std::uint64_t cross_core_txns() const { return cross_core_; }

 private:
  sim::Process& proc_;
  Config cfg_;
  CorePartitioner part_;
  std::uint64_t single_core_ = 0;
  std::uint64_t cross_core_ = 0;
};

}  // namespace sdur::pdur
