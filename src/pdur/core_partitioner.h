// Intra-replica sub-partitioner (P-DUR, arXiv:1312.0742, Section III).
//
// P-DUR splits a replica's database across K worker cores; every key has
// exactly one home core, so conflicts can only arise between transactions
// that share a core. The mapping is a pure function of the key (a hash),
// identical on every replica, which keeps the parallel certification
// decomposition deterministic.
//
// Bloom-encoded readsets cannot be enumerated, so a transaction shipping a
// bloom readset is conservatively homed on *all* cores (its reads could
// touch any key). Write keys are always exact.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bloom.h"
#include "util/hash.h"

namespace sdur::pdur {

using CoreId = std::uint32_t;

class CorePartitioner {
 public:
  explicit CorePartitioner(CoreId cores) : cores_(cores == 0 ? 1 : cores) {}

  CoreId cores() const { return cores_; }

  CoreId core_of(std::uint64_t key) const {
    return static_cast<CoreId>(util::mix64(key) % cores_);
  }

  /// Keys of `keys` homed on core `c` (order preserved; input sorted in ->
  /// output sorted out).
  std::vector<std::uint64_t> keys_of(const std::vector<std::uint64_t>& keys, CoreId c) const {
    std::vector<std::uint64_t> out;
    for (std::uint64_t k : keys) {
      if (core_of(k) == c) out.push_back(k);
    }
    return out;
  }

  /// Home cores of a transaction with readset `rs` and write keys `ws`:
  /// the cores owning at least one of its keys, sorted. A bloom readset
  /// homes the transaction on every core. Empty key sets yield {0} so
  /// callers always have a core to charge.
  std::vector<CoreId> home_cores(const util::KeySet& rs, const util::KeySet& ws) const {
    std::vector<bool> hit(cores_, false);
    if ((rs.is_bloom() && !rs.empty()) || (ws.is_bloom() && !ws.empty())) {
      for (CoreId c = 0; c < cores_; ++c) hit[c] = true;
    } else {
      for (std::uint64_t k : rs.keys()) hit[core_of(k)] = true;
      for (std::uint64_t k : ws.keys()) hit[core_of(k)] = true;
    }
    std::vector<CoreId> out;
    for (CoreId c = 0; c < cores_; ++c) {
      if (hit[c]) out.push_back(c);
    }
    if (out.empty()) out.push_back(0);
    return out;
  }

 private:
  CoreId cores_;
};

}  // namespace sdur::pdur
