// P-DUR (Parallel Deferred Update Replication) configuration.
//
// Knobs for the multi-core replica model (arXiv:1312.0742): how many
// simulated cores a replica certifies/executes on, and the CPU cost model
// for the intra-replica pipeline. See src/pdur/ and DESIGN.md ("Multi-core
// replica model / P-DUR").
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace sdur::pdur {

struct Config {
  /// Number of simulated certification/execution cores per replica.
  /// 1 (the default) keeps the legacy serial replica model byte-for-byte:
  /// all work runs on the process's single CPU. >= 2 activates the P-DUR
  /// pipeline: keys are sub-partitioned across cores, delivered
  /// transactions fan out to their home cores, and transactions spanning
  /// cores pay a deterministic vote/barrier step.
  std::uint32_t cores = 1;

  /// Serial ingress cost per message when the P-DUR pipeline is active.
  /// The legacy model charges the whole per-message handling cost
  /// (ServerConfig::message_service_time) on the single CPU; P-DUR splits
  /// it into this cheap network/dispatch slice on core 0 plus the actual
  /// work charged on the owning core (reads: read_cost; deliveries:
  /// certification/apply cost).
  sim::Time ingress_cost = sim::usec(5);

  /// Per-delivery serial dispatch cost on core 0 (decode + fan-out to home
  /// cores). This is P-DUR's residual serial fraction; it bounds the
  /// maximum speedup a la Amdahl.
  sim::Time dispatch_cost = sim::usec(3);

  /// Extra cost of the deterministic cross-core vote/barrier exchange paid
  /// by every transaction whose keys span more than one core (shared-memory
  /// synchronization in the paper's prototype).
  sim::Time cross_core_sync_cost = sim::usec(8);

  /// Cost of serving one multiversion read on the key's owning core.
  sim::Time read_cost = sim::usec(10);
};

}  // namespace sdur::pdur
