#include "sdur/deployment.h"

#include <stdexcept>

namespace sdur {

namespace {
sim::Topology topology_for(const DeploymentSpec& spec) {
  sim::Topology t =
      spec.kind == DeploymentSpec::Kind::kLan ? sim::Topology::lan() : sim::Topology::ec2_three_regions();
  t.set_jitter(spec.jitter);
  return t;
}
}  // namespace

Deployment::Deployment(DeploymentSpec spec) : spec_(std::move(spec)) {
  if (!spec_.partitioning) throw std::invalid_argument("DeploymentSpec requires a partitioning");
  if (spec_.partitioning->count() != spec_.partitions) {
    throw std::invalid_argument("partitioning count != deployment partitions");
  }
  net_ = std::make_unique<sim::Network>(sim_, topology_for(spec_), spec_.seed);

  // Routing tables shared by all servers.
  std::vector<std::vector<sim::ProcessId>> partition_servers(spec_.partitions);
  for (PartitionId p = 0; p < spec_.partitions; ++p) {
    for (std::uint32_t r = 0; r < spec_.replicas; ++r) {
      partition_servers[p].push_back(server_pid(p, r));
    }
  }

  const sim::Topology& topo = net_->topology();
  for (PartitionId p = 0; p < spec_.partitions; ++p) {
    paxos::GroupConfig group;
    group.members = partition_servers[p];
    group.log_write_latency = spec_.log_write_latency;
    group.heartbeat_interval = spec_.heartbeat_interval;
    group.election_timeout = spec_.election_timeout;
    group.max_batch = spec_.max_batch;
    group.pipeline_window = spec_.pipeline_window;

    for (std::uint32_t r = 0; r < spec_.replicas; ++r) {
      const sim::Location loc = server_location(p, r);
      ServerConfig cfg = spec_.server;
      cfg.partition = p;
      cfg.num_partitions = spec_.partitions;
      cfg.partition_servers = partition_servers;
      // Reads route to the replica of the target partition closest to this
      // server's region.
      cfg.read_route.clear();
      for (PartitionId q = 0; q < spec_.partitions; ++q) {
        cfg.read_route.push_back(server_pid(q, nearest_replica(q, loc.region)));
      }
      // Delay estimates (Section IV-D): one-way delay from this server's
      // region to the target partition's leader region.
      cfg.partition_delay_estimate.clear();
      for (PartitionId q = 0; q < spec_.partitions; ++q) {
        cfg.partition_delay_estimate.push_back(
            q == p ? 0 : topo.region_delay(loc.region, home_region(q)));
      }
      paxos::GroupConfig g = group;
      g.self_index = r;
      servers_.push_back(std::make_unique<Server>(*net_, server_pid(p, r), loc, std::move(cfg),
                                                  std::move(g), spec_.partitioning));
    }
  }
}

Deployment::~Deployment() {
  // Clients reference the network in their destructor (detach); destroy
  // them before the network. unique_ptr members are destroyed in reverse
  // declaration order, which already handles this; nothing else to do.
}

std::uint16_t Deployment::home_region(PartitionId p) const {
  if (spec_.kind == DeploymentSpec::Kind::kLan) return 0;
  return p % 2 == 0 ? sim::kEU : sim::kUSEast;
}

sim::Location Deployment::server_location(PartitionId p, std::uint32_t replica) const {
  switch (spec_.kind) {
    case DeploymentSpec::Kind::kLan:
      // One region, one availability zone per replica.
      return {0, static_cast<std::uint16_t>(replica)};
    case DeploymentSpec::Kind::kWan1: {
      // Majority of replicas in the home region (distinct availability
      // zones); the rest in the other home region, serving nearby reads.
      const std::uint16_t home = home_region(p);
      const std::uint16_t away = home == sim::kEU ? sim::kUSEast : sim::kEU;
      const std::uint32_t majority = spec_.replicas / 2 + 1;
      if (replica < majority) return {home, static_cast<std::uint16_t>(replica)};
      return {away, static_cast<std::uint16_t>(replica)};
    }
    case DeploymentSpec::Kind::kWan2: {
      // One replica per region, leader (replica 0) in the home region.
      const std::uint16_t home = home_region(p);
      const auto region = static_cast<std::uint16_t>((home + replica) % 3);
      return {region, static_cast<std::uint16_t>(p)};
    }
  }
  return {0, 0};
}

std::uint32_t Deployment::nearest_replica(PartitionId p, std::uint16_t region) const {
  const sim::Topology& topo = net_->topology();
  std::uint32_t best = 0;
  sim::Time best_delay = sim::kNever;
  for (std::uint32_t r = 0; r < spec_.replicas; ++r) {
    const sim::Location loc = server_location(p, r);
    const sim::Time d = topo.region_delay(region, loc.region);
    if (d < best_delay) {
      best_delay = d;
      best = r;
    }
  }
  return best;
}

Server& Deployment::server(PartitionId p, std::uint32_t replica) {
  return *servers_.at(p * spec_.replicas + replica);
}

std::vector<Server*> Deployment::servers() {
  std::vector<Server*> out;
  out.reserve(servers_.size());
  for (auto& s : servers_) out.push_back(s.get());
  return out;
}

Client& Deployment::add_client(PartitionId home) {
  const sim::Location loc{home_region(home), 0};
  ClientConfig cfg = spec_.client;
  cfg.read_server.clear();
  cfg.commit_server.clear();
  cfg.partitioning = spec_.partitioning;
  for (PartitionId q = 0; q < spec_.partitions; ++q) {
    cfg.read_server.push_back(server_pid(q, nearest_replica(q, loc.region)));
    // Preferred server: the home partition's leader when committing there;
    // the nearest replica otherwise.
    cfg.commit_server.push_back(q == home ? server_pid(q, 0)
                                          : server_pid(q, nearest_replica(q, loc.region)));
  }
  cfg.snapshot_server = cfg.commit_server[home];
  clients_.push_back(std::make_unique<Client>(*net_, next_client_pid_++, loc, std::move(cfg)));
  return *clients_.back();
}

std::vector<Client*> Deployment::clients() {
  std::vector<Client*> out;
  out.reserve(clients_.size());
  for (auto& c : clients_) out.push_back(c.get());
  return out;
}

void Deployment::load(Key k, std::string v) {
  const PartitionId p = spec_.partitioning->partition_of(k);
  for (std::uint32_t r = 0; r < spec_.replicas; ++r) server(p, r).load(k, v);
}

void Deployment::start() {
  for (auto& s : servers_) s->start();
}

Server::Stats Deployment::total_stats() const {
  Server::Stats total;
  for (const auto& s : servers_) {
    const Server::Stats& st = s->stats();
    total.delivered += st.delivered;
    total.committed_local += st.committed_local;
    total.committed_global += st.committed_global;
    total.aborted += st.aborted;
    total.stale_snapshot_aborts += st.stale_snapshot_aborts;
    total.reordered += st.reordered;
    total.ticks_sent += st.ticks_sent;
    total.abort_requests_sent += st.abort_requests_sent;
    total.reads_served += st.reads_served;
    total.reads_routed += st.reads_routed;
    total.reads_deferred += st.reads_deferred;
    total.pdur_single_core += st.pdur_single_core;
    total.pdur_cross_core += st.pdur_cross_core;
    total.vote_batches_sent += st.vote_batches_sent;
    total.votes_batched += st.votes_batched;
    total.votes_piggybacked += st.votes_piggybacked;
    total.stale_votes_dropped += st.stale_votes_dropped;
    total.bypassed_locals += st.bypassed_locals;
    total.parked_locals += st.parked_locals;
    total.speculated_globals += st.speculated_globals;
    total.spec_commits += st.spec_commits;
    total.spec_aborts += st.spec_aborts;
  }
  return total;
}

}  // namespace sdur
