// SDUR client library: Algorithm 1 of the paper.
//
// A client executes a transaction optimistically: reads go to a server of
// the partition holding the key (the first read fixes the partition's
// snapshot; later reads at that partition carry it, so the client sees a
// consistent partition view), writes are buffered locally, and commit
// ships the whole transaction to a preferred server near the client, which
// runs the termination protocol.
//
// Read-only transactions (Section III-A) first obtain a globally
// consistent snapshot vector (built asynchronously by servers via gossip)
// and then read at that snapshot on every partition; they commit without
// certification and never abort.
//
// The API is continuation-based because the client is an actor in the
// discrete-event simulation: operations complete via callbacks.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "sdur/messages.h"
#include "sdur/partitioning.h"
#include "sim/process.h"
#include "trace/trace.h"

namespace sdur {

struct ClientConfig {
  PartitioningPtr partitioning;
  /// Per partition: the server this client sends reads to (nearest replica).
  std::vector<sim::ProcessId> read_server;
  /// Per partition: the preferred server commit requests go to when that
  /// partition is the transaction's primary.
  std::vector<sim::ProcessId> commit_server;
  /// Server answering global-snapshot requests (nearest server overall).
  sim::ProcessId snapshot_server = 0;
  /// Safety timeout for commit outcomes (a crashed contact would otherwise
  /// block the client forever). Expired commits report Outcome::kUnknown.
  sim::Time commit_timeout = sim::sec(120);

  /// Commit requests are re-sent at this period until the outcome arrives
  /// (the server remembers outcomes, so retries are idempotent). Covers
  /// lost request or outcome messages.
  sim::Time commit_retry_interval = sim::sec(5);

  /// Read and snapshot requests are re-sent at this period until answered
  /// (both are idempotent).
  sim::Time read_retry_interval = sim::sec(2);
};

class Client : public sim::Process {
 public:
  using ReadCallback = std::function<void(bool found, const std::string& value)>;
  using MultiReadCallback = std::function<void(std::vector<std::optional<std::string>>)>;
  using CommitCallback = std::function<void(Outcome)>;
  using ReadyCallback = std::function<void()>;

  Client(sim::Network& net, sim::ProcessId pid, sim::Location loc, ClientConfig cfg);

  /// Starts a fresh update transaction (Algorithm 1, begin).
  void begin();

  /// Starts a read-only transaction against a globally consistent
  /// snapshot; `ready` fires once the snapshot vector has been fetched.
  void begin_read_only(ReadyCallback ready);

  /// Reads a key (Algorithm 1, read): buffered writes win; otherwise the
  /// request goes to the key's partition at the transaction's snapshot.
  void read(Key k, ReadCallback cb);

  /// Issues all reads in parallel and fires once every response arrived.
  void read_many(const std::vector<Key>& keys, MultiReadCallback cb);

  /// Buffers a write (Algorithm 1, write).
  void write(Key k, std::string v);

  /// Requests commit (Algorithm 1, commit). Read-only transactions commit
  /// immediately and never abort.
  void commit(CommitCallback cb);

  /// Id of the in-flight transaction.
  TxId current_txid() const { return tx_.id; }
  bool read_only() const { return read_only_; }

  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t commits_requested = 0;
    std::uint64_t commit_retries = 0;
    std::uint64_t timeouts = 0;
  };
  const Stats& stats() const { return stats_; }

 protected:
  void on_message(const sim::Message& m, sim::ProcessId from) override;

 private:
  sim::ProcessId read_target(PartitionId p) const;
  void schedule_commit_retry(sim::ProcessId contact, TxId txid, sim::Time delay);

  ClientConfig cfg_;
  Transaction tx_;
  bool read_only_ = false;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_reqid_ = 1;

  struct PendingRead {
    ReadCallback cb;
    sim::ProcessId target;
    Key key;
    Version snapshot;
  };
  std::unordered_map<std::uint64_t, PendingRead> pending_reads_;
  std::unordered_map<std::uint64_t, ReadyCallback> pending_snapshots_;
  void schedule_read_retry(std::uint64_t reqid);
  void schedule_snapshot_retry(std::uint64_t reqid);
  CommitCallback pending_commit_;
  TxId pending_commit_txid_ = 0;

  std::uint32_t trace_track_ = trace::kNoTrack;
  Stats stats_;
};

}  // namespace sdur
