#include "sdur/technique_config.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sdur {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

/// `200us` / `40ms` / `2s` -> microseconds. Returns false on a malformed
/// number or missing suffix.
bool parse_time(std::string_view v, sim::Time* out) {
  sim::Time scale = 0;
  if (v.size() > 2 && v.substr(v.size() - 2) == "us") {
    scale = 1;
    v.remove_suffix(2);
  } else if (v.size() > 2 && v.substr(v.size() - 2) == "ms") {
    scale = 1000;
    v.remove_suffix(2);
  } else if (v.size() > 1 && v.back() == 's') {
    scale = 1'000'000;
    v.remove_suffix(1);
  } else {
    return false;
  }
  char buf[32];
  if (v.empty() || v.size() >= sizeof buf) return false;
  std::memcpy(buf, v.data(), v.size());
  buf[v.size()] = '\0';
  char* end = nullptr;
  long long n = std::strtoll(buf, &end, 10);
  if (end != buf + v.size() || n < 0) return false;
  *out = static_cast<sim::Time>(n) * scale;
  return true;
}

/// Canonical duration text: the largest exact unit.
std::string format_time(sim::Time t) {
  char buf[32];
  if (t % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%llds", static_cast<long long>(t / 1'000'000));
  } else if (t % 1000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldms", static_cast<long long>(t / 1000));
  } else {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(t));
  }
  return buf;
}

bool parse_uint(std::string_view v, unsigned long long* out) {
  char buf[32];
  if (v.empty() || v.size() >= sizeof buf) return false;
  char* end = nullptr;
  std::memcpy(buf, v.data(), v.size());
  buf[v.size()] = '\0';
  unsigned long long n = std::strtoull(buf, &end, 10);
  if (end != buf + v.size()) return false;
  *out = n;
  return true;
}

bool parse_double(std::string_view v, double* out) {
  char buf[64];
  if (v.empty() || v.size() >= sizeof buf) return false;
  char* end = nullptr;
  std::memcpy(buf, v.data(), v.size());
  buf[v.size()] = '\0';
  double d = std::strtod(buf, &end);
  if (end != buf + v.size()) return false;
  *out = d;
  return true;
}

bool fail(std::string* error, std::string msg) {
  if (error) *error = std::move(msg);
  return false;
}

}  // namespace

std::optional<TechniqueConfig> TechniqueConfig::preset(std::string_view name) {
  TechniqueConfig t;
  if (name == "baseline") return t;
  if (name == "geo") {
    // The paper's Section IV geo techniques: reordering + delaying.
    t.reorder_threshold = 24;
    t.delaying_enabled = true;
    return t;
  }
  if (name == "all-on") {
    t.reorder_threshold = 24;
    t.delaying_enabled = true;
    t.bloom_readsets = true;
    t.vote_batching = true;
    t.ooo_bypass = true;
    t.speculation = true;
    return t;
  }
  return std::nullopt;
}

const std::vector<std::string_view>& TechniqueConfig::preset_names() {
  static const std::vector<std::string_view> kNames = {"baseline", "geo", "all-on"};
  return kNames;
}

std::string TechniqueConfig::validate() const {
  if (fixed_delay < 0) return "fixed_delay must be >= 0";
  if (fixed_delay != 0 && !delaying_enabled) return "fixed_delay requires delaying_enabled";
  if (bloom_readsets && !(bloom_fp_rate > 0.0 && bloom_fp_rate < 1.0))
    return "bloom_fp_rate must be in (0, 1)";
  if (vote_batch_interval < 0) return "vote_batch_interval must be >= 0";
  if (vote_batching && vote_batch_max == 0) return "vote_batch_max must be >= 1";
  if (!vote_piggyback && !vote_batching) return "no-piggyback requires vote-batch";
  return "";
}

std::string format_techniques(const TechniqueConfig& t) {
  const TechniqueConfig defaults;
  std::string out;
  auto emit = [&out](const std::string& token) {
    if (!out.empty()) out += ',';
    out += token;
  };
  if (t.reorder_threshold != 0) emit("reorder=" + std::to_string(t.reorder_threshold));
  if (t.delaying_enabled) {
    emit(t.fixed_delay != 0 ? "delaying=" + format_time(t.fixed_delay)
                            : std::string("delaying"));
  }
  if (t.bloom_readsets) {
    if (t.bloom_fp_rate != defaults.bloom_fp_rate) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "bloom=%g", t.bloom_fp_rate);
      emit(buf);
    } else {
      emit("bloom");
    }
  }
  if (t.vote_batching) {
    emit(t.vote_batch_interval != defaults.vote_batch_interval
             ? "vote-batch=" + format_time(t.vote_batch_interval)
             : std::string("vote-batch"));
    if (t.vote_batch_max != defaults.vote_batch_max)
      emit("vote-batch-max=" + std::to_string(t.vote_batch_max));
    if (!t.vote_piggyback) emit("no-piggyback");
  }
  if (t.ooo_bypass) emit("ooo-bypass");
  if (t.speculation) emit("speculation");
  if (out.empty()) out = "baseline";
  return out;
}

bool parse_techniques(std::string_view s, TechniqueConfig& out, std::string* error) {
  TechniqueConfig t;
  bool first = true;
  std::string_view rest = s;
  while (true) {
    std::size_t comma = rest.find(',');
    std::string_view token = trim(rest.substr(0, comma));
    std::string_view key = token;
    std::string_view value;
    std::size_t eq = token.find('=');
    if (eq != std::string_view::npos) {
      key = token.substr(0, eq);
      value = token.substr(eq + 1);
    }
    bool has_value = eq != std::string_view::npos;
    if (token.empty() && !(first && comma == std::string_view::npos)) {
      return fail(error, "empty technique token");
    } else if (token.empty()) {
      // Whole-string empty == baseline.
    } else if (auto p = TechniqueConfig::preset(token)) {
      if (!first) return fail(error, "preset '" + std::string(token) + "' must be the first token");
      t = *p;
    } else if (key == "reorder") {
      unsigned long long n = 0;
      if (!has_value || !parse_uint(value, &n) || n > UINT32_MAX)
        return fail(error, "reorder needs a threshold, e.g. reorder=24");
      t.reorder_threshold = static_cast<std::uint32_t>(n);
    } else if (key == "delaying") {
      t.delaying_enabled = true;
      if (has_value && !parse_time(value, &t.fixed_delay))
        return fail(error, "bad duration in '" + std::string(token) + "' (use us/ms/s suffix)");
    } else if (key == "bloom") {
      t.bloom_readsets = true;
      if (has_value && !parse_double(value, &t.bloom_fp_rate))
        return fail(error, "bad rate in '" + std::string(token) + "'");
    } else if (key == "vote-batch") {
      t.vote_batching = true;
      if (has_value && !parse_time(value, &t.vote_batch_interval))
        return fail(error, "bad duration in '" + std::string(token) + "' (use us/ms/s suffix)");
    } else if (key == "vote-batch-max") {
      unsigned long long n = 0;
      if (!has_value || !parse_uint(value, &n))
        return fail(error, "vote-batch-max needs a count, e.g. vote-batch-max=64");
      t.vote_batch_max = static_cast<std::size_t>(n);
    } else if (token == "no-piggyback") {
      t.vote_piggyback = false;
    } else if (token == "ooo-bypass") {
      t.ooo_bypass = true;
    } else if (token == "speculation") {
      t.speculation = true;
    } else {
      return fail(error, "unknown technique token '" + std::string(token) + "'");
    }
    first = false;
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  out = t;
  return true;
}

}  // namespace sdur
