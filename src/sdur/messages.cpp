#include "sdur/messages.h"

namespace sdur {

using sim::Message;
using util::Reader;
using util::Writer;

namespace {

/// Shared (tx_id, vote)-list codec of VoteBatchMsg and the piggyback
/// envelope: varint count, then one (u64 id, u8 vote) pair per vote.
void put_votes(Writer& w, const std::vector<VoteBatchEntry>& votes) {
  w.varint(votes.size());
  for (const VoteBatchEntry& e : votes) {
    w.u64(e.id);
    w.u8(static_cast<std::uint8_t>(e.vote));
  }
}

std::vector<VoteBatchEntry> get_votes(Reader& r) {
  std::vector<VoteBatchEntry> out;
  const std::uint64_t n = r.varint();
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    VoteBatchEntry e;
    e.id = r.u64();
    e.vote = static_cast<Outcome>(r.u8());
    out.push_back(e);
  }
  return out;
}

}  // namespace

Message CommitReqMsg::to_message() const {
  Writer w;
  tx.encode(w);
  return {msgtype::kCommitReq, std::move(w)};
}

CommitReqMsg CommitReqMsg::decode(Reader& r) { return CommitReqMsg{Transaction::decode(r)}; }

Message OutcomeMsg::to_message() const {
  Writer w;
  w.u64(id);
  w.u8(static_cast<std::uint8_t>(outcome));
  return {msgtype::kOutcome, std::move(w)};
}

OutcomeMsg OutcomeMsg::decode(Reader& r) {
  OutcomeMsg m;
  m.id = r.u64();
  m.outcome = static_cast<Outcome>(r.u8());
  return m;
}

Message ReadReqMsg::to_message() const {
  Writer w;
  w.u64(reqid);
  w.u64(key);
  w.i64(snapshot);
  return {msgtype::kReadReq, std::move(w)};
}

ReadReqMsg ReadReqMsg::decode(Reader& r) {
  ReadReqMsg m;
  m.reqid = r.u64();
  m.key = r.u64();
  m.snapshot = r.i64();
  return m;
}

Message ReadRespMsg::to_message() const {
  Writer w;
  w.u64(reqid);
  w.u64(key);
  w.u8(found ? 1 : 0);
  w.bytes(value);
  w.i64(snapshot);
  return {msgtype::kReadResp, std::move(w)};
}

ReadRespMsg ReadRespMsg::decode(Reader& r) {
  ReadRespMsg m;
  m.reqid = r.u64();
  m.key = r.u64();
  m.found = r.u8() != 0;
  m.value = r.bytes();
  m.snapshot = r.i64();
  return m;
}

Message ReadRoutedMsg::to_message() const {
  Writer w;
  w.u64(reqid);
  w.u32(client);
  w.u64(key);
  w.i64(snapshot);
  return {msgtype::kReadRouted, std::move(w)};
}

ReadRoutedMsg ReadRoutedMsg::decode(Reader& r) {
  ReadRoutedMsg m;
  m.reqid = r.u64();
  m.client = r.u32();
  m.key = r.u64();
  m.snapshot = r.i64();
  return m;
}

Message VoteMsg::to_message() const {
  Writer w;
  w.u64(id);
  w.u32(partition);
  w.u8(static_cast<std::uint8_t>(vote));
  return {msgtype::kVote, std::move(w)};
}

VoteMsg VoteMsg::decode(Reader& r) {
  VoteMsg m;
  m.id = r.u64();
  m.partition = r.u32();
  m.vote = static_cast<Outcome>(r.u8());
  return m;
}

Message VoteBatchMsg::to_message() const {
  Writer w;
  w.u32(partition);
  put_votes(w, votes);
  return {msgtype::kVoteBatch, std::move(w)};
}

VoteBatchMsg VoteBatchMsg::decode(Reader& r) {
  VoteBatchMsg m;
  m.partition = r.u32();
  m.votes = get_votes(r);
  return m;
}

Message VotePiggybackMsg::to_message() const {
  Writer w;
  w.u16(inner_type);
  w.bytes(inner_payload);
  w.u32(batch.partition);
  put_votes(w, batch.votes);
  return {msgtype::kVotePiggyback, std::move(w)};
}

VotePiggybackMsg VotePiggybackMsg::decode(Reader& r) {
  VotePiggybackMsg m;
  m.inner_type = r.u16();
  m.inner_payload = r.bytes();
  m.batch.partition = r.u32();
  m.batch.votes = get_votes(r);
  return m;
}

Message VoteRequestMsg::to_message() const {
  Writer w;
  w.u64(id);
  return {msgtype::kVoteRequest, std::move(w)};
}

VoteRequestMsg VoteRequestMsg::decode(Reader& r) {
  VoteRequestMsg m;
  m.id = r.u64();
  return m;
}

Message GossipSCMsg::to_message() const {
  Writer w;
  w.u32(partition);
  w.i64(sc);
  return {msgtype::kGossipSC, std::move(w)};
}

GossipSCMsg GossipSCMsg::decode(Reader& r) {
  GossipSCMsg m;
  m.partition = r.u32();
  m.sc = r.i64();
  return m;
}

Message SnapshotReqMsg::to_message() const {
  Writer w;
  w.u64(reqid);
  return {msgtype::kSnapshotReq, std::move(w)};
}

SnapshotReqMsg SnapshotReqMsg::decode(Reader& r) {
  SnapshotReqMsg m;
  m.reqid = r.u64();
  return m;
}

Message SnapshotRespMsg::to_message() const {
  Writer w;
  w.u64(reqid);
  w.varint(snapshot.size());
  for (Version v : snapshot) w.i64(v);
  return {msgtype::kSnapshotResp, std::move(w)};
}

SnapshotRespMsg SnapshotRespMsg::decode(Reader& r) {
  SnapshotRespMsg m;
  m.reqid = r.u64();
  const std::uint64_t n = r.varint();
  m.snapshot.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) m.snapshot.push_back(r.i64());
  return m;
}

}  // namespace sdur
