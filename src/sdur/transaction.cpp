#include "sdur/transaction.h"

#include <algorithm>

namespace sdur {

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kCommit:
      return "commit";
    case Outcome::kAbort:
      return "abort";
    default:
      return "unknown";
  }
}

Version Transaction::snapshot_of(PartitionId p) const {
  for (const auto& [part, v] : snapshots) {
    if (part == p) return v;
  }
  return kNoSnapshot;
}

void Transaction::set_snapshot(PartitionId p, Version v) {
  for (auto& [part, existing] : snapshots) {
    if (part == p) {
      existing = v;
      return;
    }
  }
  snapshots.emplace_back(p, v);
}

void Transaction::encode(util::Writer& w) const {
  w.u64(id);
  w.u32(client);
  w.varint(snapshots.size());
  for (const auto& [p, v] : snapshots) {
    w.u32(p);
    w.i64(v);
  }
  w.varint(readset.size());
  for (Key k : readset) w.u64(k);
  w.varint(writeset.size());
  for (const auto& op : writeset) {
    w.u64(op.key);
    w.bytes(op.value);
  }
}

Transaction Transaction::decode(util::Reader& r) {
  Transaction t;
  t.id = r.u64();
  t.client = r.u32();
  const std::uint64_t ns = r.varint();
  t.snapshots.reserve(ns);
  for (std::uint64_t i = 0; i < ns; ++i) {
    const PartitionId p = r.u32();
    const Version v = r.i64();
    t.snapshots.emplace_back(p, v);
  }
  const std::uint64_t nr = r.varint();
  t.readset.reserve(nr);
  for (std::uint64_t i = 0; i < nr; ++i) t.readset.push_back(r.u64());
  const std::uint64_t nw = r.varint();
  t.writeset.reserve(nw);
  for (std::uint64_t i = 0; i < nw; ++i) {
    WriteOp op;
    op.key = r.u64();
    op.value = r.bytes();
    t.writeset.push_back(std::move(op));
  }
  return t;
}

util::Bytes PartTx::encode() const {
  util::Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  if (kind == Kind::kTick) return std::move(w).take();
  if (kind == Kind::kSetThreshold) {
    w.u32(threshold);
    return std::move(w).take();
  }
  w.u64(id);
  if (kind == Kind::kAbortRequest) {
    w.varint(involved.size());
    for (PartitionId p : involved) w.u32(p);
    return std::move(w).take();
  }
  w.u32(client);
  w.u32(contact);
  w.varint(involved.size());
  for (PartitionId p : involved) w.u32(p);
  w.i64(snapshot);
  readset.encode(w);
  write_keys.encode(w);
  w.varint(writes.size());
  for (const auto& op : writes) {
    w.u64(op.key);
    w.bytes(op.value);
  }
  return std::move(w).take();
}

PartTx PartTx::decode(const util::Bytes& value) {
  util::Reader r(value);
  PartTx t;
  t.kind = static_cast<Kind>(r.u8());
  if (t.kind == Kind::kTick) return t;
  if (t.kind == Kind::kSetThreshold) {
    t.threshold = r.u32();
    return t;
  }
  t.id = r.u64();
  if (t.kind == Kind::kAbortRequest) {
    const std::uint64_t np = r.varint();
    t.involved.reserve(np);
    for (std::uint64_t i = 0; i < np; ++i) t.involved.push_back(r.u32());
    return t;
  }
  t.client = r.u32();
  t.contact = r.u32();
  const std::uint64_t np = r.varint();
  t.involved.reserve(np);
  for (std::uint64_t i = 0; i < np; ++i) t.involved.push_back(r.u32());
  t.snapshot = r.i64();
  t.readset = util::KeySet::decode(r);
  t.write_keys = util::KeySet::decode(r);
  const std::uint64_t nw = r.varint();
  t.writes.reserve(nw);
  for (std::uint64_t i = 0; i < nw; ++i) {
    WriteOp op;
    op.key = r.u64();
    op.value = r.bytes();
    t.writes.push_back(std::move(op));
  }
  return t;
}

PartTx PartTx::make_tick() {
  PartTx t;
  t.kind = Kind::kTick;
  return t;
}

PartTx PartTx::make_set_threshold(std::uint32_t k) {
  PartTx t;
  t.kind = Kind::kSetThreshold;
  t.threshold = k;
  return t;
}

PartTx PartTx::make_abort_request(TxId id, std::vector<PartitionId> involved) {
  PartTx t;
  t.kind = Kind::kAbortRequest;
  t.id = id;
  t.involved = std::move(involved);
  return t;
}

}  // namespace sdur
