#include "sdur/client.h"

#include <algorithm>
#include <memory>

namespace sdur {

Client::Client(sim::Network& net, sim::ProcessId pid, sim::Location loc, ClientConfig cfg)
    : sim::Process(net, pid, "client-" + std::to_string(pid), loc), cfg_(std::move(cfg)) {
  // Clients do negligible local work per message.
  set_message_service_time(sim::usec(1));
  trace_track_ = SDUR_TRACE_REGISTER(self(), name(), -1);
}

void Client::begin() {
  tx_ = Transaction{};
  tx_.id = (static_cast<TxId>(self()) << 32) | next_seq_++;
  tx_.client = self();
  read_only_ = false;
  SDUR_TRACE_MARK(trace_track_, trace::Point::kTxBegin, tx_.id, now(), 0);
}

void Client::begin_read_only(ReadyCallback ready) {
  begin();
  read_only_ = true;
  const std::uint64_t reqid = next_reqid_++;
  pending_snapshots_[reqid] = std::move(ready);
  send(cfg_.snapshot_server, SnapshotReqMsg{reqid}.to_message());
  schedule_snapshot_retry(reqid);
}

void Client::schedule_snapshot_retry(std::uint64_t reqid) {
  set_timer(cfg_.read_retry_interval, [this, reqid] {
    if (!pending_snapshots_.contains(reqid)) return;
    send(cfg_.snapshot_server, SnapshotReqMsg{reqid}.to_message());
    schedule_snapshot_retry(reqid);
  });
}

sim::ProcessId Client::read_target(PartitionId p) const { return cfg_.read_server.at(p); }

void Client::read(Key k, ReadCallback cb) {
  ++stats_.reads;
  if (!read_only_) {
    tx_.readset.push_back(k);
    // Buffered writes win (Algorithm 1, lines 7-8).
    for (auto it = tx_.writeset.rbegin(); it != tx_.writeset.rend(); ++it) {
      if (it->key == k) {
        cb(true, it->value);
        return;
      }
    }
  }
  const PartitionId p = cfg_.partitioning->partition_of(k);
  const std::uint64_t reqid = next_reqid_++;
  const sim::ProcessId target = read_target(p);
  const Version snapshot = tx_.snapshot_of(p);
  pending_reads_[reqid] = PendingRead{std::move(cb), target, k, snapshot};
  send(target, ReadReqMsg{reqid, k, snapshot}.to_message());
  schedule_read_retry(reqid);
}

void Client::schedule_read_retry(std::uint64_t reqid) {
  // Reads are idempotent; retries cover lost requests or responses. Note
  // the retried request carries the original snapshot, so the answer is
  // the same value either way.
  set_timer(cfg_.read_retry_interval, [this, reqid] {
    auto it = pending_reads_.find(reqid);
    if (it == pending_reads_.end()) return;
    send(it->second.target, ReadReqMsg{reqid, it->second.key, it->second.snapshot}.to_message());
    schedule_read_retry(reqid);
  });
}

void Client::read_many(const std::vector<Key>& keys, MultiReadCallback cb) {
  if (keys.empty()) {
    cb({});
    return;
  }
  struct Gather {
    std::vector<std::optional<std::string>> results;
    std::size_t remaining;
    MultiReadCallback cb;
  };
  auto gather = std::make_shared<Gather>();
  gather->results.resize(keys.size());
  gather->remaining = keys.size();
  gather->cb = std::move(cb);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    read(keys[i], [gather, i](bool found, const std::string& value) {
      if (found) gather->results[i] = value;
      if (--gather->remaining == 0) gather->cb(std::move(gather->results));
    });
  }
}

void Client::write(Key k, std::string v) {
  // No blind writes (Section II-B): the caller reads k first, which the
  // workloads honor; the readset therefore already contains k.
  for (auto& op : tx_.writeset) {
    if (op.key == k) {
      op.value = std::move(v);
      return;
    }
  }
  tx_.writeset.push_back(WriteOp{k, std::move(v)});
}

void Client::commit(CommitCallback cb) {
  ++stats_.commits_requested;
  if (read_only_ || (tx_.writeset.empty() && tx_.snapshots.size() <= 1)) {
    // Read-only transactions against a consistent snapshot commit without
    // certification (Section III-A). A transaction that wrote nothing and
    // read from at most one partition saw exactly such a snapshot (reads
    // within a single partition are consistent by construction); a
    // multi-partition read-only transaction begun with begin() instead of
    // begin_read_only() must be certified to validate snapshot
    // consistency, so it falls through to the termination protocol.
    cb(Outcome::kCommit);
    return;
  }
  // Primary partition: the first partition the transaction touched.
  PartitionId primary = 0;
  if (!tx_.snapshots.empty()) {
    primary = tx_.snapshots.front().first;
  } else if (!tx_.writeset.empty()) {
    primary = cfg_.partitioning->partition_of(tx_.writeset.front().key);
  }
  pending_commit_ = std::move(cb);
  pending_commit_txid_ = tx_.id;
  const sim::ProcessId contact = cfg_.commit_server.at(primary);
  SDUR_TRACE_MARK(trace_track_, trace::Point::kTxSubmit, tx_.id, now(), 0);
  send(contact, CommitReqMsg{tx_}.to_message());

  const TxId txid = tx_.id;
  // Retry loop: requests and outcomes can be lost; the contact remembers
  // outcomes, so retries are idempotent.
  schedule_commit_retry(contact, txid, cfg_.commit_retry_interval);
  set_timer(cfg_.commit_timeout, [this, txid] {
    if (pending_commit_ && pending_commit_txid_ == txid) {
      ++stats_.timeouts;
      auto cb2 = std::move(pending_commit_);
      pending_commit_ = nullptr;
      cb2(Outcome::kUnknown);
    }
  });
}

void Client::schedule_commit_retry(sim::ProcessId contact, TxId txid, sim::Time delay) {
  set_timer(delay, [this, contact, txid, delay] {
    if (!pending_commit_ || pending_commit_txid_ != txid) return;
    ++stats_.commit_retries;
    send(contact, CommitReqMsg{tx_}.to_message());
    schedule_commit_retry(contact, txid, delay);
  });
}

void Client::on_message(const sim::Message& m, sim::ProcessId from) {
  (void)from;
  util::Reader r(m.payload);
  switch (m.type) {
    case msgtype::kReadResp: {
      const auto resp = ReadRespMsg::decode(r);
      auto it = pending_reads_.find(resp.reqid);
      if (it == pending_reads_.end()) return;
      auto cb = std::move(it->second.cb);
      pending_reads_.erase(it);
      if (!read_only_) {
        // First read at a partition fixes its snapshot (Algorithm 1, line 13).
        const PartitionId p = cfg_.partitioning->partition_of(resp.key);
        if (tx_.snapshot_of(p) == kNoSnapshot) tx_.set_snapshot(p, resp.snapshot);
      }
      cb(resp.found, resp.value);
      break;
    }
    case msgtype::kSnapshotResp: {
      const auto resp = SnapshotRespMsg::decode(r);
      auto it = pending_snapshots_.find(resp.reqid);
      if (it == pending_snapshots_.end()) return;
      auto ready = std::move(it->second);
      pending_snapshots_.erase(it);
      for (PartitionId p = 0; p < resp.snapshot.size(); ++p) {
        tx_.set_snapshot(p, resp.snapshot[p]);
      }
      ready();
      break;
    }
    case msgtype::kOutcome: {
      const auto out = OutcomeMsg::decode(r);
      if (!pending_commit_ || out.id != pending_commit_txid_) return;
      SDUR_TRACE_MARK(trace_track_, trace::Point::kTxOutcome, out.id, now(),
                      static_cast<std::uint64_t>(out.outcome));
      auto cb = std::move(pending_commit_);
      pending_commit_ = nullptr;
      cb(out.outcome);
      break;
    }
    default:
      break;
  }
}

}  // namespace sdur
