// Unified technique-knob surface (DESIGN.md "Technique configuration").
//
// Every optional protocol technique — reordering, delaying, bloom
// readsets, vote batching, the out-of-order local commit, speculative
// global commit — lives here, in one struct, with one canonical string
// grammar. bench/common.h, tools/sdur_sim and the tests all build their
// configs through this type; ServerConfig embeds it and re-exports the
// historical field names as references so call sites keep compiling
// (enforced by the `config-single-source` analyzer rule: no technique
// bool may be declared outside TechniqueConfig).
//
// String grammar (comma-separated tokens; canonical form emits only
// non-default knobs, in the fixed order below, or the literal
// `baseline` when everything is default):
//
//   baseline | geo | all-on        preset (first token only)
//   reorder=<N>                    reorder threshold R
//   delaying[=<T>]                 delaying; optional fixed delay
//   bloom[=<rate>]                 bloom readsets; optional fp rate
//   vote-batch[=<T>]               vote batching; optional flush interval
//   vote-batch-max=<N>             batch-size flush trigger
//   no-piggyback                   disable vote piggybacking
//   ooo-bypass                     out-of-order local commit
//   speculation                    speculative global commit
//
// Durations <T> take a us/ms/s suffix (`200us`, `40ms`). `format ->
// parse -> format` is a fixpoint for every valid config (pinned by
// tests/technique_config_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace sdur {

struct TechniqueConfig {
  // --- Reordering (Section IV-C) -----------------------------------------
  /// Reorder threshold R: a pending global transaction waits for R further
  /// deliveries, during which local transactions may be reordered before
  /// it. 0 disables reordering (baseline SDUR).
  std::uint32_t reorder_threshold = 0;

  // --- Delaying (Section IV-D) -------------------------------------------
  /// Delay the local broadcast of a global transaction by the estimated
  /// one-way delay to the farthest involved partition.
  bool delaying_enabled = false;
  /// Fixed delay for the delaying technique; 0 means "use the estimated
  /// inter-partition delay". The paper's Figure 3 sweeps 20/40/60 ms.
  sim::Time fixed_delay = 0;

  // --- Bloom readsets (Section V) ----------------------------------------
  /// Represent shipped readsets as bloom filters. Cuts bandwidth at the
  /// price of rare false-positive aborts.
  bool bloom_readsets = false;
  /// Per-probe false-positive rate; the end-to-end spurious-abort rate is
  /// roughly scan-depth x keys x this rate — keep it small.
  double bloom_fp_rate = 1e-5;

  // --- Vote batching (DESIGN.md "Vote exchange & batching") ---------------
  /// Coalesce outgoing votes per destination partition into VoteBatchMsg
  /// flushes instead of one VoteMsg unicast per transaction per remote
  /// replica. Default off = bit-identical legacy vote exchange
  /// (golden-digest pinned in tests/vote_batch_test.cpp).
  bool vote_batching = false;
  /// Max time a queued vote waits before the batcher force-flushes.
  sim::Time vote_batch_interval = sim::usec(200);
  /// Queue length per destination that triggers an immediate flush.
  std::size_t vote_batch_max = 64;
  /// Ride pending votes on messages already going to the destination
  /// partition's servers. Only meaningful with vote_batching on.
  bool vote_piggyback = true;

  // --- Out-of-order local commit (DESIGN.md section of the same name) -----
  /// Let a delivered local transaction certify and commit immediately,
  /// bypassing earlier-delivered pending globals it does not conflict
  /// with. Default off = bit-identical legacy completion order
  /// (golden-digest pinned in tests/convoy_bypass_test.cpp).
  bool ooo_bypass = false;

  // --- Speculative global commit (DESIGN.md section of the same name) -----
  /// Apply a global's writes as speculative versions as soon as local
  /// certification passes, instead of parking the transaction in the
  /// pending window until the remote votes arrive; finalize (promote +
  /// reply) or roll back (mid-chain undo) when the votes land. No
  /// cascade exists: reads only ever serve the stable prefix, which
  /// stalls below unresolved speculative versions, so no transaction
  /// can observe speculative state. Default off = bit-identical legacy
  /// behaviour (golden-digest pinned in tests/speculation_test.cpp).
  bool speculation = false;

  bool operator==(const TechniqueConfig&) const = default;

  /// Named preset, or nullopt for an unknown name. Presets: `baseline`
  /// (everything default), `geo` (reordering + delaying, the paper's
  /// Section IV geo techniques), `all-on` (every technique enabled).
  static std::optional<TechniqueConfig> preset(std::string_view name);

  /// The preset names accepted by preset() / parse_techniques().
  static const std::vector<std::string_view>& preset_names();

  /// Empty string when the combination makes sense; otherwise an exact
  /// diagnostic (message text pinned by tests/technique_config_test.cpp).
  std::string validate() const;
};

/// Canonical string form: non-default knobs in grammar order, or
/// `baseline`. For every config that passes validate(),
/// `format(parse(format(c))) == format(c)`.
std::string format_techniques(const TechniqueConfig& t);

/// Parses the grammar above into `out` (starting from the given preset or
/// `baseline`). Returns false and fills `*error` (if non-null) on an
/// unknown token or malformed value; `out` is untouched on failure.
bool parse_techniques(std::string_view s, TechniqueConfig& out,
                      std::string* error = nullptr);

}  // namespace sdur
