#include "sdur/certifier.h"

#include <algorithm>

#include "audit/audit.h"
#include "trace/trace.h"

namespace sdur {

const Certifier::Slot* Certifier::slot(Version v) const {
  if (v < base_ || v > cc_) return nullptr;
  return &slots_[static_cast<std::size_t>(v - base_)];
}

bool Certifier::scan_conflict(const PartTx& t, Version st) const {
  // Certify against every assigned version in (st, cc] — committed,
  // pending AND vote-aborted alike. Slot status must not influence the
  // decision: at the moment a transaction is delivered, different replicas
  // may have resolved different prefixes (votes arrive at different
  // times), so any status-dependence would break determinism. Treating a
  // later-aborted global as a conflict source is conservative (an
  // unnecessary abort, retried with a fresh snapshot), never wrong.
  const Version from = std::max(st + 1, base_);
  for (Version v = from; v <= cc_; ++v) {
    const Slot& s = slots_[static_cast<std::size_t>(v - base_)];
    // ctest(t, t') (Algorithm 2, lines 46-47): a local transaction must
    // not have read anything a later-serialized transaction wrote; a
    // global transaction must additionally not write anything a
    // later-serialized transaction read, so that cross-partition delivery
    // orders cannot matter (Section III-B).
    if (t.readset.intersects(s.write_keys)) return true;
    if (t.is_global() && t.write_keys.intersects(s.readset)) return true;
  }
  return false;
}

bool Certifier::indexed_conflict(const PartTx& t, Version st) const {
  if (st >= cc_) return false;  // nothing serialized after the snapshot
  // Component A: rs(t) vs the write keys of every slot in (st, cc]. Write
  // keys are always exact, so the last-writer index covers every slot; a
  // bloom probe readset cannot drive key probes and falls back to the
  // scan for this component.
  if (t.readset.is_bloom() && !t.readset.empty()) {
    const Version from = std::max(st + 1, base_);
    for (Version v = from; v <= cc_; ++v) {
      if (t.readset.intersects(slots_[static_cast<std::size_t>(v - base_)].write_keys)) {
        return true;
      }
    }
  } else {
    if (index_.reads_conflict(t.readset, st)) return true;
    const auto& bws = index_.bloom_write_versions();
    for (auto it = std::upper_bound(bws.begin(), bws.end(), st); it != bws.end(); ++it) {
      if (t.readset.intersects(slots_[static_cast<std::size_t>(*it - base_)].write_keys)) {
        return true;
      }
    }
  }
  if (!t.is_global()) return false;
  // Component B: ws(t) vs the readsets of slots in (st, cc] (Section
  // III-B). Slots carrying bloom readsets cannot be key-indexed — scan
  // only that suffix, preserving ablation_bloom semantics.
  if (t.write_keys.is_bloom() && !t.write_keys.empty()) {
    const Version from = std::max(st + 1, base_);
    for (Version v = from; v <= cc_; ++v) {
      if (t.write_keys.intersects(slots_[static_cast<std::size_t>(v - base_)].readset)) {
        return true;
      }
    }
    return false;
  }
  if (index_.writes_conflict(t.write_keys, st)) return true;
  const auto& brs = index_.bloom_read_versions();
  for (auto it = std::upper_bound(brs.begin(), brs.end(), st); it != brs.end(); ++it) {
    if (t.write_keys.intersects(slots_[static_cast<std::size_t>(*it - base_)].readset)) {
      return true;
    }
  }
  return false;
}

bool Certifier::has_conflict(const PartTx& t, Version st) const {
  const bool indexed = indexed_conflict(t, st);
  // The index must reproduce the scan verdict bit for bit — same boolean
  // on every delivery, or replicas running different strategies would
  // diverge. Audit builds re-run the legacy scan in place.
  SDUR_AUDIT_CHECK("certifier", "index-scan-equivalence", indexed == scan_conflict(t, st),
                   "indexed certification verdict " << (indexed ? "conflict" : "clear")
                                                    << " for tx " << t.id << " (st=" << st
                                                    << ", window [" << base_ << ", " << cc_
                                                    << "]) diverges from the window scan");
  return indexed;
}

Certifier::Result Certifier::process(const PartTx& t, std::uint64_t rt, std::uint64_t dc) {
  Result result;

  // Snapshot bottom (a transaction that wrote without reading at this
  // partition) serializes after everything certified so far; cc_ is
  // deterministic at a given delivery, unlike the stable prefix.
  const Version st = t.snapshot < 0 ? cc_ : t.snapshot;
  if (st + 1 < base_) {
    result.stale_snapshot = true;
    return result;  // abort: snapshot predates the certification window
  }
  if (parallel()) {
    result.cores = window_->partitioner().home_cores(t.readset, t.write_keys);
    if (!test_skip_conflict_check_ &&
        window_->conflicts(t.readset, t.write_keys, t.is_global(), result.cores, st)) {
      // The per-core decomposition must reach the exact verdict of the
      // serial scan — P-DUR's correctness argument (a key is homed on
      // exactly one core, so the union of per-core intersections equals
      // the full intersection).
      SDUR_AUDIT_CHECK("pdur", "parallel-serial-equivalence", has_conflict(t, st),
                       "parallel certifier aborts tx " << t.id << " (st=" << st
                                                       << ") but serial scan finds no conflict");
      return result;  // abort
    }
    if (!test_skip_conflict_check_) {
      SDUR_AUDIT_CHECK("pdur", "parallel-serial-equivalence", !has_conflict(t, st),
                       "parallel certifier commits tx " << t.id << " (st=" << st
                                                        << ") but serial scan finds a conflict");
    }
  } else if (!test_skip_conflict_check_) {
    // Which strategy serves this check mirrors indexed_conflict: a bloom
    // probe set (or, for globals, a bloom write-key set) forces the window
    // scan for that component; otherwise the key index answers. aux is the
    // window depth actually certified against.
    SDUR_TRACE_STMT({
      const bool scans = (t.readset.is_bloom() && !t.readset.empty()) ||
                         (t.is_global() && t.write_keys.is_bloom() && !t.write_keys.empty());
      const std::uint64_t depth = st >= cc_ ? 0 : static_cast<std::uint64_t>(cc_ - st);
      SDUR_TRACE_CONTEXT_INSTANT(scans ? trace::Point::kCertScanFallback
                                       : trace::Point::kCertIndexProbe,
                                 depth);
    });
    if (has_conflict(t, st)) return result;  // abort
  }

  std::size_t position;
  if (t.is_global()) {
    // Globals append: only locals are reordered (Section IV-E).
    position = pl_.size();
  } else {
    // Leftmost pending-list position from which every later entry is a
    // leapable global: still below its reorder threshold (rt >= dc keeps
    // the decision deterministic — past the threshold the global may have
    // completed at other replicas) and commuting with t in both directions
    // (so the already-sent votes and the version order stay valid).
    std::size_t leftmost = pl_.size();
    for (std::size_t k = pl_.size(); k-- > 0;) {
      const PendingEntry& pk = pl_[k];
      // Under the bypass gate a local must additionally be write-disjoint
      // from any global it leaps: a blind-write local leaping a global it
      // write-conflicts with would park behind an entry *behind* itself —
      // the head could never unblock. Without blind writes ws(t) is a
      // subset of rs(t) and the extra conjunct is implied; gated on the
      // config so the default-off path stays bit-identical.
      const bool leapable = pk.tx.is_global() && pk.rt >= dc &&
                            !t.write_keys.intersects(pk.tx.readset) &&
                            !t.readset.intersects(pk.tx.write_keys) &&
                            (!ooo_bypass_ || !t.write_keys.intersects(pk.tx.write_keys));
      if (!leapable) break;
      leftmost = k;
    }
    position = leftmost;
  }

  result.outcome = Outcome::kCommit;
  result.position = position;
  result.reordered = position < pl_.size();
  result.version = ++cc_;
  slots_.push_back(Slot{t.id, t.is_global(), SlotStatus::kPending, t.readset, t.write_keys});
  index_.insert(result.version, t.readset, t.write_keys);
  if (parallel()) window_->insert(result.version, t.readset, t.write_keys, result.cores);
  pl_.insert(pl_.begin() + static_cast<std::ptrdiff_t>(position),
             PendingEntry{t, rt, result.version, 0, 0, false, true});
  pending_ids_.insert(t.id);
  if (ooo_bypass_) {
    // Park gate first (the new entry must not probe its own writes), then
    // register the entry's write keys in the pending-write index.
    if (!t.is_global()) park_on_insert(position, t, result);
    pending_ws_.insert(result.version, util::KeySet(), t.write_keys);
    if (parallel()) window_->pending_insert(result.version, t.write_keys);
  }
  // The window holds exactly one slot per assigned version in [base, cc]:
  // a gap would let a conflicting transaction escape certification.
  SDUR_AUDIT_CHECK("certifier", "window-contiguous",
                   base_ + static_cast<Version>(slots_.size()) - 1 == cc_,
                   "window [" << base_ << ", " << cc_ << "] holds " << slots_.size()
                              << " slots after certifying tx " << t.id);
  return result;
}

PendingEntry Certifier::pop_head() {
  PendingEntry e = std::move(pl_.front());
  pl_.pop_front();
  pending_ids_.erase(e.tx.id);
  if (ooo_bypass_) unpark_on_removal(e);
  return e;
}

// --- Out-of-order local commit (cfg.ooo_bypass) -------------------------------

bool Certifier::pending_writes_conflict(const PartTx& t) const {
  // O(sets) existence probe with snapshot 0: versions start at 1, so "some
  // indexed pending writer newer than 0" is exactly "some pending entry
  // writes a probed key". Pending write keys are always exact, so the
  // index's bloom suffixes stay empty and no fallback scan is needed here.
  return pending_ws_.reads_conflict(t.readset, 0) ||
         pending_ws_.reads_conflict(t.write_keys, 0);
}

Version Certifier::park_bound(std::size_t position, const PartTx& t) const {
  // Exact bound over the entries ahead. A pending global counts when t
  // reads or writes a key it writes (write-version order for ws cap ws;
  // delivery-order read equivalence for rs cap ws — the latter only
  // arises for snapshot-bottom blind writes, certification aborts every
  // other case). A pending local counts when write-conflicting, and
  // contributes its own bound: it must apply first (smaller version), so
  // t can go no earlier than it does.
  Version bound = 0;
  for (std::size_t k = 0; k < position; ++k) {
    const PendingEntry& pk = pl_[k];
    if (pk.tx.is_global()) {
      if (t.readset.intersects(pk.tx.write_keys) ||
          t.write_keys.intersects(pk.tx.write_keys)) {
        bound = std::max(bound, pk.version);
      }
    } else if (t.write_keys.intersects(pk.tx.write_keys)) {
      bound = std::max(bound, pk.park_until);
    }
  }
  return bound;
}

void Certifier::park_on_insert(std::size_t position, const PartTx& t, Result& result) {
  bool hit;
  if (t.readset.is_bloom() && !t.readset.empty()) {
    // A bloom probe readset cannot drive key probes; treat it as a hit and
    // let the exact bound decide (mirrors the certification fallback).
    hit = true;
  } else if (parallel()) {
    hit = window_->pending_writes_conflict(t.readset, t.write_keys, result.cores);
    // The per-lane decomposition must reproduce the serial pending probe —
    // a key is homed on exactly one core, so the union of lane hits equals
    // the full-index hit.
    SDUR_AUDIT_CHECK("pdur", "bypass-gate-equivalence",
                     hit == pending_writes_conflict(t),
                     "per-lane pending-write probe for tx "
                         << t.id << " (" << (hit ? "hit" : "clear")
                         << ") diverges from the serial pending-write index");
  } else {
    hit = pending_writes_conflict(t);
  }
  // The trigger over-approximates the bound (it also hits on rs(t) vs
  // pending-local writes) but must cover it: a missed hit with a nonzero
  // bound would let a conflicting local bypass.
  SDUR_AUDIT_CHECK("certifier", "bypass-gate-coverage", hit || park_bound(position, t) == 0,
                   "pending-write probe missed a nonzero park bound for tx " << t.id);
  Version bound = hit ? park_bound(position, t) : 0;
  if (test_skip_park_gate_) bound = 0;
  pl_[position].park_until = bound;
  result.parked = bound > bypass_watermark_;
}

void Certifier::unpark_on_removal(const PendingEntry& e) {
  // Per-key eviction order stays ascending: the gate itself forbids a
  // newer pending writer of a key completing before an older one.
  pending_ws_.evict(e.version, util::KeySet(), e.tx.write_keys);
  if (parallel()) window_->pending_evict(e.version, e.tx.write_keys);
  if (e.tx.is_global() && e.version > bypass_watermark_) bypass_watermark_ = e.version;
}

std::size_t Certifier::next_bypassable(std::size_t from) const {
  for (std::size_t k = from; k < pl_.size(); ++k) {
    const PendingEntry& e = pl_[k];
    if (e.ready && !e.tx.is_global() && e.park_until <= bypass_watermark_) return k;
  }
  return npos;
}

PendingEntry Certifier::take_at(std::size_t pos) {
  PendingEntry e = std::move(pl_[pos]);
  pl_.erase(pl_.begin() + static_cast<std::ptrdiff_t>(pos));
  pending_ids_.erase(e.tx.id);
  if (ooo_bypass_) unpark_on_removal(e);
  return e;
}

void Certifier::park_rebuild() {
  // Checkpoints do not carry park bounds or the watermark (the format
  // predates the bypass and stays frozen); both are pure functions of the
  // restored pending list, so every replica recomputes identical state.
  // The watermark restarts at 0: completed globals left the list before
  // the checkpoint, so no restored local still waits on one.
  pending_ws_.clear();
  if (parallel()) window_->pending_clear();
  bypass_watermark_ = 0;
  // The pending-write index wants version-ascending inserts; pl_ is in
  // delivery/reorder order (leaped locals sit ahead of smaller versions).
  std::vector<std::size_t> by_version(pl_.size());
  for (std::size_t i = 0; i < pl_.size(); ++i) by_version[i] = i;
  std::sort(by_version.begin(), by_version.end(),
            [this](std::size_t a, std::size_t b) { return pl_[a].version < pl_[b].version; });
  for (std::size_t i : by_version) {
    pending_ws_.insert(pl_[i].version, util::KeySet(), pl_[i].tx.write_keys);
    if (parallel()) window_->pending_insert(pl_[i].version, pl_[i].tx.write_keys);
  }
  for (std::size_t i = 0; i < pl_.size(); ++i) {
    PendingEntry& e = pl_[i];
    e.park_until = e.tx.is_global() ? 0 : park_bound(i, e.tx);
  }
}

void Certifier::mark_ready(Version v) {
  for (PendingEntry& e : pl_) {
    if (e.version == v) {
      e.ready = true;
      return;
    }
  }
}

void Certifier::resolve(const PendingEntry& entry, bool committed) {
  resolve(entry.version, entry.tx.id, committed);
}

void Certifier::resolve(Version v, TxId owner, bool committed) {
  if (v < base_ || v > cc_) return;
  // A slot is resolved exactly once, by the transaction that owns it.
  SDUR_AUDIT_CHECK("certifier", "resolve-once",
                   slots_[static_cast<std::size_t>(v - base_)].status == SlotStatus::kPending,
                   "version " << v << " (tx " << owner << ") resolved twice");
  SDUR_AUDIT_CHECK("certifier", "resolve-owner",
                   slots_[static_cast<std::size_t>(v - base_)].txid == owner,
                   "version " << v << " owned by tx "
                              << slots_[static_cast<std::size_t>(v - base_)].txid
                              << " resolved by tx " << owner);
  slots_[static_cast<std::size_t>(v - base_)].status =
      committed ? SlotStatus::kCommitted : SlotStatus::kAborted;
  // Advance the stable prefix over contiguously resolved slots.
  SDUR_AUDIT(const Version stable_before = stable_);
  while (stable_ < cc_) {
    const Slot* s = slot(stable_ + 1);
    if (s == nullptr || s->status == SlotStatus::kPending) break;
    ++stable_;
  }
  // Reads are served at the stable version: it must never move backwards
  // (a client could observe a snapshot that then grows a hole).
  SDUR_AUDIT_CHECK("certifier", "stable-monotonic",
                   stable_ >= stable_before && stable_ <= cc_,
                   "stable prefix moved from " << stable_before << " to " << stable_
                                               << " (cc=" << cc_ << ")");
  // Evict old resolved slots beyond the window capacity.
  while (slots_.size() > window_capacity_ && base_ <= stable_) {
    const Slot& oldest = slots_.front();
    index_.evict(base_, oldest.readset, oldest.write_keys);
    slots_.pop_front();
    ++base_;
  }
  if (parallel()) window_->evict_below(base_);
}

void Certifier::encode(util::Writer& w) const {
  w.i64(base_);
  w.i64(cc_);
  w.i64(stable_);
  w.varint(slots_.size());
  for (const Slot& s : slots_) {
    w.u64(s.txid);
    w.u8(s.global ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(s.status));
    s.readset.encode(w);
    s.write_keys.encode(w);
  }
  w.varint(pl_.size());
  for (const PendingEntry& e : pl_) {
    const util::Bytes tx = e.tx.encode();
    w.bytes(tx);
    w.u64(e.rt);
    w.i64(e.version);
  }
}

void Certifier::install(util::Reader& r) {
  base_ = r.i64();
  cc_ = r.i64();
  stable_ = r.i64();
  slots_.clear();
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    Slot s;
    s.txid = r.u64();
    s.global = r.u8() != 0;
    s.status = static_cast<SlotStatus>(r.u8());
    s.readset = util::KeySet::decode(r);
    s.write_keys = util::KeySet::decode(r);
    slots_.push_back(std::move(s));
  }
  pl_.clear();
  pending_ids_.clear();
  const std::uint64_t np = r.varint();
  for (std::uint64_t i = 0; i < np; ++i) {
    const std::string tx_bytes = r.bytes();
    PendingEntry e;
    e.tx = PartTx::decode(
        util::Bytes(tx_bytes.begin(), tx_bytes.end()));
    e.rt = r.u64();
    e.version = r.i64();
    pending_ids_.insert(e.tx.id);
    pl_.push_back(std::move(e));
  }
  rebuild_window();
  if (ooo_bypass_) park_rebuild();
}

void Certifier::rebuild_window() {
  // The checkpoint carries the full keysets per slot; the key index (and,
  // in P-DUR mode, the per-core projections and home cores) are recomputed
  // — a pure function of the keysets, so every replica rebuilds identical
  // state.
  index_.clear();
  if (parallel()) window_->clear();
  for (Version v = base_; v <= cc_; ++v) {
    const Slot& s = slots_[static_cast<std::size_t>(v - base_)];
    index_.insert(v, s.readset, s.write_keys);
    if (parallel()) {
      window_->insert(v, s.readset, s.write_keys,
                      window_->partitioner().home_cores(s.readset, s.write_keys));
    }
  }
}

void Certifier::reset() {
  slots_.clear();
  base_ = 1;
  cc_ = 0;
  stable_ = 0;
  pl_.clear();
  pending_ids_.clear();
  index_.clear();
  pending_ws_.clear();
  bypass_watermark_ = 0;
  if (parallel()) window_->clear();
}

}  // namespace sdur
