// SDUR server configuration.
//
// Technique knobs (reordering, delaying, bloom readsets, vote batching,
// out-of-order commit, speculation) live in sdur::TechniqueConfig — the
// single source of technique configuration (see technique_config.h).
// ServerConfig embeds a TechniqueConfig and re-exports the historical
// field names as references, so `cfg.ooo_bypass` and
// `cfg.techniques.ooo_bypass` are the same storage.
#pragma once

#include <cstdint>
#include <vector>

#include "pdur/config.h"
#include "sdur/technique_config.h"
#include "sdur/transaction.h"
#include "sim/time.h"
#include "sim/topology.h"

namespace sdur {

/// Value members of ServerConfig. Split out so ServerConfig can add the
/// legacy reference aliases while keeping copy/move assignment trivial to
/// write (copy the base; the aliases always bind to the object's own
/// `techniques`).
struct ServerConfigData {
  PartitionId partition = 0;
  PartitionId num_partitions = 1;

  /// Optional protocol techniques and their sub-knobs.
  TechniqueConfig techniques;

  /// Estimated one-way delay from this partition to every partition
  /// (indexed by partition id; entry for own partition = 0). Used by the
  /// delaying technique; filled in by the deployment builder.
  std::vector<sim::Time> partition_delay_estimate;

  // --- Certification ------------------------------------------------------

  /// How many committed-transaction records are kept for certification
  /// (the prototype's "last K bloom filters"). Transactions with snapshots
  /// older than the window abort.
  std::size_t window_capacity = 50'000;

  // --- Read-only snapshots -------------------------------------------------

  /// Period of the snapshot-counter gossip that builds globally-consistent
  /// snapshots for read-only transactions.
  sim::Time gossip_interval = sim::msec(10);

  // --- Liveness -----------------------------------------------------------

  /// Resend this partition's vote for a stuck pending global (lost votes).
  sim::Time vote_resend_interval = sim::msec(500);

  /// After this long with missing votes, suspect the submitter crashed
  /// before broadcasting to every partition and atomically broadcast an
  /// abort request to the silent partitions (Section IV-F).
  sim::Time missing_vote_timeout = sim::msec(3000);

  /// When a vote-complete global is blocked only by its reorder threshold
  /// and the partition is idle, broadcast no-op ticks at this period to
  /// advance the delivery counter (implementation addition; see DESIGN.md).
  sim::Time tick_interval = sim::msec(2);

  // --- Checkpointing --------------------------------------------------------

  /// Period of application checkpoints: the server serializes its full
  /// deterministic state into the Paxos durable log and truncates the log
  /// below the checkpoint, bounding both log growth and recovery-replay
  /// length. Replicas that fall behind the truncation point receive the
  /// checkpoint via state transfer. 0 disables checkpointing.
  sim::Time checkpoint_interval = 0;

  // --- CPU cost model -------------------------------------------------------

  /// CPU cost charged per delivered transaction (certification +
  /// bookkeeping). Calibrated so a replica group saturates at a few
  /// thousand transactions per second, the ballpark of the paper's EC2
  /// medium instances (single core, 2012).
  sim::Time certification_cost = sim::usec(90);
  /// Additional CPU cost per written item at apply time.
  sim::Time apply_cost_per_write = sim::usec(10);
  /// Base per-message handling cost.
  sim::Time message_service_time = sim::usec(15);

  /// P-DUR multi-core replica model (src/pdur/). pdur.cores > 1 enables
  /// per-core parallel certification/execution; 1 keeps the legacy serial
  /// replica, bit-identical to earlier builds.
  pdur::Config pdur;

  // --- Routing (filled in by the deployment builder) ------------------------

  /// For every partition, the server process ids of its replica group,
  /// ordered so index 0 is the bootstrap Paxos leader.
  std::vector<std::vector<sim::ProcessId>> partition_servers;

  /// For every partition, the replica this server routes reads to (the
  /// nearest replica of that partition). Empty = use partition_servers[p][0].
  std::vector<sim::ProcessId> read_route;
};

struct ServerConfig : ServerConfigData {
  // --- Legacy technique aliases --------------------------------------------
  // Historical names for the TechniqueConfig knobs; same storage as
  // `techniques.*`. New technique knobs must be added to TechniqueConfig,
  // not here (analyzer rule `config-single-source`).
  std::uint32_t& reorder_threshold = techniques.reorder_threshold;
  bool& delaying_enabled = techniques.delaying_enabled;
  sim::Time& fixed_delay = techniques.fixed_delay;
  bool& bloom_readsets = techniques.bloom_readsets;
  double& bloom_fp_rate = techniques.bloom_fp_rate;
  bool& vote_batching = techniques.vote_batching;
  sim::Time& vote_batch_interval = techniques.vote_batch_interval;
  std::size_t& vote_batch_max = techniques.vote_batch_max;
  bool& vote_piggyback = techniques.vote_piggyback;
  bool& ooo_bypass = techniques.ooo_bypass;
  bool& speculation = techniques.speculation;

  ServerConfig() = default;
  ServerConfig(const ServerConfig& o) : ServerConfigData(o) {}
  ServerConfig(ServerConfig&& o) noexcept : ServerConfigData(std::move(o)) {}
  ServerConfig& operator=(const ServerConfig& o) {
    ServerConfigData::operator=(o);
    return *this;
  }
  ServerConfig& operator=(ServerConfig&& o) noexcept {
    ServerConfigData::operator=(std::move(o));
    return *this;
  }
};

}  // namespace sdur
