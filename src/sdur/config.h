// SDUR server configuration.
#pragma once

#include <cstdint>
#include <vector>

#include "pdur/config.h"
#include "sdur/transaction.h"
#include "sim/time.h"
#include "sim/topology.h"

namespace sdur {

struct ServerConfig {
  PartitionId partition = 0;
  PartitionId num_partitions = 1;

  // --- Geo extensions (Section IV) ---------------------------------------

  /// Reorder threshold R: a pending global transaction waits for R further
  /// deliveries, during which local transactions may be reordered before
  /// it. 0 disables reordering (baseline SDUR): local transactions are
  /// only appended, and globals complete as soon as their votes arrive.
  std::uint32_t reorder_threshold = 0;

  /// Delay the local broadcast of a global transaction by the estimated
  /// one-way delay to the farthest involved partition (Section IV-D).
  bool delaying_enabled = false;

  /// Fixed delay for the delaying technique; 0 means "use the estimated
  /// inter-partition delay". The paper's Figure 3 sweeps fixed values
  /// (20/40/60 ms).
  sim::Time fixed_delay = 0;

  /// Estimated one-way delay from this partition to every partition
  /// (indexed by partition id; entry for own partition = 0). Used by the
  /// delaying technique; filled in by the deployment builder.
  std::vector<sim::Time> partition_delay_estimate;

  // --- Certification ------------------------------------------------------

  /// How many committed-transaction records are kept for certification
  /// (the prototype's "last K bloom filters"). Transactions with snapshots
  /// older than the window abort.
  std::size_t window_capacity = 50'000;

  /// Represent shipped readsets as bloom filters (Section V). Cuts
  /// bandwidth at the price of rare false-positive aborts.
  bool bloom_readsets = false;
  /// Per-probe false-positive rate. Certification probes several keys
  /// against several committed records, so the end-to-end spurious-abort
  /// rate is roughly scan-depth x keys x this rate — keep it small.
  double bloom_fp_rate = 1e-5;

  // --- Read-only snapshots -------------------------------------------------

  /// Period of the snapshot-counter gossip that builds globally-consistent
  /// snapshots for read-only transactions.
  sim::Time gossip_interval = sim::msec(10);

  // --- Liveness -----------------------------------------------------------

  /// Resend this partition's vote for a stuck pending global (lost votes).
  sim::Time vote_resend_interval = sim::msec(500);

  /// After this long with missing votes, suspect the submitter crashed
  /// before broadcasting to every partition and atomically broadcast an
  /// abort request to the silent partitions (Section IV-F).
  sim::Time missing_vote_timeout = sim::msec(3000);

  /// When a vote-complete global is blocked only by its reorder threshold
  /// and the partition is idle, broadcast no-op ticks at this period to
  /// advance the delivery counter (implementation addition; see DESIGN.md).
  sim::Time tick_interval = sim::msec(2);

  // --- Vote batching (see DESIGN.md "Vote exchange & batching") -------------

  /// Coalesce outgoing votes per destination partition into VoteBatchMsg
  /// flushes (and piggyback them on traffic already headed there) instead
  /// of one VoteMsg unicast per transaction per remote replica. Default
  /// off = bit-identical legacy vote exchange (golden-digest pinned in
  /// tests/vote_batch_test.cpp).
  bool vote_batching = false;

  /// Max time a queued vote waits before the batcher force-flushes all
  /// destination queues. Bounds the extra commit_wait a batched vote can
  /// add; votes produced by one delivery batch coalesce well below it.
  sim::Time vote_batch_interval = sim::usec(200);

  /// Queue length per destination partition that triggers an immediate
  /// flush, independent of the interval timer.
  std::size_t vote_batch_max = 64;

  /// Ride pending votes on messages already going to the destination
  /// partition's servers (gossip SC, vote-resend liveness traffic,
  /// cross-partition Paxos forwards) so they cost zero extra messages.
  /// Only meaningful with vote_batching on.
  bool vote_piggyback = true;

  // --- Out-of-order local commit (see DESIGN.md "Out-of-order local commit") --

  /// Let a delivered local transaction certify and commit immediately,
  /// bypassing earlier-delivered globals whose votes are still pending,
  /// whenever its read/write sets do not conflict with any pending entry's
  /// write set (probed in O(sets) via a CertIndex over the pending list).
  /// Conflicting locals park until the blocking global's version is
  /// covered by the completed-global watermark. The resulting schedule is
  /// equivalent to the delivery-order serial one. Default off =
  /// bit-identical legacy completion order (golden-digest pinned in
  /// tests/convoy_bypass_test.cpp and tests/vote_batch_test.cpp).
  bool ooo_bypass = false;

  // --- Checkpointing --------------------------------------------------------

  /// Period of application checkpoints: the server serializes its full
  /// deterministic state into the Paxos durable log and truncates the log
  /// below the checkpoint, bounding both log growth and recovery-replay
  /// length. Replicas that fall behind the truncation point receive the
  /// checkpoint via state transfer. 0 disables checkpointing.
  sim::Time checkpoint_interval = 0;

  // --- CPU cost model -------------------------------------------------------

  /// CPU cost charged per delivered transaction (certification +
  /// bookkeeping). Calibrated so a replica group saturates at a few
  /// thousand transactions per second, the ballpark of the paper's EC2
  /// medium instances (single core, 2012).
  sim::Time certification_cost = sim::usec(90);
  /// Additional CPU cost per written item at apply time.
  sim::Time apply_cost_per_write = sim::usec(10);
  /// Base per-message handling cost.
  sim::Time message_service_time = sim::usec(15);

  /// P-DUR multi-core replica model (src/pdur/). pdur.cores > 1 enables
  /// per-core parallel certification/execution; 1 keeps the legacy serial
  /// replica, bit-identical to earlier builds.
  pdur::Config pdur;

  // --- Routing (filled in by the deployment builder) ------------------------

  /// For every partition, the server process ids of its replica group,
  /// ordered so index 0 is the bootstrap Paxos leader.
  std::vector<std::vector<sim::ProcessId>> partition_servers;

  /// For every partition, the replica this server routes reads to (the
  /// nearest replica of that partition). Empty = use partition_servers[p][0].
  std::vector<sim::ProcessId> read_route;
};

}  // namespace sdur
