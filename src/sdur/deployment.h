// Deployment builder: wires a full SDUR system (simulator, network,
// topology, servers, clients) for the paper's three deployments.
//
//  - LAN: every replica in one region (the DSN'12 scalability setting).
//  - WAN 1 (Section IV-B): each partition keeps a majority of its replicas
//    in its home region (different availability zones) and one replica in
//    the other region to serve nearby reads. Local transactions terminate
//    in ~4 delta; globals pay 4 delta + 2 Delta.
//  - WAN 2: each partition spreads its replicas across three regions, so
//    it survives the loss of a whole region; every Paxos quorum crosses
//    regions (locals ~2 delta + 2 Delta, globals ~3 delta + 3 Delta).
//
// Partition p's home region alternates EU / US-EAST (the paper's two
// partitions have EU and US-EAST homes); clients are placed in their home
// partition's region and are routed to the nearest replica of every
// partition, with the home partition's leader as their preferred server.
#pragma once

#include <memory>
#include <vector>

#include "sdur/client.h"
#include "sdur/server.h"
#include "sim/simulator.h"

namespace sdur {

struct DeploymentSpec {
  enum class Kind { kLan, kWan1, kWan2 };

  Kind kind = Kind::kLan;
  PartitionId partitions = 2;
  std::uint32_t replicas = 3;
  PartitioningPtr partitioning;  // required

  /// Template for per-server settings (reordering, delaying, bloom, CPU
  /// costs...). Partition ids, routing tables and delay estimates are
  /// filled in by the builder.
  ServerConfig server;

  /// Template for per-client settings (timeouts, retry intervals); routing
  /// is filled in by the builder.
  ClientConfig client;

  /// Paxos knobs applied to every group.
  sim::Time log_write_latency = sim::msec(4);  // BDB-style synchronous log write
  sim::Time heartbeat_interval = sim::msec(100);
  sim::Time election_timeout = sim::msec(600);
  std::size_t max_batch = 64;
  std::size_t pipeline_window = 64;

  double jitter = 0.05;
  std::uint64_t seed = 1;
};

class Deployment {
 public:
  explicit Deployment(DeploymentSpec spec);
  ~Deployment();

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return *net_; }
  const DeploymentSpec& spec() const { return spec_; }
  PartitioningPtr partitioning() const { return spec_.partitioning; }

  Server& server(PartitionId p, std::uint32_t replica);
  std::vector<Server*> servers();
  PartitionId partition_count() const { return spec_.partitions; }
  std::uint32_t replica_count() const { return spec_.replicas; }

  /// Creates a client homed on partition `home` (placed in that
  /// partition's region, preferring its leader for commits).
  Client& add_client(PartitionId home);
  std::vector<Client*> clients();

  /// Loads a key/value into every replica of the key's partition. Must be
  /// called before start().
  void load(Key k, std::string v);

  /// Starts all servers (Paxos leader election, gossip, liveness timers).
  void start();

  /// Runs the simulation until time t.
  void run_until(sim::Time t) { sim_.run_until(t); }

  /// Home region of a partition under the current deployment kind.
  std::uint16_t home_region(PartitionId p) const;

  /// Aggregated server stats.
  Server::Stats total_stats() const;

  /// Keeps an arbitrary object alive for the deployment's lifetime. Used
  /// by the workload driver: client sessions schedule continuations in the
  /// simulator, so they must outlive every event that references them.
  void retain(std::shared_ptr<void> obj) { retained_.push_back(std::move(obj)); }

 private:
  sim::Location server_location(PartitionId p, std::uint32_t replica) const;
  sim::ProcessId server_pid(PartitionId p, std::uint32_t replica) const {
    return 1 + p * spec_.replicas + replica;
  }
  /// Nearest replica of partition p to the given region.
  std::uint32_t nearest_replica(PartitionId p, std::uint16_t region) const;

  DeploymentSpec spec_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<std::shared_ptr<void>> retained_;
  sim::ProcessId next_client_pid_ = 10'000;
};

}  // namespace sdur
