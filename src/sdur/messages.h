// SDUR client/server and server/server wire messages (tag range 20-49).
#pragma once

#include <vector>

#include "sdur/transaction.h"
#include "sim/message.h"

namespace sdur {

namespace msgtype {
constexpr sim::MsgType kCommitReq = 20;    // client -> contact server
constexpr sim::MsgType kOutcome = 21;      // contact server -> client
constexpr sim::MsgType kReadReq = 22;      // client -> server
constexpr sim::MsgType kReadResp = 23;     // server -> client
constexpr sim::MsgType kReadRouted = 24;   // server -> server (key not local)
constexpr sim::MsgType kVote = 25;         // server -> servers of other partitions
constexpr sim::MsgType kGossipSC = 26;     // server -> servers of other partitions
constexpr sim::MsgType kSnapshotReq = 27;  // client -> server (read-only txn)
constexpr sim::MsgType kSnapshotResp = 28; // server -> client
constexpr sim::MsgType kVoteRequest = 29;  // server -> servers of a silent partition
constexpr sim::MsgType kVoteBatch = 30;    // server -> servers of other partitions (N votes)
constexpr sim::MsgType kVotePiggyback = 31;  // envelope: votes riding on another message
constexpr sim::MsgType kFirst = kCommitReq;
constexpr sim::MsgType kLast = kVotePiggyback;
}  // namespace msgtype

struct CommitReqMsg {
  Transaction tx;

  sim::Message to_message() const;
  static CommitReqMsg decode(util::Reader& r);
};

struct OutcomeMsg {
  TxId id = 0;
  Outcome outcome = Outcome::kUnknown;

  sim::Message to_message() const;
  static OutcomeMsg decode(util::Reader& r);
};

struct ReadReqMsg {
  std::uint64_t reqid = 0;  // echoed back so clients can issue parallel reads
  Key key = 0;
  Version snapshot = kNoSnapshot;  // bottom on the first read at a partition

  sim::Message to_message() const;
  static ReadReqMsg decode(util::Reader& r);
};

struct ReadRespMsg {
  std::uint64_t reqid = 0;
  Key key = 0;
  bool found = false;
  std::string value;
  Version snapshot = kNoSnapshot;  // snapshot the read executed at

  sim::Message to_message() const;
  static ReadRespMsg decode(util::Reader& r);
};

/// Server-to-server read routing (Section V: clients connect to a single
/// server; reads for remote partitions are routed). The remote server
/// answers the client directly.
struct ReadRoutedMsg {
  std::uint64_t reqid = 0;
  sim::ProcessId client = 0;
  Key key = 0;
  Version snapshot = kNoSnapshot;

  sim::Message to_message() const;
  static ReadRoutedMsg decode(util::Reader& r);
};

/// A partition's certification vote for a global transaction.
struct VoteMsg {
  TxId id = 0;
  PartitionId partition = 0;
  Outcome vote = Outcome::kUnknown;

  sim::Message to_message() const;
  static VoteMsg decode(util::Reader& r);
};

/// One (transaction, vote) pair inside a batched vote message.
struct VoteBatchEntry {
  TxId id = 0;
  Outcome vote = Outcome::kUnknown;
};

/// A partition's certification votes for several global transactions,
/// coalesced by the vote batcher (src/sdur/server.cpp): one wide-area
/// message replaces up to vote_batch_max per-transaction VoteMsg unicasts
/// to the same destination partition.
struct VoteBatchMsg {
  PartitionId partition = 0;
  std::vector<VoteBatchEntry> votes;

  sim::Message to_message() const;
  static VoteBatchMsg decode(util::Reader& r);
};

/// Envelope: pending outgoing votes piggybacked on a message already
/// headed to a server of the destination partition (snapshot-counter
/// gossip, vote-resend liveness traffic, cross-partition Paxos forwards).
/// The receiver applies the votes, then dispatches the inner message as if
/// it had arrived alone — so under load most votes cost zero extra
/// wide-area messages.
struct VotePiggybackMsg {
  sim::MsgType inner_type = 0;
  std::string inner_payload;
  VoteBatchMsg batch;

  sim::Message to_message() const;
  static VotePiggybackMsg decode(util::Reader& r);
};

/// Asks a partition to resend its vote for a pending global transaction
/// (used by replicas that lost their vote table in a crash, and as a
/// general lost-vote repair).
struct VoteRequestMsg {
  TxId id = 0;

  sim::Message to_message() const;
  static VoteRequestMsg decode(util::Reader& r);
};

/// Asynchronous snapshot-counter gossip used to build globally-consistent
/// snapshots for read-only transactions (Section III-A).
struct GossipSCMsg {
  PartitionId partition = 0;
  Version sc = 0;

  sim::Message to_message() const;
  static GossipSCMsg decode(util::Reader& r);
};

struct SnapshotReqMsg {
  std::uint64_t reqid = 0;

  sim::Message to_message() const;
  static SnapshotReqMsg decode(util::Reader& r);
};

struct SnapshotRespMsg {
  std::uint64_t reqid = 0;
  std::vector<Version> snapshot;  // one entry per partition

  sim::Message to_message() const;
  static SnapshotRespMsg decode(util::Reader& r);
};

}  // namespace sdur
