// Transaction model (paper Section II-B).
//
// A transaction t = (id, rs, ws): the readset holds the keys t read, the
// writeset holds key/value pairs t wrote. Clients buffer writes locally and
// ship the whole transaction at commit time (deferred update). The snapshot
// vector st[1..P] records, per partition, the snapshot-counter value of the
// first read (bottom = -1 for untouched partitions); partitions(t) is the
// set of partitions with a non-bottom entry.
//
// Servers never see the full transaction: the client (or its contact
// server) projects it per partition into a PartTx — exactly the
// "readset(t)_p and writeset(t)_p plus some metadata" the paper broadcasts
// to each involved partition.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/topology.h"
#include "storage/mvstore.h"
#include "util/bloom.h"
#include "util/bytes.h"

namespace sdur {

using storage::Key;
using storage::Version;
using PartitionId = std::uint32_t;
using TxId = std::uint64_t;

/// Version value representing bottom (no read at that partition yet).
constexpr Version kNoSnapshot = -1;

enum class Outcome : std::uint8_t { kUnknown = 0, kCommit = 1, kAbort = 2 };

const char* to_string(Outcome o);

struct WriteOp {
  Key key = 0;
  std::string value;
};

/// Client-side view of an update transaction, shipped to the contact
/// server in the commit request.
struct Transaction {
  TxId id = 0;
  sim::ProcessId client = 0;
  /// Sparse snapshot vector: (partition, snapshot) for partitions read.
  std::vector<std::pair<PartitionId, Version>> snapshots;
  std::vector<Key> readset;
  std::vector<WriteOp> writeset;

  Version snapshot_of(PartitionId p) const;
  void set_snapshot(PartitionId p, Version v);

  void encode(util::Writer& w) const;
  static Transaction decode(util::Reader& r);
};

/// Per-partition projection of a transaction — the unit that is atomically
/// broadcast within a partition and certified by Algorithm 2. Also carries
/// the two control values SDUR broadcasts: abort requests (recovery from a
/// failed submitter, Section IV-F) and ticks (delivery-counter no-ops that
/// keep the reorder threshold live when the partition is idle).
struct PartTx {
  enum class Kind : std::uint8_t { kTxn = 0, kAbortRequest = 1, kTick = 2, kSetThreshold = 3 };

  Kind kind = Kind::kTxn;
  TxId id = 0;
  sim::ProcessId client = 0;
  /// Server that answers the client (only it sends the outcome message).
  sim::ProcessId contact = 0;
  /// All partitions accessed by the transaction, sorted.
  std::vector<PartitionId> involved;
  /// Snapshot at this partition (t.st[p]).
  Version snapshot = kNoSnapshot;
  /// Keys read at this partition; bloom-encoded when the prototype's
  /// bloom-filter optimization is on (Section V).
  util::KeySet readset;
  /// Exact keys written at this partition (needed for certification).
  util::KeySet write_keys;
  /// Writes to apply at this partition.
  std::vector<WriteOp> writes;

  /// New reorder threshold (kSetThreshold only): "replicas can change the
  /// reordering threshold by broadcasting a new value of k" (Section IV-E).
  std::uint32_t threshold = 0;

  bool is_global() const { return involved.size() > 1; }

  util::Bytes encode() const;
  static PartTx decode(const util::Bytes& value);

  static PartTx make_tick();
  static PartTx make_abort_request(TxId id, std::vector<PartitionId> involved);
  static PartTx make_set_threshold(std::uint32_t k);
};

}  // namespace sdur
