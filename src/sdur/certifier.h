// Certifier: the deterministic certification and reordering core of
// Algorithm 2, factored out of the server so the paper's central logic can
// be tested in isolation.
//
// DETERMINISM REFINEMENT (see DESIGN.md). The paper's pseudocode advances
// the snapshot counter SC when a transaction *completes* (Algorithm 2,
// line 39) and certifies a delivered transaction against DB[t.st[p]..SC]
// plus the pending list. Completion of a global transaction depends on
// when its votes arrive, which differs across replicas — so at the moment
// transaction t is delivered, one replica may have completed a global g
// (g in DB, excluded from the scan because its version is within t's
// snapshot) while another still has g pending (g caught by the pending
// check and flagged as a stale read). The two replicas would then certify
// t differently and diverge.
//
// This implementation closes the race by making version assignment purely
// delivery-ordered:
//
//   * every transaction that passes certification is assigned the next
//     version (cc) immediately, at delivery — deterministic;
//   * the window keeps one slot per assigned version with a status
//     (pending / committed / aborted) and the transaction's read/write
//     sets; certifying t scans versions in (t.st, cc] ignoring slot
//     status entirely — pending and even vote-aborted slots count as
//     conflict sources (resolution timing differs across replicas, so any
//     status-dependence would break determinism; the cost is an
//     occasional conservative abort, retried with a fresh snapshot);
//   * completion resolves the slot and applies the writes at the
//     *pre-assigned* version; reads are served at the "stable" version —
//     the largest v such that every slot <= v is resolved — so clients
//     never observe a snapshot that could still grow a hole.
//
// A local transaction reordered before a pending global completes (and is
// acknowledged) earlier but keeps its delivery-ordered version; this is
// sound because reordering requires their read/write sets to be disjoint
// in both directions, i.e. the two transactions commute.
// P-DUR (src/pdur/, arXiv:1312.0742): constructed with cores > 1, the
// certifier runs the parallel decomposition of the conflict check — every
// core keeps a window over its own sub-partition of the keys and votes on
// its slice; the transaction aborts iff any home core saw a conflict. The
// decomposition is outcome-equivalent to the serial scan (a key lives on
// exactly one core), version assignment stays on the shared
// delivery-ordered counter, and SDUR_AUDIT builds cross-check every
// parallel verdict against the serial scan in place.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_set>
#include <vector>

#include "pdur/parallel_window.h"
#include "sdur/transaction.h"
#include "storage/cert_index.h"
#include "util/bloom.h"

namespace sdur {

/// A pending (certified, not yet completed) transaction. The trailing
/// fields are server-side liveness bookkeeping the certifier ignores.
struct PendingEntry {
  PartTx tx;
  std::uint64_t rt = 0;  // reorder threshold: complete only once dc >= rt
  Version version = 0;   // version pre-assigned at certification

  sim::Time delivered_at = 0;
  sim::Time last_vote_resend = 0;
  bool abort_requested = false;
  /// P-DUR: false while the transaction's simulated core work is still in
  /// flight; the pending list never completes an entry (not even a
  /// committed local) before its cores finished. Always true in the serial
  /// model.
  bool ready = true;
  /// Out-of-order bypass (cfg.ooo_bypass): the completed-global watermark
  /// this local must wait for before it may commit out of order — the
  /// largest version among pending entries ahead whose write set it
  /// conflicts with (inheriting the bound of conflicting pending locals).
  /// 0 = unparked (versions start at 1). Globals never bypass, so the
  /// field is meaningless for them. Computed at certification and
  /// recomputed on checkpoint install; not serialized.
  Version park_until = 0;
};

class Certifier {
 public:
  enum class SlotStatus : std::uint8_t { kPending = 0, kCommitted = 1, kAborted = 2 };

  /// One certified transaction, indexed by its assigned version.
  struct Slot {
    TxId txid = 0;
    bool global = false;
    SlotStatus status = SlotStatus::kPending;
    util::KeySet readset;
    util::KeySet write_keys;
  };

  /// `cores > 1` switches certification to the P-DUR per-core windows;
  /// `cores == 1` (default) is the serial model, bit-identical to before.
  /// `ooo_bypass` arms the out-of-order local-commit gate (park bounds and
  /// the pending-write index); off (default) leaves every bypass structure
  /// untouched — bit-identical legacy behavior.
  explicit Certifier(std::size_t window_capacity, std::uint32_t cores = 1,
                     bool ooo_bypass = false)
      : window_capacity_(window_capacity == 0 ? 1 : window_capacity),
        ooo_bypass_(ooo_bypass) {
    if (cores > 1) window_ = std::make_unique<pdur::ParallelWindow>(cores);
  }

  struct Result {
    Outcome outcome = Outcome::kAbort;
    /// Insertion position in the pending list (only when committed).
    std::size_t position = 0;
    /// Version assigned to the transaction (only when committed).
    Version version = 0;
    /// True if a local transaction leaped at least one pending global.
    bool reordered = false;
    /// True if the abort was caused by the snapshot falling out of the
    /// certification window.
    bool stale_snapshot = false;
    /// P-DUR: the home cores of the transaction (populated whenever the
    /// certifier runs in multi-core mode, for every non-stale verdict).
    std::vector<pdur::CoreId> cores;
    /// Out-of-order bypass: true when a committed local conflicts with a
    /// pending write set and must park (park_until > watermark).
    bool parked = false;
  };

  /// Certifies transaction `t` delivered with reorder threshold `rt` when
  /// the delivery counter is `dc`; on success assigns the next version and
  /// inserts it into the pending list (Algorithm 2, reorder()).
  Result process(const PartTx& t, std::uint64_t rt, std::uint64_t dc);

  // --- Pending list -------------------------------------------------------
  bool empty() const { return pl_.empty(); }
  std::size_t size() const { return pl_.size(); }
  PendingEntry& head() { return pl_.front(); }
  const PendingEntry& at(std::size_t i) const { return pl_[i]; }
  PendingEntry& at(std::size_t i) { return pl_[i]; }
  PendingEntry pop_head();

  /// O(1) membership test for the pending list, keyed by transaction id
  /// (ids are unique in the list: the server's seen_ set dedups deliveries
  /// upstream). Lets handle_vote decide "still pending?" without the
  /// O(window) scan it used to run per incoming vote.
  bool pending_contains(TxId id) const { return pending_ids_.count(id) != 0; }

  /// P-DUR: marks the pending entry holding version `v` ready (its core
  /// work completed). No-op if the entry already left the list.
  void mark_ready(Version v);

  // --- Out-of-order local commit (cfg.ooo_bypass) -------------------------
  /// "No pending entry" sentinel for next_bypassable().
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  /// True when the bypass gate is armed.
  bool ooo_bypass() const { return ooo_bypass_; }
  /// Version of the newest completed global; a parked local unparks once
  /// the watermark reaches its park bound. Globals complete at the head in
  /// ascending version order, so the watermark is monotone.
  Version bypass_watermark() const { return bypass_watermark_; }
  /// Index (>= `from`) of the first pending local that is ready and
  /// unparked — eligible to commit past everything ahead of it — or npos.
  std::size_t next_bypassable(std::size_t from) const;
  /// Removes and returns the entry at `pos` (the bypass analogue of
  /// pop_head: maintains the id set, the pending-write index and the
  /// watermark).
  PendingEntry take_at(std::size_t pos);

  // --- Resolution ----------------------------------------------------------
  /// Resolves a completed transaction's slot (after the caller popped it
  /// from the pending list and, on commit, applied its writes at
  /// entry.version). Advances the stable prefix.
  void resolve(const PendingEntry& entry, bool committed);
  /// Same, for an entry the caller detached earlier (speculative global
  /// commit: the entry left the pending list at speculation time and is
  /// resolved when its votes arrive). `owner` pins the resolve-owner audit.
  void resolve(Version v, TxId owner, bool committed);

  /// Highest assigned version (certified, possibly unresolved).
  Version certified() const { return cc_; }
  /// Highest version v such that all slots <= v are resolved; reads are
  /// served at this snapshot.
  Version stable() const { return stable_; }

  /// True if a snapshot is still coverable by the window. Written without
  /// `st + 1` so st == INT64_MAX cannot overflow.
  bool covers(Version st) const {
    return slots_.empty() || (st < 0 ? stable_ : st) >= base_ - 1;
  }
  std::size_t window_size() const { return slots_.size(); }

  /// Slot accessor for tests (version must be in (base-1, cc]).
  const Slot* slot(Version v) const;

  /// TEST-ONLY fault injection: when set, certification skips the conflict
  /// check and commits every coverable transaction — a determinism bug
  /// (when enabled on a single replica) the audit layer must catch
  /// (tests/audit_test.cpp). Never set outside tests.
  void test_skip_conflict_check(bool v) { test_skip_conflict_check_ = v; }

  /// TEST-ONLY fault injection: when set (with ooo_bypass on), the park
  /// gate is skipped — every committed local is unparked, so a
  /// write-conflicting local bypasses the pending writer ahead of it. The
  /// store's version-order audit (and MVStore's regression throw) must
  /// catch the resulting out-of-order apply (tests/convoy_bypass_test.cpp).
  /// Never set outside tests.
  void test_skip_park_gate(bool v) { test_skip_park_gate_ = v; }

  /// Serializes the full certifier state (window slots + pending list)
  /// into a checkpoint; install() replaces the state from one. Pending
  /// entries lose their server-side liveness fields (votes are re-fetched
  /// by the server's vote-request repair).
  void encode(util::Writer& w) const;
  void install(util::Reader& r);

  void reset();

  /// P-DUR mode (cores > 1 at construction).
  bool parallel() const { return window_ != nullptr; }

 private:
  /// Indexed conflict verdict (audit builds cross-check it against
  /// scan_conflict in place).
  bool has_conflict(const PartTx& t, Version st) const;
  /// The legacy O(window) scan — the reference the index must match.
  bool scan_conflict(const PartTx& t, Version st) const;
  /// Indexed strategy: key probes + bloom-suffix scan over slots_.
  bool indexed_conflict(const PartTx& t, Version st) const;
  /// Rebuilds the per-core lanes and the key index from slots_ (after
  /// install()).
  void rebuild_window();

  // --- Out-of-order local commit internals --------------------------------
  /// Bypass gate trigger: O(sets) probe of the pending-write index — does
  /// `t` read or write a key some pending entry will still write? A bloom
  /// probe readset cannot drive key probes; the caller treats it as a hit
  /// and lets park_bound decide. Over-approximate (it also hits on
  /// rs(t) vs pending-local writes); park_bound is authoritative.
  bool pending_writes_conflict(const PartTx& t) const;
  /// Exact park bound for a local inserted at `position`: the largest
  /// version among conflicting pending entries ahead (globals contribute
  /// their version; write-conflicting locals their own park bound). 0 =
  /// nothing to wait for.
  Version park_bound(std::size_t position, const PartTx& t) const;
  /// Computes the park bound for a freshly certified local and stamps the
  /// inserted entry (gate trigger + exact bound + audits).
  void park_on_insert(std::size_t position, const PartTx& t, Result& result);
  /// Maintains the pending-write index and the completed-global watermark
  /// as `e` leaves the pending list (pop_head and take_at).
  void unpark_on_removal(const PendingEntry& e);
  /// Recomputes every restored local's park bound after install() — a pure
  /// function of the restored pending list, so replicas agree.
  void park_rebuild();

  std::size_t window_capacity_;
  bool test_skip_conflict_check_ = false;
  bool test_skip_park_gate_ = false;
  /// Out-of-order local commit armed (cfg.ooo_bypass). When false, no
  /// bypass structure is ever touched — the legacy paths are bit-identical.
  bool ooo_bypass_ = false;
  std::deque<Slot> slots_;  // slot for version v at index v - base_
  Version base_ = 1;        // version of slots_.front()
  Version cc_ = 0;          // last assigned version
  Version stable_ = 0;      // resolved prefix
  std::deque<PendingEntry> pl_;
  /// Ids of the entries in pl_, mirrored on every insert/pop/install/reset.
  std::unordered_set<TxId> pending_ids_;
  /// Per-key last-writer / last-reader index over slots_, maintained on
  /// certification and eviction (see storage/cert_index.h).
  storage::CertIndex index_;
  /// Bypass gate: newest pending writer per key over pl_ (readset slots
  /// unused — inserted empty). Maintained on certification and on every
  /// pending-list removal; rebuilt (version-ascending) on install. Only
  /// touched when ooo_bypass_ is set.
  storage::CertIndex pending_ws_;
  /// Version of the newest completed global (see bypass_watermark()).
  Version bypass_watermark_ = 0;
  /// P-DUR per-core windows; null in the serial model. Mirrors slots_
  /// (projected per core), rebuilt from it on install().
  std::unique_ptr<pdur::ParallelWindow> window_;
};

}  // namespace sdur
