// SDUR server: Algorithm 2 of the paper.
//
// One Server replicates one database partition. It embeds a Paxos engine
// (the partition's atomic broadcast instance) and a Certifier (the
// deterministic certification/reordering core) and implements:
//
//  - transaction submission: projecting a client transaction per partition
//    and broadcasting each projection to its partition, optionally delaying
//    the local broadcast (Section IV-D);
//  - the 2PC-like vote exchange that terminates global transactions, with
//    the reorder-threshold completion rule (Section IV-E);
//  - the abort-request recovery path for transactions whose submitter
//    failed between broadcasts (Section IV-F);
//  - multiversion reads at a snapshot, read routing for non-local keys, and
//    snapshot-counter gossip for global read-only snapshots;
//  - crash recovery: replaying the Paxos durable log rebuilds the replica
//    deterministically.
//
// Determinism: all state that certification depends on lives in the
// Certifier and changes only as a function of the delivered sequence,
// which atomic broadcast makes identical across the partition's replicas.
// Votes affect only *when* a global completes, never the certification
// outcome.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "paxos/engine.h"
#include "pdur/executor.h"
#include "sdur/certifier.h"
#include "sdur/config.h"
#include "sdur/messages.h"
#include "sdur/partitioning.h"
#include "sim/process.h"
#include "storage/mvstore.h"
#include "trace/trace.h"

namespace sdur {

class Server : public sim::Process {
 public:
  struct Stats {
    std::uint64_t delivered = 0;
    std::uint64_t committed_local = 0;
    std::uint64_t committed_global = 0;
    std::uint64_t aborted = 0;
    std::uint64_t stale_snapshot_aborts = 0;  // snapshot fell out of window
    std::uint64_t reordered = 0;              // locals that leaped >=1 global
    std::uint64_t ticks_sent = 0;
    std::uint64_t abort_requests_sent = 0;
    std::uint64_t reads_served = 0;
    std::uint64_t reads_routed = 0;
    std::uint64_t reads_deferred = 0;
    std::uint64_t pdur_single_core = 0;  // txns homed on one core (P-DUR fast path)
    std::uint64_t pdur_cross_core = 0;   // txns that paid the cross-core barrier
    std::uint64_t vote_batches_sent = 0;   // VoteBatchMsg flushes (per destination replica)
    std::uint64_t votes_batched = 0;       // votes carried by explicit batch flushes
    std::uint64_t votes_piggybacked = 0;   // votes that rode existing traffic for free
    std::uint64_t stale_votes_dropped = 0; // votes for already-completed transactions
    std::uint64_t bypassed_locals = 0;     // locals committed past pending entries (ooo_bypass)
    std::uint64_t parked_locals = 0;       // locals parked behind a pending write conflict
    std::uint64_t speculated_globals = 0;  // globals applied speculatively before their votes
    std::uint64_t spec_commits = 0;        // speculations finalized (versions promoted)
    std::uint64_t spec_aborts = 0;         // speculations rolled back on a remote abort vote
  };

  Server(sim::Network& net, sim::ProcessId pid, sim::Location loc, ServerConfig cfg,
         paxos::GroupConfig paxos_cfg, PartitioningPtr partitioning);

  /// Starts Paxos timers, gossip and liveness timers.
  void start();

  /// Atomically broadcasts a new reorder threshold to this partition; all
  /// replicas switch at the same point in the delivery sequence (Section
  /// IV-E: "replicas can change the reordering threshold by broadcasting a
  /// new value of k").
  void broadcast_reorder_threshold(std::uint32_t k);

  /// Bulk-loads a key at version 0 (initial database population; done on
  /// every replica of the partition before start()).
  void load(Key k, std::string v) { store_.load(k, std::move(v)); }

  PartitionId partition() const { return cfg_.partition; }
  /// Stable snapshot version: reads are served at this version.
  Version sc() const { return cert_.stable(); }
  /// Highest assigned (certified) version, possibly unresolved.
  Version certified() const { return cert_.certified(); }
  std::uint64_t dc() const { return dc_; }
  std::uint32_t reorder_threshold() const { return cfg_.reorder_threshold; }
  std::size_t pending_count() const { return cert_.size(); }
  const Stats& stats() const { return stats_; }
  const storage::MVStore& store() const { return store_; }
  paxos::PaxosEngine& engine() { return *engine_; }
  const ServerConfig& config() const { return cfg_; }

  /// TEST-ONLY access to the certifier, used by audit tests to inject a
  /// certification bug on a single replica (tests/audit_test.cpp).
  Certifier& certifier_for_test() { return cert_; }

 protected:
  void on_message(const sim::Message& m, sim::ProcessId from) override;
  void on_recover() override;

 private:
  // --- Submission ---------------------------------------------------------
  void handle_commit_request(Transaction tx);
  PartTx project(const Transaction& tx, PartitionId p,
                 const std::vector<PartitionId>& involved) const;
  /// Sends an encoded PartTx into partition p's atomic broadcast.
  void abcast(PartitionId p, const PartTx& t);

  // --- Delivery (Algorithm 2, lines 15-33) ----------------------------------
  void adeliver(const paxos::Value& value);
  void process_delivery(PartTx t);
  void complete(const PendingEntry& e, Outcome outcome);
  void drain_pending();
  /// Out-of-order local commit (cfg.ooo_bypass): after the in-order drain
  /// stalls, commits every ready unparked local past the blocked prefix
  /// (see DESIGN.md "Out-of-order local commit").
  void bypass_sweep();
  /// In-order head drain (the legacy drain_pending loop body); factored
  /// out so the speculation sweep can interleave with it.
  void drain_in_order();
  void schedule_threshold_tick();

  // --- Speculative global commit (cfg.techniques.speculation) ---------------
  // A locally-certified global at the pending-list head applies its writes
  // as speculative MVStore versions immediately and leaves the pending
  // list; remote votes later finalize (promote + reply) or roll it back
  // (undo the versions mid-chain). No transaction ever depends on
  // speculative state — reads serve only the stable prefix, which stalls
  // below every unresolved speculative version — so there is nothing to
  // cascade. See DESIGN.md "Speculative global commit".
  /// One speculated global, keyed by its assigned version in spec_.
  struct SpecEntry {
    PartTx tx;
    Version version = 0;
    std::uint64_t rt = 0;             // delivery count at certification
    sim::Time delivered_at = 0;
    sim::Time last_vote_resend = 0;
    bool abort_requested = false;
  };
  /// Speculates the global at the pending-list head; true on progress.
  bool speculate_head();
  /// Post-drain sweep: speculate eligible heads; true on any progress.
  bool spec_sweep();
  /// Votes complete with combined commit: promote versions, emit the
  /// reply.
  void finalize_spec(Version v);
  /// Votes complete with an abort: undo the versions, reply abort.
  void rollback_spec(Version v);
  bool has_all_votes(const PartTx& t) const;
  Outcome combined_outcome(const PartTx& t) const;

  // --- P-DUR multi-core replica (src/pdur/) ---------------------------------
  /// True when this replica models pdur.cores > 1 simulated cores.
  bool parallel() const { return cfg_.pdur.cores > 1; }
  /// Runs once a transaction's per-core work finished: releases the
  /// pending entry, emits the deferred effects (votes, abort answers).
  void finish_core_work(const PartTx& t, Outcome vote, Version version);

  // --- Votes ----------------------------------------------------------------
  void record_own_vote(const PartTx& t, Outcome v);
  void send_vote_to_peers(const PartTx& t, Outcome v);
  bool has_all_votes(const PendingEntry& p) const;
  Outcome combined_outcome(const PendingEntry& p) const;
  void handle_vote(const VoteMsg& m);
  /// Records one vote; returns false when the vote was stale (transaction
  /// already completed here — dropped, exactly like the legacy early
  /// return, so callers only drain_pending on recorded votes). The
  /// stale-drop check is one probe of the certifier's id index instead of
  /// the O(pending) scan handle_vote used to run per vote.
  bool apply_vote(TxId id, PartitionId partition, Outcome vote);
  void handle_vote_batch(const VoteBatchMsg& m);

  // --- Vote batching (see DESIGN.md "Vote exchange & batching") --------------
  /// Batching is a cross-partition optimization; single-partition
  /// deployments have no vote exchange to batch.
  bool batching() const { return cfg_.vote_batching && cfg_.num_partitions > 1; }
  /// Queues a vote for partition p; flushes at vote_batch_max, else arms
  /// one vote_batch_interval timer covering all destination queues.
  void enqueue_vote(PartitionId p, TxId id, Outcome v);
  void flush_votes();
  void flush_votes_for(PartitionId p);
  /// Wraps a message headed to replica `replica_index` of partition `p` in
  /// a VotePiggybackMsg carrying that replica's pending vote suffix;
  /// returns the message unchanged when there is nothing to carry.
  sim::Message maybe_piggyback(PartitionId p, std::size_t replica_index, sim::Message m);
  /// Same, resolving an arbitrary destination process id (Paxos forwards,
  /// vote-request replies) to its (partition, replica) coordinates.
  sim::Message maybe_piggyback_pid(sim::ProcessId to, sim::Message m);

  // --- Reads ------------------------------------------------------------------
  void handle_read(std::uint64_t reqid, sim::ProcessId client, Key key, Version snapshot);
  /// Charges the read on the key's owning core (parallel mode) before
  /// answering; serial mode answers inline.
  void schedule_read(std::uint64_t reqid, sim::ProcessId client, Key key, Version snapshot);
  void answer_read(std::uint64_t reqid, sim::ProcessId client, Key key, Version snapshot);
  void service_deferred_reads();

  // --- Checkpointing ----------------------------------------------------------
  /// Serializes the server's deterministic state (store, certifier, dedup
  /// and vote tables, counters) into a checkpoint blob.
  paxos::Value encode_state() const;
  /// Replaces the server's state from a checkpoint blob (recovery / state
  /// transfer). Votes for pending globals are re-fetched via vote requests.
  void install_state(const paxos::Value& blob);

  // --- Timers -------------------------------------------------------------------
  void gossip_tick();
  void liveness_tick();
  void checkpoint_tick();

  ServerConfig cfg_;
  PartitioningPtr partitioning_;

  storage::MVStore store_;
  Certifier cert_;
  std::uint64_t dc_ = 0;  // delivered-transactions counter

  /// VOTES: votes received per global transaction and partition.
  std::unordered_map<TxId, std::unordered_map<PartitionId, Outcome>> votes_;
  /// Abort requests delivered before their transaction.
  std::unordered_set<TxId> poisoned_;
  /// Delivered transaction ids (dedup across leader-change re-broadcasts).
  std::unordered_set<TxId> seen_;
  /// Own votes for globals, kept after completion so they can be resent
  /// (bounded FIFO).
  std::unordered_map<TxId, Outcome> own_votes_;
  std::deque<TxId> own_votes_order_;

  /// Final outcomes of completed transactions. Deterministic (every
  /// replica completes every transaction with the same outcome), so it is
  /// recorded on all replicas, carried in checkpoints, and used to answer
  /// duplicate commit requests (client retries after a lost outcome
  /// message) without re-executing (bounded FIFO).
  std::unordered_map<TxId, Outcome> outcomes_;
  std::deque<TxId> outcomes_order_;
  void remember_outcome(TxId id, Outcome o);

  /// Latest known snapshot counters of all partitions (gossip).
  std::vector<Version> gsc_;
  Version last_gossiped_sc_ = -1;

  struct DeferredRead {
    std::uint64_t reqid;
    sim::ProcessId client;
    Key key;
    Version snapshot;
  };
  std::deque<DeferredRead> deferred_reads_;

  /// Outstanding speculative entries by version (ordered: rollback and
  /// the spec-floor audit walk from the lowest). Deterministic: contents
  /// are a function of the delivered sequence plus vote outcomes, both
  /// identical across the partition's replicas.
  std::map<Version, SpecEntry> spec_;
  /// TxId -> speculative version, so the vote path can find speculated
  /// globals that already left the pending list.
  std::unordered_map<TxId, Version> spec_ids_;

  /// Per-destination-partition vote outbox. `cursor[i]` is the queue
  /// prefix already carried to replica i of that partition by a piggyback
  /// (every replica of every involved partition needs every vote; votes
  /// are idempotent, so over-delivery is harmless but under-delivery would
  /// stall completion until the vote-resend repair). The outbox is
  /// volatile — not checkpointed; after a crash the resend/vote-request
  /// machinery re-sources anything lost.
  struct VoteOutbox {
    std::vector<VoteBatchEntry> queue;
    std::vector<std::size_t> cursor;  // one per replica of the partition
  };
  std::vector<VoteOutbox> vote_outbox_;
  bool vote_flush_pending_ = false;
  /// Reused flush scratch so steady-state flushes allocate only on queue
  /// high-water growth.
  VoteBatchMsg scratch_batch_;
  /// Destination pid -> (partition, replica index), for piggybacking on
  /// unicasts addressed by process id.
  std::unordered_map<sim::ProcessId, std::pair<PartitionId, std::size_t>> peer_index_;

  std::unique_ptr<paxos::PaxosEngine> engine_;
  /// P-DUR core executor; null in the serial (cores == 1) model.
  std::unique_ptr<pdur::Executor> executor_;
  Stats stats_;
  bool tick_pending_ = false;
  /// Lifecycle trace track of this replica (kNoTrack in untraced runs).
  std::uint32_t trace_track_ = trace::kNoTrack;
};

}  // namespace sdur
