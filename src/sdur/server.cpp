#include "sdur/server.h"

#include <algorithm>

#include "audit/audit.h"
#include "util/logging.h"

namespace sdur {

namespace {
constexpr std::size_t kOwnVoteMemory = 200'000;  // completed-vote history kept

/// Paxos value kind for this server's abcast payloads is the PartTx kind
/// byte; nothing extra is needed.
}  // namespace

Server::Server(sim::Network& net, sim::ProcessId pid, sim::Location loc, ServerConfig cfg,
               paxos::GroupConfig paxos_cfg, PartitioningPtr partitioning)
    : sim::Process(net, pid, "server-p" + std::to_string(cfg.partition) + "-" +
                                 std::to_string(paxos_cfg.self_index),
                   loc),
      cfg_(std::move(cfg)),
      partitioning_(std::move(partitioning)),
      cert_(cfg_.window_capacity, cfg_.pdur.cores, cfg_.ooo_bypass),
      gsc_(cfg_.num_partitions, 0) {
  set_message_service_time(cfg_.message_service_time);
  trace_track_ = SDUR_TRACE_REGISTER(self(), name(), -1);
  if (parallel()) {
    // P-DUR replica: core 0 is the dispatcher (message ingress + delivery
    // fan-out); certification/execution work runs on the keys' home cores.
    set_core_count(cfg_.pdur.cores);
    set_message_service_time(cfg_.pdur.ingress_cost);
    executor_ = std::make_unique<pdur::Executor>(*this, cfg_.pdur);
  }
  vote_outbox_.resize(cfg_.num_partitions);
  for (PartitionId p = 0; p < cfg_.num_partitions && p < cfg_.partition_servers.size(); ++p) {
    const std::vector<sim::ProcessId>& peers = cfg_.partition_servers[p];
    vote_outbox_[p].cursor.assign(peers.size(), 0);
    for (std::size_t i = 0; i < peers.size(); ++i) peer_index_[peers[i]] = {p, i};
  }
  engine_ = std::make_unique<paxos::PaxosEngine>(
      *this, std::move(paxos_cfg), std::make_unique<paxos::InMemoryDurableLog>(),
      [this](const paxos::Value& v) { adeliver(v); });
  engine_->set_install_handler([this](const paxos::Value& blob) { install_state(blob); });
  if (batching() && cfg_.vote_piggyback) {
    // Paxos engine traffic is intra-group today, but cross-partition
    // forwards relayed through the engine (leader changes) also pass here;
    // the wrapper is identity for same-partition destinations.
    engine_->set_send_wrapper(
        [this](sim::ProcessId to, sim::Message m) { return maybe_piggyback_pid(to, std::move(m)); });
  }
}

void Server::start() {
  engine_->start();
  set_timer(cfg_.gossip_interval, [this] { gossip_tick(); });
  set_timer(cfg_.vote_resend_interval / 2, [this] { liveness_tick(); });
  if (cfg_.checkpoint_interval > 0) {
    set_timer(cfg_.checkpoint_interval, [this] { checkpoint_tick(); });
  }
}

void Server::on_message(const sim::Message& m, sim::ProcessId from) {
  if (paxos::PaxosEngine::handles(m.type)) {
    engine_->handle_message(m, from);
    return;
  }
  util::Reader r(m.payload);
  switch (m.type) {
    case msgtype::kCommitReq: {
      handle_commit_request(CommitReqMsg::decode(r).tx);
      break;
    }
    case msgtype::kReadReq: {
      const auto msg = ReadReqMsg::decode(r);
      handle_read(msg.reqid, from, msg.key, msg.snapshot);
      break;
    }
    case msgtype::kReadRouted: {
      const auto msg = ReadRoutedMsg::decode(r);
      schedule_read(msg.reqid, msg.client, msg.key, msg.snapshot);
      break;
    }
    case msgtype::kVote: {
      handle_vote(VoteMsg::decode(r));
      break;
    }
    case msgtype::kVoteBatch: {
      handle_vote_batch(VoteBatchMsg::decode(r));
      break;
    }
    case msgtype::kVotePiggyback: {
      const auto env = VotePiggybackMsg::decode(r);
      handle_vote_batch(env.batch);
      // Re-dispatch the carried message as if it arrived alone (Paxos
      // types route through the engine at the top of this function).
      const sim::Message inner{
          env.inner_type,
          sim::Payload(util::Bytes(env.inner_payload.begin(), env.inner_payload.end()))};
      on_message(inner, from);
      break;
    }
    case msgtype::kVoteRequest: {
      const auto msg = VoteRequestMsg::decode(r);
      auto it = own_votes_.find(msg.id);
      if (it != own_votes_.end()) {
        send(from,
             maybe_piggyback_pid(from, VoteMsg{msg.id, cfg_.partition, it->second}.to_message()));
      }
      break;
    }
    case msgtype::kGossipSC: {
      const auto msg = GossipSCMsg::decode(r);
      if (msg.partition < gsc_.size()) gsc_[msg.partition] = std::max(gsc_[msg.partition], msg.sc);
      break;
    }
    case msgtype::kSnapshotReq: {
      const auto msg = SnapshotReqMsg::decode(r);
      SnapshotRespMsg resp;
      resp.reqid = msg.reqid;
      resp.snapshot = gsc_;
      resp.snapshot[cfg_.partition] = cert_.stable();
      send(from, resp.to_message());
      break;
    }
    default:
      break;
  }
}

// --- Submission (Algorithm 2, submit) ---------------------------------------

void Server::remember_outcome(TxId id, Outcome o) {
  auto [it, inserted] = outcomes_.try_emplace(id, o);
  if (!inserted) return;
  outcomes_order_.push_back(id);
  while (outcomes_order_.size() > kOwnVoteMemory) {
    outcomes_.erase(outcomes_order_.front());
    outcomes_order_.pop_front();
  }
}

void Server::handle_commit_request(Transaction tx) {
  // Client retry after a lost outcome message: answer from memory; the
  // transaction must not run twice.
  if (auto it = outcomes_.find(tx.id); it != outcomes_.end()) {
    send(tx.client, OutcomeMsg{tx.id, it->second}.to_message());
    return;
  }
  // Duplicate commit request for a transaction still in flight here:
  // dropping it is safe — the original submission is still being driven
  // by the Paxos resubmission machinery.
  if (seen_.contains(tx.id)) return;
  // partitions(t): every partition with a non-bottom snapshot entry; since
  // there are no blind writes, written partitions were also read.
  std::vector<PartitionId> involved;
  involved.reserve(tx.snapshots.size());
  for (const auto& [p, st] : tx.snapshots) {
    if (st != kNoSnapshot) involved.push_back(p);
  }
  for (const auto& op : tx.writeset) {
    const PartitionId p = partitioning_->partition_of(op.key);
    if (tx.snapshot_of(p) == kNoSnapshot) involved.push_back(p);  // defensive
  }
  std::sort(involved.begin(), involved.end());
  involved.erase(std::unique(involved.begin(), involved.end()), involved.end());
  if (involved.empty()) {
    // Nothing read or written: trivially commit.
    send(tx.client, OutcomeMsg{tx.id, Outcome::kCommit}.to_message());
    return;
  }

  SDUR_TRACE_MARK(trace_track_, trace::Point::kTxHandle, tx.id, now(), involved.size());
  const bool own_involved =
      std::binary_search(involved.begin(), involved.end(), cfg_.partition);
  const sim::ProcessId contact =
      own_involved ? self() : cfg_.partition_servers[involved.front()].front();

  sim::Time max_remote_delay = 0;
  for (PartitionId p : involved) {
    if (p == cfg_.partition) continue;
    PartTx part = project(tx, p, involved);
    part.contact = contact;
    abcast(p, part);
    if (p < cfg_.partition_delay_estimate.size()) {
      max_remote_delay = std::max(max_remote_delay, cfg_.partition_delay_estimate[p]);
    }
  }
  if (own_involved) {
    PartTx part = project(tx, cfg_.partition, involved);
    part.contact = contact;
    const sim::Time delay = cfg_.fixed_delay > 0 ? cfg_.fixed_delay : max_remote_delay;
    if (cfg_.delaying_enabled && involved.size() > 1 && delay > 0) {
      // Section IV-D: delay the local broadcast of a global transaction by
      // the estimated time for the remote partitions to receive it.
      const paxos::Value value = part.encode();
      set_timer(delay, [this, value] { engine_->propose(value); });
    } else {
      abcast(cfg_.partition, part);
    }
  }
}

PartTx Server::project(const Transaction& tx, PartitionId p,
                       const std::vector<PartitionId>& involved) const {
  PartTx t;
  t.kind = PartTx::Kind::kTxn;
  t.id = tx.id;
  t.client = tx.client;
  t.involved = involved;
  t.snapshot = tx.snapshot_of(p);
  std::vector<Key> rs;
  for (Key k : tx.readset) {
    if (partitioning_->partition_of(k) == p) rs.push_back(k);
  }
  t.readset = cfg_.bloom_readsets ? util::KeySet::bloom(rs, cfg_.bloom_fp_rate)
                                  : util::KeySet::exact(rs);
  std::vector<Key> ws_keys;
  for (const auto& op : tx.writeset) {
    if (partitioning_->partition_of(op.key) == p) {
      ws_keys.push_back(op.key);
      t.writes.push_back(op);
    }
  }
  t.write_keys = util::KeySet::exact(std::move(ws_keys));
  return t;
}

void Server::abcast(PartitionId p, const PartTx& t) {
  paxos::Value value = t.encode();
  if (p == cfg_.partition) {
    engine_->propose(std::move(value));
    return;
  }
  // Hand the value to the remote group's bootstrap contact; its engine
  // relays to the current leader if leadership moved.
  const sim::ProcessId target = cfg_.partition_servers[p].front();
  send(target, maybe_piggyback_pid(target, paxos::Forward{std::move(value)}.to_message()));
}

void Server::broadcast_reorder_threshold(std::uint32_t k) {
  engine_->propose(PartTx::make_set_threshold(k).encode());
}

// --- Delivery (Algorithm 2, lines 15-33) -------------------------------------

void Server::adeliver(const paxos::Value& value) {
  PartTx t = PartTx::decode(value);
  // Control values (ticks, abort requests) are nearly free to process.
  sim::Time cost = sim::usec(2);
  if (t.kind == PartTx::Kind::kTxn) {
    // P-DUR: the dispatcher only routes the transaction to its home cores;
    // certification + apply cost is charged on those cores instead.
    cost = parallel() ? cfg_.pdur.dispatch_cost
                      : cfg_.certification_cost +
                            cfg_.apply_cost_per_write * static_cast<sim::Time>(t.writes.size());
    // The mark's timestamp is the enqueue time; kTxCertified later carries
    // this same cost in its aux, letting export split the interval between
    // the two marks into CPU queue wait and charged service time.
    SDUR_TRACE_MARK(trace_track_, trace::Point::kTxDeliver, t.id, now(), 0);
  }
  enqueue_work(cost, [this, t = std::move(t)]() mutable { process_delivery(std::move(t)); });
}

void Server::process_delivery(PartTx t) {
  ++dc_;  // every delivered value advances the delivery counter
  ++stats_.delivered;

  switch (t.kind) {
    case PartTx::Kind::kTick:
      break;  // pure DC advance

    case PartTx::Kind::kSetThreshold:
      // Delivered through the same total order as transactions, so every
      // replica switches thresholds at the same delivery index.
      cfg_.reorder_threshold = t.threshold;
      break;

    case PartTx::Kind::kAbortRequest: {
      if (seen_.contains(t.id)) {
        // The transaction did reach this partition; our vote may have been
        // lost — resend it instead of aborting (Section IV-F: act on
        // whichever of {transaction, abort request} is delivered first).
        auto it = own_votes_.find(t.id);
        if (it != own_votes_.end()) {
          PartTx stub;
          stub.id = t.id;
          stub.involved = t.involved;
          send_vote_to_peers(stub, it->second);
        }
      } else {
        poisoned_.insert(t.id);
        PartTx stub;
        stub.id = t.id;
        stub.involved = t.involved;
        record_own_vote(stub, Outcome::kAbort);
        send_vote_to_peers(stub, Outcome::kAbort);
      }
      break;
    }

    case PartTx::Kind::kTxn: {
      if (seen_.contains(t.id)) break;  // duplicate after leader change
      seen_.insert(t.id);
      const std::uint64_t rt = dc_ + cfg_.reorder_threshold;
      Outcome vote = Outcome::kAbort;
      Certifier::Result res;
      SDUR_AUDIT(Version audit_version = 0);
      // Certifier and ParallelWindow attribute their conflict-check
      // instants to this delivery via the tracer context.
      SDUR_TRACE_SET_CONTEXT(trace_track_, t.id, now());
      if (!poisoned_.contains(t.id)) {
        res = cert_.process(t, rt, dc_);
        vote = res.outcome;
        if (res.stale_snapshot) ++stats_.stale_snapshot_aborts;
        if (res.reordered) ++stats_.reordered;
        if (vote == Outcome::kCommit) {
          PendingEntry& inserted = cert_.at(res.position);
          inserted.delivered_at = now();
          inserted.last_vote_resend = now();
          SDUR_AUDIT(audit_version = res.version);
          if (res.parked) {
            // Bypass gate: this local write-conflicts with a pending entry
            // and waits for the completed-global watermark to cover its
            // park bound; the sweep releases it from drain_pending.
            ++stats_.parked_locals;
            SDUR_TRACE_INSTANT(trace_track_, trace::Point::kTxParked, t.id, now(),
                               static_cast<std::uint64_t>(inserted.park_until));
          }
          // NOTE: park bounds are deliberately NOT cross-checked between
          // replicas. The bound is computed over the *pending* list, whose
          // contents legitimately differ with vote-arrival timing (a global
          // completed at one replica can still be pending at another), so
          // bounds may diverge by exactly the completed prefix. That is
          // timing-only: the bypass-serial-equivalence check below verifies
          // the property that actually matters at every sweep.
        }
      }
      SDUR_TRACE_CLEAR_CONTEXT();
      SDUR_TRACE_STMT({
        const sim::Time charged =
            parallel() ? cfg_.pdur.dispatch_cost
                       : cfg_.certification_cost +
                             cfg_.apply_cost_per_write * static_cast<sim::Time>(t.writes.size());
        SDUR_TRACE_MARK(trace_track_, trace::Point::kTxCertified, t.id, now(),
                        trace::cert_aux(t.is_global(), vote == Outcome::kCommit, charged));
      });
      // Certification is a pure function of the delivered sequence: every
      // replica of this partition must reach the same verdict at this
      // delivery index. This holds in the P-DUR model too — the verdict is
      // computed here, in delivery order, on the dispatcher; the cores only
      // decide when its effects become visible.
      SDUR_AUDIT(audit::Oracle::instance().record_certified(
          cfg_.partition, dc_, t.id, static_cast<std::uint8_t>(vote), audit_version, self(),
          now()));
      SDUR_AUDIT_NOTE(now(), name() << " dc=" << dc_ << " certified tx " << t.id << " -> "
                                    << to_string(vote) << " v" << audit_version
                                    << (t.is_global() ? " (global)" : ""));
      if (parallel()) {
        // P-DUR: charge the certification/apply work on the transaction's
        // home cores and defer the verdict's effects (vote messages, abort
        // answer, completion) until every involved core finished. The
        // pending entry stays not-ready so drain_pending cannot complete
        // it early.
        if (vote == Outcome::kCommit) cert_.at(res.position).ready = false;
        if (res.cores.size() > 1) {
          ++stats_.pdur_cross_core;
        } else {
          ++stats_.pdur_single_core;
        }
        sim::Time work = cfg_.certification_cost;
        if (vote == Outcome::kCommit) {
          work += cfg_.apply_cost_per_write * static_cast<sim::Time>(t.writes.size());
        }
        const Version version = res.version;
        const std::vector<pdur::CoreId> cores = std::move(res.cores);
        executor_->run(cores, work, [this, t = std::move(t), vote, version] {
          finish_core_work(t, vote, version);
        });
        break;
      }
      if (t.is_global()) {
        record_own_vote(t, vote);
        send_vote_to_peers(t, vote);
      }
      if (vote == Outcome::kAbort) {
        // Failed certification: never entered the pending list, has no
        // version slot — just account and answer the client.
        ++stats_.aborted;
        votes_.erase(t.id);
        remember_outcome(t.id, Outcome::kAbort);
        SDUR_AUDIT(audit::Oracle::instance().record_completion(
            t.id, cfg_.partition, audit::Oracle::kAbort, t.involved, self(), now()));
        if (t.contact == self() && t.client != 0) {
          SDUR_TRACE_MARK(trace_track_, trace::Point::kTxCompleted, t.id, now(), 0);
          send(t.client, OutcomeMsg{t.id, Outcome::kAbort}.to_message());
        }
      }
      break;
    }
  }
  drain_pending();
}

void Server::finish_core_work(const PartTx& t, Outcome vote, Version version) {
  // Runs when every home core of the transaction finished its simulated
  // work (epoch-guarded: never after a crash). The verdict itself was
  // fixed at dispatch; only now do its effects leave the replica.
  SDUR_TRACE_MARK(trace_track_, trace::Point::kTxReady, t.id, now(), 0);
  if (vote == Outcome::kCommit) cert_.mark_ready(version);
  if (t.is_global()) {
    record_own_vote(t, vote);
    send_vote_to_peers(t, vote);
  }
  if (vote == Outcome::kAbort) {
    ++stats_.aborted;
    votes_.erase(t.id);
    remember_outcome(t.id, Outcome::kAbort);
    SDUR_AUDIT(audit::Oracle::instance().record_completion(
        t.id, cfg_.partition, audit::Oracle::kAbort, t.involved, self(), now()));
    if (t.contact == self() && t.client != 0) {
      SDUR_TRACE_MARK(trace_track_, trace::Point::kTxCompleted, t.id, now(), 0);
      send(t.client, OutcomeMsg{t.id, Outcome::kAbort}.to_message());
    }
  }
  drain_pending();
}

void Server::complete(const PendingEntry& e, Outcome outcome) {
  const PartTx& t = e.tx;
  // 2PC safety and atomicity: the outcome must match every other replica's
  // and partition's, and a global commit requires a commit vote from every
  // involved partition (checked inside the oracle).
  SDUR_AUDIT(audit::Oracle::instance().record_completion(
      t.id, cfg_.partition,
      outcome == Outcome::kCommit ? audit::Oracle::kCommit : audit::Oracle::kAbort, t.involved,
      self(), now()));
  SDUR_AUDIT_NOTE(now(), name() << " completed tx " << t.id << " -> " << to_string(outcome)
                                << " v" << e.version);
  if (outcome == Outcome::kCommit) {
    // Writes are applied at the version pre-assigned at certification;
    // apply cost was already charged when the delivery was enqueued.
    for (const auto& op : t.writes) store_.put(op.key, op.value, e.version);
    cert_.resolve(e, true);
    if (t.is_global()) {
      ++stats_.committed_global;
    } else {
      ++stats_.committed_local;
    }
    if ((cert_.stable() & 0x3FFFF) == 0) {
      store_.gc(cert_.stable() - static_cast<Version>(cfg_.window_capacity));
    }
  } else {
    cert_.resolve(e, false);
    ++stats_.aborted;
  }
  // Resolution may have advanced the stable prefix either way.
  service_deferred_reads();
  votes_.erase(t.id);
  remember_outcome(t.id, outcome);
  if (t.contact == self() && t.client != 0) {
    if (t.is_global()) {
      // Certification verdict to all-votes-in + reorder threshold cleared.
      SDUR_TRACE_SPAN(trace_track_, trace::Point::kVoteWait, t.id, e.delivered_at, now(), 0, -1);
    }
    SDUR_TRACE_MARK(trace_track_, trace::Point::kTxCompleted, t.id, now(),
                    outcome == Outcome::kCommit ? 1 : 0);
    send(t.client, OutcomeMsg{t.id, outcome}.to_message());
  }
}

void Server::schedule_threshold_tick() {
  // The head global has all its votes but must wait for dc to reach its
  // reorder threshold (Algorithm 2, line 29). Under load the workload
  // advances the counter by itself; if the partition goes idle, the
  // leader proposes enough no-op ticks to cover the deficit in one
  // broadcast round. The timer re-arms until the head unblocks.
  if (tick_pending_ || !engine_->is_leader()) return;
  tick_pending_ = true;
  const std::uint64_t dc_at_schedule = dc_;
  set_timer(cfg_.tick_interval, [this, dc_at_schedule] {
    tick_pending_ = false;
    const bool blocked = !cert_.empty() && cert_.head().ready && cert_.head().tx.is_global() &&
                         has_all_votes(cert_.head()) && dc_ < cert_.head().rt;
    if (!blocked) return;
    if (dc_ == dc_at_schedule) {
      // Genuinely idle: tick the whole deficit.
      const std::uint64_t deficit = std::min<std::uint64_t>(cert_.head().rt - dc_, 256);
      stats_.ticks_sent += deficit;
      const paxos::Value tick = PartTx::make_tick().encode();
      for (std::uint64_t i = 0; i < deficit; ++i) engine_->propose(tick);
    } else {
      schedule_threshold_tick();  // traffic advanced dc; re-check later
    }
  });
}

void Server::drain_pending() {
  // Legacy (speculation off): one in-order drain plus one bypass sweep —
  // bit-identical to before the speculation refactor. With speculation on,
  // a sweep that speculated or resolved something can unblock the in-order
  // drain (the head changed), so the passes interleave until a fixpoint.
  bool progress = true;
  while (progress) {
    drain_in_order();
    if (cfg_.ooo_bypass) bypass_sweep();
    progress = cfg_.speculation && spec_sweep();
  }
}

void Server::drain_in_order() {
  while (!cert_.empty()) {
    PendingEntry& head = cert_.head();
    // P-DUR: the head's core work is still in flight — nothing behind it
    // may complete either (completion is in version order).
    if (!head.ready) break;
    if (!head.tx.is_global()) {
      // Outstanding speculative versions never gate a local: reads only
      // serve the stable prefix, which stalls below every unresolved
      // speculative version, so the local's snapshot (and hence its
      // status-blind verdict) cannot depend on how the specs resolve.
      // Its writes land above theirs in version order; a later rollback
      // erases mid-chain underneath them (see DESIGN.md).
      const PendingEntry e = cert_.pop_head();
      complete(e, Outcome::kCommit);
      continue;
    }
    if (!has_all_votes(head)) break;  // spec_sweep may speculate it instead
    if (dc_ < head.rt) {
      // Vote-complete but threshold-blocked (line 29). If the partition
      // goes idle the delivery counter would never advance; tick it.
      schedule_threshold_tick();
      break;
    }
    const Outcome outcome = combined_outcome(head);
    const PendingEntry e = cert_.pop_head();
    complete(e, outcome);
  }
}

void Server::bypass_sweep() {
  // Out-of-order local commit: the in-order drain above stalled (head
  // global waiting on votes or its threshold, or P-DUR head core work in
  // flight) — commit every ready local whose park bound the
  // completed-global watermark covers. Front-to-back order keeps
  // write-conflicting locals in ascending version order; everything a
  // swept local leaps is write-disjoint (and read-disjoint, bar
  // snapshot-bottom blind writes whose projected readset is empty here),
  // so the schedule stays equivalent to the delivery-order serial one.
  // Sweep completions never unblock the head (votes and thresholds are
  // untouched), so one pass after the drain suffices.
  std::size_t pos = cert_.next_bypassable(0);
  while (pos != Certifier::npos) {
    // Replay the strict delivery-order gate: nothing still ahead of a
    // swept local may write-conflict with it (the store applies writes in
    // version order), and any pending write it *read* must sit within its
    // snapshot — the cross-replica race certification already admits: the
    // read was served by a replica where that writer had completed. A
    // bloom readset cannot be checked key-exactly, so its read clause is
    // skipped (the park gate already treated it as a conservative hit).
    SDUR_AUDIT({
      const PendingEntry& local = cert_.at(pos);
      for (std::size_t k = 0; k < pos; ++k) {
        const PendingEntry& ahead = cert_.at(k);
        SDUR_AUDIT_CHECK("certifier", "bypass-serial-equivalence",
                         !local.tx.write_keys.intersects(ahead.tx.write_keys),
                         "local tx " << local.tx.id << " (v" << local.version
                                     << ") bypasses write-conflicting pending tx " << ahead.tx.id
                                     << " (v" << ahead.version << ")");
        SDUR_AUDIT_CHECK("certifier", "bypass-serial-equivalence",
                         local.tx.readset.is_bloom() ||
                             !local.tx.readset.intersects(ahead.tx.write_keys) ||
                             ahead.version <= local.tx.snapshot,
                         "local tx " << local.tx.id << " (v" << local.version
                                     << ", st=" << local.tx.snapshot
                                     << ") bypasses pending tx " << ahead.tx.id << " (v"
                                     << ahead.version << ") whose write it read");
      }
    });
    const PendingEntry e = cert_.take_at(pos);
    ++stats_.bypassed_locals;
    SDUR_TRACE_INSTANT(trace_track_, trace::Point::kTxBypassed, e.tx.id, now(),
                       static_cast<std::uint64_t>(pos));
    complete(e, Outcome::kCommit);
    pos = cert_.next_bypassable(pos);
  }
}

// --- Speculative global commit (cfg.techniques.speculation) -------------------

bool Server::speculate_head() {
  if (cert_.empty()) return false;
  PendingEntry& head = cert_.head();
  if (!head.ready || !head.tx.is_global()) return false;
  if (has_all_votes(head) && dc_ >= head.rt) return false;  // drain_in_order's job
  PendingEntry e = cert_.pop_head();
  // Apply the writes as speculative versions immediately — the entry left
  // the pending list, so everything queued behind it completes without
  // waiting for this global's votes (no head-of-line blocking). The
  // reorder-threshold gate is deliberately skipped from here on:
  // reordering exists to let locals complete ahead of a blocked global,
  // which is moot once the global vacated the head (see DESIGN.md).
  for (const auto& op : e.tx.writes) store_.put_speculative(op.key, op.value, e.version);
  SpecEntry s;
  s.version = e.version;
  s.rt = e.rt;
  s.delivered_at = e.delivered_at;
  s.last_vote_resend = e.last_vote_resend;
  s.abort_requested = e.abort_requested;
  s.tx = std::move(e.tx);
  spec_ids_[s.tx.id] = s.version;
  ++stats_.speculated_globals;
  SDUR_TRACE_MARK(trace_track_, trace::Point::kTxSpeculated, s.tx.id, now(), 1);
  SDUR_AUDIT_NOTE(now(), name() << " speculated global tx " << s.tx.id << " v" << s.version);
  spec_.emplace(s.version, std::move(s));
  return true;
}

bool Server::spec_sweep() {
  bool progress = false;
  // Chained speculation: successive eligible global heads vacate in
  // version order (MVStore requires per-key ascending puts, which the
  // head-only rule guarantees).
  while (speculate_head()) progress = true;
  // Out-of-order finalize: each speculated global resolves the moment its
  // own votes complete — not behind earlier specs still waiting (slot
  // resolution and the stable prefix keep reads safe regardless of the
  // resolution order). The rescan after every resolution keeps iteration
  // valid across the erase inside finalize/rollback; spec_ stays small.
  bool resolved = true;
  while (resolved) {
    resolved = false;
    for (const auto& [v, s] : spec_) {
      if (!has_all_votes(s.tx)) continue;
      if (combined_outcome(s.tx) == Outcome::kCommit) {
        finalize_spec(v);
      } else {
        rollback_spec(v);
      }
      resolved = true;
      progress = true;
      break;
    }
  }
  return progress;
}

void Server::finalize_spec(Version v) {
  auto it = spec_.find(v);
  if (it == spec_.end()) return;
  SpecEntry s = std::move(it->second);
  spec_.erase(it);
  spec_ids_.erase(s.tx.id);
  SDUR_AUDIT(audit::Oracle::instance().record_completion(
      s.tx.id, cfg_.partition, audit::Oracle::kCommit, s.tx.involved, self(), now()));
  SDUR_AUDIT_NOTE(now(), name() << " finalized speculated tx " << s.tx.id << " -> commit v"
                                << s.version);
  // The writes are already in the store at s.version: promote them (drop
  // the undo record) and resolve the slot so the stable prefix can cover
  // them — only now can a read observe the versions.
  store_.promote(v);
  cert_.resolve(v, s.tx.id, true);
  ++stats_.spec_commits;
  ++stats_.committed_global;
  if ((cert_.stable() & 0x3FFFF) == 0) {
    store_.gc(cert_.stable() - static_cast<Version>(cfg_.window_capacity));
  }
  service_deferred_reads();
  votes_.erase(s.tx.id);
  remember_outcome(s.tx.id, Outcome::kCommit);
  if (s.tx.contact == self() && s.tx.client != 0) {
    if (s.tx.is_global()) {
      SDUR_TRACE_SPAN(trace_track_, trace::Point::kVoteWait, s.tx.id, s.delivered_at, now(), 0,
                      -1);
    }
    SDUR_TRACE_MARK(trace_track_, trace::Point::kTxCompleted, s.tx.id, now(), 1);
    send(s.tx.client, OutcomeMsg{s.tx.id, Outcome::kCommit}.to_message());
  }
  // Missed-promotion guard: no speculative version may sit at or below the
  // resolved floor (audited + throws on violation).
  store_.audit_spec_floor(cert_.stable());
}

void Server::rollback_spec(Version v) {
  auto it = spec_.find(v);
  if (it == spec_.end()) return;
  SpecEntry s = std::move(it->second);
  spec_.erase(it);
  spec_ids_.erase(s.tx.id);
  SDUR_AUDIT(audit::Oracle::instance().record_completion(
      s.tx.id, cfg_.partition, audit::Oracle::kAbort, s.tx.involved, self(), now()));
  SDUR_AUDIT_NOTE(now(), name() << " rolled back speculated tx " << s.tx.id << " v" << s.version);
  // Undo the speculative versions (mid-chain erase: entries behind the
  // spec may have committed at higher versions already) and resolve the
  // slot as aborted.
  store_.rollback(v);
  cert_.resolve(v, s.tx.id, false);
  ++stats_.aborted;
  ++stats_.spec_aborts;
  SDUR_TRACE_INSTANT(trace_track_, trace::Point::kTxSpecAbort, s.tx.id, now(),
                     static_cast<std::uint64_t>(s.version));
  service_deferred_reads();
  votes_.erase(s.tx.id);
  remember_outcome(s.tx.id, Outcome::kAbort);
  if (s.tx.contact == self() && s.tx.client != 0) {
    if (s.tx.is_global()) {
      SDUR_TRACE_SPAN(trace_track_, trace::Point::kVoteWait, s.tx.id, s.delivered_at, now(), 0,
                      -1);
    }
    SDUR_TRACE_MARK(trace_track_, trace::Point::kTxCompleted, s.tx.id, now(), 0);
    send(s.tx.client, OutcomeMsg{s.tx.id, Outcome::kAbort}.to_message());
  }
  store_.audit_spec_floor(cert_.stable());
}

// --- Votes --------------------------------------------------------------------

void Server::record_own_vote(const PartTx& t, Outcome v) {
  auto [it, inserted] = own_votes_.try_emplace(t.id, v);
  if (!inserted) return;
  // One vote per (transaction, partition), identical across the
  // partition's replicas — votes may only differ *between* partitions.
  SDUR_AUDIT(audit::Oracle::instance().record_vote(
      t.id, cfg_.partition,
      v == Outcome::kCommit ? audit::Oracle::kCommit : audit::Oracle::kAbort, self(), now()));
  own_votes_order_.push_back(t.id);
  while (own_votes_order_.size() > kOwnVoteMemory) {
    own_votes_.erase(own_votes_order_.front());
    own_votes_order_.pop_front();
  }
  // Record into VOTES as well so has_all_votes sees the own-partition vote
  // uniformly.
  votes_[t.id][cfg_.partition] = v;
}

void Server::send_vote_to_peers(const PartTx& t, Outcome v) {
  if (batching()) {
    for (PartitionId p : t.involved) {
      if (p == cfg_.partition) continue;
      enqueue_vote(p, t.id, v);
    }
    return;
  }
  const VoteMsg vote{t.id, cfg_.partition, v};
  const sim::Message msg = vote.to_message();
  for (PartitionId p : t.involved) {
    if (p == cfg_.partition) continue;
    for (sim::ProcessId peer : cfg_.partition_servers[p]) send(peer, msg);
  }
}

bool Server::has_all_votes(const PartTx& t) const {
  auto it = votes_.find(t.id);
  if (it == votes_.end()) return false;
  for (PartitionId part : t.involved) {
    if (!it->second.contains(part)) return false;
  }
  return true;
}

bool Server::has_all_votes(const PendingEntry& p) const { return has_all_votes(p.tx); }

Outcome Server::combined_outcome(const PartTx& t) const {
  auto it = votes_.find(t.id);
  if (it == votes_.end()) return Outcome::kAbort;
  for (PartitionId part : t.involved) {
    auto vit = it->second.find(part);
    if (vit == it->second.end() || vit->second == Outcome::kAbort) return Outcome::kAbort;
  }
  return Outcome::kCommit;
}

Outcome Server::combined_outcome(const PendingEntry& p) const { return combined_outcome(p.tx); }

bool Server::apply_vote(TxId id, PartitionId partition, Outcome vote) {
  // Votes for transactions already completed here are stale; only keep
  // votes for pending, speculated, or not-yet-delivered transactions. The
  // certifier's id index answers "still pending?" in one hash probe — this
  // used to be an O(pending) scan per incoming vote.
  const bool completed =
      seen_.contains(id) && !cert_.pending_contains(id) && !spec_ids_.contains(id);
  if (completed) {
    ++stats_.stale_votes_dropped;
    return false;
  }
  auto& entry = votes_[id];
  auto [it, inserted] = entry.try_emplace(partition, vote);
  if (!inserted && it->second == Outcome::kUnknown) it->second = vote;
  return true;
}

void Server::handle_vote(const VoteMsg& m) {
  // Stale votes skip the drain entirely (legacy early return): an extra
  // drain_pending could arm the threshold tick at a different time and
  // break cross-build determinism.
  if (apply_vote(m.id, m.partition, m.vote)) drain_pending();
}

void Server::handle_vote_batch(const VoteBatchMsg& m) {
  // One drain covers the whole batch: completion work amortizes over N
  // votes instead of running once per vote message.
  bool recorded = false;
  for (const VoteBatchEntry& e : m.votes) {
    recorded = apply_vote(e.id, m.partition, e.vote) || recorded;
  }
  if (recorded) drain_pending();
}

// --- Vote batching (see DESIGN.md "Vote exchange & batching") -----------------

void Server::enqueue_vote(PartitionId p, TxId id, Outcome v) {
  if (p >= vote_outbox_.size()) return;
  VoteOutbox& box = vote_outbox_[p];
  box.queue.push_back(VoteBatchEntry{id, v});
  if (box.queue.size() >= cfg_.vote_batch_max) {
    flush_votes_for(p);
    return;
  }
  if (!vote_flush_pending_) {
    // One timer serves every destination queue; epoch-guarded, so a crash
    // kills it and on_recover starts from an empty outbox.
    vote_flush_pending_ = true;
    set_timer(cfg_.vote_batch_interval, [this] { flush_votes(); });
  }
}

void Server::flush_votes() {
  vote_flush_pending_ = false;
  for (PartitionId p = 0; p < static_cast<PartitionId>(vote_outbox_.size()); ++p) {
    flush_votes_for(p);
  }
}

void Server::flush_votes_for(PartitionId p) {
  VoteOutbox& box = vote_outbox_[p];
  if (box.queue.empty()) return;
  const std::vector<sim::ProcessId>& peers = cfg_.partition_servers[p];
  std::size_t min_cursor = box.queue.size();
  bool uniform = true;
  for (std::size_t c : box.cursor) {
    min_cursor = std::min(min_cursor, c);
    uniform = uniform && c == box.cursor.front();
  }
  if (min_cursor < box.queue.size()) {
    scratch_batch_.partition = cfg_.partition;
    if (uniform) {
      // Every replica is missing the same suffix: encode once, share the
      // refcounted payload across the fan-out.
      scratch_batch_.votes.assign(box.queue.begin() + static_cast<std::ptrdiff_t>(min_cursor),
                                  box.queue.end());
      const sim::Message msg = scratch_batch_.to_message();
      for (sim::ProcessId peer : peers) send(peer, msg);
      stats_.vote_batches_sent += peers.size();
    } else {
      // Piggybacks already carried prefixes to some replicas: send each
      // replica only what it is missing.
      for (std::size_t i = 0; i < peers.size() && i < box.cursor.size(); ++i) {
        if (box.cursor[i] >= box.queue.size()) continue;
        scratch_batch_.votes.assign(box.queue.begin() + static_cast<std::ptrdiff_t>(box.cursor[i]),
                                    box.queue.end());
        send(peers[i], scratch_batch_.to_message());
        ++stats_.vote_batches_sent;
      }
    }
    stats_.votes_batched += box.queue.size() - min_cursor;
    SDUR_TRACE_INSTANT(trace_track_, trace::Point::kVoteFlush, p, now(),
                       box.queue.size() - min_cursor);
  }
  box.queue.clear();
  std::fill(box.cursor.begin(), box.cursor.end(), 0);
}

sim::Message Server::maybe_piggyback(PartitionId p, std::size_t replica_index, sim::Message m) {
  if (!batching() || !cfg_.vote_piggyback) return m;
  if (m.type == msgtype::kVoteBatch || m.type == msgtype::kVotePiggyback) return m;
  if (p == cfg_.partition || p >= vote_outbox_.size()) return m;
  VoteOutbox& box = vote_outbox_[p];
  if (replica_index >= box.cursor.size()) return m;
  std::size_t& cur = box.cursor[replica_index];
  if (cur >= box.queue.size()) return m;
  VotePiggybackMsg env;
  env.inner_type = m.type;
  const util::Bytes& b = m.payload.bytes();
  env.inner_payload.assign(b.begin(), b.end());
  env.batch.partition = cfg_.partition;
  env.batch.votes.assign(box.queue.begin() + static_cast<std::ptrdiff_t>(cur), box.queue.end());
  stats_.votes_piggybacked += env.batch.votes.size();
  SDUR_TRACE_INSTANT(trace_track_, trace::Point::kVotePiggyback, p, now(),
                     env.batch.votes.size());
  cur = box.queue.size();
  // If every replica now has the full queue, drop it (nothing left for the
  // interval flush to send).
  bool all_caught_up = true;
  for (std::size_t c : box.cursor) all_caught_up = all_caught_up && c >= box.queue.size();
  if (all_caught_up) {
    box.queue.clear();
    std::fill(box.cursor.begin(), box.cursor.end(), 0);
  }
  return env.to_message();
}

sim::Message Server::maybe_piggyback_pid(sim::ProcessId to, sim::Message m) {
  if (!batching() || !cfg_.vote_piggyback) return m;
  const auto it = peer_index_.find(to);
  if (it == peer_index_.end()) return m;
  return maybe_piggyback(it->second.first, it->second.second, std::move(m));
}

// --- Reads ---------------------------------------------------------------------

void Server::handle_read(std::uint64_t reqid, sim::ProcessId client, Key key, Version snapshot) {
  const PartitionId p = partitioning_->partition_of(key);
  if (p != cfg_.partition) {
    // Section V: partitioning is transparent to clients connected to a
    // single server — route the read; the remote server answers the client
    // directly.
    ++stats_.reads_routed;
    const sim::ProcessId target =
        p < cfg_.read_route.size() ? cfg_.read_route[p] : cfg_.partition_servers[p].front();
    send(target, ReadRoutedMsg{reqid, client, key, snapshot}.to_message());
    return;
  }
  schedule_read(reqid, client, key, snapshot);
}

void Server::schedule_read(std::uint64_t reqid, sim::ProcessId client, Key key,
                           Version snapshot) {
  if (parallel()) {
    // P-DUR: the read runs on the key's owning core (per-core version
    // ownership) — reads of different sub-partitions proceed in parallel.
    executor_->run_read(
        key, [this, reqid, client, key, snapshot] { answer_read(reqid, client, key, snapshot); });
    return;
  }
  answer_read(reqid, client, key, snapshot);
}

void Server::answer_read(std::uint64_t reqid, sim::ProcessId client, Key key, Version snapshot) {
  const Version st = snapshot < 0 ? cert_.stable() : snapshot;
  if (st > cert_.stable()) {
    // Snapshot from gossip that this replica has not reached yet; defer
    // until enough commits have been applied.
    ++stats_.reads_deferred;
    deferred_reads_.push_back(DeferredRead{reqid, client, key, st});
    return;
  }
  ++stats_.reads_served;
  // Snapshot visibility: a read is only served at a fully-resolved
  // snapshot (st <= stable), and the returned version must be visible at
  // that snapshot — otherwise the client could observe a snapshot that
  // still grows a hole.
  SDUR_AUDIT_CHECK("server", "read-snapshot-visible", st <= cert_.stable(),
                   name() << " serves key " << key << " at snapshot " << st
                          << " above stable version " << cert_.stable());
  auto v = store_.get(key, st);
  SDUR_AUDIT_CHECK("server", "read-version-in-snapshot", !v || v->version <= st,
                   name() << " read of key " << key << " at snapshot " << st
                          << " returned version " << (v ? v->version : -1));
  ReadRespMsg resp;
  resp.reqid = reqid;
  resp.key = key;
  resp.found = v.has_value();
  if (v) resp.value = std::move(v->value);
  resp.snapshot = st;
  send(client, resp.to_message());
}

void Server::service_deferred_reads() {
  for (std::size_t i = 0; i < deferred_reads_.size();) {
    if (deferred_reads_[i].snapshot <= cert_.stable()) {
      const DeferredRead r = deferred_reads_[i];
      deferred_reads_.erase(deferred_reads_.begin() + static_cast<std::ptrdiff_t>(i));
      answer_read(r.reqid, r.client, r.key, r.snapshot);
    } else {
      ++i;
    }
  }
}

// --- Timers ----------------------------------------------------------------------

void Server::gossip_tick() {
  if (cert_.stable() != last_gossiped_sc_ && cfg_.num_partitions > 1) {
    last_gossiped_sc_ = cert_.stable();
    const sim::Message msg = GossipSCMsg{cfg_.partition, cert_.stable()}.to_message();
    for (PartitionId p = 0; p < cfg_.num_partitions; ++p) {
      if (p == cfg_.partition) continue;
      const std::vector<sim::ProcessId>& peers = cfg_.partition_servers[p];
      for (std::size_t i = 0; i < peers.size(); ++i) {
        send(peers[i], maybe_piggyback(p, i, msg));
      }
    }
  }
  set_timer(cfg_.gossip_interval, [this] { gossip_tick(); });
}

void Server::liveness_tick() {
  const sim::Time t_now = now();
  for (std::size_t i = 0; i < cert_.size(); ++i) {
    PendingEntry& p = cert_.at(i);
    if (!p.tx.is_global() || has_all_votes(p)) continue;
    if (t_now - p.last_vote_resend >= cfg_.vote_resend_interval) {
      p.last_vote_resend = t_now;
      // Re-push our vote (it may have been lost) and pull the votes we are
      // missing (the peers may have completed long ago, e.g. if this
      // replica recovered from a crash and lost its vote table).
      auto it = own_votes_.find(p.tx.id);
      if (it != own_votes_.end()) send_vote_to_peers(p.tx, it->second);
      auto votes_it = votes_.find(p.tx.id);
      for (PartitionId part : p.tx.involved) {
        if (part == cfg_.partition) continue;
        if (votes_it != votes_.end() && votes_it->second.contains(part)) continue;
        const sim::Message req = VoteRequestMsg{p.tx.id}.to_message();
        const std::vector<sim::ProcessId>& peers = cfg_.partition_servers[part];
        for (std::size_t j = 0; j < peers.size(); ++j) {
          send(peers[j], maybe_piggyback(part, j, req));
        }
      }
    }
    if (!p.abort_requested && t_now - p.delivered_at >= cfg_.missing_vote_timeout &&
        engine_->is_leader()) {
      // Suspect the submitter crashed between broadcasts: ask the silent
      // partitions to abort (or to resend their vote if they did deliver).
      p.abort_requested = true;
      ++stats_.abort_requests_sent;
      auto votes_it = votes_.find(p.tx.id);
      for (PartitionId part : p.tx.involved) {
        if (part == cfg_.partition) continue;
        if (votes_it != votes_.end() && votes_it->second.contains(part)) continue;
        abcast(part, PartTx::make_abort_request(p.tx.id, p.tx.involved));
      }
    }
  }
  // Speculated globals left the pending list but still await their votes:
  // the same resend / vote-request / abort-request liveness applies.
  for (auto& [v, s] : spec_) {
    (void)v;
    if (has_all_votes(s.tx)) continue;
    if (t_now - s.last_vote_resend >= cfg_.vote_resend_interval) {
      s.last_vote_resend = t_now;
      auto it = own_votes_.find(s.tx.id);
      if (it != own_votes_.end()) send_vote_to_peers(s.tx, it->second);
      auto votes_it = votes_.find(s.tx.id);
      for (PartitionId part : s.tx.involved) {
        if (part == cfg_.partition) continue;
        if (votes_it != votes_.end() && votes_it->second.contains(part)) continue;
        const sim::Message req = VoteRequestMsg{s.tx.id}.to_message();
        const std::vector<sim::ProcessId>& peers = cfg_.partition_servers[part];
        for (std::size_t j = 0; j < peers.size(); ++j) {
          send(peers[j], maybe_piggyback(part, j, req));
        }
      }
    }
    if (!s.abort_requested && t_now - s.delivered_at >= cfg_.missing_vote_timeout &&
        engine_->is_leader()) {
      s.abort_requested = true;
      ++stats_.abort_requests_sent;
      auto votes_it = votes_.find(s.tx.id);
      for (PartitionId part : s.tx.involved) {
        if (part == cfg_.partition) continue;
        if (votes_it != votes_.end() && votes_it->second.contains(part)) continue;
        abcast(part, PartTx::make_abort_request(s.tx.id, s.tx.involved));
      }
    }
  }
  set_timer(cfg_.vote_resend_interval / 2, [this] { liveness_tick(); });
}

// --- Checkpointing ------------------------------------------------------------------

paxos::Value Server::encode_state() const {
  util::Writer w;
  store_.encode(w);
  cert_.encode(w);
  w.u64(dc_);
  // Sets are serialized sorted so a checkpoint is a canonical function of
  // the replica's deterministic state, byte-identical across replicas.
  std::vector<TxId> seen_ids(seen_.begin(), seen_.end());
  std::sort(seen_ids.begin(), seen_ids.end());
  w.varint(seen_ids.size());
  for (TxId id : seen_ids) w.u64(id);
  std::vector<TxId> poisoned_ids(poisoned_.begin(), poisoned_.end());
  std::sort(poisoned_ids.begin(), poisoned_ids.end());
  w.varint(poisoned_ids.size());
  for (TxId id : poisoned_ids) w.u64(id);
  w.varint(own_votes_order_.size());
  for (TxId id : own_votes_order_) {
    w.u64(id);
    auto it = own_votes_.find(id);
    w.u8(static_cast<std::uint8_t>(it == own_votes_.end() ? Outcome::kUnknown : it->second));
  }
  w.varint(outcomes_order_.size());
  for (TxId id : outcomes_order_) {
    w.u64(id);
    auto it = outcomes_.find(id);
    w.u8(static_cast<std::uint8_t>(it == outcomes_.end() ? Outcome::kUnknown : it->second));
  }
  // Speculative entries ride in the checkpoint only when the technique is
  // on: speculation-off blobs stay byte-identical to the legacy format
  // (golden-digest pinned). The store blob above already carries the
  // speculative versions inside the chains; this section lets install
  // re-mark them in the undo log.
  if (cfg_.speculation) {
    w.varint(spec_.size());
    for (const auto& [v, s] : spec_) {
      w.i64(v);
      const util::Bytes tx = s.tx.encode();
      w.bytes(tx);
      w.u64(s.rt);
    }
  }
  return std::move(w).take();
}

void Server::install_state(const paxos::Value& blob) {
  util::Reader r(blob);
  store_.install(r);
  cert_.install(r);
  dc_ = r.u64();
  seen_.clear();
  const std::uint64_t nseen = r.varint();
  for (std::uint64_t i = 0; i < nseen; ++i) seen_.insert(r.u64());
  poisoned_.clear();
  const std::uint64_t npois = r.varint();
  for (std::uint64_t i = 0; i < npois; ++i) poisoned_.insert(r.u64());
  own_votes_.clear();
  own_votes_order_.clear();
  const std::uint64_t nvotes = r.varint();
  for (std::uint64_t i = 0; i < nvotes; ++i) {
    const TxId id = r.u64();
    const auto v = static_cast<Outcome>(r.u8());
    own_votes_[id] = v;
    own_votes_order_.push_back(id);
  }
  outcomes_.clear();
  outcomes_order_.clear();
  const std::uint64_t nout = r.varint();
  for (std::uint64_t i = 0; i < nout; ++i) {
    const TxId id = r.u64();
    const auto v = static_cast<Outcome>(r.u8());
    outcomes_[id] = v;
    outcomes_order_.push_back(id);
  }
  spec_.clear();
  spec_ids_.clear();
  if (cfg_.speculation) {
    const std::uint64_t nspec = r.varint();
    for (std::uint64_t i = 0; i < nspec; ++i) {
      SpecEntry s;
      s.version = r.i64();
      const std::string tx_bytes = r.bytes();
      s.tx = PartTx::decode(util::Bytes(tx_bytes.begin(), tx_bytes.end()));
      s.rt = r.u64();
      s.delivered_at = now();
      s.last_vote_resend = 0;
      s.abort_requested = false;
      spec_ids_[s.tx.id] = s.version;
      spec_.emplace(s.version, std::move(s));
    }
    // Re-mark the speculative versions in the freshly installed store so
    // a later rollback still finds its undo records.
    std::vector<Key> spec_keys;
    for (auto& [v, s] : spec_) {
      spec_keys.clear();
      for (const auto& op : s.tx.writes) {
        if (spec_keys.empty() || spec_keys.back() != op.key) spec_keys.push_back(op.key);
      }
      store_.mark_speculative(v, spec_keys);
    }
  }
  // Re-seed VOTES with our own votes; peer votes for still-pending globals
  // are re-fetched by the vote-request repair in liveness_tick.
  votes_.clear();
  for (const auto& [id, v] : own_votes_) votes_[id][cfg_.partition] = v;
  // Stamp fresh liveness bookkeeping on restored pending entries. Restored
  // entries are ready: their core work happened before the checkpoint (the
  // checkpoint itself carries the resulting state).
  for (std::size_t i = 0; i < cert_.size(); ++i) {
    PendingEntry& e = cert_.at(i);
    e.delivered_at = now();
    e.last_vote_resend = 0;
    e.abort_requested = false;
    e.ready = true;
  }
  drain_pending();
  service_deferred_reads();
}

void Server::checkpoint_tick() {
  // Pending transactions serialize into the checkpoint too (their peer
  // votes are re-fetched on install), so checkpoints can be taken under
  // load; pending lists stay short in practice.
  engine_->save_checkpoint(encode_state());
  set_timer(cfg_.checkpoint_interval, [this] { checkpoint_tick(); });
}

// --- Recovery -----------------------------------------------------------------------

void Server::on_recover() {
  store_.truncate_above(0);
  cert_.reset();
  dc_ = 0;
  spec_.clear();
  spec_ids_.clear();
  votes_.clear();
  poisoned_.clear();
  seen_.clear();
  own_votes_.clear();
  own_votes_order_.clear();
  outcomes_.clear();
  outcomes_order_.clear();
  std::fill(gsc_.begin(), gsc_.end(), 0);
  last_gossiped_sc_ = -1;
  deferred_reads_.clear();
  tick_pending_ = false;
  // The vote outbox is volatile: queued votes die with the replica (the
  // flush timer is epoch-guarded and never fires after a crash); recovery
  // replay re-votes, and the resend/vote-request repair covers the rest.
  for (VoteOutbox& box : vote_outbox_) {
    box.queue.clear();
    std::fill(box.cursor.begin(), box.cursor.end(), 0);
  }
  vote_flush_pending_ = false;
  stats_ = Stats{};
  // Replays the decided prefix through adeliver(), rebuilding SC/DC/window
  // deterministically, then rejoins the group as a follower.
  engine_->on_recover();
  set_timer(cfg_.gossip_interval, [this] { gossip_tick(); });
  set_timer(cfg_.vote_resend_interval / 2, [this] { liveness_tick(); });
  if (cfg_.checkpoint_interval > 0) {
    set_timer(cfg_.checkpoint_interval, [this] { checkpoint_tick(); });
  }
}

}  // namespace sdur
