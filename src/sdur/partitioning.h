// Partitioning schemes: map keys to partitions.
//
// The paper assumes "clients are aware of the partitioning scheme"
// (Section III-A); both clients and servers hold a shared immutable
// Partitioning instance.
#pragma once

#include <cstdint>
#include <memory>

#include "sdur/transaction.h"
#include "util/hash.h"

namespace sdur {

class Partitioning {
 public:
  explicit Partitioning(PartitionId count) : count_(count == 0 ? 1 : count) {}
  virtual ~Partitioning() = default;

  virtual PartitionId partition_of(Key k) const = 0;
  PartitionId count() const { return count_; }

 private:
  PartitionId count_;
};

using PartitioningPtr = std::shared_ptr<const Partitioning>;

/// Contiguous key ranges: partition = key / keys_per_partition, clamped.
/// Used by the microbenchmark ("one million data items per partition").
class RangePartitioning final : public Partitioning {
 public:
  RangePartitioning(PartitionId count, std::uint64_t keys_per_partition)
      : Partitioning(count), keys_per_partition_(keys_per_partition == 0 ? 1 : keys_per_partition) {}

  PartitionId partition_of(Key k) const override {
    const auto p = static_cast<PartitionId>(k / keys_per_partition_);
    return p < count() ? p : count() - 1;
  }

 private:
  std::uint64_t keys_per_partition_;
};

/// Hash partitioning over a key prefix: partition = hash(key >> shift) % P.
/// The shift groups related keys (e.g. all of a user's records share the
/// high bits, so they land in the same partition — the social network
/// benchmark partitions data "by user").
class HashPartitioning final : public Partitioning {
 public:
  explicit HashPartitioning(PartitionId count, unsigned shift = 0)
      : Partitioning(count), shift_(shift) {}

  PartitionId partition_of(Key k) const override {
    return static_cast<PartitionId>(util::mix64(k >> shift_) % count());
  }

 private:
  unsigned shift_;
};

}  // namespace sdur
