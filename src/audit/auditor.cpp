#include "audit/auditor.h"

#include <sstream>

#include "util/logging.h"

namespace sdur::audit {

Auditor& Auditor::instance() {
  static Auditor auditor;
  return auditor;
}

void Auditor::reset() {
  violations_.clear();
  total_ = 0;
  context_.clear();
}

void Auditor::note(std::int64_t time_us, std::string line) {
  std::ostringstream oss;
  oss << "[t=" << time_us << "us] " << line;
  context_.push_back(std::move(oss).str());
  while (context_.size() > context_capacity_) context_.pop_front();
}

void Auditor::report(Violation v) {
  ++total_;
  SDUR_ERROR("audit") << "INVARIANT VIOLATION [" << v.component << "/" << v.invariant << "] "
                      << v.detail << " (" << v.file << ":" << v.line << ")";
  if (violations_.size() >= kMaxStoredViolations) return;
  v.context.assign(context_.begin(), context_.end());
  violations_.push_back(std::move(v));
}

std::string Auditor::summary() const {
  std::ostringstream oss;
  oss << total_ << " invariant violation(s)";
  if (total_ > violations_.size()) oss << " (" << violations_.size() << " stored)";
  oss << "\n";
  for (const Violation& v : violations_) {
    oss << "  [" << v.component << "/" << v.invariant << "] " << v.detail << "\n    at " << v.file
        << ":" << v.line << "\n";
    if (!v.context.empty()) {
      oss << "    recent events:\n";
      for (const std::string& line : v.context) oss << "      " << line << "\n";
    }
  }
  return std::move(oss).str();
}

}  // namespace sdur::audit
