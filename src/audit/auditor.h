// Violation collector for the invariant audit layer (see audit/audit.h).
//
// The Auditor is a process-wide registry: hooks report structured
// Violations into it, protocol layers feed it recent-event notes (one
// bounded ring buffer, attached to every report so a violation carries the
// context that led up to it), and tests inspect / assert on the result.
//
// The simulator is single-threaded, so no locking. State is reset at the
// start of every simulated run (sim::Network construction) so runs in the
// same test binary do not contaminate each other; tests may also reset
// explicitly.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace sdur::audit {

/// One invariant violation. `txid` / `instance` identify the offending
/// protocol object when the reporting hook knows it (0 otherwise; the
/// detail string always carries the full coordinates).
struct Violation {
  std::string component;   // "paxos", "certifier", "server", "storage"
  std::string invariant;   // e.g. "unique-chosen", "certification-determinism"
  std::string detail;      // human-readable coordinates and disagreement
  std::string file;
  int line = 0;
  std::uint64_t txid = 0;
  std::uint64_t instance = 0;
  std::int64_t time_us = -1;                 // virtual time, -1 = unknown
  std::vector<std::string> context;          // recent event notes at report time
};

class Auditor {
 public:
  static Auditor& instance();

  /// Clears violations and the event ring (new simulated run).
  void reset();

  /// Appends a recent-event note (bounded ring buffer).
  void note(std::int64_t time_us, std::string line);

  /// Records a violation: stamps the current event context, stores it
  /// (bounded) and logs it at ERROR level.
  void report(Violation v);

  bool clean() const { return total_ == 0; }
  /// Stored violations (at most kMaxStoredViolations; total_violations()
  /// counts every report).
  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t total_violations() const { return total_; }

  /// Formatted multi-line report of all stored violations with context.
  std::string summary() const;

  void set_context_capacity(std::size_t n) { context_capacity_ = n == 0 ? 1 : n; }

 private:
  static constexpr std::size_t kMaxStoredViolations = 64;

  std::vector<Violation> violations_;
  std::uint64_t total_ = 0;
  std::deque<std::string> context_;
  std::size_t context_capacity_ = 64;
};

}  // namespace sdur::audit
