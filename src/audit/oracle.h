// Cross-replica invariant oracle.
//
// Replicas of a partition must behave as deterministic copies of one state
// machine: atomic broadcast chooses one value per instance, certification
// of the same delivery index produces the same verdict everywhere, each
// partition casts exactly one vote per global transaction, and the
// transaction's final outcome is the same on every partition it touched
// (and is commit iff every touched partition voted commit).
//
// None of these properties is observable from inside a single replica, so
// protocol hooks record their local decisions here, keyed by the protocol
// coordinate that must agree — (group, instance) for Paxos decisions,
// (partition, delivery index) for certification verdicts, (txid,
// partition) for votes, txid for outcomes. The first record establishes
// the expected value; any later disagreeing record is an invariant
// violation, reported through audit::Auditor with both sides' coordinates.
//
// The oracle deliberately speaks only in integers (ids, hashes, enum
// bytes) so it sits below every protocol layer. Tables are bounded: old
// entries are pruned FIFO once a table exceeds its cap, which in practice
// only matters for very long benchmark runs (a pruned entry means a
// missed comparison, never a false positive).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

namespace sdur::audit {

class Oracle {
 public:
  static Oracle& instance();

  /// Clears every table (new simulated run).
  void reset();

  /// Paxos learner decided `value_hash` for `instance` of group `group`.
  /// Invariant "unique-chosen": no two different values for one instance.
  void record_chosen(std::uint64_t group, std::uint64_t instance, std::uint64_t value_hash,
                     std::uint64_t replica, std::int64_t time_us);

  /// Certifier on `replica` of `partition` processed the transaction
  /// delivered at delivery-counter `dc` with the given verdict.
  /// Invariant "certification-determinism": every replica of the partition
  /// certifies the same (txid, outcome, version) at the same dc.
  void record_certified(std::uint32_t partition, std::uint64_t dc, std::uint64_t txid,
                        std::uint8_t outcome, std::int64_t version, std::uint64_t replica,
                        std::int64_t time_us);

  /// `partition` cast `vote` for global transaction `txid` (recorded by
  /// `replica`). Invariant "vote-determinism": one vote per (txid,
  /// partition), identical across the partition's replicas.
  void record_vote(std::uint64_t txid, std::uint32_t partition, std::uint8_t vote,
                   std::uint64_t replica, std::int64_t time_us);

  /// `replica` of `partition` completed `txid` with `outcome`. Invariants:
  /// "atomic-commitment" — every replica of every involved partition
  /// completes the transaction with the same outcome; and, for globals,
  /// "commit-requires-all-votes" / "abort-requires-an-abort-vote" — the
  /// outcome is commit iff every involved partition's recorded vote is
  /// commit (2PC safety). `commit` / `abort` are the Outcome enum bytes.
  void record_completion(std::uint64_t txid, std::uint32_t partition, std::uint8_t outcome,
                         const std::vector<std::uint32_t>& involved, std::uint64_t replica,
                         std::int64_t time_us);

  /// Outcome enum bytes (mirrors sdur::Outcome without depending on it).
  static constexpr std::uint8_t kCommit = 1;
  static constexpr std::uint8_t kAbort = 2;

 private:
  struct CertRecord {
    std::uint64_t txid = 0;
    std::uint8_t outcome = 0;
    std::int64_t version = 0;
    std::uint64_t replica = 0;
  };
  struct OutcomeRecord {
    std::uint8_t outcome = 0;
    std::uint32_t partition = 0;
    std::uint64_t replica = 0;
  };
  struct VoteRecord {
    std::uint8_t vote = 0;
    std::uint64_t replica = 0;
  };

  // FIFO-bounded map helper: erase oldest-inserted keys beyond the cap.
  template <typename MapT>
  void bound(MapT& map, std::deque<typename MapT::key_type>& order);

  static constexpr std::size_t kMaxEntriesPerTable = 1u << 21;

  std::map<std::pair<std::uint64_t, std::uint64_t>, std::pair<std::uint64_t, std::uint64_t>>
      chosen_;  // (group, instance) -> (value_hash, replica)
  std::deque<std::pair<std::uint64_t, std::uint64_t>> chosen_order_;

  std::map<std::pair<std::uint32_t, std::uint64_t>, CertRecord> certified_;
  std::deque<std::pair<std::uint32_t, std::uint64_t>> certified_order_;

  std::map<std::pair<std::uint64_t, std::uint32_t>, VoteRecord> votes_;
  std::deque<std::pair<std::uint64_t, std::uint32_t>> votes_order_;

  std::map<std::uint64_t, OutcomeRecord> outcomes_;
  std::deque<std::uint64_t> outcomes_order_;
};

}  // namespace sdur::audit
