// Protocol invariant audit layer — the compile-time-gated hooks.
//
// SDUR's correctness rests on properties the protocol never checks at
// runtime: certification is a deterministic function of the delivered
// sequence, atomic broadcast never chooses two values for one instance,
// reads only observe fully-resolved snapshots, and a global transaction
// commits iff every touched partition voted commit. This header provides
// the hooks that check those properties *while the system runs*, so a
// violation is reported at the moment it happens with the offending
// transaction / instance and the recent event context — not three PRs
// later when a torture test flakes.
//
// Usage:
//
//   SDUR_AUDIT_CHECK(component, invariant, condition, detail-stream);
//       Reports a structured Violation if `condition` is false. `detail`
//       is an ostream expression ("tx=" << id << ...), evaluated only on
//       failure.
//
//   SDUR_AUDIT(stmt);
//       Executes `stmt` only in audit builds. Use it for oracle
//       recording calls and any computation needed solely by a check.
//
//   SDUR_AUDIT_NOTE(time_us, detail-stream);
//       Appends a line to the recent-event ring buffer that is attached
//       to every violation report.
//
// All three compile to nothing when the CMake option SDUR_AUDIT is OFF
// (no argument evaluation, no code, no dependencies), so hooks may sit on
// the hottest protocol paths. The cross-replica invariant tables live in
// audit/oracle.h; per-process checks go through SDUR_AUDIT_CHECK directly.
//
// Adding a new invariant (see DESIGN.md "Invariant audit engine"):
//   1. Pick the load-bearing point and the cheapest expressible condition.
//   2. Per-process property -> SDUR_AUDIT_CHECK in place. Cross-replica
//      property -> add a record_*() table to audit::Oracle keyed by the
//      protocol coordinate that must agree (instance, delivery index, ...).
//   3. Cover it with a deliberately-injected bug in tests/audit_test.cpp.
#pragma once

#if defined(SDUR_AUDIT_ENABLED) && SDUR_AUDIT_ENABLED
#define SDUR_AUDIT_ON 1
#else
#define SDUR_AUDIT_ON 0
#endif

#if SDUR_AUDIT_ON

#include <sstream>
#include <utility>

#include "audit/auditor.h"
#include "audit/oracle.h"

// Expands to its argument verbatim (so audit-only declarations stay in
// scope for later checks in the same block); vanishes when audit is off.
#define SDUR_AUDIT(...) __VA_ARGS__

#define SDUR_AUDIT_CHECK(component_, invariant_, cond_, detail_)             \
  do {                                                                       \
    if (!(cond_)) {                                                          \
      std::ostringstream sdur_audit_oss_;                                    \
      sdur_audit_oss_ << detail_;                                            \
      ::sdur::audit::Violation sdur_audit_v_;                                \
      sdur_audit_v_.component = (component_);                                \
      sdur_audit_v_.invariant = (invariant_);                                \
      sdur_audit_v_.detail = sdur_audit_oss_.str();                          \
      sdur_audit_v_.file = __FILE__;                                         \
      sdur_audit_v_.line = __LINE__;                                         \
      ::sdur::audit::Auditor::instance().report(std::move(sdur_audit_v_));   \
    }                                                                        \
  } while (0)

#define SDUR_AUDIT_NOTE(time_us_, detail_)                                   \
  do {                                                                       \
    std::ostringstream sdur_audit_oss_;                                      \
    sdur_audit_oss_ << detail_;                                              \
    ::sdur::audit::Auditor::instance().note((time_us_), sdur_audit_oss_.str()); \
  } while (0)

#else  // !SDUR_AUDIT_ON

#define SDUR_AUDIT(...) ((void)0)
#define SDUR_AUDIT_CHECK(component_, invariant_, cond_, detail_) ((void)0)
#define SDUR_AUDIT_NOTE(time_us_, detail_) ((void)0)

#endif  // SDUR_AUDIT_ON
