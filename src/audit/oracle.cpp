#include "audit/oracle.h"

#include <sstream>

#include "audit/auditor.h"

namespace sdur::audit {

namespace {

const char* outcome_name(std::uint8_t o) {
  switch (o) {
    case Oracle::kCommit:
      return "commit";
    case Oracle::kAbort:
      return "abort";
    default:
      return "unknown";
  }
}

void report(const char* component, const char* invariant, std::uint64_t txid,
            std::uint64_t instance, std::int64_t time_us, const std::string& detail,
            const char* file, int line) {
  Violation v;
  v.component = component;
  v.invariant = invariant;
  v.txid = txid;
  v.instance = instance;
  v.time_us = time_us;
  v.detail = detail;
  v.file = file;
  v.line = line;
  Auditor::instance().report(std::move(v));
}

}  // namespace

Oracle& Oracle::instance() {
  static Oracle oracle;
  return oracle;
}

void Oracle::reset() {
  chosen_.clear();
  chosen_order_.clear();
  certified_.clear();
  certified_order_.clear();
  votes_.clear();
  votes_order_.clear();
  outcomes_.clear();
  outcomes_order_.clear();
}

template <typename MapT>
void Oracle::bound(MapT& map, std::deque<typename MapT::key_type>& order) {
  while (order.size() > kMaxEntriesPerTable) {
    map.erase(order.front());
    order.pop_front();
  }
}

void Oracle::record_chosen(std::uint64_t group, std::uint64_t instance, std::uint64_t value_hash,
                           std::uint64_t replica, std::int64_t time_us) {
  const auto key = std::make_pair(group, instance);
  auto [it, inserted] = chosen_.try_emplace(key, value_hash, replica);
  if (inserted) {
    chosen_order_.push_back(key);
    bound(chosen_, chosen_order_);
    return;
  }
  if (it->second.first == value_hash) return;
  std::ostringstream oss;
  oss << "two values chosen for instance " << instance << " of group " << std::hex << group
      << std::dec << ": replica " << it->second.second << " decided value#" << std::hex
      << it->second.first << ", replica " << std::dec << replica << " decided value#" << std::hex
      << value_hash;
  report("paxos", "unique-chosen", 0, instance, time_us, std::move(oss).str(), __FILE__, __LINE__);
}

void Oracle::record_certified(std::uint32_t partition, std::uint64_t dc, std::uint64_t txid,
                              std::uint8_t outcome, std::int64_t version, std::uint64_t replica,
                              std::int64_t time_us) {
  const auto key = std::make_pair(partition, dc);
  auto [it, inserted] = certified_.try_emplace(key, CertRecord{txid, outcome, version, replica});
  if (inserted) {
    certified_order_.push_back(key);
    bound(certified_, certified_order_);
    return;
  }
  const CertRecord& prev = it->second;
  if (prev.txid == txid && prev.outcome == outcome && prev.version == version) return;
  std::ostringstream oss;
  oss << "replicas diverge at partition " << partition << " dc=" << dc << ": replica "
      << prev.replica << " certified tx " << prev.txid << " -> " << outcome_name(prev.outcome)
      << " v" << prev.version << ", replica " << replica << " certified tx " << txid << " -> "
      << outcome_name(outcome) << " v" << version;
  report("certifier", "certification-determinism", txid, dc, time_us, std::move(oss).str(),
         __FILE__, __LINE__);
}

void Oracle::record_vote(std::uint64_t txid, std::uint32_t partition, std::uint8_t vote,
                         std::uint64_t replica, std::int64_t time_us) {
  const auto key = std::make_pair(txid, partition);
  auto [it, inserted] = votes_.try_emplace(key, VoteRecord{vote, replica});
  if (inserted) {
    votes_order_.push_back(key);
    bound(votes_, votes_order_);
    return;
  }
  if (it->second.vote == vote) return;
  std::ostringstream oss;
  oss << "partition " << partition << " cast two different votes for tx " << txid << ": replica "
      << it->second.replica << " voted " << outcome_name(it->second.vote) << ", replica "
      << replica << " voted " << outcome_name(vote);
  report("server", "vote-determinism", txid, 0, time_us, std::move(oss).str(), __FILE__, __LINE__);
}

void Oracle::record_completion(std::uint64_t txid, std::uint32_t partition, std::uint8_t outcome,
                               const std::vector<std::uint32_t>& involved, std::uint64_t replica,
                               std::int64_t time_us) {
  auto [it, inserted] = outcomes_.try_emplace(txid, OutcomeRecord{outcome, partition, replica});
  if (inserted) {
    outcomes_order_.push_back(txid);
    bound(outcomes_, outcomes_order_);
  } else if (it->second.outcome != outcome) {
    std::ostringstream oss;
    oss << "tx " << txid << " completed with different outcomes: partition "
        << it->second.partition << " replica " << it->second.replica << " -> "
        << outcome_name(it->second.outcome) << ", partition " << partition << " replica "
        << replica << " -> " << outcome_name(outcome);
    report("server", "atomic-commitment", txid, 0, time_us, std::move(oss).str(), __FILE__,
           __LINE__);
    return;
  }

  if (involved.size() < 2) return;  // locals have no vote exchange

  // 2PC safety: commit iff every involved partition's recorded vote is
  // commit. Votes are recorded at certification time, which precedes every
  // completion (a replica completes only once it holds all votes), so a
  // missing vote on a commit is itself a violation.
  std::size_t commit_votes = 0;
  bool any_abort = false;
  for (std::uint32_t p : involved) {
    auto vit = votes_.find(std::make_pair(txid, p));
    if (vit == votes_.end()) continue;
    if (vit->second.vote == kCommit) ++commit_votes;
    if (vit->second.vote == kAbort) any_abort = true;
  }
  if (outcome == kCommit && commit_votes != involved.size()) {
    std::ostringstream oss;
    oss << "tx " << txid << " committed on partition " << partition << " replica " << replica
        << " with only " << commit_votes << "/" << involved.size()
        << " partitions recorded as voting commit";
    report("server", "commit-requires-all-votes", txid, 0, time_us, std::move(oss).str(),
           __FILE__, __LINE__);
  } else if (outcome == kAbort && commit_votes == involved.size() && !any_abort) {
    std::ostringstream oss;
    oss << "tx " << txid << " aborted on partition " << partition << " replica " << replica
        << " although every involved partition voted commit";
    report("server", "abort-requires-an-abort-vote", txid, 0, time_us, std::move(oss).str(),
           __FILE__, __LINE__);
  }
}

}  // namespace sdur::audit
