// Deterministic transaction-lifecycle tracer.
//
// Records the full span chain of a transaction — client submit, commit
// handling, atomic broadcast, delivery-queue wait, certification (index
// probe vs. scan fallback, per P-DUR lane), vote exchange for globals,
// apply, client reply — as POD records stamped with *simulated* time, so
// traces are bit-reproducible from the seed like everything else in the
// simulation.
//
// Storage is one preallocated ring of POD Records shared by all tracks
// (recycled-slab style, like sim::Simulator's callable slab): appending a
// record at steady state performs zero heap allocations; when the ring is
// full the oldest record is overwritten and `dropped` counts it. Tracks
// (one per replica, client, Paxos engine and P-DUR core lane) are pure
// metadata resolved at export time.
//
// Contract (same as SDUR_FABRIC_COUNTERS, see sim/fabric_stats.h):
// tracing NEVER influences simulated results — it only reads protocol
// state and writes to host-side buffers; simulated time, message bytes
// and event counts are bit-identical with tracing compiled out
// (-DSDUR_TRACE=0 / CMake SDUR_TRACE=OFF, every macro below becomes a
// no-op) or left disarmed at runtime. The CMake option is ON by default;
// recording is armed per run via Tracer::set_enabled(true) by the trace
// consumers (bench/latency_breakdown, tests/trace_test.cpp) so that
// untraced runs pay one branch per instrumentation point and no memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace sdur::trace {

/// Identity of an instrumentation point in the transaction lifecycle.
/// Marks are correlated into per-transaction chains by txid at export
/// time; consecutive chain marks telescope, so per-stage durations sum
/// exactly to the end-to-end latency (see export.h, Breakdown).
enum class Point : std::uint8_t {
  // Transaction chain marks, in lifecycle order.
  kTxBegin = 0,   // client: transaction id assigned
  kTxSubmit,      // client: commit request sent to the contact server
  kTxHandle,      // server: commit request accepted, projections broadcast
  kTxDeliver,     // replica: value adelivered, queued for certification
  kTxCertified,   // replica: certification verdict reached (aux: cert_aux)
  kTxReady,       // replica (P-DUR only): home-core work finished
  kTxCompleted,   // contact replica: outcome fixed, reply sent (aux: 1=commit)
  kTxOutcome,     // client: outcome received (aux: Outcome byte)
  // Spans.
  kConsensus,     // Paxos leader: instance proposed -> decided (id: instance)
  kVoteWait,      // contact replica: global certified -> all votes in
  kLaneWork,      // P-DUR core lane: busy on one transaction's work
  kLaneWait,      // P-DUR core lane: rendezvous idle before a barrier
  // Instants.
  kCertIndexProbe,    // certification served by the key index (aux: lane/depth)
  kCertScanFallback,  // bloom sets forced the window/lane scan (aux: lane/depth)
  kVoteFlush,         // vote batcher flushed a queue (id: dest partition, aux: votes)
  kVotePiggyback,     // pending votes rode an outgoing message (aux: votes)
  kTxBypassed,        // local committed past pending entries (aux: entries leaped)
  kTxParked,          // local parked behind a pending conflict (aux: park bound)
  kTxSpeculated,      // writes applied speculatively before the votes (aux: 1=global)
  kTxSpecAbort,       // speculative versions rolled back (aux: version)
  kPointCount,
};

const char* to_string(Point p);

enum class Kind : std::uint8_t {
  kMark = 0,     // chain point: ts == t0 == t1
  kSpan = 1,     // interval [t0, t1]; ts is the append time
  kInstant = 2,  // point event: ts == t0 == t1
};

/// POD trace record, 48 bytes. All times are simulated microseconds.
struct Record {
  sim::Time ts;        // append time — monotone per track (and globally)
  sim::Time t0;        // span begin (== ts for marks/instants)
  sim::Time t1;        // span end (== ts for marks/instants; may be > ts
                       //           for spans recorded at enqueue time)
  std::uint64_t id;    // transaction id, Paxos instance, or 0
  std::uint64_t aux;   // point-specific payload (see cert_aux below)
  std::uint32_t track;
  Point point = Point::kPointCount;
  Kind kind = Kind::kMark;
  std::uint16_t pad = 0;
};
static_assert(sizeof(Record) == 48, "Record is the ring's slab unit");

/// aux payload of kTxCertified marks: the verdict, the transaction class
/// and the simulated cost charged for the delivery's certification work
/// (what the export-time breakdown splits queue-wait from service time
/// with). Layout: bit 0 = committed, bit 1 = global, bits [2, 64) = cost.
inline std::uint64_t cert_aux(bool global, bool committed, sim::Time cost) {
  return (committed ? 1ULL : 0ULL) | (global ? 2ULL : 0ULL)
         | (static_cast<std::uint64_t>(cost) << 2);
}
inline bool aux_committed(std::uint64_t aux) { return (aux & 1ULL) != 0; }
inline bool aux_global(std::uint64_t aux) { return (aux & 2ULL) != 0; }
inline sim::Time aux_cost(std::uint64_t aux) { return static_cast<sim::Time>(aux >> 2); }

/// Sentinel: "no track". Records addressed to it are dropped.
inline constexpr std::uint32_t kNoTrack = 0xFFFFFFFFu;

/// Process-wide tracer (the simulation is single-threaded). Hot-path
/// methods (record_*) are allocation-free at steady state; registration,
/// ring arming and export allocate on the host side only.
class Tracer {
 public:
  struct Track {
    std::uint64_t pid = 0;     // owning simulated process
    std::int32_t lane = -1;    // P-DUR core lane, or -1
    std::string name;          // e.g. "server-p0-1", "client-13", "paxos-2"
    std::uint64_t appended = 0;
  };

  static Tracer& instance();

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Ring capacity (records) used when the ring is next armed. Takes
  /// effect on the first record after a reset() (the ring is armed
  /// lazily, so an idle tracer holds no storage).
  void set_ring_capacity(std::size_t records);
  std::size_t ring_capacity() const { return capacity_; }

  /// Registers a named track and returns its id, or kNoTrack while the
  /// tracer is disabled (so dormant deployments register nothing and the
  /// tracer holds no per-process state for untraced runs).
  std::uint32_t register_track(std::uint64_t pid, const std::string& name,
                               std::int32_t lane = -1);

  // --- Hot path (zero allocations at steady state) ------------------------

  void record_mark(std::uint32_t track, Point p, std::uint64_t id, sim::Time t,
                   std::uint64_t aux = 0) {
    if (!enabled_ || track == kNoTrack) return;
    append(Record{t, t, t, id, aux, track, p, Kind::kMark, 0});
  }

  /// Records span [t0, t1]; `ts` is the append time (defaults to t1 —
  /// pass the current time explicitly for spans recorded at enqueue time
  /// whose interval lies in the future, keeping ts monotone per track).
  void record_span(std::uint32_t track, Point p, std::uint64_t id, sim::Time t0,
                   sim::Time t1, std::uint64_t aux = 0, sim::Time ts = -1) {
    if (!enabled_ || track == kNoTrack) return;
    append(Record{ts < 0 ? t1 : ts, t0, t1, id, aux, track, p, Kind::kSpan, 0});
  }

  void record_instant(std::uint32_t track, Point p, std::uint64_t id, sim::Time t,
                      std::uint64_t aux = 0) {
    if (!enabled_ || track == kNoTrack) return;
    append(Record{t, t, t, id, aux, track, p, Kind::kInstant, 0});
  }

  // --- Delivery context ----------------------------------------------------
  // The server sets the context while certifying a delivery so layers
  // without a track id in their signatures (Certifier, ParallelWindow
  // lanes) can attribute instants without widening any call chain.

  void set_context(std::uint32_t track, std::uint64_t id, sim::Time t) {
    context_track_ = track;
    context_id_ = id;
    context_time_ = t;
  }
  void clear_context() { context_track_ = kNoTrack; }
  std::uint64_t context_id() const { return context_id_; }
  sim::Time context_time() const { return context_time_; }

  void record_context_instant(Point p, std::uint64_t aux = 0) {
    if (!enabled_ || context_track_ == kNoTrack) return;
    append(Record{context_time_, context_time_, context_time_, context_id_, aux,
                  context_track_, p, Kind::kInstant, 0});
  }

  // --- Introspection / export ----------------------------------------------

  std::size_t track_count() const { return tracks_.size(); }
  const Track& track(std::uint32_t id) const { return tracks_[id]; }

  /// All live records in append order (oldest survivor first). Copies —
  /// export-time only.
  std::vector<Record> records() const;

  std::uint64_t records_appended() const { return appended_; }
  std::uint64_t records_dropped() const { return dropped_; }
  /// Heap allocations the tracer performed (track registration, ring
  /// arming). Flat at steady state: the zero-allocation-per-span
  /// acceptance bar is asserted against this counter.
  std::uint64_t heap_allocations() const { return heap_allocations_; }

  /// Drops every track and record and disarms the ring.
  void reset();
  /// Keeps registered tracks, clears the ring and counters.
  void clear_records();

 private:
  Tracer() = default;

  void append(const Record& r);  // arms the ring on first use
  void arm_ring();

  bool enabled_ = false;
  std::size_t capacity_ = 1u << 16;
  std::vector<Record> ring_;  // armed to capacity_; wraps, overwriting oldest
  std::size_t head_ = 0;      // next write position
  std::uint64_t appended_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t heap_allocations_ = 0;
  std::vector<Track> tracks_;
  std::uint32_t context_track_ = kNoTrack;
  std::uint64_t context_id_ = 0;
  sim::Time context_time_ = 0;
};

}  // namespace sdur::trace

#ifndef SDUR_TRACE
#define SDUR_TRACE 1
#endif

#if SDUR_TRACE
/// Registers a track; yields kNoTrack in no-op builds or disabled runs.
#define SDUR_TRACE_REGISTER(pid, name_, lane) \
  ::sdur::trace::Tracer::instance().register_track((pid), (name_), (lane))
#define SDUR_TRACE_MARK(track, point, id_, t, aux) \
  ::sdur::trace::Tracer::instance().record_mark((track), (point), (id_), (t), (aux))
#define SDUR_TRACE_SPAN(track, point, id_, t0, t1, aux, ts) \
  ::sdur::trace::Tracer::instance().record_span((track), (point), (id_), (t0), (t1), (aux), (ts))
#define SDUR_TRACE_SET_CONTEXT(track, id_, t) \
  ::sdur::trace::Tracer::instance().set_context((track), (id_), (t))
#define SDUR_TRACE_CLEAR_CONTEXT() ::sdur::trace::Tracer::instance().clear_context()
#define SDUR_TRACE_CONTEXT_INSTANT(point, aux) \
  ::sdur::trace::Tracer::instance().record_context_instant((point), (aux))
#define SDUR_TRACE_INSTANT(track, point, id_, t, aux) \
  ::sdur::trace::Tracer::instance().record_instant((track), (point), (id_), (t), (aux))
/// Compiles `...` in traced builds only (for instrumentation that needs
/// locals, e.g. reconstructing a lane's reservation window).
#define SDUR_TRACE_STMT(...) __VA_ARGS__
#else
#define SDUR_TRACE_REGISTER(pid, name_, lane) (::sdur::trace::kNoTrack)
#define SDUR_TRACE_MARK(track, point, id_, t, aux) ((void)0)
#define SDUR_TRACE_SPAN(track, point, id_, t0, t1, aux, ts) ((void)0)
#define SDUR_TRACE_SET_CONTEXT(track, id_, t) ((void)0)
#define SDUR_TRACE_CLEAR_CONTEXT() ((void)0)
#define SDUR_TRACE_CONTEXT_INSTANT(point, aux) ((void)0)
#define SDUR_TRACE_INSTANT(track, point, id_, t, aux) ((void)0)
#define SDUR_TRACE_STMT(...)
#endif
