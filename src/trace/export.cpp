#include "trace/export.h"

#include <cinttypes>
#include <cstdio>
#include <map>

namespace sdur::trace {

namespace {

/// Minimal JSON string escaping; track names are generated identifiers,
/// this just keeps the output valid if one ever is not.
std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
      continue;
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

const char* category(Point p) {
  switch (p) {
    case Point::kConsensus: return "paxos";
    case Point::kVoteWait:
    case Point::kVoteFlush:
    case Point::kVotePiggyback: return "votes";
    case Point::kLaneWork:
    case Point::kLaneWait: return "lane";
    case Point::kCertIndexProbe:
    case Point::kCertScanFallback: return "cert";
    default: return "tx";
  }
}

}  // namespace

bool write_chrome_trace(const Tracer& tracer, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", f);
  bool first = true;
  const auto sep = [&] {
    if (!first) std::fputc(',', f);
    first = false;
    std::fputs("\n ", f);
  };
  for (std::uint32_t tid = 0; tid < tracer.track_count(); ++tid) {
    const Tracer::Track& tr = tracer.track(tid);
    sep();
    std::fprintf(f,
                 "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%" PRIu64
                 ",\"tid\":%u,\"args\":{\"name\":%s}}",
                 tr.pid, tid, quoted(tr.name).c_str());
  }
  for (const Record& r : tracer.records()) {
    if (r.track >= tracer.track_count()) continue;  // defensive
    const Tracer::Track& tr = tracer.track(r.track);
    sep();
    if (r.kind == Kind::kSpan) {
      std::fprintf(f,
                   "{\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"%s\",\"pid\":%" PRIu64
                   ",\"tid\":%u,\"ts\":%" PRId64 ",\"dur\":%" PRId64
                   ",\"args\":{\"id\":%" PRIu64 ",\"aux\":%" PRIu64 "}}",
                   to_string(r.point), category(r.point), tr.pid, r.track, r.t0,
                   r.t1 - r.t0, r.id, r.aux);
    } else {
      std::fprintf(f,
                   "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"%s\",\"cat\":\"%s\",\"pid\":%" PRIu64
                   ",\"tid\":%u,\"ts\":%" PRId64 ",\"args\":{\"id\":%" PRIu64
                   ",\"aux\":%" PRIu64 "}}",
                   to_string(r.point), category(r.point), tr.pid, r.track, r.ts,
                   r.id, r.aux);
    }
  }
  std::fputs("\n]}\n", f);
  std::fclose(f);
  return true;
}

const char* Breakdown::stage_name(std::size_t s) {
  static const char* kNames[kStages] = {"submit_net",  "ordering",    "cert_queue",
                                        "execution",   "lane_exec",   "commit_wait",
                                        "spec_window", "reply_net"};
  return s < kStages ? kNames[s] : "?";
}

double Breakdown::Class::sum_of_stage_means() const {
  double sum = 0;
  for (std::size_t s = 0; s < kStages; ++s) sum += stage[s].mean();
  return sum;
}

Breakdown build_breakdown(const Tracer& tracer) {
  struct Chain {
    sim::Time submit = -1, handle = -1, outcome = -1;
    sim::Time deliver = -1, certified = -1, ready = -1, speculated = -1, completed = -1;
    std::uint64_t cert_payload = 0;
    std::uint32_t server_track = kNoTrack;
  };
  // Ordered map: the builder's iteration (and thus any fp rounding) is a
  // deterministic function of the trace, like everything else here.
  std::map<std::uint64_t, Chain> chains;
  const std::vector<Record> recs = tracer.records();

  // Pass 1: client-side marks plus the completion point, which pins the
  // contact replica's track — the chain's server-side marks are read from
  // that track only (every replica of a partition records deliveries; only
  // the contact's timeline reaches the client).
  for (const Record& r : recs) {
    if (r.kind != Kind::kMark) continue;
    switch (r.point) {
      case Point::kTxSubmit: {
        Chain& c = chains[r.id];
        if (c.submit < 0) c.submit = r.ts;
        break;
      }
      case Point::kTxHandle: {
        Chain& c = chains[r.id];
        if (c.handle < 0) c.handle = r.ts;
        break;
      }
      case Point::kTxOutcome: {
        Chain& c = chains[r.id];
        if (c.outcome < 0) c.outcome = r.ts;
        break;
      }
      case Point::kTxCompleted: {
        Chain& c = chains[r.id];
        if (c.completed < 0) {
          c.completed = r.ts;
          c.server_track = r.track;
        }
        break;
      }
      default:
        break;
    }
  }
  // Pass 2: the contact's delivery-side marks (first occurrence each — a
  // recovery replay re-records them later).
  for (const Record& r : recs) {
    if (r.kind != Kind::kMark) continue;
    if (r.point != Point::kTxDeliver && r.point != Point::kTxCertified &&
        r.point != Point::kTxReady && r.point != Point::kTxSpeculated) {
      continue;
    }
    auto it = chains.find(r.id);
    if (it == chains.end() || it->second.server_track != r.track) continue;
    Chain& c = it->second;
    if (r.point == Point::kTxDeliver && c.deliver < 0) c.deliver = r.ts;
    if (r.point == Point::kTxCertified && c.certified < 0) {
      c.certified = r.ts;
      c.cert_payload = r.aux;
    }
    if (r.point == Point::kTxReady && c.ready < 0) c.ready = r.ts;
    if (r.point == Point::kTxSpeculated && c.speculated < 0) c.speculated = r.ts;
  }

  Breakdown out;
  for (const auto& [id, c] : chains) {
    (void)id;
    if (c.submit < 0 || c.handle < 0 || c.deliver < 0 || c.certified < 0 ||
        c.completed < 0 || c.outcome < 0) {
      ++out.incomplete_chains;
      continue;
    }
    if (!aux_committed(c.cert_payload)) {
      ++out.aborted_chains;
      continue;
    }
    const sim::Time cost = aux_cost(c.cert_payload);
    const sim::Time work_start = c.certified - cost;
    const sim::Time ready = c.ready >= 0 ? c.ready : c.certified;
    // A transaction that never speculated has an empty spec_window; the
    // stages keep telescoping either way.
    const sim::Time spec = c.speculated >= 0 ? c.speculated : c.completed;
    const sim::Time stages[Breakdown::kStages] = {
        c.handle - c.submit,      // submit_net
        c.deliver - c.handle,     // ordering
        work_start - c.deliver,   // cert_queue
        cost,                     // execution
        ready - c.certified,      // lane_exec
        spec - ready,             // commit_wait
        c.completed - spec,       // spec_window
        c.outcome - c.completed,  // reply_net
    };
    bool sane = true;
    for (std::size_t s = 0; s < Breakdown::kStages; ++s) {
      if (stages[s] < 0) sane = false;
    }
    if (!sane) {  // a crashed replica's clock hole; cannot be attributed
      ++out.incomplete_chains;
      continue;
    }
    Breakdown::Class& cls = aux_global(c.cert_payload) ? out.global : out.local;
    for (std::size_t s = 0; s < Breakdown::kStages; ++s) cls.stage[s].record(stages[s]);
    cls.e2e.record(c.outcome - c.submit);
    ++cls.chains;
  }
  return out;
}

}  // namespace sdur::trace
