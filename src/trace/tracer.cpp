#include "trace/trace.h"

namespace sdur::trace {

const char* to_string(Point p) {
  switch (p) {
    case Point::kTxBegin: return "tx.begin";
    case Point::kTxSubmit: return "tx.submit";
    case Point::kTxHandle: return "tx.handle";
    case Point::kTxDeliver: return "tx.deliver";
    case Point::kTxCertified: return "tx.certified";
    case Point::kTxReady: return "tx.ready";
    case Point::kTxCompleted: return "tx.completed";
    case Point::kTxOutcome: return "tx.outcome";
    case Point::kConsensus: return "paxos.consensus";
    case Point::kVoteWait: return "vote.wait";
    case Point::kLaneWork: return "lane.work";
    case Point::kLaneWait: return "lane.wait";
    case Point::kCertIndexProbe: return "cert.index_probe";
    case Point::kCertScanFallback: return "cert.scan_fallback";
    case Point::kVoteFlush: return "vote.flush";
    case Point::kVotePiggyback: return "vote.piggyback";
    case Point::kTxBypassed: return "tx.bypassed";
    case Point::kTxParked: return "tx.parked";
    case Point::kTxSpeculated: return "tx.speculated";
    case Point::kTxSpecAbort: return "tx.spec_abort";
    case Point::kPointCount: break;
  }
  return "?";
}

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

void Tracer::set_ring_capacity(std::size_t records) {
  capacity_ = records == 0 ? 1 : records;
}

std::uint32_t Tracer::register_track(std::uint64_t pid, const std::string& name,
                                     std::int32_t lane) {
  if (!enabled_) return kNoTrack;
  ++heap_allocations_;  // track metadata (vector growth + name string)
  Track t;
  t.pid = pid;
  t.lane = lane;
  t.name = name;
  tracks_.push_back(std::move(t));
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

void Tracer::arm_ring() {
  ++heap_allocations_;  // the one steady-state allocation: the record slab
  ring_.resize(capacity_);
  head_ = 0;
}

void Tracer::append(const Record& r) {
  if (ring_.empty()) arm_ring();
  if (appended_ >= ring_.size()) ++dropped_;  // overwriting the oldest
  ring_[head_] = r;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  ++appended_;
  if (r.track < tracks_.size()) ++tracks_[r.track].appended;
}

std::vector<Record> Tracer::records() const {
  std::vector<Record> out;
  if (appended_ == 0) return out;
  if (appended_ <= ring_.size()) {
    out.assign(ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(appended_));
    return out;
  }
  // The ring wrapped: oldest survivor sits at head_ (the next overwrite
  // target), append order is [head_, end) then [0, head_).
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_), ring_.end());
  out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  return out;
}

void Tracer::reset() {
  ring_.clear();
  ring_.shrink_to_fit();
  tracks_.clear();
  head_ = 0;
  appended_ = 0;
  dropped_ = 0;
  heap_allocations_ = 0;
  context_track_ = kNoTrack;
  context_id_ = 0;
  context_time_ = 0;
}

void Tracer::clear_records() {
  head_ = 0;
  appended_ = 0;
  dropped_ = 0;
  for (Track& t : tracks_) t.appended = 0;
}

}  // namespace sdur::trace
