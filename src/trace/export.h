// Trace exporters: Chrome trace-event JSON and the per-stage latency
// attribution breakdown. Export is cold-path host-side code — it runs
// after a simulation, never during one.
#pragma once

#include <cstdint>
#include <string>

#include "trace/trace.h"
#include "util/stats.h"

namespace sdur::trace {

/// Writes every live record as Chrome trace-event JSON ("Trace Event
/// Format"), loadable by Perfetto / chrome://tracing. One track per
/// registered trace track: pid = the simulated process, tid = the track
/// id (replica main track, client, Paxos engine, or one P-DUR core
/// lane), with thread_name metadata carrying the track names. Spans
/// become complete ("X") events, marks and instants become instant ("i")
/// events; timestamps are simulated microseconds. Returns false if the
/// file cannot be written.
bool write_chrome_trace(const Tracer& tracer, const std::string& path);

/// Per-stage latency attribution, rebuilt from the transaction chain
/// marks (Point::kTx*). Stages telescope between consecutive marks:
///
///   submit_net   kTxSubmit    -> kTxHandle     client->server request
///   ordering     kTxHandle    -> kTxDeliver    abcast: Paxos + delivery
///   cert_queue   kTxDeliver   -> work start    replica CPU queue wait
///   execution    work start   -> kTxCertified  charged certification/apply
///                                              cost (aux_cost of the mark)
///   lane_exec    kTxCertified -> kTxReady      P-DUR home-core work
///                                              (0 in the serial model)
///   commit_wait  ready        -> speculated    votes + reorder threshold
///                                              (speculated = kTxCompleted
///                                              when never speculated)
///   spec_window  speculated   -> kTxCompleted  speculative exposure: writes
///                                              applied, reply withheld
///                                              until the votes finalize
///                                              (0 when never speculated)
///   reply_net    kTxCompleted -> kTxOutcome    server->client outcome
///
/// Only chains whose every mark survived in the ring contribute (the
/// ring overwrites the oldest records; a partial chain cannot be
/// attributed). Because the stages telescope, the sum of stage means
/// equals the mean end-to-end (submit -> outcome) latency exactly over
/// the same chain set — the acceptance bar of bench/latency_breakdown.
struct Breakdown {
  static constexpr std::size_t kStages = 8;
  static const char* stage_name(std::size_t s);

  struct Class {
    util::Histogram stage[kStages];  // per-stage duration, microseconds
    util::Histogram e2e;             // submit -> outcome
    std::uint64_t chains = 0;        // complete committed chains attributed
    /// Sum over stages of the stage mean (microseconds); equals
    /// e2e.mean() up to floating-point rounding by construction.
    double sum_of_stage_means() const;
  };

  Class local;        // single-partition transactions
  Class global;       // multi-partition transactions (vote exchange)
  std::uint64_t aborted_chains = 0;    // complete chains that aborted
  std::uint64_t incomplete_chains = 0; // missing marks (ring wrap, crash,
                                       // client timeout, in flight at stop)
};

Breakdown build_breakdown(const Tracer& tracer);

}  // namespace sdur::trace
