#!/usr/bin/env python3
"""Determinism linter for the SDUR simulation core.

The whole value of the simulator is that a run is a pure function of its
seed: replicas must certify identically, and a reported result must be
reproducible bit-for-bit. This linter scans the protocol code
(src/sim, src/sdur, src/paxos, src/storage) for constructs that quietly
break that property:

  wall-clock          real-time sources (std::chrono clocks, time(),
                      gettimeofday, ...) instead of simulated time.
  unseeded-random     std::random_device, rand()/srand() — entropy or global
                      PRNG state outside the seeded sim RNG.
  unordered-iteration range-for over a std::unordered_{map,set} whose
                      iteration order (hashing, allocation, libstdc++
                      version) can leak into protocol decisions or
                      serialized state.
  pointer-key         containers keyed by pointer values — iteration order
                      and hashes then depend on allocator addresses.
  hotpath-std-function (src/sim only) std::function on the fabric hot path —
                      the event loop stores sim::UniqueFn (sim/callable.h):
                      move-only, inline storage, no per-event allocation.
  message-copy-capture (src/sim only) lambda capture that copies a Message
                      (`[m]` or `[m2 = m]`) — capture by std::move instead;
                      a copy re-counts the payload on every scheduled
                      delivery and hides accidental fan-out copies.
  cert-index-iteration (certification index files only) any hash-order
                      iteration in src/storage/cert_index.*: FlatTable
                      for_each(), or any std::unordered_{map,set} use. The
                      index is probe-only by contract — per-key probes are
                      deterministic, but walking a hash table could leak
                      probe order into certification verdicts, the one
                      thing every replica must compute identically.

Heuristic by design: it flags candidates, and provably order-insensitive
uses are recorded in tools/lint_determinism_allow.txt with a justification.
An allowlist entry has the form

    <path>:<rule>:<token>       # why this is safe

where <token> is the variable (unordered-iteration), the matched call
(wall-clock / unseeded-random) or the container name (pointer-key).
Unused allowlist entries are reported as errors so the list cannot rot.

Exit status: 0 clean, 1 findings or stale allowlist entries, 2 usage error.
Run from anywhere; paths are resolved against the repo root. Wired into
CTest (test name: lint_determinism) and tools/check.sh.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SCAN_DIRS = ["src/sim", "src/sdur", "src/paxos", "src/storage", "src/pdur"]
EXTENSIONS = {".h", ".cpp"}

WALL_CLOCK_PATTERNS = [
    r"std::chrono::(?:system|steady|high_resolution)_clock",
    r"\bgettimeofday\s*\(",
    r"\bclock_gettime\s*\(",
    r"(?<![\w.:])time\s*\(\s*(?:NULL|nullptr|0)\s*\)",
    r"\b(?:localtime|gmtime)\s*\(",
]

RANDOM_PATTERNS = [
    r"\bstd::random_device\b",
    r"(?<![\w.:])srand\s*\(",
    r"(?<![\w.:])rand\s*\(\s*\)",
]

UNORDERED_DECL = re.compile(r"\bunordered_(?:map|set)\s*<")
RANGE_FOR = re.compile(r"\bfor\s*\([^;()]*?:\s*(?:\w+(?:\.|->|::))*(\w+)\s*\)")
LINE_COMMENT = re.compile(r"//.*$")

# Certification-index-only rule: the index must stay probe-only.
CERT_INDEX_FILE = re.compile(r"(^|/)cert_index\.(?:h|cpp)$")
FOR_EACH_CALL = re.compile(r"\.\s*for_each\s*\(|\bfor_each\s*\(")
UNORDERED_TOKEN = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")

# src/sim-only rules (the fabric hot path).
STD_FUNCTION = re.compile(r"\bstd::function\s*<")
# A lambda capture list: require a follower that rules out array indexing.
CAPTURE_LIST = re.compile(r"\[([^\[\]]*)\]\s*(?:\(|mutable\b|\{|->)")
MESSAGE_NAMES = {"m", "msg", "message"}


def split_top_level(s: str) -> list[str]:
    """Splits on commas not nested inside <>, (), [] or {}."""
    out: list[str] = []
    cur: list[str] = []
    depth = 0
    for c in s:
        if c in "<([{":
            depth += 1
        elif c in ">)]}":
            depth -= 1
        if c == "," and depth == 0:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    out.append("".join(cur))
    return out


def strip_comments(line: str) -> str:
    """Drops // comments. Block comments and string literals are rare enough
    in this codebase that full lexing is not worth the complexity."""
    return LINE_COMMENT.sub("", line)


def balanced_template_args(text: str, start: int) -> tuple[str, int]:
    """Returns (template argument text, index past '>') for the '<' at
    `start`."""
    depth = 0
    for i in range(start, len(text)):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return text[start + 1 : i], i + 1
    return text[start + 1 :], len(text)


def first_template_arg(args: str) -> str:
    depth = 0
    for i, c in enumerate(args):
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
        elif c == "," and depth == 0:
            return args[:i]
    return args


class Finding:
    def __init__(self, path: str, line: int, rule: str, token: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.token = token
        self.message = message

    def key(self) -> str:
        return f"{self.path}:{self.rule}:{self.token}"

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def collect_unordered_names(text: str) -> set[str]:
    """Names of variables/members declared as std::unordered_{map,set}
    anywhere in `text` (declarations may span lines)."""
    names: set[str] = set()
    for m in UNORDERED_DECL.finditer(text):
        args, after = balanced_template_args(text, m.end() - 1)
        # The declared name follows the closing '>': "unordered_map<K, V> name"
        decl = re.match(r"\s*&?\s*(\w+)\s*(?:;|=|\{|,|\))", text[after:])
        if decl:
            names.add(decl.group(1))
    return names


def scan_file(path: Path, rel: str, unordered_names: set[str]) -> list[Finding]:
    findings: list[Finding] = []
    text = path.read_text()
    lines = text.splitlines()

    for lineno, raw in enumerate(lines, 1):
        line = strip_comments(raw)
        for pat in WALL_CLOCK_PATTERNS:
            for m in re.finditer(pat, line):
                findings.append(
                    Finding(rel, lineno, "wall-clock", m.group(0).strip(),
                            f"real-time source `{m.group(0).strip()}` — use sim::Simulator time"))
        for pat in RANDOM_PATTERNS:
            for m in re.finditer(pat, line):
                findings.append(
                    Finding(rel, lineno, "unseeded-random", m.group(0).strip(),
                            f"non-seeded entropy `{m.group(0).strip()}` — use the seeded util::Rng"))
        for m in RANGE_FOR.finditer(line):
            name = m.group(1)
            if name in unordered_names:
                findings.append(
                    Finding(rel, lineno, "unordered-iteration", name,
                            f"range-for over unordered container `{name}` — iteration order can "
                            "leak into protocol state; use an ordered container or sort first"))
        if CERT_INDEX_FILE.search(rel):
            for m in FOR_EACH_CALL.finditer(line):
                findings.append(
                    Finding(rel, lineno, "cert-index-iteration", "for_each",
                            "hash-order iteration in the certification index — the index is "
                            "probe-only; per-key probes are fine, table walks are not"))
            for m in UNORDERED_TOKEN.finditer(line):
                findings.append(
                    Finding(rel, lineno, "cert-index-iteration", m.group(0),
                            f"`{m.group(0)}` in the certification index — use the probe-only "
                            "FlatTable (storage/flat_table.h); no iterable hash containers here"))
        if rel.startswith("src/sim/"):
            for m in STD_FUNCTION.finditer(line):
                findings.append(
                    Finding(rel, lineno, "hotpath-std-function", "std::function",
                            "std::function on the fabric hot path — use sim::UniqueFn "
                            "(sim/callable.h): move-only, inline storage, no per-event allocation"))
            for cap in CAPTURE_LIST.finditer(line):
                for item in split_top_level(cap.group(1)):
                    item = item.strip()
                    init = re.match(r"^(\w+)\s*=\s*(.+)$", item)
                    if init:
                        rhs = init.group(2).strip()
                        if (re.fullmatch(r"(?:m|msg|message)", rhs)):
                            findings.append(
                                Finding(rel, lineno, "message-copy-capture", init.group(1),
                                        f"lambda copy-captures Message `{rhs}` — capture with "
                                        "std::move to keep deliveries zero-copy"))
                    elif item in MESSAGE_NAMES:
                        findings.append(
                            Finding(rel, lineno, "message-copy-capture", item,
                                    f"lambda copy-captures Message `{item}` — capture with "
                                    "std::move to keep deliveries zero-copy"))

    # Pointer-valued keys: inspect every unordered/ordered associative decl.
    for m in re.finditer(r"\b(?:unordered_)?(?:map|set)\s*<", text):
        args, _ = balanced_template_args(text, m.end() - 1)
        key_type = first_template_arg(args).strip()
        if key_type.endswith("*") and "char" not in key_type:
            lineno = text.count("\n", 0, m.start()) + 1
            findings.append(
                Finding(rel, lineno, "pointer-key", key_type,
                        f"container keyed by pointer `{key_type}` — ordering/hash depends on "
                        "allocator addresses"))
    return findings


def load_allowlist(path: Path) -> dict[str, int]:
    """Returns {entry-key: 0}; values count how often each entry was used."""
    entries: dict[str, int] = {}
    if not path.exists():
        return entries
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            entries[line] = 0
    return entries


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None, help="repo root (default: parent of this script)")
    ap.add_argument("--allowlist", default=None,
                    help="allowlist file (default: tools/lint_determinism_allow.txt)")
    args = ap.parse_args()

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    allow_path = Path(args.allowlist) if args.allowlist else root / "tools/lint_determinism_allow.txt"
    allow = load_allowlist(allow_path)

    files: list[Path] = []
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            print(f"lint_determinism: missing scan dir {base}", file=sys.stderr)
            return 2
        files.extend(p for p in sorted(base.rglob("*")) if p.suffix in EXTENSIONS)

    # Unordered-container names are collected globally: members are declared
    # in headers but iterated in the matching .cpp.
    unordered_names: set[str] = set()
    for p in files:
        unordered_names |= collect_unordered_names(p.read_text())

    failures = 0
    for p in files:
        rel = p.relative_to(root).as_posix()
        for f in scan_file(p, rel, unordered_names):
            if f.key() in allow:
                allow[f.key()] += 1
                continue
            print(f"error: {f}", file=sys.stderr)
            failures += 1

    for entry, used in allow.items():
        if used == 0:
            print(f"error: stale allowlist entry `{entry}` matches nothing "
                  f"({allow_path.relative_to(root)})", file=sys.stderr)
            failures += 1

    if failures:
        print(f"lint_determinism: {failures} finding(s). Fix the code or, if the use is provably "
              f"order-insensitive, add `path:rule:token  # why` to {allow_path.name}.",
              file=sys.stderr)
        return 1
    print(f"lint_determinism: {len(files)} files clean "
          f"({len(allow)} allowlisted use(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
