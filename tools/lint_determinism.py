#!/usr/bin/env python3
"""DEPRECATED shim — the determinism linter is now part of the
token-accurate static analyzer at tools/analyze.

The seven determinism rules (wall-clock, unseeded-random,
unordered-iteration, pointer-key, hotpath-std-function,
message-copy-capture, cert-index-iteration) live on there unchanged in
name and allowlist-token form, joined by the layering DAG, encode/decode
symmetry and hot-path hygiene rule families. The allowlist moved to
tools/analyze_allow.txt (same `path:rule:token  # why` format, same
stale-entry-is-error contract).

This shim execs `python3 tools/analyze` with the same arguments so old
invocations keep working; switch scripts to call tools/analyze directly.
"""

import os
import sys

if __name__ == "__main__":
    print("lint_determinism.py is deprecated: running `python3 tools/analyze` "
          "instead (see DESIGN.md 'Static analysis')", file=sys.stderr)
    analyze = os.path.join(os.path.dirname(os.path.abspath(__file__)), "analyze")
    os.execv(sys.executable, [sys.executable, analyze] + sys.argv[1:])
