"""Determinism rules, migrated from the legacy regex linter
(tools/lint_determinism.py) onto the token model.

The seven rules and their allowlist token forms are unchanged — an entry
`<path>:<rule>:<token>` written for the legacy linter keeps working —
but the documented false-positive/false-negative classes are gone:
matches inside string literals, raw strings and block comments no longer
fire, and multi-line declarations, multi-line range-for statements,
multi-line lambda capture lists and structured bindings are all seen.

Scope: the legacy scan dirs (src/{sim,sdur,paxos,storage,pdur}), so the
migrated rules reproduce the legacy linter's findings file for file
(pinned by the analyzer selftest's legacy_pin fixture tree).
"""

from __future__ import annotations

import re

from cpplex import TOK_IDENT, TOK_PUNCT
from cppmodel import FileModel, first_template_arg, spell
from engine import Context, Finding, Rule

_CLOCKS = {"system_clock", "steady_clock", "high_resolution_clock"}
_CLOCK_CALLS = {"gettimeofday", "clock_gettime", "localtime", "gmtime"}
_MESSAGE_NAMES = {"m", "msg", "message"}
_MEMBER_ACCESS = {".", "->", "::"}
_CERT_INDEX_FILE = re.compile(r"(^|/)cert_index\.(?:h|cpp)$")
_UNORDERED_TOKENS = {"unordered_map", "unordered_set",
                     "unordered_multimap", "unordered_multiset"}


def _prev(tokens, i):
    return tokens[i - 1] if i > 0 else None


def _nxt(tokens, i, k=1):
    return tokens[i + k] if i + k < len(tokens) else None


def _is_member_access(tokens, i) -> bool:
    p = _prev(tokens, i)
    return p is not None and p.text in _MEMBER_ACCESS


def run_wall_clock(ctx: Context):
    for m in ctx.legacy_models():
        toks = m.tokens
        for i, t in enumerate(toks):
            if t.kind != TOK_IDENT:
                continue
            if t.text in _CLOCKS and i >= 4 \
                    and toks[i - 1].text == "::" and toks[i - 2].text == "chrono" \
                    and toks[i - 3].text == "::" and toks[i - 4].text == "std":
                tok = f"std::chrono::{t.text}"
                yield Finding(m.rel, t.line, "wall-clock", tok,
                              f"real-time source `{tok}` — use sim::Simulator time")
            elif t.text in _CLOCK_CALLS and (n := _nxt(toks, i)) and n.text == "(":
                yield Finding(m.rel, t.line, "wall-clock", t.text,
                              f"real-time source `{t.text}` — use sim::Simulator time")
            elif t.text == "time" and not _is_member_access(toks, i):
                n1, n2, n3 = _nxt(toks, i, 1), _nxt(toks, i, 2), _nxt(toks, i, 3)
                if n1 and n1.text == "(" and n2 and n2.text in ("NULL", "nullptr", "0") \
                        and n3 and n3.text == ")":
                    yield Finding(m.rel, t.line, "wall-clock", "time",
                                  f"real-time source `time({n2.text})` — use sim::Simulator time")


def run_unseeded_random(ctx: Context):
    for m in ctx.legacy_models():
        toks = m.tokens
        for i, t in enumerate(toks):
            if t.kind != TOK_IDENT:
                continue
            if t.text == "random_device" and i >= 2 \
                    and toks[i - 1].text == "::" and toks[i - 2].text == "std":
                yield Finding(m.rel, t.line, "unseeded-random", "std::random_device",
                              "non-seeded entropy `std::random_device` — use the seeded util::Rng")
            elif t.text == "srand" and not _is_member_access(toks, i) \
                    and (n := _nxt(toks, i)) and n.text == "(":
                yield Finding(m.rel, t.line, "unseeded-random", "srand",
                              "non-seeded entropy `srand` — use the seeded util::Rng")
            elif t.text == "rand" and not _is_member_access(toks, i):
                n1, n2 = _nxt(toks, i, 1), _nxt(toks, i, 2)
                if n1 and n1.text == "(" and n2 and n2.text == ")":
                    yield Finding(m.rel, t.line, "unseeded-random", "rand",
                                  "non-seeded entropy `rand()` — use the seeded util::Rng")


def run_unordered_iteration(ctx: Context):
    names = ctx.unordered_names()
    for m in ctx.legacy_models():
        for rf in m.range_fors():
            if rf.container in names:
                yield Finding(
                    m.rel, rf.line, "unordered-iteration", rf.container,
                    f"range-for over unordered container `{rf.container}` — iteration order can "
                    "leak into protocol state; use an ordered container or sort first")


def run_pointer_key(ctx: Context):
    for m in ctx.legacy_models():
        toks = m.tokens
        for i, t in enumerate(toks):
            if t.kind != TOK_IDENT or t.text not in ("map", "set",
                                                     "unordered_map", "unordered_set"):
                continue
            if not ((n := _nxt(toks, i)) and n.text == "<"):
                continue
            arg = first_template_arg(toks, i + 1)
            if not arg or arg[-1].text != "*":
                continue
            key_type = spell(arg)
            if "char" in key_type:
                continue
            yield Finding(m.rel, t.line, "pointer-key", key_type,
                          f"container keyed by pointer `{key_type}` — ordering/hash depends on "
                          "allocator addresses")


def run_hotpath_std_function(ctx: Context):
    for m in ctx.legacy_models():
        if not m.rel.startswith("src/sim/"):
            continue
        toks = m.tokens
        for i, t in enumerate(toks):
            if t.kind == TOK_IDENT and t.text == "function" and i >= 2 \
                    and toks[i - 1].text == "::" and toks[i - 2].text == "std" \
                    and (n := _nxt(toks, i)) and n.text == "<":
                yield Finding(m.rel, t.line, "hotpath-std-function", "std::function",
                              "std::function on the fabric hot path — use sim::UniqueFn "
                              "(sim/callable.h): move-only, inline storage, no per-event allocation")


def run_message_copy_capture(ctx: Context):
    for m in ctx.legacy_models():
        if not m.rel.startswith("src/sim/"):
            continue
        for items in m.lambda_captures():
            for item in items:
                if item.by_ref:
                    continue
                if item.init is None:
                    if item.name in _MESSAGE_NAMES:
                        yield Finding(
                            m.rel, item.line, "message-copy-capture", item.name,
                            f"lambda copy-captures Message `{item.name}` — capture with "
                            "std::move to keep deliveries zero-copy")
                elif len(item.init) == 1 and item.init[0].kind == TOK_IDENT \
                        and item.init[0].text in _MESSAGE_NAMES:
                    yield Finding(
                        m.rel, item.line, "message-copy-capture", item.name,
                        f"lambda copy-captures Message `{item.init[0].text}` — capture with "
                        "std::move to keep deliveries zero-copy")


def run_cert_index_iteration(ctx: Context):
    for m in ctx.legacy_models():
        if not _CERT_INDEX_FILE.search(m.rel):
            continue
        toks = m.tokens
        for i, t in enumerate(toks):
            if t.kind != TOK_IDENT:
                continue
            if t.text == "for_each" and (n := _nxt(toks, i)) and n.text == "(":
                yield Finding(m.rel, t.line, "cert-index-iteration", "for_each",
                              "hash-order iteration in the certification index — the index is "
                              "probe-only; per-key probes are fine, table walks are not")
            elif t.text in _UNORDERED_TOKENS:
                yield Finding(m.rel, t.line, "cert-index-iteration", t.text,
                              f"`{t.text}` in the certification index — use the probe-only "
                              "FlatTable (storage/flat_table.h); no iterable hash containers here")


RULES = [
    Rule("wall-clock",
         "real-time sources (std::chrono clocks, time(), gettimeofday, ...) "
         "instead of simulated time",
         run_wall_clock,
         suggestion="read virtual time from sim::Simulator / sim::Process"),
    Rule("unseeded-random",
         "std::random_device, rand()/srand(): entropy or global PRNG state "
         "outside the seeded sim RNG",
         run_unseeded_random,
         suggestion="draw from the seeded util::Rng owned by the simulation"),
    Rule("unordered-iteration",
         "range-for over a std::unordered_{map,set} whose iteration order can "
         "leak into protocol decisions or serialized state",
         run_unordered_iteration,
         suggestion="use an ordered container, keep a side order list, or sort "
                    "before iterating"),
    Rule("pointer-key",
         "containers keyed by pointer values: iteration order and hashes "
         "depend on allocator addresses",
         run_pointer_key,
         suggestion="key by a stable id (TxId, ProcessId, index) instead of an address"),
    Rule("hotpath-std-function",
         "(src/sim only) std::function on the fabric hot path",
         run_hotpath_std_function,
         suggestion="store sim::UniqueFn (sim/callable.h) instead"),
    Rule("message-copy-capture",
         "(src/sim only) lambda capture that copies a Message",
         run_message_copy_capture,
         suggestion="capture with std::move; a copy re-counts the payload on "
                    "every scheduled delivery"),
    Rule("cert-index-iteration",
         "(src/storage/cert_index.* only) any hash-order iteration in the "
         "certification index, which is probe-only by contract",
         run_cert_index_iteration,
         no_allowlist=True,
         suggestion="restructure as per-key probes; the rule accepts no allowlist "
                    "entries by design"),
]
