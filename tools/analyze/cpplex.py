"""Token-accurate C++ lexer for the SDUR static analyzer.

This is deliberately not a full C++ front end: it produces the token
stream a lint rule needs to reason about real code without the
false-positive classes a regex scanner suffers from. In particular it
understands

  * line comments and (multi-line) block comments,
  * string literals with escapes and prefixes (u8"", L"", ...),
  * raw string literals R"delim(...)delim" of any delimiter,
  * character literals,
  * preprocessor directives (one token per directive, honoring
    backslash-newline continuations) — #include targets are recoverable
    from the directive text,
  * identifiers, numbers (pp-number rules: hex, exponents, digit
    separators), and punctuation.

Comments are dropped from the stream; string/char literals are kept as
single tokens of kind "str"/"char" so rules never match inside them.
Only `::` and `->` are fused into multi-character punctuation tokens:
`>` is never fused into `>>`, which keeps template-argument bracket
matching trivial for the rules that need it.
"""

from __future__ import annotations

from dataclasses import dataclass

TOK_IDENT = "ident"
TOK_NUM = "num"
TOK_STR = "str"
TOK_CHAR = "char"
TOK_PUNCT = "punct"
TOK_PP = "pp"  # a whole preprocessor directive


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int

    def __repr__(self) -> str:  # compact, for selftest diffs
        return f"{self.kind}:{self.text!r}@{self.line}"


_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")
_STR_PREFIXES = {"u8", "u", "U", "L"}


class LexError(ValueError):
    def __init__(self, line: int, what: str):
        super().__init__(f"line {line}: {what}")
        self.line = line


def lex(text: str) -> list[Token]:
    """Lexes `text` into a list of Tokens. Never raises on merely odd
    code — unterminated literals are closed at end of input so a single
    broken file cannot take the whole analysis down."""
    toks: list[Token] = []
    i = 0
    n = len(text)
    line = 1
    at_line_start = True  # only whitespace seen since the last newline

    def take_string(j: int) -> int:
        """Consumes a quoted literal starting at the quote text[j]; returns
        the index past the closing quote."""
        quote = text[j]
        j += 1
        while j < n:
            c = text[j]
            if c == "\\":
                j += 2
                continue
            if c == quote or c == "\n":  # unterminated: stop at newline
                return j + 1 if c == quote else j
            j += 1
        return j

    while i < n:
        c = text[i]

        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue

        # Comments.
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                j = text.find("\n", i)
                i = n if j < 0 else j
                continue
            if text[i + 1] == "*":
                j = text.find("*/", i + 2)
                if j < 0:
                    line += text.count("\n", i)
                    i = n
                else:
                    line += text.count("\n", i, j)
                    i = j + 2
                continue

        # Preprocessor directive: '#' first on the line; consume through
        # backslash-newline continuations.
        if c == "#" and at_line_start:
            start, start_line = i, line
            while i < n:
                j = text.find("\n", i)
                if j < 0:
                    i = n
                    break
                if text[j - 1 : j] == "\\":
                    line += 1
                    i = j + 1
                    continue
                i = j  # leave the newline for the main loop
                break
            toks.append(Token(TOK_PP, text[start:i], start_line))
            continue

        at_line_start = False

        # Raw strings: (prefix)R"delim( ... )delim"
        if c in _IDENT_START:
            j = i + 1
            while j < n and text[j] in _IDENT_CONT:
                j += 1
            word = text[i:j]
            if j < n and text[j] in "\"'":
                prefix_ok = word in _STR_PREFIXES or word in {"R", "u8R", "uR", "UR", "LR"}
                if prefix_ok and text[j] == '"' and word.endswith("R"):
                    # Raw literal: find the delimiter, then the terminator.
                    k = text.find("(", j + 1)
                    if k < 0:
                        k = n
                    delim = text[j + 1 : k]
                    end = text.find(")" + delim + '"', k)
                    end = n if end < 0 else end + len(delim) + 2
                    toks.append(Token(TOK_STR, text[i:end], line))
                    line += text.count("\n", i, end)
                    i = end
                    continue
                if prefix_ok:
                    end = take_string(j)
                    kind = TOK_STR if text[j] == '"' else TOK_CHAR
                    toks.append(Token(kind, text[i:end], line))
                    i = end
                    continue
            toks.append(Token(TOK_IDENT, word, line))
            i = j
            continue

        if c == '"':
            end = take_string(i)
            toks.append(Token(TOK_STR, text[i:end], line))
            i = end
            continue
        if c == "'":
            end = take_string(i)
            toks.append(Token(TOK_CHAR, text[i:end], line))
            i = end
            continue

        # Numbers (pp-number: digits, hex, exponents, ' separators, and a
        # leading '.5' form).
        if c in _DIGITS or (c == "." and i + 1 < n and text[i + 1] in _DIGITS):
            j = i + 1
            while j < n:
                d = text[j]
                if d in _IDENT_CONT or d in ".'":
                    j += 1
                elif d in "+-" and text[j - 1] in "eEpP":
                    j += 1
                else:
                    break
            toks.append(Token(TOK_NUM, text[i:j], line))
            i = j
            continue

        # Punctuation: fuse only '::' and '->'.
        if c == ":" and i + 1 < n and text[i + 1] == ":":
            toks.append(Token(TOK_PUNCT, "::", line))
            i += 2
            continue
        if c == "-" and i + 1 < n and text[i + 1] == ">":
            toks.append(Token(TOK_PUNCT, "->", line))
            i += 2
            continue
        toks.append(Token(TOK_PUNCT, c, line))
        i += 1

    return toks
