"""Per-file token/declaration model built on the cpplex token stream.

A FileModel owns the token list for one translation unit plus the
derived facts rules ask about:

  * quoted #include targets (with their lines),
  * names declared as std::unordered_{map,set} (declarations may span
    lines — the token stream doesn't care),
  * range-based for statements and the container name they iterate
    (structured bindings `for (auto& [k, v] : m_)` included),
  * lambda capture lists (multi-line included) split into items,
  * function definitions: qualified name, parameter tokens, body tokens —
    the unit the symmetry and hot-path rules reason over.

Everything here is heuristic-but-token-accurate: matches can never come
from inside a string literal or comment, and balanced-bracket tracking
replaces the single-line regexes of the legacy linter.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from cpplex import TOK_IDENT, TOK_PP, TOK_PUNCT, Token, lex

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')

# Keywords that can be followed by '(' but never name a function.
_NON_FUNC_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "static_assert", "new", "delete", "throw", "case", "do",
    "else", "noexcept", "alignas", "typeid", "co_await", "co_return",
}

_OPEN = {"(": ")", "[": "]", "{": "}"}
_CLOSE = {")": "(", "]": "[", "}": "{"}


@dataclass
class Include:
    target: str  # the quoted path, e.g. "sdur/messages.h"
    line: int


@dataclass
class RangeFor:
    line: int
    container: str  # last identifier of the range expression chain


@dataclass
class CaptureItem:
    line: int
    name: str        # captured (or init-capture) name
    init: list[Token] | None  # tokens right of '=' for init-captures, else None
    by_ref: bool


@dataclass
class FunctionDef:
    name: str            # unqualified name, e.g. "decode"
    qualifier: str       # enclosing-scope qualifier, e.g. "VoteMsg" ("" if free)
    line: int
    params: list[Token]  # tokens between the parameter parens
    body: list[Token]    # tokens between the body braces (exclusive)


def skip_balanced(tokens: list[Token], i: int, open_ch: str) -> int:
    """`tokens[i]` is `open_ch`; returns the index just past its matching
    close token, or len(tokens) if unbalanced."""
    close = _OPEN[open_ch]
    depth = 0
    for j in range(i, len(tokens)):
        t = tokens[j].text
        if t == open_ch:
            depth += 1
        elif t == close:
            depth -= 1
            if depth == 0:
                return j + 1
    return len(tokens)


def skip_template_args(tokens: list[Token], i: int, limit: int = 256) -> int:
    """`tokens[i]` is '<' opening a template argument list; returns the
    index just past the matching '>'. Angle brackets are counted
    individually (the lexer never fuses '>>'); parens/brackets inside the
    argument list are skipped as units, and a sanity bound plus ';'/'{'
    cutoffs keep a stray comparison operator from eating the file."""
    depth = 0
    j = i
    end = min(i + limit, len(tokens))
    while j < end:
        t = tokens[j].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif t in ("(", "["):
            j = skip_balanced(tokens, j, t)
            continue
        elif t in (";", "{"):
            break  # clearly not a template argument list
        j += 1
    return len(tokens)


def first_template_arg(tokens: list[Token], i: int) -> list[Token]:
    """`tokens[i]` is '<'; returns the tokens of the first template
    argument (up to a top-level ',' or the matching '>')."""
    end = skip_template_args(tokens, i)
    depth = 0
    out: list[Token] = []
    for j in range(i + 1, end - 1):
        t = tokens[j].text
        if t in "<([":
            depth += 1
        elif t in ">)]":
            depth -= 1
        elif t == "," and depth == 0:
            break
        out.append(tokens[j])
    return out


def spell(tokens: list[Token]) -> str:
    """Human-readable spelling of a token run: identifiers separated by
    spaces, punctuation fused — `const Slot*`, `std::vector<int>`."""
    out = ""
    for t in tokens:
        if out and out[-1].isalnum() and (t.text[0].isalnum() or t.text[0] == "_"):
            out += " "
        out += t.text
    return out


class FileModel:
    def __init__(self, path: Path, rel: str, text: str | None = None):
        self.path = path
        self.rel = rel
        self.text = path.read_text() if text is None else text
        self.tokens: list[Token] = lex(self.text)
        self._includes: list[Include] | None = None
        self._functions: list[FunctionDef] | None = None

    # ---- preprocessor ----

    @property
    def includes(self) -> list[Include]:
        if self._includes is None:
            self._includes = []
            for t in self.tokens:
                if t.kind != TOK_PP:
                    continue
                m = _INCLUDE_RE.match(t.text)
                if m:
                    self._includes.append(Include(m.group(1), t.line))
        return self._includes

    # ---- declarations ----

    def unordered_decl_names(self) -> set[str]:
        """Names declared as std::unordered_{map,set} anywhere in the file
        (members, locals, parameters); multi-line declarations are free."""
        names: set[str] = set()
        toks = self.tokens
        for i, t in enumerate(toks):
            if t.kind != TOK_IDENT or t.text not in ("unordered_map", "unordered_set"):
                continue
            if i + 1 >= len(toks) or toks[i + 1].text != "<":
                continue
            j = skip_template_args(toks, i + 1)
            if j >= len(toks):
                continue
            if toks[j].text == "::":  # unordered_map<...>::iterator etc.
                continue
            k = j
            if k < len(toks) and toks[k].text == "&":
                k += 1
            if k + 1 < len(toks) and toks[k].kind == TOK_IDENT \
                    and toks[k + 1].text in (";", "=", "{", ",", ")"):
                names.add(toks[k].text)
        return names

    # ---- statements ----

    def range_fors(self) -> list[RangeFor]:
        """Range-based for statements and the container identifier they
        iterate. Mirrors the legacy rule's intent: the range expression
        must be a plain identifier/member chain (calls are skipped), but
        multi-line statements and structured bindings now work."""
        out: list[RangeFor] = []
        toks = self.tokens
        for i, t in enumerate(toks):
            if t.kind != TOK_IDENT or t.text != "for":
                continue
            if i + 1 >= len(toks) or toks[i + 1].text != "(":
                continue
            end = skip_balanced(toks, i + 1, "(")  # index past ')'
            # Find the range ':' at paren depth 1, outside [] (structured
            # bindings) and nested parens; a ';' first means a classic for.
            depth = 0
            colon = -1
            for j in range(i + 1, end):
                tj = toks[j].text
                if tj in "([{":
                    depth += 1
                elif tj in ")]}":
                    depth -= 1
                elif depth == 1 and tj == ";":
                    break
                elif depth == 1 and tj == ":":
                    colon = j
                    break
            if colon < 0:
                continue
            expr = toks[colon + 1 : end - 1]
            if not expr or expr[-1].kind != TOK_IDENT:
                continue  # e.g. `: foo.bar()` — a call, not a named container
            if any(e.text in ("(", "[") for e in expr):
                continue
            out.append(RangeFor(expr[-1].line, expr[-1].text))
        return out

    def lambda_captures(self) -> list[list[CaptureItem]]:
        """Capture lists of every lambda in the file (multi-line capture
        lists included). Subscripts and attributes are filtered out by
        looking at the token before '[' and after the matching ']'."""
        out: list[list[CaptureItem]] = []
        toks = self.tokens
        for i, t in enumerate(toks):
            if t.text != "[" or t.kind != TOK_PUNCT:
                continue
            prev = toks[i - 1] if i > 0 else None
            if prev is not None and (prev.kind == TOK_IDENT and prev.text not in
                                     ("return", "case", "mutable") or prev.text in ("]", ")")):
                continue  # subscript: ident[...] / )[...] / ][...]
            end = skip_balanced(toks, i, "[")  # index past ']'
            if end >= len(toks):
                continue
            nxt = toks[end].text
            if nxt not in ("(", "{", "->") and nxt != "mutable":
                continue
            inner = toks[i + 1 : end - 1]
            if inner and inner[0].text == "[":
                continue  # [[attribute]]
            items: list[CaptureItem] = []
            for run in _split_top_level(inner):
                if not run:
                    continue
                by_ref = run[0].text == "&"
                if by_ref:
                    run = run[1:]
                if not run or run[0].kind != TOK_IDENT:
                    continue  # '=', '*this', ...
                name = run[0].text
                init = None
                if len(run) >= 2 and run[1].text == "=":
                    init = run[2:]
                items.append(CaptureItem(run[0].line, name, init, by_ref))
            out.append(items)
        return out

    # ---- functions ----

    @property
    def functions(self) -> list[FunctionDef]:
        """Function definitions (free functions, class methods defined
        inline or out of line). Heuristic: `name ( params ) [const|noexcept|
        -> type]* {`, where `name` is not a control keyword; the scan
        resumes past each body, so lambdas inside bodies are not listed."""
        if self._functions is not None:
            return self._functions
        funcs: list[FunctionDef] = []
        toks = self.tokens
        i = 0
        while i < len(toks):
            t = toks[i]
            if t.text != "(" or t.kind != TOK_PUNCT or i == 0:
                i += 1
                continue
            name_tok = toks[i - 1]
            if name_tok.kind != TOK_IDENT or name_tok.text in _NON_FUNC_KEYWORDS:
                i += 1
                continue
            close = skip_balanced(toks, i, "(")  # index past ')'
            if close >= len(toks):
                break
            # Allow trailing `const`, `noexcept(...)`, `override`, `-> T<...>`.
            j = close
            ok = True
            while j < len(toks) and toks[j].text != "{":
                tj = toks[j]
                if tj.kind == TOK_IDENT and tj.text in ("const", "noexcept", "override", "final"):
                    j += 1
                elif tj.text == "(":
                    j = skip_balanced(toks, j, "(")
                elif tj.text == "->":
                    j += 1
                    while j < len(toks) and (toks[j].kind == TOK_IDENT or toks[j].text == "::"):
                        j += 1
                    if j < len(toks) and toks[j].text == "<":
                        j = skip_template_args(toks, j)
                else:
                    ok = False
                    break
            if not ok or j >= len(toks):
                i += 1
                continue
            body_end = skip_balanced(toks, j, "{")  # index past '}'
            qualifier = ""
            if i >= 3 and toks[i - 2].text == "::" and toks[i - 3].kind == TOK_IDENT:
                qualifier = toks[i - 3].text
            funcs.append(FunctionDef(
                name=name_tok.text,
                qualifier=qualifier,
                line=name_tok.line,
                params=toks[i + 1 : close - 1],
                body=toks[j + 1 : body_end - 1],
            ))
            i = body_end
        self._functions = funcs
        return funcs


def _split_top_level(tokens: list[Token]) -> list[list[Token]]:
    """Splits a token run on commas not nested in (), [], {} or <>."""
    out: list[list[Token]] = []
    cur: list[Token] = []
    depth = 0
    for t in tokens:
        if t.text in "<([{":
            depth += 1
        elif t.text in ">)]}":
            depth -= 1
        if t.text == "," and depth == 0:
            out.append(cur)
            cur = []
        else:
            cur.append(t)
    out.append(cur)
    return out
