"""Rule engine for the SDUR protocol-aware static analyzer.

Drives every registered rule over the scanned tree, applies the
allowlist, and renders text and/or JSON reports. The contract is the
one the legacy determinism linter established:

  * findings are `path:line: [rule] message`,
  * provably-safe uses live in the allowlist as `path:rule:token  # why`,
  * stale allowlist entries (matching nothing) are themselves errors,
  * exit status: 0 clean, 1 findings/stale entries, 2 usage error.

New over the legacy linter: per-rule severity (warnings are reported but
do not fail the run), per-rule allowlist bans (rules whose contract is
"no exceptions, by design" reject allowlist entries outright), suggested
fixes carried on every finding, and a machine-readable `--json` report
in the style of bench/common.h's BENCH_*.json rows.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from cppmodel import FileModel

SEV_ERROR = "error"
SEV_WARNING = "warning"

EXTENSIONS = {".h", ".cpp"}

# Directories the legacy determinism linter scanned; the migrated rules
# keep this scope so their findings stay comparable, while the new
# protocol rules see all of src/.
LEGACY_DIRS = ("src/sim/", "src/sdur/", "src/paxos/", "src/storage/", "src/pdur/",
               "src/trace/")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    token: str
    message: str
    severity: str = SEV_ERROR
    suggestion: str = ""
    allowlisted: bool = False

    def key(self) -> str:
        return f"{self.path}:{self.rule}:{self.token}"

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Rule:
    """A pluggable check. `run(ctx)` yields Findings for the whole tree
    (rules decide per-file applicability themselves via ctx.models)."""
    name: str
    description: str
    run: object  # callable(Context) -> iterable[Finding]
    severity: str = SEV_ERROR
    no_allowlist: bool = False  # entries for this rule are rejected
    suggestion: str = ""


class Context:
    """What rules get to see: the scan root and every lexed file."""

    def __init__(self, root: Path, models: list[FileModel]):
        self.root = root
        self.models = models
        self._unordered_names: set[str] | None = None

    def legacy_models(self) -> list[FileModel]:
        return [m for m in self.models if m.rel.startswith(LEGACY_DIRS)]

    def unordered_names(self) -> set[str]:
        """Container names declared unordered anywhere in the legacy scan
        dirs (members are declared in headers but iterated in .cpp)."""
        if self._unordered_names is None:
            names: set[str] = set()
            for m in self.legacy_models():
                names |= m.unordered_decl_names()
            self._unordered_names = names
        return self._unordered_names


@dataclass
class AllowEntry:
    key: str
    comment: str
    line: int
    used: int = 0


@dataclass
class Report:
    root: Path
    files: int
    findings: list[Finding]
    stale: list[AllowEntry]
    bad_entries: list[str]  # allowlist entries that are not permitted at all
    rules: list[Rule]
    allowlist_path: Path | None

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings
                if f.severity == SEV_ERROR and not f.allowlisted]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings
                if f.severity == SEV_WARNING and not f.allowlisted]

    @property
    def failures(self) -> int:
        return len(self.errors) + len(self.stale) + len(self.bad_entries)


def load_allowlist(path: Path | None) -> list[AllowEntry]:
    entries: list[AllowEntry] = []
    if path is None or not path.exists():
        return entries
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        body, _, comment = raw.partition("#")
        body = body.strip()
        if body:
            entries.append(AllowEntry(body, comment.strip(), lineno))
    return entries


def collect_files(root: Path, subdir: str = "src") -> list[Path]:
    base = root / subdir
    if not base.is_dir():
        raise FileNotFoundError(f"missing scan dir {base}")
    return [p for p in sorted(base.rglob("*")) if p.suffix in EXTENSIONS]


def run_analysis(root: Path, rules: list[Rule],
                 allowlist_path: Path | None = None,
                 rule_filter: set[str] | None = None) -> Report:
    """Lexes the tree once, runs every (selected) rule, applies the
    allowlist. Raises FileNotFoundError if root/src is missing."""
    files = collect_files(root)
    models = [FileModel(p, p.relative_to(root).as_posix()) for p in files]
    ctx = Context(root, models)

    selected = [r for r in rules if rule_filter is None or r.name in rule_filter]
    findings: list[Finding] = []
    for rule in selected:
        for f in rule.run(ctx):
            f.severity = f.severity or rule.severity
            if not f.suggestion:
                f.suggestion = rule.suggestion
            findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.token))

    entries = load_allowlist(allowlist_path)
    no_allow_rules = {r.name for r in rules if r.no_allowlist}
    bad_entries: list[str] = []
    by_key: dict[str, AllowEntry] = {}
    for e in entries:
        parts = e.key.split(":")
        rule_name = parts[1] if len(parts) >= 3 else ""
        if rule_name in no_allow_rules:
            bad_entries.append(
                f"allowlist entry `{e.key}` is not permitted: rule `{rule_name}` "
                f"accepts no exceptions by design")
            continue
        by_key[e.key] = e
    for f in findings:
        e = by_key.get(f.key())
        if e is not None:
            e.used += 1
            f.allowlisted = True
    stale = [e for e in by_key.values() if e.used == 0]

    return Report(root=root, files=len(files), findings=findings, stale=stale,
                  bad_entries=bad_entries, rules=selected,
                  allowlist_path=allowlist_path)


def render_text(report: Report, out) -> None:
    for f in report.findings:
        if f.allowlisted:
            continue
        prefix = "error" if f.severity == SEV_ERROR else "warning"
        print(f"{prefix}: {f}", file=out)
        if f.suggestion:
            print(f"    fix: {f.suggestion}", file=out)
    for e in report.stale:
        print(f"error: stale allowlist entry `{e.key}` matches nothing "
              f"({report.allowlist_path})", file=out)
    for msg in report.bad_entries:
        print(f"error: {msg}", file=out)


def render_summary(report: Report, out) -> None:
    allowed = sum(1 for f in report.findings if f.allowlisted)
    if report.failures:
        name = report.allowlist_path.name if report.allowlist_path else "the allowlist"
        print(f"analyze: {report.failures} failure(s) "
              f"({len(report.errors)} finding(s), {len(report.stale)} stale + "
              f"{len(report.bad_entries)} rejected allowlist entr(ies)). "
              f"Fix the code or, if the use is provably safe, add "
              f"`path:rule:token  # why` to {name}.", file=out)
    else:
        print(f"analyze: {report.files} files clean over {len(report.rules)} rule(s) "
              f"({allowed} allowlisted use(s), {len(report.warnings)} warning(s))",
              file=out)


def to_json(report: Report) -> dict:
    return {
        "tool": "analyze",
        "schema": 1,
        "root": str(report.root),
        "files_scanned": report.files,
        "rules": [{"name": r.name, "description": r.description,
                   "severity": r.severity, "no_allowlist": r.no_allowlist}
                  for r in report.rules],
        "findings": [{
            "path": f.path, "line": f.line, "rule": f.rule, "token": f.token,
            "severity": f.severity, "message": f.message,
            "suggestion": f.suggestion, "allowlisted": f.allowlisted,
        } for f in report.findings],
        "allowlist": {
            "path": str(report.allowlist_path) if report.allowlist_path else None,
            "stale": [e.key for e in report.stale],
            "rejected": list(report.bad_entries),
        },
        "summary": {
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "stale_allowlist_entries": len(report.stale),
            "clean": report.failures == 0,
        },
    }


def write_json(report: Report, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_json(report), indent=1, sort_keys=True) + "\n")
