"""Encode/decode wire-format symmetry.

For every message codec pair defined in a wire-format file
(src/*/messages.cpp, src/sdur/transaction.cpp), the ordered sequence of
typed codec operations in the encoder must mirror the decoder — count,
order, and width — so wire-format skew is caught at lint time instead of
in a torture test.

Pairing (within one file):
  Message X::to_message() const   <->  X X::decode(Reader&)
  void X::encode(Writer&) / Bytes X::encode()  <->  X::decode(...)
  Value encode_<name>(...)        <->  decode_<name>(...)
  void put_<name>(Writer&, ...)   <->  <T> get_<name>(Reader&)   (helpers)

Extraction walks the body token stream in order and records
  * primitive ops on the Writer/Reader object: u8/u16/u32/u64/i64/
    varint/bytes/raw — the op name *is* the width, so u32-vs-u64 skew is
    a finding;
  * helper calls put_X(w, ...) / get_X(r) as `helper:X`;
  * sub-codec calls `expr.encode(w)` / `T::decode(r)` as `sub`;
  * for/while loops as nested sequences (the loop body must mirror the
    loop body; a count varint before the loop is an ordinary op).

Branches are flattened in source order: a codec whose encoder and
decoder take the same branch structure (the only deterministic wire
format possible) compares equal; anything else is exactly the skew this
rule exists to catch.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from cpplex import TOK_IDENT, Token
from cppmodel import FunctionDef, skip_balanced
from engine import Context, Finding, Rule

_PRIMS = {"u8", "u16", "u32", "u64", "i64", "varint", "bytes", "raw"}
_SYMMETRY_FILES = re.compile(r"(^|/)(messages\.cpp|transaction\.cpp)$")


@dataclass
class Op:
    kind: str  # "prim" | "helper" | "sub" | "loop"
    what: str  # prim name, helper suffix, or "" for sub/loop
    line: int
    body: list["Op"] | None = None

    def describe(self) -> str:
        if self.kind == "prim":
            return self.what
        if self.kind == "helper":
            return f"helper `{self.what}`"
        if self.kind == "sub":
            return "a sub-codec call"
        return f"a loop of [{', '.join(o.describe() for o in self.body or [])}]"


def _collect_obj_names(tokens: list[Token], type_name: str) -> set[str]:
    """Names of locals/params of type `Writer`/`Reader` (optionally
    util::-qualified, optionally references): `Writer w;`, `Reader& r`,
    `util::Reader r(buf)`."""
    names: set[str] = set()
    for i, t in enumerate(tokens):
        if t.kind != TOK_IDENT or t.text != type_name:
            continue
        j = i + 1
        if j < len(tokens) and tokens[j].text == "&":
            j += 1
        if j < len(tokens) and tokens[j].kind == TOK_IDENT:
            names.add(tokens[j].text)
    return names


def _extract_ops(tokens: list[Token], objs: set[str], mode: str) -> list[Op]:
    """Ordered codec-op sequence of a body; `mode` is "enc" or "dec"."""
    ops: list[Op] = []
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == TOK_IDENT and t.text in ("for", "while") \
                and i + 1 < n and tokens[i + 1].text == "(":
            after_head = skip_balanced(tokens, i + 1, "(")
            if after_head < n and tokens[after_head].text == "{":
                end = skip_balanced(tokens, after_head, "{")
                body = tokens[after_head + 1 : end - 1]
            else:
                # single-statement loop body: up to the ';' at depth 0
                depth = 0
                end = after_head
                while end < n:
                    txt = tokens[end].text
                    if txt in "([{":
                        depth += 1
                    elif txt in ")]}":
                        depth -= 1
                    elif txt == ";" and depth == 0:
                        break
                    end += 1
                body = tokens[after_head:end]
                end += 1
            inner = _extract_ops(body, objs, mode)
            if inner:
                ops.append(Op("loop", "", t.line, inner))
            i = end
            continue
        if t.kind == TOK_IDENT:
            nxt = tokens[i + 1] if i + 1 < n else None
            prv = tokens[i - 1] if i > 0 else None
            # w.u64(...) / r.u64()
            if t.text in objs and nxt is not None and nxt.text == "." \
                    and i + 3 < n and tokens[i + 2].kind == TOK_IDENT \
                    and tokens[i + 2].text in _PRIMS and tokens[i + 3].text == "(":
                ops.append(Op("prim", tokens[i + 2].text, t.line))
                i += 4
                continue
            # put_x(w, ...) / get_x(r)
            prefix = "put_" if mode == "enc" else "get_"
            if t.text.startswith(prefix) and len(t.text) > len(prefix) \
                    and nxt is not None and nxt.text == "(" \
                    and i + 2 < n and tokens[i + 2].text in objs:
                ops.append(Op("helper", t.text[len(prefix):], t.line))
                i += 3
                continue
            # expr.encode(w) / T::decode(r)
            if mode == "enc" and t.text == "encode" and prv is not None \
                    and prv.text == "." and nxt is not None and nxt.text == "(" \
                    and i + 2 < n and tokens[i + 2].text in objs:
                ops.append(Op("sub", "", t.line))
                i += 3
                continue
            if mode == "dec" and t.text == "decode" and prv is not None \
                    and prv.text == "::" and nxt is not None and nxt.text == "(" \
                    and i + 2 < n and tokens[i + 2].text in objs:
                ops.append(Op("sub", "", t.line))
                i += 3
                continue
        i += 1
    return ops


def _compare(enc: list[Op], dec: list[Op], where: str) -> str | None:
    """Returns a mismatch description, or None if the sequences mirror."""
    for k, (e, d) in enumerate(zip(enc, dec)):
        pos = f"field {k + 1}{where}"
        if e.kind != d.kind or (e.kind in ("prim", "helper") and e.what != d.what):
            if e.kind == "prim" and d.kind == "prim":
                return (f"{pos}: encoder writes `{e.what}` (line {e.line}) but decoder "
                        f"reads `{d.what}` (line {d.line}) — width/order skew")
            return (f"{pos}: encoder emits {e.describe()} (line {e.line}) but decoder "
                    f"consumes {d.describe()} (line {d.line})")
        if e.kind == "loop":
            msg = _compare(e.body or [], d.body or [], f" of the loop at {pos}")
            if msg:
                return msg
    if len(enc) != len(dec):
        lo = min(len(enc), len(dec))
        if len(enc) > len(dec):
            extra = enc[lo]
            return (f"encoder emits {len(enc)} field(s){where} but decoder consumes "
                    f"{len(dec)}: {extra.describe()} (line {extra.line}) is never read")
        extra = dec[lo]
        return (f"decoder consumes {len(dec)} field(s){where} but encoder emits "
                f"{len(enc)}: {extra.describe()} (line {extra.line}) is never written")
    return None


def _pair_name(fn: FunctionDef) -> tuple[str, str] | None:
    """(pair key, side) for a codec function, or None."""
    if fn.name == "to_message" and fn.qualifier:
        return fn.qualifier, "enc"
    if fn.name == "encode" and fn.qualifier:
        return fn.qualifier, "enc"
    if fn.name == "decode" and fn.qualifier:
        return fn.qualifier, "dec"
    if fn.name.startswith("encode_"):
        return fn.name[len("encode_"):], "enc"
    if fn.name.startswith("decode_"):
        return fn.name[len("decode_"):], "dec"
    if fn.name.startswith("put_"):
        return f"helper:{fn.name[len('put_'):]}", "enc"
    if fn.name.startswith("get_"):
        return f"helper:{fn.name[len('get_'):]}", "dec"
    return None


def run_symmetry(ctx: Context):
    for m in ctx.models:
        if not _SYMMETRY_FILES.search(m.rel):
            continue
        encoders: dict[str, FunctionDef] = {}
        decoders: dict[str, FunctionDef] = {}
        for fn in m.functions:
            pair = _pair_name(fn)
            if pair is None:
                continue
            key, side = pair
            (encoders if side == "enc" else decoders)[key] = fn
        for key in sorted(set(encoders) | set(decoders)):
            enc_fn = encoders.get(key)
            dec_fn = decoders.get(key)
            if enc_fn is None or dec_fn is None:
                present = enc_fn or dec_fn
                missing = "decoder" if dec_fn is None else "encoder"
                yield Finding(
                    m.rel, present.line, "encode-decode-symmetry", key,
                    f"codec `{key}` has no matching {missing} in this file — "
                    f"symmetry cannot be checked", severity="warning")
                continue
            enc_objs = _collect_obj_names(enc_fn.params + enc_fn.body, "Writer")
            dec_objs = _collect_obj_names(dec_fn.params + dec_fn.body, "Reader")
            enc_ops = _extract_ops(enc_fn.body, enc_objs, "enc")
            dec_ops = _extract_ops(dec_fn.body, dec_objs, "dec")
            msg = _compare(enc_ops, dec_ops, "")
            if msg:
                yield Finding(
                    m.rel, dec_fn.line, "encode-decode-symmetry", key,
                    f"wire-format skew in codec `{key}`: {msg}")


RULES = [
    Rule("encode-decode-symmetry",
         "encoder and decoder of each wire message must mirror each other's "
         "typed codec calls (count, order, width)",
         run_symmetry,
         suggestion="make decode read exactly the fields encode writes, in the "
                    "same order and width"),
]
