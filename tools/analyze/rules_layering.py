"""Layering rules: enforce the src/ dependency DAG from actual #include
graphs, plus file-level include-cycle detection.

The enforced DAG (see DESIGN.md "Static analysis"):

    util <- audit <- sim <- storage <- paxos
                      ^       ^          ^
                      |       |          |
                    trace   pdur <---- sdur <- workload

i.e. each layer may include only the layers listed for it below. This
refines the coarse sketch `util <- sim <- {storage, workload} <- paxos
<- sdur <- pdur` with the facts of this codebase: `audit` is the
cross-cutting invariant layer (includes only util, includable from any
protocol layer); `pdur` sits *below* `sdur` (sdur::Certifier drives the
per-core lanes, not the other way around); `trace` is the observability
layer — it sees util and sim (for sim::Time) and every protocol layer
may include it, but `sim` itself must never depend on trace (the
simulator's schedule cannot be influenced by whether tracing is
compiled in); and `workload` is the top-of-stack driver layer. The
config below is the source of truth; the rule fails on any edge outside
it, and on any #include cycle among the scanned files regardless of
layers.
"""

from __future__ import annotations

from engine import Context, Finding, Rule

# layer -> layers it may #include (self-includes are always allowed).
ALLOWED_DEPS: dict[str, set[str]] = {
    "util": set(),
    "audit": {"util"},
    "sim": {"util", "audit"},
    "trace": {"util", "sim"},
    "storage": {"util", "audit", "sim"},
    "paxos": {"util", "audit", "sim", "storage", "trace"},
    "pdur": {"util", "audit", "sim", "storage", "trace"},
    "sdur": {"util", "audit", "sim", "storage", "paxos", "pdur", "trace"},
    "workload": {"util", "audit", "sim", "storage", "sdur", "pdur", "trace"},
}


def _check_config_acyclic() -> None:
    """The allowed-deps map itself must be a DAG — a config mistake here
    would quietly legalize a cycle."""
    seen: dict[str, int] = {}  # 0=visiting, 1=done

    def visit(layer: str, stack: list[str]) -> None:
        state = seen.get(layer)
        if state == 1:
            return
        if state == 0:
            raise RuntimeError(f"layering config cycle: {' -> '.join(stack + [layer])}")
        seen[layer] = 0
        for dep in ALLOWED_DEPS.get(layer, set()):
            visit(dep, stack + [layer])
        seen[layer] = 1

    for l in ALLOWED_DEPS:
        visit(l, [])


_check_config_acyclic()


def _layer_of(rel: str) -> str | None:
    parts = rel.split("/")
    return parts[1] if len(parts) >= 3 and parts[0] == "src" else None


def run_layering(ctx: Context):
    for m in ctx.models:
        layer = _layer_of(m.rel)
        if layer is None or layer not in ALLOWED_DEPS:
            continue
        allowed = ALLOWED_DEPS[layer]
        for inc in m.includes:
            dep = inc.target.split("/")[0]
            if dep not in ALLOWED_DEPS or dep == layer or dep in allowed:
                continue
            yield Finding(
                m.rel, inc.line, "layering", dep,
                f"`src/{layer}` may not include `{inc.target}`: the layering DAG "
                f"allows {layer} -> {{{', '.join(sorted(allowed)) or 'nothing'}}} only")


def run_include_cycle(ctx: Context):
    by_rel = {m.rel: m for m in ctx.models}
    # Edges: quoted includes resolved against src/ (the only include root).
    graph: dict[str, list[tuple[str, int]]] = {}
    for m in ctx.models:
        edges = []
        for inc in m.includes:
            target = f"src/{inc.target}"
            if target in by_rel:
                edges.append((target, inc.line))
        graph[m.rel] = edges

    WHITE, GREY, BLACK = 0, 1, 2
    color = {rel: WHITE for rel in graph}
    reported: set[tuple[str, ...]] = set()

    def canonical(cycle: list[str]) -> tuple[str, ...]:
        k = cycle.index(min(cycle))
        return tuple(cycle[k:] + cycle[:k])

    def dfs(start: str):
        stack: list[tuple[str, int]] = [(start, 0)]
        path = [start]
        color[start] = GREY
        while stack:
            node, ei = stack[-1]
            edges = graph[node]
            if ei >= len(edges):
                stack.pop()
                path.pop()
                color[node] = BLACK
                continue
            stack[-1] = (node, ei + 1)
            nxt, line = edges[ei]
            if color[nxt] == GREY:
                cyc = canonical(path[path.index(nxt):])
                if cyc not in reported:
                    reported.add(cyc)
                    yield Finding(
                        node, line, "include-cycle", " -> ".join(cyc + (cyc[0],)),
                        f"#include cycle: {' -> '.join(cyc + (cyc[0],))}")
            elif color[nxt] == WHITE:
                color[nxt] = GREY
                stack.append((nxt, 0))
                path.append(nxt)

    for rel in sorted(graph):
        if color[rel] == WHITE:
            yield from dfs(rel)


RULES = [
    Rule("layering",
         "src/ dependency DAG enforced from actual #include graphs "
         "(util <- audit <- sim <- {trace, storage} <- {paxos, pdur} <- sdur "
         "<- workload; sim never includes trace)",
         run_layering,
         suggestion="move the shared type down a layer, or invert the dependency "
                    "with a callback/interface owned by the lower layer"),
    Rule("include-cycle",
         "#include cycle among scanned files",
         run_include_cycle,
         no_allowlist=True,
         suggestion="break the cycle with a forward declaration or by splitting "
                    "the header"),
]
