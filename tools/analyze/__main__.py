#!/usr/bin/env python3
"""Protocol-aware static analysis for the SDUR repo.

Usage: python3 tools/analyze [--root DIR] [--allowlist FILE] [--json OUT]
                             [--rules r1,r2] [--list-rules] [--selftest]

A token-accurate C++ lint engine (cpplex/cppmodel) with a pluggable rule
set (engine + rules_*): the seven determinism rules migrated from the
legacy regex linter, the src/ layering DAG with include-cycle detection,
encode/decode wire-format symmetry, hot-path hygiene for the
certification fast path, and the technique-config single-source rule.
See DESIGN.md "Static analysis" for the rule catalog and the allowlist
contract.

Exit status: 0 clean, 1 findings or stale allowlist entries, 2 usage
error. Wired into CTest as `analyze_lint` (the tree scan) and
`analyzer_selftest` (the fixture corpus under tests/analyze_fixtures/),
into tools/check.sh stage 1, and into `cmake --build build --target
analyze` (which also writes bench_json/ANALYZE.json).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import engine
import rules_config
import rules_determinism
import rules_hotpath
import rules_layering
import rules_symmetry

ALL_RULES = (rules_determinism.RULES + rules_layering.RULES +
             rules_symmetry.RULES + rules_hotpath.RULES +
             rules_config.RULES)

# The rule set the legacy linter shipped; the selftest pins these against
# the legacy linter's recorded findings on the legacy_pin fixture tree.
LEGACY_RULE_NAMES = {r.name for r in rules_determinism.RULES}


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="analyze", description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this package)")
    ap.add_argument("--allowlist", default=None,
                    help="allowlist file (default: tools/analyze_allow.txt)")
    ap.add_argument("--json", dest="json_out", default=None,
                    help="write a machine-readable report to this path")
    ap.add_argument("--rules", default=None,
                    help="comma-separated rule subset to run")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalog and exit")
    ap.add_argument("--selftest", action="store_true",
                    help="run the fixture-corpus selftest instead of a tree scan")
    args = ap.parse_args(argv)

    root = (Path(args.root) if args.root
            else Path(__file__).resolve().parent.parent.parent)
    if not root.is_dir():
        print(f"analyze: no such root {root}", file=sys.stderr)
        return 2

    if args.list_rules:
        for r in ALL_RULES:
            flags = []
            if r.severity != engine.SEV_ERROR:
                flags.append(r.severity)
            if r.no_allowlist:
                flags.append("no-allowlist")
            suffix = f"  [{', '.join(flags)}]" if flags else ""
            print(f"{r.name:26} {r.description}{suffix}")
        return 0

    if args.selftest:
        import selftest
        return selftest.run(root)

    rule_filter = None
    if args.rules:
        rule_filter = {s.strip() for s in args.rules.split(",") if s.strip()}
        unknown = rule_filter - {r.name for r in ALL_RULES}
        if unknown:
            print(f"analyze: unknown rule(s): {', '.join(sorted(unknown))} "
                  f"(--list-rules shows the catalog)", file=sys.stderr)
            return 2

    allow_path = (Path(args.allowlist) if args.allowlist
                  else root / "tools/analyze_allow.txt")
    try:
        report = engine.run_analysis(root, ALL_RULES, allow_path, rule_filter)
    except FileNotFoundError as e:
        print(f"analyze: {e}", file=sys.stderr)
        return 2

    engine.render_text(report, sys.stderr)
    engine.render_summary(report, sys.stderr if report.failures else sys.stdout)
    if args.json_out:
        engine.write_json(report, Path(args.json_out))
    return 1 if report.failures else 0


if __name__ == "__main__":
    sys.exit(main())
