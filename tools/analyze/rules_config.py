"""Technique-configuration single-source rule.

Every optional-technique knob lives in sdur::TechniqueConfig (see
DESIGN.md "Technique configuration"): one struct, one string grammar,
consumed by the benches, the CLI and the tests alike. History shows the
failure mode — before the unification, reorder/delaying/bloom flags were
plumbed by hand in three places and drifted. The rule pins the contract
structurally:

  config-single-source   a plain `bool` data member declared in a struct
                         other than TechniqueConfig inside the
                         src/sdur/*config*.h headers. Technique toggles
                         are bools; a new one belongs in TechniqueConfig,
                         where the grammar, presets, validate() and the
                         format/parse round trip pick it up for free.
                         ServerConfig's legacy names are reference
                         aliases (`bool& ooo_bypass = techniques...`) —
                         references are never flagged, nor are `bool`
                         function declarations.

Scope: headers under src/sdur/ whose name ends in `config.h` (config.h,
technique_config.h). Other layers keep their own bools (pdur::Config is
a structural model, not a technique toggle).
"""

from __future__ import annotations

from cpplex import TOK_IDENT
from engine import Context, Finding, Rule

_EXEMPT_STRUCTS = {"TechniqueConfig"}


def _struct_bool_members(m):
    """Yields (struct_name, name_token) for every plain-bool data member
    of every struct/class body in the file, tracking nesting."""
    toks = m.tokens
    n = len(toks)
    # Stack of (struct_name_or_None, entry_depth); None = non-struct brace.
    stack: list[tuple[str | None, int]] = []
    depth = 0
    i = 0
    while i < n:
        t = toks[i]
        if t.text in ("struct", "class") and t.kind == TOK_IDENT:
            # struct NAME [final] [: bases] { — find the opening brace
            # before any ';' (which would make it a forward declaration).
            j = i + 1
            name = None
            if j < n and toks[j].kind == TOK_IDENT:
                name = toks[j].text
                j += 1
            while j < n and toks[j].text not in ("{", ";"):
                j += 1
            if j < n and toks[j].text == "{" and name is not None:
                stack.append((name, depth))
                depth += 1
                i = j + 1
                continue
            i = j + 1
            continue
        if t.text == "{":
            depth += 1
        elif t.text == "}":
            depth -= 1
            if stack and depth == stack[-1][1]:
                stack.pop()
        elif t.text == "bool" and stack and depth == stack[-1][1] + 1:
            # A member at the immediate body depth of the innermost
            # struct. `bool& x` is a reference alias; `bool f(...)` a
            # function; `bool x = ...;` / `bool x;` a data member.
            j = i + 1
            if j < n and toks[j].kind == TOK_IDENT and toks[j].text != "operator":
                name_tok = toks[j]
                k = j + 1
                if k < n and toks[k].text in ("=", ";", "{"):
                    yield stack[-1][0], name_tok
                    i = k
                    continue
        i += 1


def run_config_single_source(ctx: Context):
    for m in ctx.models:
        if not m.rel.startswith("src/sdur/") or not m.rel.endswith("config.h"):
            continue
        for struct, tok in _struct_bool_members(m):
            if struct in _EXEMPT_STRUCTS:
                continue
            yield Finding(
                m.rel, tok.line, "config-single-source", tok.text,
                f"bool knob `{tok.text}` declared in `{struct}` — technique "
                f"toggles belong in TechniqueConfig (grammar/presets/validate "
                f"pick them up); re-export legacy names as `bool&` aliases")


RULES = [
    Rule("config-single-source",
         "technique bool knobs in src/sdur/*config*.h must be declared "
         "inside TechniqueConfig (references and functions exempt)",
         run_config_single_source,
         suggestion="move the knob into TechniqueConfig and, if an old name "
                    "must survive, alias it: `bool& name = techniques.name;`"),
]
