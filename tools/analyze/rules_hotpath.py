"""Hot-path hygiene for the certification fast path.

Certification runs once per delivered transaction on every replica — the
per-delivery cost IS the replica's throughput ceiling (see
bench/cert_perf). These rules keep allocation and exception machinery
out of the functions on that path:

  hotpath-alloc          `new` / make_unique / make_shared in a hot body.
  hotpath-container-copy a container deep-copied in a hot body: a
                         container-typed local copy-initialized from an
                         lvalue chain, or a container parameter taken by
                         value. Move-inits from a call/std::move are fine.
  hotpath-throw          `throw` in a hot body: in audit-off builds
                         (benchmark configuration) these paths must
                         report verdicts, not unwind.

Hot functions are matched by name, per the certification call graph:
`certify*`, anything containing `conflict` (conflicts_*, scan_conflict,
indexed_conflict, has_conflict, reads_conflict, writes_conflict), and
`scan_after`. Under src/sdur/ the vote-exchange path is hot too:
`handle_vote*` bodies run once per received vote (unicast, batch entry,
or piggybacked ride) and `flush_votes*` once per batch window per
destination partition; the out-of-order-commit gate (anything containing
`bypass` or starting with `park`/`unpark`: park_on_insert, park_bound,
unpark_on_removal, next_bypassable, park_rebuild, bypass_sweep) runs on
every delivery and every pending-head completion; the speculative
global commit path (anything starting with `speculate`/`finalize`/
`rollback`, under src/sdur/ and src/storage/: speculate_head,
finalize_spec, rollback_spec, MVStore::rollback) runs per speculated
global and per vote resolution. Under src/trace/ the
span-emit path is hot: every
instrumented protocol step calls Tracer::record_*/append per delivered
transaction, and the tracer's zero-allocation-at-steady-state contract
(see src/trace/trace.h) dies if those bodies allocate or throw — there
`record*`, `emit*` and `append*` bodies are checked as well. Scope: the
protocol dirs (src/{sim,sdur,paxos,storage,pdur,trace}) —
workload/audit tooling may allocate freely.
"""

from __future__ import annotations

from cpplex import TOK_IDENT, Token
from cppmodel import FunctionDef, skip_balanced, skip_template_args, _split_top_level
from engine import Context, Finding, Rule

_CONTAINERS = {"vector", "deque", "string", "map", "set", "unordered_map",
               "unordered_set", "KeySet", "Bytes", "Value"}
_ALLOC_CALLS = {"make_unique", "make_shared"}
_CHAIN_OK = {".", "->", "::"}


def _is_hot(name: str, rel: str) -> bool:
    # Trailing underscore = data member by convention: a constructor's
    # member initializer (`ooo_bypass_(flag) { ... }`) parses as a
    # function definition whose "body" is the constructor's, and must not
    # make the constructor hot.
    if name.endswith("_"):
        return False
    if name == "scan_after" or name.startswith("certify") or "conflict" in name:
        return True
    # The vote delivery/flush path (src/sdur/): handle_vote* runs once per
    # received vote (unicast, batch entry, or piggybacked ride) and
    # flush_votes* once per batch window per destination partition — see
    # DESIGN.md "Vote exchange & batching".
    if rel.startswith("src/sdur/") and name.startswith(("handle_vote", "flush_votes")):
        return True
    # The out-of-order local commit gate (src/sdur/): park_* and
    # unpark_* run per delivery / per pending removal, and the bypass
    # probe/sweep per completion — see DESIGN.md "Out-of-order local
    # commit".
    if rel.startswith("src/sdur/") and ("bypass" in name or name.startswith(("park", "unpark"))):
        return True
    # The speculative-global-commit path (src/sdur/ + src/storage/):
    # speculate* runs once per eligible pending-list head, finalize*/
    # rollback* once per vote resolution (MVStore::rollback walks every
    # written key's chain) — see DESIGN.md "Speculative global commit".
    # audit_spec_floor is deliberately NOT hot: it throws by contract.
    if (rel.startswith(("src/sdur/", "src/storage/"))
            and name.startswith(("speculate", "finalize", "rollback"))):
        return True
    # The tracer's record/emit/append path runs once per instrumented
    # protocol step; its zero-alloc contract is load-bearing.
    return rel.startswith("src/trace/") and name.startswith(("record", "emit", "append"))


def _is_lvalue_chain(tokens: list[Token]) -> bool:
    """True for a plain identifier/member chain (`probe.keys`, `s_->rs_`):
    copying from it deep-copies the container. Calls, moves, literals and
    arithmetic are not flagged."""
    if not tokens:
        return False
    for t in tokens:
        if t.kind != TOK_IDENT and t.text not in _CHAIN_OK:
            return False
    return tokens[-1].kind == TOK_IDENT


def _container_decl_copies(fn: FunctionDef, rel: str):
    toks = fn.body
    n = len(toks)
    i = 0
    while i < n:
        t = toks[i]
        if t.kind != TOK_IDENT or t.text not in _CONTAINERS:
            i += 1
            continue
        j = i + 1
        if j < n and toks[j].text == "<":
            j = skip_template_args(toks, j)
        if j < n and toks[j].text in ("&", "*"):
            i = j  # reference/pointer: never a copy
            continue
        if j >= n or toks[j].kind != TOK_IDENT:
            i += 1
            continue
        name_tok = toks[j]
        k = j + 1
        init: list[Token] | None = None
        if k < n and toks[k].text == "=":
            init = []
            depth = 0
            k += 1
            while k < n:
                txt = toks[k].text
                if txt in "([{":
                    depth += 1
                elif txt in ")]}":
                    depth -= 1
                elif txt == ";" and depth == 0:
                    break
                init.append(toks[k])
                k += 1
        elif k < n and toks[k].text in ("(", "{"):
            close = skip_balanced(toks, k, toks[k].text)
            init = toks[k + 1 : close - 1]
            # multiple constructor args: not a plain copy
            if any(tt.text == "," for tt in init):
                init = None
        if init is not None and _is_lvalue_chain(init):
            yield Finding(
                rel, name_tok.line, "hotpath-container-copy", name_tok.text,
                f"`{name_tok.text}` deep-copies a container inside hot function "
                f"`{fn.name}` — certification pays this per delivered transaction")
        i = j + 1


def _byvalue_params(fn: FunctionDef, rel: str):
    for run in _split_top_level(fn.params):
        if not run:
            continue
        has_container = any(t.kind == TOK_IDENT and t.text in _CONTAINERS for t in run)
        if not has_container:
            continue
        if any(t.text in ("&", "*") for t in run):
            continue
        name = next((t.text for t in reversed(run) if t.kind == TOK_IDENT), "?")
        yield Finding(
            rel, run[0].line, "hotpath-container-copy", name,
            f"hot function `{fn.name}` takes container parameter `{name}` by value — "
            f"every call copies it")


def run_hotpath_hygiene(ctx: Context):
    for m in ctx.legacy_models():
        for fn in m.functions:
            if not _is_hot(fn.name, m.rel):
                continue
            toks = fn.body
            for i, t in enumerate(toks):
                if t.kind != TOK_IDENT:
                    continue
                if t.text == "new":
                    yield Finding(
                        m.rel, t.line, "hotpath-alloc", "new",
                        f"`new` inside hot function `{fn.name}` — the certification "
                        f"path must not allocate per delivery")
                elif t.text in _ALLOC_CALLS:
                    yield Finding(
                        m.rel, t.line, "hotpath-alloc", t.text,
                        f"`{t.text}` inside hot function `{fn.name}` — the certification "
                        f"path must not allocate per delivery")
                elif t.text == "throw":
                    yield Finding(
                        m.rel, t.line, "hotpath-throw", "throw",
                        f"`throw` inside hot function `{fn.name}` — audit-off protocol "
                        f"paths must report verdicts, not unwind")
            yield from _container_decl_copies(fn, m.rel)
            yield from _byvalue_params(fn, m.rel)


RULES = [
    Rule("hotpath-alloc",
         "no new/make_unique/make_shared in certify/conflicts_*/scan_after "
         "bodies, src/sdur/ handle_vote*/flush_votes* vote-exchange, "
         "*bypass*/park*/unpark* out-of-order-commit and speculate*/"
         "finalize*/rollback* speculation bodies (also src/storage/), or "
         "src/trace/ record*/emit*/append* span-emit bodies",
         lambda ctx: (f for f in run_hotpath_hygiene(ctx) if f.rule == "hotpath-alloc"),
         suggestion="preallocate outside the certification path (arena/ring "
                    "patterns, see storage/commit_window.h)"),
    Rule("hotpath-container-copy",
         "no container deep-copies (locals copy-initialized from lvalues, "
         "by-value container parameters) in hot certification, "
         "vote-exchange, out-of-order-commit, or speculation bodies",
         lambda ctx: (f for f in run_hotpath_hygiene(ctx) if f.rule == "hotpath-container-copy"),
         suggestion="take const&, or reuse a scratch buffer owned by the caller"),
    Rule("hotpath-throw",
         "no throwing constructs in audit-off protocol hot paths "
         "(certification, vote exchange, out-of-order commit, speculation, "
         "and trace span-emit)",
         lambda ctx: (f for f in run_hotpath_hygiene(ctx) if f.rule == "hotpath-throw"),
         suggestion="return a verdict, or guard the invariant with SDUR_AUDIT_CHECK "
                    "(compiled out in benchmark builds)"),
]
