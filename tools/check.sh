#!/usr/bin/env bash
# Full static/dynamic analysis gate for the SDUR repo.
#
# Runs, in order:
#   1. the static analyzer (tools/analyze): determinism rules, the src/
#      layering DAG, encode/decode symmetry and hot-path hygiene; writes
#      a machine-readable report to bench_json/ANALYZE.json;
#   2. clang-format / clang-tidy, when the tools exist (they are optional —
#      the reference container ships gcc only);
#   3. a -Werror compile of the whole tree (the warning set is
#      -Wall -Wextra -Wconversion -Wshadow, see CMakeLists.txt);
#   4. the test suite under AddressSanitizer + UndefinedBehaviorSanitizer;
#   5. the test suite under -D_GLIBCXX_ASSERTIONS (hardened libstdc++);
#   6. a -DSDUR_TRACE=OFF build: the tracing macros must compile to
#      no-ops (the tracer-heavy tests plus the histogram suite run to
#      prove the tree still builds and behaves without instrumentation);
#   7. the test suite under ThreadSanitizer. The simulator is
#      single-threaded, so this is a smoke pass over the protocol tests;
#      the slow end-to-end suites are excluded unless SDUR_CHECK_FULL=1.
#
# Build trees land in build-{werror,asan,glibcxx,traceoff,tsan}/ (see
# CMakePresets.json for the equivalent presets). Knobs:
#   SDUR_CHECK_JOBS=N   parallelism (default: nproc)
#   SDUR_CHECK_FULL=1   run every test (including the multi-minute
#                       integration sweeps) in the TSan stage too
#   SDUR_CHECK_SKIP_TSAN=1  skip the TSan stage entirely
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${SDUR_CHECK_JOBS:-$(nproc)}"
FULL="${SDUR_CHECK_FULL:-0}"
SKIP_TSAN="${SDUR_CHECK_SKIP_TSAN:-0}"

bold() { printf '\n\033[1m== %s ==\033[0m\n' "$*"; }

configure_and_build() { # <dir> <cmake-args...>
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@" >"$dir.configure.log" 2>&1 || {
    cat "$dir.configure.log"; return 1; }
  cmake --build "$dir" -j "$JOBS"
}

run_ctest() { # <dir> <extra ctest args...>
  local dir="$1"; shift
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" "$@")
}

bold "1/7 static analysis"
mkdir -p bench_json
python3 tools/analyze --selftest
python3 tools/analyze --json bench_json/ANALYZE.json

bold "2/7 clang-format / clang-tidy (optional)"
if command -v clang-format >/dev/null 2>&1; then
  mapfile -t fmt_files < <(git ls-files '*.h' '*.cpp')
  clang-format --dry-run --Werror "${fmt_files[@]}"
  echo "clang-format: clean"
else
  echo "clang-format not installed — skipped (config: .clang-format)"
fi
if command -v clang-tidy >/dev/null 2>&1 && command -v run-clang-tidy >/dev/null 2>&1; then
  configure_and_build build-tidy -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  run-clang-tidy -p build-tidy -quiet -j "$JOBS" 'src/.*\.cpp'
else
  echo "clang-tidy not installed — skipped (config: .clang-tidy)"
fi

bold "3/7 -Werror compile (-Wall -Wextra -Wconversion -Wshadow)"
configure_and_build build-werror -DCMAKE_CXX_FLAGS=-Werror
echo "warnings-clean"

bold "4/7 ASan + UBSan test suite"
configure_and_build build-asan -DSDUR_SANITIZE=asan
ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1:detect_stack_use_after_return=1" \
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
  run_ctest build-asan

bold "5/7 _GLIBCXX_ASSERTIONS test suite"
configure_and_build build-glibcxx -DSDUR_GLIBCXX_ASSERTIONS=ON
run_ctest build-glibcxx

bold "6/7 SDUR_TRACE=OFF build"
# The tracing macros must vanish cleanly: the whole tree compiles with
# SDUR_TRACE=0 and the trace/histogram tests still pass (the equivalence
# test proves the simulation itself never depended on the tracer).
configure_and_build build-traceoff -DSDUR_TRACE=OFF
# latency_breakdown_smoke / trace_json_parses are excluded: with the
# instrumentation compiled out there is nothing to attribute or export.
run_ctest build-traceoff -R 'Trace|Histogram'

bold "7/7 TSan test suite"
if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "skipped (SDUR_CHECK_SKIP_TSAN=1)"
else
  configure_and_build build-tsan -DSDUR_SANITIZE=tsan
  tsan_args=()
  if [[ "$FULL" != "1" ]]; then
    # The sim is single-threaded; exclude the multi-minute end-to-end
    # sweeps, which cannot race any more than the unit tests can.
    tsan_args=(-E 'Integration\.|Sweep/|Torture')
  fi
  TSAN_OPTIONS="halt_on_error=1" run_ctest build-tsan "${tsan_args[@]}"
fi

bold "all checks passed"
