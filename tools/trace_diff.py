#!/usr/bin/env python3
"""Timeline diff between two Chrome-trace exports (baseline vs technique).

Both inputs are `latency_breakdown --trace-json=...` (or
`sdur_sim --breakdown` + trace::write_chrome_trace) exports: Chrome
trace-event JSON whose "i" instants carry the per-transaction lifecycle
marks (tx.submit, tx.handle, tx.deliver, tx.certified, tx.ready,
tx.completed, tx.outcome — args.id is the transaction, tx.certified's
args.aux encodes committed/global/cost) and whose "X" spans carry the
protocol-internal intervals (paxos.consensus, vote.wait, lane.work, ...).

The diff reports, technique minus baseline:
  - the per-stage latency attribution per transaction class (the same
    telescoping stages as trace::build_breakdown), so a technique's effect
    shows up as "locals' commit_wait mean -43.0 ms" rather than a bare
    end-to-end delta;
  - per-name span aggregates (count, total, mean) with the top regressed
    span names — where the technique *added* time — called out;
  - instant counts (tx.bypassed, tx.parked, vote.flush, ...), which is
    where technique-specific events surface.

Usage:
  trace_diff.py BASELINE.json TECHNIQUE.json [--top N]
  trace_diff.py --selftest

With --selftest the script diffs the two small exports checked in under
tools/trace_diff_fixtures/ and verifies the computed numbers exactly
(wired up as the trace_diff_selftest ctest entry).
"""

import argparse
import json
import pathlib
import sys

STAGES = ("submit_net", "ordering", "cert_queue", "execution", "lane_exec",
          "commit_wait", "spec_window", "reply_net")

# Lifecycle marks (exported as "i" instants) that define a chain.
CHAIN_POINTS = ("tx.submit", "tx.handle", "tx.deliver", "tx.certified",
                "tx.ready", "tx.speculated", "tx.completed", "tx.outcome")


def aux_committed(aux):
    return (aux & 1) != 0


def aux_global(aux):
    return (aux & 2) != 0


def aux_cost(aux):
    return aux >> 2


class Chain:
    __slots__ = ("submit", "handle", "outcome", "deliver", "certified",
                 "ready", "speculated", "completed", "aux", "tid")

    def __init__(self):
        self.submit = self.handle = self.outcome = None
        self.deliver = self.certified = self.ready = self.completed = None
        self.speculated = None
        self.aux = 0
        self.tid = None


def build_breakdown(events):
    """Mirrors trace::build_breakdown over the exported instants: stage
    sums/counts per class, over complete committed chains only."""
    chains = {}
    # Pass 1: client-side marks; tx.completed pins the contact track.
    for e in events:
        if e.get("ph") != "i" or e.get("name") not in CHAIN_POINTS:
            continue
        c = chains.setdefault(e["args"]["id"], Chain())
        name, ts = e["name"], e["ts"]
        if name == "tx.submit" and c.submit is None:
            c.submit = ts
        elif name == "tx.handle" and c.handle is None:
            c.handle = ts
        elif name == "tx.outcome" and c.outcome is None:
            c.outcome = ts
        elif name == "tx.completed" and c.completed is None:
            c.completed = ts
            c.tid = e["tid"]
    # Pass 2: the contact replica's delivery-side marks (first each).
    for e in events:
        if e.get("ph") != "i" or e.get("name") not in ("tx.deliver", "tx.certified",
                                                       "tx.ready", "tx.speculated"):
            continue
        c = chains.get(e["args"]["id"])
        if c is None or c.tid != e["tid"]:
            continue
        name, ts = e["name"], e["ts"]
        if name == "tx.deliver" and c.deliver is None:
            c.deliver = ts
        elif name == "tx.certified" and c.certified is None:
            c.certified = ts
            c.aux = e["args"]["aux"]
        elif name == "tx.ready" and c.ready is None:
            c.ready = ts
        elif name == "tx.speculated" and c.speculated is None:
            c.speculated = ts

    out = {cls: {"chains": 0, "e2e": 0.0,
                 "stage": {s: 0.0 for s in STAGES}} for cls in ("local", "global")}
    for c in chains.values():
        if None in (c.submit, c.handle, c.deliver, c.certified, c.completed, c.outcome):
            continue
        if not aux_committed(c.aux):
            continue
        cost = aux_cost(c.aux)
        work_start = c.certified - cost
        ready = c.ready if c.ready is not None else c.certified
        # A chain that never speculated has an empty spec_window (the
        # stages keep telescoping either way) — mirrors export.cpp.
        spec = c.speculated if c.speculated is not None else c.completed
        stages = {
            "submit_net": c.handle - c.submit,
            "ordering": c.deliver - c.handle,
            "cert_queue": work_start - c.deliver,
            "execution": cost,
            "lane_exec": ready - c.certified,
            "commit_wait": spec - ready,
            "spec_window": c.completed - spec,
            "reply_net": c.outcome - c.completed,
        }
        if any(v < 0 for v in stages.values()):
            continue  # crashed-replica clock hole; cannot be attributed
        cls = out["global" if aux_global(c.aux) else "local"]
        cls["chains"] += 1
        cls["e2e"] += c.outcome - c.submit
        for s, v in stages.items():
            cls["stage"][s] += v
    return out


def span_aggregates(events):
    """Per span-name: [count, total duration us]."""
    agg = {}
    for e in events:
        if e.get("ph") != "X":
            continue
        a = agg.setdefault(e["name"], [0, 0])
        a[0] += 1
        a[1] += e["dur"]
    return agg


def instant_counts(events):
    counts = {}
    for e in events:
        if e.get("ph") != "i":
            continue
        counts[e["name"]] = counts.get(e["name"], 0) + 1
    return counts


def load_events(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise SystemExit(f"{path}: not a Chrome trace export (no traceEvents)")
    return events


def mean(total, count):
    return total / count if count else 0.0


def diff(base_events, tech_events, top=5, out=sys.stdout):
    """Prints the diff; returns the computed tables for the selftest."""
    w = out.write
    result = {}

    # --- Per-stage attribution deltas ------------------------------------
    base_bd, tech_bd = build_breakdown(base_events), build_breakdown(tech_events)
    result["breakdown"] = (base_bd, tech_bd)
    w("Per-stage latency attribution (technique - baseline, stage means):\n")
    for cls in ("local", "global"):
        b, t = base_bd[cls], tech_bd[cls]
        if b["chains"] == 0 and t["chains"] == 0:
            continue
        be2e, te2e = mean(b["e2e"], b["chains"]), mean(t["e2e"], t["chains"])
        w(f"  {cls}: {b['chains']} -> {t['chains']} chains, "
          f"e2e mean {be2e / 1000:.2f} -> {te2e / 1000:.2f} ms "
          f"({(te2e - be2e) / 1000:+.2f} ms)\n")
        for s in STAGES:
            bm = mean(b["stage"][s], b["chains"])
            tm = mean(t["stage"][s], t["chains"])
            if bm == 0 and tm == 0:
                continue
            pct = f" ({100 * (tm - bm) / bm:+.0f}%)" if bm > 0 else ""
            w(f"    {s:<12} {bm / 1000:8.2f} -> {tm / 1000:8.2f} ms  "
              f"{(tm - bm) / 1000:+8.2f} ms{pct}\n")

    # --- Span aggregates --------------------------------------------------
    base_sp, tech_sp = span_aggregates(base_events), span_aggregates(tech_events)
    names = sorted(set(base_sp) | set(tech_sp))
    rows = []
    for n in names:
        bc, bt = base_sp.get(n, [0, 0])
        tc, tt = tech_sp.get(n, [0, 0])
        rows.append((n, bc, tc, mean(bt, bc), mean(tt, tc), tt - bt))
    result["spans"] = rows
    if rows:
        w("\nSpans (count, mean us, delta of total time):\n")
        for n, bc, tc, bm, tm, dt in rows:
            w(f"  {n:<20} {bc:6} -> {tc:6}   mean {bm:9.1f} -> {tm:9.1f} us"
              f"   total {dt:+.0f} us\n")
        regressed = sorted((r for r in rows if r[5] > 0), key=lambda r: -r[5])[:top]
        result["top_regressed"] = [r[0] for r in regressed]
        if regressed:
            w(f"\nTop regressed span names (technique added the most total time):\n")
            for n, _, tc, bm, tm, dt in regressed:
                w(f"  {n:<20} +{dt} us total  (mean {bm:.1f} -> {tm:.1f} us over {tc} spans)\n")
            slowest = sorted((e for e in tech_events
                              if e.get("ph") == "X" and e["name"] == regressed[0][0]),
                             key=lambda e: -e["dur"])[:top]
            w(f"\nSlowest '{regressed[0][0]}' spans in the technique export:\n")
            for e in slowest:
                w(f"  ts={e['ts']} dur={e['dur']} us tid={e['tid']} "
                  f"id={e.get('args', {}).get('id', 0)}\n")
        else:
            w("\nNo regressed span names.\n")
    else:
        result["top_regressed"] = []

    # --- Instant counts ---------------------------------------------------
    base_in, tech_in = instant_counts(base_events), instant_counts(tech_events)
    result["instants"] = (base_in, tech_in)
    changed = sorted(n for n in set(base_in) | set(tech_in)
                     if base_in.get(n, 0) != tech_in.get(n, 0))
    if changed:
        w("\nInstant counts that changed:\n")
        for n in changed:
            w(f"  {n:<20} {base_in.get(n, 0):6} -> {tech_in.get(n, 0):6}\n")
    return result


def selftest():
    fixtures = pathlib.Path(__file__).resolve().parent / "trace_diff_fixtures"
    base = load_events(fixtures / "baseline.json")
    tech = load_events(fixtures / "technique.json")
    import io
    buf = io.StringIO()
    r = diff(base, tech, top=3, out=buf)

    def check(cond, label):
        if not cond:
            sys.stderr.write(buf.getvalue())
            raise SystemExit(f"trace_diff selftest: FAILED: {label}")

    base_local = r["breakdown"][0]["local"]
    tech_local = r["breakdown"][1]["local"]
    check(base_local["chains"] == 2 and tech_local["chains"] == 2, "local chain count")
    check(mean(base_local["stage"]["commit_wait"], 2) == 4000.0,
          "baseline local commit_wait mean")
    check(mean(tech_local["stage"]["commit_wait"], 2) == 50.0,
          "technique local commit_wait mean")
    base_global = r["breakdown"][0]["global"]
    tech_global = r["breakdown"][1]["global"]
    check(base_global["chains"] == 1 and tech_global["chains"] == 1, "global chain count")
    check(mean(base_global["stage"]["commit_wait"], 1)
          == mean(tech_global["stage"]["commit_wait"], 1) == 8000.0,
          "global commit_wait unchanged")
    check(r["top_regressed"][:1] == ["paxos.consensus"], "top regressed span")
    spans = {row[0]: row for row in r["spans"]}
    check(spans["paxos.consensus"][5] == 500, "paxos.consensus total delta")
    base_in, tech_in = r["instants"]
    check(base_in.get("tx.bypassed", 0) == 0 and tech_in.get("tx.bypassed") == 2,
          "tx.bypassed instant delta")
    print("trace_diff selftest: OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?", help="baseline trace JSON")
    ap.add_argument("technique", nargs="?", help="technique trace JSON")
    ap.add_argument("--top", type=int, default=5, help="regressed spans to list")
    ap.add_argument("--selftest", action="store_true",
                    help="diff the checked-in fixtures and verify the numbers")
    args = ap.parse_args()
    if args.selftest:
        selftest()
        return
    if not args.baseline or not args.technique:
        ap.error("need BASELINE.json and TECHNIQUE.json (or --selftest)")
    diff(load_events(args.baseline), load_events(args.technique), top=args.top)


if __name__ == "__main__":
    main()
