// sdur_sim: command-line experiment runner.
//
// Runs one SDUR experiment (deployment x workload x knobs) and prints the
// per-class results; optionally dumps latency CDFs as CSV for plotting.
//
// Examples:
//   sdur_sim --deployment wan1 --workload micro --global-pct 10 --clients 600
//   sdur_sim --deployment wan2 --workload social --reorder 20 --auto-load
//   sdur_sim --deployment lan --partitions 8 --workload micro --seconds 20
//            --zipf 0.99 --csv out.csv
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "sdur/technique_config.h"
#include "trace/export.h"
#include "trace/trace.h"
#include "util/logging.h"
#include "workload/driver.h"
#include "workload/microbench.h"
#include "workload/social.h"
#include "workload/ycsb.h"

using namespace sdur;
using namespace sdur::workload;

namespace {

struct Options {
  std::string deployment = "lan";
  std::string workload = "micro";
  PartitionId partitions = 2;
  std::uint32_t replicas = 3;
  double global_pct = 10.0;
  std::uint64_t items = 100'000;
  std::uint64_t users = 20'000;
  std::uint32_t clients = 64;
  bool auto_load = false;
  double load_fraction = 0.75;
  /// All technique knobs live here (single source, see
  /// sdur/technique_config.h); the individual flags below are sugar that
  /// mutates this struct, and --techniques replaces it wholesale.
  TechniqueConfig techniques;
  bool certified_ro = false;
  double zipf = 0.0;
  double seconds = 10.0;
  std::uint64_t seed = 1;
  std::int64_t checkpoint_ms = 0;
  bool breakdown = false;
  std::string csv;
  bool verbose = false;
};

void usage() {
  std::printf(
      "sdur_sim — scalable deferred update replication simulator\n\n"
      "  --deployment lan|wan1|wan2   topology (default lan)\n"
      "  --partitions N               database partitions (default 2)\n"
      "  --replicas N                 replicas per partition (default 3)\n"
      "  --workload micro|social|ycsb-a|ycsb-b|ycsb-c  benchmark (default micro)\n"
      "  --global-pct F               %% global transactions, micro only (default 10)\n"
      "  --items N                    items per partition, micro (default 100000)\n"
      "  --users N                    users per partition, social (default 20000)\n"
      "  --zipf THETA                 key skew, micro (default 0 = uniform)\n"
      "  --clients N                  closed-loop clients (default 64)\n"
      "  --auto-load [FRACTION]       search the ~FRACTION-of-max operating point (0.75)\n"
      "  --techniques STR             technique config string, e.g. 'geo' or\n"
      "                               'reorder=24,bloom,speculation' (replaces any\n"
      "                               earlier technique flags; see below)\n"
      "  --reorder R                  reorder threshold (default 0 = baseline)\n"
      "  --delay MS                   delaying technique: 0=estimated, >0 fixed ms\n"
      "  --bloom                      bloom-filter readsets\n"
      "  --certified-ro               certify read-only transactions (social)\n"
      "  --checkpoint MS              checkpoint interval (default off)\n"
      "  --vote-batch [US]            batch cross-partition votes; optional flush\n"
      "                               interval in microseconds (default 200)\n"
      "  --ooo-bypass                 out-of-order local commit: conflict-free locals\n"
      "                               bypass pending globals (default off)\n"
      "  --speculate                  speculative global commit: apply locally-\n"
      "                               certified globals before their votes\n"
      "  --breakdown                  print the per-stage latency attribution table\n"
      "                               with p50/p95/p99 columns (needs SDUR_TRACE=1)\n"
      "  --seconds S                  measurement window (default 10)\n"
      "  --seed N                     RNG seed (default 1)\n"
      "  --csv FILE                   dump per-class latency CDFs as CSV\n"
      "  --verbose                    log leader elections etc.\n");
}

bool parse(int argc, char** argv, Options& o) {
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--deployment") o.deployment = need(i);
    else if (a == "--partitions") o.partitions = static_cast<PartitionId>(std::atoi(need(i)));
    else if (a == "--replicas") o.replicas = static_cast<std::uint32_t>(std::atoi(need(i)));
    else if (a == "--workload") o.workload = need(i);
    else if (a == "--global-pct") o.global_pct = std::atof(need(i));
    else if (a == "--items") o.items = std::strtoull(need(i), nullptr, 10);
    else if (a == "--users") o.users = std::strtoull(need(i), nullptr, 10);
    else if (a == "--zipf") o.zipf = std::atof(need(i));
    else if (a == "--clients") o.clients = static_cast<std::uint32_t>(std::atoi(need(i)));
    else if (a == "--auto-load") {
      o.auto_load = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') o.load_fraction = std::atof(argv[++i]);
    } else if (a == "--techniques") {
      std::string err;
      if (!parse_techniques(need(i), o.techniques, &err)) {
        std::fprintf(stderr, "bad --techniques: %s\n", err.c_str());
        return false;
      }
    } else if (a == "--reorder") {
      o.techniques.reorder_threshold = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (a == "--delay") {
      const std::int64_t ms = std::atoll(need(i));
      o.techniques.delaying_enabled = ms >= 0;
      o.techniques.fixed_delay = ms > 0 ? sim::msec(ms) : 0;
    } else if (a == "--bloom") o.techniques.bloom_readsets = true;
    else if (a == "--certified-ro") o.certified_ro = true;
    else if (a == "--checkpoint") o.checkpoint_ms = std::atoll(need(i));
    else if (a == "--vote-batch") {
      o.techniques.vote_batching = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        const std::int64_t us = std::atoll(argv[++i]);
        if (us > 0) o.techniques.vote_batch_interval = sim::usec(us);
      }
    } else if (a == "--ooo-bypass") o.techniques.ooo_bypass = true;
    else if (a == "--speculate") o.techniques.speculation = true;
    else if (a == "--breakdown") o.breakdown = true;
    else if (a == "--seconds") o.seconds = std::atof(need(i));
    else if (a == "--seed") o.seed = std::strtoull(need(i), nullptr, 10);
    else if (a == "--csv") o.csv = need(i);
    else if (a == "--verbose") o.verbose = true;
    else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

DeploymentSpec::Kind kind_of(const std::string& s) {
  if (s == "lan") return DeploymentSpec::Kind::kLan;
  if (s == "wan1") return DeploymentSpec::Kind::kWan1;
  if (s == "wan2") return DeploymentSpec::Kind::kWan2;
  std::fprintf(stderr, "unknown deployment '%s' (lan|wan1|wan2)\n", s.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) {
    usage();
    return 2;
  }
  if (o.verbose) util::Logger::instance().set_level(util::LogLevel::kInfo);
  if (const std::string err = o.techniques.validate(); !err.empty()) {
    std::fprintf(stderr, "bad technique config: %s\n", err.c_str());
    return 2;
  }

  const DeploymentSpec::Kind kind = kind_of(o.deployment);
  auto make_spec = [&] {
    DeploymentSpec spec;
    spec.kind = kind;
    spec.partitions = o.partitions;
    spec.replicas = o.replicas;
    spec.server.techniques = o.techniques;
    spec.server.checkpoint_interval = o.checkpoint_ms > 0 ? sim::msec(o.checkpoint_ms) : 0;
    spec.seed = o.seed;
    if (o.workload == "micro") {
      spec.partitioning = MicroWorkload::make_partitioning(o.partitions, o.items);
    } else if (o.workload.rfind("ycsb", 0) == 0) {
      spec.partitioning = YcsbWorkload::make_partitioning(o.partitions, o.items);
    } else {
      spec.partitioning = SocialWorkload::make_partitioning(o.partitions);
    }
    return spec;
  };

  MicroConfig mc;
  mc.items_per_partition = o.items;
  mc.global_fraction = o.global_pct / 100.0;
  mc.zipf_theta = o.zipf;
  SocialConfig sc;
  sc.users_per_partition = o.users;
  sc.certified_timeline = o.certified_ro;

  YcsbConfig yc;
  yc.records_per_partition = o.items;
  if (o.zipf > 0) yc.zipf_theta = o.zipf;
  if (o.workload == "ycsb-a") yc.mix = YcsbConfig::Mix::kA;
  if (o.workload == "ycsb-b") yc.mix = YcsbConfig::Mix::kB;
  if (o.workload == "ycsb-c") yc.mix = YcsbConfig::Mix::kC;

  auto make_workload = [&]() -> std::unique_ptr<Workload> {
    if (o.workload == "micro") return std::make_unique<MicroWorkload>(mc);
    if (o.workload == "social") return std::make_unique<SocialWorkload>(sc);
    if (o.workload.rfind("ycsb", 0) == 0) return std::make_unique<YcsbWorkload>(yc);
    std::fprintf(stderr, "unknown workload '%s' (micro|social|ycsb-a|ycsb-b|ycsb-c)\n",
                 o.workload.c_str());
    std::exit(2);
  };

  RunConfig cfg;
  cfg.settle = sim::msec(1200);
  cfg.warmup = sim::sec(1);
  cfg.measure = static_cast<sim::Time>(o.seconds * 1e6);
  cfg.seed = o.seed;
  cfg.clients = o.clients;

  if (o.auto_load) {
    RunConfig probe = cfg;
    probe.measure = sim::sec(4);
    cfg.clients = find_operating_point([&] { return std::make_unique<Deployment>(make_spec()); },
                                       make_workload, probe, o.load_fraction);
    std::printf("operating point: %u clients (~%.0f%% of max throughput)\n", cfg.clients,
                o.load_fraction * 100);
  }

  // Arm the tracer after the auto-load probes (their deployments must not
  // register tracks) and before the final deployment is built (track
  // registration happens in the Server/Client/PaxosEngine constructors).
#if SDUR_TRACE
  if (o.breakdown) {
    auto& tracer = trace::Tracer::instance();
    tracer.set_ring_capacity(1u << 20);
    tracer.set_enabled(true);
  }
#else
  if (o.breakdown) {
    std::fprintf(stderr, "sdur_sim: --breakdown needs an SDUR_TRACE=1 build; ignoring\n");
    o.breakdown = false;
  }
#endif

  Deployment dep(make_spec());
  auto wl = make_workload();
  const RunResult r = run_experiment(dep, *wl, cfg);

  std::printf("\n%s / %s: %u partitions x %u replicas, %u clients, %.1fs measured [%s]\n",
              o.deployment.c_str(), o.workload.c_str(), o.partitions, o.replicas, cfg.clients,
              o.seconds, format_techniques(o.techniques).c_str());
  std::printf("%-16s %10s %10s %10s %10s %10s\n", "class", "tput(tps)", "p50(ms)", "p99(ms)",
              "avg(ms)", "aborts");
  for (const auto& [cls, st] : r.classes) {
    std::printf("%-16s %10.0f %10.1f %10.1f %10.1f %10llu\n", cls.c_str(),
                static_cast<double>(st.committed) / r.duration_sec,
                static_cast<double>(st.latency.percentile(50)) / 1000.0,
                static_cast<double>(st.latency.percentile(99)) / 1000.0,
                st.latency.mean() / 1000.0, static_cast<unsigned long long>(st.aborted));
  }
  std::printf("\nservers: delivered=%llu committed=%llu(local)+%llu(global) aborted=%llu "
              "reordered=%llu ticks=%llu\n",
              static_cast<unsigned long long>(r.servers.delivered),
              static_cast<unsigned long long>(r.servers.committed_local),
              static_cast<unsigned long long>(r.servers.committed_global),
              static_cast<unsigned long long>(r.servers.aborted),
              static_cast<unsigned long long>(r.servers.reordered),
              static_cast<unsigned long long>(r.servers.ticks_sent));
  std::printf("network: %llu msgs, %.1f MB (%.0f B/committed-txn)\n",
              static_cast<unsigned long long>(r.net.messages_sent),
              static_cast<double>(r.net.bytes_sent) / 1e6,
              r.servers.committed_local + r.servers.committed_global == 0
                  ? 0.0
                  : static_cast<double>(r.net.bytes_sent) /
                        static_cast<double>(r.servers.committed_local + r.servers.committed_global));

  if (r.servers.bypassed_locals + r.servers.parked_locals > 0) {
    std::printf("ooo-bypass: bypassed=%llu parked=%llu\n",
                static_cast<unsigned long long>(r.servers.bypassed_locals),
                static_cast<unsigned long long>(r.servers.parked_locals));
  }

  if (r.servers.speculated_globals > 0) {
    std::printf("speculation: speculated=%llu finalized=%llu rolled-back=%llu\n",
                static_cast<unsigned long long>(r.servers.speculated_globals),
                static_cast<unsigned long long>(r.servers.spec_commits),
                static_cast<unsigned long long>(r.servers.spec_aborts));
  }

  if (r.servers.votes_batched + r.servers.votes_piggybacked > 0) {
    std::printf("votes: batches=%llu batched=%llu piggybacked=%llu stale-dropped=%llu\n",
                static_cast<unsigned long long>(r.servers.vote_batches_sent),
                static_cast<unsigned long long>(r.servers.votes_batched),
                static_cast<unsigned long long>(r.servers.votes_piggybacked),
                static_cast<unsigned long long>(r.servers.stale_votes_dropped));
  }

#if SDUR_TRACE
  if (o.breakdown) {
    auto& tracer = trace::Tracer::instance();
    tracer.set_enabled(false);
    const trace::Breakdown b = trace::build_breakdown(tracer);
    std::printf("\nlatency attribution (complete committed chains only):\n");
    const struct {
      const char* name;
      const trace::Breakdown::Class* c;
    } classes[] = {{"local", &b.local}, {"global", &b.global}};
    for (const auto& [name, c] : classes) {
      if (c->chains == 0) continue;
      std::printf("  %-8s (%llu chains): e2e mean %.1f ms, p50 %.1f, p95 %.1f, p99 %.1f ms\n",
                  name, static_cast<unsigned long long>(c->chains), c->e2e.mean() / 1000.0,
                  static_cast<double>(c->e2e.percentile(50)) / 1000.0,
                  static_cast<double>(c->e2e.percentile(95)) / 1000.0,
                  static_cast<double>(c->e2e.percentile(99)) / 1000.0);
      std::printf("    %-12s %13s %9s %9s %9s\n", "stage", "mean", "p50", "p95", "p99");
      for (std::size_t s = 0; s < trace::Breakdown::kStages; ++s) {
        const util::Histogram& h = c->stage[s];
        const double share = c->e2e.mean() > 0 ? 100.0 * h.mean() / c->e2e.mean() : 0;
        std::printf("    %-12s %6.2f (%4.1f%%) %7.2f %9.2f %9.2f ms\n",
                    trace::Breakdown::stage_name(s), h.mean() / 1000.0, share,
                    static_cast<double>(h.percentile(50)) / 1000.0,
                    static_cast<double>(h.percentile(95)) / 1000.0,
                    static_cast<double>(h.percentile(99)) / 1000.0);
      }
    }
    if (b.local.chains == 0 && b.global.chains == 0) {
      std::printf("  (no complete chains attributed — run longer or enlarge the ring)\n");
    }
    std::printf("  (aborted %llu, incomplete %llu chains; ring dropped %llu records)\n",
                static_cast<unsigned long long>(b.aborted_chains),
                static_cast<unsigned long long>(b.incomplete_chains),
                static_cast<unsigned long long>(tracer.records_dropped()));
  }
#endif  // SDUR_TRACE

  if (!o.csv.empty()) {
    std::ofstream out(o.csv);
    out << "class,latency_ms,cdf\n";
    for (const auto& [cls, st] : r.classes) {
      for (const auto& [value, frac] : st.latency.cdf()) {
        out << cls << ',' << static_cast<double>(value) / 1000.0 << ',' << frac << '\n';
      }
    }
    std::printf("wrote latency CDFs to %s\n", o.csv.c_str());
  }
  return 0;
}
