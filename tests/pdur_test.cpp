// P-DUR multi-core replica tests (src/pdur/, arXiv:1312.0742):
//
//  - the intra-replica sub-partitioner and per-core window primitives;
//  - the multi-core sim::Process cost model (per-core serial queues,
//    cross-core barrier);
//  - the central equivalence property: on the same seeded delivery
//    history, the parallel certifier commits/aborts *exactly* what the
//    serial certifier does (same outcome, position, version), for exact
//    and bloom readsets alike — P-DUR changes where time is spent, never
//    what is decided;
//  - checkpoint install rebuilds the per-core windows;
//  - end-to-end: a multi-core deployment stays deterministic across
//    repeat runs, keeps replicas byte-identical, and the online audit
//    (including the in-place parallel-vs-serial cross-check) stays clean.
#include <gtest/gtest.h>

#include <algorithm>

#include "audit/audit.h"
#include "audit/auditor.h"
#include "pdur/core_partitioner.h"
#include "pdur/parallel_window.h"
#include "sdur/certifier.h"
#include "sdur/deployment.h"
#include "sim/network.h"
#include "sim/process.h"
#include "sim/simulator.h"
#include "util/bloom.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "workload/driver.h"
#include "workload/microbench.h"

namespace sdur {
namespace {

// --- CorePartitioner ----------------------------------------------------------

TEST(CorePartitioner, EveryKeyHasExactlyOneHomeCore) {
  pdur::CorePartitioner part(4);
  for (Key k = 0; k < 1000; ++k) {
    const pdur::CoreId c = part.core_of(k);
    EXPECT_LT(c, 4u);
    EXPECT_EQ(c, part.core_of(k));  // stable
  }
}

TEST(CorePartitioner, KeysOfFiltersToOwnCore) {
  pdur::CorePartitioner part(3);
  std::vector<std::uint64_t> keys;
  for (Key k = 0; k < 200; ++k) keys.push_back(k);
  std::size_t total = 0;
  for (pdur::CoreId c = 0; c < 3; ++c) {
    const auto mine = part.keys_of(keys, c);
    total += mine.size();
    for (std::uint64_t k : mine) EXPECT_EQ(part.core_of(k), c);
  }
  EXPECT_EQ(total, keys.size());  // the sub-partition is a partition
}

TEST(CorePartitioner, SpreadIsRoughlyUniform) {
  pdur::CorePartitioner part(8);
  std::vector<std::size_t> counts(8, 0);
  for (Key k = 0; k < 80'000; ++k) ++counts[part.core_of(k)];
  for (std::size_t c : counts) {
    EXPECT_GT(c, 80'000 / 8 / 2);  // no core owns less than half its share
  }
}

TEST(CorePartitioner, HomeCoresUnionOfExactKeys) {
  pdur::CorePartitioner part(4);
  const Key a = 1, b = 2;
  const auto rs = util::KeySet::exact({a});
  const auto ws = util::KeySet::exact({b});
  const auto cores = part.home_cores(rs, ws);
  std::vector<pdur::CoreId> expected{part.core_of(a), part.core_of(b)};
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()), expected.end());
  EXPECT_EQ(cores, expected);
}

TEST(CorePartitioner, BloomReadsetHomesOnAllCores) {
  pdur::CorePartitioner part(4);
  const auto rs = util::KeySet::bloom({1, 2, 3}, 1e-4);
  const auto ws = util::KeySet::exact({7});
  EXPECT_EQ(part.home_cores(rs, ws).size(), 4u);
}

TEST(CorePartitioner, EmptySetsHomeOnCoreZero) {
  pdur::CorePartitioner part(4);
  const auto cores = part.home_cores(util::KeySet::exact({}), util::KeySet::exact({}));
  EXPECT_EQ(cores, std::vector<pdur::CoreId>{0});
}

// --- Multi-core process cost model --------------------------------------------

class CoreProbe : public sim::Process {
 public:
  CoreProbe(sim::Network& net, std::uint32_t cores)
      : sim::Process(net, 1, "probe", {sim::kEU, 0}) {
    set_core_count(cores);
  }
  using sim::Process::enqueue_work_multi;
  using sim::Process::enqueue_work_on;

 protected:
  void on_message(const sim::Message&, sim::ProcessId) override {}
};

struct ProcFixture {
  sim::Simulator sim;
  sim::Topology topo = sim::Topology::ec2_three_regions();
  std::unique_ptr<sim::Network> net;
  ProcFixture() {
    topo.set_jitter(0);
    net = std::make_unique<sim::Network>(sim, topo, 1);
  }
};

TEST(MultiCoreProcess, DistinctCoresRunConcurrently) {
  ProcFixture f;
  CoreProbe p(*f.net, 2);
  sim::Time done0 = 0, done1 = 0;
  p.enqueue_work_on(0, sim::usec(100), [&] { done0 = f.sim.now(); });
  p.enqueue_work_on(1, sim::usec(100), [&] { done1 = f.sim.now(); });
  f.sim.run();
  EXPECT_EQ(done0, sim::usec(100));
  EXPECT_EQ(done1, sim::usec(100));  // in parallel, not 200us
}

TEST(MultiCoreProcess, SameCoreSerializes) {
  ProcFixture f;
  CoreProbe p(*f.net, 2);
  sim::Time first = 0, second = 0;
  p.enqueue_work_on(0, sim::usec(100), [&] { first = f.sim.now(); });
  p.enqueue_work_on(0, sim::usec(100), [&] { second = f.sim.now(); });
  f.sim.run();
  EXPECT_EQ(first, sim::usec(100));
  EXPECT_EQ(second, sim::usec(200));
}

TEST(MultiCoreProcess, CrossCoreBarrierWaitsForBusiestCore) {
  ProcFixture f;
  CoreProbe p(*f.net, 2);
  sim::Time done = 0;
  p.enqueue_work_on(0, sim::usec(100), [] {});
  // The barrier starts when every involved core is free (core 0 at 100us)
  // and occupies them all for the work's duration.
  p.enqueue_work_multi({0, 1}, sim::usec(50), [&] { done = f.sim.now(); });
  f.sim.run();
  EXPECT_EQ(done, sim::usec(150));
  EXPECT_EQ(p.core_free_at(0), sim::usec(150));
  EXPECT_EQ(p.core_free_at(1), sim::usec(150));
}

TEST(MultiCoreProcess, SingleCoreLegacyPathUnchanged) {
  ProcFixture f;
  CoreProbe p(*f.net, 1);
  sim::Time done = 0;
  p.enqueue_work(sim::usec(42), [&] { done = f.sim.now(); });
  f.sim.run();
  EXPECT_EQ(done, sim::usec(42));
  EXPECT_EQ(p.core_count(), 1u);
}

// --- Parallel/serial certification equivalence --------------------------------

PartTx random_tx(util::Rng& rng, TxId id, std::uint64_t keyspace, bool bloom,
                 Version max_snapshot) {
  PartTx t;
  t.kind = PartTx::Kind::kTxn;
  t.id = id;
  t.involved = rng.chance(0.3) ? std::vector<PartitionId>{0, 1} : std::vector<PartitionId>{0};
  t.snapshot = max_snapshot == 0 ? 0 : static_cast<Version>(rng.below(
                                           static_cast<std::uint64_t>(max_snapshot) + 1));
  std::vector<Key> rs, ws;
  const std::size_t nr = 1 + rng.below(3);
  for (std::size_t i = 0; i < nr; ++i) rs.push_back(rng.below(keyspace));
  std::sort(rs.begin(), rs.end());
  rs.erase(std::unique(rs.begin(), rs.end()), rs.end());
  const std::size_t nw = rng.below(3);
  for (std::size_t i = 0; i < nw; ++i) ws.push_back(rng.below(keyspace));
  std::sort(ws.begin(), ws.end());
  ws.erase(std::unique(ws.begin(), ws.end()), ws.end());
  t.readset = bloom ? util::KeySet::bloom(rs, 1e-4) : util::KeySet::exact(rs);
  t.write_keys = util::KeySet::exact(ws);
  for (Key k : ws) t.writes.push_back(WriteOp{k, "v"});
  return t;
}

/// Feeds the same seeded history of contended transactions to a serial
/// certifier and a K-core parallel certifier, resolving entries in
/// lock-step, and demands byte-equal decisions throughout.
void run_equivalence(std::uint32_t cores, bool bloom, std::uint64_t seed) {
  const std::uint64_t violations_before = audit::Auditor::instance().total_violations();
  Certifier serial(64);
  Certifier par(64, cores);
  util::Rng rng(seed);
  std::uint64_t dc = 0;
  for (TxId id = 1; id <= 600; ++id) {
    // Two independent certifiers must see the identical transaction: fork
    // the generator once and give each the same stream.
    const PartTx t = random_tx(rng, id, /*keyspace=*/24, bloom, serial.certified());
    ++dc;
    const std::uint64_t rt = dc + (t.is_global() ? 8 : 0);
    const Certifier::Result rs = serial.process(t, rt, dc);
    const Certifier::Result rp = par.process(t, rt, dc);
    ASSERT_EQ(rs.outcome, rp.outcome) << "tx " << id;
    ASSERT_EQ(rs.position, rp.position) << "tx " << id;
    ASSERT_EQ(rs.version, rp.version) << "tx " << id;
    ASSERT_EQ(rs.stale_snapshot, rp.stale_snapshot) << "tx " << id;
    if (rp.outcome == Outcome::kCommit) {
      ASSERT_FALSE(rp.cores.empty()) << "tx " << id;
      for (pdur::CoreId c : rp.cores) ASSERT_LT(c, cores);
    }
    // Randomly resolve some pending prefix (same choices on both sides).
    while (!serial.empty() && rng.chance(0.4)) {
      const bool committed = rng.chance(0.8);
      serial.resolve(serial.pop_head(), committed);
      par.resolve(par.pop_head(), committed);
    }
    ASSERT_EQ(serial.certified(), par.certified());
    ASSERT_EQ(serial.stable(), par.stable());
  }
  // The in-place parallel-vs-serial audit cross-check ran on every
  // delivery above; it must not have tripped.
  EXPECT_EQ(audit::Auditor::instance().total_violations(), violations_before);
}

TEST(ParallelCertification, MatchesSerialExactReadsets2Cores) { run_equivalence(2, false, 101); }
TEST(ParallelCertification, MatchesSerialExactReadsets4Cores) { run_equivalence(4, false, 102); }
TEST(ParallelCertification, MatchesSerialExactReadsets8Cores) { run_equivalence(8, false, 103); }
TEST(ParallelCertification, MatchesSerialBloomReadsets4Cores) { run_equivalence(4, true, 104); }

TEST(ParallelCertification, InstallRebuildsPerCoreWindows) {
  Certifier a(64, 4);
  util::Rng rng(7);
  std::uint64_t dc = 0;
  for (TxId id = 1; id <= 80; ++id) {
    const PartTx t = random_tx(rng, id, 24, false, a.certified());
    ++dc;
    a.process(t, dc, dc);
    while (!a.empty() && rng.chance(0.5)) a.resolve(a.pop_head(), rng.chance(0.8));
  }
  util::Writer w;
  a.encode(w);
  const util::Bytes blob = std::move(w).take();

  Certifier b(64, 4);
  util::Reader r(blob);
  b.install(r);
  ASSERT_EQ(a.certified(), b.certified());
  ASSERT_EQ(a.stable(), b.stable());

  // Continue the identical history on both; the rebuilt windows must keep
  // producing the decisions of the originals.
  for (TxId id = 81; id <= 200; ++id) {
    const PartTx t = random_tx(rng, id, 24, false, a.certified());
    ++dc;
    const auto ra = a.process(t, dc, dc);
    const auto rb = b.process(t, dc, dc);
    ASSERT_EQ(ra.outcome, rb.outcome) << "tx " << id;
    ASSERT_EQ(ra.version, rb.version) << "tx " << id;
    while (!a.empty() && rng.chance(0.4)) {
      const bool committed = rng.chance(0.8);
      a.resolve(a.pop_head(), committed);
      b.resolve(b.pop_head(), committed);
    }
  }
}

// --- End-to-end multi-core deployment -----------------------------------------

workload::RunResult run_pdur_deployment(std::uint32_t cores, double cross_fraction,
                                        std::uint64_t seed) {
  DeploymentSpec spec;
  spec.kind = DeploymentSpec::Kind::kLan;
  spec.partitions = 1;
  const std::uint64_t items = 2'000;
  spec.partitioning = workload::MicroWorkload::make_partitioning(1, items);
  spec.server.pdur.cores = cores;
  spec.seed = seed;
  Deployment dep(spec);

  workload::RunConfig cfg;
  cfg.clients = 24;
  cfg.seed = seed;
  cfg.settle = sim::msec(800);
  cfg.warmup = sim::msec(300);
  cfg.measure = sim::sec(2);
  const sim::Time stop_at = cfg.settle + cfg.warmup + cfg.measure;

  workload::MicroConfig mc;
  mc.items_per_partition = items;
  mc.global_fraction = 0.0;
  mc.cores = cores;
  mc.cross_core_fraction = cross_fraction;
  mc.keep_running = [&dep, stop_at] { return dep.simulator().now() < stop_at; };
  workload::MicroWorkload wl(mc);

  const workload::RunResult r = run_experiment(dep, wl, cfg);

  // Quiesce and check the partition's replicas converged byte-identically.
  dep.run_until(dep.simulator().now() + sim::sec(10));
  for (Server* s : dep.servers()) {
    EXPECT_EQ(s->pending_count(), 0u) << s->name();
  }
  Server& ref = dep.server(0, 0);
  for (Key k : ref.store().keys()) {
    const auto* versions = ref.store().versions_of(k);
    for (std::uint32_t rep = 1; rep < dep.replica_count(); ++rep) {
      const auto* other = dep.server(0, rep).store().versions_of(k);
      if (versions == nullptr || other == nullptr || versions->size() != other->size()) {
        ADD_FAILURE() << "replica " << rep << " diverged on key " << k;
        continue;
      }
      for (std::size_t i = 0; i < versions->size(); ++i) {
        EXPECT_EQ((*versions)[i].version, (*other)[i].version) << "key " << k;
      }
    }
  }
#if SDUR_AUDIT_ON
  EXPECT_TRUE(audit::Auditor::instance().clean()) << audit::Auditor::instance().summary();
#endif
  return r;
}

TEST(PdurDeployment, MultiCoreReplicaCommitsAndStaysClean) {
  const auto r = run_pdur_deployment(4, 0.3, 21);
  const std::uint64_t committed = r.servers.committed_local + r.servers.committed_global;
  EXPECT_GT(committed, 200u) << "workload barely ran";
  EXPECT_GT(r.servers.pdur_single_core, 0u);
  EXPECT_GT(r.servers.pdur_cross_core, 0u);  // cross_fraction = 0.3 must show up
}

TEST(PdurDeployment, RepeatRunsAreBitIdentical) {
  const auto a = run_pdur_deployment(4, 0.2, 33);
  const auto b = run_pdur_deployment(4, 0.2, 33);
  EXPECT_EQ(a.servers.delivered, b.servers.delivered);
  EXPECT_EQ(a.servers.committed_local, b.servers.committed_local);
  EXPECT_EQ(a.servers.committed_global, b.servers.committed_global);
  EXPECT_EQ(a.servers.aborted, b.servers.aborted);
  EXPECT_EQ(a.servers.pdur_single_core, b.servers.pdur_single_core);
  EXPECT_EQ(a.servers.pdur_cross_core, b.servers.pdur_cross_core);
  EXPECT_EQ(a.servers.reads_served, b.servers.reads_served);
}

TEST(PdurDeployment, SingleCoreConfigMatchesLegacyModel) {
  // cores = 1 must take the exact legacy path: the parallel machinery is
  // never constructed and per-delivery costs match the serial replica.
  DeploymentSpec spec;
  spec.kind = DeploymentSpec::Kind::kLan;
  spec.partitions = 1;
  spec.partitioning = workload::MicroWorkload::make_partitioning(1, 1000);
  spec.seed = 5;
  Deployment legacy(spec);
  spec.server.pdur.cores = 1;  // explicit 1 == default
  Deployment one_core(spec);
  workload::RunConfig cfg;
  cfg.clients = 8;
  cfg.seed = 5;
  cfg.settle = sim::msec(800);
  cfg.warmup = sim::msec(200);
  cfg.measure = sim::sec(1);

  workload::MicroConfig mc;
  mc.items_per_partition = 1000;
  mc.global_fraction = 0.0;
  workload::MicroWorkload wl1(mc);
  workload::MicroWorkload wl2(mc);
  const auto ra = run_experiment(legacy, wl1, cfg);
  const auto rb = run_experiment(one_core, wl2, cfg);
  EXPECT_EQ(ra.servers.delivered, rb.servers.delivered);
  EXPECT_EQ(ra.servers.committed_local, rb.servers.committed_local);
  EXPECT_EQ(ra.servers.pdur_single_core, 0u);
  EXPECT_EQ(rb.servers.pdur_single_core, 0u);
}

}  // namespace
}  // namespace sdur
