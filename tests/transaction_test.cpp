// Codec and model tests: Transaction, PartTx, SDUR wire messages,
// partitioning schemes.
#include <gtest/gtest.h>

#include "sdur/messages.h"
#include "sdur/partitioning.h"
#include "sdur/transaction.h"

namespace sdur {
namespace {

TEST(Transaction, SnapshotVector) {
  Transaction t;
  EXPECT_EQ(t.snapshot_of(0), kNoSnapshot);
  t.set_snapshot(2, 17);
  t.set_snapshot(0, 5);
  t.set_snapshot(2, 18);  // overwrite
  EXPECT_EQ(t.snapshot_of(2), 18);
  EXPECT_EQ(t.snapshot_of(0), 5);
  EXPECT_EQ(t.snapshot_of(1), kNoSnapshot);
}

TEST(Transaction, EncodeDecodeRoundTrip) {
  Transaction t;
  t.id = 0xABCDEF01;
  t.client = 77;
  t.set_snapshot(0, 12);
  t.set_snapshot(3, -1);
  t.readset = {1, 2, 3};
  t.writeset = {{2, "two"}, {3, std::string("\0\x01binary", 8)}};

  util::Writer w;
  t.encode(w);
  util::Reader r(w.data());
  const Transaction d = Transaction::decode(r);
  EXPECT_EQ(d.id, t.id);
  EXPECT_EQ(d.client, t.client);
  EXPECT_EQ(d.snapshot_of(0), 12);
  EXPECT_EQ(d.readset, t.readset);
  ASSERT_EQ(d.writeset.size(), 2u);
  EXPECT_EQ(d.writeset[1].value, t.writeset[1].value);
}

TEST(PartTx, TxnRoundTrip) {
  PartTx t;
  t.kind = PartTx::Kind::kTxn;
  t.id = 99;
  t.client = 5;
  t.contact = 6;
  t.involved = {0, 2};
  t.snapshot = 41;
  t.readset = util::KeySet::exact({10, 11});
  t.write_keys = util::KeySet::exact({11});
  t.writes = {{11, "x"}};

  const PartTx d = PartTx::decode(t.encode());
  EXPECT_EQ(d.kind, PartTx::Kind::kTxn);
  EXPECT_EQ(d.id, 99u);
  EXPECT_EQ(d.client, 5u);
  EXPECT_EQ(d.contact, 6u);
  EXPECT_EQ(d.involved, (std::vector<PartitionId>{0, 2}));
  EXPECT_EQ(d.snapshot, 41);
  EXPECT_TRUE(d.is_global());
  EXPECT_TRUE(d.readset.may_contain(10));
  EXPECT_FALSE(d.readset.may_contain(12));
  ASSERT_EQ(d.writes.size(), 1u);
  EXPECT_EQ(d.writes[0].value, "x");
}

TEST(PartTx, BloomReadsetRoundTrip) {
  PartTx t;
  t.kind = PartTx::Kind::kTxn;
  t.id = 1;
  t.involved = {0};
  std::vector<Key> rs;
  for (Key k = 0; k < 100; ++k) rs.push_back(k);
  t.readset = util::KeySet::bloom(rs, 0.01);
  const PartTx d = PartTx::decode(t.encode());
  EXPECT_TRUE(d.readset.is_bloom());
  for (Key k = 0; k < 100; ++k) EXPECT_TRUE(d.readset.may_contain(k));
}

TEST(PartTx, TickRoundTrip) {
  const PartTx d = PartTx::decode(PartTx::make_tick().encode());
  EXPECT_EQ(d.kind, PartTx::Kind::kTick);
}

TEST(PartTx, AbortRequestRoundTrip) {
  const PartTx d = PartTx::decode(PartTx::make_abort_request(123, {1, 3}).encode());
  EXPECT_EQ(d.kind, PartTx::Kind::kAbortRequest);
  EXPECT_EQ(d.id, 123u);
  EXPECT_EQ(d.involved, (std::vector<PartitionId>{1, 3}));
}

TEST(Messages, VoteRoundTrip) {
  const VoteMsg m{42, 3, Outcome::kAbort};
  const sim::Message wire = m.to_message();
  util::Reader r(wire.payload);
  const VoteMsg d = VoteMsg::decode(r);
  EXPECT_EQ(d.id, 42u);
  EXPECT_EQ(d.partition, 3u);
  EXPECT_EQ(d.vote, Outcome::kAbort);
}

TEST(Messages, ReadReqRespRoundTrip) {
  const ReadReqMsg req{7, 1234, -1};
  const sim::Message wire1 = req.to_message();
  util::Reader r1(wire1.payload);
  const ReadReqMsg dreq = ReadReqMsg::decode(r1);
  EXPECT_EQ(dreq.reqid, 7u);
  EXPECT_EQ(dreq.snapshot, -1);

  const ReadRespMsg resp{7, 1234, true, "value", 55};
  const sim::Message wire2 = resp.to_message();
  util::Reader r2(wire2.payload);
  const ReadRespMsg dresp = ReadRespMsg::decode(r2);
  EXPECT_TRUE(dresp.found);
  EXPECT_EQ(dresp.value, "value");
  EXPECT_EQ(dresp.snapshot, 55);
}

TEST(Messages, SnapshotRespRoundTrip) {
  SnapshotRespMsg m;
  m.reqid = 9;
  m.snapshot = {10, -1, 30};
  const sim::Message wire = m.to_message();
  util::Reader r(wire.payload);
  const SnapshotRespMsg d = SnapshotRespMsg::decode(r);
  EXPECT_EQ(d.snapshot, (std::vector<Version>{10, -1, 30}));
}

TEST(Partitioning, RangeScheme) {
  RangePartitioning p(4, 100);
  EXPECT_EQ(p.partition_of(0), 0u);
  EXPECT_EQ(p.partition_of(99), 0u);
  EXPECT_EQ(p.partition_of(100), 1u);
  EXPECT_EQ(p.partition_of(399), 3u);
  EXPECT_EQ(p.partition_of(100'000), 3u) << "clamped to last partition";
}

TEST(Partitioning, HashSchemeGroupsByPrefix) {
  HashPartitioning p(8, 3);
  for (Key base = 0; base < 100; ++base) {
    const PartitionId expected = p.partition_of(base << 3);
    for (Key off = 1; off < 8; ++off) {
      EXPECT_EQ(p.partition_of((base << 3) | off), expected)
          << "all keys sharing a prefix land together";
    }
  }
}

TEST(Partitioning, HashSchemeBalances) {
  HashPartitioning p(4, 0);
  std::vector<int> counts(4, 0);
  for (Key k = 0; k < 40'000; ++k) ++counts[p.partition_of(k)];
  for (int c : counts) {
    EXPECT_GT(c, 8'000);
    EXPECT_LT(c, 12'000);
  }
}

TEST(OutcomeNames, ToString) {
  EXPECT_STREQ(to_string(Outcome::kCommit), "commit");
  EXPECT_STREQ(to_string(Outcome::kAbort), "abort");
  EXPECT_STREQ(to_string(Outcome::kUnknown), "unknown");
}

}  // namespace
}  // namespace sdur
