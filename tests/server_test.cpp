// SDUR server tests: end-to-end transaction semantics through the full
// stack (client -> contact server -> Paxos -> certification -> votes),
// including conflicts, snapshots, fault handling and recovery.
#include <gtest/gtest.h>

#include <algorithm>

#include "sdur/deployment.h"

namespace sdur {
namespace {

struct Fixture {
  std::unique_ptr<Deployment> dep;

  explicit Fixture(DeploymentSpec spec = {}) {
    if (!spec.partitioning) {
      spec.partitions = 2;
      spec.partitioning = std::make_shared<RangePartitioning>(2, 1000);
    }
    spec.log_write_latency = sim::usec(200);
    dep = std::make_unique<Deployment>(spec);
    for (Key k = 0; k < 20; ++k) dep->load(k, "a" + std::to_string(k));
    for (Key k = 1000; k < 1020; ++k) dep->load(k, "b" + std::to_string(k));
    dep->start();
  }

  sim::Simulator& sim() { return dep->simulator(); }
  void settle() { sim().run_until(sim::msec(300)); }
  void run_for(sim::Time t) { sim().run_until(sim().now() + t); }

  /// Runs a read-modify-write transaction and returns its outcome.
  Outcome update(Client& c, std::vector<Key> keys, const std::string& value) {
    Outcome result = Outcome::kUnknown;
    c.begin();
    c.read_many(keys, [&, keys](auto) {
      for (Key k : keys) c.write(k, value);
      c.commit([&](Outcome o) { result = o; });
    });
    run_for(sim::sec(5));
    return result;
  }

  std::string read_latest(PartitionId p, Key k) {
    auto v = dep->server(p, 0).store().get_latest(k);
    return v ? v->value : "<missing>";
  }

  /// Asserts all replicas of every partition converged to identical state.
  void assert_replicas_converged() {
    run_for(sim::sec(2));  // let trailing 2Bs and votes drain
    for (PartitionId p = 0; p < dep->partition_count(); ++p) {
      Server& ref = dep->server(p, 0);
      for (std::uint32_t r = 1; r < dep->replica_count(); ++r) {
        Server& other = dep->server(p, r);
        ASSERT_EQ(ref.sc(), other.sc()) << "partition " << p << " replica " << r;
        for (Key k : ref.store().keys()) {
          auto a = ref.store().get_latest(k);
          auto b = other.store().get_latest(k);
          ASSERT_TRUE(b.has_value()) << "key " << k;
          ASSERT_EQ(a->value, b->value) << "key " << k;
          ASSERT_EQ(a->version, b->version) << "key " << k;
        }
      }
    }
  }
};

TEST(Server, LocalCommitAppliesOnAllReplicas) {
  Fixture f;
  f.settle();
  Client& c = f.dep->add_client(0);
  EXPECT_EQ(f.update(c, {1, 2}, "new"), Outcome::kCommit);
  f.assert_replicas_converged();
  for (std::uint32_t r = 0; r < 3; ++r) {
    EXPECT_EQ(f.dep->server(0, r).store().get_latest(1)->value, "new");
  }
  EXPECT_EQ(f.dep->server(0, 0).sc(), 1);
}

TEST(Server, GlobalCommitAppliesAtBothPartitions) {
  Fixture f;
  f.settle();
  Client& c = f.dep->add_client(0);
  EXPECT_EQ(f.update(c, {1, 1001}, "xyz"), Outcome::kCommit);
  EXPECT_EQ(f.read_latest(0, 1), "xyz");
  EXPECT_EQ(f.read_latest(1, 1001), "xyz");
  f.assert_replicas_converged();
}

TEST(Server, ConcurrentConflictingLocalsOneAborts) {
  Fixture f;
  f.settle();
  Client& a = f.dep->add_client(0);
  Client& b = f.dep->add_client(0);

  Outcome oa = Outcome::kUnknown, ob = Outcome::kUnknown;
  // Both read key 5 before either commits, then both write it.
  a.begin();
  b.begin();
  int reads_done = 0;
  auto both_read = [&] {
    if (++reads_done < 2) return;
    a.write(5, "from-a");
    a.commit([&](Outcome o) { oa = o; });
    b.write(5, "from-b");
    b.commit([&](Outcome o) { ob = o; });
  };
  a.read(5, [&](bool, const std::string&) { both_read(); });
  b.read(5, [&](bool, const std::string&) { both_read(); });
  f.run_for(sim::sec(5));

  EXPECT_TRUE((oa == Outcome::kCommit) != (ob == Outcome::kCommit))
      << "exactly one of the two conflicting transactions commits, got " << to_string(oa)
      << "/" << to_string(ob);
  f.assert_replicas_converged();
}

TEST(Server, NonConflictingConcurrentLocalsBothCommit) {
  Fixture f;
  f.settle();
  Client& a = f.dep->add_client(0);
  Client& b = f.dep->add_client(0);
  Outcome oa = Outcome::kUnknown, ob = Outcome::kUnknown;
  a.begin();
  b.begin();
  a.read(3, [&](bool, const std::string&) {
    a.write(3, "a");
    a.commit([&](Outcome o) { oa = o; });
  });
  b.read(4, [&](bool, const std::string&) {
    b.write(4, "b");
    b.commit([&](Outcome o) { ob = o; });
  });
  f.run_for(sim::sec(5));
  EXPECT_EQ(oa, Outcome::kCommit);
  EXPECT_EQ(ob, Outcome::kCommit);
}

TEST(Server, SnapshotReadsAreStable) {
  Fixture f;
  f.settle();
  Client& reader = f.dep->add_client(0);
  Client& writer = f.dep->add_client(0);

  std::string first, second;
  reader.begin();
  reader.read(7, [&](bool, const std::string& v) { first = v; });
  f.run_for(sim::sec(1));  // snapshot for partition 0 is now fixed
  ASSERT_EQ(first, "a7");

  ASSERT_EQ(f.update(writer, {7}, "overwritten"), Outcome::kCommit);

  reader.read(7, [&](bool, const std::string& v) { second = v; });
  f.run_for(sim::sec(1));
  EXPECT_EQ(second, "a7") << "second read must observe the transaction's snapshot";
  EXPECT_EQ(f.read_latest(0, 7), "overwritten");
}

TEST(Server, CrossGlobalConflictSerializable) {
  // t1 reads 1@P0 writes 1001@P1; t2 reads 1001@P1 writes 1@P0, issued
  // concurrently. Committing both would be non-serializable; the stricter
  // global certification must abort at least one (Section III-B footnote).
  Fixture f;
  f.settle();
  Client& a = f.dep->add_client(0);
  Client& b = f.dep->add_client(1);

  Outcome oa = Outcome::kUnknown, ob = Outcome::kUnknown;
  int reads = 0;
  auto go = [&] {
    if (++reads < 2) return;
    a.write(1001, "t1");
    a.commit([&](Outcome o) { oa = o; });
    b.write(1, "t2");
    b.commit([&](Outcome o) { ob = o; });
  };
  a.begin();
  b.begin();
  // Each also reads what it writes (no blind writes).
  a.read_many({1, 1001}, [&](auto) { go(); });
  b.read_many({1001, 1}, [&](auto) { go(); });
  f.run_for(sim::sec(5));

  EXPECT_FALSE(oa == Outcome::kCommit && ob == Outcome::kCommit)
      << "both committing would be a serializability violation";
  f.assert_replicas_converged();
}

TEST(Server, ReadRoutedThroughWrongPartitionServer) {
  // Send a read for a partition-1 key to a partition-0 server: the server
  // must route it to a partition-1 replica, which answers the requester
  // directly (Section V: partitioning is transparent to clients).
  Fixture f;
  f.settle();

  struct Probe : sim::Process {
    using sim::Process::Process;
    ReadRespMsg resp;
    bool got = false;
    void on_message(const sim::Message& m, sim::ProcessId) override {
      if (m.type == msgtype::kReadResp) {
        util::Reader r(m.payload);
        resp = ReadRespMsg::decode(r);
        got = true;
      }
    }
  } probe(f.dep->network(), 20'000, "probe", sim::Location{0, 0});

  probe.send(f.dep->server(0, 0).self(), ReadReqMsg{1, 1005, kNoSnapshot}.to_message());
  f.run_for(sim::sec(1));
  ASSERT_TRUE(probe.got);
  EXPECT_TRUE(probe.resp.found);
  EXPECT_EQ(probe.resp.value, "b1005");
  EXPECT_GT(f.dep->server(0, 0).stats().reads_routed, 0u);
}

TEST(Server, ReadOnlySnapshotNeverAbortsAndSeesCommittedData) {
  Fixture f;
  f.settle();
  Client& w = f.dep->add_client(0);
  ASSERT_EQ(f.update(w, {1, 1001}, "committed-globally"), Outcome::kCommit);
  f.run_for(sim::msec(200));  // let gossip propagate the new snapshot

  Client& ro = f.dep->add_client(0);
  std::string v0, v1;
  Outcome outcome = Outcome::kUnknown;
  ro.begin_read_only([&] {
    ro.read_many({1, 1001}, [&](auto values) {
      v0 = values[0].value_or("<none>");
      v1 = values[1].value_or("<none>");
      ro.commit([&](Outcome o) { outcome = o; });
    });
  });
  f.run_for(sim::sec(2));
  EXPECT_EQ(outcome, Outcome::kCommit);
  EXPECT_EQ(v0, "committed-globally");
  EXPECT_EQ(v1, "committed-globally");
}

TEST(Server, StaleSnapshotOutsideWindowAborts) {
  DeploymentSpec spec;
  spec.partitions = 2;
  spec.partitioning = std::make_shared<RangePartitioning>(2, 1000);
  spec.server.window_capacity = 3;
  Fixture f(spec);
  f.settle();

  Client& slow = f.dep->add_client(0);
  Client& fast = f.dep->add_client(0);

  slow.begin();
  slow.read(9, [](bool, const std::string&) {});
  f.run_for(sim::sec(1));  // slow's snapshot at partition 0 is fixed at 0

  // Push 6 commits through, evicting the slow transaction's snapshot from
  // the 3-entry window.
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(f.update(fast, {static_cast<Key>(10 + i)}, "fill"), Outcome::kCommit);
  }

  Outcome slow_outcome = Outcome::kUnknown;
  slow.write(9, "too-late");
  slow.commit([&](Outcome o) { slow_outcome = o; });
  f.run_for(sim::sec(5));
  EXPECT_EQ(slow_outcome, Outcome::kAbort);
  EXPECT_GT(f.dep->server(0, 0).stats().stale_snapshot_aborts, 0u);
}

TEST(Server, MinorityReplicaCrashStillCommits) {
  Fixture f;
  f.settle();
  f.dep->server(0, 2).crash();
  Client& c = f.dep->add_client(0);
  EXPECT_EQ(f.update(c, {1}, "works"), Outcome::kCommit);
  EXPECT_EQ(f.update(c, {1, 1001}, "works-globally"), Outcome::kCommit);
}

TEST(Server, CrashedContactMakesClientTimeout) {
  Fixture f;
  f.settle();
  Client& c = f.dep->add_client(0);

  c.begin();
  c.read(1, [](bool, const std::string&) {});
  f.run_for(sim::sec(1));

  // The whole partition 0 group dies before the commit request.
  for (std::uint32_t r = 0; r < 3; ++r) f.dep->server(0, r).crash();
  Outcome o = Outcome::kCommit;
  c.write(1, "never");
  c.commit([&](Outcome out) { o = out; });
  f.sim().run_until(f.sim().now() + sim::sec(130));  // beyond the 120s client timeout
  EXPECT_EQ(o, Outcome::kUnknown);
}

TEST(Server, AbortRequestResolvesHalfSubmittedGlobal) {
  // The submitter's forward to partition 1 is lost (links blocked during
  // submission); partition 0 delivers the transaction and waits for votes.
  // After missing_vote_timeout the leader abcasts an abort request to the
  // silent partition, which votes abort, aborting the transaction
  // everywhere (Section IV-F).
  DeploymentSpec spec;
  spec.partitions = 2;
  spec.partitioning = std::make_shared<RangePartitioning>(2, 1000);
  spec.server.missing_vote_timeout = sim::msec(1500);
  Fixture f(spec);
  f.settle();
  Client& c = f.dep->add_client(0);

  // Cut the contact (P0 leader, pid of server(0,0)) off from all P1 servers.
  const sim::ProcessId contact = f.dep->server(0, 0).self();
  for (std::uint32_t r = 0; r < 3; ++r) {
    f.dep->network().block_link(contact, f.dep->server(1, r).self());
  }

  Outcome o = Outcome::kUnknown;
  c.begin();
  // Read only from P0 so the execution phase doesn't need P1... but the
  // transaction must involve P1: read via another replica is fine since
  // client reads go to the nearest replica (server(1,0))... which is the
  // blocked leader only for the contact. Client->server(1,0) is not blocked.
  c.read_many({1, 1001}, [&](auto) {
    c.write(1, "half");
    c.write(1001, "half");
    c.commit([&](Outcome out) { o = out; });
  });
  // Let the submission happen (forward to P1 dropped), then heal so the
  // abort request can flow.
  f.run_for(sim::msec(500));
  f.dep->network().heal_all();
  f.run_for(sim::sec(10));

  EXPECT_EQ(o, Outcome::kAbort);
  EXPECT_EQ(f.read_latest(0, 1), "a1") << "no partial application at partition 0";
  EXPECT_EQ(f.read_latest(1, 1001), "b1001");
  EXPECT_GT(f.dep->server(0, 0).stats().abort_requests_sent, 0u);
  for (std::uint32_t r = 0; r < 3; ++r) {
    EXPECT_EQ(f.dep->server(0, r).pending_count(), 0u);
    EXPECT_EQ(f.dep->server(1, r).pending_count(), 0u);
  }
  f.assert_replicas_converged();
}

TEST(Server, CrashedReplicaRecoversAndConverges) {
  Fixture f;
  f.settle();
  Client& c = f.dep->add_client(0);
  ASSERT_EQ(f.update(c, {1, 2}, "one"), Outcome::kCommit);

  f.dep->server(0, 1).crash();
  ASSERT_EQ(f.update(c, {3, 4}, "two"), Outcome::kCommit);
  ASSERT_EQ(f.update(c, {1, 1001}, "three"), Outcome::kCommit);

  f.dep->server(0, 1).recover();
  f.run_for(sim::sec(10));
  f.assert_replicas_converged();
  EXPECT_EQ(f.dep->server(0, 1).store().get_latest(3)->value, "two");
  EXPECT_EQ(f.dep->server(0, 1).store().get_latest(1)->value, "three");
}

TEST(Server, DelayingEnabledGlobalStillCommits) {
  DeploymentSpec spec;
  spec.kind = DeploymentSpec::Kind::kWan1;
  spec.partitions = 2;
  spec.partitioning = std::make_shared<RangePartitioning>(2, 1000);
  spec.server.delaying_enabled = true;
  Fixture f(spec);
  f.sim().run_until(sim::sec(1));
  Client& c = f.dep->add_client(0);
  EXPECT_EQ(f.update(c, {1, 1001}, "delayed"), Outcome::kCommit);
  EXPECT_EQ(f.read_latest(1, 1001), "delayed");
}

TEST(Server, BloomCertificationCommitsAndConverges) {
  DeploymentSpec spec;
  spec.partitions = 2;
  spec.partitioning = std::make_shared<RangePartitioning>(2, 1000);
  spec.server.bloom_readsets = true;
  Fixture f(spec);
  f.settle();
  Client& c = f.dep->add_client(0);
  EXPECT_EQ(f.update(c, {1, 2}, "bloomy"), Outcome::kCommit);
  EXPECT_EQ(f.update(c, {1, 1001}, "bloomy-global"), Outcome::kCommit);
  f.assert_replicas_converged();
}

TEST(Server, EmptyTransactionCommitsTrivially) {
  Fixture f;
  f.settle();
  Client& c = f.dep->add_client(0);
  Outcome o = Outcome::kUnknown;
  c.begin();
  c.commit([&](Outcome out) { o = out; });
  f.run_for(sim::sec(1));
  EXPECT_EQ(o, Outcome::kCommit);
}

TEST(Server, DynamicReorderThresholdBroadcast) {
  // Section IV-E: replicas change the reordering threshold by broadcasting
  // a new value of k; the switch happens at the same delivery index on
  // every replica.
  Fixture f;
  f.settle();
  ASSERT_EQ(f.dep->server(0, 0).reorder_threshold(), 0u);

  f.dep->server(0, 0).broadcast_reorder_threshold(64);
  f.run_for(sim::sec(1));
  for (std::uint32_t r = 0; r < 3; ++r) {
    EXPECT_EQ(f.dep->server(0, r).reorder_threshold(), 64u) << "replica " << r;
  }
  EXPECT_EQ(f.dep->server(1, 0).reorder_threshold(), 0u)
      << "other partitions keep their own threshold";

  // The new threshold is live: a commit after the change still works.
  Client& c = f.dep->add_client(0);
  EXPECT_EQ(f.update(c, {1, 1001}, "post-change"), Outcome::kCommit);
  f.assert_replicas_converged();
}

TEST(Server, ThresholdChangeCodecRoundTrip) {
  const PartTx t = PartTx::decode(PartTx::make_set_threshold(320).encode());
  EXPECT_EQ(t.kind, PartTx::Kind::kSetThreshold);
  EXPECT_EQ(t.threshold, 320u);
}

}  // namespace
}  // namespace sdur
