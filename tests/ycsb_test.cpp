// YCSB workload and latency-timeline tests.
#include <gtest/gtest.h>

#include "workload/driver.h"
#include "workload/ycsb.h"

namespace sdur::workload {
namespace {

TEST(Ycsb, MixesProduceExpectedClassRatios) {
  YcsbConfig yc;
  yc.mix = YcsbConfig::Mix::kA;
  yc.records_per_partition = 2'000;

  DeploymentSpec spec;
  spec.partitions = 2;
  spec.partitioning = YcsbWorkload::make_partitioning(2, yc.records_per_partition);
  spec.log_write_latency = sim::usec(300);
  Deployment dep(spec);
  YcsbWorkload wl(yc);

  RunConfig cfg;
  cfg.clients = 16;
  cfg.warmup = sim::sec(1);
  cfg.measure = sim::sec(4);
  const RunResult r = run_experiment(dep, wl, cfg);

  const double reads = static_cast<double>(r.classes.at("read").committed);
  const double updates = static_cast<double>(r.classes.at("update").committed);
  ASSERT_GT(reads, 100);
  ASSERT_GT(updates, 100);
  EXPECT_NEAR(updates / (reads + updates), 0.5, 0.06) << "mix A is 50/50";
  EXPECT_EQ(r.classes.at("read").aborted, 0u) << "single-key snapshot reads never abort";
  EXPECT_LT(r.p99("read"), r.p99("update")) << "reads skip the termination protocol";
}

TEST(Ycsb, ReadOnlyMixNeverAborts) {
  YcsbConfig yc;
  yc.mix = YcsbConfig::Mix::kC;
  yc.records_per_partition = 2'000;

  DeploymentSpec spec;
  spec.partitions = 2;
  spec.partitioning = YcsbWorkload::make_partitioning(2, yc.records_per_partition);
  Deployment dep(spec);
  YcsbWorkload wl(yc);

  RunConfig cfg;
  cfg.clients = 8;
  cfg.warmup = sim::msec(500);
  cfg.measure = sim::sec(3);
  const RunResult r = run_experiment(dep, wl, cfg);
  EXPECT_GT(r.classes.at("read").committed, 100u);
  EXPECT_EQ(r.classes.count("update"), 0u);
  EXPECT_EQ(r.classes.at("read").aborted, 0u);
}

TEST(Timeline, BucketsCoverTheMeasurementWindow) {
  Recorder rec;
  rec.set_window(sim::sec(1), sim::sec(2));
  rec.enable_timeline(sim::msec(100));
  rec.record("x", Outcome::kCommit, 5'000, sim::msec(1050));
  rec.record("x", Outcome::kCommit, 9'000, sim::msec(1050));
  rec.record("x", Outcome::kCommit, 50'000, sim::msec(1950));
  rec.record("x", Outcome::kAbort, 99'000, sim::msec(1950));  // aborts not in timeline

  const auto& tl = rec.timeline("x");
  ASSERT_EQ(tl.size(), 10u);
  EXPECT_EQ(tl[0].count, 2u);
  EXPECT_EQ(tl[0].max, 9'000);
  EXPECT_DOUBLE_EQ(tl[0].sum, 14'000.0);
  EXPECT_EQ(tl[9].count, 1u);
  EXPECT_EQ(tl[9].max, 50'000);
  EXPECT_EQ(tl[5].count, 0u);
  EXPECT_EQ(tl[0].start, sim::sec(1));
  EXPECT_EQ(tl[9].start, sim::sec(1) + 9 * sim::msec(100));
}

}  // namespace
}  // namespace sdur::workload
