// Invariant audit engine tests (see src/audit/).
//
// The oracle is only trustworthy if it catches real protocol bugs, so these
// tests *inject* two: a certifier that skips its conflict check on one
// replica (breaking certification determinism) and a Paxos acceptor that
// accepts Phase 2A below its promise (breaking acceptor safety). Both must
// produce structured violation reports. The negative test asserts a healthy
// contended run stays clean — the audit layer must not cry wolf.
#include <gtest/gtest.h>

#include <algorithm>

#include "audit/audit.h"
#include "paxos/engine.h"
#include "sim/process.h"
#include "workload/driver.h"
#include "workload/microbench.h"

#if SDUR_AUDIT_ON

namespace sdur {
namespace {

using workload::MicroConfig;
using workload::MicroWorkload;
using workload::RunConfig;

bool has_violation(const char* invariant) {
  const auto& vs = audit::Auditor::instance().violations();
  return std::any_of(vs.begin(), vs.end(),
                     [&](const audit::Violation& v) { return v.invariant == invariant; });
}

/// Runs a small contended LAN workload. `sabotage` is applied after the
/// deployment is built (auditor freshly reset) but before any traffic.
void run_small_lan(PartitionId partitions, double global_fraction,
                   const std::function<void(Deployment&)>& sabotage) {
  constexpr std::uint64_t kItems = 30;  // tiny keyspace -> real conflicts
  DeploymentSpec spec;
  spec.kind = DeploymentSpec::Kind::kLan;
  spec.partitions = partitions;
  spec.partitioning = MicroWorkload::make_partitioning(partitions, kItems);
  spec.log_write_latency = sim::usec(300);
  spec.seed = 31;
  Deployment dep(spec);
  if (sabotage) sabotage(dep);

  RunConfig cfg;
  cfg.clients = 12;
  cfg.seed = 31;
  cfg.settle = sim::msec(800);
  cfg.warmup = sim::msec(200);
  cfg.measure = sim::sec(2);
  const sim::Time stop_at = cfg.settle + cfg.warmup + cfg.measure;

  MicroConfig mc;
  mc.items_per_partition = kItems;
  mc.global_fraction = global_fraction;
  mc.keep_running = [&dep, stop_at] { return dep.simulator().now() < stop_at; };
  MicroWorkload wl(mc);
  workload::run_experiment(dep, wl, cfg);
  dep.run_until(dep.simulator().now() + sim::sec(5));  // drain in-flight work
}

TEST(Audit, CleanRunReportsNoViolations) {
  // Two partitions with a global mix exercises every audited path: Paxos
  // decisions, certification, vote exchange, completion, reads.
  run_small_lan(2, 0.3, nullptr);
  EXPECT_TRUE(audit::Auditor::instance().clean()) << audit::Auditor::instance().summary();
}

TEST(Audit, InjectedCertificationBugIsDetected) {
  // Replica 1 of the single partition skips its conflict check: it commits
  // transactions the other replicas abort, so its (delivery index -> vote)
  // function diverges — exactly what certification determinism forbids.
  run_small_lan(1, 0.0, [](Deployment& dep) {
    dep.server(0, 1).certifier_for_test().test_skip_conflict_check(true);
  });
  const auto& auditor = audit::Auditor::instance();
  EXPECT_FALSE(auditor.clean()) << "buggy certifier went undetected";
  EXPECT_TRUE(has_violation("certification-determinism")) << auditor.summary();
  // Reports carry coordinates and recent-event context for debugging.
  ASSERT_FALSE(auditor.violations().empty());
  const audit::Violation& v = auditor.violations().front();
  EXPECT_FALSE(v.detail.empty());
  EXPECT_FALSE(v.context.empty()) << "violation should carry the recent event ring";
}

// Minimal Paxos host (mirrors the harness in paxos_test.cpp).
class AuditPaxosHost : public sim::Process {
 public:
  AuditPaxosHost(sim::Network& net, sim::ProcessId pid, paxos::GroupConfig cfg)
      : sim::Process(net, pid, "paxos-" + std::to_string(pid),
                     sim::Location{0, static_cast<std::uint16_t>(pid)}) {
    engine_ = std::make_unique<paxos::PaxosEngine>(
        *this, std::move(cfg), std::make_unique<paxos::InMemoryDurableLog>(),
        [](const paxos::Value&) {});
  }
  paxos::PaxosEngine& engine() { return *engine_; }

 protected:
  void on_message(const sim::Message& m, sim::ProcessId from) override {
    if (paxos::PaxosEngine::handles(m.type)) engine_->handle_message(m, from);
  }

 private:
  std::unique_ptr<paxos::PaxosEngine> engine_;
};

TEST(Audit, InjectedPaxosBugIsDetected) {
  sim::Simulator sim;
  sim::Topology topo = sim::Topology::lan();
  auto net = std::make_unique<sim::Network>(sim, topo, 3);
  paxos::GroupConfig cfg;
  cfg.members = {1, 2, 3};
  cfg.log_write_latency = sim::usec(200);
  std::vector<std::unique_ptr<AuditPaxosHost>> hosts;
  for (std::uint32_t i = 0; i < 3; ++i) {
    paxos::GroupConfig c = cfg;
    c.self_index = i;
    hosts.push_back(
        std::make_unique<AuditPaxosHost>(*net, static_cast<sim::ProcessId>(i + 1), std::move(c)));
  }
  for (auto& h : hosts) h->engine().start();
  sim.run_until(sim::msec(200));  // member 0 elects itself; promises >= round 1
  ASSERT_TRUE(hosts[0]->engine().is_leader());
  ASSERT_TRUE(audit::Auditor::instance().clean());

  // Host 1's acceptor is sabotaged to accept below its promise; a deposed
  // proposer (member index 2, round 0 — ballot 2, far below the elected
  // leader's round-1 ballot 256) then sends it a Phase 2A.
  hosts[1]->engine().test_accept_stale_ballots(true);
  util::Writer w;
  w.u64(7);
  const paxos::Phase2A stale{paxos::Ballot::make(0, 2), /*instance=*/50, std::move(w).take()};
  hosts[1]->engine().handle_message(stale.to_message(), /*from=*/3);

  const auto& auditor = audit::Auditor::instance();
  EXPECT_FALSE(auditor.clean()) << "stale-ballot accept went undetected";
  EXPECT_TRUE(has_violation("accept-ballot-monotonic")) << auditor.summary();
}

TEST(Audit, AuditorCollectsContextAndResets) {
  audit::Auditor& a = audit::Auditor::instance();
  a.reset();
  SDUR_AUDIT_NOTE(10, "event one");
  SDUR_AUDIT_NOTE(20, "event two");
  SDUR_AUDIT_CHECK("test", "always-false", false, "value " << 42);
  ASSERT_FALSE(a.clean());
  ASSERT_EQ(a.total_violations(), 1u);
  const audit::Violation& v = a.violations().front();
  EXPECT_EQ(v.component, "test");
  EXPECT_EQ(v.invariant, "always-false");
  EXPECT_EQ(v.detail, "value 42");
  ASSERT_EQ(v.context.size(), 2u);
  EXPECT_NE(v.context[1].find("event two"), std::string::npos);
  EXPECT_NE(a.summary().find("always-false"), std::string::npos);
  a.reset();
  EXPECT_TRUE(a.clean());
  EXPECT_TRUE(a.violations().empty());
}

}  // namespace
}  // namespace sdur

#else  // !SDUR_AUDIT_ON

namespace sdur {
TEST(Audit, DisabledBuild) { GTEST_SKIP() << "built with SDUR_AUDIT=OFF; audit hooks compiled out"; }
}  // namespace sdur

#endif  // SDUR_AUDIT_ON
