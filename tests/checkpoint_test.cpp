// Checkpointing, log truncation and state transfer tests: the durable-log
// API, Paxos-level transfer of truncated prefixes, and full SDUR-server
// checkpoint/restore including the deterministic certifier state.
#include <gtest/gtest.h>

#include <cstring>

#include "sdur/deployment.h"
#include "workload/driver.h"
#include "workload/microbench.h"

namespace sdur {
namespace {

using paxos::InMemoryDurableLog;
using paxos::Value;

Value bytes_of(const char* s) {
  return Value(reinterpret_cast<const std::uint8_t*>(s),
               reinterpret_cast<const std::uint8_t*>(s) + std::strlen(s));
}

TEST(DurableLogCheckpoint, SaveLoadAndTruncate) {
  InMemoryDurableLog log;
  for (paxos::InstanceId i = 0; i < 10; ++i) {
    log.save_accepted(i, paxos::Ballot::make(1, 0), bytes_of("v"));
    log.save_decided(i, bytes_of("v"));
  }
  EXPECT_EQ(log.decided_prefix(), 10u);
  EXPECT_EQ(log.first_retained(), 0u);

  log.save_checkpoint(bytes_of("state"), 7);
  log.truncate_below(7);
  EXPECT_EQ(log.first_retained(), 7u);
  EXPECT_FALSE(log.load_decided(6).has_value());
  EXPECT_TRUE(log.load_decided(7).has_value());
  EXPECT_TRUE(log.accepted_from(0).begin()->first >= 7);
  EXPECT_EQ(log.decided_prefix(), 10u) << "prefix counts from the truncation point";

  const auto cp = log.load_checkpoint();
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->second, 7u);
  EXPECT_EQ(cp->first, bytes_of("state"));
}

TEST(CertifierCheckpoint, EncodeInstallRoundTrip) {
  Certifier a(100);
  PartTx g;
  g.id = 1;
  g.involved = {0, 1};
  g.snapshot = 0;
  g.readset = util::KeySet::exact({1});
  g.write_keys = util::KeySet::exact({1});
  g.writes = {{1, "g"}};
  PartTx l = g;
  l.id = 2;
  l.involved = {0};
  l.readset = util::KeySet::exact({2});
  l.write_keys = util::KeySet::exact({2});

  ASSERT_EQ(a.process(g, 10, 1).outcome, Outcome::kCommit);
  ASSERT_EQ(a.process(l, 11, 2).outcome, Outcome::kCommit);
  a.resolve(a.pop_head(), true);  // the reordered local resolves

  util::Writer w;
  a.encode(w);
  Certifier b(100);
  util::Reader r(w.data());
  b.install(r);

  EXPECT_EQ(b.certified(), a.certified());
  EXPECT_EQ(b.stable(), a.stable());
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.head().tx.id, 1u);
  EXPECT_EQ(b.head().rt, 10u);
  EXPECT_EQ(b.head().version, 1);
  ASSERT_NE(b.slot(2), nullptr);
  EXPECT_EQ(b.slot(2)->status, Certifier::SlotStatus::kCommitted);
  EXPECT_EQ(b.slot(1)->status, Certifier::SlotStatus::kPending);

  // Certification decisions continue identically on both.
  PartTx t3 = l;
  t3.id = 3;
  t3.snapshot = 0;
  const auto ra = a.process(t3, 20, 3);
  const auto rb = b.process(t3, 20, 3);
  EXPECT_EQ(ra.outcome, rb.outcome);
  EXPECT_EQ(ra.version, rb.version);
}

struct CheckpointFixture {
  std::unique_ptr<Deployment> dep;

  explicit CheckpointFixture(sim::Time checkpoint_interval) {
    DeploymentSpec spec;
    spec.partitions = 2;
    spec.partitioning = std::make_shared<RangePartitioning>(2, 1000);
    spec.log_write_latency = sim::usec(200);
    spec.server.checkpoint_interval = checkpoint_interval;
    dep = std::make_unique<Deployment>(spec);
    for (Key k = 0; k < 50; ++k) dep->load(k, "a" + std::to_string(k));
    for (Key k = 1000; k < 1050; ++k) dep->load(k, "b" + std::to_string(k));
    dep->start();
  }

  void run_for(sim::Time t) { dep->run_until(dep->simulator().now() + t); }

  Outcome update(Client& c, std::vector<Key> keys, const std::string& value) {
    Outcome result = Outcome::kUnknown;
    c.begin();
    c.read_many(keys, [&, keys](auto) {
      for (Key k : keys) c.write(k, value);
      c.commit([&](Outcome o) { result = o; });
    });
    run_for(sim::sec(5));
    return result;
  }

  void assert_partition_converged(PartitionId p) {
    Server& ref = dep->server(p, 0);
    for (std::uint32_t rep = 1; rep < 3; ++rep) {
      Server& other = dep->server(p, rep);
      ASSERT_EQ(ref.sc(), other.sc()) << "replica " << rep;
      for (Key k : ref.store().keys()) {
        auto a = ref.store().get_latest(k);
        auto b = other.store().get_latest(k);
        ASSERT_TRUE(b.has_value()) << "key " << k;
        ASSERT_EQ(a->value, b->value) << "key " << k;
      }
    }
  }
};

TEST(ServerCheckpoint, PeriodicCheckpointsTruncateTheLog) {
  CheckpointFixture f(sim::msec(500));
  f.run_for(sim::msec(400));
  Client& c = f.dep->add_client(0);
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(f.update(c, {static_cast<Key>(i)}, "x"), Outcome::kCommit);
  }
  f.run_for(sim::sec(2));  // let a checkpoint fire after the traffic
  Server& s = f.dep->server(0, 0);
  EXPECT_GT(s.engine().stats().checkpoints, 0u);
  EXPECT_GT(s.engine().log().first_retained(), 0u) << "log prefix was truncated";
  EXPECT_TRUE(s.engine().log().load_checkpoint().has_value());
}

TEST(ServerCheckpoint, RecoveryRestoresFromCheckpointNotFullReplay) {
  CheckpointFixture f(sim::msec(500));
  f.run_for(sim::msec(400));
  Client& c = f.dep->add_client(0);
  for (int i = 0; i < 15; ++i) {
    ASSERT_EQ(f.update(c, {static_cast<Key>(i)}, "v1"), Outcome::kCommit);
  }
  f.run_for(sim::sec(2));  // checkpoint covers the 15 commits

  Server& victim = f.dep->server(0, 1);
  victim.crash();
  ASSERT_EQ(f.update(c, {30, 31}, "after-crash"), Outcome::kCommit);
  victim.recover();
  f.run_for(sim::sec(5));

  EXPECT_EQ(victim.store().get_latest(5)->value, "v1");
  EXPECT_EQ(victim.store().get_latest(30)->value, "after-crash");
  f.assert_partition_converged(0);
  // Replay was bounded: far fewer deliveries processed than total commits.
  EXPECT_LT(victim.stats().delivered, 15u) << "recovery replayed only the post-checkpoint tail";
}

TEST(ServerCheckpoint, LaggingReplicaGetsStateTransfer) {
  CheckpointFixture f(sim::msec(300));
  f.run_for(sim::msec(400));
  Client& c = f.dep->add_client(0);

  // Cut replica (0,2) off, then commit enough traffic for checkpoints to
  // truncate the log past everything it missed.
  Server& lagger = f.dep->server(0, 2);
  f.dep->network().isolate(lagger.self());
  for (int i = 0; i < 25; ++i) {
    ASSERT_EQ(f.update(c, {static_cast<Key>(i)}, "gen2"), Outcome::kCommit);
  }
  f.run_for(sim::sec(2));
  ASSERT_GT(f.dep->server(0, 0).engine().log().first_retained(), 0u);

  f.dep->network().heal(lagger.self());
  f.run_for(sim::sec(8));

  EXPECT_GT(lagger.engine().stats().state_transfers_installed, 0u)
      << "the truncated prefix must arrive as a checkpoint";
  EXPECT_EQ(lagger.store().get_latest(5)->value, "gen2");
  f.assert_partition_converged(0);

  // And the healed replica keeps participating normally afterwards.
  ASSERT_EQ(f.update(c, {40, 41}, "gen3"), Outcome::kCommit);
  f.run_for(sim::sec(2));
  EXPECT_EQ(lagger.store().get_latest(40)->value, "gen3");
}

TEST(ServerCheckpoint, WorkloadWithCheckpointsStaysSerializableAndConverges) {
  DeploymentSpec spec;
  spec.partitions = 2;
  spec.partitioning = workload::MicroWorkload::make_partitioning(2, 50);
  spec.log_write_latency = sim::usec(300);
  spec.server.checkpoint_interval = sim::msec(400);
  Deployment dep(spec);

  workload::SerializabilityChecker checker;
  workload::RunConfig cfg;
  cfg.clients = 12;
  cfg.warmup = sim::msec(500);
  cfg.measure = sim::sec(5);
  const sim::Time stop_at = cfg.settle + cfg.warmup + cfg.measure;

  workload::MicroConfig mc;
  mc.items_per_partition = 50;
  mc.global_fraction = 0.3;
  mc.commit_hook = [&](TxId id, std::vector<std::pair<Key, TxId>> reads, std::vector<Key> writes) {
    checker.add_committed(id, std::move(reads), std::move(writes));
  };
  mc.keep_running = [&dep, stop_at] { return dep.simulator().now() < stop_at; };
  workload::MicroWorkload wl(mc);

  // Crash and recover a replica mid-run so recovery uses a checkpoint
  // while traffic continues.
  dep.simulator().schedule_at(sim::sec(3), [&] { dep.server(0, 1).crash(); });
  dep.simulator().schedule_at(sim::sec(4), [&] { dep.server(0, 1).recover(); });

  workload::run_experiment(dep, wl, cfg);
  dep.run_until(dep.simulator().now() + sim::sec(20));

  for (Server* s : dep.servers()) ASSERT_EQ(s->pending_count(), 0u) << s->name();
  ASSERT_GT(dep.server(0, 0).engine().stats().checkpoints, 0u);

  for (PartitionId p = 0; p < 2; ++p) {
    Server& ref = dep.server(p, 0);
    for (Key k : ref.store().keys()) {
      const auto* versions = ref.store().versions_of(k);
      std::vector<TxId> order;
      for (const auto& vv : *versions) {
        if (vv.version == 0) continue;
        order.push_back(workload::MicroWorkload::decode_writer(vv.value));
      }
      checker.set_key_order(k, order);
      for (std::uint32_t rep = 1; rep < 3; ++rep) {
        auto latest_ref = ref.store().get_latest(k);
        auto latest_other = dep.server(p, rep).store().get_latest(k);
        ASSERT_TRUE(latest_other.has_value());
        ASSERT_EQ(latest_ref->value, latest_other->value) << "key " << k;
      }
    }
  }
  std::string why;
  EXPECT_TRUE(checker.check(&why)) << why;
}

}  // namespace
}  // namespace sdur
