// Speculative global commit tests (see DESIGN.md "Speculative global
// commit", cfg.speculation).
//
//  1. Unit coverage of the MVStore speculative layer: put_speculative /
//     promote / rollback (including mid-chain erase with later versions
//     already applied on top), chained speculative versions on one key,
//     and mark_speculative re-registration after a checkpoint install.
//  2. Injected missed-rollback bug: a speculative version left behind
//     below the resolved floor trips audit_spec_floor — it throws and, in
//     audited builds, records a structured "spec-floor" violation first.
//  3. Randomized equivalence: a speculating certifier + MVStore — globals
//     apply speculative writes at delivery and resolve out of order as
//     their (adversarially timed) votes arrive, with blind-writing locals
//     committing on top of outstanding speculative versions — produces
//     certification verdicts, versions, slot statuses and a final store
//     equal to the delivery-order serial reference that waits for every
//     vote. Vote-aborted globals roll back mid-chain under later writes.
//  4. Chaos convergence: the vote-batch chaos recipe (loss, follower
//     churn, checkpoints, 40% globals over 3 partitions) with speculation
//     on converges — replicas byte-equal, no outstanding speculative
//     versions, real finalizes AND real rollbacks happened.
//  5. Golden pin: the same recipe with speculation off (the default)
//     reproduces the pre-speculation digest bit-for-bit — the layer is
//     provably inert when disabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>

#include "audit/audit.h"
#include "sdur/certifier.h"
#include "storage/mvstore.h"
#include "util/hash.h"
#include "util/rng.h"
#include "workload/driver.h"
#include "workload/microbench.h"

namespace sdur {
namespace {

PartTx make_tx(TxId id, bool global, std::vector<Key> rs, std::vector<Key> ws, Version snapshot) {
  PartTx t;
  t.kind = PartTx::Kind::kTxn;
  t.id = id;
  t.involved = global ? std::vector<PartitionId>{0, 1} : std::vector<PartitionId>{0};
  t.snapshot = snapshot;
  t.readset = util::KeySet::exact(std::move(rs));
  std::vector<Key> wk = ws;
  t.write_keys = util::KeySet::exact(std::move(wk));
  for (Key k : ws) t.writes.push_back(WriteOp{k, std::to_string(id)});
  return t;
}

// --- MVStore speculative-layer unit tests ------------------------------------

TEST(SpecStore, PutSpeculativePromote) {
  storage::MVStore store;
  store.put_speculative(5, "a", 1);
  store.put_speculative(6, "b", 1);
  EXPECT_EQ(store.speculative_count(), 1u) << "one undo record per version";
  // Speculative versions are readable immediately — that is the point:
  // later transactions certify and read against them.
  EXPECT_EQ(store.get_latest(5)->value, "a");
  EXPECT_EQ(store.get(6, 1)->value, "b");
  EXPECT_GT(store.promote(1), 0u);
  EXPECT_EQ(store.speculative_count(), 0u);
  EXPECT_EQ(store.promote(1), 0u) << "promote is idempotent once discharged";
  EXPECT_EQ(store.get_latest(5)->value, "a") << "promoted writes are permanent";
  EXPECT_EQ(store.rollback(1), 0u) << "a promoted version can no longer roll back";
  EXPECT_EQ(store.get_latest(5)->value, "a");
}

TEST(SpecStore, RollbackErasesMidChainUnderLaterWrites) {
  storage::MVStore store;
  store.load(5, "init");
  store.put_speculative(5, "spec", 1);  // global speculates {5, 6}
  store.put_speculative(6, "spec", 1);
  store.put(5, "later", 2);  // a local commits on top of the speculative version
  EXPECT_EQ(store.rollback(1), 2u) << "both chain entries erased";
  EXPECT_EQ(store.speculative_count(), 0u);
  // Key 5: the speculative version vanished from the middle of the chain;
  // the later committed write survives and version order stays intact.
  EXPECT_EQ(store.get_latest(5)->value, "later");
  EXPECT_EQ(store.get(5, 1)->value, "init") << "snapshot 1 no longer sees the rolled-back write";
  ASSERT_EQ(store.versions_of(5)->size(), 2u);
  // Key 6: the speculative version was its only one.
  EXPECT_FALSE(store.get_latest(6).has_value());
  store.put(5, "next", 3);  // the version-order audit still accepts new writes
  EXPECT_EQ(store.get_latest(5)->value, "next");
}

TEST(SpecStore, ChainedSpeculationsResolveIndependently) {
  // Two speculated globals write the same key back to back (head-only
  // speculation keeps their versions ascending). Either may resolve
  // first, in either direction.
  storage::MVStore store;
  store.put_speculative(7, "first", 1);
  store.put_speculative(7, "second", 2);
  EXPECT_EQ(store.speculative_count(), 2u);
  EXPECT_EQ(store.rollback(1), 1u) << "erase below an outstanding speculative version";
  EXPECT_GT(store.promote(2), 0u);
  EXPECT_EQ(store.speculative_count(), 0u);
  ASSERT_TRUE(store.get_latest(7).has_value());
  EXPECT_EQ(store.get_latest(7)->value, "second");
  EXPECT_EQ(store.versions_of(7)->size(), 1u);

  storage::MVStore other;
  other.put_speculative(7, "first", 1);
  other.put_speculative(7, "second", 2);
  EXPECT_GT(other.promote(1), 0u);
  EXPECT_EQ(other.rollback(2), 1u);
  EXPECT_EQ(other.get_latest(7)->value, "first");
}

TEST(SpecStore, MarkSpeculativeReregistersAfterInstall) {
  // Checkpoint install writes the chains wholesale; mark_speculative
  // rebuilds only the undo log so a rollback still works afterwards.
  storage::MVStore store;
  store.put(9, "spec", 4);  // as install would: plain chain write
  store.mark_speculative(4, {9});
  EXPECT_EQ(store.speculative_count(), 1u);
  EXPECT_EQ(store.rollback(4), 1u);
  EXPECT_FALSE(store.get_latest(9).has_value());
}

// --- Injected bug: a missed rollback must not pass silently ------------------

TEST(SpecStore, MissedRollbackCaughtByFloorAudit) {
#if SDUR_AUDIT_ON
  audit::Auditor::instance().reset();
#endif
  storage::MVStore store;
  store.put_speculative(5, "x", 3);
  store.audit_spec_floor(2);  // outstanding version 3 above the floor: fine
  // The resolved prefix reaches the speculative version without a
  // promote/rollback having discharged it — exactly what a missed
  // rollback looks like. Fatal, and audited first.
  EXPECT_THROW(store.audit_spec_floor(3), std::logic_error);
  EXPECT_THROW(store.audit_spec_floor(7), std::logic_error);
#if SDUR_AUDIT_ON
  const auto& vs = audit::Auditor::instance().violations();
  EXPECT_TRUE(std::any_of(vs.begin(), vs.end(),
                          [](const audit::Violation& v) {
                            return std::string_view(v.invariant) == "spec-floor";
                          }))
      << audit::Auditor::instance().summary();
  audit::Auditor::instance().reset();
#endif
  EXPECT_GT(store.promote(3), 0u);
  store.audit_spec_floor(7);  // discharged: any floor is fine again
}

// --- Randomized speculation == delivery-order-serial equivalence -------------

// Drives a speculating certifier + MVStore against a delivery-order
// serial reference under adversarial vote timing. The spec arm pops
// every global at the head, applies its writes speculatively, and
// resolves it out of order when its votes arrive (promote on commit,
// mid-chain rollback on abort); locals commit immediately on top of the
// outstanding speculative versions. The reference arm parks every global
// at the head until its votes arrive. Verdicts, versions, slot statuses
// and the final store must match the reference exactly.
TEST(SpecProperty, RandomizedEquivalenceWithAdversarialVotes) {
  Certifier on(4000, 1, /*ooo_bypass=*/false);
  Certifier off(4000, 1, /*ooo_bypass=*/false);
  storage::MVStore store;
  // Delivery-order serial reference: final value of a key is the write of
  // its highest-version committed writer, fixed at certification time.
  std::map<Key, std::pair<Version, std::string>> ref;

  util::Rng rng(31);
  std::uint64_t d = 0;
  bool healed = false;
  // Vote outcome and arrival time are deterministic properties of the
  // transaction, shared by both arms.
  auto vote_commits = [](TxId id) { return id % 7 != 0; };
  auto commits = [&](const PartTx& t) { return !t.is_global() || vote_commits(t.id); };
  std::unordered_map<TxId, std::uint64_t> vote_at;
  auto votes_arrived = [&](TxId id) { return healed || vote_at.at(id) <= d; };

  struct SpecRec {
    TxId id;
    std::vector<WriteOp> writes;
  };
  std::map<Version, SpecRec> outstanding;
  std::uint64_t speculated = 0, finalized = 0, rolled_back = 0, midchain = 0;

  auto drain_spec = [&] {
    while (!on.empty()) {
      const PendingEntry e = on.pop_head();
      if (e.tx.is_global()) {
        for (const auto& op : e.tx.writes) store.put_speculative(op.key, op.value, e.version);
        outstanding.emplace(e.version, SpecRec{e.tx.id, e.tx.writes});
        ++speculated;
      } else {
        for (const auto& op : e.tx.writes) store.put(op.key, op.value, e.version);
        on.resolve(e, true);
      }
    }
    // Out-of-order finalize/rollback: each speculated global resolves on
    // its own votes, regardless of delivery order.
    for (auto it = outstanding.begin(); it != outstanding.end();) {
      if (!votes_arrived(it->second.id)) {
        ++it;
        continue;
      }
      const bool ok = vote_commits(it->second.id);
      if (ok) {
        EXPECT_GT(store.promote(it->first), 0u);
        ++finalized;
      } else {
        bool mid = false;
        for (const auto& op : it->second.writes) {
          const auto latest = store.get_latest(op.key);
          if (latest && latest->version > it->first) mid = true;
        }
        EXPECT_GT(store.rollback(it->first), 0u);
        ++rolled_back;
        if (mid) ++midchain;
      }
      on.resolve(it->first, it->second.id, ok);
      it = outstanding.erase(it);
    }
  };
  auto drain_off = [&] {
    while (!off.empty() && (!off.head().tx.is_global() || votes_arrived(off.head().tx.id))) {
      const PendingEntry e = off.pop_head();
      off.resolve(e, commits(e.tx));
    }
  };

  for (int i = 0; i < 1500; ++i) {
    ++d;
    const bool global = rng.chance(0.3);
    const bool blind = !global && rng.chance(0.35);
    const Key k1 = rng.below(16);
    const Key k2 = rng.below(16);
    Version snap = std::min(on.stable(), off.stable());
    if (rng.chance(0.2)) snap = std::max<Version>(0, snap - static_cast<Version>(rng.below(4)));
    PartTx t = blind ? make_tx(1000 + static_cast<TxId>(i), false, {}, {k1}, snap)
                     : make_tx(1000 + static_cast<TxId>(i), global, {k1, k2}, {k1}, snap);
    if (!blind && rng.chance(0.15)) t.readset = util::KeySet::bloom({k1, k2});
    if (global) vote_at[t.id] = d + 1 + rng.below(40);

    const auto ra = on.process(t, d, d);
    const auto rb = off.process(t, d, d);
    ASSERT_EQ(ra.outcome, rb.outcome) << "speculation changed a verdict at tx " << t.id;
    if (ra.outcome == Outcome::kCommit) {
      ASSERT_EQ(ra.version, rb.version);
      if (commits(t)) {
        for (const auto& op : t.writes) {
          auto& slot = ref[op.key];
          if (ra.version > slot.first) slot = {ra.version, op.value};
        }
      }
    }
    drain_spec();
    drain_off();
  }

  // Heal: every vote arrives; both arms resolve everything.
  healed = true;
  drain_spec();
  drain_off();
  ASSERT_TRUE(on.empty());
  ASSERT_TRUE(off.empty());
  ASSERT_TRUE(outstanding.empty());
  EXPECT_EQ(store.speculative_count(), 0u) << "no undo record outlives its votes";

  EXPECT_GT(speculated, 100u) << "globals really applied writes before their votes";
  EXPECT_EQ(finalized + rolled_back, speculated);
  EXPECT_GT(rolled_back, 10u) << "vote aborts really exercised rollback";
  EXPECT_GT(midchain, 0u) << "some rollbacks erased below later committed writes";

  EXPECT_EQ(on.certified(), off.certified());
  EXPECT_EQ(on.stable(), off.stable());
  for (Version v = 1; v <= on.certified(); ++v) {
    if (on.slot(v) == nullptr || off.slot(v) == nullptr) continue;
    ASSERT_EQ(on.slot(v)->status, off.slot(v)->status) << "version " << v;
    ASSERT_EQ(on.slot(v)->txid, off.slot(v)->txid);
  }
  // The store the speculative schedule built equals the delivery-order
  // serial reference, key for key.
  ASSERT_EQ(store.key_count(), ref.size());
  for (const auto& [key, expect] : ref) {
    const auto got = store.get_latest(key);
    ASSERT_TRUE(got.has_value()) << "key " << key;
    EXPECT_EQ(got->version, expect.first) << "key " << key;
    EXPECT_EQ(got->value, expect.second) << "key " << key;
  }
}

// --- End-to-end chaos + golden pin -------------------------------------------

namespace e2e {

using workload::MicroConfig;
using workload::MicroWorkload;
using workload::RunConfig;
using workload::RunResult;
using workload::run_experiment;

/// Frozen pre-speculation digest of the speculation-off chaos scenario
/// below (identical recipe to vote_batch_test / convoy_bypass_test). Any
/// drift means the default-off configuration is no longer the legacy
/// protocol.
constexpr std::uint64_t kLegacyDigest = 4047494388130711496ULL;
constexpr std::uint64_t kLegacyCommitted = 60;

std::uint64_t digest_writer(const util::Writer& w) {
  const util::Bytes& b = w.data();
  return util::fnv1a(std::string_view(reinterpret_cast<const char*>(b.data()), b.size()));
}

bool replicas_agree(Deployment& dep) {
  for (PartitionId p = 0; p < dep.partition_count(); ++p) {
    util::Writer base;
    for (std::uint32_t rep = 0; rep < dep.replica_count(); ++rep) {
      util::Writer w;
      Server& s = dep.server(p, rep);
      w.i64(s.sc());
      w.i64(s.certified());
      s.store().encode(w);
      if (rep == 0) {
        base = std::move(w);
      } else if (digest_writer(w) != digest_writer(base)) {
        return false;
      }
    }
  }
  return true;
}

struct ChaosOut {
  std::uint64_t digest = 0;
  std::uint64_t committed = 0;
  Server::Stats stats;
  bool agree = false;
  std::size_t pending_total = 0;
  std::size_t spec_outstanding = 0;
};

/// The vote_batch_test chaos recipe (loss, follower churn, checkpoints,
/// 40% globals over 3 partitions), parameterized on speculation.
/// checkpoint_interval is short enough that installs re-mark speculative
/// versions while speculation is happening. `reorder_threshold` defaults
/// to the recipe's 24 (the golden pin needs the exact legacy
/// configuration); the speculation-on run uses 0 so the vote wait the
/// speculation hides is undiluted.
ChaosOut run_chaos(bool speculation, std::uint32_t reorder_threshold = 24) {
  DeploymentSpec spec;
  spec.partitions = 3;
  spec.partitioning = MicroWorkload::make_partitioning(3, 90);
  spec.log_write_latency = sim::usec(300);
  spec.server.reorder_threshold = reorder_threshold;
  spec.server.checkpoint_interval = sim::msec(500);
  spec.server.missing_vote_timeout = sim::msec(1500);
  spec.server.speculation = speculation;
  spec.seed = 17;
  spec.client.read_retry_interval = sim::msec(300);
  spec.client.commit_retry_interval = sim::msec(800);
  Deployment dep(spec);
  dep.network().set_loss_rate(0.02);

  RunConfig cfg;
  cfg.clients = 10;
  cfg.seed = 17;
  cfg.warmup = sim::msec(400);
  cfg.measure = sim::sec(2);
  const sim::Time stop_at = cfg.settle + cfg.warmup + cfg.measure;

  MicroConfig mc;
  mc.items_per_partition = 90;
  mc.global_fraction = 0.4;
  mc.keep_running = [&dep, stop_at] { return dep.simulator().now() < stop_at; };
  MicroWorkload wl(mc);

  util::Rng chaos(11);
  for (sim::Time t = sim::sec(1); t < stop_at; t += sim::msec(600)) {
    const PartitionId p = static_cast<PartitionId>(chaos.below(3));
    const std::uint32_t replica = 1 + static_cast<std::uint32_t>(chaos.below(2));
    dep.simulator().schedule_at(t, [&dep, p, replica] { dep.server(p, replica).crash(); });
    dep.simulator().schedule_at(t + sim::msec(400),
                                [&dep, p, replica] { dep.server(p, replica).recover(); });
  }

  const RunResult r = run_experiment(dep, wl, cfg);

  dep.network().set_loss_rate(0);
  for (Server* s : dep.servers()) s->recover();
  dep.run_until(dep.simulator().now() + sim::sec(10));

  ChaosOut out;
  util::Writer w;
  for (PartitionId p = 0; p < dep.partition_count(); ++p) {
    for (std::uint32_t rep = 0; rep < dep.replica_count(); ++rep) {
      Server& s = dep.server(p, rep);
      w.i64(s.sc());
      w.i64(s.certified());
      w.u64(s.dc());
      s.store().encode(w);
    }
  }
  const sim::NetworkStats& net = dep.network().stats();
  w.u64(net.messages_sent);
  w.u64(net.messages_delivered);
  w.u64(net.messages_dropped);
  w.u64(net.bytes_sent);
  for (sim::MsgType t = 1; t < 50; ++t) {
    w.u64(net.per_type_count.at(t));
    w.u64(net.per_type_bytes.at(t));
  }
  w.u64(dep.simulator().events_processed());
  w.i64(dep.simulator().now());
  out.digest = digest_writer(w);
  for (const auto& [cls, st] : r.classes) out.committed += st.committed;
  out.stats = dep.total_stats();
  out.agree = replicas_agree(dep);
  for (Server* s : dep.servers()) {
    out.pending_total += s->pending_count();
    out.spec_outstanding += s->store().speculative_count();
  }
  return out;
}

TEST(Speculation, SpeculationOffMatchesLegacyGolden) {
  const ChaosOut r = run_chaos(false);
  EXPECT_EQ(r.digest, kLegacyDigest)
      << "speculation=false must stay bit-identical to the pre-speculation protocol";
  EXPECT_EQ(r.committed, kLegacyCommitted);
  // The speculation layer is fully inert when off.
  EXPECT_EQ(r.stats.speculated_globals, 0u);
  EXPECT_EQ(r.stats.spec_commits, 0u);
  EXPECT_EQ(r.stats.spec_aborts, 0u);
}

TEST(Speculation, SpeculationOnConvergesUnderChaosAndCheckpointInstalls) {
  const ChaosOut r = run_chaos(true, /*reorder_threshold=*/0);
  EXPECT_GT(r.committed, 20u) << "the chaos run made real progress";
  EXPECT_TRUE(r.agree) << "replicas of each partition converged byte-for-byte";
  EXPECT_EQ(r.pending_total, 0u) << "every pending global resolved after heal";
  EXPECT_EQ(r.spec_outstanding, 0u) << "no speculative version outlived its votes";
  EXPECT_GT(r.stats.speculated_globals, 0u) << "globals really speculated under chaos";
  EXPECT_GT(r.stats.spec_commits, 0u);
  EXPECT_GT(r.stats.spec_aborts, 0u) << "real rollbacks happened under chaos";
#if SDUR_AUDIT_ON
  // Version order, spec-floor, certification determinism and the rest of
  // the in-run cross-checks all held while speculating under crashes,
  // losses and checkpoint installs.
  EXPECT_TRUE(audit::Auditor::instance().clean()) << audit::Auditor::instance().summary();
#endif
}

}  // namespace e2e

}  // namespace
}  // namespace sdur
