// Out-of-order local commit tests (see DESIGN.md "Out-of-order local
// commit", cfg.ooo_bypass).
//
//  1. Unit coverage of the park gate: disjoint locals bypass pending
//     globals, write/read-conflicting locals park until the completed-
//     global watermark reaches their bound, parked locals pass their bound
//     on to later write-conflicting locals (inheritance), and checkpoint
//     install recomputes every bound from the restored pending list.
//  2. Randomized equivalence: a bypass-enabled certifier driving a real
//     MVStore — with blind writes, bloom readsets, adversarial vote timing
//     and mid-stream encode/install round trips — produces certification
//     verdicts, versions, slot statuses and a final store byte-equal to
//     the delivery-order serial reference. A single version regression in
//     the store throws, so an unsound bypass cannot pass silently.
//  3. Chaos convergence: the vote-batch chaos recipe (loss, follower
//     churn, checkpoints, reordering, 40% globals over 3 partitions) with
//     ooo_bypass on converges with real bypasses happening.
//  4. Golden pin: the same recipe with ooo_bypass off (the default)
//     reproduces the pre-bypass digest bit-for-bit — the bypass layer is
//     provably inert when disabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>

#include "audit/audit.h"
#include "sdur/certifier.h"
#include "storage/mvstore.h"
#include "util/hash.h"
#include "util/rng.h"
#include "workload/driver.h"
#include "workload/microbench.h"

namespace sdur {
namespace {

PartTx make_tx(TxId id, bool global, std::vector<Key> rs, std::vector<Key> ws, Version snapshot) {
  PartTx t;
  t.kind = PartTx::Kind::kTxn;
  t.id = id;
  t.involved = global ? std::vector<PartitionId>{0, 1} : std::vector<PartitionId>{0};
  t.snapshot = snapshot;
  t.readset = util::KeySet::exact(std::move(rs));
  std::vector<Key> wk = ws;
  t.write_keys = util::KeySet::exact(std::move(wk));
  for (Key k : ws) t.writes.push_back(WriteOp{k, std::to_string(id)});
  return t;
}

// --- Park-gate unit tests ----------------------------------------------------

class BypassTest : public ::testing::Test {
 protected:
  Certifier cert{100, 1, /*ooo_bypass=*/true};
  std::uint64_t dc = 0;

  Certifier::Result deliver(const PartTx& t, std::uint32_t threshold = 0) {
    ++dc;
    return cert.process(t, dc + threshold, dc);
  }
};

TEST_F(BypassTest, DisjointLocalBypassesPendingGlobal) {
  // Threshold 0 so the local cannot *leap* the global — it appends behind
  // it; the bypass sweep is what commits it early.
  deliver(make_tx(1, true, {1}, {1}, 0), 0);
  const auto r = deliver(make_tx(2, false, {2}, {2}, 0), 0);
  ASSERT_EQ(r.outcome, Outcome::kCommit);
  EXPECT_EQ(r.position, 1u);
  EXPECT_FALSE(r.parked);
  EXPECT_EQ(cert.at(1).park_until, 0);
  ASSERT_EQ(cert.next_bypassable(0), 1u) << "globals are never bypassable; the local is";
  const PendingEntry e = cert.take_at(1);
  EXPECT_EQ(e.tx.id, 2u);
  cert.resolve(e, true);
  EXPECT_EQ(cert.stable(), 0) << "stable still waits for the pending global";
  EXPECT_EQ(cert.size(), 1u);
  cert.resolve(cert.pop_head(), true);
  EXPECT_EQ(cert.stable(), 2);
}

TEST_F(BypassTest, WriteConflictingBlindLocalParksUntilGlobalCompletes) {
  // Blind write (empty readset): certification commits it, but applying
  // its write before the pending global's would regress the store, so it
  // parks behind the global's version.
  deliver(make_tx(1, true, {5}, {5}, 0), 0);
  const auto r = deliver(make_tx(2, false, {}, {5}, 0), 0);
  ASSERT_EQ(r.outcome, Outcome::kCommit);
  EXPECT_TRUE(r.parked);
  EXPECT_EQ(cert.at(1).park_until, 1);
  EXPECT_EQ(cert.next_bypassable(0), Certifier::npos);
  // The global completes: the watermark reaches the bound and the local
  // unparks without any recomputation.
  cert.resolve(cert.pop_head(), true);
  EXPECT_EQ(cert.bypass_watermark(), 1);
  ASSERT_EQ(cert.next_bypassable(0), 0u);
  cert.resolve(cert.take_at(0), true);
  EXPECT_EQ(cert.stable(), 2);
}

TEST_F(BypassTest, ReadOfPendingWriteParks) {
  // The local read the global's pending write at a covering snapshot
  // (certification commits it — the determinism refinement), but it must
  // not be acknowledged before the write it observed is resolved.
  deliver(make_tx(1, true, {5}, {5}, 0), 0);
  const auto r = deliver(make_tx(2, false, {5}, {6}, /*snapshot=*/1), 0);
  ASSERT_EQ(r.outcome, Outcome::kCommit);
  EXPECT_TRUE(r.parked);
  EXPECT_EQ(cert.at(1).park_until, 1);
}

TEST_F(BypassTest, ParkBoundInheritedThroughConflictingLocals) {
  // g(v1) writes {5}; l1(v2) blind-writes {5} -> parks until 1; l2(v3)
  // blind-writes {5} -> conflicts with l1, inherits its bound. After g
  // completes both unpark, and the sweep takes them in version order —
  // exactly the order the store needs.
  deliver(make_tx(1, true, {5}, {5}, 0), 0);
  const auto r1 = deliver(make_tx(2, false, {}, {5}, 0), 0);
  const auto r2 = deliver(make_tx(3, false, {}, {5}, 0), 0);
  ASSERT_TRUE(r1.parked);
  ASSERT_TRUE(r2.parked);
  EXPECT_EQ(cert.at(1).park_until, 1);
  EXPECT_EQ(cert.at(2).park_until, 1) << "inherits l1's bound, not 0";
  EXPECT_EQ(cert.next_bypassable(0), Certifier::npos);
  cert.resolve(cert.pop_head(), true);  // g completes
  ASSERT_EQ(cert.next_bypassable(0), 0u);
  EXPECT_EQ(cert.at(0).tx.id, 2u) << "front-to-back sweep applies v2 before v3";
}

TEST_F(BypassTest, ParkedLocalKeepsLaterConflictingLocalBehindIt) {
  // l2 conflicts with parked l1 but not with the global itself; it still
  // must not bypass l1 (their writes must apply in version order), which
  // the inherited bound guarantees.
  deliver(make_tx(1, true, {5}, {5}, 0), 0);
  deliver(make_tx(2, false, {}, {5, 7}, 0), 0);   // parks until 1
  const auto r = deliver(make_tx(3, false, {}, {7}, 0), 0);  // conflicts only with l1
  ASSERT_EQ(r.outcome, Outcome::kCommit);
  EXPECT_TRUE(r.parked);
  EXPECT_EQ(cert.at(2).park_until, 1) << "bound inherited from l1, though disjoint from g";
}

TEST_F(BypassTest, BloomReadsetParksConservatively) {
  deliver(make_tx(1, true, {5}, {5}, 0), 0);
  PartTx t = make_tx(2, false, {}, {6}, /*snapshot=*/1);
  t.readset = util::KeySet::bloom({5});
  const auto r = deliver(t, 0);
  ASSERT_EQ(r.outcome, Outcome::kCommit);
  EXPECT_TRUE(r.parked) << "bloom readset intersecting the pending write set parks";
  EXPECT_EQ(cert.at(1).park_until, 1);
}

TEST_F(BypassTest, InstallRecomputesParkBoundsFromRestoredList) {
  deliver(make_tx(1, true, {5}, {5}, 0), 0);
  deliver(make_tx(2, false, {}, {5}, 0), 0);   // parked until 1
  deliver(make_tx(3, false, {2}, {2}, 0), 0);  // unparked
  util::Writer w;
  cert.encode(w);
  Certifier restored(100, 1, /*ooo_bypass=*/true);
  util::Reader r(w.data());
  restored.install(r);
  ASSERT_EQ(restored.size(), 3u);
  EXPECT_EQ(restored.at(1).park_until, 1) << "bound recomputed on install, not serialized";
  EXPECT_EQ(restored.at(2).park_until, 0);
  EXPECT_EQ(restored.next_bypassable(0), 2u);
  restored.resolve(restored.pop_head(), true);
  EXPECT_EQ(restored.bypass_watermark(), 1);
  EXPECT_EQ(restored.next_bypassable(0), 0u) << "restored local unparks as the global completes";
}

// --- Randomized bypass == delivery-order-serial equivalence ------------------

// Drives a bypass-enabled certifier + MVStore against a delivery-order
// serial reference under adversarial completion timing. The final store
// must equal the reference's max-version-writer-per-key map, and every
// put() must be version-ascending per key (MVStore throws otherwise).
TEST(BypassProperty, RandomizedEquivalenceWithBlindWritesAndInstalls) {
  Certifier on(4000, 1, /*ooo_bypass=*/true);
  Certifier off(4000, 1, /*ooo_bypass=*/false);
  storage::MVStore store;
  // Delivery-order serial reference: final value of a key is the write of
  // its highest-version committed writer, fixed at certification time.
  std::map<Key, std::pair<Version, std::string>> ref;

  util::Rng rng(23);
  std::uint64_t d = 0;
  std::unordered_map<TxId, bool> arrived_on, arrived_off;
  std::uint64_t bypassed = 0, parked = 0;

  // Vote outcome of a global is a deterministic property of the
  // transaction; model it as a pure function of the id.
  auto commits = [](const PartTx& t) { return !t.is_global() || t.id % 7 != 0; };
  auto head_completable = [&](Certifier& c, std::unordered_map<TxId, bool>& arrived) {
    return !c.empty() && (!c.head().tx.is_global() || arrived[c.head().tx.id]);
  };
  auto drain_on = [&] {
    while (head_completable(on, arrived_on)) {
      const PendingEntry e = on.pop_head();
      const bool committed = commits(e.tx);
      if (committed) {
        for (const auto& op : e.tx.writes) store.put(op.key, op.value, e.version);
      }
      on.resolve(e, committed);
    }
    for (std::size_t pos = on.next_bypassable(0); pos != Certifier::npos;
         pos = on.next_bypassable(pos)) {
      const PendingEntry e = on.take_at(pos);
      ++bypassed;
      for (const auto& op : e.tx.writes) store.put(op.key, op.value, e.version);
      on.resolve(e, true);
    }
  };
  auto drain_off = [&] {
    while (head_completable(off, arrived_off)) {
      const PendingEntry e = off.pop_head();
      off.resolve(e, commits(e.tx));
    }
  };

  for (int i = 0; i < 1500; ++i) {
    ++d;
    const bool global = rng.chance(0.3);
    const bool blind = !global && rng.chance(0.35);
    const Key k1 = rng.below(16);
    const Key k2 = rng.below(16);
    // Mostly-fresh snapshots (a long status-blind window aborts stale
    // readers wholesale, starving the park gate of committed locals).
    Version snap = std::min(on.stable(), off.stable());
    if (rng.chance(0.2)) snap = std::max<Version>(0, snap - static_cast<Version>(rng.below(4)));
    PartTx t = blind ? make_tx(1000 + static_cast<TxId>(i), false, {}, {k1}, snap)
                     : make_tx(1000 + static_cast<TxId>(i), global, {k1, k2}, {k1}, snap);
    if (!blind && rng.chance(0.15)) t.readset = util::KeySet::bloom({k1, k2});

    const auto ra = on.process(t, d + 12, d);
    const auto rb = off.process(t, d + 12, d);
    ASSERT_EQ(ra.outcome, rb.outcome) << "bypass gate changed a verdict at tx " << t.id;
    if (ra.outcome == Outcome::kCommit) {
      ASSERT_EQ(ra.version, rb.version);
      if (ra.parked) ++parked;
      if (commits(t)) {
        for (const auto& op : t.writes) {
          auto& slot = ref[op.key];
          if (ra.version > slot.first) slot = {ra.version, op.value};
        }
      }
    }

    // Adversarial, independent vote timing per arm: the bypass arm and the
    // reference arm rarely complete the same global at the same step, and
    // slow arrivals keep real convoys in the pending list.
    for (std::size_t j = 0; j < on.size(); ++j) {
      if (on.at(j).tx.is_global() && rng.chance(0.05)) arrived_on[on.at(j).tx.id] = true;
    }
    for (std::size_t j = 0; j < off.size(); ++j) {
      if (off.at(j).tx.is_global() && rng.chance(0.05)) arrived_off[off.at(j).tx.id] = true;
    }
    drain_on();
    drain_off();

    // Mid-stream checkpoint round trip: park bounds are recomputed from
    // the restored pending list and the watermark resets; neither may
    // change the schedule's outcome.
    if (i % 300 == 299) {
      util::Writer w;
      on.encode(w);
      util::Reader r(w.data());
      on.install(r);
    }
  }

  // Heal: every vote arrives; both arms drain fully.
  for (std::size_t j = 0; j < on.size(); ++j) arrived_on[on.at(j).tx.id] = true;
  for (std::size_t j = 0; j < off.size(); ++j) arrived_off[off.at(j).tx.id] = true;
  drain_on();
  drain_off();
  ASSERT_TRUE(on.empty());
  ASSERT_TRUE(off.empty());

  EXPECT_GT(bypassed, 100u) << "the sweep did real out-of-order commits";
  EXPECT_GT(parked, 20u) << "blind writes exercised the park gate";
  EXPECT_EQ(on.certified(), off.certified());
  EXPECT_EQ(on.stable(), off.stable());
  for (Version v = 1; v <= on.certified(); ++v) {
    if (on.slot(v) == nullptr || off.slot(v) == nullptr) continue;
    ASSERT_EQ(on.slot(v)->status, off.slot(v)->status) << "version " << v;
    ASSERT_EQ(on.slot(v)->txid, off.slot(v)->txid);
  }
  // The store the bypass schedule built equals the delivery-order serial
  // reference, key for key.
  ASSERT_EQ(store.key_count(), ref.size());
  for (const auto& [key, expect] : ref) {
    const auto got = store.get_latest(key);
    ASSERT_TRUE(got.has_value()) << "key " << key;
    EXPECT_EQ(got->version, expect.first) << "key " << key;
    EXPECT_EQ(got->value, expect.second) << "key " << key;
  }
}

// --- Injected bug: unsound bypass must not pass silently ---------------------

// Sabotaged park gate (every local unparked): a blind write bypasses the
// pending global writing the same key, and applying the global's write
// afterwards regresses the store — MVStore throws and, in audited builds,
// the version-order check reports a structured violation first. This is
// the defense-in-depth layer a buggy gate would run into in production.
TEST(ConvoyBypass, SkippedParkGateIsCaughtByStoreVersionOrder) {
#if SDUR_AUDIT_ON
  audit::Auditor::instance().reset();
#endif
  Certifier cert(100, 1, /*ooo_bypass=*/true);
  cert.test_skip_park_gate(true);
  storage::MVStore store;
  std::uint64_t d = 0;
  const PartTx g = make_tx(1, true, {5}, {5}, 0);
  ++d;
  ASSERT_EQ(cert.process(g, d, d).outcome, Outcome::kCommit);
  const PartTx l = make_tx(2, false, {}, {5}, 0);
  ++d;
  const auto r = cert.process(l, d, d);
  ASSERT_EQ(r.outcome, Outcome::kCommit);
  EXPECT_FALSE(r.parked) << "the sabotaged gate fails to park the conflicting local";
  ASSERT_EQ(cert.next_bypassable(0), 1u);
  const PendingEntry swept = cert.take_at(1);
  for (const auto& op : swept.tx.writes) store.put(op.key, op.value, swept.version);
  cert.resolve(swept, true);
  // The global completes and applies its (older) write after the local's.
  const PendingEntry head = cert.pop_head();
  EXPECT_THROW(store.put(5, "1", head.version), std::logic_error)
      << "out-of-order apply must not be silent";
#if SDUR_AUDIT_ON
  const auto& vs = audit::Auditor::instance().violations();
  EXPECT_TRUE(std::any_of(vs.begin(), vs.end(),
                          [](const audit::Violation& v) {
                            return std::string_view(v.invariant) == "version-order";
                          }))
      << audit::Auditor::instance().summary();
  audit::Auditor::instance().reset();
#endif
}

// --- End-to-end chaos + golden pin -------------------------------------------

namespace e2e {

using workload::MicroConfig;
using workload::MicroWorkload;
using workload::RunConfig;
using workload::RunResult;
using workload::run_experiment;

/// Frozen pre-bypass digest of the ooo_bypass-off chaos scenario below
/// (identical to the vote_batch_test recipe); captured before the bypass
/// layer existed. Any drift means the default-off configuration is no
/// longer the legacy protocol.
constexpr std::uint64_t kLegacyDigest = 4047494388130711496ULL;
constexpr std::uint64_t kLegacyCommitted = 60;

std::uint64_t digest_writer(const util::Writer& w) {
  const util::Bytes& b = w.data();
  return util::fnv1a(std::string_view(reinterpret_cast<const char*>(b.data()), b.size()));
}

bool replicas_agree(Deployment& dep) {
  for (PartitionId p = 0; p < dep.partition_count(); ++p) {
    util::Writer base;
    for (std::uint32_t rep = 0; rep < dep.replica_count(); ++rep) {
      util::Writer w;
      Server& s = dep.server(p, rep);
      w.i64(s.sc());
      w.i64(s.certified());
      s.store().encode(w);
      if (rep == 0) {
        base = std::move(w);
      } else if (digest_writer(w) != digest_writer(base)) {
        return false;
      }
    }
  }
  return true;
}

struct ChaosOut {
  std::uint64_t digest = 0;
  std::uint64_t committed = 0;
  Server::Stats stats;
  bool agree = false;
  std::size_t pending_total = 0;
};

/// The vote_batch_test chaos recipe (loss, follower churn, checkpoints,
/// reordering, 40% globals over 3 partitions), parameterized on the
/// bypass instead of batching. checkpoint_interval is short enough that
/// park bounds get recomputed by installs while bypasses are happening.
/// `reorder_threshold` defaults to the recipe's 24 (the golden pin needs
/// the exact legacy configuration); the bypass-on run uses 0 — no leaping
/// at all, so every out-of-order local commit is the sweep's doing.
ChaosOut run_chaos(bool ooo_bypass, std::uint32_t reorder_threshold = 24) {
  DeploymentSpec spec;
  spec.partitions = 3;
  spec.partitioning = MicroWorkload::make_partitioning(3, 90);
  spec.log_write_latency = sim::usec(300);
  spec.server.reorder_threshold = reorder_threshold;
  spec.server.checkpoint_interval = sim::msec(500);
  spec.server.missing_vote_timeout = sim::msec(1500);
  spec.server.ooo_bypass = ooo_bypass;
  spec.seed = 17;
  spec.client.read_retry_interval = sim::msec(300);
  spec.client.commit_retry_interval = sim::msec(800);
  Deployment dep(spec);
  dep.network().set_loss_rate(0.02);

  RunConfig cfg;
  cfg.clients = 10;
  cfg.seed = 17;
  cfg.warmup = sim::msec(400);
  cfg.measure = sim::sec(2);
  const sim::Time stop_at = cfg.settle + cfg.warmup + cfg.measure;

  MicroConfig mc;
  mc.items_per_partition = 90;
  mc.global_fraction = 0.4;
  mc.keep_running = [&dep, stop_at] { return dep.simulator().now() < stop_at; };
  MicroWorkload wl(mc);

  util::Rng chaos(11);
  for (sim::Time t = sim::sec(1); t < stop_at; t += sim::msec(600)) {
    const PartitionId p = static_cast<PartitionId>(chaos.below(3));
    const std::uint32_t replica = 1 + static_cast<std::uint32_t>(chaos.below(2));
    dep.simulator().schedule_at(t, [&dep, p, replica] { dep.server(p, replica).crash(); });
    dep.simulator().schedule_at(t + sim::msec(400),
                                [&dep, p, replica] { dep.server(p, replica).recover(); });
  }

  const RunResult r = run_experiment(dep, wl, cfg);

  dep.network().set_loss_rate(0);
  for (Server* s : dep.servers()) s->recover();
  dep.run_until(dep.simulator().now() + sim::sec(10));

  ChaosOut out;
  util::Writer w;
  for (PartitionId p = 0; p < dep.partition_count(); ++p) {
    for (std::uint32_t rep = 0; rep < dep.replica_count(); ++rep) {
      Server& s = dep.server(p, rep);
      w.i64(s.sc());
      w.i64(s.certified());
      w.u64(s.dc());
      s.store().encode(w);
    }
  }
  const sim::NetworkStats& net = dep.network().stats();
  w.u64(net.messages_sent);
  w.u64(net.messages_delivered);
  w.u64(net.messages_dropped);
  w.u64(net.bytes_sent);
  for (sim::MsgType t = 1; t < 50; ++t) {
    w.u64(net.per_type_count.at(t));
    w.u64(net.per_type_bytes.at(t));
  }
  w.u64(dep.simulator().events_processed());
  w.i64(dep.simulator().now());
  out.digest = digest_writer(w);
  for (const auto& [cls, st] : r.classes) out.committed += st.committed;
  out.stats = dep.total_stats();
  out.agree = replicas_agree(dep);
  for (Server* s : dep.servers()) out.pending_total += s->pending_count();
  return out;
}

TEST(ConvoyBypass, BypassOffMatchesLegacyGolden) {
  const ChaosOut r = run_chaos(false);
  EXPECT_EQ(r.digest, kLegacyDigest)
      << "ooo_bypass=false must stay bit-identical to the pre-bypass protocol";
  EXPECT_EQ(r.committed, kLegacyCommitted);
  // The bypass layer is fully inert when off.
  EXPECT_EQ(r.stats.bypassed_locals, 0u);
  EXPECT_EQ(r.stats.parked_locals, 0u);
}

TEST(ConvoyBypass, BypassOnConvergesUnderChaosAndCheckpointInstalls) {
  const ChaosOut r = run_chaos(true, /*reorder_threshold=*/0);
  EXPECT_GT(r.committed, 20u) << "the chaos run made real progress";
  EXPECT_TRUE(r.agree) << "replicas of each partition converged byte-for-byte";
  EXPECT_EQ(r.pending_total, 0u) << "every pending global resolved after heal";
  EXPECT_GT(r.stats.bypassed_locals, 0u)
      << "locals really committed past pending globals under chaos";
#if SDUR_AUDIT_ON
  // The run's bypass decisions were cross-checked in place: lane-index
  // gate equivalence, sweep serial-equivalence, park-gate determinism
  // across replicas and crash-replay.
  EXPECT_TRUE(audit::Auditor::instance().clean()) << audit::Auditor::instance().summary();
#endif
}

}  // namespace e2e

}  // namespace
}  // namespace sdur
