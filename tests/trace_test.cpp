// Determinism and well-formedness pins for the trace subsystem (src/trace/).
//
//  1. ON/OFF golden-digest equivalence: a chaos run (loss, follower
//     crash/recover churn, checkpoints, reordering, globals) executed with
//     trace recording armed and disarmed must yield byte-identical replica
//     state, identical NetworkStats, event counts and end time — recording
//     only reads protocol state and writes host-side buffers. A second
//     armed run must additionally reproduce the exact record stream
//     (bit-reproducible traces).
//  2. Span invariants: per-track append timestamps are monotone, spans are
//     well-formed (t1 >= t0, ts covers the append), marks collapse to a
//     point, and every chain the breakdown attributes telescopes — the sum
//     of per-stage means equals the end-to-end mean.
//  3. Zero allocations at steady state: once the ring is armed, recording
//     past the wrap point performs no further heap allocations (counter
//     asserted), the acceptance bar of the subsystem.
//  4. The Chrome exporter writes parseable JSON with one named track per
//     registered track (structural checks here; a ctest entry runs
//     json.load on the bench's output).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "trace/export.h"
#include "trace/trace.h"
#include "util/hash.h"
#include "workload/driver.h"
#include "workload/microbench.h"

namespace {

std::uint64_t digest_writer(const sdur::util::Writer& w) {
  const sdur::util::Bytes& b = w.data();
  return sdur::util::fnv1a(
      std::string_view(reinterpret_cast<const char*>(b.data()), b.size()));
}

}  // namespace

namespace sdur::trace {
namespace {

/// Arms/disarms the process-wide tracer for one test scope and always
/// leaves it disarmed and empty, so a failing test cannot leak an armed
/// tracer (and its ring) into later tests.
class TraceGuard {
 public:
  explicit TraceGuard(bool on, std::size_t capacity = 1u << 16) {
    Tracer::instance().reset();
    Tracer::instance().set_ring_capacity(capacity);
    Tracer::instance().set_enabled(on);
  }
  ~TraceGuard() {
    Tracer::instance().set_enabled(false);
    Tracer::instance().reset();
  }
  TraceGuard(const TraceGuard&) = delete;
  TraceGuard& operator=(const TraceGuard&) = delete;
};

TEST(TraceRing, WrapKeepsAppendOrderAndCounts) {
  TraceGuard guard(true, 8);
  auto& tr = Tracer::instance();
  const std::uint32_t track = tr.register_track(1, "t", -1);
  ASSERT_NE(track, kNoTrack);
  for (std::uint64_t i = 0; i < 20; ++i) {
    tr.record_mark(track, Point::kTxBegin, i, static_cast<sim::Time>(i), 0);
  }
  EXPECT_EQ(tr.records_appended(), 20u);
  EXPECT_EQ(tr.records_dropped(), 12u);
  const auto recs = tr.records();
  ASSERT_EQ(recs.size(), 8u);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].id, 12 + i) << "oldest survivor first, append order";
  }
}

TEST(TraceRing, DisabledTracerRegistersAndRecordsNothing) {
  TraceGuard guard(false);
  auto& tr = Tracer::instance();
  EXPECT_EQ(tr.register_track(1, "t", -1), kNoTrack);
  tr.record_mark(kNoTrack, Point::kTxBegin, 1, 0, 0);
  tr.record_span(kNoTrack, Point::kConsensus, 1, 0, 5, 0, -1);
  EXPECT_EQ(tr.records_appended(), 0u);
  EXPECT_EQ(tr.track_count(), 0u);
  EXPECT_EQ(tr.heap_allocations(), 0u);
}

TEST(TraceRing, ZeroHeapAllocationsAtSteadyState) {
  TraceGuard guard(true, 256);
  auto& tr = Tracer::instance();
  const std::uint32_t track = tr.register_track(1, "hot", -1);
  // Drive past the wrap point so the ring is armed and recycling slots.
  for (std::uint64_t i = 0; i < 512; ++i) {
    tr.record_mark(track, Point::kTxDeliver, i, static_cast<sim::Time>(i), 0);
  }
  ASSERT_GT(tr.records_dropped(), 0u) << "steady state reached (ring wrapped)";
  const std::uint64_t allocs_before = tr.heap_allocations();
  for (std::uint64_t i = 0; i < 100'000; ++i) {
    tr.record_mark(track, Point::kTxDeliver, i, static_cast<sim::Time>(i), i);
    tr.record_span(track, Point::kLaneWork, i, static_cast<sim::Time>(i),
                   static_cast<sim::Time>(i + 3), 0, static_cast<sim::Time>(i));
    tr.record_instant(track, Point::kCertIndexProbe, i, static_cast<sim::Time>(i), 0);
  }
  EXPECT_EQ(tr.heap_allocations(), allocs_before)
      << "recording a span at steady state must not allocate";
}

}  // namespace
}  // namespace sdur::trace

namespace sdur::workload {
namespace {

using trace::Tracer;
using trace::TraceGuard;

struct ChaosResult {
  std::uint64_t state_digest = 0;  // replica state: sc/certified/dc + store
  sim::NetworkStats net;
  std::uint64_t events = 0;
  sim::Time end_time = 0;
  std::uint64_t committed = 0;
  std::uint64_t trace_digest = 0;  // digest of the full record stream
  std::uint64_t trace_records = 0;
};

/// The fabric_equiv chaos recipe (loss, follower churn, checkpoints,
/// reordering, 30% globals) with trace recording armed or disarmed.
ChaosResult run_chaos(bool traced) {
  TraceGuard guard(traced, 1u << 17);

  DeploymentSpec spec;
  spec.partitions = 2;
  spec.partitioning = MicroWorkload::make_partitioning(2, 60);
  spec.log_write_latency = sim::usec(300);
  spec.server.reorder_threshold = 48;
  spec.server.checkpoint_interval = sim::msec(600);
  spec.server.missing_vote_timeout = sim::msec(1500);
  spec.seed = 31;
  spec.client.read_retry_interval = sim::msec(300);
  spec.client.commit_retry_interval = sim::msec(800);
  Deployment dep(spec);
  dep.network().set_loss_rate(0.03);

  RunConfig cfg;
  cfg.clients = 8;
  cfg.seed = 31;
  cfg.warmup = sim::msec(400);
  cfg.measure = sim::sec(2);
  const sim::Time stop_at = cfg.settle + cfg.warmup + cfg.measure;

  MicroConfig mc;
  mc.items_per_partition = 60;
  mc.global_fraction = 0.3;
  mc.keep_running = [&dep, stop_at] { return dep.simulator().now() < stop_at; };
  MicroWorkload wl(mc);

  util::Rng chaos(7);
  for (sim::Time t = sim::sec(1); t < stop_at; t += sim::msec(700)) {
    const PartitionId p = static_cast<PartitionId>(chaos.below(2));
    const std::uint32_t replica = 1 + static_cast<std::uint32_t>(chaos.below(2));
    dep.simulator().schedule_at(t, [&dep, p, replica] { dep.server(p, replica).crash(); });
    dep.simulator().schedule_at(t + sim::msec(450),
                                [&dep, p, replica] { dep.server(p, replica).recover(); });
  }

  const RunResult r = run_experiment(dep, wl, cfg);

  dep.network().set_loss_rate(0);
  for (Server* s : dep.servers()) s->recover();
  dep.run_until(dep.simulator().now() + sim::sec(10));

  ChaosResult out;
  util::Writer w;
  for (PartitionId p = 0; p < dep.partition_count(); ++p) {
    for (std::uint32_t rep = 0; rep < dep.replica_count(); ++rep) {
      Server& s = dep.server(p, rep);
      w.i64(s.sc());
      w.i64(s.certified());
      w.u64(s.dc());
      s.store().encode(w);
    }
  }
  out.state_digest = digest_writer(w);
  out.net = dep.network().stats();
  out.events = dep.simulator().events_processed();
  out.end_time = dep.simulator().now();
  for (const auto& [cls, st] : r.classes) out.committed += st.committed;

  util::Writer tw;
  for (const trace::Record& rec : Tracer::instance().records()) {
    tw.i64(rec.ts);
    tw.i64(rec.t0);
    tw.i64(rec.t1);
    tw.u64(rec.id);
    tw.u64(rec.aux);
    tw.u64(rec.track);
    tw.u8(static_cast<std::uint8_t>(rec.point));
    tw.u8(static_cast<std::uint8_t>(rec.kind));
  }
  out.trace_digest = digest_writer(tw);
  out.trace_records = Tracer::instance().records_appended();
  return out;
}

TEST(TraceEquiv, RecordingDoesNotChangeSimulation) {
  const ChaosResult traced = run_chaos(true);
  const ChaosResult untraced = run_chaos(false);
  const ChaosResult again = run_chaos(true);

  ASSERT_GT(traced.committed, 20u) << "the chaos run made real progress";

  // Armed vs disarmed: byte-identical replica state and identical
  // message/event accounting — tracing never influences simulated results.
  EXPECT_EQ(traced.state_digest, untraced.state_digest);
  EXPECT_TRUE(traced.net == untraced.net) << "NetworkStats diverged";
  EXPECT_EQ(traced.events, untraced.events);
  EXPECT_EQ(traced.end_time, untraced.end_time);
  EXPECT_EQ(traced.committed, untraced.committed);
  EXPECT_EQ(untraced.trace_records, 0u) << "disarmed runs record nothing";

  // Same seed, armed twice: the record stream itself is bit-reproducible.
  EXPECT_EQ(traced.state_digest, again.state_digest);
#if SDUR_TRACE
  EXPECT_GT(traced.trace_records, 0u);
#else
  EXPECT_EQ(traced.trace_records, 0u) << "instrumentation compiled out";
#endif
  EXPECT_EQ(traced.trace_records, again.trace_records);
  EXPECT_EQ(traced.trace_digest, again.trace_digest);
}

#if SDUR_TRACE

/// A clean traced run (no chaos) for structural checks: every invariant
/// below must hold for serial and P-DUR deployments alike.
void run_clean(PartitionId partitions, std::uint32_t cores, double global_fraction) {
  DeploymentSpec spec;
  spec.partitions = partitions;
  spec.partitioning = MicroWorkload::make_partitioning(partitions, 200);
  spec.server.pdur.cores = cores;
  spec.seed = 5;
  Deployment dep(spec);

  RunConfig cfg;
  cfg.clients = 8;
  cfg.seed = 5;
  cfg.warmup = sim::msec(400);
  cfg.measure = sim::sec(2);
  const sim::Time stop_at = cfg.settle + cfg.warmup + cfg.measure;

  MicroConfig mc;
  mc.items_per_partition = 200;
  mc.global_fraction = global_fraction;
  mc.cores = cores;
  mc.cross_core_fraction = cores > 1 ? 0.2 : 0.0;
  mc.keep_running = [&dep, stop_at] { return dep.simulator().now() < stop_at; };
  MicroWorkload wl(mc);
  (void)run_experiment(dep, wl, cfg);
}

TEST(TraceInvariants, SpansWellFormedAndTimestampsMonotonePerTrack) {
  TraceGuard guard(true, 1u << 18);
  run_clean(2, 1, 0.2);
  auto& tr = Tracer::instance();
  tr.set_enabled(false);

  const auto recs = tr.records();
  ASSERT_GT(recs.size(), 100u);
  EXPECT_EQ(tr.records_dropped(), 0u) << "ring sized for the whole run";
  std::vector<sim::Time> last_ts(tr.track_count(), sim::kNever * -1);
  std::vector<std::uint64_t> per_track(tr.track_count(), 0);
  for (const trace::Record& r : recs) {
    ASSERT_LT(r.track, tr.track_count());
    // Append timestamps are monotone per track (recording follows the
    // single-threaded simulated clock).
    EXPECT_GE(r.ts, last_ts[r.track]);
    last_ts[r.track] = r.ts;
    ++per_track[r.track];
    switch (r.kind) {
      case trace::Kind::kSpan:
        // Every span is a closed [t0, t1] interval: begin matches end.
        EXPECT_LE(r.t0, r.t1);
        EXPECT_LE(r.ts, r.t1) << "append happens before (or at) the span end";
        break;
      case trace::Kind::kMark:
      case trace::Kind::kInstant:
        EXPECT_EQ(r.t0, r.ts);
        EXPECT_EQ(r.t1, r.ts);
        break;
    }
    EXPECT_LT(static_cast<int>(r.point), static_cast<int>(trace::Point::kPointCount));
  }
  for (std::uint32_t t = 0; t < tr.track_count(); ++t) {
    EXPECT_EQ(per_track[t], tr.track(t).appended);
  }
}

TEST(TraceInvariants, BreakdownTelescopesToEndToEndMean) {
  TraceGuard guard(true, 1u << 18);
  run_clean(2, 1, 0.2);
  Tracer::instance().set_enabled(false);

  const trace::Breakdown b = trace::build_breakdown(Tracer::instance());
  ASSERT_GT(b.local.chains, 50u);
  ASSERT_GT(b.global.chains, 5u);
  for (const trace::Breakdown::Class* c : {&b.local, &b.global}) {
    const double e2e = c->e2e.mean();
    ASSERT_GT(e2e, 0.0);
    // The stages telescope between consecutive marks of the same chain set,
    // so the sums agree to floating-point rounding — far inside the 5%
    // acceptance bar.
    EXPECT_NEAR(c->sum_of_stage_means() / e2e, 1.0, 1e-3);
    for (std::size_t s = 0; s < trace::Breakdown::kStages; ++s) {
      EXPECT_EQ(c->stage[s].count(), c->chains) << trace::Breakdown::stage_name(s);
    }
  }
  for (std::size_t s = 0; s < trace::Breakdown::kStages; ++s) {
    SCOPED_TRACE(trace::Breakdown::stage_name(s));
    // Serial model: no home-core stage.
    if (std::string_view(trace::Breakdown::stage_name(s)) == "lane_exec") {
      EXPECT_EQ(b.local.stage[s].max(), 0);
    }
  }
}

TEST(TraceInvariants, PdurLanesRecordWorkAndCertInstants) {
  TraceGuard guard(true, 1u << 18);
  run_clean(1, 4, 0.0);
  auto& tr = Tracer::instance();
  tr.set_enabled(false);

  bool saw_lane_work = false, saw_cert_instant = false, saw_ready = false;
  std::uint32_t lane_tracks = 0;
  for (std::uint32_t t = 0; t < tr.track_count(); ++t) {
    if (tr.track(t).lane >= 0) ++lane_tracks;
  }
  EXPECT_GE(lane_tracks, 4u * 3u) << "one lane track per core per replica";
  for (const trace::Record& r : tr.records()) {
    if (r.point == trace::Point::kLaneWork) {
      saw_lane_work = true;
      EXPECT_GE(tr.track(r.track).lane, 0) << "lane work lands on a lane track";
    }
    if (r.point == trace::Point::kCertIndexProbe || r.point == trace::Point::kCertScanFallback) {
      saw_cert_instant = true;
    }
    if (r.point == trace::Point::kTxReady) saw_ready = true;
  }
  EXPECT_TRUE(saw_lane_work);
  EXPECT_TRUE(saw_cert_instant);
  EXPECT_TRUE(saw_ready) << "P-DUR core completion is marked";

  const trace::Breakdown b = trace::build_breakdown(tr);
  ASSERT_GT(b.local.chains, 50u);
  EXPECT_GT(b.local.sum_of_stage_means(), 0.0);
  EXPECT_NEAR(b.local.sum_of_stage_means() / b.local.e2e.mean(), 1.0, 1e-3);
}

TEST(TraceExport, ChromeJsonWritesNamedTracks) {
  TraceGuard guard(true, 1u << 16);
  auto& tr = Tracer::instance();
  const std::uint32_t a = tr.register_track(1, "server-p0-0", -1);
  const std::uint32_t lane = tr.register_track(1, "server-p0-0-core1", 1);
  tr.record_mark(a, trace::Point::kTxDeliver, 42, sim::msec(1), 0);
  tr.record_span(lane, trace::Point::kLaneWork, 42, sim::msec(1), sim::msec(2), 1, sim::msec(1));
  tr.record_instant(a, trace::Point::kCertIndexProbe, 42, sim::msec(1), 3);

  const std::string path = ::testing::TempDir() + "trace_export_test.json";
  ASSERT_TRUE(trace::write_chrome_trace(tr, path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  // Structural checks; the latency_breakdown_smoke ctest entry runs a real
  // json.load over the bench's export.
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(content.find("\"server-p0-0-core1\""), std::string::npos);
  EXPECT_NE(content.find("\"tx.deliver\""), std::string::npos);
  EXPECT_NE(content.find("\"lane.work\""), std::string::npos);
  EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(content.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_EQ(content.find("\"ph\":\"B\""), std::string::npos)
      << "complete events only: every begin has its end by construction";

  EXPECT_FALSE(trace::write_chrome_trace(tr, "/nonexistent-dir/x.json"));
}

#endif  // SDUR_TRACE

}  // namespace
}  // namespace sdur::workload
