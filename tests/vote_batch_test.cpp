// Vote-exchange batching & piggybacking tests (see DESIGN.md "Vote
// exchange & batching").
//
//  1. Golden pin: with vote_batching off (the default) a chaos scenario
//     (loss, follower churn, checkpoints, reordering, 40% globals over 3
//     partitions) reproduces the pre-batching digest bit-for-bit — the
//     batching layer is provably inert when disabled.
//  2. Batching on, same chaos recipe: the run converges (all pending
//     globals resolve, replicas of each partition agree byte-for-byte),
//     with batched-vote delivery interleaving crash recovery and
//     checkpoint/state-transfer installs.
//  3. Message collapse: against the identical clean workload, batching
//     replaces the per-transaction vote fan-out with VoteBatchMsg flushes
//     and piggybacked rides; the wire-level vote-message count drops.
//  4. Stale votes: late redundant replica votes (and votes replayed by a
//     recovering replica) hit already-completed transactions and are
//     dropped (counted) without re-draining, on both the unicast and the
//     batched path.
//  5. Resend after heal: batched/piggybacked votes lost during a lossy
//     window are re-sourced by the vote-resend/vote-request machinery
//     once the network heals; nothing stays pending.
#include <gtest/gtest.h>

#include <string_view>

#include "sdur/messages.h"
#include "util/hash.h"
#include "workload/driver.h"
#include "workload/microbench.h"

namespace sdur::workload {
namespace {

/// Frozen pre-PR digest of the batching-off chaos scenario below; captured
/// on the commit preceding the batching layer. Any drift means the
/// default-off configuration is no longer the legacy protocol.
constexpr std::uint64_t kLegacyDigest = 4047494388130711496ULL;
constexpr std::uint64_t kLegacyCommitted = 60;

std::uint64_t digest_writer(const util::Writer& w) {
  const util::Bytes& b = w.data();
  return util::fnv1a(std::string_view(reinterpret_cast<const char*>(b.data()), b.size()));
}

/// True when every replica of every partition ended at identical
/// (sc, certified, store) state — the convergence bar for chaos runs.
bool replicas_agree(Deployment& dep) {
  for (PartitionId p = 0; p < dep.partition_count(); ++p) {
    util::Writer base;
    for (std::uint32_t rep = 0; rep < dep.replica_count(); ++rep) {
      util::Writer w;
      Server& s = dep.server(p, rep);
      w.i64(s.sc());
      w.i64(s.certified());
      s.store().encode(w);
      if (rep == 0) {
        base = std::move(w);
      } else if (digest_writer(w) != digest_writer(base)) {
        return false;
      }
    }
  }
  return true;
}

struct ChaosOut {
  std::uint64_t digest = 0;
  std::uint64_t committed = 0;
  Server::Stats stats;
  sim::NetworkStats net;
  bool agree = false;
  std::size_t pending_total = 0;
};

/// Chaos scenario (loss, follower churn, checkpoints, reordering, 40%
/// globals over 3 partitions). checkpoint_interval is short enough that
/// recovering replicas install checkpoints/state transfers while batched
/// and piggybacked votes are in flight.
ChaosOut run_chaos(bool batching) {
  DeploymentSpec spec;
  spec.partitions = 3;
  spec.partitioning = MicroWorkload::make_partitioning(3, 90);
  spec.log_write_latency = sim::usec(300);
  spec.server.reorder_threshold = 24;
  spec.server.checkpoint_interval = sim::msec(500);
  spec.server.missing_vote_timeout = sim::msec(1500);
  spec.server.vote_batching = batching;
  spec.seed = 17;
  spec.client.read_retry_interval = sim::msec(300);
  spec.client.commit_retry_interval = sim::msec(800);
  Deployment dep(spec);
  dep.network().set_loss_rate(0.02);

  RunConfig cfg;
  cfg.clients = 10;
  cfg.seed = 17;
  cfg.warmup = sim::msec(400);
  cfg.measure = sim::sec(2);
  const sim::Time stop_at = cfg.settle + cfg.warmup + cfg.measure;

  MicroConfig mc;
  mc.items_per_partition = 90;
  mc.global_fraction = 0.4;
  mc.keep_running = [&dep, stop_at] { return dep.simulator().now() < stop_at; };
  MicroWorkload wl(mc);

  util::Rng chaos(11);
  for (sim::Time t = sim::sec(1); t < stop_at; t += sim::msec(600)) {
    const PartitionId p = static_cast<PartitionId>(chaos.below(3));
    const std::uint32_t replica = 1 + static_cast<std::uint32_t>(chaos.below(2));
    dep.simulator().schedule_at(t, [&dep, p, replica] { dep.server(p, replica).crash(); });
    dep.simulator().schedule_at(t + sim::msec(400),
                                [&dep, p, replica] { dep.server(p, replica).recover(); });
  }

  const RunResult r = run_experiment(dep, wl, cfg);

  dep.network().set_loss_rate(0);
  for (Server* s : dep.servers()) s->recover();
  dep.run_until(dep.simulator().now() + sim::sec(10));

  ChaosOut out;
  util::Writer w;
  for (PartitionId p = 0; p < dep.partition_count(); ++p) {
    for (std::uint32_t rep = 0; rep < dep.replica_count(); ++rep) {
      Server& s = dep.server(p, rep);
      w.i64(s.sc());
      w.i64(s.certified());
      w.u64(s.dc());
      s.store().encode(w);
    }
  }
  const sim::NetworkStats& net = dep.network().stats();
  w.u64(net.messages_sent);
  w.u64(net.messages_delivered);
  w.u64(net.messages_dropped);
  w.u64(net.bytes_sent);
  for (sim::MsgType t = 1; t < 50; ++t) {
    w.u64(net.per_type_count.at(t));
    w.u64(net.per_type_bytes.at(t));
  }
  w.u64(dep.simulator().events_processed());
  w.i64(dep.simulator().now());
  out.digest = digest_writer(w);
  for (const auto& [cls, st] : r.classes) out.committed += st.committed;
  out.stats = dep.total_stats();
  out.net = net;
  out.agree = replicas_agree(dep);
  for (Server* s : dep.servers()) out.pending_total += s->pending_count();
  return out;
}

TEST(VoteBatch, BatchingOffMatchesLegacyGolden) {
  const ChaosOut r = run_chaos(false);
  EXPECT_EQ(r.digest, kLegacyDigest)
      << "vote_batching=false must stay bit-identical to the pre-batching protocol";
  EXPECT_EQ(r.committed, kLegacyCommitted);
  // The batching layer is fully inert when off: no batch traffic, no
  // batching stats.
  EXPECT_EQ(r.net.per_type_count.at(msgtype::kVoteBatch), 0u);
  EXPECT_EQ(r.net.per_type_count.at(msgtype::kVotePiggyback), 0u);
  EXPECT_EQ(r.stats.vote_batches_sent, 0u);
  EXPECT_EQ(r.stats.votes_batched, 0u);
  EXPECT_EQ(r.stats.votes_piggybacked, 0u);
}

TEST(VoteBatch, BatchingOnConvergesUnderChaosAndCheckpointInstalls) {
  const ChaosOut r = run_chaos(true);
  EXPECT_GT(r.committed, 20u) << "the chaos run made real progress";
  EXPECT_TRUE(r.agree) << "replicas of each partition converged byte-for-byte";
  EXPECT_EQ(r.pending_total, 0u) << "every pending global resolved after heal";
  // The batcher actually carried the vote exchange: explicit batch
  // flushes and free rides both happened, and the legacy per-transaction
  // unicast fan-out is gone outside the resend/vote-request repair path.
  EXPECT_GT(r.stats.votes_batched, 0u);
  EXPECT_GT(r.stats.votes_piggybacked, 0u);
  EXPECT_GT(r.net.per_type_count.at(msgtype::kVoteBatch), 0u);
  EXPECT_GT(r.net.per_type_count.at(msgtype::kVotePiggyback), 0u);
}

struct CleanOut {
  std::uint64_t committed = 0;
  Server::Stats stats;
  sim::NetworkStats net;
  std::uint64_t vote_messages = 0;  // wire messages that exist only to carry votes
};

/// Clean run (no loss, no churn): 3 partitions, 15% globals — the
/// regime the paper's multi-partition experiments run in and the one the
/// ISSUE acceptance bar (>= 4x vote-message reduction) targets.
CleanOut run_clean(bool batching, std::uint32_t clients = 12, sim::Time interval = 0) {
  DeploymentSpec spec;
  spec.partitions = 3;
  spec.partitioning = MicroWorkload::make_partitioning(3, 120);
  spec.server.reorder_threshold = 16;
  spec.server.vote_batching = batching;
  if (interval > 0) spec.server.vote_batch_interval = interval;
  spec.seed = 9;
  Deployment dep(spec);

  RunConfig cfg;
  cfg.clients = clients;
  cfg.seed = 9;
  cfg.warmup = sim::msec(400);
  cfg.measure = sim::sec(2);
  const sim::Time stop_at = cfg.settle + cfg.warmup + cfg.measure;

  MicroConfig mc;
  mc.items_per_partition = 120;
  mc.global_fraction = 0.15;
  mc.keep_running = [&dep, stop_at] { return dep.simulator().now() < stop_at; };
  MicroWorkload wl(mc);

  const RunResult r = run_experiment(dep, wl, cfg);
  dep.run_until(dep.simulator().now() + sim::sec(2));

  CleanOut out;
  for (const auto& [cls, st] : r.classes) out.committed += st.committed;
  out.stats = dep.total_stats();
  out.net = dep.network().stats();
  // Piggybacked votes ride messages that were being sent anyway, so only
  // kVote unicasts and kVoteBatch flushes count as vote-exchange cost.
  out.vote_messages = out.net.per_type_count.at(msgtype::kVote) +
                      out.net.per_type_count.at(msgtype::kVoteBatch);
  return out;
}

TEST(VoteBatch, BatchingCollapsesVoteMessages) {
  // 48 clients, 20ms batch window (2x the 10ms gossip period, so queued
  // votes usually catch a free gossip ride before the flush timer fires).
  // Measured here: ~9x fewer vote messages; the bar is the ISSUE's 4x.
  const CleanOut off = run_clean(false, 48);
  const CleanOut on = run_clean(true, 48, sim::msec(20));

  ASSERT_GT(off.committed, 1000u);
  // Batching must not cost throughput: deferring a vote by less than the
  // time the reorder threshold takes to clear is free.
  EXPECT_GE(on.committed * 100, off.committed * 97)
      << "batching-on committed " << on.committed << " vs off " << off.committed;

  ASSERT_GT(off.vote_messages, 0u);
  EXPECT_GE(off.vote_messages, 4 * on.vote_messages)
      << "vote-message reduction below the 4x acceptance bar: off=" << off.vote_messages
      << " on=" << on.vote_messages;
  EXPECT_LT(on.net.messages_sent, off.net.messages_sent)
      << "total wire traffic must drop, not just shift between types";
  EXPECT_GT(on.stats.votes_piggybacked, 0u) << "votes rode existing traffic";
  EXPECT_GT(on.stats.votes_batched, 0u) << "the flush path carried votes too";
  // Every vote the legacy run unicast is accounted for on the batching
  // run: batched + piggybacked + (rare) repair unicasts cover at least the
  // same per-replica vote deliveries.
  EXPECT_GE(on.stats.votes_batched + on.stats.votes_piggybacked +
                on.net.per_type_count.at(msgtype::kVote),
            off.net.per_type_count.at(msgtype::kVote) / 2);
}

/// Stale votes are the *common* case, not a fault artifact: a global
/// completes once one vote from each remote partition arrives, but every
/// replica of those partitions sends one, so the late arrivals hit
/// already-completed transactions and must be dropped (counted, and
/// crucially without re-running drain_pending — the legacy early-return
/// semantics the golden pin depends on). A crash+recover then replays the
/// log and re-sends votes wholesale, adding more. Both the unicast and
/// the batched delivery path share the check.
void run_stale(bool batching) {
  DeploymentSpec spec;
  spec.partitions = 2;
  spec.partitioning = MicroWorkload::make_partitioning(2, 60);
  spec.server.vote_batching = batching;
  spec.seed = 21;
  Deployment dep(spec);

  RunConfig cfg;
  cfg.clients = 8;
  cfg.seed = 21;
  cfg.warmup = sim::msec(300);
  cfg.measure = sim::sec(1);

  MicroConfig mc;
  mc.items_per_partition = 60;
  mc.global_fraction = 0.5;
  const sim::Time stop_at = cfg.settle + cfg.warmup + cfg.measure;
  mc.keep_running = [&dep, stop_at] { return dep.simulator().now() < stop_at; };
  MicroWorkload wl(mc);
  const RunResult r = run_experiment(dep, wl, cfg);
  std::uint64_t committed = 0;
  for (const auto& [cls, st] : r.classes) committed += st.committed;
  ASSERT_GT(committed, 20u);

  const std::uint64_t steady = dep.total_stats().stale_votes_dropped;
  EXPECT_GT(steady, 0u) << "redundant replica votes arrive after completion and are dropped";

  dep.server(0, 1).crash();
  dep.server(0, 1).recover();
  dep.run_until(dep.simulator().now() + sim::sec(2));
  EXPECT_GT(dep.total_stats().stale_votes_dropped, steady)
      << "votes replayed from the recovered replica's log are dropped and counted";
  EXPECT_TRUE(replicas_agree(dep)) << "stale drops never perturb state";
}

TEST(VoteBatch, StaleReplayedVotesDroppedLegacyPath) { run_stale(false); }

TEST(VoteBatch, StaleReplayedVotesDroppedBatchedPath) { run_stale(true); }

TEST(VoteBatch, ResendRepairsVotesLostWhilePartitioned) {
  DeploymentSpec spec;
  spec.partitions = 3;
  spec.partitioning = MicroWorkload::make_partitioning(3, 60);
  spec.server.reorder_threshold = 8;
  spec.server.missing_vote_timeout = sim::msec(1500);
  spec.server.vote_batching = true;
  spec.seed = 13;
  Deployment dep(spec);

  RunConfig cfg;
  cfg.clients = 8;
  cfg.seed = 13;
  cfg.warmup = sim::msec(300);
  cfg.measure = sim::sec(2);
  const sim::Time stop_at = cfg.settle + cfg.warmup + cfg.measure;

  MicroConfig mc;
  mc.items_per_partition = 60;
  mc.global_fraction = 0.3;
  mc.keep_running = [&dep, stop_at] { return dep.simulator().now() < stop_at; };
  MicroWorkload wl(mc);

  // A lossy window mid-run drops batched and piggybacked vote deliveries
  // wholesale; after it heals, the vote-resend / vote-request machinery
  // must re-source everything the outboxes lost.
  dep.simulator().schedule_at(sim::sec(1), [&dep] { dep.network().set_loss_rate(0.5); });
  dep.simulator().schedule_at(sim::sec(2), [&dep] { dep.network().set_loss_rate(0.0); });

  const RunResult r = run_experiment(dep, wl, cfg);
  dep.run_until(dep.simulator().now() + sim::sec(10));

  std::uint64_t committed = 0;
  for (const auto& [cls, st] : r.classes) committed += st.committed;
  EXPECT_GT(committed, 20u);
  std::size_t pending = 0;
  for (Server* s : dep.servers()) pending += s->pending_count();
  EXPECT_EQ(pending, 0u) << "no global stays blocked on votes lost in the lossy window";
  EXPECT_TRUE(replicas_agree(dep));
}

TEST(VoteBatch, CodecRoundTrip) {
  VoteBatchMsg b;
  b.partition = 2;
  b.votes = {{7, Outcome::kCommit}, {9, Outcome::kAbort}, {11, Outcome::kUnknown}};
  {
    const sim::Message m = b.to_message();
    ASSERT_EQ(m.type, msgtype::kVoteBatch);
    util::Reader r(m.payload.bytes());
    const VoteBatchMsg d = VoteBatchMsg::decode(r);
    EXPECT_EQ(d.partition, b.partition);
    ASSERT_EQ(d.votes.size(), b.votes.size());
    for (std::size_t i = 0; i < b.votes.size(); ++i) {
      EXPECT_EQ(d.votes[i].id, b.votes[i].id);
      EXPECT_EQ(d.votes[i].vote, b.votes[i].vote);
    }
  }
  VotePiggybackMsg env;
  env.inner_type = msgtype::kGossipSC;
  env.inner_payload = std::string("\x01\x02\x03", 3);
  env.batch = b;
  const sim::Message m = env.to_message();
  ASSERT_EQ(m.type, msgtype::kVotePiggyback);
  util::Reader r(m.payload.bytes());
  const VotePiggybackMsg d = VotePiggybackMsg::decode(r);
  EXPECT_EQ(d.inner_type, env.inner_type);
  EXPECT_EQ(d.inner_payload, env.inner_payload);
  EXPECT_EQ(d.batch.partition, b.partition);
  ASSERT_EQ(d.batch.votes.size(), b.votes.size());
  EXPECT_EQ(d.batch.votes[1].id, 9u);
  EXPECT_EQ(d.batch.votes[1].vote, Outcome::kAbort);
}

}  // namespace
}  // namespace sdur::workload
