// Unit tests for util: byte codec, bloom filters, key sets, histograms,
// Zipf generator, RNG determinism.
#include <gtest/gtest.h>

#include <set>

#include "util/bloom.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/zipf.h"

namespace sdur::util {
namespace {

TEST(Bytes, FixedWidthRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, VarintRoundTrip) {
  const std::uint64_t values[] = {0, 1, 127, 128, 300, 16383, 16384, 1ULL << 32, UINT64_MAX};
  Writer w;
  for (std::uint64_t v : values) w.varint(v);
  Reader r(w.data());
  for (std::uint64_t v : values) EXPECT_EQ(r.varint(), v);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, StringsRoundTrip) {
  Writer w;
  w.bytes(std::string_view(""));
  w.bytes(std::string_view("hello"));
  std::string big(10'000, 'z');
  w.bytes(std::string_view(big));
  Reader r(w.data());
  EXPECT_EQ(r.bytes(), "");
  EXPECT_EQ(r.bytes(), "hello");
  EXPECT_EQ(r.bytes(), big);
}

TEST(Bytes, TruncatedBufferThrows) {
  Writer w;
  w.u64(12345);
  Reader r(w.data().data(), 4);  // cut in half
  EXPECT_THROW(r.u64(), CodecError);
}

TEST(Bytes, TruncatedStringThrows) {
  Writer w;
  w.varint(100);  // claims 100 bytes follow
  w.raw("abc", 3);
  Reader r(w.data());
  EXPECT_THROW(r.bytes(), CodecError);
}

TEST(Bytes, MalformedVarintThrows) {
  Bytes bad(11, 0xFF);  // 11 continuation bytes > max varint length
  Reader r(bad);
  EXPECT_THROW(r.varint(), CodecError);
}

TEST(Bloom, NoFalseNegatives) {
  BloomFilter f = BloomFilter::for_capacity(1000, 0.01);
  for (std::uint64_t k = 0; k < 1000; ++k) f.insert(k * 7919);
  for (std::uint64_t k = 0; k < 1000; ++k) EXPECT_TRUE(f.may_contain(k * 7919));
}

TEST(Bloom, FalsePositiveRateNearTarget) {
  BloomFilter f = BloomFilter::for_capacity(1000, 0.01);
  for (std::uint64_t k = 0; k < 1000; ++k) f.insert(k);
  int fp = 0;
  const int probes = 20'000;
  for (int i = 0; i < probes; ++i) {
    if (f.may_contain(1'000'000 + static_cast<std::uint64_t>(i))) ++fp;
  }
  const double rate = static_cast<double>(fp) / probes;
  EXPECT_LT(rate, 0.03) << "expected ~1% false positives, got " << rate;
}

TEST(Bloom, DisjointDetectsSharedElement) {
  BloomFilter a = BloomFilter::for_capacity(100, 0.01);
  BloomFilter b = BloomFilter::for_capacity(100, 0.01);
  a.insert(42);
  b.insert(42);
  EXPECT_FALSE(a.disjoint(b));
}

TEST(Bloom, DisjointOnEmpty) {
  BloomFilter a = BloomFilter::for_capacity(100, 0.01);
  BloomFilter b = BloomFilter::for_capacity(100, 0.01);
  a.insert(1);
  EXPECT_TRUE(a.disjoint(b));
  EXPECT_TRUE(b.disjoint(a));
}

TEST(Bloom, EncodeDecodeRoundTrip) {
  BloomFilter f = BloomFilter::for_capacity(50, 0.01);
  for (std::uint64_t k = 0; k < 50; ++k) f.insert(k * 3);
  Writer w;
  f.encode(w);
  Reader r(w.data());
  BloomFilter g = BloomFilter::decode(r);
  EXPECT_EQ(f, g);
}

TEST(KeySet, ExactIntersection) {
  KeySet a = KeySet::exact({1, 5, 9});
  KeySet b = KeySet::exact({2, 5, 8});
  KeySet c = KeySet::exact({3, 4});
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_FALSE(c.intersects(a));
}

TEST(KeySet, EmptyNeverIntersects) {
  KeySet e = KeySet::exact({});
  KeySet a = KeySet::exact({1, 2, 3});
  EXPECT_FALSE(e.intersects(a));
  EXPECT_FALSE(a.intersects(e));
  EXPECT_TRUE(e.empty());
}

TEST(KeySet, BloomVsExactMixedIntersection) {
  KeySet bloom = KeySet::bloom({10, 20, 30});
  KeySet hit = KeySet::exact({20});
  KeySet miss = KeySet::exact({999'999});
  EXPECT_TRUE(bloom.intersects(hit));
  EXPECT_TRUE(hit.intersects(bloom));
  EXPECT_FALSE(bloom.intersects(miss)) << "unlucky false positive (extremely improbable)";
}

TEST(KeySet, BloomVsBloomSharedElement) {
  KeySet a = KeySet::bloom({7, 8, 9}, 0.01);
  KeySet b = KeySet::bloom({9, 100, 200}, 0.01);
  EXPECT_TRUE(a.intersects(b));
}

TEST(KeySet, EncodeDecodePreservesMode) {
  KeySet exact = KeySet::exact({4, 2, 4, 1});
  Writer w;
  exact.encode(w);
  Reader r(w.data());
  KeySet decoded = KeySet::decode(r);
  EXPECT_FALSE(decoded.is_bloom());
  EXPECT_EQ(decoded.keys(), (std::vector<std::uint64_t>{1, 2, 4}));

  KeySet bloom = KeySet::bloom({1, 2, 3});
  Writer w2;
  bloom.encode(w2);
  Reader r2(w2.data());
  KeySet decoded2 = KeySet::decode(r2);
  EXPECT_TRUE(decoded2.is_bloom());
  EXPECT_TRUE(decoded2.may_contain(2));
}

TEST(KeySet, BloomSmallerOnWireForLargeSets) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 500; ++k) keys.push_back(k);
  Writer we, wb;
  KeySet::exact(keys).encode(we);
  KeySet::bloom(keys, 0.01).encode(wb);
  EXPECT_LT(wb.size(), we.size()) << "bloom mode should reduce wire size (Section V)";
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_NEAR(h.mean(), 50.5, 1.0);
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 50, 3);
  EXPECT_NEAR(static_cast<double>(h.percentile(99)), 99, 4);
}

TEST(Histogram, BoundedRelativeError) {
  Histogram h;
  const std::int64_t value = 123'456;
  h.record(value);
  const std::int64_t p = h.percentile(100);
  EXPECT_NEAR(static_cast<double>(p), static_cast<double>(value), 0.02 * value);
}

TEST(Histogram, CdfIsMonotone) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) h.record(static_cast<std::int64_t>(rng.below(1'000'000)));
  auto cdf = h.cdf();
  ASSERT_FALSE(cdf.empty());
  double prev = 0;
  for (const auto& [v, frac] : cdf) {
    EXPECT_GE(frac, prev);
    prev = frac;
  }
  EXPECT_NEAR(cdf.back().second, 1.0, 1e-9);
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  Histogram a, b, all;
  for (int i = 0; i < 1000; ++i) {
    a.record(i);
    all.record(i);
  }
  for (int i = 5000; i < 6000; ++i) {
    b.record(i);
    all.record(i);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.percentile(99), all.percentile(99));
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
}

TEST(Histogram, MergeAcrossSubBucketBits) {
  // Merging histograms with different sub-bucket resolution re-records the
  // source's bucket midpoints: counts are preserved exactly, the mean only
  // within the coarser histogram's relative-error bound.
  Histogram coarse(4);
  Histogram fine(8);
  for (int i = 0; i < 1000; ++i) coarse.record(100 + i);
  for (int i = 0; i < 500; ++i) fine.record(50'000 + 10 * i);
  const std::uint64_t total = coarse.count() + fine.count();
  const double expected_mean =
      (coarse.mean() * static_cast<double>(coarse.count()) +
       fine.mean() * static_cast<double>(fine.count())) /
      static_cast<double>(total);
  coarse.merge(fine);
  EXPECT_EQ(coarse.count(), total);
  // 4 sub-bucket bits => buckets are ~1/16 wide, midpoints within ~3%.
  EXPECT_NEAR(coarse.mean(), expected_mean, expected_mean * 0.04);
  EXPECT_GE(coarse.percentile(100), fine.percentile(100) * 95 / 100);

  // Merging an empty histogram is a no-op.
  const std::uint64_t before = coarse.count();
  const double mean_before = coarse.mean();
  Histogram empty(10);
  coarse.merge(empty);
  EXPECT_EQ(coarse.count(), before);
  EXPECT_DOUBLE_EQ(coarse.mean(), mean_before);

  // Merging into an empty histogram transfers everything.
  Histogram sink(6);
  Histogram src(9);
  for (int i = 1; i <= 100; ++i) src.record(i * 7);
  sink.merge(src);
  EXPECT_EQ(sink.count(), src.count());
  EXPECT_NEAR(sink.mean(), src.mean(), src.mean() * 0.04);
}

TEST(Histogram, EmptyHistogramQueries) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(h.cdf().empty());
  EXPECT_EQ(h.percentile(50), 0);
  EXPECT_EQ(h.percentile(99), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, ZeroAndNegativeClamped) {
  Histogram h;
  h.record(0);
  h.record(-5);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.percentile(100), 0);
}

TEST(Zipf, SkewsTowardLowRanks) {
  ZipfGenerator zipf(10'000, 0.99);
  Rng rng(1);
  std::uint64_t low = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    if (zipf.sample(rng) < 100) ++low;
  }
  // With theta=0.99 the first 100 of 10k ranks draw a large share.
  EXPECT_GT(static_cast<double>(low) / n, 0.3);
}

TEST(Zipf, UniformWhenThetaZero) {
  ZipfGenerator zipf(1000, 0.0);
  Rng rng(2);
  std::uint64_t low = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    if (zipf.sample(rng) < 100) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.1, 0.03);
}

TEST(Zipf, SamplesInRange) {
  ZipfGenerator zipf(50, 1.2);
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(zipf.sample(rng), 50u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(5), b(5);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa.next(), fb.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(FormatHelpers, Format) {
  EXPECT_EQ(format_ms(32'600), "32.6");
  EXPECT_EQ(format_k(6'300), "6.3K");
  EXPECT_EQ(format_k(42), "42");
}

}  // namespace
}  // namespace sdur::util
