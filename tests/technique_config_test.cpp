// TechniqueConfig grammar tests (see DESIGN.md "Technique
// configuration"): preset round-trips, the format -> parse -> format
// fixpoint (for presets and for randomized knob combinations), exact
// validate() diagnostics, and exact parse error messages. The messages
// are pinned verbatim: tools and scripts match on them.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "sdur/technique_config.h"

namespace sdur {
namespace {

TechniqueConfig parse_ok(const std::string& s) {
  TechniqueConfig t;
  std::string error;
  EXPECT_TRUE(parse_techniques(s, t, &error)) << "'" << s << "': " << error;
  return t;
}

std::string parse_err(const std::string& s) {
  TechniqueConfig t;
  std::string error;
  EXPECT_FALSE(parse_techniques(s, t, &error)) << "'" << s << "' parsed unexpectedly";
  return error;
}

TEST(TechniqueConfig, DefaultsAreBaseline) {
  const TechniqueConfig t;
  EXPECT_EQ(format_techniques(t), "baseline");
  EXPECT_EQ(t.validate(), "");
  EXPECT_FALSE(t.delaying_enabled);
  EXPECT_FALSE(t.bloom_readsets);
  EXPECT_FALSE(t.vote_batching);
  EXPECT_FALSE(t.ooo_bypass);
  EXPECT_FALSE(t.speculation);
  EXPECT_EQ(t.reorder_threshold, 0u);
}

TEST(TechniqueConfig, PresetsRoundTrip) {
  for (std::string_view name : TechniqueConfig::preset_names()) {
    const auto p = TechniqueConfig::preset(name);
    ASSERT_TRUE(p.has_value()) << name;
    EXPECT_EQ(p->validate(), "") << name;
    // The canonical string re-parses to the same config...
    const std::string canon = format_techniques(*p);
    EXPECT_EQ(parse_ok(canon), *p) << name;
    // ...and the preset name itself parses to the preset.
    EXPECT_EQ(parse_ok(std::string(name)), *p);
  }
  EXPECT_FALSE(TechniqueConfig::preset("turbo").has_value());
}

TEST(TechniqueConfig, PresetContents) {
  const auto geo = TechniqueConfig::preset("geo");
  ASSERT_TRUE(geo);
  EXPECT_EQ(geo->reorder_threshold, 24u);
  EXPECT_TRUE(geo->delaying_enabled);
  EXPECT_FALSE(geo->speculation);
  const auto all = TechniqueConfig::preset("all-on");
  ASSERT_TRUE(all);
  EXPECT_TRUE(all->bloom_readsets);
  EXPECT_TRUE(all->vote_batching);
  EXPECT_TRUE(all->ooo_bypass);
  EXPECT_TRUE(all->speculation);
}

TEST(TechniqueConfig, PresetThenOverrides) {
  const TechniqueConfig t = parse_ok("geo,reorder=8,speculation");
  EXPECT_EQ(t.reorder_threshold, 8u);
  EXPECT_TRUE(t.delaying_enabled);
  EXPECT_TRUE(t.speculation);
}

TEST(TechniqueConfig, DurationsAndValues) {
  TechniqueConfig t = parse_ok("delaying=40ms");
  EXPECT_TRUE(t.delaying_enabled);
  EXPECT_EQ(t.fixed_delay, sim::msec(40));
  t = parse_ok("vote-batch=200us,vote-batch-max=16,no-piggyback");
  EXPECT_TRUE(t.vote_batching);
  EXPECT_EQ(t.vote_batch_interval, sim::usec(200));
  EXPECT_EQ(t.vote_batch_max, 16u);
  EXPECT_FALSE(t.vote_piggyback);
  t = parse_ok("bloom=0.001");
  EXPECT_TRUE(t.bloom_readsets);
  EXPECT_DOUBLE_EQ(t.bloom_fp_rate, 0.001);
  t = parse_ok("delaying=2s");
  EXPECT_EQ(t.fixed_delay, sim::sec(2));
  // Whitespace around tokens is tolerated; the empty string is baseline.
  EXPECT_EQ(parse_ok(" reorder=4 , ooo-bypass "), parse_ok("reorder=4,ooo-bypass"));
  EXPECT_EQ(parse_ok(""), TechniqueConfig{});
}

TEST(TechniqueConfig, ParseErrorMessagesPinned) {
  EXPECT_EQ(parse_err("reorder=4,geo"), "preset 'geo' must be the first token");
  EXPECT_EQ(parse_err("reorder=4,,bloom"), "empty technique token");
  EXPECT_EQ(parse_err("warp-drive"), "unknown technique token 'warp-drive'");
  EXPECT_EQ(parse_err("reorder"), "reorder needs a threshold, e.g. reorder=24");
  EXPECT_EQ(parse_err("reorder=many"), "reorder needs a threshold, e.g. reorder=24");
  EXPECT_EQ(parse_err("delaying=40"), "bad duration in 'delaying=40' (use us/ms/s suffix)");
  EXPECT_EQ(parse_err("vote-batch=fast"),
            "bad duration in 'vote-batch=fast' (use us/ms/s suffix)");
  EXPECT_EQ(parse_err("bloom=tiny"), "bad rate in 'bloom=tiny'");
  EXPECT_EQ(parse_err("vote-batch-max"), "vote-batch-max needs a count, e.g. vote-batch-max=64");
  // A failed parse must leave the output untouched.
  TechniqueConfig t;
  t.reorder_threshold = 7;
  EXPECT_FALSE(parse_techniques("nonsense", t, nullptr));
  EXPECT_EQ(t.reorder_threshold, 7u);
}

TEST(TechniqueConfig, ValidateMessagesPinned) {
  TechniqueConfig t;
  t.fixed_delay = sim::msec(20);
  EXPECT_EQ(t.validate(), "fixed_delay requires delaying_enabled");
  t.delaying_enabled = true;
  EXPECT_EQ(t.validate(), "");
  t = TechniqueConfig{};
  t.bloom_readsets = true;
  t.bloom_fp_rate = 1.5;
  EXPECT_EQ(t.validate(), "bloom_fp_rate must be in (0, 1)");
  t.bloom_fp_rate = 0.0;
  EXPECT_EQ(t.validate(), "bloom_fp_rate must be in (0, 1)");
  t = TechniqueConfig{};
  t.vote_batching = true;
  t.vote_batch_max = 0;
  EXPECT_EQ(t.validate(), "vote_batch_max must be >= 1");
  t = TechniqueConfig{};
  t.vote_piggyback = false;
  EXPECT_EQ(t.validate(), "no-piggyback requires vote-batch");
  t.vote_batching = true;
  EXPECT_EQ(t.validate(), "");
}

// The core grammar contract: for every valid config, the canonical
// string survives a parse -> format round trip unchanged. Randomized
// over the full knob space (deterministic seed).
TEST(TechniqueConfig, RandomizedFormatParseFixpoint) {
  std::mt19937_64 rng(20260808);
  auto coin = [&rng] { return (rng() & 1) != 0; };
  for (int i = 0; i < 2000; ++i) {
    TechniqueConfig t;
    if (coin()) t.reorder_threshold = static_cast<std::uint32_t>(rng() % 100);
    if (coin()) {
      t.delaying_enabled = true;
      // Durations the formatter can represent exactly: whole us/ms/s.
      if (coin()) t.fixed_delay = sim::msec(1 + static_cast<sim::Time>(rng() % 100));
    }
    if (coin()) {
      t.bloom_readsets = true;
      if (coin()) t.bloom_fp_rate = 1e-4;
    }
    if (coin()) {
      t.vote_batching = true;
      if (coin()) t.vote_batch_interval = sim::usec(1 + static_cast<sim::Time>(rng() % 5000));
      if (coin()) t.vote_batch_max = 1 + rng() % 256;
      if (coin()) t.vote_piggyback = false;
    }
    if (coin()) t.ooo_bypass = true;
    if (coin()) t.speculation = true;
    ASSERT_EQ(t.validate(), "") << format_techniques(t);

    const std::string canon = format_techniques(t);
    TechniqueConfig back;
    std::string error;
    ASSERT_TRUE(parse_techniques(canon, back, &error)) << canon << ": " << error;
    EXPECT_EQ(back, t) << canon;
    EXPECT_EQ(format_techniques(back), canon);
  }
}

}  // namespace
}  // namespace sdur
