// Unit tests for the workload module: the serializability checker itself,
// the recorder, the social-network codecs and the microbenchmark value
// tagging.
#include <gtest/gtest.h>

#include "workload/driver.h"
#include "workload/history.h"
#include "workload/microbench.h"
#include "workload/social.h"

namespace sdur::workload {
namespace {

// --- SerializabilityChecker ----------------------------------------------------

TEST(Checker, EmptyHistoryIsSerializable) {
  SerializabilityChecker c;
  EXPECT_TRUE(c.check());
}

TEST(Checker, SimpleChainIsSerializable) {
  SerializabilityChecker c;
  // t1 writes k after reading initial; t2 reads t1's version and writes.
  c.add_committed(1, {{7, 0}}, {7});
  c.add_committed(2, {{7, 1}}, {7});
  c.set_key_order(7, {1, 2});
  EXPECT_TRUE(c.check());
}

TEST(Checker, LostUpdateCycleDetected) {
  SerializabilityChecker c;
  // Classic lost update: both read the initial version of k, both write.
  // rw: t1 -> t2 (t1 read the version before t2's write) and ww/rw the
  // other way produce a cycle.
  c.add_committed(1, {{7, 0}}, {7});
  c.add_committed(2, {{7, 0}}, {7});
  c.set_key_order(7, {1, 2});
  std::string why;
  EXPECT_FALSE(c.check(&why));
  EXPECT_NE(why.find("cycle"), std::string::npos) << why;
}

TEST(Checker, WriteSkewCycleDetected) {
  SerializabilityChecker c;
  // t1 reads x,y writes y; t2 reads x,y writes x — both from initial
  // snapshots: serializable under SI, not under serializability.
  c.add_committed(1, {{1, 0}, {2, 0}}, {2});
  c.add_committed(2, {{1, 0}, {2, 0}}, {1});
  c.set_key_order(1, {2});
  c.set_key_order(2, {1});
  std::string why;
  EXPECT_FALSE(c.check(&why));
}

TEST(Checker, CommutingTransactionsAreSerializable) {
  SerializabilityChecker c;
  c.add_committed(1, {{1, 0}}, {1});
  c.add_committed(2, {{2, 0}}, {2});
  c.set_key_order(1, {1});
  c.set_key_order(2, {2});
  EXPECT_TRUE(c.check());
}

TEST(Checker, DirtyReadDetected) {
  SerializabilityChecker c;
  // t2 read a version written by a transaction that never committed.
  c.add_committed(2, {{7, 99}}, {});
  std::string why;
  EXPECT_FALSE(c.check(&why));
  EXPECT_NE(why.find("uncommitted"), std::string::npos) << why;
}

TEST(Checker, UncommittedInstalledVersionDetected) {
  SerializabilityChecker c;
  c.add_committed(1, {{7, 0}}, {7});
  c.set_key_order(7, {1, 42});  // 42 never committed but left a version
  std::string why;
  EXPECT_FALSE(c.check(&why));
  EXPECT_NE(why.find("42"), std::string::npos) << why;
}

TEST(Checker, AntidependencyOrderingRespected) {
  SerializabilityChecker c;
  // t1 reads initial k; t2 writes k. Serializable as t1 -> t2 (rw edge).
  c.add_committed(1, {{7, 0}}, {});
  c.add_committed(2, {{7, 0}}, {7});
  c.set_key_order(7, {2});
  EXPECT_TRUE(c.check());
}

TEST(Checker, LongerCycleAcrossThreeTransactions) {
  SerializabilityChecker c;
  // t1: reads a@0 writes b; t2: reads b@0 writes c; t3: reads c@0 writes a.
  // rw edges t1->t3 (a), t2->t1 (b), t3->t2 (c): a 3-cycle.
  c.add_committed(1, {{1, 0}}, {2});
  c.add_committed(2, {{2, 0}}, {3});
  c.add_committed(3, {{3, 0}}, {1});
  c.set_key_order(1, {3});
  c.set_key_order(2, {1});
  c.set_key_order(3, {2});
  std::string why;
  EXPECT_FALSE(c.check(&why));
}

// --- Recorder ---------------------------------------------------------------------

TEST(Recorder, RecordsOnlyInsideWindow) {
  Recorder r;
  r.set_window(sim::sec(1), sim::sec(2));
  r.record("local", Outcome::kCommit, 1000, sim::msec(500));   // before
  r.record("local", Outcome::kCommit, 1000, sim::msec(1500));  // inside
  r.record("local", Outcome::kCommit, 1000, sim::msec(2500));  // after
  EXPECT_EQ(r.of("local").committed, 1u);
}

TEST(Recorder, SeparatesOutcomes) {
  Recorder r;
  r.set_window(0, sim::sec(10));
  r.record("x", Outcome::kCommit, 5000, sim::sec(1));
  r.record("x", Outcome::kAbort, 5000, sim::sec(1));
  r.record("x", Outcome::kUnknown, 5000, sim::sec(1));
  EXPECT_EQ(r.of("x").committed, 1u);
  EXPECT_EQ(r.of("x").aborted, 1u);
  EXPECT_EQ(r.of("x").unknown, 1u);
  EXPECT_EQ(r.of("x").latency.count(), 1u) << "only commits contribute latency samples";
}

TEST(Recorder, ThroughputPerClassAndTotal) {
  Recorder r;
  r.set_window(0, sim::sec(10));
  for (int i = 0; i < 50; ++i) r.record("a", Outcome::kCommit, 100, sim::sec(5));
  for (int i = 0; i < 30; ++i) r.record("b", Outcome::kCommit, 100, sim::sec(5));
  EXPECT_DOUBLE_EQ(r.throughput("a"), 5.0);
  EXPECT_DOUBLE_EQ(r.throughput("b"), 3.0);
  EXPECT_DOUBLE_EQ(r.throughput(), 8.0);
  EXPECT_EQ(r.total_committed(), 80u);
}

// --- Social codecs ------------------------------------------------------------------

TEST(SocialCodec, IdListRoundTrip) {
  const std::vector<std::uint64_t> ids = {1, 42, 1ULL << 40};
  EXPECT_EQ(decode_id_list(encode_id_list(ids)), ids);
  EXPECT_TRUE(decode_id_list(encode_id_list({})).empty());
  EXPECT_TRUE(decode_id_list("").empty());
}

TEST(SocialCodec, PostListRoundTrip) {
  const std::vector<std::string> posts = {"hello", "", std::string(500, 'x')};
  EXPECT_EQ(decode_post_list(encode_post_list(posts)), posts);
  EXPECT_TRUE(decode_post_list("").empty());
}

TEST(SocialCodec, KeyLayout) {
  EXPECT_EQ(social_key(5, kConsumers), 20u);
  EXPECT_EQ(social_key(5, kProducers), 21u);
  EXPECT_EQ(social_key(5, kPosts), 22u);
  UserPartitioning p(4);
  for (std::uint64_t u = 0; u < 100; ++u) {
    EXPECT_EQ(p.partition_of(social_key(u, kConsumers)), u % 4);
    EXPECT_EQ(p.partition_of(social_key(u, kPosts)), u % 4)
        << "all of a user's records share a partition";
  }
}

// --- Microbenchmark value tagging -----------------------------------------------------

TEST(MicroValues, WriterTagRoundTrip) {
  const TxId id = 0x1234'5678'9ABC'DEF0ULL;
  const std::string v = MicroWorkload::encode_value(id, 4);
  EXPECT_GE(v.size(), sizeof(TxId)) << "value grows to hold the tag";
  EXPECT_EQ(MicroWorkload::decode_writer(v), id);
  EXPECT_EQ(MicroWorkload::decode_writer("xy"), 0u) << "short values decode as initial";
}

}  // namespace
}  // namespace sdur::workload
