// Deployment builder tests: server placement, leader location, routing
// tables and delay estimates for the paper's LAN / WAN 1 / WAN 2 setups.
#include <gtest/gtest.h>

#include "sdur/deployment.h"

namespace sdur {
namespace {

DeploymentSpec spec_for(DeploymentSpec::Kind kind, PartitionId partitions = 2) {
  DeploymentSpec spec;
  spec.kind = kind;
  spec.partitions = partitions;
  spec.partitioning = std::make_shared<RangePartitioning>(partitions, 1000);
  return spec;
}

std::uint16_t region_of(Deployment& dep, Server& s) {
  return dep.network().topology().location(s.self()).region;
}

TEST(Deployment, LanPutsEveryoneInOneRegion) {
  Deployment dep(spec_for(DeploymentSpec::Kind::kLan));
  for (Server* s : dep.servers()) EXPECT_EQ(region_of(dep, *s), 0);
}

TEST(Deployment, Wan1MajorityInHomeRegion) {
  Deployment dep(spec_for(DeploymentSpec::Kind::kWan1));
  // Partition 0: home EU; replicas 0,1 in EU (distinct DCs), replica 2 away.
  EXPECT_EQ(dep.home_region(0), sim::kEU);
  EXPECT_EQ(dep.home_region(1), sim::kUSEast);
  EXPECT_EQ(region_of(dep, dep.server(0, 0)), sim::kEU);
  EXPECT_EQ(region_of(dep, dep.server(0, 1)), sim::kEU);
  EXPECT_EQ(region_of(dep, dep.server(0, 2)), sim::kUSEast)
      << "the minority replica serves reads near the other region";
  // Partition 1 mirrors it.
  EXPECT_EQ(region_of(dep, dep.server(1, 0)), sim::kUSEast);
  EXPECT_EQ(region_of(dep, dep.server(1, 1)), sim::kUSEast);
  EXPECT_EQ(region_of(dep, dep.server(1, 2)), sim::kEU);

  // Distinct availability zones within the home region (paper Section VI-A).
  const auto l0 = dep.network().topology().location(dep.server(0, 0).self());
  const auto l1 = dep.network().topology().location(dep.server(0, 1).self());
  EXPECT_NE(l0.datacenter, l1.datacenter);
}

TEST(Deployment, Wan2OneReplicaPerRegion) {
  Deployment dep(spec_for(DeploymentSpec::Kind::kWan2));
  for (PartitionId p = 0; p < 2; ++p) {
    std::set<std::uint16_t> regions;
    for (std::uint32_t r = 0; r < 3; ++r) regions.insert(region_of(dep, dep.server(p, r)));
    EXPECT_EQ(regions.size(), 3u) << "partition " << p << " must span all regions";
    EXPECT_EQ(region_of(dep, dep.server(p, 0)), dep.home_region(p))
        << "the bootstrap leader sits in the partition's home region";
  }
}

TEST(Deployment, BootstrapLeaderIsReplicaZero) {
  Deployment dep(spec_for(DeploymentSpec::Kind::kWan1));
  dep.start();
  dep.run_until(sim::msec(1000));
  for (PartitionId p = 0; p < 2; ++p) {
    EXPECT_TRUE(dep.server(p, 0).engine().is_leader()) << "partition " << p;
  }
}

TEST(Deployment, ReadsRouteToNearestReplica) {
  Deployment dep(spec_for(DeploymentSpec::Kind::kWan1));
  // An EU server of partition 0 routing a read for partition 1 must pick
  // partition 1's EU replica (index 2), not the US-EAST leader.
  const Server& eu_server = dep.server(0, 0);
  const sim::ProcessId target = eu_server.config().read_route.at(1);
  EXPECT_EQ(target, dep.server(1, 2).self());
}

TEST(Deployment, DelayEstimatesMatchRegionDistances) {
  Deployment dep(spec_for(DeploymentSpec::Kind::kWan1));
  const auto& est = dep.server(0, 0).config().partition_delay_estimate;
  ASSERT_EQ(est.size(), 2u);
  EXPECT_EQ(est[0], 0) << "own partition";
  EXPECT_EQ(est[1], sim::msec(45)) << "EU -> US-EAST one-way";
}

TEST(Deployment, ClientHomingUsesHomeRegionAndLeader) {
  Deployment dep(spec_for(DeploymentSpec::Kind::kWan1));
  dep.start();
  Client& c0 = dep.add_client(0);
  Client& c1 = dep.add_client(1);
  EXPECT_EQ(dep.network().topology().location(c0.self()).region, sim::kEU);
  EXPECT_EQ(dep.network().topology().location(c1.self()).region, sim::kUSEast);
}

TEST(Deployment, RejectsMismatchedPartitioning) {
  DeploymentSpec spec = spec_for(DeploymentSpec::Kind::kLan, 2);
  spec.partitioning = std::make_shared<RangePartitioning>(4, 1000);  // wrong count
  EXPECT_THROW(Deployment dep(std::move(spec)), std::invalid_argument);
}

TEST(Deployment, RequiresPartitioning) {
  DeploymentSpec spec;
  spec.partitions = 2;
  EXPECT_THROW(Deployment dep(std::move(spec)), std::invalid_argument);
}

TEST(Deployment, ManyPartitionsGetDistinctGroups) {
  Deployment dep(spec_for(DeploymentSpec::Kind::kLan, 8));
  std::set<sim::ProcessId> pids;
  for (Server* s : dep.servers()) pids.insert(s->self());
  EXPECT_EQ(pids.size(), 24u);
  EXPECT_EQ(dep.partition_count(), 8u);
}

// Whole-run determinism: two deployments driven by identical seeds produce
// bit-identical end states — the foundation for reproducible experiments.
TEST(Deployment, IdenticalSeedsGiveIdenticalRuns) {
  auto run_once = [] {
    DeploymentSpec spec = spec_for(DeploymentSpec::Kind::kWan1);
    spec.seed = 99;
    Deployment dep(spec);
    for (Key k = 0; k < 100; ++k) dep.load(k, "x");
    for (Key k = 1000; k < 1100; ++k) dep.load(k, "x");
    dep.start();
    Client& c = dep.add_client(0);
    util::Rng rng(5);
    dep.run_until(sim::msec(400));
    for (int i = 0; i < 30; ++i) {
      const Key k1 = rng.below(100);
      const Key k2 = 1000 + rng.below(100);
      c.begin();
      c.read_many({k1, k2}, [&c, k1, k2, i](auto) {
        c.write(k1, "t" + std::to_string(i));
        c.write(k2, "t" + std::to_string(i));
        c.commit([](Outcome) {});
      });
      dep.run_until(dep.simulator().now() + sim::msec(400));
    }
    dep.run_until(dep.simulator().now() + sim::sec(2));
    // Fingerprint: versions and values of every key on every replica plus
    // final virtual time and event count.
    std::string fp = std::to_string(dep.simulator().events_processed());
    for (Server* s : dep.servers()) {
      fp += "|" + std::to_string(s->sc());
      for (Key k : {Key{1}, Key{50}, Key{1001}, Key{1050}}) {
        auto v = s->store().get_latest(k);
        if (v) fp += "," + std::to_string(v->version) + ":" + v->value;
      }
    }
    return fp;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace sdur
