// Snapshot gossip and deferred-read tests: the machinery behind global
// read-only transactions (paper Section III-A).
#include <gtest/gtest.h>

#include "sdur/deployment.h"

namespace sdur {
namespace {

struct Fixture {
  std::unique_ptr<Deployment> dep;
  Client* client = nullptr;

  Fixture() {
    DeploymentSpec spec;
    spec.partitions = 2;
    spec.partitioning = std::make_shared<RangePartitioning>(2, 1000);
    spec.log_write_latency = sim::usec(200);
    spec.server.gossip_interval = sim::msec(5);
    dep = std::make_unique<Deployment>(spec);
    for (Key k = 0; k < 20; ++k) dep->load(k, "a");
    for (Key k = 1000; k < 1020; ++k) dep->load(k, "b");
    dep->start();
    client = &dep->add_client(0);
    dep->run_until(sim::msec(300));
  }

  void run_for(sim::Time t) { dep->run_until(dep->simulator().now() + t); }

  Outcome update(std::vector<Key> keys, const std::string& value) {
    Outcome result = Outcome::kUnknown;
    client->begin();
    client->read_many(keys, [&, keys](auto) {
      for (Key k : keys) client->write(k, value);
      client->commit([&](Outcome o) { result = o; });
    });
    run_for(sim::sec(5));
    return result;
  }
};

TEST(Gossip, SnapshotVectorReflectsRemoteCommits) {
  Fixture f;
  // Commit twice in partition 1 only.
  ASSERT_EQ(f.update({1000}, "x"), Outcome::kCommit);
  ASSERT_EQ(f.update({1001}, "x"), Outcome::kCommit);
  f.run_for(sim::msec(200));  // >> gossip interval

  struct Probe : sim::Process {
    using sim::Process::Process;
    std::vector<Version> snapshot;
    void on_message(const sim::Message& m, sim::ProcessId) override {
      if (m.type == msgtype::kSnapshotResp) {
        util::Reader r(m.payload);
        snapshot = SnapshotRespMsg::decode(r).snapshot;
      }
    }
  } probe(f.dep->network(), 30'000, "probe", sim::Location{0, 0});

  // Ask a partition-0 server for a global snapshot: its view of partition 1
  // must have advanced through gossip.
  probe.send(f.dep->server(0, 0).self(), SnapshotReqMsg{1}.to_message());
  f.run_for(sim::sec(1));
  ASSERT_EQ(probe.snapshot.size(), 2u);
  EXPECT_EQ(probe.snapshot[0], f.dep->server(0, 0).sc());
  EXPECT_EQ(probe.snapshot[1], 2) << "two commits gossiped from partition 1";
}

TEST(Gossip, ReadAtFutureSnapshotIsDeferredThenServed) {
  Fixture f;
  // Ask replica (0,1) for a read at a snapshot it has not reached yet.
  Server& replica = f.dep->server(0, 1);
  const Version future = replica.sc() + 1;

  struct Probe : sim::Process {
    using sim::Process::Process;
    bool got = false;
    std::string value;
    void on_message(const sim::Message& m, sim::ProcessId) override {
      if (m.type == msgtype::kReadResp) {
        util::Reader r(m.payload);
        const auto resp = ReadRespMsg::decode(r);
        got = true;
        value = resp.value;
      }
    }
  } probe(f.dep->network(), 30'001, "probe", sim::Location{0, 0});

  probe.send(replica.self(), ReadReqMsg{1, 5, future}.to_message());
  f.run_for(sim::msec(500));
  EXPECT_FALSE(probe.got) << "read must wait for the snapshot to become stable";
  EXPECT_GT(replica.stats().reads_deferred, 0u);

  ASSERT_EQ(f.update({5}, "future-value"), Outcome::kCommit);
  f.run_for(sim::sec(1));
  ASSERT_TRUE(probe.got) << "commit advanced the snapshot; deferred read served";
  EXPECT_EQ(probe.value, "future-value");
}

TEST(Gossip, ReadOnlyAcrossPartitionsObservesGlobalCommitAtomically) {
  Fixture f;
  // Interleave: commit a global transaction, then immediately run a
  // read-only transaction from the snapshot vector; it must see either
  // both writes or neither (here: both, since gossip runs every 5ms and we
  // wait for it).
  ASSERT_EQ(f.update({1, 1001}, "atomic"), Outcome::kCommit);
  f.run_for(sim::msec(100));

  std::string a = "?", b = "?";
  f.client->begin_read_only([&] {
    f.client->read_many({1, 1001}, [&](auto values) {
      a = values[0].value_or("");
      b = values[1].value_or("");
    });
  });
  f.run_for(sim::sec(1));
  EXPECT_EQ(a, "atomic");
  EXPECT_EQ(b, "atomic");
}

}  // namespace
}  // namespace sdur
