// Equivalence and determinism pins for the zero-copy message fabric.
//
// The fabric overhaul (refcounted payload sharing, slab-allocated event
// callables, flattened network tables, pair-wise partition()) must be
// invisible to the simulation: every run is bit-identical to what a
// deep-copying fabric produces. Three pins enforce that:
//
//  1. Golden-digest equivalence: a torture-style chaos run (loss, follower
//     crash/recover, checkpoints, reordering) executed with payload buffer
//     sharing ON and OFF must yield byte-identical replica state, identical
//     NetworkStats and the same event count. Sharing only changes host-side
//     fabric counters, never simulated results.
//  2. RNG-stream regression: a fixed-seed loss+jitter scenario digests every
//     delivery (time, byte) and the network stats against an embedded golden
//     constant. Any change to which dice are rolled per send — e.g. rolling
//     the loss die for a blocked link, or drawing jitter for a dropped
//     message — shifts every later delay and breaks the digest.
//  3. partition() semantics: the pair-wise rewrite must block exactly the
//     cross-group pairs, in both directions, and nothing else.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/fabric_stats.h"
#include "sim/message.h"
#include "sim/process.h"
#include "sim/simulator.h"
#include "util/hash.h"
#include "workload/driver.h"
#include "workload/microbench.h"

namespace {

std::uint64_t digest_writer(const sdur::util::Writer& w) {
  const sdur::util::Bytes& b = w.data();
  return sdur::util::fnv1a(
      std::string_view(reinterpret_cast<const char*>(b.data()), b.size()));
}

}  // namespace

namespace sdur::sim {
namespace {

/// Restores the process-wide payload sharing knob on scope exit, so a
/// failing test cannot leak sharing=off into later tests.
class SharingGuard {
 public:
  explicit SharingGuard(bool on) : prev_(Payload::buffer_sharing()) {
    Payload::set_buffer_sharing(on);
  }
  ~SharingGuard() { Payload::set_buffer_sharing(prev_); }
  SharingGuard(const SharingGuard&) = delete;
  SharingGuard& operator=(const SharingGuard&) = delete;

 private:
  bool prev_;
};

class RecSink : public Process {
 public:
  RecSink(Network& net, ProcessId id, Location loc) : Process(net, id, "sink", loc) {}

  std::vector<std::pair<Time, std::uint8_t>> received;

 protected:
  void on_message(const Message& m, ProcessId) override {
    received.emplace_back(now(), m.payload.empty() ? 0 : m.payload[0]);
  }
};

Message byte_msg(std::uint8_t b) {
  util::Writer w;
  w.u8(b);
  return {50, std::move(w)};
}

TEST(FabricEquiv, PartitionBlocksExactlyCrossGroupPairs) {
  Simulator sim;
  Topology topo = Topology::lan();
  topo.set_jitter(0);
  Network net(sim, topo, 1);
  std::vector<std::unique_ptr<RecSink>> sinks;
  for (ProcessId pid = 1; pid <= 5; ++pid) {
    sinks.push_back(std::make_unique<RecSink>(net, pid, Location{0, 0}));
  }
  auto sink = [&](ProcessId pid) -> RecSink& { return *sinks[pid - 1]; };

  // {2,4} vs {1,3,5}: exactly the 2*3 cross pairs are cut, both directions.
  net.partition({2, 4});
  for (ProcessId from = 1; from <= 5; ++from) {
    for (ProcessId to = 1; to <= 5; ++to) {
      if (from != to) net.send(from, to, byte_msg(static_cast<std::uint8_t>(from)));
    }
  }
  sim.run();

  auto senders_seen = [&](ProcessId pid) {
    std::vector<std::uint8_t> from;
    for (const auto& [t, b] : sink(pid).received) from.push_back(b);
    std::sort(from.begin(), from.end());
    return from;
  };
  EXPECT_EQ(senders_seen(1), (std::vector<std::uint8_t>{3, 5}));
  EXPECT_EQ(senders_seen(2), (std::vector<std::uint8_t>{4}));
  EXPECT_EQ(senders_seen(3), (std::vector<std::uint8_t>{1, 5}));
  EXPECT_EQ(senders_seen(4), (std::vector<std::uint8_t>{2}));
  EXPECT_EQ(senders_seen(5), (std::vector<std::uint8_t>{1, 3}));
  EXPECT_EQ(net.stats().messages_dropped, 12u) << "2*3 cross pairs, both directions";

  net.heal_all();
  net.send(1, 2, byte_msg(9));
  sim.run();
  ASSERT_EQ(sink(2).received.size(), 2u);
  EXPECT_EQ(sink(2).received.back().second, 9);
}

/// Pins the per-send RNG discipline. The loss die is rolled only when loss
/// is enabled and only for messages not already dropped by isolation or a
/// blocked link; jitter is drawn only for surviving messages. Any change to
/// that order or count shifts every subsequent delay in the run and changes
/// this digest. If this test fails after an intentional fabric change, the
/// determinism contract broke — do not just re-golden the constant.
TEST(FabricEquiv, LossJitterRngStreamMatchesGolden) {
  Simulator sim;
  Topology topo = Topology::ec2_three_regions();
  topo.set_jitter(0.1);
  Network net(sim, topo, 99);
  RecSink a(net, 1, {kEU, 0});
  RecSink b(net, 2, {kUSEast, 0});
  RecSink c(net, 3, {kUSWest, 0});
  net.set_loss_rate(0.05);

  auto burst = [&](int n, std::uint8_t tag) {
    for (int i = 0; i < n; ++i) {
      const ProcessId from = static_cast<ProcessId>(1 + i % 3);
      const ProcessId to = static_cast<ProcessId>(1 + (i + 1) % 3);
      net.send(from, to, byte_msg(static_cast<std::uint8_t>(tag + i % 16)));
    }
  };

  // Phase 1: plain loss + jitter.
  burst(150, 0);
  sim.run();
  // Phase 2: a blocked link and an isolated process. Drops on those paths
  // must consume no dice (short-circuit before the loss roll).
  net.block_link(1, 2);
  net.isolate(3);
  burst(150, 64);
  sim.run();
  // Phase 3: healed again; the stream continues where phase 1 left it.
  net.unblock_link(1, 2);
  net.heal(3);
  burst(100, 128);
  sim.run();

  util::Writer w;
  for (const RecSink* s : {&a, &b, &c}) {
    w.varint(s->received.size());
    for (const auto& [t, byte] : s->received) {
      w.i64(t);
      w.u8(byte);
    }
  }
  w.u64(net.stats().messages_sent);
  w.u64(net.stats().messages_delivered);
  w.u64(net.stats().messages_dropped);
  w.u64(net.stats().bytes_sent);
  w.u64(sim.events_processed());
  w.i64(sim.now());

  const std::uint64_t digest = digest_writer(w);
  constexpr std::uint64_t kGolden = 0x202415a40579d692ULL;
  EXPECT_EQ(digest, kGolden) << "RNG stream digest changed: 0x" << std::hex << digest;
}

}  // namespace
}  // namespace sdur::sim

namespace sdur::workload {
namespace {

struct ChaosResult {
  std::uint64_t state_digest = 0;   // replica state: sc/certified/dc + store
  sim::NetworkStats net;            // full per-type message accounting
  std::uint64_t events = 0;         // simulator events processed
  sim::Time end_time = 0;
  std::uint64_t committed = 0;
  std::uint64_t deep_copies = 0;    // host-side fabric counters for this run
  std::uint64_t shares = 0;
};

/// A compressed torture run: 2 partitions, 3% loss, follower crash/recover
/// churn, frequent checkpoints, reordering on. Returns a digest of all
/// deterministic replica state plus the network/event accounting.
ChaosResult run_chaos(bool sharing) {
  sim::SharingGuard guard(sharing);
  sim::fabric_counters().reset();

  DeploymentSpec spec;
  spec.partitions = 2;
  spec.partitioning = MicroWorkload::make_partitioning(2, 60);
  spec.log_write_latency = sim::usec(300);
  spec.server.reorder_threshold = 48;
  spec.server.checkpoint_interval = sim::msec(600);
  spec.server.missing_vote_timeout = sim::msec(1500);
  spec.seed = 31;
  spec.client.read_retry_interval = sim::msec(300);
  spec.client.commit_retry_interval = sim::msec(800);
  Deployment dep(spec);
  dep.network().set_loss_rate(0.03);

  RunConfig cfg;
  cfg.clients = 8;
  cfg.seed = 31;
  cfg.warmup = sim::msec(400);
  cfg.measure = sim::sec(2);
  const sim::Time stop_at = cfg.settle + cfg.warmup + cfg.measure;

  MicroConfig mc;
  mc.items_per_partition = 60;
  mc.global_fraction = 0.3;
  mc.keep_running = [&dep, stop_at] { return dep.simulator().now() < stop_at; };
  MicroWorkload wl(mc);

  // Rolling follower crash/recover (never replica 0: contacts stay up).
  util::Rng chaos(7);
  for (sim::Time t = sim::sec(1); t < stop_at; t += sim::msec(700)) {
    const PartitionId p = static_cast<PartitionId>(chaos.below(2));
    const std::uint32_t replica = 1 + static_cast<std::uint32_t>(chaos.below(2));
    dep.simulator().schedule_at(t, [&dep, p, replica] { dep.server(p, replica).crash(); });
    dep.simulator().schedule_at(t + sim::msec(450),
                                [&dep, p, replica] { dep.server(p, replica).recover(); });
  }

  const RunResult r = run_experiment(dep, wl, cfg);

  // Quiesce so the digest is taken at a protocol-stable point. (Equality
  // would hold at any fixed time; stability just makes failures readable.)
  dep.network().set_loss_rate(0);
  for (Server* s : dep.servers()) s->recover();  // no-op if alive
  dep.run_until(dep.simulator().now() + sim::sec(10));

  ChaosResult out;
  util::Writer w;
  for (PartitionId p = 0; p < dep.partition_count(); ++p) {
    for (std::uint32_t rep = 0; rep < dep.replica_count(); ++rep) {
      Server& s = dep.server(p, rep);
      w.i64(s.sc());
      w.i64(s.certified());
      w.u64(s.dc());
      s.store().encode(w);  // sorts keys: deterministic bytes
    }
  }
  out.state_digest = digest_writer(w);
  out.net = dep.network().stats();
  out.events = dep.simulator().events_processed();
  out.end_time = dep.simulator().now();
  for (const auto& [cls, st] : r.classes) out.committed += st.committed;
  out.deep_copies = sim::fabric_counters().payload_deep_copies;
  out.shares = sim::fabric_counters().payload_shares;
  return out;
}

TEST(FabricEquiv, BufferSharingDoesNotChangeSimulation) {
  const ChaosResult shared = run_chaos(true);
  const ChaosResult copied = run_chaos(false);
  const ChaosResult again = run_chaos(true);

  ASSERT_GT(shared.committed, 20u) << "the chaos run made real progress";

  // Sharing ON vs OFF: byte-identical replica state and identical message
  // accounting — the zero-copy fabric is observationally equivalent to a
  // deep-copying one.
  EXPECT_EQ(shared.state_digest, copied.state_digest);
  EXPECT_TRUE(shared.net == copied.net) << "NetworkStats diverged";
  EXPECT_EQ(shared.events, copied.events);
  EXPECT_EQ(shared.end_time, copied.end_time);
  EXPECT_EQ(shared.committed, copied.committed);

  // Same seed, same mode: bit-identical rerun.
  EXPECT_EQ(shared.state_digest, again.state_digest);
  EXPECT_TRUE(shared.net == again.net);
  EXPECT_EQ(shared.events, again.events);

#if SDUR_FABRIC_COUNTERS
  // The acceptance criterion for the zero-copy fabric: with sharing on, no
  // payload is ever deep-copied — broadcast/vote fan-out and delivery
  // capture all share one buffer.
  EXPECT_EQ(shared.deep_copies, 0u);
  EXPECT_GT(shared.shares, 0u);
  EXPECT_GT(copied.deep_copies, 0u) << "sharing=off must actually deep-copy";
#endif
}

}  // namespace
}  // namespace sdur::workload
