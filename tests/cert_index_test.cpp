// Indexed certification: equivalence of the per-key index with the legacy
// window scan, across every mode the engine supports.
//
//  * CertIndex units: last-writer/last-reader tracking, eviction erasing
//    exactly the entries whose newest owner left the window.
//  * Randomized property: over chaotic histories of commit records (exact,
//    bloom and mixed-mode windows, eviction pressure), every probe's
//    indexed verdict equals the scan verdict bit for bit — via the public
//    CommitWindow conflicts_scan()/conflicts_indexed() split.
//  * Certifier chaos: a continuously-running certifier and one that is
//    round-tripped through encode()/install() (index rebuilt from the
//    checkpoint) stay verdict-identical; the in-place audit cross-check
//    ("index-scan-equivalence") watches every single verdict.
//  * P-DUR lanes: the per-lane sub-indexes at 1/4/8 cores reproduce the
//    serial full-set reference, with eviction and clear()+reinsert
//    (checkpoint-install rebuild) in the loop.
//  * Golden digest: an end-to-end simulated run (serial+bloom and P-DUR
//    multi-core) digests replica state against pinned constants — the
//    indexed engine must not change any simulated result.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

#include "audit/auditor.h"
#include "pdur/parallel_window.h"
#include "sdur/certifier.h"
#include "storage/cert_index.h"
#include "storage/commit_window.h"
#include "util/hash.h"
#include "workload/driver.h"
#include "workload/microbench.h"

namespace sdur::storage {
namespace {

util::KeySet exact(std::vector<std::uint64_t> ks) { return util::KeySet::exact(std::move(ks)); }

TEST(CertIndex, TracksLastWriterAndReader) {
  CertIndex idx;
  idx.insert(1, exact({1, 2}), exact({2}));
  idx.insert(2, exact({3}), exact({1}));

  // Key 2 written at 1: conflicts with snapshots older than 1 only.
  EXPECT_TRUE(idx.reads_conflict(exact({2}), 0));
  EXPECT_FALSE(idx.reads_conflict(exact({2}), 1));
  // Key 1 written at 2 (the read of key 1 at version 1 is tracked apart).
  EXPECT_TRUE(idx.reads_conflict(exact({1}), 1));
  EXPECT_FALSE(idx.reads_conflict(exact({9}), 0));
  // Reader side: key 3 read at version 2, key 1 read at version 1.
  EXPECT_TRUE(idx.writes_conflict(exact({3}), 1));
  EXPECT_TRUE(idx.writes_conflict(exact({1}), 0));
  EXPECT_FALSE(idx.writes_conflict(exact({1}), 1));
}

TEST(CertIndex, EvictionErasesOnlyNewestOwner) {
  CertIndex idx;
  idx.insert(1, exact({}), exact({7}));
  idx.insert(2, exact({}), exact({7}));
  // Version 1 leaves the window, but version 2 still writes key 7.
  idx.evict(1, exact({}), exact({7}));
  EXPECT_TRUE(idx.reads_conflict(exact({7}), 1));
  idx.evict(2, exact({}), exact({7}));
  EXPECT_FALSE(idx.reads_conflict(exact({7}), 0));
  EXPECT_EQ(idx.key_count(), 0u);
}

TEST(CertIndex, BloomRecordsLandInTheSuffixLists) {
  CertIndex idx;
  idx.insert(1, util::KeySet::bloom({1, 2}), exact({3}));
  idx.insert(2, exact({4}), exact({5}));
  ASSERT_EQ(idx.bloom_read_versions().size(), 1u);
  EXPECT_EQ(idx.bloom_read_versions().front(), 1);
  EXPECT_TRUE(idx.bloom_write_versions().empty());
  idx.evict(1, util::KeySet::bloom({1, 2}), exact({3}));
  EXPECT_TRUE(idx.bloom_read_versions().empty());
}

enum class Mode { kExact, kBloom, kMixed };

util::KeySet make_set(std::mt19937_64& rng, Mode mode, std::uint64_t key_space,
                      std::size_t max_size, bool force_exact = false) {
  std::uniform_int_distribution<std::size_t> size_dist(0, max_size);
  std::uniform_int_distribution<std::uint64_t> key_dist(0, key_space - 1);
  std::vector<std::uint64_t> ks(size_dist(rng));
  for (auto& k : ks) k = key_dist(rng);
  const bool bloom = !force_exact && (mode == Mode::kBloom ||
                                      (mode == Mode::kMixed && (rng() & 1) != 0));
  // Match the server: bloom sets are only ever built for non-empty keysets
  // worth encoding; tiny fp rate keeps the property non-vacuous.
  if (bloom && !ks.empty()) return util::KeySet::bloom(ks, 0.01);
  return util::KeySet::exact(std::move(ks));
}

class CommitWindowProperty : public ::testing::TestWithParam<Mode> {};

TEST_P(CommitWindowProperty, IndexedVerdictEqualsScanVerdict) {
  const Mode mode = GetParam();
  audit::Auditor::instance().reset();
  std::mt19937_64 rng(0xC0FFEE ^ static_cast<std::uint64_t>(mode));

  constexpr std::uint64_t kKeySpace = 96;  // small: plenty of collisions
  CommitWindow w(48);                      // eviction pressure after 48 pushes
  Version next = 1;
  for (int round = 0; round < 600; ++round) {
    // Push a record (readsets may be bloom; writesets stay exact, as in the
    // protocol — but exercise bloom writesets too in mixed mode).
    CommitRecord rec;
    rec.txid = static_cast<std::uint64_t>(round);
    rec.readset = make_set(rng, mode, kKeySpace, 6);
    rec.writeset = make_set(rng, mode == Mode::kMixed ? Mode::kMixed : Mode::kExact,
                            kKeySpace, 6);
    w.push(next++, std::move(rec));

    // Probe with snapshots across the whole covered range, including the
    // exact window base and the empty suffix at newest.
    for (int probe = 0; probe < 6; ++probe) {
      const util::KeySet rs = make_set(rng, mode, kKeySpace, 6);
      const util::KeySet ws = make_set(rng, Mode::kExact, kKeySpace, 6);
      const bool global = (rng() & 1) != 0;
      std::uniform_int_distribution<Version> st_dist(w.oldest() - 1, w.newest());
      const Version st = st_dist(rng);
      ASSERT_TRUE(w.covers(st));
      const bool scan = w.conflicts_scan(rs, ws, global, st);
      const bool indexed = w.conflicts_indexed(rs, ws, global, st);
      ASSERT_EQ(scan, indexed)
          << "mode=" << static_cast<int>(mode) << " round=" << round << " st=" << st
          << " global=" << global << " window=[" << w.oldest() << "," << w.newest() << "]";
      ASSERT_EQ(w.conflicts(rs, ws, global, st), scan);
    }
  }
  EXPECT_TRUE(audit::Auditor::instance().clean()) << audit::Auditor::instance().summary();
}

INSTANTIATE_TEST_SUITE_P(Modes, CommitWindowProperty,
                         ::testing::Values(Mode::kExact, Mode::kBloom, Mode::kMixed),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case Mode::kExact: return "exact";
                             case Mode::kBloom: return "bloom";
                             default: return "mixed";
                           }
                         });

}  // namespace
}  // namespace sdur::storage

namespace sdur {
namespace {

PartTx random_tx(std::mt19937_64& rng, TxId id, storage::Mode mode, std::uint64_t key_space,
                 Version snapshot) {
  PartTx t;
  t.kind = PartTx::Kind::kTxn;
  t.id = id;
  t.involved = (rng() & 1) != 0 ? std::vector<PartitionId>{0, 1} : std::vector<PartitionId>{0};
  t.snapshot = snapshot;
  t.readset = storage::make_set(rng, mode, key_space, 5);
  t.write_keys = storage::make_set(rng, mode, key_space, 5, /*force_exact=*/true);
  return t;
}

/// A continuously-running certifier and one round-tripped through
/// encode()/install() after every burst must issue identical verdicts for
/// identical deliveries — the install path rebuilds the key index from the
/// checkpointed slots. The in-place "index-scan-equivalence" audit check
/// watches every verdict of both.
TEST(CertifierIndex, InstallRebuildKeepsVerdicts) {
  audit::Auditor::instance().reset();
  for (const storage::Mode mode :
       {storage::Mode::kExact, storage::Mode::kBloom, storage::Mode::kMixed}) {
    std::mt19937_64 rng(0xBEEF ^ static_cast<std::uint64_t>(mode));
    Certifier live(32);
    Certifier reinstalled(32);
    std::uint64_t dc = 0;
    for (int round = 0; round < 400; ++round) {
      ++dc;
      std::uniform_int_distribution<Version> st_dist(
          std::max<Version>(0, live.certified() - 40), live.certified());
      const PartTx t = random_tx(rng, dc, mode, 64, st_dist(rng));
      const auto a = live.process(t, dc, dc);
      const auto b = reinstalled.process(t, dc, dc);
      ASSERT_EQ(a.outcome, b.outcome) << "round " << round;
      ASSERT_EQ(a.version, b.version);
      ASSERT_EQ(a.stale_snapshot, b.stale_snapshot);
      // Resolve a random prefix so eviction happens on both sides.
      while (!live.empty() && (rng() & 3) == 0) {
        const bool committed = (rng() & 1) != 0;
        live.resolve(live.pop_head(), committed);
        reinstalled.resolve(reinstalled.pop_head(), committed);
      }
      if (round % 37 == 0) {
        util::Writer w;
        reinstalled.encode(w);
        util::Reader r(w.data());
        reinstalled.install(r);
      }
    }
  }
  EXPECT_TRUE(audit::Auditor::instance().clean()) << audit::Auditor::instance().summary();
}

}  // namespace
}  // namespace sdur

namespace sdur::pdur {
namespace {

/// Brute-force serial reference over the full (unprojected) record sets.
struct RefRecord {
  storage::Version version;
  util::KeySet rs;
  util::KeySet ws;
};

bool reference_conflict(const std::vector<RefRecord>& recs, const util::KeySet& rs,
                        const util::KeySet& ws, bool global, storage::Version st) {
  for (const RefRecord& r : recs) {
    if (r.version <= st) continue;
    if (rs.intersects(r.ws)) return true;
    if (global && ws.intersects(r.rs)) return true;
  }
  return false;
}

class ParallelWindowIndex : public ::testing::TestWithParam<CoreId> {};

TEST_P(ParallelWindowIndex, LaneSubIndexesMatchSerialReference) {
  const CoreId cores = GetParam();
  audit::Auditor::instance().reset();
  for (const storage::Mode mode :
       {storage::Mode::kExact, storage::Mode::kBloom, storage::Mode::kMixed}) {
    std::mt19937_64 rng(0xFEED ^ (static_cast<std::uint64_t>(mode) << 8) ^ cores);
    ParallelWindow w(cores);
    std::vector<RefRecord> recs;
    storage::Version base = 1;
    storage::Version next = 1;
    for (int round = 0; round < 300; ++round) {
      const util::KeySet rs = storage::make_set(rng, mode, 64, 5);
      const util::KeySet ws = storage::make_set(rng, mode, 64, 5, /*force_exact=*/true);
      const storage::Version v = next++;
      w.insert(v, rs, ws, w.partitioner().home_cores(rs, ws));
      recs.push_back(RefRecord{v, rs, ws});

      if (recs.size() > 40) {  // window eviction
        base = recs.front().version + 1;
        w.evict_below(base);
        recs.erase(recs.begin());
      }
      if (round % 97 == 0) {  // checkpoint-install rebuild: clear + reinsert
        w.clear();
        for (const RefRecord& r : recs) {
          w.insert(r.version, r.rs, r.ws, w.partitioner().home_cores(r.rs, r.ws));
        }
      }

      for (int probe = 0; probe < 4; ++probe) {
        const util::KeySet prs = storage::make_set(rng, mode, 64, 5);
        const util::KeySet pws = storage::make_set(rng, mode, 64, 5, /*force_exact=*/true);
        const bool global = (rng() & 1) != 0;
        std::uniform_int_distribution<storage::Version> st_dist(base - 1, next - 1);
        const storage::Version st = st_dist(rng);
        const auto home = w.partitioner().home_cores(prs, pws);
        ASSERT_EQ(w.conflicts(prs, pws, global, home, st),
                  reference_conflict(recs, prs, pws, global, st))
            << "cores=" << cores << " mode=" << static_cast<int>(mode) << " round=" << round
            << " st=" << st;
      }
    }
  }
  EXPECT_TRUE(audit::Auditor::instance().clean()) << audit::Auditor::instance().summary();
}

INSTANTIATE_TEST_SUITE_P(Cores, ParallelWindowIndex, ::testing::Values(1u, 4u, 8u),
                         [](const auto& param_info) { return "c" + std::to_string(param_info.param); });

}  // namespace
}  // namespace sdur::pdur

namespace sdur::workload {
namespace {

/// Digest of all deterministic replica state after a fixed-seed run: the
/// indexed certification engine must leave every simulated result
/// bit-identical to the scan engine it replaced. The pinned runs execute
/// with the audit layer cross-checking every single verdict against the
/// legacy scan in place (and assert the auditor stayed clean), so these
/// constants are — by construction — exactly what the scan engine
/// produces. A change here means a verdict moved somewhere.
std::uint64_t run_digest(bool bloom, std::uint32_t cores) {
  DeploymentSpec spec;
  spec.partitions = 2;
  spec.partitioning = MicroWorkload::make_partitioning(2, 80);
  spec.server.reorder_threshold = 24;
  spec.server.bloom_readsets = bloom;
  // High fp rate so bloom false positives actually fire at this scale —
  // the run must diverge from the exact run through the bloom fallback
  // paths, not coincide with it.
  if (bloom) spec.server.bloom_fp_rate = 0.02;
  spec.server.pdur.cores = cores;
  spec.seed = 47;
  Deployment dep(spec);

  RunConfig cfg;
  cfg.clients = 12;
  cfg.seed = 47;
  cfg.warmup = sim::msec(300);
  cfg.measure = sim::msec(1500);
  const sim::Time stop_at = cfg.settle + cfg.warmup + cfg.measure;

  MicroConfig mc;
  mc.items_per_partition = 80;
  mc.global_fraction = 0.25;
  mc.cores = cores;
  mc.keep_running = [&dep, stop_at] { return dep.simulator().now() < stop_at; };
  MicroWorkload wl(mc);
  run_experiment(dep, wl, cfg);

  util::Writer w;
  for (PartitionId p = 0; p < dep.partition_count(); ++p) {
    for (std::uint32_t rep = 0; rep < dep.replica_count(); ++rep) {
      Server& s = dep.server(p, rep);
      w.i64(s.sc());
      w.i64(s.certified());
      w.u64(s.dc());
      s.store().encode(w);  // sorts keys: deterministic bytes
    }
  }
  const util::Bytes& b = w.data();
  return util::fnv1a(std::string_view(reinterpret_cast<const char*>(b.data()), b.size()));
}

TEST(CertIndexGolden, EndToEndResultsUnchanged) {
  EXPECT_TRUE(audit::Auditor::instance().clean());
  const std::uint64_t exact_serial = run_digest(false, 1);
  const std::uint64_t bloom_serial = run_digest(true, 1);
  const std::uint64_t exact_pdur4 = run_digest(false, 4);
  EXPECT_EQ(exact_serial, 0x8e9dd518b52e50e8ULL)
      << "exact/serial digest changed: 0x" << std::hex << exact_serial;
  EXPECT_EQ(bloom_serial, 0x3c52ea20b7efd6c9ULL)
      << "bloom/serial digest changed: 0x" << std::hex << bloom_serial;
  EXPECT_EQ(exact_pdur4, 0xd049541a2625b7beULL)
      << "exact/pdur4 digest changed: 0x" << std::hex << exact_pdur4;
  EXPECT_TRUE(audit::Auditor::instance().clean()) << audit::Auditor::instance().summary();
}

}  // namespace
}  // namespace sdur::workload
