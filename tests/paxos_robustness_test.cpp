// Additional Paxos robustness tests: duplicated/reordered messages, stale
// proposers, forward buffering while leaderless, and ballot arithmetic.
#include <gtest/gtest.h>

#include "paxos/engine.h"
#include "sim/process.h"

namespace sdur::paxos {
namespace {

Value int_value(std::uint64_t v) {
  util::Writer w;
  w.u64(v);
  return std::move(w).take();
}

std::uint64_t int_of(const Value& v) {
  util::Reader r(v);
  return r.u64();
}

class Host : public sim::Process {
 public:
  Host(sim::Network& net, sim::ProcessId pid, sim::Location loc, GroupConfig cfg)
      : sim::Process(net, pid, "h" + std::to_string(pid), loc) {
    engine_ = std::make_unique<PaxosEngine>(*this, std::move(cfg),
                                            std::make_unique<InMemoryDurableLog>(),
                                            [this](const Value& v) { delivered.push_back(int_of(v)); });
  }
  PaxosEngine& engine() { return *engine_; }
  std::vector<std::uint64_t> delivered;

 protected:
  void on_message(const sim::Message& m, sim::ProcessId from) override {
    if (PaxosEngine::handles(m.type)) engine_->handle_message(m, from);
  }
  void on_recover() override {
    delivered.clear();
    engine_->on_recover();
  }

 private:
  std::unique_ptr<PaxosEngine> engine_;
};

struct Group {
  sim::Simulator sim;
  std::unique_ptr<sim::Network> net;
  std::vector<std::unique_ptr<Host>> hosts;

  Group() {
    sim::Topology topo = sim::Topology::lan();
    topo.set_jitter(0.05);
    net = std::make_unique<sim::Network>(sim, topo, 17);
    GroupConfig cfg;
    cfg.members = {1, 2, 3};
    cfg.log_write_latency = sim::usec(200);
    for (std::uint32_t i = 0; i < 3; ++i) {
      GroupConfig c = cfg;
      c.self_index = i;
      hosts.push_back(std::make_unique<Host>(*net, i + 1,
                                             sim::Location{0, static_cast<std::uint16_t>(i)},
                                             std::move(c)));
    }
    for (auto& h : hosts) h->engine().start();
    sim.run_until(sim::msec(200));
  }

  void run_for(sim::Time t) { sim.run_until(sim.now() + t); }
};

TEST(Ballot, OrderingAndComponents) {
  const Ballot a = Ballot::make(1, 0);
  const Ballot b = Ballot::make(1, 2);
  const Ballot c = Ballot::make(2, 0);
  EXPECT_LT(a, b) << "same round: proposer index breaks ties";
  EXPECT_LT(b, c) << "higher round dominates any index";
  EXPECT_EQ(c.round(), 2u);
  EXPECT_EQ(b.proposer_index(), 2u);
  EXPECT_FALSE(Ballot{}.valid());
  EXPECT_TRUE(a.valid());
}

TEST(PaxosRobustness, DuplicatedMessagesAreHarmless) {
  // Replay every Phase 2 message by sending each value twice through a
  // duplicating relay: delivery must stay exactly-once per instance.
  Group g;
  g.hosts[0]->engine().propose(int_value(1));
  g.run_for(sim::msec(100));

  // Manually re-inject a decided instance's Phase2B to everyone.
  const sim::Message dup = Phase2B{g.hosts[0]->engine().current_ballot(), 0, 1}.to_message();
  for (auto& h : g.hosts) g.net->send(1, h->self(), dup);
  g.run_for(sim::msec(100));
  for (auto& h : g.hosts) {
    EXPECT_EQ(h->delivered, (std::vector<std::uint64_t>{1}));
  }
}

TEST(PaxosRobustness, StaleProposerGetsNacked) {
  Group g;
  // Raise host 2's promise to a high ballot by injecting a Phase 1A.
  g.net->send(g.hosts[1]->self(), g.hosts[2]->self(),
              Phase1A{Ballot::make(50, 1), 0}.to_message());
  g.run_for(sim::msec(50));
  // A Phase2A at the old ballot must be rejected.
  const Ballot stale = Ballot::make(1, 0);
  g.net->send(g.hosts[0]->self(), g.hosts[2]->self(), Phase2A{stale, 99, int_value(7)}.to_message());
  g.run_for(sim::msec(100));
  EXPECT_TRUE(g.hosts[2]->delivered.empty());
  EXPECT_FALSE(g.hosts[2]->engine().log().load_accepted(99).has_value())
      << "stale-ballot accept must not be persisted";
}

TEST(PaxosRobustness, ValuesProposedWhileLeaderlessAreBuffered) {
  Group g;
  // Kill the leader, then immediately propose at a follower — before any
  // new leader exists. The value must survive the leaderless window.
  g.hosts[0]->crash();
  g.hosts[1]->engine().propose(int_value(42));
  g.run_for(sim::sec(5));  // election timeout + new leader + flush
  EXPECT_EQ(g.hosts[1]->delivered, (std::vector<std::uint64_t>{42}));
  EXPECT_EQ(g.hosts[2]->delivered, (std::vector<std::uint64_t>{42}));
}

TEST(PaxosRobustness, LeaderChangePreservesPrefix) {
  Group g;
  for (std::uint64_t v = 1; v <= 5; ++v) g.hosts[0]->engine().propose(int_value(v));
  g.run_for(sim::msec(300));
  const auto before = g.hosts[1]->delivered;
  ASSERT_EQ(before.size(), 5u);

  g.hosts[0]->crash();
  g.run_for(sim::sec(3));
  g.hosts[1]->engine().propose(int_value(6));
  g.run_for(sim::sec(3));

  ASSERT_GE(g.hosts[1]->delivered.size(), 6u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(g.hosts[1]->delivered[i], before[i]) << "prefix immutable across leader change";
  }
  EXPECT_EQ(g.hosts[1]->delivered.back(), 6u);
}

TEST(PaxosRobustness, CrashDuringPhase1DoesNotLoseDecidedValues) {
  Group g;
  for (std::uint64_t v = 1; v <= 3; ++v) g.hosts[0]->engine().propose(int_value(v));
  g.run_for(sim::msec(300));

  // Host 1 campaigns, then crashes mid-election; host 2 takes over later.
  g.hosts[0]->crash();
  g.run_for(sim::msec(700));  // host 1's election window opens
  g.hosts[1]->crash();
  g.run_for(sim::msec(200));
  g.hosts[1]->recover();
  g.run_for(sim::sec(10));

  // All decided values remain readable everywhere that is alive.
  for (int h : {1, 2}) {
    std::vector<std::uint64_t> sorted = g.hosts[h]->delivered;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    EXPECT_EQ(sorted, (std::vector<std::uint64_t>{1, 2, 3})) << "host " << h;
  }
}

TEST(PaxosRobustness, SelfContainedGroupOfFive) {
  // n=5 tolerates two crash failures.
  sim::Simulator sim;
  sim::Topology topo = sim::Topology::lan();
  sim::Network net(sim, topo, 5);
  GroupConfig cfg;
  cfg.members = {1, 2, 3, 4, 5};
  cfg.log_write_latency = sim::usec(200);
  std::vector<std::unique_ptr<Host>> hosts;
  for (std::uint32_t i = 0; i < 5; ++i) {
    GroupConfig c = cfg;
    c.self_index = i;
    hosts.push_back(std::make_unique<Host>(net, i + 1,
                                           sim::Location{0, static_cast<std::uint16_t>(i)},
                                           std::move(c)));
  }
  for (auto& h : hosts) h->engine().start();
  sim.run_until(sim::msec(200));

  hosts[3]->crash();
  hosts[4]->crash();
  for (std::uint64_t v = 1; v <= 10; ++v) hosts[0]->engine().propose(int_value(v));
  sim.run_until(sim::sec(2));
  EXPECT_EQ(hosts[0]->delivered.size(), 10u);
  EXPECT_EQ(hosts[1]->delivered.size(), 10u);
  EXPECT_EQ(hosts[2]->delivered.size(), 10u);
}

}  // namespace
}  // namespace sdur::paxos
