// Unit tests for the Certifier: the certification tests of Section III-B
// and the reordering conditions of Section IV-E (Algorithm 2, lines 46-64),
// exercised in isolation from messaging — plus the deterministic
// version-assignment refinement described in certifier.h / DESIGN.md.
#include <gtest/gtest.h>

#include "sdur/certifier.h"

namespace sdur {
namespace {

PartTx make_tx(TxId id, bool global, std::vector<Key> rs, std::vector<Key> ws,
               Version snapshot) {
  PartTx t;
  t.kind = PartTx::Kind::kTxn;
  t.id = id;
  t.involved = global ? std::vector<PartitionId>{0, 1} : std::vector<PartitionId>{0};
  t.snapshot = snapshot;
  t.readset = util::KeySet::exact(std::move(rs));
  std::vector<Key> wk = ws;
  t.write_keys = util::KeySet::exact(std::move(wk));
  for (Key k : ws) t.writes.push_back(WriteOp{k, "v"});
  return t;
}

class CertifierTest : public ::testing::Test {
 protected:
  Certifier cert{100};
  std::uint64_t dc = 0;

  /// Delivers t with reorder threshold R, returning the result.
  Certifier::Result deliver(const PartTx& t, std::uint32_t threshold = 0) {
    ++dc;
    return cert.process(t, dc + threshold, dc);
  }

  /// Completes everything from the head (for these unit tests, globals are
  /// assumed vote-complete) as committed.
  void complete_all() {
    while (!cert.empty()) {
      const PendingEntry e = cert.pop_head();
      cert.resolve(e, true);
    }
  }
};

TEST_F(CertifierTest, LocalCommitsOnFreshDatabase) {
  const auto r = deliver(make_tx(1, false, {1, 2}, {1, 2}, 0));
  EXPECT_EQ(r.outcome, Outcome::kCommit);
  EXPECT_EQ(r.position, 0u);
  EXPECT_EQ(r.version, 1);
  EXPECT_FALSE(r.reordered);
}

TEST_F(CertifierTest, LocalAbortsOnStaleRead) {
  // t1 commits a write to key 5 at version 1; t2 read key 5 at snapshot 0.
  deliver(make_tx(1, false, {5}, {5}, 0));
  complete_all();
  ASSERT_EQ(cert.stable(), 1);
  const auto r = deliver(make_tx(2, false, {5}, {5}, 0));
  EXPECT_EQ(r.outcome, Outcome::kAbort);
}

TEST_F(CertifierTest, LocalCommitsWithCurrentSnapshot) {
  deliver(make_tx(1, false, {5}, {5}, 0));
  complete_all();
  const auto r = deliver(make_tx(2, false, {5}, {5}, /*snapshot=*/1));
  EXPECT_EQ(r.outcome, Outcome::kCommit);
}

TEST_F(CertifierTest, DisjointLocalsBothCommit) {
  deliver(make_tx(1, false, {1}, {1}, 0));
  complete_all();
  const auto r = deliver(make_tx(2, false, {2}, {2}, 0));
  EXPECT_EQ(r.outcome, Outcome::kCommit);
}

TEST_F(CertifierTest, GlobalStricterTestAbortsOnWriteReadOverlap) {
  // Committed t1 *read* key 9. A concurrent global writing key 9 must
  // abort (Section III-B), even though no stale read occurred.
  deliver(make_tx(1, false, {9}, {}, 0));
  complete_all();
  const auto r = deliver(make_tx(2, true, {3}, {9}, 0));
  EXPECT_EQ(r.outcome, Outcome::kAbort);
}

TEST_F(CertifierTest, LocalNotSubjectToStricterTest) {
  // Same overlap as above, but the incoming transaction is local: the
  // asymmetric ctest lets it commit (delivery order serializes locals).
  deliver(make_tx(1, false, {9}, {}, 0));
  complete_all();
  const auto r = deliver(make_tx(2, false, {3}, {9}, 0));
  EXPECT_EQ(r.outcome, Outcome::kCommit);
}

TEST_F(CertifierTest, GlobalAbortsAgainstPendingBothDirections) {
  // Pending global g1 reads {1} writes {1}. Incoming global reading g1's
  // writes or writing g1's reads must abort.
  deliver(make_tx(1, true, {1}, {1}, 0), /*threshold=*/100);
  ASSERT_EQ(cert.size(), 1u);
  EXPECT_EQ(deliver(make_tx(2, true, {1}, {7}, 0), 100).outcome, Outcome::kAbort);
  EXPECT_EQ(deliver(make_tx(3, true, {7}, {1}, 0), 100).outcome, Outcome::kAbort);
  EXPECT_EQ(deliver(make_tx(4, true, {7}, {7}, 0), 100).outcome, Outcome::kCommit);
}

TEST_F(CertifierTest, StaleSnapshotOutsideWindowAborts) {
  Certifier small(2);
  std::uint64_t d = 0;
  for (TxId id = 1; id <= 5; ++id) {
    ++d;
    ASSERT_EQ(small.process(make_tx(id, false, {id * 10}, {id * 10}, small.stable()), d, d).outcome,
              Outcome::kCommit);
    small.resolve(small.pop_head(), true);
  }
  // Snapshot 1 needs slots (1,5]; versions 2,3 were evicted (capacity 2).
  ++d;
  const auto r = small.process(make_tx(9, false, {999}, {999}, 1), d, d);
  EXPECT_EQ(r.outcome, Outcome::kAbort);
  EXPECT_TRUE(r.stale_snapshot);
  EXPECT_FALSE(small.covers(1));
  EXPECT_TRUE(small.covers(4));
}

// --- Determinism refinement (see certifier.h header comment) ---------------

TEST_F(CertifierTest, PendingTransactionInsideSnapshotIsNotAConflict) {
  // The race from the paper's pseudocode: transaction t read g's writes at
  // a replica where g had completed (t.snapshot covers g's version), but
  // at *this* replica g is still pending when t is delivered. t must
  // commit here exactly as it does at the fast replica.
  deliver(make_tx(1, true, {5}, {5}, 0), /*threshold=*/100);  // g: version 1, pending
  ASSERT_EQ(cert.size(), 1u);
  const auto r = deliver(make_tx(2, false, {5}, {5}, /*snapshot=*/1), 100);
  EXPECT_EQ(r.outcome, Outcome::kCommit)
      << "g's version (1) is within t's snapshot; pending status is a timing artifact";
  EXPECT_EQ(r.position, 1u) << "t cannot leap g (their sets intersect): it appends";
}

TEST_F(CertifierTest, PendingConflictOutsideSnapshotAborts) {
  deliver(make_tx(1, true, {5}, {5}, 0), 100);  // g: version 1, pending
  const auto r = deliver(make_tx(2, false, {5}, {5}, /*snapshot=*/0), 100);
  EXPECT_EQ(r.outcome, Outcome::kAbort) << "t did not see g's writes: stale read";
}

TEST_F(CertifierTest, AbortedSlotStillConflictsForOldSnapshots) {
  // Certification must be independent of resolution status: a replica that
  // learned g aborted cannot decide differently from one where g is still
  // pending, so the aborted slot conservatively stays a conflict source
  // for snapshots that predate it.
  deliver(make_tx(1, true, {5}, {5}, 0), 0);  // g: version 1
  cert.resolve(cert.pop_head(), /*committed=*/false);
  EXPECT_EQ(deliver(make_tx(2, false, {5}, {5}, /*snapshot=*/0), 0).outcome, Outcome::kAbort)
      << "snapshot 0 predates the aborted slot: conservative abort";
  const auto r = deliver(make_tx(3, false, {5}, {5}, /*snapshot=*/1), 0);
  EXPECT_EQ(r.outcome, Outcome::kCommit) << "a fresh snapshot passes";
  // tx 2 failed certification and consumed no slot; the vote-aborted tx 1
  // keeps version 1, so tx 3 gets version 2.
  EXPECT_EQ(r.version, 2);
}

TEST_F(CertifierTest, StablePrefixWaitsForUnresolvedGlobal) {
  deliver(make_tx(1, true, {1}, {1}, 0), 100);   // g: version 1, pending
  deliver(make_tx(2, false, {2}, {2}, 0), 100);  // l: version 2, leaps g
  ASSERT_EQ(cert.head().tx.id, 2u);
  cert.resolve(cert.pop_head(), true);  // l resolves first
  EXPECT_EQ(cert.stable(), 0) << "stable cannot pass the unresolved global's version";
  cert.resolve(cert.pop_head(), true);  // g resolves
  EXPECT_EQ(cert.stable(), 2);
}

// --- Reordering (Section IV-E) ------------------------------------------------

TEST_F(CertifierTest, LocalLeapsPendingGlobal) {
  deliver(make_tx(1, true, {1}, {1}, 0), /*threshold=*/10);
  const auto r = deliver(make_tx(2, false, {2}, {2}, 0), 10);
  EXPECT_EQ(r.outcome, Outcome::kCommit);
  EXPECT_EQ(r.position, 0u) << "local should leap the pending global";
  EXPECT_TRUE(r.reordered);
  EXPECT_EQ(r.version, 2) << "versions stay delivery-ordered";
  EXPECT_EQ(cert.head().tx.id, 2u);
}

TEST_F(CertifierTest, BaselineThresholdZeroNeverLeaps) {
  deliver(make_tx(1, true, {1}, {1}, 0), /*threshold=*/0);
  const auto r = deliver(make_tx(2, false, {2}, {2}, 0), 0);
  EXPECT_EQ(r.outcome, Outcome::kCommit);
  EXPECT_EQ(r.position, 1u) << "with R=0 the global already reached its threshold";
  EXPECT_FALSE(r.reordered);
}

TEST_F(CertifierTest, NoLeapPastGlobalAtThreshold) {
  // Global delivered with threshold 2: rt = dc(=1) + 2 = 3. Until dc
  // passes 3 locals may leap; afterwards the global may have completed at
  // other replicas, so leaping would be non-deterministic.
  deliver(make_tx(1, true, {1}, {1}, 0), 2);
  const auto r2 = deliver(make_tx(2, false, {2}, {2}, 0), 2);  // dc=2 <= rt=3
  EXPECT_TRUE(r2.reordered);
  const auto r3 = deliver(make_tx(3, false, {3}, {3}, 0), 2);  // dc=3 == rt: still ok
  EXPECT_TRUE(r3.reordered);
  const auto r4 = deliver(make_tx(4, false, {4}, {4}, 0), 2);  // dc=4 > rt=3
  EXPECT_EQ(r4.outcome, Outcome::kCommit);
  EXPECT_FALSE(r4.reordered) << "global passed its reorder threshold";
  EXPECT_EQ(r4.position, cert.size() - 1);
}

TEST_F(CertifierTest, LeapMustNotInvalidateGlobalVote) {
  // Pending global read {5}; a local writing 5 must not be reordered
  // before it (that would change the global's already-broadcast vote), but
  // appending after it is fine.
  deliver(make_tx(1, true, {5}, {}, 0), 10);
  const auto r = deliver(make_tx(2, false, {5, 6}, {5, 6}, 0), 10);
  EXPECT_EQ(r.outcome, Outcome::kCommit);
  EXPECT_EQ(r.position, 1u) << "append allowed, leap forbidden";
  EXPECT_FALSE(r.reordered);
}

TEST_F(CertifierTest, StaleReadAgainstPendingGlobalAborts) {
  deliver(make_tx(1, true, {5}, {5}, 0), 10);
  const auto r = deliver(make_tx(2, false, {5}, {5}, 0), 10);
  EXPECT_EQ(r.outcome, Outcome::kAbort);
}

TEST_F(CertifierTest, LocalNeverLeapsPendingLocal) {
  // Pending: [global(not leapable), local]. A new local must append after
  // the pending local (condition b), never before it.
  deliver(make_tx(1, true, {1}, {1}, 0), 0);   // rt = dc: not leapable
  deliver(make_tx(2, false, {2}, {2}, 0), 0);  // appended behind the global
  ASSERT_EQ(cert.size(), 2u);
  const auto r = deliver(make_tx(3, false, {3}, {3}, 0), 0);
  EXPECT_EQ(r.outcome, Outcome::kCommit);
  EXPECT_EQ(r.position, 2u);
}

TEST_F(CertifierTest, LeftmostValidPositionChosen) {
  // Pending: [g1 (not leapable), g2 (leapable)]; the local leaps g2 only.
  deliver(make_tx(1, true, {1}, {1}, 0), 0);   // rt=1=dc: not leapable
  deliver(make_tx(2, true, {2}, {2}, 0), 50);  // leapable
  const auto r = deliver(make_tx(3, false, {3}, {3}, 0), 50);
  EXPECT_EQ(r.outcome, Outcome::kCommit);
  EXPECT_EQ(r.position, 1u);
  EXPECT_TRUE(r.reordered);
  EXPECT_EQ(cert.at(0).tx.id, 1u);
  EXPECT_EQ(cert.at(1).tx.id, 3u);
  EXPECT_EQ(cert.at(2).tx.id, 2u);
}

TEST_F(CertifierTest, LeapsMultipleGlobals) {
  deliver(make_tx(1, true, {1}, {1}, 0), 50);
  deliver(make_tx(2, true, {2}, {2}, 0), 50);
  deliver(make_tx(3, true, {3}, {3}, 0), 50);
  const auto r = deliver(make_tx(4, false, {4}, {4}, 0), 50);
  EXPECT_EQ(r.position, 0u);
  EXPECT_EQ(cert.head().tx.id, 4u);
}

TEST_F(CertifierTest, ReorderedLocalCertifiedAgainstCommitted) {
  // Reordering does not bypass certification versus committed state.
  deliver(make_tx(1, false, {7}, {7}, 0));
  complete_all();
  deliver(make_tx(2, true, {1}, {1}, cert.stable()), 10);
  const auto r = deliver(make_tx(3, false, {7}, {7}, 0), 10);  // stale vs committed t1
  EXPECT_EQ(r.outcome, Outcome::kAbort);
}

TEST_F(CertifierTest, BloomReadsetsDetectConflicts) {
  PartTx t1 = make_tx(1, false, {}, {5}, 0);
  t1.readset = util::KeySet::bloom({5});
  t1.snapshot = 0;
  ASSERT_EQ(deliver(t1).outcome, Outcome::kCommit);
  complete_all();
  PartTx t2 = make_tx(2, false, {}, {5}, 0);
  t2.readset = util::KeySet::bloom({5});
  EXPECT_EQ(deliver(t2).outcome, Outcome::kAbort) << "bloom rs vs exact committed ws";
}

TEST_F(CertifierTest, ResolveAdvancesStableAndRecordsSlot) {
  EXPECT_EQ(cert.stable(), 0);
  EXPECT_EQ(cert.certified(), 0);
  deliver(make_tx(1, false, {1}, {1}, 0));
  EXPECT_EQ(cert.certified(), 1);
  EXPECT_EQ(cert.stable(), 0) << "unresolved";
  const PendingEntry e = cert.pop_head();
  EXPECT_EQ(e.version, 1);
  cert.resolve(e, true);
  EXPECT_EQ(cert.stable(), 1);
  ASSERT_NE(cert.slot(1), nullptr);
  EXPECT_EQ(cert.slot(1)->status, Certifier::SlotStatus::kCommitted);
  EXPECT_EQ(cert.slot(1)->txid, 1u);
}

TEST_F(CertifierTest, ResetClearsEverything) {
  deliver(make_tx(1, true, {1}, {1}, 0), 10);
  deliver(make_tx(2, false, {2}, {2}, 0), 10);
  complete_all();
  cert.reset();
  EXPECT_EQ(cert.stable(), 0);
  EXPECT_EQ(cert.certified(), 0);
  EXPECT_TRUE(cert.empty());
  EXPECT_EQ(cert.window_size(), 0u);
}

// Determinism: identical delivery sequences produce identical decisions,
// versions and pending-list orders on two certifiers even when completion
// (vote arrival) timing differs wildly between them.
TEST_F(CertifierTest, DeterministicUnderDifferentCompletionTiming) {
  // Replica a completes vote-ready heads immediately; replica b's "votes"
  // arrive late, so its pending list is often longer when the next
  // transaction is certified. Outcomes and assigned versions must match
  // anyway — insertion positions and completion order may legitimately
  // differ (reordered transactions commute).
  Certifier a(1000), b(1000);
  util::Rng rng(17);
  std::uint64_t d = 0;
  auto completable = [&](Certifier& c) {
    return !c.empty() && (!c.head().tx.is_global() || c.head().rt <= d);
  };
  // Vote outcome of a global is a deterministic property of the
  // transaction (all partitions certify deterministically); model it as a
  // pure function of the id.
  auto commits = [](const PendingEntry& e) { return !e.tx.is_global() || e.tx.id % 7 != 0; };
  for (int i = 0; i < 800; ++i) {
    ++d;
    const bool global = rng.chance(0.3);
    const Key k1 = rng.below(20);
    const Key k2 = rng.below(20);
    const Version snap = static_cast<Version>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(a.stable()), rng.below(16)));
    const PartTx t = make_tx(1000 + static_cast<TxId>(i), global, {k1, k2}, {k1}, snap);
    const auto ra = a.process(t, d + 4, d);
    const auto rb = b.process(t, d + 4, d);
    ASSERT_EQ(ra.outcome, rb.outcome) << "tx " << i;
    if (ra.outcome == Outcome::kCommit) {
      ASSERT_EQ(ra.version, rb.version);
    }
    while (completable(a)) {
      const PendingEntry e = a.pop_head();
      a.resolve(e, commits(e));
    }
    if (rng.chance(0.3)) {
      while (completable(b)) {
        const PendingEntry e = b.pop_head();
        b.resolve(e, commits(e));
      }
    }
  }
  while (completable(b)) {
    const PendingEntry e = b.pop_head();
    b.resolve(e, commits(e));
  }
  EXPECT_EQ(a.certified(), b.certified());
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.stable(), b.stable());
  for (Version v = 1; v <= a.certified(); ++v) {
    if (a.slot(v) == nullptr || b.slot(v) == nullptr) continue;
    ASSERT_EQ(a.slot(v)->status, b.slot(v)->status) << "version " << v;
    ASSERT_EQ(a.slot(v)->txid, b.slot(v)->txid);
  }
}

}  // namespace
}  // namespace sdur
