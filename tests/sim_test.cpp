// Unit tests for the simulation substrate: event ordering, process CPU
// model, crash semantics, topology latencies and network fault injection.
#include <gtest/gtest.h>

#include "sim/process.h"
#include "sim/simulator.h"

namespace sdur::sim {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.schedule_at(7, [&, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NestedSchedulingFromHandlers) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(10, [&] {
    order.push_back(1);
    sim.schedule_after(5, [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 15);
}

TEST(Simulator, PastSchedulesClampToNow) {
  Simulator sim;
  sim.schedule_at(100, [&] { sim.schedule_at(50, [] {}); });
  sim.run();
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(1000, [&] { ++fired; });
  sim.run_until(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 100);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, StopHaltsExecution) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, EventBudgetThrows) {
  Simulator sim;
  sim.set_event_budget(10);
  std::function<void()> loop = [&] { sim.schedule_after(1, loop); };
  sim.schedule_at(0, loop);
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Topology, RegionDelays) {
  Topology t = Topology::ec2_three_regions();
  EXPECT_EQ(t.region_delay(kEU, kUSEast), msec(45));
  EXPECT_EQ(t.region_delay(kUSEast, kUSWest), msec(50));
  EXPECT_EQ(t.region_delay(kEU, kUSWest), msec(85));
  EXPECT_EQ(t.region_delay(kEU, kEU), t.intra_region());
}

TEST(Topology, ProcessDelaysByPlacement) {
  Topology t = Topology::ec2_three_regions();
  t.set_jitter(0);
  t.place(1, {kEU, 0});
  t.place(2, {kEU, 0});
  t.place(3, {kEU, 1});
  t.place(4, {kUSWest, 0});
  EXPECT_EQ(t.base_delay(1, 1), usec(1));          // loopback
  EXPECT_EQ(t.base_delay(1, 2), usec(250));        // same datacenter
  EXPECT_EQ(t.base_delay(1, 3), msec(1));          // same region, other DC
  EXPECT_EQ(t.base_delay(1, 4), msec(85));         // EU -> US-WEST
}

TEST(Topology, JitterBoundedAndDeterministic) {
  Topology t = Topology::ec2_three_regions();
  t.set_jitter(0.1);
  t.place(1, {kEU, 0});
  t.place(2, {kUSEast, 0});
  util::Rng r1(42), r2(42);
  for (int i = 0; i < 100; ++i) {
    const Time d1 = t.delay(1, 2, r1);
    EXPECT_GE(d1, msec(45));
    EXPECT_LE(d1, msec(45) + msec(45) / 10 + 1);
    EXPECT_EQ(d1, t.delay(1, 2, r2));
  }
}

// A test process that records received payload bytes with timestamps.
class Sink : public Process {
 public:
  Sink(Network& net, ProcessId id, Location loc) : Process(net, id, "sink", loc) {}

  std::vector<std::pair<Time, std::uint8_t>> received;

 protected:
  void on_message(const Message& m, ProcessId) override {
    received.emplace_back(now(), m.payload.empty() ? 0 : m.payload[0]);
  }
};

Message byte_msg(std::uint8_t b) {
  util::Writer w;
  w.u8(b);
  return {50, std::move(w)};
}

struct NetFixture {
  Simulator sim;
  Topology topo = Topology::ec2_three_regions();
  std::unique_ptr<Network> net;

  NetFixture() {
    topo.set_jitter(0);
    net = std::make_unique<Network>(sim, topo, 1);
  }
};

TEST(Network, DeliversWithTopologyDelay) {
  NetFixture f;
  Sink a(*f.net, 1, {kEU, 0});
  Sink b(*f.net, 2, {kUSEast, 0});
  f.net->send(1, 2, byte_msg(7));
  f.sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  // one-way delay + receiver service time (10us default)
  EXPECT_EQ(b.received[0].first, msec(45) + usec(10));
  EXPECT_EQ(b.received[0].second, 7);
}

TEST(Network, CrashedReceiverDropsMessages) {
  NetFixture f;
  Sink a(*f.net, 1, {kEU, 0});
  Sink b(*f.net, 2, {kEU, 0});
  b.crash();
  f.net->send(1, 2, byte_msg(1));
  f.sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(f.net->stats().messages_dropped, 1u);
}

TEST(Network, LossRateDropsSome) {
  NetFixture f;
  Sink a(*f.net, 1, {kEU, 0});
  Sink b(*f.net, 2, {kEU, 0});
  f.net->set_loss_rate(0.5);
  for (int i = 0; i < 200; ++i) f.net->send(1, 2, byte_msg(1));
  f.sim.run();
  EXPECT_GT(b.received.size(), 50u);
  EXPECT_LT(b.received.size(), 150u);
}

TEST(Network, BlockAndUnblockLink) {
  NetFixture f;
  Sink a(*f.net, 1, {kEU, 0});
  Sink b(*f.net, 2, {kEU, 0});
  f.net->block_link(1, 2);
  f.net->send(1, 2, byte_msg(1));
  f.sim.run();
  EXPECT_TRUE(b.received.empty());
  f.net->unblock_link(1, 2);
  f.net->send(1, 2, byte_msg(2));
  f.sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Network, PartitionSplitsGroups) {
  NetFixture f;
  Sink a(*f.net, 1, {kEU, 0});
  Sink b(*f.net, 2, {kEU, 0});
  Sink c(*f.net, 3, {kEU, 0});
  f.net->partition({1});  // {1} vs {2,3}
  f.net->send(1, 2, byte_msg(1));
  f.net->send(2, 3, byte_msg(2));
  f.sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(c.received.size(), 1u);
  f.net->heal_all();
  f.net->send(1, 2, byte_msg(3));
  f.sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Network, StatsCountTypesAndBytes) {
  NetFixture f;
  Sink a(*f.net, 1, {kEU, 0});
  Sink b(*f.net, 2, {kEU, 0});
  f.net->send(1, 2, byte_msg(1));
  f.net->send(1, 2, byte_msg(2));
  f.sim.run();
  EXPECT_EQ(f.net->stats().messages_sent, 2u);
  EXPECT_EQ(f.net->stats().messages_delivered, 2u);
  EXPECT_EQ(f.net->stats().per_type_count.at(50), 2u);
  EXPECT_GT(f.net->stats().bytes_sent, 0u);
}

TEST(Process, CpuSerializesWork) {
  NetFixture f;
  Sink a(*f.net, 1, {kEU, 0});
  Sink b(*f.net, 2, {kEU, 0});
  b.set_message_service_time(usec(100));
  // Two messages arrive (same DC: 250us); the second must wait for the
  // first's service time.
  f.net->send(1, 2, byte_msg(1));
  f.net->send(1, 2, byte_msg(2));
  f.sim.run();
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[0].first, usec(250 + 100));
  EXPECT_EQ(b.received[1].first, usec(250 + 200));
}

TEST(Process, ChargeCpuDelaysSubsequentlyEnqueuedWork) {
  NetFixture f;
  Sink a(*f.net, 1, {kEU, 0});
  struct Worker : Process {
    using Process::Process;
    std::vector<Time> handled_at;
    void on_message(const Message&, ProcessId) override {
      handled_at.push_back(now());
      if (handled_at.size() == 1) charge_cpu(msec(5));
    }
  } w(*f.net, 2, "worker", {kEU, 0});
  f.net->send(1, 2, byte_msg(1));
  // The second message is sent after the first was handled (and charged),
  // so its enqueue sees the busy CPU.
  f.sim.schedule_at(msec(1), [&] { f.net->send(1, 2, byte_msg(2)); });
  f.sim.run();
  ASSERT_EQ(w.handled_at.size(), 2u);
  EXPECT_GE(w.handled_at[1], w.handled_at[0] + msec(5))
      << "work enqueued after a charge waits for the busy period";
}

TEST(Process, TimersSkippedAfterCrash) {
  NetFixture f;
  Sink a(*f.net, 1, {kEU, 0});
  int fired = 0;
  a.set_timer(msec(10), [&] { ++fired; });
  f.sim.schedule_at(msec(5), [&] { a.crash(); });
  f.sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Process, PreCrashTimersStayDeadAfterRecover) {
  NetFixture f;
  Sink a(*f.net, 1, {kEU, 0});
  int fired = 0;
  a.set_timer(msec(10), [&] { ++fired; });
  f.sim.schedule_at(msec(1), [&] { a.crash(); });
  f.sim.schedule_at(msec(2), [&] { a.recover(); });
  f.sim.run();
  EXPECT_EQ(fired, 0) << "epoch bump must cancel pre-crash timers";
}

TEST(Process, MessagesAfterRecoverAreDelivered) {
  NetFixture f;
  Sink a(*f.net, 1, {kEU, 0});
  Sink b(*f.net, 2, {kEU, 0});
  b.crash();
  f.sim.schedule_at(msec(1), [&] { b.recover(); });
  f.sim.schedule_at(msec(2), [&] { f.net->send(1, 2, byte_msg(9)); });
  f.sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].second, 9);
}

TEST(Process, CrashedSendIsNoOp) {
  NetFixture f;
  Sink a(*f.net, 1, {kEU, 0});
  Sink b(*f.net, 2, {kEU, 0});
  a.crash();
  a.send(2, byte_msg(1));
  f.sim.run();
  EXPECT_TRUE(b.received.empty());
}

}  // namespace
}  // namespace sdur::sim
