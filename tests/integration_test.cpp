// Integration tests: full workloads through the driver on LAN and WAN
// deployments — throughput sanity, replica convergence, workload classes.
#include <gtest/gtest.h>

#include "workload/driver.h"
#include "workload/microbench.h"
#include "workload/social.h"

namespace sdur::workload {
namespace {

std::unique_ptr<Deployment> make_micro_dep(DeploymentSpec::Kind kind, PartitionId partitions,
                                           std::uint64_t items,
                                           std::function<void(DeploymentSpec&)> tweak = {}) {
  DeploymentSpec spec;
  spec.kind = kind;
  spec.partitions = partitions;
  spec.partitioning = MicroWorkload::make_partitioning(partitions, items);
  spec.log_write_latency = sim::usec(300);
  if (tweak) tweak(spec);
  return std::make_unique<Deployment>(spec);
}

void assert_converged(Deployment& dep) {
  dep.run_until(dep.simulator().now() + sim::sec(5));
  for (PartitionId p = 0; p < dep.partition_count(); ++p) {
    Server& ref = dep.server(p, 0);
    for (std::uint32_t r = 1; r < dep.replica_count(); ++r) {
      Server& other = dep.server(p, r);
      ASSERT_EQ(ref.sc(), other.sc()) << "partition " << p << " replica " << r;
      for (Key k : ref.store().keys()) {
        auto a = ref.store().get_latest(k);
        auto b = other.store().get_latest(k);
        ASSERT_TRUE(b.has_value());
        ASSERT_EQ(a->value, b->value) << "partition " << p << " key " << k;
      }
    }
  }
}

TEST(Integration, MicrobenchLanCommitsAndConverges) {
  MicroConfig mc;
  mc.items_per_partition = 2'000;
  mc.global_fraction = 0.1;
  auto dep = make_micro_dep(DeploymentSpec::Kind::kLan, 2, mc.items_per_partition);

  RunConfig cfg;
  cfg.clients = 16;
  cfg.warmup = sim::sec(1);
  cfg.measure = sim::sec(4);
  const sim::Time stop_at = cfg.settle + cfg.warmup + cfg.measure;
  mc.keep_running = [dep = dep.get(), stop_at] { return dep->simulator().now() < stop_at; };
  MicroWorkload wl(mc);
  const RunResult r = run_experiment(*dep, wl, cfg);

  EXPECT_GT(r.throughput("local"), 100.0);
  EXPECT_GT(r.throughput("global"), 5.0);
  const auto& local = r.classes.at("local");
  EXPECT_GT(local.committed, 100u);
  EXPECT_LT(local.aborted, local.committed / 10) << "low contention, few aborts";
  EXPECT_GT(r.p99("global"), r.p99("local") / 2) << "globals are not cheaper than locals";
  assert_converged(*dep);
}

TEST(Integration, MicrobenchLatencyOrderingWan1) {
  MicroConfig mc;
  mc.items_per_partition = 5'000;
  mc.global_fraction = 0.2;
  auto dep = make_micro_dep(DeploymentSpec::Kind::kWan1, 2, mc.items_per_partition);

  RunConfig cfg;
  cfg.clients = 8;
  cfg.settle = sim::msec(1500);
  cfg.warmup = sim::sec(1);
  cfg.measure = sim::sec(6);
  const sim::Time stop_at = cfg.settle + cfg.warmup + cfg.measure;
  mc.keep_running = [dep = dep.get(), stop_at] { return dep->simulator().now() < stop_at; };
  MicroWorkload wl(mc);
  const RunResult r = run_experiment(*dep, wl, cfg);

  ASSERT_GT(r.classes.at("local").committed, 50u);
  ASSERT_GT(r.classes.at("global").committed, 10u);
  // WAN 1: locals terminate intra-region (~4 delta), globals pay inter-
  // region vote exchange (~4 delta + 2 Delta >= 90ms extra).
  EXPECT_LT(r.mean("local"), r.mean("global"));
  EXPECT_GT(r.mean("global"), 90'000) << "global mean should include ~2*Delta";
  assert_converged(*dep);
}

TEST(Integration, MicrobenchWan2LocalsPayInterRegionQuorum) {
  MicroConfig mc;
  mc.items_per_partition = 5'000;
  mc.global_fraction = 0.0;
  MicroWorkload wl(mc);
  auto dep = make_micro_dep(DeploymentSpec::Kind::kWan2, 2, mc.items_per_partition);

  RunConfig cfg;
  cfg.clients = 8;
  cfg.settle = sim::msec(1500);
  cfg.warmup = sim::sec(1);
  cfg.measure = sim::sec(6);
  const RunResult r = run_experiment(*dep, wl, cfg);

  ASSERT_GT(r.classes.at("local").committed, 20u);
  // WAN 2 locals need an inter-region Paxos quorum: >= 2*45ms.
  EXPECT_GT(r.mean("local"), 80'000);
}

TEST(Integration, FourPartitionsScaleLocalThroughput) {
  MicroConfig mc;
  mc.items_per_partition = 2'000;
  mc.global_fraction = 0.0;

  auto run_with = [&](PartitionId parts, std::uint32_t clients) {
    MicroWorkload wl(mc);
    auto dep = make_micro_dep(DeploymentSpec::Kind::kLan, parts, mc.items_per_partition);
    RunConfig cfg;
    cfg.clients = clients;
    cfg.warmup = sim::sec(1);
    cfg.measure = sim::sec(4);
    return run_experiment(*dep, wl, cfg).throughput("local");
  };

  const double t1 = run_with(1, 64);
  const double t4 = run_with(4, 256);
  EXPECT_GT(t4, t1 * 2.0) << "DSN'12 scalability: local throughput grows with partitions (1p="
                          << t1 << " tps, 4p=" << t4 << " tps)";
}

TEST(Integration, ReorderingReducesLocalTailLatencyInWan1) {
  MicroConfig mc;
  mc.items_per_partition = 5'000;
  mc.global_fraction = 0.1;

  auto run_with = [&](std::uint32_t threshold) {
    MicroWorkload wl(mc);
    auto dep = make_micro_dep(DeploymentSpec::Kind::kWan1, 2, mc.items_per_partition,
                              [&](DeploymentSpec& s) { s.server.reorder_threshold = threshold; });
    RunConfig cfg;
    cfg.clients = 24;
    cfg.settle = sim::msec(1500);
    cfg.warmup = sim::sec(1);
    cfg.measure = sim::sec(8);
    return run_experiment(*dep, wl, cfg);
  };

  const RunResult baseline = run_with(0);
  const RunResult reordered = run_with(160);
  ASSERT_GT(reordered.classes.at("local").committed, 100u);
  EXPECT_GT(reordered.servers.reordered, 0u) << "reordering must actually trigger";
  EXPECT_LT(reordered.p99("local"), baseline.p99("local"))
      << "paper Section VI-D: reordering reduces local p99 (baseline="
      << baseline.p99("local") / 1000 << "ms reordered=" << reordered.p99("local") / 1000 << "ms)";
}

TEST(Integration, SocialWorkloadAllOperationClasses) {
  SocialConfig sc;
  sc.users_per_partition = 500;

  DeploymentSpec spec;
  spec.kind = DeploymentSpec::Kind::kLan;
  spec.partitions = 2;
  spec.partitioning = SocialWorkload::make_partitioning(2);
  spec.log_write_latency = sim::usec(300);
  auto dep = std::make_unique<Deployment>(spec);

  RunConfig cfg;
  cfg.clients = 16;
  cfg.warmup = sim::sec(1);
  cfg.measure = sim::sec(6);
  const sim::Time stop_at = cfg.settle + cfg.warmup + cfg.measure;
  sc.keep_running = [dep = dep.get(), stop_at] { return dep->simulator().now() < stop_at; };
  SocialWorkload wl(sc);
  const RunResult r = run_experiment(*dep, wl, cfg);

  EXPECT_GT(r.classes.at("timeline").committed, 100u);
  EXPECT_GT(r.classes.at("post").committed, 5u);
  EXPECT_GT(r.classes.at("follow").committed + r.classes.at("follow_global").committed, 5u);
  EXPECT_EQ(r.classes.at("timeline").aborted, 0u) << "read-only transactions never abort";
  // ~85% of committed operations should be timelines.
  const double timeline_share = static_cast<double>(r.classes.at("timeline").committed) /
                                static_cast<double>(r.throughput() * r.duration_sec);
  EXPECT_NEAR(timeline_share, 0.85, 0.08);
  assert_converged(*dep);
}

TEST(Integration, SocialTimelineObservesFollowedPosts) {
  // Deterministic scenario: user A follows user B; B posts; A's timeline
  // (read-only global snapshot) eventually includes B's post.
  SocialConfig sc;
  sc.users_per_partition = 50;
  sc.initial_follows = 0;
  sc.initial_posts = 0;

  DeploymentSpec spec;
  spec.kind = DeploymentSpec::Kind::kLan;
  spec.partitions = 2;
  spec.partitioning = SocialWorkload::make_partitioning(2);
  auto dep = std::make_unique<Deployment>(spec);
  SocialWorkload wl(sc);
  util::Rng rng(1);
  wl.populate(*dep, rng);
  dep->start();
  dep->run_until(sim::msec(300));

  const std::uint64_t user_a = 0;  // partition 0
  const std::uint64_t user_b = 1;  // partition 1
  Client& c = dep->add_client(0);
  auto run = [&](sim::Time t) { dep->run_until(dep->simulator().now() + t); };

  // A follows B (global follow).
  c.begin();
  c.read_many({social_key(user_a, kProducers), social_key(user_b, kConsumers)}, [&](auto vals) {
    auto prod = vals[0] ? decode_id_list(*vals[0]) : std::vector<std::uint64_t>{};
    auto cons = vals[1] ? decode_id_list(*vals[1]) : std::vector<std::uint64_t>{};
    prod.push_back(user_b);
    cons.push_back(user_a);
    c.write(social_key(user_a, kProducers), encode_id_list(prod));
    c.write(social_key(user_b, kConsumers), encode_id_list(cons));
    c.commit([](Outcome o) { ASSERT_EQ(o, Outcome::kCommit); });
  });
  run(sim::sec(2));

  // B posts.
  c.begin();
  c.read(social_key(user_b, kPosts), [&](bool, const std::string& v) {
    auto posts = v.empty() ? std::vector<std::string>{} : decode_post_list(v);
    posts.push_back("hello-from-b");
    c.write(social_key(user_b, kPosts), encode_post_list(posts));
    c.commit([](Outcome o) { ASSERT_EQ(o, Outcome::kCommit); });
  });
  run(sim::sec(2));

  // A's timeline (allow gossip to propagate the snapshot).
  run(sim::msec(200));
  std::vector<std::string> timeline;
  bool done = false;
  c.begin_read_only([&] {
    c.read(social_key(user_a, kProducers), [&](bool, const std::string& v) {
      const auto follows = decode_id_list(v);
      ASSERT_EQ(follows, (std::vector<std::uint64_t>{user_b}));
      c.read(social_key(user_b, kPosts), [&](bool, const std::string& pv) {
        timeline = decode_post_list(pv);
        done = true;
      });
    });
  });
  run(sim::sec(2));
  ASSERT_TRUE(done);
  ASSERT_EQ(timeline.size(), 1u);
  EXPECT_EQ(timeline[0], "hello-from-b");
}

TEST(Integration, DelayingKeepsGlobalLatencyComparable) {
  MicroConfig mc;
  mc.items_per_partition = 5'000;
  mc.global_fraction = 0.1;

  auto run_with = [&](bool delaying) {
    MicroWorkload wl(mc);
    auto dep = make_micro_dep(DeploymentSpec::Kind::kWan1, 2, mc.items_per_partition,
                              [&](DeploymentSpec& s) { s.server.delaying_enabled = delaying; });
    RunConfig cfg;
    cfg.clients = 16;
    cfg.settle = sim::msec(1500);
    cfg.warmup = sim::sec(1);
    cfg.measure = sim::sec(6);
    return run_experiment(*dep, wl, cfg);
  };

  const RunResult base = run_with(false);
  const RunResult delayed = run_with(true);
  ASSERT_GT(delayed.classes.at("global").committed, 10u);
  // Delaying the local broadcast by ~Delta should not add more than ~Delta
  // to global latency (the remote broadcast dominates).
  EXPECT_LT(delayed.mean("global"), base.mean("global") + 100'000);
}

TEST(Integration, FindOperatingPointReturnsReasonableClientCount) {
  MicroConfig mc;
  mc.items_per_partition = 2'000;
  mc.global_fraction = 0.0;

  auto make_dep = [&]() { return make_micro_dep(DeploymentSpec::Kind::kLan, 2, mc.items_per_partition); };
  auto make_wl = [&]() { return std::make_unique<MicroWorkload>(mc); };

  RunConfig probe;
  probe.clients = 4;
  probe.warmup = sim::msec(500);
  probe.measure = sim::sec(2);
  const std::uint32_t clients = find_operating_point(make_dep, make_wl, probe, 0.75, 4, 64);
  EXPECT_GE(clients, 1u);
  EXPECT_LE(clients, 64u);
}

}  // namespace
}  // namespace sdur::workload
