// Client library tests (Algorithm 1): snapshot management, buffered
// writes, parallel reads, read-only snapshot flow, deferred reads.
#include <gtest/gtest.h>

#include "sdur/deployment.h"

namespace sdur {
namespace {

struct Fixture {
  std::unique_ptr<Deployment> dep;
  Client* client = nullptr;

  Fixture() {
    DeploymentSpec spec;
    spec.partitions = 3;
    spec.partitioning = std::make_shared<RangePartitioning>(3, 100);
    spec.log_write_latency = sim::usec(200);
    dep = std::make_unique<Deployment>(spec);
    for (Key k = 0; k < 300; ++k) dep->load(k, "v" + std::to_string(k));
    dep->start();
    client = &dep->add_client(0);
    dep->run_until(sim::msec(300));
  }

  void run_for(sim::Time t) { dep->run_until(dep->simulator().now() + t); }

  Outcome update(std::vector<Key> keys, const std::string& value) {
    Outcome result = Outcome::kUnknown;
    client->begin();
    client->read_many(keys, [&, keys](auto) {
      for (Key k : keys) client->write(k, value);
      client->commit([&](Outcome o) { result = o; });
    });
    run_for(sim::sec(5));
    return result;
  }
};

TEST(Client, ReadYourOwnBufferedWrites) {
  Fixture f;
  f.client->begin();
  std::string observed;
  f.client->read(5, [&](bool, const std::string&) {
    f.client->write(5, "buffered");
    f.client->read(5, [&](bool found, const std::string& v) {
      ASSERT_TRUE(found);
      observed = v;  // served from the write buffer, no round trip
    });
  });
  f.run_for(sim::sec(1));
  EXPECT_EQ(observed, "buffered");
}

TEST(Client, TransactionIdsAreUniqueAndMonotonic) {
  Fixture f;
  f.client->begin();
  const TxId a = f.client->current_txid();
  f.client->begin();
  const TxId b = f.client->current_txid();
  EXPECT_NE(a, 0u);
  EXPECT_LT(a, b);

  Client& other = f.dep->add_client(1);
  other.begin();
  EXPECT_NE(other.current_txid(), b) << "ids embed the client id";
}

TEST(Client, ParallelReadManyPreservesOrder) {
  Fixture f;
  std::vector<std::optional<std::string>> results;
  f.client->begin();
  // Keys from all three partitions, interleaved.
  f.client->read_many({250, 5, 105}, [&](auto values) { results = std::move(values); });
  f.run_for(sim::sec(1));
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(*results[0], "v250");
  EXPECT_EQ(*results[1], "v5");
  EXPECT_EQ(*results[2], "v105");
}

TEST(Client, MissingKeyReportsNotFound) {
  Fixture f;
  bool found = true;
  f.client->begin();
  f.client->read(77'777, [&](bool fnd, const std::string&) { found = fnd; });
  f.run_for(sim::sec(1));
  EXPECT_FALSE(found);
}

TEST(Client, SnapshotFixedPerPartitionIndependently) {
  Fixture f;
  Client& writer = f.dep->add_client(0);

  // Fix the snapshot at partition 0 only.
  f.client->begin();
  f.client->read(1, [](bool, const std::string&) {});
  f.run_for(sim::sec(1));

  // Commit updates in partitions 0 and 1 from another client.
  {
    Outcome o = Outcome::kUnknown;
    writer.begin();
    writer.read_many({2, 102}, [&](auto) {
      writer.write(2, "new");
      writer.write(102, "new");
      writer.commit([&](Outcome out) { o = out; });
    });
    f.run_for(sim::sec(5));
    ASSERT_EQ(o, Outcome::kCommit);
  }

  // Partition 0 read sees the old snapshot; the first partition-1 read
  // fixes a fresh snapshot there and sees the new value.
  std::string p0, p1;
  f.client->read(2, [&](bool, const std::string& v) { p0 = v; });
  f.client->read(102, [&](bool, const std::string& v) { p1 = v; });
  f.run_for(sim::sec(1));
  EXPECT_EQ(p0, "v2") << "partition-0 snapshot predates the writer's commit";
  EXPECT_EQ(p1, "new") << "partition-1 snapshot was taken after it";
}

TEST(Client, ThreePartitionGlobalTransaction) {
  Fixture f;
  EXPECT_EQ(f.update({1, 101, 201}, "tri"), Outcome::kCommit);
  for (PartitionId p = 0; p < 3; ++p) {
    EXPECT_EQ(f.dep->server(p, 0).store().get_latest(1 + 100ULL * p)->value, "tri");
  }
}

TEST(Client, ReadOnlySeesAtomicGlobalState) {
  Fixture f;
  ASSERT_EQ(f.update({1, 101}, "both"), Outcome::kCommit);
  f.run_for(sim::msec(100));  // gossip

  std::string a, b;
  Outcome o = Outcome::kUnknown;
  f.client->begin_read_only([&] {
    f.client->read_many({1, 101}, [&](auto values) {
      a = values[0].value_or("");
      b = values[1].value_or("");
      f.client->commit([&](Outcome out) { o = out; });
    });
  });
  f.run_for(sim::sec(2));
  EXPECT_EQ(o, Outcome::kCommit);
  EXPECT_EQ(a, "both");
  EXPECT_EQ(b, "both");
}

TEST(Client, ReadOnlyDoesNotBlockOnConcurrentWriters) {
  Fixture f;
  // A read-only transaction issued while updates are in flight commits
  // without certification (never aborts) and sees a consistent snapshot.
  Client& writer = f.dep->add_client(0);
  for (int i = 0; i < 5; ++i) {
    writer.begin();
    writer.read(3, [&](bool, const std::string&) {
      writer.write(3, "w");
      writer.commit([](Outcome) {});
    });
  }
  Outcome o = Outcome::kUnknown;
  f.client->begin_read_only([&] {
    f.client->read(3, [&](bool, const std::string&) {
      f.client->commit([&](Outcome out) { o = out; });
    });
  });
  f.run_for(sim::sec(5));
  EXPECT_EQ(o, Outcome::kCommit);
}

TEST(Client, StatsCountReadsAndCommits) {
  Fixture f;
  ASSERT_EQ(f.update({1, 2}, "x"), Outcome::kCommit);
  EXPECT_EQ(f.client->stats().reads, 2u);
  EXPECT_EQ(f.client->stats().commits_requested, 1u);
  EXPECT_EQ(f.client->stats().timeouts, 0u);
}

}  // namespace
}  // namespace sdur
