// Legacy-pin fixture: pointer-keyed container.

namespace pdur {

struct Lane;
using LaneOrder = std::map<const Lane*, int>;

}  // namespace pdur
