// Legacy-pin fixture: probe-only index contract violations.
#pragma once

namespace storage {

struct PinIndex {
  std::unordered_map<uint64_t, int> table_;
  void walk() const {
    probe_.for_each([](uint64_t) {});
  }
};

}  // namespace storage
