// Legacy-pin fixture: unordered member iterated by name, plus srand.

namespace sdur {

struct PinState {
  std::unordered_map<uint64_t, int> counts_;
};

void pin_dump(const PinState& s) {
  for (const auto& kv : s.counts_) {
    use(kv);
  }
  srand(7);
}

}  // namespace sdur
