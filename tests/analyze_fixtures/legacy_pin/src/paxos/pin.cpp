// Legacy-pin fixture: bare rand().

namespace paxos {

int pin_entropy() {
  return rand();
}

}  // namespace paxos
