// Legacy-pin fixture: constructs the legacy regex linter handles
// correctly (single-line, outside strings/comments). The selftest pins
// the migrated rules against the legacy linter's recorded findings on
// this tree, line for line.

namespace sim {

uint64_t pin_now() {
  auto t = std::chrono::steady_clock::now();
  (void)t;
  return 0;
}

std::function<void()> pin_cb;

void pin_schedule(Message m) {
  auto a = [m] { deliver(m); };
  auto b = [m2 = m] { deliver(m2); };
  (void)a;
  (void)b;
}

}  // namespace sim
