// Fixture: storage sits below sdur in the layering DAG — this include
// inverts the dependency and must be a finding.
#include "sdur/server.h"
#include "util/bytes.h"

namespace storage {
void poke_upward() {}
}  // namespace storage
