// Fixture: speculative-commit hot path. Bodies starting with
// `speculate`/`finalize`/`rollback` under src/sdur/ and src/storage/
// are hot (they run per speculated global / per vote resolution);
// `spec_floor_report` matches none of the patterns, so identical
// constructs there must stay silent.

namespace storage {

std::size_t MVStore::rollback(Version version) {
  KeySet doomed = spec_log_.keys;  // positive: container deep-copy
  auto* undo = new UndoRec();      // positive: hotpath-alloc
  if (doomed.empty()) {
    throw std::logic_error("no");  // positive: hotpath-throw
  }
  return erase(version, doomed, undo);
}

void MVStore::finalize_spec(Version v, KeySet touched) {  // positive: by-value param
  auto scratch = std::make_unique<UndoRec>();  // positive: hotpath-alloc
  promote(v, touched, scratch.get());
}

bool MVStore::speculate_slot(Version v) {
  KeySet probe = spec_log_.keys;  // positive: container deep-copy
  return mark(v, probe);
}

void MVStore::spec_floor_report(Version floor) const {
  // Matches no hot pattern (the real audit_spec_floor throws by
  // contract and is deliberately not hot): identical constructs must
  // stay silent.
  KeySet copy = spec_log_.keys;  // negative: not a hot function
  auto* scratch = new UndoRec();
  (void)floor;
  (void)copy;
  (void)scratch;
}

}  // namespace storage
