// Fixture: hot-path hygiene. `conflicts_*` bodies are hot; `rebuild` is
// not, so identical constructs there must stay silent.

namespace storage {

bool Window::conflicts_scan(const KeySet& reads) const {
  KeySet tmp = reads;                     // positive: container deep-copy
  auto* node = new Node();                // positive: hotpath-alloc
  auto owned = std::make_unique<Node>();  // positive: hotpath-alloc
  if (reads.empty()) {
    throw std::logic_error("empty");      // positive: hotpath-throw
  }
  return check(tmp, node, owned.get());
}

bool Window::conflicts_indexed(KeySet reads) const {  // positive: by-value param
  const KeySet& ref = reads;           // negative: reference
  KeySet projected = project(reads);   // negative: move from a call
  return probe(ref, projected);
}

void Window::rebuild() {
  KeySet copy = snapshot_;  // negative: not a hot function
  auto* scratch = new Node();
  (void)copy;
  (void)scratch;
}

}  // namespace storage
