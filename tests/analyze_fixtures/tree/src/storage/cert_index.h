// Fixture: the certification index is probe-only — any for_each() walk
// or unordered container in a cert_index.* file is a finding, and the
// rule accepts no allowlist entries.
#pragma once

namespace storage {

struct CertIndexFixture {
  std::unordered_map<uint64_t, int> dup_;  // positive: unordered container here
  void walk() const {
    probe_.for_each([](uint64_t) {});  // positive: table walk
  }
};

}  // namespace storage
