// Fixture: pointer-key positives and negatives.
#pragma once

namespace storage {

struct Slot;
using SlotOrder = std::map<const Slot*, int>;  // positive: pointer key
using Names = std::set<const char*>;           // negative: char* is exempt
using ById = std::map<uint64_t, const Slot*>;  // negative: pointer value, not key

}  // namespace storage
