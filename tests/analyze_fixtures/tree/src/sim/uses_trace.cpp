// Fixture: sim may never depend on trace — the simulator's schedule
// cannot be conditioned on whether tracing is compiled in.
#include "trace/trace.h"
#include "util/bytes.h"

namespace sim {
void peek_tracer() {}
}  // namespace sim
