// Fixture: wall-clock / unseeded-random / hotpath-std-function /
// message-copy-capture positives, plus the string/comment negatives the
// legacy regex linter got wrong.

namespace sim {

// negative: std::chrono::steady_clock and rand() in a comment must not fire
/* block comment negative: srand(7); std::random_device rd; */
static const char* kDoc = "std::chrono::steady_clock";
static const char* kRaw = R"(rand() srand(7) time(NULL) std::random_device)";

uint64_t bad_now() {
  auto t = std::chrono::steady_clock::now();  // positive: wall-clock
  (void)t;
  return time(nullptr);  // positive: wall-clock
}

int bad_entropy() {
  std::random_device rd;  // positive: unseeded-random
  srand(42);              // positive: unseeded-random
  return rand();          // positive: unseeded-random
}

std::function<void()> stored_cb;  // positive: hotpath-std-function

void schedule(Message m) {
  auto a = [m] { deliver(m); };  // positive: copy capture of `m`
  auto b = [
      m2 = m,
      seq = next_seq()
  ] { deliver(m2, seq); };       // positive: multi-line init-capture copy
  auto c = [&m] { touch(m); };   // negative: by-ref capture
  auto d = [m3 = std::move(m)] { deliver(m3); };  // negative: move capture
  (void)a; (void)b; (void)c; (void)d;
}

}  // namespace sim
