// Fixture: symmetry across helper pairs and loops. put_entry/get_entry
// mirror (negative); the batch codec's decoder loop reads a bare u64
// where the encoder loop used the helper (positive, inside the loop).

namespace paxos {

void put_entry(Writer& w, const Entry& e) {
  w.u64(e.slot);
  w.bytes(e.value);
}
Entry get_entry(Reader& r) {
  Entry e;
  e.slot = r.u64();
  e.value = r.bytes();
  return e;
}

void encode_batch(Writer& w, const Batch& b) {
  w.varint(b.entries.size());
  for (const Entry& e : b.entries) {
    put_entry(w, e);
  }
}
Batch decode_batch(Reader& r) {
  Batch b;
  uint64_t n = r.varint();
  for (uint64_t i = 0; i < n; ++i) {
    b.slots.push_back(r.u64());  // skew: encoder used put_entry per element
  }
  return b;
}

}  // namespace paxos
