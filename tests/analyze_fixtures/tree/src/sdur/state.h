// Fixture: a multi-line unordered_map member declaration — the legacy
// line-based linter never collected `pending_votes_`, so iterating it
// was a silent false negative.
#pragma once

namespace sdur {

struct State {
  std::unordered_map<uint64_t,
                     std::vector<uint64_t>>
      pending_votes_;
  std::map<uint64_t, uint64_t> applied_;  // ordered: iteration is fine
};

}  // namespace sdur
