// Fixture: technique-config single source. A plain `bool` data member
// declared in a struct other than TechniqueConfig inside a
// src/sdur/*config*.h header is a technique knob in the wrong place;
// TechniqueConfig's own body, `bool&` reference aliases and
// bool-returning function declarations must stay silent.

namespace sdur {

struct TechniqueConfig {
  bool delaying_enabled = false;  // negative: TechniqueConfig is the home
  bool speculation = false;       // negative
  bool operator==(const TechniqueConfig&) const = default;  // negative: function
};

struct ServerConfigData {
  TechniqueConfig techniques;
  bool verbose_shadow = false;  // positive: knob outside TechniqueConfig
  std::uint32_t replicas = 3;
};

struct ServerConfig : ServerConfigData {
  bool& delaying_enabled = techniques.delaying_enabled;  // negative: reference alias
  bool& speculation = techniques.speculation;            // negative: reference alias
  bool eager_flush;                                      // positive: uninitialized knob
  bool has_quorum() const;                               // negative: function declaration
};

}  // namespace sdur
