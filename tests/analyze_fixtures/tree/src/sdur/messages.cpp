// Fixture: encode/decode symmetry. GoodMsg mirrors (negative); SkewMsg
// reorders fields, WidthMsg narrows a width, CountMsg drops a field
// (positives); LoneMsg has no decoder (warning).

namespace sdur {

void GoodMsg::encode(Writer& w) const {
  w.u64(txid);
  w.varint(round);
  w.bytes(payload);
}
GoodMsg GoodMsg::decode(Reader& r) {
  GoodMsg m;
  m.txid = r.u64();
  m.round = r.varint();
  m.payload = r.bytes();
  return m;
}

void SkewMsg::encode(Writer& w) const {
  w.u32(part);
  w.u64(txid);
}
SkewMsg SkewMsg::decode(Reader& r) {
  SkewMsg m;
  m.txid = r.u64();  // skew: encoder wrote the u32 part id first
  m.part = r.u32();
  return m;
}

void WidthMsg::encode(Writer& w) const {
  w.u32(epoch);
}
WidthMsg WidthMsg::decode(Reader& r) {
  WidthMsg m;
  m.epoch = r.u64();  // skew: four bytes written, eight read
  return m;
}

void CountMsg::encode(Writer& w) const {
  w.u64(txid);
  w.u8(flags);  // skew: never read back
}
CountMsg CountMsg::decode(Reader& r) {
  CountMsg m;
  m.txid = r.u64();
  return m;
}

void LoneMsg::encode(Writer& w) const { w.u8(tag); }

}  // namespace sdur
