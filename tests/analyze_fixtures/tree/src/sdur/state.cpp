// Fixture: range-for with a structured binding over an unordered member
// (positive — legacy regex missed structured bindings) and over an
// ordered map (negative).

namespace sdur {

void dump(const State& s) {
  for (const auto& [txid, votes] : s.pending_votes_) {  // positive
    use(txid, votes);
  }
  for (const auto& [txid, seq] : s.applied_) {  // negative: ordered
    use(txid, seq);
  }
}

}  // namespace sdur
