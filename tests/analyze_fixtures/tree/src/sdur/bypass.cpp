// Fixture: out-of-order-commit hot path. Bodies whose name contains
// `bypass` or starts with `park`/`unpark` are hot (they run once per
// delivery / per pending-head completion); `resume_parked_report`
// matches neither pattern, so identical constructs there must stay
// silent.

namespace sdur {

void Certifier::park_on_insert(std::size_t pos, const PartTx& t) {
  KeySet probe = t.write_keys;     // positive: container deep-copy
  auto* slot = new ParkSlot();     // positive: hotpath-alloc
  if (probe.empty()) {
    throw std::logic_error("no");  // positive: hotpath-throw
  }
  stamp(pos, probe, slot);
}

std::size_t Certifier::next_bypassable(std::size_t from, KeySet scratch) {  // positive: by-value param
  auto owned = std::make_unique<ParkSlot>();  // positive: hotpath-alloc
  const KeySet& ref = scratch;                // negative: reference
  KeySet framed = widen(scratch);             // negative: move from a call
  return probe(from, ref, framed, owned.get());
}

void Server::resume_parked_report(const Entry& e) {
  // `resume_parked_report` does not start with park/unpark and has no
  // `bypass`: not hot, identical constructs must stay silent.
  KeySet copy = e.write_keys;  // negative: not a hot function
  auto* scratch = new ParkSlot();
  (void)copy;
  (void)scratch;
}

}  // namespace sdur
