// Fixture: record*-named functions are hot only under src/trace/ — the
// same name in a protocol dir allocates without a finding.

namespace sdur {

void Recorder::record_outcome() {
  auto* e = new Event();  // negative: record* outside src/trace/
  (void)e;
}

}  // namespace sdur
