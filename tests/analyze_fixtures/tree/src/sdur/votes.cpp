// Fixture: vote-exchange hot path. `handle_vote*` and `flush_votes*`
// bodies are hot (once per received vote / per batch window);
// `enqueue_vote` is not, so identical constructs there must stay silent.

namespace sdur {

void Server::handle_vote_batch(const VoteBatchMsg& batch) {
  Bytes copy = batch.payload_;        // positive: container deep-copy
  auto* slot = new VoteSlot();        // positive: hotpath-alloc
  if (copy.empty()) {
    throw std::logic_error("empty");  // positive: hotpath-throw
  }
  apply(copy, slot);
}

void Server::flush_votes_for(PartitionId dst, Bytes pending) {  // positive: by-value param
  auto owned = std::make_unique<VoteSlot>();  // positive: hotpath-alloc
  const Bytes& ref = pending;                 // negative: reference
  Bytes framed = frame(pending);              // negative: move from a call
  send(dst, ref, framed, owned.get());
}

void Server::enqueue_vote(const Vote& v) {
  Bytes copy = v.payload_;  // negative: not a hot function
  auto* scratch = new VoteSlot();
  (void)copy;
  (void)scratch;
}

}  // namespace sdur
