// Fixture: the tracer's span-emit path (record*/emit*/append* under
// src/trace/ only) is hot — it runs once per instrumented protocol step
// and carries a zero-allocation-at-steady-state contract. Identical
// constructs in cold bodies (registration) must stay silent.

namespace trace {

void Tracer::record_mark(const KeySet& keys) {
  KeySet tmp = keys;                    // positive: container deep-copy
  auto* slot = new Record();            // positive: hotpath-alloc
  if (keys.empty()) {
    throw std::logic_error("empty");    // positive: hotpath-throw
  }
  stash(tmp, slot);
}

void Tracer::append(const Record& r) {
  auto owned = std::make_unique<Record>(r);  // positive: hotpath-alloc
  stash_owned(owned.get());
}

void Tracer::register_track() {
  auto* scratch = new Record();  // negative: registration is cold
  (void)scratch;
}

}  // namespace trace
