// Fixture: half of an #include cycle (with cycle_b.h).
#pragma once
#include "util/cycle_b.h"

struct CycleA {};
