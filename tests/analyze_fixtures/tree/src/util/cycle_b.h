// Fixture: other half of the #include cycle with cycle_a.h.
#pragma once
#include "util/cycle_a.h"

struct CycleB {};
