// Fixture: a tree with nothing to report — the analyzer must exit 0.
#pragma once

namespace util {

inline uint64_t add(uint64_t a, uint64_t b) { return a + b; }

}  // namespace util
