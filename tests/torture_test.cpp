// Torture test: the whole stack under sustained adversity — message loss,
// repeated crash/recovery of follower replicas, periodic checkpoints with
// log truncation, reordering enabled, contended keyspace — then a full
// one-copy-serializability check and replica-convergence audit.
//
// Contacts (partition leaders, replica 0) stay up so every client
// eventually learns its outcome (commit-request retries + outcome memory
// make that exact under loss); followers crash and recover continuously.
#include <gtest/gtest.h>

#include "workload/driver.h"
#include "workload/history.h"
#include "workload/microbench.h"

namespace sdur::workload {
namespace {

TEST(Torture, LossCrashesCheckpointsAndReorderingStaySerializable) {
  DeploymentSpec spec;
  spec.partitions = 2;
  spec.partitioning = MicroWorkload::make_partitioning(2, 60);
  spec.log_write_latency = sim::usec(300);
  spec.server.reorder_threshold = 48;
  spec.server.checkpoint_interval = sim::msec(600);
  spec.server.missing_vote_timeout = sim::msec(1500);
  spec.seed = 31;
  // Aggressive client retries: loss is frequent here, and retry latency
  // dominates progress otherwise.
  spec.client.read_retry_interval = sim::msec(300);
  spec.client.commit_retry_interval = sim::msec(800);
  Deployment dep(spec);
  dep.network().set_loss_rate(0.03);

  SerializabilityChecker checker;
  RunConfig cfg;
  cfg.clients = 12;
  cfg.seed = 31;
  cfg.warmup = sim::msec(500);
  cfg.measure = sim::sec(10);
  const sim::Time stop_at = cfg.settle + cfg.warmup + cfg.measure;

  MicroConfig mc;
  mc.items_per_partition = 60;
  mc.global_fraction = 0.3;
  mc.commit_hook = [&](TxId id, std::vector<std::pair<Key, TxId>> reads, std::vector<Key> writes) {
    checker.add_committed(id, std::move(reads), std::move(writes));
  };
  mc.keep_running = [&dep, stop_at] { return dep.simulator().now() < stop_at; };
  MicroWorkload wl(mc);

  // Crash/recover follower replicas on a rolling schedule (never replica 0:
  // contacts stay reachable; never a majority of any group).
  util::Rng chaos(7);
  for (sim::Time t = sim::sec(2); t < stop_at; t += sim::msec(900)) {
    const PartitionId p = static_cast<PartitionId>(chaos.below(2));
    const std::uint32_t replica = 1 + static_cast<std::uint32_t>(chaos.below(2));
    dep.simulator().schedule_at(t, [&dep, p, replica] { dep.server(p, replica).crash(); });
    dep.simulator().schedule_at(t + sim::msec(600),
                                [&dep, p, replica] { dep.server(p, replica).recover(); });
  }

  const RunResult r = run_experiment(dep, wl, cfg);

  // Quiesce: heal the network and drain everything.
  dep.network().set_loss_rate(0);
  for (Server* s : dep.servers()) s->recover();  // no-op if alive
  dep.run_until(dep.simulator().now() + sim::sec(40));

  ASSERT_GT(checker.committed_count(), 200u) << "the system made real progress under churn";
  std::uint64_t unknown = 0;
  for (const auto& [cls, st] : r.classes) unknown += st.unknown;
  EXPECT_EQ(unknown, 0u) << "commit retries + outcome memory give exact answers under loss";

  for (Server* s : dep.servers()) {
    ASSERT_EQ(s->pending_count(), 0u) << s->name();
  }

  // Convergence: every replica of a partition holds identical data.
  for (PartitionId p = 0; p < 2; ++p) {
    Server& ref = dep.server(p, 0);
    for (std::uint32_t rep = 1; rep < 3; ++rep) {
      Server& other = dep.server(p, rep);
      ASSERT_EQ(ref.sc(), other.sc()) << "partition " << p << " replica " << rep;
    }
    for (Key k : ref.store().keys()) {
      const auto* versions = ref.store().versions_of(k);
      std::vector<TxId> order;
      for (const auto& vv : *versions) {
        if (vv.version == 0) continue;
        order.push_back(MicroWorkload::decode_writer(vv.value));
      }
      checker.set_key_order(k, order);
      for (std::uint32_t rep = 1; rep < 3; ++rep) {
        auto a = ref.store().get_latest(k);
        auto b = dep.server(p, rep).store().get_latest(k);
        ASSERT_TRUE(b.has_value()) << "key " << k;
        ASSERT_EQ(a->value, b->value) << "partition " << p << " key " << k << " replica " << rep;
        ASSERT_EQ(a->version, b->version);
      }
    }
  }

  std::string why;
  EXPECT_TRUE(checker.check(&why)) << "serializability violated under churn: " << why;
}

}  // namespace
}  // namespace sdur::workload
