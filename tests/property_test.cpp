// Property-based tests: one-copy serializability and replica determinism
// over randomized contended workloads, swept across deployments, global
// mixes, reorder thresholds, bloom certification and delaying.
//
// Every committed transaction's reads (which writer's version it saw) and
// writes are recorded; after the run the per-key version order is read
// back from a replica's multiversion store and the multiversion
// serialization graph is checked for cycles (see workload/history.h).
//
// The same histories also cross-validate the two independent correctness
// oracles against each other: the *online* invariant audit (src/audit/,
// hooks firing inside the protocol as it runs) and this *offline* MVSG
// check must both pass on every healthy run. They catch overlapping but
// distinct failure modes, so a sweep where one trips and the other stays
// green localizes a bug to either the protocol or the checker itself.
#include <gtest/gtest.h>

#include "audit/audit.h"
#include "workload/driver.h"
#include "workload/history.h"
#include "workload/microbench.h"

namespace sdur::workload {
namespace {

struct PropertyCase {
  const char* name;
  DeploymentSpec::Kind kind = DeploymentSpec::Kind::kLan;
  PartitionId partitions = 2;
  double global_fraction = 0.2;
  std::uint32_t reorder_threshold = 0;
  bool bloom = false;
  bool delaying = false;
  std::uint64_t items = 40;  // tiny keyspace -> heavy contention
  std::uint32_t clients = 16;
  std::uint64_t seed = 7;
};

std::ostream& operator<<(std::ostream& os, const PropertyCase& c) { return os << c.name; }

class SerializabilityProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(SerializabilityProperty, HistoryIsSerializableAndReplicasAgree) {
  const PropertyCase& pc = GetParam();

  DeploymentSpec spec;
  spec.kind = pc.kind;
  spec.partitions = pc.partitions;
  spec.partitioning = MicroWorkload::make_partitioning(pc.partitions, pc.items);
  spec.server.reorder_threshold = pc.reorder_threshold;
  spec.server.bloom_readsets = pc.bloom;
  spec.server.delaying_enabled = pc.delaying;
  spec.log_write_latency = sim::usec(300);
  spec.seed = pc.seed;
  Deployment dep(spec);

  SerializabilityChecker checker;
  RunConfig cfg;
  cfg.clients = pc.clients;
  cfg.seed = pc.seed;
  cfg.settle = pc.kind == DeploymentSpec::Kind::kLan ? sim::msec(800) : sim::msec(1500);
  cfg.warmup = sim::msec(500);
  cfg.measure = sim::sec(6);
  const sim::Time stop_at = cfg.settle + cfg.warmup + cfg.measure;

  MicroConfig mc;
  mc.items_per_partition = pc.items;
  mc.global_fraction = pc.global_fraction;
  mc.commit_hook = [&](TxId id, std::vector<std::pair<Key, TxId>> reads, std::vector<Key> writes) {
    checker.add_committed(id, std::move(reads), std::move(writes));
  };
  mc.keep_running = [&dep, stop_at] { return dep.simulator().now() < stop_at; };
  MicroWorkload wl(mc);

  const RunResult r = run_experiment(dep, wl, cfg);

  // Quiesce: no new transactions start; drain everything in flight.
  dep.run_until(dep.simulator().now() + sim::sec(20));
  for (Server* s : dep.servers()) {
    ASSERT_EQ(s->pending_count(), 0u) << s->name() << " still has pending transactions";
  }

  // Sanity: the run did real, contended work.
  ASSERT_GT(checker.committed_count(), 50u) << "workload barely ran";
  std::uint64_t aborted = 0;
  for (const auto& [cls, st] : r.classes) aborted += st.aborted;
  if (pc.items <= 50) {
    EXPECT_GT(aborted, 0u) << "tiny keyspace should produce certification aborts";
  }

  // Recover the per-key version order from replica 0 of each partition and
  // cross-check every other replica against it (determinism).
  for (PartitionId p = 0; p < dep.partition_count(); ++p) {
    Server& ref = dep.server(p, 0);
    for (Key k : ref.store().keys()) {
      const auto* versions = ref.store().versions_of(k);
      ASSERT_NE(versions, nullptr);
      std::vector<TxId> order;
      for (const auto& vv : *versions) {
        if (vv.version == 0) continue;  // initial load
        order.push_back(MicroWorkload::decode_writer(vv.value));
      }
      checker.set_key_order(k, order);

      for (std::uint32_t rep = 1; rep < dep.replica_count(); ++rep) {
        const auto* other = dep.server(p, rep).store().versions_of(k);
        ASSERT_NE(other, nullptr) << "key " << k;
        ASSERT_EQ(versions->size(), other->size()) << "key " << k << " replica " << rep;
        for (std::size_t i = 0; i < versions->size(); ++i) {
          ASSERT_EQ((*versions)[i].version, (*other)[i].version);
          ASSERT_EQ((*versions)[i].value, (*other)[i].value);
        }
      }
    }
  }

  std::string why;
  EXPECT_TRUE(checker.check(&why)) << "serializability violated: " << why;

#if SDUR_AUDIT_ON
  // The online audit watched the same run the MVSG checker just validated;
  // both oracles must agree the history is healthy.
  EXPECT_TRUE(audit::Auditor::instance().clean())
      << "online audit disagrees with offline MVSG check:\n"
      << audit::Auditor::instance().summary();
#endif
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SerializabilityProperty,
    ::testing::Values(
        PropertyCase{.name = "lan_baseline"},
        PropertyCase{.name = "lan_single_partition", .partitions = 1, .global_fraction = 0},
        PropertyCase{.name = "lan_heavy_global", .global_fraction = 0.6},
        PropertyCase{.name = "lan_reorder", .reorder_threshold = 64},
        PropertyCase{.name = "lan_reorder_heavy_global",
                     .global_fraction = 0.5,
                     .reorder_threshold = 128,
                     .seed = 11},
        PropertyCase{.name = "lan_bloom", .bloom = true, .seed = 13},
        PropertyCase{.name = "lan_four_partitions",
                     .partitions = 4,
                     .global_fraction = 0.3,
                     .clients = 24,
                     .seed = 17},
        PropertyCase{.name = "wan1_baseline",
                     .kind = DeploymentSpec::Kind::kWan1,
                     .items = 60,
                     .seed = 19},
        PropertyCase{.name = "wan1_reorder_delaying",
                     .kind = DeploymentSpec::Kind::kWan1,
                     .reorder_threshold = 160,
                     .delaying = true,
                     .items = 60,
                     .seed = 23},
        PropertyCase{.name = "wan2_reorder",
                     .kind = DeploymentSpec::Kind::kWan2,
                     .reorder_threshold = 40,
                     .items = 60,
                     .seed = 29}),
    [](const ::testing::TestParamInfo<PropertyCase>& param_info) { return param_info.param.name; });

}  // namespace
}  // namespace sdur::workload
