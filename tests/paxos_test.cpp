// Multi-Paxos atomic broadcast tests: ordering, leader failover, message
// loss, catchup, durable-log recovery — the safety and liveness properties
// SDUR relies on (Section II-A).
#include <gtest/gtest.h>

#include "paxos/engine.h"
#include "sim/process.h"

namespace sdur::paxos {
namespace {

Value int_value(std::uint64_t v) {
  util::Writer w;
  w.u64(v);
  return std::move(w).take();
}

std::uint64_t int_of(const Value& v) {
  util::Reader r(v);
  return r.u64();
}

class PaxosHost : public sim::Process {
 public:
  PaxosHost(sim::Network& net, sim::ProcessId pid, sim::Location loc, GroupConfig cfg)
      : sim::Process(net, pid, "paxos-" + std::to_string(pid), loc) {
    engine_ = std::make_unique<PaxosEngine>(*this, std::move(cfg),
                                            std::make_unique<InMemoryDurableLog>(),
                                            [this](const Value& v) { delivered.push_back(int_of(v)); });
  }

  void start() { engine_->start(); }
  PaxosEngine& engine() { return *engine_; }

  std::vector<std::uint64_t> delivered;

 protected:
  void on_message(const sim::Message& m, sim::ProcessId from) override {
    if (PaxosEngine::handles(m.type)) engine_->handle_message(m, from);
  }
  void on_recover() override {
    delivered.clear();  // verify full replay from the durable log
    engine_->on_recover();
  }

 private:
  std::unique_ptr<PaxosEngine> engine_;
};

class PaxosGroup : public ::testing::Test {
 protected:
  static constexpr int kN = 3;

  sim::Simulator sim;
  std::unique_ptr<sim::Network> net;
  std::vector<std::unique_ptr<PaxosHost>> hosts;

  void SetUp() override {
    sim::Topology topo = sim::Topology::lan();
    topo.set_jitter(0.05);
    net = std::make_unique<sim::Network>(sim, topo, 3);
    GroupConfig cfg;
    for (int i = 0; i < kN; ++i) cfg.members.push_back(static_cast<sim::ProcessId>(i + 1));
    cfg.log_write_latency = sim::usec(200);
    cfg.pipeline_window = 16;  // force batching once 16 instances are open
    for (int i = 0; i < kN; ++i) {
      GroupConfig c = cfg;
      c.self_index = static_cast<std::uint32_t>(i);
      hosts.push_back(std::make_unique<PaxosHost>(*net, static_cast<sim::ProcessId>(i + 1),
                                                  sim::Location{0, static_cast<std::uint16_t>(i)},
                                                  std::move(c)));
    }
    for (auto& h : hosts) h->start();
  }

  void propose_at(int host, std::uint64_t v) { hosts[host]->engine().propose(int_value(v)); }

  /// Asserts that every pair of hosts delivered consistent prefixes.
  void assert_prefix_consistency() {
    for (int a = 0; a < kN; ++a) {
      for (int b = a + 1; b < kN; ++b) {
        const auto& da = hosts[a]->delivered;
        const auto& db = hosts[b]->delivered;
        const std::size_t n = std::min(da.size(), db.size());
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(da[i], db[i]) << "hosts " << a << " and " << b << " diverge at index " << i;
        }
      }
    }
  }
};

TEST_F(PaxosGroup, ElectsLeaderAndDeliversInOrder) {
  sim.run_until(sim::msec(200));
  EXPECT_TRUE(hosts[0]->engine().is_leader()) << "member 0 campaigns at startup";
  for (std::uint64_t v = 1; v <= 5; ++v) propose_at(0, v);
  sim.run_until(sim::sec(1));
  for (auto& h : hosts) {
    ASSERT_EQ(h->delivered.size(), 5u);
    EXPECT_EQ(h->delivered, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  }
}

TEST_F(PaxosGroup, NonLeaderProposalIsForwarded) {
  sim.run_until(sim::msec(200));
  propose_at(2, 42);
  sim.run_until(sim::sec(1));
  for (auto& h : hosts) {
    ASSERT_EQ(h->delivered.size(), 1u);
    EXPECT_EQ(h->delivered[0], 42u);
  }
}

TEST_F(PaxosGroup, ConcurrentProposersStillTotallyOrdered) {
  sim.run_until(sim::msec(200));
  for (std::uint64_t v = 0; v < 30; ++v) propose_at(static_cast<int>(v % 3), 100 + v);
  sim.run_until(sim::sec(2));
  ASSERT_EQ(hosts[0]->delivered.size(), 30u);
  assert_prefix_consistency();
  for (auto& h : hosts) {
    auto sorted = h->delivered;
    std::sort(sorted.begin(), sorted.end());
    std::vector<std::uint64_t> expect;
    for (std::uint64_t v = 0; v < 30; ++v) expect.push_back(100 + v);
    EXPECT_EQ(sorted, expect) << "every proposed value delivered exactly once";
  }
}

TEST_F(PaxosGroup, BatchingPacksValuesIntoFewerInstances) {
  sim.run_until(sim::msec(200));
  for (std::uint64_t v = 0; v < 100; ++v) propose_at(0, v);
  sim.run_until(sim::sec(2));
  EXPECT_EQ(hosts[1]->delivered.size(), 100u);
  EXPECT_LT(hosts[0]->engine().stats().proposed_batches, 40u)
      << "values should batch into fewer Paxos instances";
}

TEST_F(PaxosGroup, LeaderCrashFailsOver) {
  sim.run_until(sim::msec(200));
  for (std::uint64_t v = 1; v <= 3; ++v) propose_at(0, v);
  sim.run_until(sim::msec(400));
  hosts[0]->crash();
  sim.run_until(sim::sec(3));  // member 1's election timeout fires
  EXPECT_TRUE(hosts[1]->engine().is_leader() || hosts[2]->engine().is_leader());
  propose_at(1, 10);
  propose_at(2, 11);
  sim.run_until(sim::sec(6));
  for (int i = 1; i < kN; ++i) {
    EXPECT_EQ(hosts[i]->delivered.size(), 5u) << "host " << i;
  }
  assert_prefix_consistency();
}

TEST_F(PaxosGroup, MinorityCrashKeepsDelivering) {
  sim.run_until(sim::msec(200));
  hosts[2]->crash();
  for (std::uint64_t v = 1; v <= 10; ++v) propose_at(0, v);
  sim.run_until(sim::sec(2));
  EXPECT_EQ(hosts[0]->delivered.size(), 10u);
  EXPECT_EQ(hosts[1]->delivered.size(), 10u);
}

TEST_F(PaxosGroup, MajorityCrashBlocksThenResumesOnRecovery) {
  sim.run_until(sim::msec(200));
  hosts[1]->crash();
  hosts[2]->crash();
  propose_at(0, 7);
  sim.run_until(sim::sec(3));
  EXPECT_TRUE(hosts[0]->delivered.empty()) << "no quorum, nothing may be decided";
  hosts[1]->recover();
  sim.run_until(sim::sec(10));
  EXPECT_EQ(hosts[0]->delivered.size(), 1u) << "decision completes once a quorum is back";
  EXPECT_EQ(hosts[1]->delivered.size(), 1u);
}

TEST_F(PaxosGroup, ToleratesHeavyMessageLoss) {
  net->set_loss_rate(0.2);
  sim.run_until(sim::msec(500));
  for (std::uint64_t v = 1; v <= 20; ++v) propose_at(0, v);
  sim.run_until(sim::sec(20));
  net->set_loss_rate(0.0);
  sim.run_until(sim::sec(30));
  for (auto& h : hosts) {
    EXPECT_EQ(h->delivered.size(), 20u) << "quasi-reliability via resends/catchup";
  }
  assert_prefix_consistency();
}

TEST_F(PaxosGroup, IsolatedReplicaCatchesUpAfterHeal) {
  sim.run_until(sim::msec(200));
  net->isolate(3);
  for (std::uint64_t v = 1; v <= 50; ++v) propose_at(0, v);
  sim.run_until(sim::sec(2));
  EXPECT_TRUE(hosts[2]->delivered.empty());
  net->heal(3);
  sim.run_until(sim::sec(6));
  EXPECT_EQ(hosts[2]->delivered.size(), 50u) << "heartbeat-driven catchup";
  assert_prefix_consistency();
}

TEST_F(PaxosGroup, RecoveryReplaysFromDurableLog) {
  sim.run_until(sim::msec(200));
  for (std::uint64_t v = 1; v <= 10; ++v) propose_at(0, v);
  sim.run_until(sim::sec(1));
  ASSERT_EQ(hosts[2]->delivered.size(), 10u);
  hosts[2]->crash();
  sim.run_until(sim::sec(2));
  hosts[2]->recover();  // clears delivered, then replays
  sim.run_until(sim::sec(4));
  EXPECT_EQ(hosts[2]->delivered.size(), 10u) << "full replay from the durable log";
  assert_prefix_consistency();
}

TEST_F(PaxosGroup, RecoveredReplicaAlsoLearnsNewValues) {
  sim.run_until(sim::msec(200));
  for (std::uint64_t v = 1; v <= 5; ++v) propose_at(0, v);
  sim.run_until(sim::sec(1));
  hosts[2]->crash();
  for (std::uint64_t v = 6; v <= 10; ++v) propose_at(0, v);
  sim.run_until(sim::sec(2));
  hosts[2]->recover();
  sim.run_until(sim::sec(8));
  EXPECT_EQ(hosts[2]->delivered.size(), 10u) << "replay + catchup of missed values";
  assert_prefix_consistency();
}

TEST_F(PaxosGroup, AcceptorPersistsBeforeAcknowledging) {
  sim.run_until(sim::msec(200));
  propose_at(0, 99);
  sim.run_until(sim::sec(1));
  for (auto& h : hosts) {
    EXPECT_GT(h->engine().log().write_count(), 0u);
    EXPECT_TRUE(h->engine().log().load_decided(0).has_value());
  }
}

TEST_F(PaxosGroup, SafetyUnderChurn) {
  // Random loss + repeated leader crashes and recoveries must never cause
  // divergent delivery — the core Paxos safety property.
  net->set_loss_rate(0.1);
  std::uint64_t v = 0;
  for (int round = 0; round < 6; ++round) {
    sim.run_until(sim::sec(2 * round + 1));
    for (int i = 0; i < 5; ++i) propose_at(round % kN, ++v);
    const int victim = round % kN;
    hosts[static_cast<std::size_t>(victim)]->crash();
    sim.run_until(sim::sec(2 * round + 2));
    hosts[static_cast<std::size_t>(victim)]->recover();
  }
  net->set_loss_rate(0);
  sim.run_until(sim::sec(60));
  assert_prefix_consistency();
  // Liveness under eventual quiet: everything proposed while a leader and a
  // quorum were up should be delivered; at minimum the group made progress.
  EXPECT_GT(hosts[0]->delivered.size(), 0u);
}

}  // namespace
}  // namespace sdur::paxos
