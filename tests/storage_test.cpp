// Unit tests for the storage layer: multiversion store and the
// certification commit window.
#include <gtest/gtest.h>

#include "storage/commit_window.h"
#include "storage/mvstore.h"

namespace sdur::storage {
namespace {

TEST(MVStore, SnapshotReadsSeeRightVersion) {
  MVStore s;
  s.load(1, "v0");
  s.put(1, "v5", 5);
  s.put(1, "v9", 9);

  EXPECT_EQ(s.get(1, 0)->value, "v0");
  EXPECT_EQ(s.get(1, 4)->value, "v0");
  EXPECT_EQ(s.get(1, 5)->value, "v5");
  EXPECT_EQ(s.get(1, 8)->value, "v5");
  EXPECT_EQ(s.get(1, 9)->value, "v9");
  EXPECT_EQ(s.get(1, 100)->value, "v9");
  EXPECT_EQ(s.get_latest(1)->version, 9);
}

TEST(MVStore, MissingKey) {
  MVStore s;
  EXPECT_FALSE(s.get(42, 100).has_value());
  EXPECT_FALSE(s.get_latest(42).has_value());
}

TEST(MVStore, SameVersionOverwrites) {
  MVStore s;
  s.put(1, "a", 3);
  s.put(1, "b", 3);
  EXPECT_EQ(s.get(1, 3)->value, "b");
  EXPECT_EQ(s.version_count(), 1u);
}

TEST(MVStore, VersionRegressionThrows) {
  MVStore s;
  s.put(1, "a", 5);
  EXPECT_THROW(s.put(1, "b", 4), std::logic_error);
}

TEST(MVStore, GcKeepsNewestReadableAtHorizon) {
  MVStore s;
  s.put(1, "v1", 1);
  s.put(1, "v5", 5);
  s.put(1, "v9", 9);
  s.gc(6);
  // v5 is the newest version <= 6 and must stay readable; v1 may go.
  EXPECT_EQ(s.get(1, 6)->value, "v5");
  EXPECT_EQ(s.get(1, 100)->value, "v9");
  EXPECT_EQ(s.version_count(), 2u);
  EXPECT_FALSE(s.get(1, 1).has_value()) << "pre-horizon version was collected";
}

TEST(MVStore, TruncateAboveRollsBack) {
  MVStore s;
  s.load(1, "init");
  s.put(1, "v3", 3);
  s.put(2, "only-new", 2);
  s.truncate_above(0);
  EXPECT_EQ(s.get(1, 100)->value, "init");
  EXPECT_FALSE(s.get(2, 100).has_value());
}

TEST(MVStore, VersionsOfExposesOrder) {
  MVStore s;
  s.put(7, "a", 1);
  s.put(7, "b", 2);
  const auto* versions = s.versions_of(7);
  ASSERT_NE(versions, nullptr);
  ASSERT_EQ(versions->size(), 2u);
  EXPECT_EQ((*versions)[0].version, 1);
  EXPECT_EQ((*versions)[1].version, 2);
  EXPECT_EQ(s.versions_of(8), nullptr);
}

CommitRecord rec(std::uint64_t id, std::vector<std::uint64_t> rs, std::vector<std::uint64_t> ws) {
  return CommitRecord{id, false, util::KeySet::exact(std::move(rs)),
                      util::KeySet::exact(std::move(ws))};
}

TEST(CommitWindow, ScanAfterVisitsOnlyNewerCommits) {
  CommitWindow w(10);
  w.push(1, rec(101, {1}, {1}));
  w.push(2, rec(102, {2}, {2}));
  w.push(3, rec(103, {3}, {3}));

  std::vector<std::uint64_t> seen;
  w.scan_after(1, [&](const CommitRecord& r) {
    seen.push_back(r.txid);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{102, 103}));
}

TEST(CommitWindow, ScanStopsEarly) {
  CommitWindow w(10);
  w.push(1, rec(101, {}, {}));
  w.push(2, rec(102, {}, {}));
  int visits = 0;
  const bool complete = w.scan_after(0, [&](const CommitRecord&) {
    ++visits;
    return false;
  });
  EXPECT_FALSE(complete);
  EXPECT_EQ(visits, 1);
}

TEST(CommitWindow, CapacityEvictsOldest) {
  CommitWindow w(3);
  for (Version v = 1; v <= 5; ++v) w.push(v, rec(100 + static_cast<std::uint64_t>(v), {}, {}));
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.oldest(), 3);
  EXPECT_EQ(w.newest(), 5);
}

TEST(CommitWindow, CoversTracksEviction) {
  CommitWindow w(3);
  EXPECT_TRUE(w.covers(0));
  for (Version v = 1; v <= 5; ++v) w.push(v, rec(1, {}, {}));
  EXPECT_TRUE(w.covers(2)) << "commits (2, 5] are all present";
  EXPECT_TRUE(w.covers(4));
  EXPECT_FALSE(w.covers(1)) << "commit at version 2 was evicted";
}

TEST(CommitWindow, NonContiguousPushThrows) {
  CommitWindow w(10);
  w.push(1, rec(1, {}, {}));
  EXPECT_THROW(w.push(3, rec(2, {}, {})), std::logic_error);
}

}  // namespace
}  // namespace sdur::storage
