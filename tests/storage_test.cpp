// Unit tests for the storage layer: multiversion store and the
// certification commit window.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "audit/auditor.h"
#include "storage/commit_window.h"
#include "storage/flat_table.h"
#include "storage/mvstore.h"
#include "util/bytes.h"

namespace sdur::storage {
namespace {

TEST(MVStore, SnapshotReadsSeeRightVersion) {
  MVStore s;
  s.load(1, "v0");
  s.put(1, "v5", 5);
  s.put(1, "v9", 9);

  EXPECT_EQ(s.get(1, 0)->value, "v0");
  EXPECT_EQ(s.get(1, 4)->value, "v0");
  EXPECT_EQ(s.get(1, 5)->value, "v5");
  EXPECT_EQ(s.get(1, 8)->value, "v5");
  EXPECT_EQ(s.get(1, 9)->value, "v9");
  EXPECT_EQ(s.get(1, 100)->value, "v9");
  EXPECT_EQ(s.get_latest(1)->version, 9);
}

TEST(MVStore, MissingKey) {
  MVStore s;
  EXPECT_FALSE(s.get(42, 100).has_value());
  EXPECT_FALSE(s.get_latest(42).has_value());
}

TEST(MVStore, SameVersionOverwrites) {
  MVStore s;
  s.put(1, "a", 3);
  s.put(1, "b", 3);
  EXPECT_EQ(s.get(1, 3)->value, "b");
  EXPECT_EQ(s.version_count(), 1u);
}

TEST(MVStore, VersionRegressionThrows) {
  MVStore s;
  s.put(1, "a", 5);
  EXPECT_THROW(s.put(1, "b", 4), std::logic_error);
}

TEST(MVStore, GcKeepsNewestReadableAtHorizon) {
  MVStore s;
  s.put(1, "v1", 1);
  s.put(1, "v5", 5);
  s.put(1, "v9", 9);
  s.gc(6);
  // v5 is the newest version <= 6 and must stay readable; v1 may go.
  EXPECT_EQ(s.get(1, 6)->value, "v5");
  EXPECT_EQ(s.get(1, 100)->value, "v9");
  EXPECT_EQ(s.version_count(), 2u);
  EXPECT_FALSE(s.get(1, 1).has_value()) << "pre-horizon version was collected";
}

TEST(MVStore, TruncateAboveRollsBack) {
  MVStore s;
  s.load(1, "init");
  s.put(1, "v3", 3);
  s.put(2, "only-new", 2);
  s.truncate_above(0);
  EXPECT_EQ(s.get(1, 100)->value, "init");
  EXPECT_FALSE(s.get(2, 100).has_value());
}

TEST(MVStore, VersionsOfExposesOrder) {
  MVStore s;
  s.put(7, "a", 1);
  s.put(7, "b", 2);
  const auto* versions = s.versions_of(7);
  ASSERT_NE(versions, nullptr);
  ASSERT_EQ(versions->size(), 2u);
  EXPECT_EQ((*versions)[0].version, 1);
  EXPECT_EQ((*versions)[1].version, 2);
  EXPECT_EQ(s.versions_of(8), nullptr);
}

CommitRecord rec(std::uint64_t id, std::vector<std::uint64_t> rs, std::vector<std::uint64_t> ws) {
  return CommitRecord{id, false, util::KeySet::exact(std::move(rs)),
                      util::KeySet::exact(std::move(ws))};
}

TEST(CommitWindow, ScanAfterVisitsOnlyNewerCommits) {
  CommitWindow w(10);
  w.push(1, rec(101, {1}, {1}));
  w.push(2, rec(102, {2}, {2}));
  w.push(3, rec(103, {3}, {3}));

  std::vector<std::uint64_t> seen;
  w.scan_after(1, [&](const CommitRecord& r) {
    seen.push_back(r.txid);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{102, 103}));
}

TEST(CommitWindow, ScanStopsEarly) {
  CommitWindow w(10);
  w.push(1, rec(101, {}, {}));
  w.push(2, rec(102, {}, {}));
  int visits = 0;
  const bool complete = w.scan_after(0, [&](const CommitRecord&) {
    ++visits;
    return false;
  });
  EXPECT_FALSE(complete);
  EXPECT_EQ(visits, 1);
}

TEST(CommitWindow, CapacityEvictsOldest) {
  CommitWindow w(3);
  for (Version v = 1; v <= 5; ++v) w.push(v, rec(100 + static_cast<std::uint64_t>(v), {}, {}));
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.oldest(), 3);
  EXPECT_EQ(w.newest(), 5);
}

TEST(CommitWindow, CoversTracksEviction) {
  CommitWindow w(3);
  EXPECT_TRUE(w.covers(0));
  for (Version v = 1; v <= 5; ++v) w.push(v, rec(1, {}, {}));
  EXPECT_TRUE(w.covers(2)) << "commits (2, 5] are all present";
  EXPECT_TRUE(w.covers(4));
  EXPECT_FALSE(w.covers(1)) << "commit at version 2 was evicted";
}

TEST(CommitWindow, NonContiguousPushThrows) {
  CommitWindow w(10);
  w.push(1, rec(1, {}, {}));
  EXPECT_THROW(w.push(3, rec(2, {}, {})), std::logic_error);
}

// --- Hardened covers()/scan_after() boundaries -------------------------------

TEST(CommitWindow, EmptyWindowCoversEverySnapshot) {
  CommitWindow w(4);
  EXPECT_TRUE(w.covers(0));
  EXPECT_TRUE(w.covers(-1));
  EXPECT_TRUE(w.covers(std::numeric_limits<Version>::max()));
  int visits = 0;
  EXPECT_TRUE(w.scan_after(0, [&](const CommitRecord&) {
    ++visits;
    return true;
  }));
  EXPECT_EQ(visits, 0);
}

TEST(CommitWindow, ExactBaseBoundary) {
  CommitWindow w(3);
  for (Version v = 1; v <= 5; ++v) w.push(v, rec(static_cast<std::uint64_t>(v), {}, {}));
  // Window holds [3, 5]. st == base - 1 == 2 is the oldest coverable
  // snapshot: the scan must visit the whole window, starting at the base.
  ASSERT_EQ(w.oldest(), 3);
  EXPECT_TRUE(w.covers(2));
  std::vector<std::uint64_t> seen;
  w.scan_after(2, [&](const CommitRecord& r) {
    seen.push_back(r.txid);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{3, 4, 5}));
}

TEST(CommitWindow, PredatesWindowIsAnAuditViolation) {
  audit::Auditor::instance().reset();
  CommitWindow w(3);
  for (Version v = 1; v <= 5; ++v) w.push(v, rec(static_cast<std::uint64_t>(v), {}, {}));
  ASSERT_FALSE(w.covers(1));
  ASSERT_TRUE(audit::Auditor::instance().clean());
  // The scan still clamps to the base (callers must check covers() first),
  // but the silent clamp is now an audited precondition violation.
  int visits = 0;
  w.scan_after(1, [&](const CommitRecord&) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 3);
#if SDUR_AUDIT_ON
  EXPECT_FALSE(audit::Auditor::instance().clean());
  ASSERT_EQ(audit::Auditor::instance().violations().size(), 1u);
  EXPECT_EQ(audit::Auditor::instance().violations().front().invariant, "scan-covers-precondition");
#endif
  audit::Auditor::instance().reset();
}

TEST(CommitWindow, MaxSnapshotDoesNotOverflow) {
  CommitWindow w(3);
  for (Version v = 1; v <= 5; ++v) w.push(v, rec(static_cast<std::uint64_t>(v), {}, {}));
  const Version huge = std::numeric_limits<Version>::max();
  // st >= newest: nothing to scan, and st + 1 must never be computed.
  EXPECT_TRUE(w.covers(huge));
  int visits = 0;
  EXPECT_TRUE(w.scan_after(huge, [&](const CommitRecord&) {
    ++visits;
    return true;
  }));
  EXPECT_EQ(visits, 0);
  EXPECT_FALSE(w.conflicts_scan(util::KeySet::exact({1}), util::KeySet::exact({1}), true, huge));
  EXPECT_FALSE(w.conflicts_indexed(util::KeySet::exact({1}), util::KeySet::exact({1}), true, huge));
}

TEST(CommitWindow, ArenaRecyclingKeepsRecordsIntact) {
  // Push far past capacity so every ring slot is recycled repeatedly, then
  // check the surviving records are exactly the newest `capacity` ones.
  CommitWindow w(4);
  for (Version v = 1; v <= 23; ++v) {
    w.push(v, rec(static_cast<std::uint64_t>(100 + v),
                  {static_cast<std::uint64_t>(v)}, {static_cast<std::uint64_t>(v)}));
  }
  EXPECT_EQ(w.size(), 4u);
  EXPECT_EQ(w.oldest(), 20);
  EXPECT_EQ(w.newest(), 23);
  std::vector<std::uint64_t> seen;
  w.scan_after(w.oldest() - 1, [&](const CommitRecord& r) {
    seen.push_back(r.txid);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{120, 121, 122, 123}));
  // The index tracked eviction: only the surviving writers conflict.
  EXPECT_FALSE(w.conflicts(util::KeySet::exact({19}), util::KeySet::exact({}), false, 19));
  EXPECT_TRUE(w.conflicts(util::KeySet::exact({21}), util::KeySet::exact({}), false, 19));
}

// --- FlatTable / VersionChain hot-path structures ----------------------------

TEST(FlatTable, InsertFindEraseAcrossGrowth) {
  FlatTable<int> t;
  for (std::uint64_t k = 0; k < 500; ++k) t[k * 977] = static_cast<int>(k);
  EXPECT_EQ(t.size(), 500u);
  for (std::uint64_t k = 0; k < 500; ++k) {
    const int* v = t.find(k * 977);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, static_cast<int>(k));
  }
  EXPECT_EQ(t.find(12345678901ull), nullptr);
  // Erase every other key; backward-shift deletion must keep the rest
  // reachable through their probe chains.
  for (std::uint64_t k = 0; k < 500; k += 2) EXPECT_TRUE(t.erase(k * 977));
  EXPECT_FALSE(t.erase(977 * 2));  // already gone
  EXPECT_EQ(t.size(), 250u);
  for (std::uint64_t k = 1; k < 500; k += 2) {
    ASSERT_NE(t.find(k * 977), nullptr) << "key " << k * 977 << " lost after neighbor erase";
  }
}

TEST(VersionChain, SpillsPastInlineSlots) {
  MVStore s;
  for (Version v = 1; v <= 6; ++v) {
    s.put(9, "v" + std::to_string(v), v);
  }
  const VersionChain* chain = s.versions_of(9);
  ASSERT_NE(chain, nullptr);
  ASSERT_EQ(chain->size(), 6u) << "inline slots plus spill";
  for (Version v = 1; v <= 6; ++v) {
    EXPECT_EQ(s.get(9, v)->value, "v" + std::to_string(v));
  }
  // GC across the inline/spill boundary.
  s.gc(5);
  EXPECT_EQ(s.get(9, 5)->value, "v5");
  EXPECT_EQ(s.get(9, 6)->value, "v6");
  EXPECT_FALSE(s.get(9, 3).has_value());
  // Truncate back down into the inline region.
  s.truncate_above(5);
  EXPECT_EQ(s.get_latest(9)->value, "v5");
}

TEST(MVStore, EncodeInstallRoundTripsFlatTable) {
  MVStore s;
  for (std::uint64_t k = 0; k < 40; ++k) {
    s.put(k, "a" + std::to_string(k), 1);
    if (k % 3 == 0) s.put(k, "b" + std::to_string(k), 2 + static_cast<Version>(k));
  }
  util::Writer w1;
  s.encode(w1);

  MVStore t;
  t.put(999, "stale", 7);  // install() must fully replace this
  util::Reader r(w1.data());
  t.install(r);
  EXPECT_EQ(t.key_count(), s.key_count());
  EXPECT_EQ(t.version_count(), s.version_count());
  EXPECT_FALSE(t.get_latest(999).has_value());

  // Canonical bytes: re-encoding the installed copy is bit-identical.
  util::Writer w2;
  t.encode(w2);
  EXPECT_EQ(w1.data(), w2.data());
}

}  // namespace
}  // namespace sdur::storage
