
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdur/certifier.cpp" "src/CMakeFiles/sdur_core.dir/sdur/certifier.cpp.o" "gcc" "src/CMakeFiles/sdur_core.dir/sdur/certifier.cpp.o.d"
  "/root/repo/src/sdur/client.cpp" "src/CMakeFiles/sdur_core.dir/sdur/client.cpp.o" "gcc" "src/CMakeFiles/sdur_core.dir/sdur/client.cpp.o.d"
  "/root/repo/src/sdur/deployment.cpp" "src/CMakeFiles/sdur_core.dir/sdur/deployment.cpp.o" "gcc" "src/CMakeFiles/sdur_core.dir/sdur/deployment.cpp.o.d"
  "/root/repo/src/sdur/messages.cpp" "src/CMakeFiles/sdur_core.dir/sdur/messages.cpp.o" "gcc" "src/CMakeFiles/sdur_core.dir/sdur/messages.cpp.o.d"
  "/root/repo/src/sdur/server.cpp" "src/CMakeFiles/sdur_core.dir/sdur/server.cpp.o" "gcc" "src/CMakeFiles/sdur_core.dir/sdur/server.cpp.o.d"
  "/root/repo/src/sdur/transaction.cpp" "src/CMakeFiles/sdur_core.dir/sdur/transaction.cpp.o" "gcc" "src/CMakeFiles/sdur_core.dir/sdur/transaction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sdur_paxos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdur_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdur_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdur_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
