file(REMOVE_RECURSE
  "libsdur_core.a"
)
