file(REMOVE_RECURSE
  "CMakeFiles/sdur_core.dir/sdur/certifier.cpp.o"
  "CMakeFiles/sdur_core.dir/sdur/certifier.cpp.o.d"
  "CMakeFiles/sdur_core.dir/sdur/client.cpp.o"
  "CMakeFiles/sdur_core.dir/sdur/client.cpp.o.d"
  "CMakeFiles/sdur_core.dir/sdur/deployment.cpp.o"
  "CMakeFiles/sdur_core.dir/sdur/deployment.cpp.o.d"
  "CMakeFiles/sdur_core.dir/sdur/messages.cpp.o"
  "CMakeFiles/sdur_core.dir/sdur/messages.cpp.o.d"
  "CMakeFiles/sdur_core.dir/sdur/server.cpp.o"
  "CMakeFiles/sdur_core.dir/sdur/server.cpp.o.d"
  "CMakeFiles/sdur_core.dir/sdur/transaction.cpp.o"
  "CMakeFiles/sdur_core.dir/sdur/transaction.cpp.o.d"
  "libsdur_core.a"
  "libsdur_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdur_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
