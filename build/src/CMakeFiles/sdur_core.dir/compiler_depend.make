# Empty compiler generated dependencies file for sdur_core.
# This may be replaced when dependencies are built.
