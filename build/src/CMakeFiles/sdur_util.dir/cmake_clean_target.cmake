file(REMOVE_RECURSE
  "libsdur_util.a"
)
