# Empty compiler generated dependencies file for sdur_util.
# This may be replaced when dependencies are built.
