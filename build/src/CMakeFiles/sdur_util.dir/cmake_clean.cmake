file(REMOVE_RECURSE
  "CMakeFiles/sdur_util.dir/util/bloom.cpp.o"
  "CMakeFiles/sdur_util.dir/util/bloom.cpp.o.d"
  "CMakeFiles/sdur_util.dir/util/bytes.cpp.o"
  "CMakeFiles/sdur_util.dir/util/bytes.cpp.o.d"
  "CMakeFiles/sdur_util.dir/util/logging.cpp.o"
  "CMakeFiles/sdur_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/sdur_util.dir/util/stats.cpp.o"
  "CMakeFiles/sdur_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/sdur_util.dir/util/zipf.cpp.o"
  "CMakeFiles/sdur_util.dir/util/zipf.cpp.o.d"
  "libsdur_util.a"
  "libsdur_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdur_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
