file(REMOVE_RECURSE
  "libsdur_sim.a"
)
