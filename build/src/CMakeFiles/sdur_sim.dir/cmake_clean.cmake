file(REMOVE_RECURSE
  "CMakeFiles/sdur_sim.dir/sim/network.cpp.o"
  "CMakeFiles/sdur_sim.dir/sim/network.cpp.o.d"
  "CMakeFiles/sdur_sim.dir/sim/process.cpp.o"
  "CMakeFiles/sdur_sim.dir/sim/process.cpp.o.d"
  "CMakeFiles/sdur_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/sdur_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/sdur_sim.dir/sim/topology.cpp.o"
  "CMakeFiles/sdur_sim.dir/sim/topology.cpp.o.d"
  "libsdur_sim.a"
  "libsdur_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdur_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
