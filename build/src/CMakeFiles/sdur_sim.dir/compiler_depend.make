# Empty compiler generated dependencies file for sdur_sim.
# This may be replaced when dependencies are built.
