file(REMOVE_RECURSE
  "libsdur_storage.a"
)
