file(REMOVE_RECURSE
  "CMakeFiles/sdur_storage.dir/storage/commit_window.cpp.o"
  "CMakeFiles/sdur_storage.dir/storage/commit_window.cpp.o.d"
  "CMakeFiles/sdur_storage.dir/storage/mvstore.cpp.o"
  "CMakeFiles/sdur_storage.dir/storage/mvstore.cpp.o.d"
  "libsdur_storage.a"
  "libsdur_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdur_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
