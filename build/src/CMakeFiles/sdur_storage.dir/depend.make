# Empty dependencies file for sdur_storage.
# This may be replaced when dependencies are built.
