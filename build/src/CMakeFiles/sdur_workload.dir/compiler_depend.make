# Empty compiler generated dependencies file for sdur_workload.
# This may be replaced when dependencies are built.
