file(REMOVE_RECURSE
  "libsdur_workload.a"
)
