file(REMOVE_RECURSE
  "CMakeFiles/sdur_workload.dir/workload/driver.cpp.o"
  "CMakeFiles/sdur_workload.dir/workload/driver.cpp.o.d"
  "CMakeFiles/sdur_workload.dir/workload/history.cpp.o"
  "CMakeFiles/sdur_workload.dir/workload/history.cpp.o.d"
  "CMakeFiles/sdur_workload.dir/workload/microbench.cpp.o"
  "CMakeFiles/sdur_workload.dir/workload/microbench.cpp.o.d"
  "CMakeFiles/sdur_workload.dir/workload/social.cpp.o"
  "CMakeFiles/sdur_workload.dir/workload/social.cpp.o.d"
  "CMakeFiles/sdur_workload.dir/workload/ycsb.cpp.o"
  "CMakeFiles/sdur_workload.dir/workload/ycsb.cpp.o.d"
  "libsdur_workload.a"
  "libsdur_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdur_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
