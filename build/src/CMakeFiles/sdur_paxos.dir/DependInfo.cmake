
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paxos/durable_log.cpp" "src/CMakeFiles/sdur_paxos.dir/paxos/durable_log.cpp.o" "gcc" "src/CMakeFiles/sdur_paxos.dir/paxos/durable_log.cpp.o.d"
  "/root/repo/src/paxos/engine.cpp" "src/CMakeFiles/sdur_paxos.dir/paxos/engine.cpp.o" "gcc" "src/CMakeFiles/sdur_paxos.dir/paxos/engine.cpp.o.d"
  "/root/repo/src/paxos/messages.cpp" "src/CMakeFiles/sdur_paxos.dir/paxos/messages.cpp.o" "gcc" "src/CMakeFiles/sdur_paxos.dir/paxos/messages.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sdur_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdur_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
