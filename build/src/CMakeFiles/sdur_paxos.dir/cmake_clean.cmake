file(REMOVE_RECURSE
  "CMakeFiles/sdur_paxos.dir/paxos/durable_log.cpp.o"
  "CMakeFiles/sdur_paxos.dir/paxos/durable_log.cpp.o.d"
  "CMakeFiles/sdur_paxos.dir/paxos/engine.cpp.o"
  "CMakeFiles/sdur_paxos.dir/paxos/engine.cpp.o.d"
  "CMakeFiles/sdur_paxos.dir/paxos/messages.cpp.o"
  "CMakeFiles/sdur_paxos.dir/paxos/messages.cpp.o.d"
  "libsdur_paxos.a"
  "libsdur_paxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdur_paxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
