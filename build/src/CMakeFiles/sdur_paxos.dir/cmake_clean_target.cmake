file(REMOVE_RECURSE
  "libsdur_paxos.a"
)
