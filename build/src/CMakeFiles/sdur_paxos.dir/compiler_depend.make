# Empty compiler generated dependencies file for sdur_paxos.
# This may be replaced when dependencies are built.
