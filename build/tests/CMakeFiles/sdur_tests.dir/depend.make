# Empty dependencies file for sdur_tests.
# This may be replaced when dependencies are built.
