
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/certifier_test.cpp" "tests/CMakeFiles/sdur_tests.dir/certifier_test.cpp.o" "gcc" "tests/CMakeFiles/sdur_tests.dir/certifier_test.cpp.o.d"
  "/root/repo/tests/checkpoint_test.cpp" "tests/CMakeFiles/sdur_tests.dir/checkpoint_test.cpp.o" "gcc" "tests/CMakeFiles/sdur_tests.dir/checkpoint_test.cpp.o.d"
  "/root/repo/tests/client_test.cpp" "tests/CMakeFiles/sdur_tests.dir/client_test.cpp.o" "gcc" "tests/CMakeFiles/sdur_tests.dir/client_test.cpp.o.d"
  "/root/repo/tests/deployment_test.cpp" "tests/CMakeFiles/sdur_tests.dir/deployment_test.cpp.o" "gcc" "tests/CMakeFiles/sdur_tests.dir/deployment_test.cpp.o.d"
  "/root/repo/tests/gossip_test.cpp" "tests/CMakeFiles/sdur_tests.dir/gossip_test.cpp.o" "gcc" "tests/CMakeFiles/sdur_tests.dir/gossip_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/sdur_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/sdur_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/paxos_robustness_test.cpp" "tests/CMakeFiles/sdur_tests.dir/paxos_robustness_test.cpp.o" "gcc" "tests/CMakeFiles/sdur_tests.dir/paxos_robustness_test.cpp.o.d"
  "/root/repo/tests/paxos_test.cpp" "tests/CMakeFiles/sdur_tests.dir/paxos_test.cpp.o" "gcc" "tests/CMakeFiles/sdur_tests.dir/paxos_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/sdur_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/sdur_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/server_test.cpp" "tests/CMakeFiles/sdur_tests.dir/server_test.cpp.o" "gcc" "tests/CMakeFiles/sdur_tests.dir/server_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/sdur_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/sdur_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/storage_test.cpp" "tests/CMakeFiles/sdur_tests.dir/storage_test.cpp.o" "gcc" "tests/CMakeFiles/sdur_tests.dir/storage_test.cpp.o.d"
  "/root/repo/tests/torture_test.cpp" "tests/CMakeFiles/sdur_tests.dir/torture_test.cpp.o" "gcc" "tests/CMakeFiles/sdur_tests.dir/torture_test.cpp.o.d"
  "/root/repo/tests/transaction_test.cpp" "tests/CMakeFiles/sdur_tests.dir/transaction_test.cpp.o" "gcc" "tests/CMakeFiles/sdur_tests.dir/transaction_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/sdur_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/sdur_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/sdur_tests.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/sdur_tests.dir/workload_test.cpp.o.d"
  "/root/repo/tests/ycsb_test.cpp" "tests/CMakeFiles/sdur_tests.dir/ycsb_test.cpp.o" "gcc" "tests/CMakeFiles/sdur_tests.dir/ycsb_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sdur_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdur_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdur_paxos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdur_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdur_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdur_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
