# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sdur_tests[1]_include.cmake")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;27;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_bank_transfer "/root/repo/build/examples/bank_transfer")
set_tests_properties(example_bank_transfer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;28;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_social_network "/root/repo/build/examples/social_network")
set_tests_properties(example_social_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;29;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_geo_deployment "/root/repo/build/examples/geo_deployment")
set_tests_properties(example_geo_deployment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;30;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_smoke "/root/repo/build/tools/sdur_sim" "--deployment" "wan1" "--workload" "micro" "--global-pct" "5" "--clients" "16" "--seconds" "2")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;31;add_test;/root/repo/tests/CMakeLists.txt;0;")
