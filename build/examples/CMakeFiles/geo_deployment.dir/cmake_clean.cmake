file(REMOVE_RECURSE
  "CMakeFiles/geo_deployment.dir/geo_deployment.cpp.o"
  "CMakeFiles/geo_deployment.dir/geo_deployment.cpp.o.d"
  "geo_deployment"
  "geo_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
