# Empty dependencies file for fig6_social.
# This may be replaced when dependencies are built.
