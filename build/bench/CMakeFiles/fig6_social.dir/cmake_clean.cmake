file(REMOVE_RECURSE
  "CMakeFiles/fig6_social.dir/fig6_social.cpp.o"
  "CMakeFiles/fig6_social.dir/fig6_social.cpp.o.d"
  "fig6_social"
  "fig6_social.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
