
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig1_latency_model.cpp" "bench/CMakeFiles/fig1_latency_model.dir/fig1_latency_model.cpp.o" "gcc" "bench/CMakeFiles/fig1_latency_model.dir/fig1_latency_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sdur_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdur_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdur_paxos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdur_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdur_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sdur_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
