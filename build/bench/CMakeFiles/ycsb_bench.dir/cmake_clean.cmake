file(REMOVE_RECURSE
  "CMakeFiles/ycsb_bench.dir/ycsb_bench.cpp.o"
  "CMakeFiles/ycsb_bench.dir/ycsb_bench.cpp.o.d"
  "ycsb_bench"
  "ycsb_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
