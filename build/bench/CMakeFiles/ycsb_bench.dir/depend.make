# Empty dependencies file for ycsb_bench.
# This may be replaced when dependencies are built.
