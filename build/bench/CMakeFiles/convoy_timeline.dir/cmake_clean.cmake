file(REMOVE_RECURSE
  "CMakeFiles/convoy_timeline.dir/convoy_timeline.cpp.o"
  "CMakeFiles/convoy_timeline.dir/convoy_timeline.cpp.o.d"
  "convoy_timeline"
  "convoy_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convoy_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
