# Empty compiler generated dependencies file for convoy_timeline.
# This may be replaced when dependencies are built.
