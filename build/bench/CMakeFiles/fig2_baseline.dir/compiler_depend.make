# Empty compiler generated dependencies file for fig2_baseline.
# This may be replaced when dependencies are built.
