# Empty compiler generated dependencies file for fig4_reorder_wan1.
# This may be replaced when dependencies are built.
