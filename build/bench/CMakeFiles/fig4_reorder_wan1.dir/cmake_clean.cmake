file(REMOVE_RECURSE
  "CMakeFiles/fig4_reorder_wan1.dir/fig4_reorder_wan1.cpp.o"
  "CMakeFiles/fig4_reorder_wan1.dir/fig4_reorder_wan1.cpp.o.d"
  "fig4_reorder_wan1"
  "fig4_reorder_wan1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_reorder_wan1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
