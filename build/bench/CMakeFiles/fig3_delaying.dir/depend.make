# Empty dependencies file for fig3_delaying.
# This may be replaced when dependencies are built.
