file(REMOVE_RECURSE
  "CMakeFiles/fig3_delaying.dir/fig3_delaying.cpp.o"
  "CMakeFiles/fig3_delaying.dir/fig3_delaying.cpp.o.d"
  "fig3_delaying"
  "fig3_delaying.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_delaying.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
