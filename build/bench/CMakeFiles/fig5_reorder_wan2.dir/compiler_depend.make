# Empty compiler generated dependencies file for fig5_reorder_wan2.
# This may be replaced when dependencies are built.
