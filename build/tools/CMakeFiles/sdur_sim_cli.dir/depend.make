# Empty dependencies file for sdur_sim_cli.
# This may be replaced when dependencies are built.
