file(REMOVE_RECURSE
  "CMakeFiles/sdur_sim_cli.dir/sdur_sim.cpp.o"
  "CMakeFiles/sdur_sim_cli.dir/sdur_sim.cpp.o.d"
  "sdur_sim"
  "sdur_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdur_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
