#!/bin/bash
out=/root/repo/bench_output.txt
json_dir=/root/repo/bench_json
mkdir -p "$json_dir"
# Figure benches write machine-readable BENCH_<name>.json rows here
# (see BenchReport in bench/common.h).
export SDUR_BENCH_JSON_DIR="$json_dir"
: > "$out"
for b in /root/repo/build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "### $name ###" >> "$out"
  args=()
  case "$name" in
    # google-benchmark binary: use its native JSON reporter.
    micro_components)
      args=(--benchmark_out="$json_dir/BENCH_micro_components.json" --benchmark_out_format=json)
      ;;
  esac
  start=$SECONDS
  "$b" "${args[@]}" >> "$out" 2>&1
  echo "[wall $((SECONDS-start))s]" >> "$out"
  echo >> "$out"
done
echo "ALL-BENCHES-DONE" >> "$out"
