#!/bin/bash
# Usage: run_benches.sh [bench-name ...]
# With no arguments, runs every binary in build/bench/. With arguments,
# runs only the named benches (basenames, e.g. `run_benches.sh
# harness_perf cert_perf`) — handy for seeding the perf trajectory with
# the hot-path benches without paying for the full figure suite.
out=/root/repo/bench_output.txt
json_dir=/root/repo/bench_json
mkdir -p "$json_dir"
# Figure benches write machine-readable BENCH_<name>.json rows here
# (see BenchReport in bench/common.h).
export SDUR_BENCH_JSON_DIR="$json_dir"
: > "$out"
for b in /root/repo/build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name=$(basename "$b")
  if [ "$#" -gt 0 ]; then
    wanted=0
    for want in "$@"; do
      [ "$name" = "$want" ] && wanted=1
    done
    [ "$wanted" = 1 ] || continue
  fi
  echo "### $name ###" >> "$out"
  args=()
  case "$name" in
    # google-benchmark binary: use its native JSON reporter.
    micro_components)
      args=(--benchmark_out="$json_dir/BENCH_micro_components.json" --benchmark_out_format=json)
      ;;
  esac
  start=$SECONDS
  "$b" "${args[@]}" >> "$out" 2>&1
  echo "[wall $((SECONDS-start))s]" >> "$out"
  echo >> "$out"
done
# Fold this run's BENCH_*.json into bench_json/TRAJECTORY.json, keyed by
# commit SHA, so perf numbers accumulate across PRs into one time series.
# A filtered run folds only the selected benches (stale BENCH files from
# other binaries must not be re-attributed to this commit).
SDUR_BENCH_FILTER="$*" python3 - "$json_dir" <<'PY' >> "$out" 2>&1
import json, os, pathlib, subprocess, sys

json_dir = pathlib.Path(sys.argv[1])
try:
    sha = subprocess.run(["git", "-C", "/root/repo", "rev-parse", "HEAD"],
                         capture_output=True, text=True, check=True).stdout.strip()
except Exception:
    sha = "unknown"

traj_path = json_dir / "TRAJECTORY.json"
trajectory = {}
if traj_path.exists():
    try:
        trajectory = json.loads(traj_path.read_text())
    except json.JSONDecodeError:
        print(f"TRAJECTORY.json unreadable; starting fresh")

selected = set(os.environ.get("SDUR_BENCH_FILTER", "").split())
# Report names that differ from their binary's basename (the filter is
# given binary names on the command line).
aliases = {"trace_breakdown": "latency_breakdown",
           "vote_batching": "ablation_vote_batching",
           "convoy_bypass": "ablation_convoy_bypass"}
entry = trajectory.get(sha, {})
for f in sorted(json_dir.glob("BENCH_*.json")):
    name = f.stem.removeprefix("BENCH_")
    if selected and name not in selected and aliases.get(name) not in selected:
        continue
    try:
        entry[name] = json.loads(f.read_text())
    except json.JSONDecodeError as e:
        print(f"skipping {f.name}: {e}")

trajectory[sha] = entry
traj_path.write_text(json.dumps(trajectory, indent=1, sort_keys=True) + "\n")
print(f"TRAJECTORY.json: {len(entry)} bench report(s) recorded under {sha[:12]}")
PY
echo "ALL-BENCHES-DONE" >> "$out"
