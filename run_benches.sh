#!/bin/bash
out=/root/repo/bench_output.txt
: > "$out"
for b in /root/repo/build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "### $(basename "$b") ###" >> "$out"
  start=$SECONDS
  "$b" >> "$out" 2>&1
  echo "[wall $((SECONDS-start))s]" >> "$out"
  echo >> "$out"
done
echo "ALL-BENCHES-DONE" >> "$out"
