// Wall-clock performance harness for the simulation fabric.
//
// Unlike the figure benches (which report *simulated* throughput/latency),
// this harness measures how fast the host machine chews through the
// simulation itself: events/sec and messages/sec of real time, plus the
// fabric's host-side copy counters (sim/fabric_stats.h). It is the yard-
// stick for fabric optimizations — every run of every other experiment in
// this repo is bounded by these numbers.
//
// Two sections:
//   fabric_storm  A broadcast storm on bare sim::Process actors: one hub
//                 fans a payload out to every spoke each simulated tick.
//                 Pure fan-out — isolates message copy + event-loop cost
//                 from protocol logic.
//   sdur_e2e      A message-heavy SDUR deployment (2 partitions, wide
//                 writesets, 30% globals) driven by closed-loop clients.
//                 The realistic mix: Paxos broadcast, vote fan-out,
//                 certification, timers.
//
// Results are printed and written to BENCH_harness_perf.json via the
// shared reporter. `--smoke` runs a seconds-scale version for CTest.
//
// Determinism note: all *simulated* results remain a pure function of the
// seed; only the wall-clock figures vary between hosts/runs.
#include <chrono>
#include <cinttypes>
#include <cstring>

#include "common.h"
#include "sim/fabric_stats.h"

namespace sdur::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct FabricMetrics {
  const char* section;
  double wall_sec = 0;
  std::uint64_t events = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_sent = 0;
  sim::FabricCounters counters;
};

void report_metrics(const FabricMetrics& m) {
  const double events_per_sec = static_cast<double>(m.events) / m.wall_sec;
  const double msgs_per_sec = static_cast<double>(m.messages_sent) / m.wall_sec;
  std::printf(
      "  %-12s wall=%6.2fs  events=%10" PRIu64 " (%10.0f/s)  msgs=%9" PRIu64
      " (%9.0f/s)\n"
      "  %-12s payload deep-copies=%" PRIu64 " (%.1f MB)  shares=%" PRIu64
      "  fn inline=%" PRIu64 "  fn heap=%" PRIu64 "\n",
      m.section, m.wall_sec, m.events, events_per_sec, m.messages_sent, msgs_per_sec, "",
      m.counters.payload_deep_copies,
      static_cast<double>(m.counters.payload_bytes_copied) / 1e6, m.counters.payload_shares,
      m.counters.fn_inline, m.counters.fn_heap_allocs);
  if (auto* rep = report()) {
    rep->row()
        .str("section", m.section)
        .num("wall_sec", m.wall_sec)
        .num("events", static_cast<double>(m.events))
        .num("events_per_sec", events_per_sec)
        .num("messages_sent", static_cast<double>(m.messages_sent))
        .num("messages_per_sec", msgs_per_sec)
        .num("bytes_sent", static_cast<double>(m.bytes_sent))
        .num("payload_deep_copies", static_cast<double>(m.counters.payload_deep_copies))
        .num("payload_bytes_copied", static_cast<double>(m.counters.payload_bytes_copied))
        .num("payload_shares", static_cast<double>(m.counters.payload_shares))
        .num("fn_inline", static_cast<double>(m.counters.fn_inline))
        .num("fn_heap_allocs", static_cast<double>(m.counters.fn_heap_allocs));
  }
}

// --- Section 1: broadcast storm on bare processes ----------------------------

/// Counts received bytes; the hub below fans out to these.
class Spoke : public sim::Process {
 public:
  Spoke(sim::Network& net, sim::ProcessId id, sim::Location loc)
      : Process(net, id, "spoke", loc) {}
  std::uint64_t received = 0;

 protected:
  void on_message(const sim::Message& m, sim::ProcessId) override {
    received += m.payload.size();
  }
};

/// Broadcasts one payload to every spoke per tick — the same encode-once /
/// send-n-times shape as PaxosEngine::broadcast and vote fan-out.
class Hub : public sim::Process {
 public:
  Hub(sim::Network& net, sim::ProcessId id, sim::Location loc,
      std::vector<sim::ProcessId> peers, std::size_t payload_size, sim::Time period,
      sim::Time horizon)
      : Process(net, id, "hub", loc),
        peers_(std::move(peers)),
        payload_size_(payload_size),
        period_(period),
        horizon_(horizon) {}

  void start() { tick(); }

 protected:
  void on_message(const sim::Message&, sim::ProcessId) override {}

 private:
  void tick() {
    util::Writer w(payload_size_);
    for (std::size_t i = 0; i < payload_size_; ++i) {
      w.u8(static_cast<std::uint8_t>(i ^ static_cast<std::size_t>(ticks_)));
    }
    const sim::Message m{60, std::move(w)};
    for (sim::ProcessId p : peers_) send(p, m);
    ++ticks_;
    if (now() < horizon_) set_timer(period_, [this] { tick(); });
  }

  std::vector<sim::ProcessId> peers_;
  std::size_t payload_size_;
  sim::Time period_;
  sim::Time horizon_;
  std::uint64_t ticks_ = 0;
};

FabricMetrics run_storm(std::uint32_t spokes, std::size_t payload_size, sim::Time horizon) {
  sim::Simulator sim;
  sim::Topology topo = sim::Topology::ec2_three_regions();
  topo.set_jitter(0.05);
  sim::Network net(sim, topo, /*seed=*/11);

  std::vector<std::unique_ptr<Spoke>> procs;
  std::vector<sim::ProcessId> ids;
  for (std::uint32_t i = 0; i < spokes; ++i) {
    const sim::ProcessId pid = 2 + i;
    procs.push_back(std::make_unique<Spoke>(
        net, pid, sim::Location{sim::kEU, static_cast<std::uint16_t>(i % 3)}));
    ids.push_back(pid);
  }
  Hub hub(net, 1, sim::Location{sim::kEU, 0}, ids, payload_size, sim::usec(100), horizon);

  sim::fabric_counters().reset();
  const auto t0 = Clock::now();
  hub.start();
  sim.run();
  FabricMetrics m;
  m.section = "fabric_storm";
  m.wall_sec = seconds_since(t0);
  m.events = sim.events_processed();
  m.messages_sent = net.stats().messages_sent;
  m.messages_delivered = net.stats().messages_delivered;
  m.bytes_sent = net.stats().bytes_sent;
  m.counters = sim::fabric_counters();
  return m;
}

// --- Section 2: message-heavy SDUR deployment --------------------------------

FabricMetrics run_e2e(std::uint32_t clients, sim::Time measure) {
  MicroSetup s;
  s.kind = DeploymentSpec::Kind::kLan;  // dense event stream, high msg rate
  s.partitions = 2;
  s.global_fraction = 0.3;  // vote fan-out between partitions
  s.items_per_partition = 20'000;
  s.seed = 5;

  MicroConfig mc;
  mc.items_per_partition = s.items_per_partition;
  mc.global_fraction = s.global_fraction;
  mc.value_size = 256;  // wide writesets: payload cost matters
  mc.ops_per_txn = 8;
  MicroWorkload wl(mc);
  auto dep = make_micro_deployment(s);

  workload::RunConfig cfg;
  cfg.clients = clients;
  cfg.seed = 5;
  cfg.settle = sim::msec(1200);
  cfg.warmup = sim::msec(500);
  cfg.measure = measure;

  sim::fabric_counters().reset();
  const auto t0 = Clock::now();
  const RunResult r = workload::run_experiment(*dep, wl, cfg);
  FabricMetrics m;
  m.section = "sdur_e2e";
  m.wall_sec = seconds_since(t0);
  m.events = dep->simulator().events_processed();
  m.messages_sent = dep->network().stats().messages_sent;
  m.messages_delivered = dep->network().stats().messages_delivered;
  m.bytes_sent = dep->network().stats().bytes_sent;
  m.counters = sim::fabric_counters();
  std::printf("  %-12s sim tput=%.0f tps (sanity: committed work was done)\n", "",
              r.throughput());
  if (auto* rep = report()) rep->row().str("section", "sdur_e2e_sim").num("tput_tps", r.throughput());
  return m;
}

}  // namespace
}  // namespace sdur::bench

int main(int argc, char** argv) {
  using namespace sdur::bench;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  auto& rep = report_open("harness_perf");
  (void)rep;

  // Plain banner, not print_header(): the rows here carry their own
  // "section" key and must not inherit the report-wide one too.
  std::printf("\n==== Fabric wall-clock harness (host performance, not simulated) ====\n");
  {
    // 16-way fan-out, 1 KB payloads, one broadcast per 100 simulated us.
    const sdur::sim::Time horizon = smoke ? sdur::sim::msec(200) : sdur::sim::sec(4);
    report_metrics(run_storm(/*spokes=*/16, /*payload_size=*/1024, horizon));
  }
  {
    const sdur::sim::Time measure = smoke ? sdur::sim::msec(300) : sdur::sim::sec(4);
    const std::uint32_t clients = smoke ? 16 : 96;
    report_metrics(run_e2e(clients, measure));
  }
  return 0;
}
