// Figure 2: baseline SDUR in the WAN 1 and WAN 2 deployments.
//
// For each deployment and global-transaction mix {0%, 1%, 10%, 50%}:
// throughput, 99th-percentile and average latency of local and global
// transactions (bars and diamonds in the paper), plus latency CDFs for the
// 0% and 10% mixes.
//
// Expected shape (paper Section VI-B): in WAN 1, adding just 1% globals
// inflates local p99 by ~10x (321 ms vs 32.6 ms in the paper), partially
// recovering at 10%/50%; WAN 2 locals already pay the inter-region quorum
// (~170 ms) so globals hurt them far less.
#include "common.h"

using namespace sdur;
using namespace sdur::bench;

int main() {
  report_open("fig2_baseline");
  const double mixes[] = {0.0, 0.01, 0.10, 0.50};

  for (auto kind : {DeploymentSpec::Kind::kWan1, DeploymentSpec::Kind::kWan2}) {
    const char* name = kind == DeploymentSpec::Kind::kWan1 ? "WAN 1" : "WAN 2";
    print_header(std::string("Figure 2 — baseline SDUR, ") + name);

    for (double mix : mixes) {
      MicroSetup setup;
      setup.kind = kind;
      setup.global_fraction = mix;
      const std::uint32_t clients = find_clients(setup);
      const RunResult r = run_micro(setup, clients);

      std::printf("\n%s, %2.0f%% globals (%u clients):\n", name, mix * 100, clients);
      print_class_row("local transactions", r, "local");
      if (mix > 0) print_class_row("global transactions", r, "global");
      if (mix == 0.0 || mix == 0.10) {
        print_cdf(mix == 0.0 ? "locals in 0%" : "locals in 10%", r, "local");
        if (mix > 0) print_cdf("globals in 10%", r, "global");
      }
    }
  }
  return 0;
}
