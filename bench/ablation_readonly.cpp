// Ablation: read-only transaction modes (paper Section III-A).
//
// "Transactions that read from multiple partitions must either be
//  certified at termination to check the consistency of snapshots or
//  request a globally-consistent snapshot upon start; globally-consistent
//  snapshots, however, may observe an outdated database since they are
//  built asynchronously by servers."
//
// This bench quantifies the tradeoff on the social network's timeline
// operation (a multi-partition read): gossip snapshots never abort but are
// built asynchronously; certified read-only transactions see fresh data
// but pay the termination protocol and can abort.
#include "common.h"

using namespace sdur;
using namespace sdur::bench;

namespace {

void run_mode(const char* label, bool certified) {
  SocialConfig sc;
  sc.users_per_partition = 5'000;
  sc.certified_timeline = certified;

  DeploymentSpec spec;
  spec.kind = DeploymentSpec::Kind::kWan1;
  spec.partitions = 2;
  spec.partitioning = SocialWorkload::make_partitioning(2);
  Deployment dep(spec);
  SocialWorkload wl(sc);
  const RunResult r = workload::run_experiment(dep, wl, final_config(128));

  const auto& tl = r.classes.at("timeline");
  const double abort_pct = tl.committed + tl.aborted == 0
                               ? 0.0
                               : 100.0 * static_cast<double>(tl.aborted) /
                                     static_cast<double>(tl.committed + tl.aborted);
  std::printf("  %-26s tput=%8.0f tps   p99=%8.1f ms   avg=%7.1f ms   aborts=%llu (%.2f%%)\n",
              label, r.throughput("timeline"), static_cast<double>(r.p99("timeline")) / 1000.0,
              static_cast<double>(r.mean("timeline")) / 1000.0,
              static_cast<unsigned long long>(tl.aborted), abort_pct);
  if (auto* rep = report()) {
    rep->row()
        .str("label", label)
        .num("tput_tps", r.throughput("timeline"))
        .num("p99_ms", static_cast<double>(r.p99("timeline")) / 1000.0)
        .num("avg_ms", static_cast<double>(r.mean("timeline")) / 1000.0)
        .num("abort_pct", abort_pct);
  }
}

}  // namespace

int main() {
  report_open("ablation_readonly");
  print_header("Ablation — read-only timeline: gossip snapshot vs certified (WAN 1)");
  run_mode("gossip snapshot (paper)", false);
  run_mode("certified at termination", true);
  std::printf(
      "\n  (gossip timelines never abort and avoid the termination protocol;\n"
      "   certified timelines see the freshest data but pay certification\n"
      "   and cross-partition votes, and can abort)\n");
  return 0;
}
