// Out-of-order local commit ablation (see DESIGN.md "Out-of-order local
// commit"): measures the convoy effect of Section IV-C and how much of it
// the conflict-gated bypass recovers. With reordering disabled, every
// global transaction at the head of the pending window stalls the locals
// delivered behind it for the cross-region vote round trip; the bypass
// lets a delivered local certify and commit immediately whenever its
// read/write sets are disjoint from every pending write set, so only
// genuinely conflicting locals keep paying the wait.
//
// The sweep runs each partition-count / global-mix cell twice (bypass off
// vs on) on WAN 1 with reorder_threshold = 0 — the configuration where the
// convoy is purest — and reports for every arm
//   - committed throughput,
//   - the locals' commit_wait stage mean from the trace breakdown (ready
//     -> completed: time spent queued behind pending globals),
//   - local / global end-to-end latency means,
//   - how many locals actually bypassed pending entries vs parked behind
//     a write conflict (server counters).
//
// Flags:
//   --smoke   reduced sweep; used by the ablation_convoy_bypass_smoke
//             ctest entry. In both modes the binary exits non-zero when
//             the acceptance bar breaks: at 2 partitions / 20% globals the
//             bypass must shrink the locals' commit_wait stage mean by
//             >= 3x without raising the global end-to-end mean by more
//             than 10% (with trace compiled out, only the bypass-counter
//             bar applies).
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common.h"
#include "trace/export.h"
#include "trace/trace.h"

using namespace sdur;
using namespace sdur::bench;

namespace {

struct ArmResult {
  double tput = 0;
  double local_commit_wait_ms = -1;  // local-class stage mean; -1 = not attributed
  double local_e2e_ms = -1;
  double global_e2e_ms = -1;
  std::uint64_t local_chains = 0;
  std::uint64_t bypassed = 0;
  std::uint64_t parked = 0;
};

std::size_t commit_wait_stage() {
  for (std::size_t s = 0; s < trace::Breakdown::kStages; ++s) {
    if (std::string_view(trace::Breakdown::stage_name(s)) == "commit_wait") return s;
  }
  return trace::Breakdown::kStages;  // unreachable: the stage table names it
}

ArmResult run_arm(const MicroSetup& setup, std::uint32_t clients, std::size_t ring) {
#if SDUR_TRACE
  auto& tracer = trace::Tracer::instance();
  tracer.reset();
  tracer.set_ring_capacity(ring);
  tracer.set_enabled(true);
#else
  (void)ring;
#endif
  const RunResult r = run_micro(setup, clients);
  ArmResult out;
  out.tput = r.throughput();
  out.bypassed = r.servers.bypassed_locals;
  out.parked = r.servers.parked_locals;
#if SDUR_TRACE
  tracer.set_enabled(false);
  const trace::Breakdown b = trace::build_breakdown(tracer);
  tracer.reset();  // free the ring before the next arm
  out.local_chains = b.local.chains;
  if (b.local.chains > 0) {
    out.local_commit_wait_ms = b.local.stage[commit_wait_stage()].mean() / 1000.0;
    out.local_e2e_ms = b.local.e2e.mean() / 1000.0;
  }
  if (b.global.chains > 0) out.global_e2e_ms = b.global.e2e.mean() / 1000.0;
#endif
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") smoke = true;
  }
  auto& rep = report_open("convoy_bypass");
  print_header("Out-of-order local commit ablation (WAN 1, reordering off)");

  const std::vector<PartitionId> partition_counts =
      smoke ? std::vector<PartitionId>{2} : std::vector<PartitionId>{2, 4};
  const std::vector<double> global_fractions =
      smoke ? std::vector<double>{0.2} : std::vector<double>{0.1, 0.2};
  const std::uint32_t base_clients = smoke ? 32 : 64;
  const std::size_t ring = smoke ? (1u << 18) : (1u << 20);

  bool ok = true;
  for (PartitionId parts : partition_counts) {
    for (double gf : global_fractions) {
      const std::uint32_t clients = base_clients * parts / 2;
      std::printf("\n%u partitions, %.0f%% global, %u clients:\n", parts, gf * 100, clients);
      ArmResult off;
      for (const bool bypass : {false, true}) {
        MicroSetup setup;
        setup.kind = DeploymentSpec::Kind::kWan1;
        setup.partitions = parts;
        setup.global_fraction = gf;
        setup.items_per_partition = 20'000;
        setup.techniques.reorder_threshold = 0;
        setup.techniques.ooo_bypass = bypass;
        const ArmResult r = run_arm(setup, clients, ring);

        std::printf(
            "  %-8s tput=%8.0f tps  local commit_wait=%8.2f ms  local e2e=%7.1f ms  "
            "global e2e=%7.1f ms  bypassed=%7llu  parked=%6llu\n",
            bypass ? "bypass" : "off", r.tput, r.local_commit_wait_ms, r.local_e2e_ms,
            r.global_e2e_ms, static_cast<unsigned long long>(r.bypassed),
            static_cast<unsigned long long>(r.parked));
        rep.row()
            .str("label", bypass ? "bypass" : "off")
            .num("partitions", parts)
            .num("global_fraction", gf)
            .num("clients", clients)
            .num("tput_tps", r.tput)
            .num("local_commit_wait_ms", r.local_commit_wait_ms)
            .num("local_e2e_ms", r.local_e2e_ms)
            .num("global_e2e_ms", r.global_e2e_ms)
            .num("bypassed_locals", static_cast<double>(r.bypassed))
            .num("parked_locals", static_cast<double>(r.parked));

        if (!bypass) {
          off = r;
          continue;
        }
        // Acceptance bar, checked at the headline cell (2 partitions /
        // 20% globals): the bypass must recover the convoy — locals'
        // commit_wait mean shrinks >= 3x — without pushing the global
        // end-to-end mean up by more than 10%. Other cells are reported
        // but not gated (the convoy shrinks with the global mix).
        if (parts != 2 || gf != 0.2) continue;
        if (r.bypassed == 0) {
          std::fprintf(stderr,
                       "ablation_convoy_bypass: bypass arm at %u partitions / %.0f%% globals "
                       "committed no local out of order — the convoy scenario never arose\n",
                       parts, gf * 100);
          ok = false;
        }
        const bool attributed = off.local_commit_wait_ms > 0 && r.local_commit_wait_ms >= 0;
        if (attributed && r.local_commit_wait_ms > off.local_commit_wait_ms / 3.0) {
          std::fprintf(stderr,
                       "ablation_convoy_bypass: locals' commit_wait only moved %.2f -> %.2f ms "
                       "at %u partitions / %.0f%% globals (bar: >= 3x shrink)\n",
                       off.local_commit_wait_ms, r.local_commit_wait_ms, parts, gf * 100);
          ok = false;
        }
        const bool global_attributed = off.global_e2e_ms > 0 && r.global_e2e_ms > 0;
        if (global_attributed && r.global_e2e_ms > off.global_e2e_ms * 1.10) {
          std::fprintf(stderr,
                       "ablation_convoy_bypass: global e2e mean rose %.1f -> %.1f ms at "
                       "%u partitions / %.0f%% globals (bar: <= +10%%)\n",
                       off.global_e2e_ms, r.global_e2e_ms, parts, gf * 100);
          ok = false;
        }
      }
    }
  }

  // Contended cell: small keyspace + Zipf skew, where write conflicts are
  // common and most locals park instead of bypassing — the bypass's
  // worst case. Reported (and recorded in the JSON) but not gated: the
  // point is to show the technique degrades gracefully, not to win.
  print_header("Contended cell (Zipf 0.99, 2k items/partition)");
  {
    const std::uint32_t clients = smoke ? 24 : 48;
    std::printf("\n2 partitions, 20%% global, Zipf 0.99, %u clients:\n", clients);
    for (const bool bypass : {false, true}) {
      MicroSetup setup;
      setup.kind = DeploymentSpec::Kind::kWan1;
      setup.partitions = 2;
      setup.global_fraction = 0.2;
      setup.items_per_partition = 2'000;
      setup.zipf = 0.99;
      setup.techniques.reorder_threshold = 0;
      setup.techniques.ooo_bypass = bypass;
      const ArmResult r = run_arm(setup, clients, ring);
      std::printf(
          "  %-8s tput=%8.0f tps  local commit_wait=%8.2f ms  local e2e=%7.1f ms  "
          "global e2e=%7.1f ms  bypassed=%7llu  parked=%6llu\n",
          bypass ? "bypass" : "off", r.tput, r.local_commit_wait_ms, r.local_e2e_ms,
          r.global_e2e_ms, static_cast<unsigned long long>(r.bypassed),
          static_cast<unsigned long long>(r.parked));
      rep.row()
          .str("label", bypass ? "bypass-zipf" : "off-zipf")
          .num("partitions", 2)
          .num("global_fraction", 0.2)
          .num("zipf", 0.99)
          .num("clients", clients)
          .num("tput_tps", r.tput)
          .num("local_commit_wait_ms", r.local_commit_wait_ms)
          .num("local_e2e_ms", r.local_e2e_ms)
          .num("global_e2e_ms", r.global_e2e_ms)
          .num("bypassed_locals", static_cast<double>(r.bypassed))
          .num("parked_locals", static_cast<double>(r.parked));
    }
  }
  return ok ? 0 : 1;
}
