// Figure 4: reordering in WAN 1.
//
// For global mixes {1%, 10%, 50%} and reorder thresholds R in {baseline,
// 80, 160, 320}, throughput and latency of local and global transactions
// at comparable load.
//
// Expected shape (paper Section VI-D): reordering reduces local p99
// substantially for all mixes (48% / 58% / 69% in the paper) and also
// trims global p99 somewhat (28% / 15% / 12%).
#include "common.h"

using namespace sdur;
using namespace sdur::bench;

int main() {
  report_open("fig4_reorder_wan1");
  const double mixes[] = {0.01, 0.10, 0.50};
  const std::uint32_t thresholds[] = {0, 80, 160, 320};

  print_header("Figure 4 — reordering transactions, WAN 1");

  for (double mix : mixes) {
    MicroSetup base;
    base.kind = DeploymentSpec::Kind::kWan1;
    base.global_fraction = mix;
    const std::uint32_t clients = find_clients(base);

    const RunResult baseline = run_micro(base, clients);
    const double target = baseline.throughput();
    std::printf("\n%2.0f%% globals (~%.0f tps held constant):\n", mix * 100, target);
    for (std::uint32_t threshold : thresholds) {
      MicroSetup setup = base;
      setup.techniques.reorder_threshold = threshold;
      const RunResult r = threshold == 0 ? baseline : run_micro_matched(setup, clients, target);
      char label[64];
      std::snprintf(label, sizeof(label), "%s / locals",
                    threshold == 0 ? "baseline" : ("R=" + std::to_string(threshold)).c_str());
      print_class_row(label, r, "local");
      std::snprintf(label, sizeof(label), "         globals");
      print_class_row(label, r, "global");
      if (threshold > 0) {
        std::printf("  %-28s reordered=%llu of %llu local commits\n", "",
                    static_cast<unsigned long long>(r.servers.reordered),
                    static_cast<unsigned long long>(r.servers.committed_local));
      }
    }
  }
  return 0;
}
