// Figure 6: the Twitter-like social network application in WAN 1 and
// WAN 2, baseline vs. reordering (R=70 in WAN 1, R=20 in WAN 2).
//
// Mix: 85% timeline (global read-only), 7.5% post (local update), 7.5%
// follow (update; global with 50% probability). Reported per operation:
// throughput and p99/average latency.
//
// Expected shape (paper Section VI-E): in WAN 1 reordering improves
// timeline/post/follow p99 by ~67-71% and global follow by ~12%; in WAN 2
// timeline improves ~55%, post/follow ~20%, global follow is unchanged.
#include "common.h"

using namespace sdur;
using namespace sdur::bench;

namespace {

std::unique_ptr<Deployment> make_social_dep(DeploymentSpec::Kind kind, std::uint32_t threshold) {
  DeploymentSpec spec;
  spec.kind = kind;
  spec.partitions = 2;
  spec.partitioning = SocialWorkload::make_partitioning(2);
  spec.server.reorder_threshold = threshold;
  return std::make_unique<Deployment>(spec);
}

}  // namespace

int main() {
  report_open("fig6_social");
  SocialConfig sc;
  sc.users_per_partition = 20'000;  // paper: 100k/partition; see DESIGN.md

  struct Config {
    DeploymentSpec::Kind kind;
    const char* name;
    std::uint32_t threshold;
  };
  const Config configs[] = {
      {DeploymentSpec::Kind::kWan1, "WAN 1", 70},
      {DeploymentSpec::Kind::kWan2, "WAN 2", 20},
  };

  for (const Config& c : configs) {
    print_header(std::string("Figure 6 — social network, ") + c.name);

    const std::uint32_t clients = workload::find_operating_point(
        [&] { return make_social_dep(c.kind, 0); },
        [&] { return std::make_unique<SocialWorkload>(sc); }, probe_config(), 0.75, 8, 2048);

    double target_tput = 0;
    for (std::uint32_t threshold : {0u, c.threshold}) {
      // Hold the offered load constant across the comparison (paper
      // methodology): adjust clients until total throughput matches the
      // baseline's.
      std::uint32_t n = clients;
      RunResult r = [&] {
        auto dep = make_social_dep(c.kind, threshold);
        SocialWorkload wl(sc);
        return workload::run_experiment(*dep, wl, final_config(n));
      }();
      if (threshold == 0) {
        target_tput = r.throughput();
      } else {
        for (int attempt = 0; attempt < 2; ++attempt) {
          const double tput = r.throughput();
          if (tput <= 0 || std::abs(tput - target_tput) / target_tput < 0.05) break;
          n = std::max<std::uint32_t>(
              1, static_cast<std::uint32_t>(static_cast<double>(n) * target_tput / tput));
          auto dep = make_social_dep(c.kind, threshold);
          SocialWorkload wl(sc);
          r = workload::run_experiment(*dep, wl, final_config(n));
        }
      }

      std::printf("\n%s, %s (%u clients, total %.0f tps):\n", c.name,
                  threshold == 0 ? "baseline" : ("reordering R=" + std::to_string(threshold)).c_str(),
                  n, r.throughput());
      print_class_row("timeline (global RO)", r, "timeline");
      print_class_row("post (local)", r, "post");
      print_class_row("follow (local)", r, "follow");
      print_class_row("follow (global)", r, "follow_global");
    }
  }
  return 0;
}
