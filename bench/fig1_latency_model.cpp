// Figure 1: latency model of the two geo-distributed deployments.
//
// Measures unloaded transaction latencies and compares them to the paper's
// analytic model (delta = intra-region delay, Delta = inter-region delay,
// here EU <-> US-EAST = 45 ms one-way):
//
//                      WAN 1         WAN 2
//   remote reads       2 delta       2 delta
//   local commit       4 delta       2 delta + 2 Delta
//   global commit      4 delta + 2 Delta   3 delta + 3 Delta
//   datacenter failure tolerated     tolerated
//   region failure     not tolerated tolerated
//
// The fault-tolerance rows are demonstrated by actually crashing a region.
#include <cstdio>

#include "common.h"
#include "sdur/deployment.h"
#include "sdur/partitioning.h"

using namespace sdur;
using namespace sdur::bench;

namespace {

struct Probe {
  std::unique_ptr<Deployment> dep;
  Client* client = nullptr;

  explicit Probe(DeploymentSpec::Kind kind) {
    DeploymentSpec spec;
    spec.kind = kind;
    spec.partitions = 2;
    spec.partitioning = std::make_shared<RangePartitioning>(2, 1000);
    spec.log_write_latency = sim::usec(50);  // isolate message delays
    spec.jitter = 0.0;
    dep = std::make_unique<Deployment>(spec);
    for (Key k = 0; k < 10; ++k) dep->load(k, "a");
    for (Key k = 1000; k < 1010; ++k) dep->load(k, "b");
    dep->start();
    client = &dep->add_client(0);
    dep->run_until(sim::msec(1500));  // leaders elected, system quiet
  }

  void run_for(sim::Time t) { dep->run_until(dep->simulator().now() + t); }

  /// One read-modify-write over `keys`; returns commit latency (us).
  sim::Time timed_update(std::vector<Key> keys) {
    sim::Time begin = 0, end = 0;
    client->begin();
    begin = client->now();
    client->read_many(keys, [&, keys](auto) {
      for (Key k : keys) client->write(k, "x");
      client->commit([&](Outcome o) {
        if (o == Outcome::kCommit) end = client->now();
      });
    });
    run_for(sim::sec(10));
    return end == 0 ? -1 : end - begin;
  }

  /// Latency of a single remote read (key in the other partition).
  sim::Time timed_remote_read() {
    sim::Time begin = 0, end = 0;
    client->begin();
    begin = client->now();
    client->read(1001, [&](bool, const std::string&) { end = client->now(); });
    run_for(sim::sec(5));
    return end - begin;
  }

  /// True if a local transaction on partition `p` commits within 5s after
  /// every server in `region` crashed.
  bool survives_region_failure(std::uint16_t region) {
    for (Server* s : dep->servers()) {
      if (dep->network().topology().location(s->self()).region == region) s->crash();
    }
    const sim::Time lat = timed_update({1, 2});
    return lat >= 0;
  }
};

void row(const char* name, double measured_ms, double model_ms) {
  std::printf("  %-22s measured %8.1f ms   model %8.1f ms\n", name, measured_ms, model_ms);
  if (auto* rep = report()) {
    rep->row().str("label", name).num("measured_ms", measured_ms).num("model_ms", model_ms);
  }
}

}  // namespace

int main() {
  report_open("fig1_latency_model");
  const double delta = 1.0;   // intra-region one-way (ms)
  const double Delta = 45.0;  // EU <-> US-EAST one-way (ms)

  std::printf("==== Figure 1: deployment latency model (delta=%.0fms, Delta=%.0fms) ====\n", delta,
              Delta);

  {
    Probe wan1(DeploymentSpec::Kind::kWan1);
    std::printf("\nWAN 1 (majority per partition in its home region):\n");
    row("remote read", sim::to_ms(wan1.timed_remote_read()), 2 * delta);
    row("local termination", sim::to_ms(wan1.timed_update({1, 2})), 4 * delta);
    row("global termination", sim::to_ms(wan1.timed_update({1, 1001})), 4 * delta + 2 * Delta);
  }
  {
    Probe wan2(DeploymentSpec::Kind::kWan2);
    std::printf("\nWAN 2 (one replica per region):\n");
    row("remote read", sim::to_ms(wan2.timed_remote_read()), 2 * delta);
    row("local termination", sim::to_ms(wan2.timed_update({1, 2})), 2 * delta + 2 * Delta);
    row("global termination", sim::to_ms(wan2.timed_update({1, 1001})), 3 * delta + 3 * Delta);
  }

  std::printf("\nFault tolerance (crash every server in one region, then commit):\n");
  {
    Probe wan1(DeploymentSpec::Kind::kWan1);
    const bool ok = wan1.survives_region_failure(sim::kEU);
    std::printf("  WAN 1, region failure:  %s (paper: not tolerated)\n",
                ok ? "SURVIVED (unexpected!)" : "blocked as expected");
  }
  {
    Probe wan2(DeploymentSpec::Kind::kWan2);
    const bool ok = wan2.survives_region_failure(sim::kUSWest);
    std::printf("  WAN 2, region failure:  %s (paper: tolerated)\n",
                ok ? "survived as expected" : "BLOCKED (unexpected!)");
  }
  {
    Probe wan1(DeploymentSpec::Kind::kWan1);
    wan1.dep->server(0, 1).crash();  // one datacenter of P1's home region
    const bool ok = wan1.timed_update({1, 2}) >= 0;
    std::printf("  WAN 1, datacenter failure: %s (paper: tolerated)\n",
                ok ? "survived as expected" : "BLOCKED (unexpected!)");
  }
  return 0;
}
