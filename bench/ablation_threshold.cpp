// Ablation: reorder-threshold sensitivity (paper Section IV-E: "the
// reordering threshold must be carefully chosen: a value that is too high
// ... might introduce unnecessary delays for global transactions").
//
// WAN 1, 10% globals, sweeping R from 0 (baseline) to 640 at constant
// load. Expected shape: local p99 falls quickly then flattens; global p99
// starts rising once the threshold forces globals to wait for deliveries
// that the workload cannot supply fast enough.
#include "common.h"

using namespace sdur;
using namespace sdur::bench;

int main() {
  auto& rep = report_open("ablation_threshold");
  print_header("Ablation — reorder threshold sweep (WAN 1, 10% globals)");

  MicroSetup base;
  base.kind = DeploymentSpec::Kind::kWan1;
  base.global_fraction = 0.10;
  const std::uint32_t clients = find_clients(base);
  std::printf("(constant load: %u clients)\n", clients);

  for (std::uint32_t threshold : {0u, 20u, 40u, 80u, 160u, 320u, 640u}) {
    MicroSetup setup = base;
    setup.techniques.reorder_threshold = threshold;
    const RunResult r = run_micro(setup, clients);
    std::printf(
        "  R=%4u: local p99=%8.1f ms avg=%7.1f ms | global p99=%8.1f ms avg=%7.1f ms | "
        "reordered=%llu ticks=%llu\n",
        threshold, static_cast<double>(r.p99("local")) / 1000.0,
        static_cast<double>(r.mean("local")) / 1000.0,
        static_cast<double>(r.p99("global")) / 1000.0,
        static_cast<double>(r.mean("global")) / 1000.0,
        static_cast<unsigned long long>(r.servers.reordered),
        static_cast<unsigned long long>(r.servers.ticks_sent));
    rep.row()
        .num("threshold", threshold)
        .num("p99_local_ms", static_cast<double>(r.p99("local")) / 1000.0)
        .num("avg_local_ms", static_cast<double>(r.mean("local")) / 1000.0)
        .num("p99_global_ms", static_cast<double>(r.p99("global")) / 1000.0)
        .num("avg_global_ms", static_cast<double>(r.mean("global")) / 1000.0)
        .num("reordered", static_cast<double>(r.servers.reordered))
        .num("ticks_sent", static_cast<double>(r.servers.ticks_sent));
  }
  return 0;
}
