// YCSB-style workloads on SDUR (extension beyond the paper's evaluation):
// the standard A/B/C mixes over a Zipf-skewed keyspace, on the LAN and
// WAN 1 deployments. Single-key reads commit locally from a snapshot;
// updates go through certification.
#include "common.h"
#include "workload/ycsb.h"

using namespace sdur;
using namespace sdur::bench;
using workload::YcsbConfig;
using workload::YcsbWorkload;

namespace {

void run_mix(DeploymentSpec::Kind kind, const char* kind_name, YcsbConfig::Mix mix) {
  YcsbConfig yc;
  yc.mix = mix;
  yc.records_per_partition = 50'000;

  DeploymentSpec spec;
  spec.kind = kind;
  spec.partitions = 2;
  spec.partitioning = YcsbWorkload::make_partitioning(2, yc.records_per_partition);
  Deployment dep(spec);
  YcsbWorkload wl(yc);
  const RunResult r = workload::run_experiment(dep, wl, final_config(128));

  const double update_aborts =
      static_cast<double>(r.classes.count("update") ? r.classes.at("update").aborted : 0);
  std::printf("  %-6s %-14s total=%8.0f ops/s   read p99=%7.1f ms   update p99=%7.1f ms   "
              "update aborts=%.0f\n",
              kind_name, YcsbConfig::mix_name(mix), r.throughput(),
              static_cast<double>(r.p99("read")) / 1000.0,
              static_cast<double>(r.p99("update")) / 1000.0, update_aborts);
  if (auto* rep = report()) {
    rep->row()
        .str("deployment", kind_name)
        .str("mix", YcsbConfig::mix_name(mix))
        .num("tput_ops", r.throughput())
        .num("p99_read_ms", static_cast<double>(r.p99("read")) / 1000.0)
        .num("p99_update_ms", static_cast<double>(r.p99("update")) / 1000.0)
        .num("update_aborts", update_aborts);
  }
}

}  // namespace

int main() {
  report_open("ycsb_bench");
  print_header("YCSB-style mixes (Zipf 0.99, 2 partitions, 128 clients)");
  for (auto mix : {YcsbConfig::Mix::kA, YcsbConfig::Mix::kB, YcsbConfig::Mix::kC}) {
    run_mix(DeploymentSpec::Kind::kLan, "LAN", mix);
  }
  for (auto mix : {YcsbConfig::Mix::kA, YcsbConfig::Mix::kB, YcsbConfig::Mix::kC}) {
    run_mix(DeploymentSpec::Kind::kWan1, "WAN 1", mix);
  }
  return 0;
}
