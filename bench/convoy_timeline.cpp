// Convoy-effect timeline (visualizes Section IV-C): per-100ms maximum
// local-transaction latency in WAN 1 with 1% globals. In the baseline,
// every global transaction drags the locals delivered behind it up to the
// cross-region vote latency — visible as periodic spikes; with reordering
// the spikes collapse.
#include "common.h"

using namespace sdur;
using namespace sdur::bench;

namespace {

void run_case(const char* label, std::uint32_t threshold) {
  MicroSetup setup;
  setup.kind = DeploymentSpec::Kind::kWan1;
  setup.global_fraction = 0.01;
  setup.techniques.reorder_threshold = threshold;

  MicroConfig mc;
  mc.items_per_partition = setup.items_per_partition;
  mc.global_fraction = setup.global_fraction;
  MicroWorkload wl(mc);
  auto dep = make_micro_deployment(setup);
  RunConfig cfg = final_config(100);  // light load: isolate the convoy, not queueing
  cfg.timeline_bucket = sim::msec(100);
  const RunResult r = workload::run_experiment(*dep, wl, cfg);

  std::printf("\n%s (local p99 %.1f ms, avg %.1f ms). Max local latency per 100ms window:\n",
              label, static_cast<double>(r.p99("local")) / 1000.0,
              static_cast<double>(r.mean("local")) / 1000.0);
  auto it = r.timelines.find("local");
  if (it == r.timelines.end()) return;
  // Render ASCII sparklines: one char per window (~13ms per level).
  const char* ramp = " .:-=+*#%@";
  std::string avg_line, max_line;
  double worst_sum = 0;
  for (const auto& b : it->second) {
    const double avg_ms = b.count == 0 ? 0 : b.sum / static_cast<double>(b.count) / 1000.0;
    const double max_ms = static_cast<double>(b.max) / 1000.0;
    avg_line += ramp[std::min(9, static_cast<int>(avg_ms / 13.0))];
    max_line += ramp[std::min(9, static_cast<int>(max_ms / 13.0))];
    worst_sum += max_ms;
  }
  std::printf("  avg [%s]\n  max [%s]\n  mean of per-window max: %.1f ms\n", avg_line.c_str(),
              max_line.c_str(), worst_sum / static_cast<double>(it->second.size()));
  if (auto* rep = report()) {
    rep->row()
        .str("label", label)
        .num("threshold", threshold)
        .num("p99_local_ms", static_cast<double>(r.p99("local")) / 1000.0)
        .num("avg_local_ms", static_cast<double>(r.mean("local")) / 1000.0)
        .num("mean_window_max_ms", worst_sum / static_cast<double>(it->second.size()));
  }
}

}  // namespace

int main() {
  report_open("convoy_timeline");
  print_header("Convoy timeline — WAN 1, 1% globals, light load");
  run_case("baseline (locals stuck behind globals)", 0);
  run_case("reordering R=160", 160);
  return 0;
}
