// Ablation: contention sensitivity.
//
// The paper's microbenchmark draws keys uniformly from a large keyspace,
// so certification aborts are rare. This bench sweeps key skew (Zipf
// theta) and keyspace size to show how optimistic certification degrades
// under contention — the fundamental cost of deferred update replication's
// lock-free execution phase.
#include "common.h"

using namespace sdur;
using namespace sdur::bench;

namespace {

void run_case(std::uint64_t items, double theta) {
  DeploymentSpec spec;
  spec.kind = DeploymentSpec::Kind::kLan;
  spec.partitions = 2;
  spec.partitioning = MicroWorkload::make_partitioning(2, items);

  MicroConfig mc;
  mc.items_per_partition = items;
  mc.global_fraction = 0.1;
  mc.zipf_theta = theta;
  MicroWorkload wl(mc);
  Deployment dep(spec);
  const RunResult r = workload::run_experiment(dep, wl, final_config(128));

  std::uint64_t committed = 0, aborted = 0;
  for (const auto& [cls, st] : r.classes) {
    committed += st.committed;
    aborted += st.aborted;
  }
  const double abort_pct =
      committed + aborted == 0
          ? 0.0
          : 100.0 * static_cast<double>(aborted) / static_cast<double>(committed + aborted);
  std::printf("  items/partition=%7llu theta=%.2f: %8.0f tps   abort rate=%6.2f%%\n",
              static_cast<unsigned long long>(items), theta, r.throughput(), abort_pct);
  if (auto* rep = report()) {
    rep->row()
        .num("items_per_partition", static_cast<double>(items))
        .num("zipf_theta", theta)
        .num("tput_tps", r.throughput())
        .num("abort_pct", abort_pct);
  }
}

}  // namespace

int main() {
  report_open("ablation_contention");
  print_header("Ablation — contention: keyspace size and Zipf skew (LAN, 10% globals)");
  run_case(100'000, 0.0);
  run_case(100'000, 0.8);
  run_case(100'000, 0.99);
  run_case(1'000, 0.0);
  run_case(1'000, 0.99);
  run_case(100, 0.0);
  return 0;
}
