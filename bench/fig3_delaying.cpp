// Figure 3: the transaction-delaying technique in WAN 1.
//
// For global mixes {1%, 10%, 50%} and delays D in {baseline, 20, 40, 60}
// ms, throughput and latency of local and global transactions, holding the
// offered load constant across delay settings (paper Section VI-C).
//
// Expected shape: delaying helps local latency mainly at 1% globals
// (321 -> ~232 ms p99 in the paper) and brings little at 10%/50%.
#include "common.h"

using namespace sdur;
using namespace sdur::bench;

int main() {
  report_open("fig3_delaying");
  const double mixes[] = {0.01, 0.10, 0.50};
  const sim::Time delays[] = {0, sim::msec(20), sim::msec(40), sim::msec(60)};

  print_header("Figure 3 — delaying transactions, WAN 1");

  for (double mix : mixes) {
    MicroSetup base;
    base.kind = DeploymentSpec::Kind::kWan1;
    base.global_fraction = mix;
    // One load search per mix, reused for every delay setting so the local
    // throughput stays approximately constant across configurations.
    const std::uint32_t clients = find_clients(base);

    const RunResult baseline = run_micro(base, clients);
    const double target = baseline.throughput();
    std::printf("\n%2.0f%% globals (~%.0f tps held constant):\n", mix * 100, target);
    for (sim::Time d : delays) {
      MicroSetup setup = base;
      setup.techniques.delaying_enabled = d > 0;
      setup.techniques.fixed_delay = d;
      const RunResult r = d == 0 ? baseline : run_micro_matched(setup, clients, target);
      char label[64];
      if (d == 0) {
        std::snprintf(label, sizeof(label), "baseline / locals");
      } else {
        std::snprintf(label, sizeof(label), "D=%lld ms / locals", static_cast<long long>(d / 1000));
      }
      print_class_row(label, r, "local");
      std::snprintf(label, sizeof(label), "%s globals", d == 0 ? "baseline /" : "        /");
      print_class_row(label, r, "global");
    }
  }
  return 0;
}
