// Ablation: bloom-filter certification (paper Section V).
//
// The prototype ships readsets as bloom filters and keeps committed
// records as filters, trading a small false-positive abort rate for
// bandwidth. The saving depends on readset size: tiny readsets (the
// 2-item microbenchmark) fit in fewer bytes exactly, while larger
// readsets compress well. This bench quantifies wire bytes per committed
// transaction and the abort rate for both representations at two readset
// sizes.
#include "common.h"

using namespace sdur;
using namespace sdur::bench;

namespace {

void run_case(bool bloom, std::size_t ops) {
  DeploymentSpec spec;
  spec.kind = DeploymentSpec::Kind::kWan1;
  spec.partitions = 2;
  const std::uint64_t items = 100'000;
  spec.partitioning = MicroWorkload::make_partitioning(2, items);
  spec.server.bloom_readsets = bloom;

  MicroConfig mc;
  mc.items_per_partition = items;
  mc.global_fraction = 0.10;
  mc.ops_per_txn = ops;
  MicroWorkload wl(mc);
  Deployment dep(spec);
  const RunResult r = workload::run_experiment(dep, wl, final_config(64));

  const std::uint64_t committed = r.servers.committed_local + r.servers.committed_global;
  const double bytes_per_commit =
      committed == 0 ? 0 : static_cast<double>(r.net.bytes_sent) / static_cast<double>(committed);
  const std::uint64_t aborted = r.servers.aborted;
  const double abort_pct =
      committed + aborted == 0
          ? 0.0
          : 100.0 * static_cast<double>(aborted) / static_cast<double>(committed + aborted);
  std::printf("  %-7s readsets, %2zu ops/txn: tput=%7.0f tps   wire=%7.0f B/commit   "
              "aborts=%.3f%%\n",
              bloom ? "bloom" : "exact", ops, r.throughput(), bytes_per_commit, abort_pct);
  if (auto* rep = report()) {
    rep->row()
        .str("readsets", bloom ? "bloom" : "exact")
        .num("ops_per_txn", static_cast<double>(ops))
        .num("tput_tps", r.throughput())
        .num("wire_bytes_per_commit", bytes_per_commit)
        .num("abort_pct", abort_pct);
  }
}

}  // namespace

int main() {
  report_open("ablation_bloom");
  print_header("Ablation — exact vs. bloom-filter certification (WAN 1, 10% globals)");
  run_case(false, 2);
  run_case(true, 2);
  run_case(false, 16);
  run_case(true, 16);
  std::printf(
      "\n  (bloom mode ships only filter bits for readsets; the abort column\n"
      "   includes bloom false positives — the paper's 'small amount of\n"
      "   transactions aborted due to false positives')\n");
  return 0;
}
