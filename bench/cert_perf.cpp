// Certification microbench: indexed conflict checks vs the legacy window
// scan.
//
// The certifier answers "does transaction t conflict with any commit in
// (t.st, SC]?" once per delivered transaction. The legacy strategy scans
// every window record; the indexed strategy (storage/cert_index.h) probes
// a per-key last-writer/last-reader table — O(|rs| + |ws|) regardless of
// window depth. This bench times both strategies on the same CommitWindow
// through its public conflicts_scan() / conflicts_indexed() split (both
// audit-free, so the numbers are meaningful even in SDUR_AUDIT builds,
// where conflicts() itself re-runs the scan as a cross-check).
//
// Sweeps window depth x set size x readset encoding (exact / bloom) x
// local / global. Probe transactions use snapshot = window base - 1 (the
// worst case: the scan walks the entire window) and keys disjoint from
// the record keys (no early exit; index probes miss). Bloom rows keep the
// protocol's shape — record AND probe readsets bloom-encoded — which
// forces the documented fallback: reads still scan, but global
// write-vs-reader checks walk only the bloom suffix.
//
// Rows go to BENCH_cert_perf.json. `--smoke` (CTest: cert_perf_smoke)
// shrinks the sweep and cross-validates every probe's verdict between the
// two strategies (and conflicts()) before timing anything.
#include <chrono>
#include <cinttypes>
#include <cstring>
#include <random>

#include "common.h"
#include "storage/commit_window.h"

namespace sdur::bench {
namespace {

using storage::CommitRecord;
using storage::CommitWindow;
using storage::Version;
using Clock = std::chrono::steady_clock;

struct Probe {
  util::KeySet rs;
  util::KeySet ws;
};

std::vector<std::uint64_t> draw_keys(std::mt19937_64& rng, std::size_t n,
                                     std::uint64_t base, std::uint64_t space) {
  std::uniform_int_distribution<std::uint64_t> d(0, space - 1);
  std::vector<std::uint64_t> ks(n);
  for (auto& k : ks) k = base + d(rng);
  return ks;
}

/// Fills `w` with `depth` records of `set_size`-key read/write sets.
/// Writesets stay exact (they always are in the protocol); readsets are
/// bloom-encoded when `bloom` is set, mirroring server bloom_readsets.
void fill_window(CommitWindow& w, std::size_t depth, std::size_t set_size, bool bloom,
                 std::mt19937_64& rng) {
  constexpr std::uint64_t kRecordSpace = 1u << 20;
  for (std::size_t i = 0; i < depth; ++i) {
    CommitRecord rec;
    rec.txid = i + 1;
    const auto rk = draw_keys(rng, set_size, 0, kRecordSpace);
    rec.readset = bloom ? util::KeySet::bloom(rk) : util::KeySet::exact(rk);
    rec.writeset = util::KeySet::exact(draw_keys(rng, set_size, 0, kRecordSpace));
    w.push(static_cast<Version>(i + 1), std::move(rec));
  }
}

/// Probe sets live in a key range disjoint from the records, so the scan
/// pays full depth and index probes miss — the worst case for both.
std::vector<Probe> make_probes(std::size_t n, std::size_t set_size, bool bloom,
                               std::mt19937_64& rng) {
  constexpr std::uint64_t kProbeBase = 1ull << 32;
  std::vector<Probe> out(n);
  for (Probe& p : out) {
    const auto rk = draw_keys(rng, set_size, kProbeBase, 1u << 20);
    p.rs = bloom ? util::KeySet::bloom(rk) : util::KeySet::exact(rk);
    p.ws = util::KeySet::exact(draw_keys(rng, set_size, kProbeBase, 1u << 20));
  }
  return out;
}

/// Runs `fn(probe)` over the probe set until `min_wall_sec` elapsed;
/// returns nanoseconds per call. `sink` defeats dead-code elimination.
template <typename Fn>
double time_probes(const std::vector<Probe>& probes, double min_wall_sec, Fn&& fn) {
  std::uint64_t calls = 0;
  std::uint64_t sink = 0;
  const auto t0 = Clock::now();
  double elapsed = 0;
  do {
    for (const Probe& p : probes) sink += fn(p) ? 1 : 0;
    calls += probes.size();
    elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  } while (elapsed < min_wall_sec);
  if (sink == ~0ull) std::printf("impossible\n");
  return elapsed * 1e9 / static_cast<double>(calls);
}

struct SweepPoint {
  std::size_t depth;
  std::size_t set_size;
  bool bloom;
  bool global;
};

int run_point(const SweepPoint& s, bool smoke) {
  std::mt19937_64 rng(0x5EED ^ (s.depth * 31 + s.set_size * 7 + (s.bloom ? 2 : 0) +
                                (s.global ? 1 : 0)));
  CommitWindow w(s.depth);
  fill_window(w, s.depth, s.set_size, s.bloom, rng);
  const Version st = w.oldest() - 1;  // full-depth scans

  // Verdict cross-validation on probes that CAN conflict (shared key
  // space), plus the disjoint timing probes. Any divergence is a bug the
  // equivalence tests should have caught; fail loudly here too.
  std::mt19937_64 vrng(7);
  for (int i = 0; i < (smoke ? 400 : 50); ++i) {
    const auto rk = draw_keys(vrng, s.set_size, 0, 1u << 20);
    Probe p;
    p.rs = s.bloom ? util::KeySet::bloom(rk) : util::KeySet::exact(rk);
    p.ws = util::KeySet::exact(draw_keys(vrng, s.set_size, 0, 1u << 20));
    std::uniform_int_distribution<Version> st_dist(w.oldest() - 1, w.newest());
    const Version vst = st_dist(vrng);
    const bool scan = w.conflicts_scan(p.rs, p.ws, s.global, vst);
    const bool indexed = w.conflicts_indexed(p.rs, p.ws, s.global, vst);
    if (scan != indexed || w.conflicts(p.rs, p.ws, s.global, vst) != scan) {
      std::fprintf(stderr,
                   "cert_perf: VERDICT MISMATCH depth=%zu set=%zu bloom=%d global=%d st=%" PRId64
                   " scan=%d indexed=%d\n",
                   s.depth, s.set_size, s.bloom, s.global, vst, scan, indexed);
      return 1;
    }
  }

  const auto probes = make_probes(smoke ? 64 : 256, s.set_size, s.bloom, rng);
  const double budget = smoke ? 0.01 : 0.12 * bench_scale() / 0.5;
  const double scan_ns = time_probes(probes, budget, [&](const Probe& p) {
    return w.conflicts_scan(p.rs, p.ws, s.global, st);
  });
  const double index_ns = time_probes(probes, budget, [&](const Probe& p) {
    return w.conflicts_indexed(p.rs, p.ws, s.global, st);
  });
  const double speedup = scan_ns / index_ns;

  std::printf("  depth=%6zu set=%2zu %-5s %-6s scan=%9.0f ns  index=%8.0f ns  speedup=%7.1fx\n",
              s.depth, s.set_size, s.bloom ? "bloom" : "exact", s.global ? "global" : "local",
              scan_ns, index_ns, speedup);
  if (auto* rep = report()) {
    rep->row()
        .num("depth", static_cast<double>(s.depth))
        .num("set_size", static_cast<double>(s.set_size))
        .str("mode", s.bloom ? "bloom" : "exact")
        .str("txn", s.global ? "global" : "local")
        .num("scan_ns", scan_ns)
        .num("index_ns", index_ns)
        .num("speedup", speedup);
  }
  return 0;
}

}  // namespace
}  // namespace sdur::bench

int main(int argc, char** argv) {
  using namespace sdur::bench;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  auto& rep = report_open("cert_perf");
  (void)rep;

  std::printf("\n==== Certification conflict check: window scan vs key index ====\n");
  const std::vector<std::size_t> depths =
      smoke ? std::vector<std::size_t>{64, 512} : std::vector<std::size_t>{64, 256, 1024, 4096, 16384};
  const std::vector<std::size_t> set_sizes = smoke ? std::vector<std::size_t>{8} : std::vector<std::size_t>{4, 16};
  int rc = 0;
  for (const bool bloom : {false, true}) {
    print_header(bloom ? "bloom readsets" : "exact readsets");
    for (const std::size_t depth : depths) {
      for (const std::size_t set_size : set_sizes) {
        for (const bool global : {false, true}) {
          rc |= run_point(SweepPoint{depth, set_size, bloom, global}, smoke);
        }
      }
    }
  }
  if (rc == 0) std::printf("\nall verdicts cross-validated (indexed == scan == conflicts)\n");
  return rc;
}
