// Shared helpers for the figure-reproduction benches.
//
// Every bench binary reproduces one table/figure from the paper's
// evaluation (Section VI). All of them follow the paper's methodology:
// closed-loop clients, results reported at ~75% of the saturation
// throughput (found by a probe-run search once per deployment/mix and
// reused across technique settings, matching "controlling the load to
// keep the throughput approximately constant").
//
// Durations scale with the SDUR_BENCH_SCALE environment variable
// (default 1.0; smaller = faster, noisier).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "workload/driver.h"
#include "workload/microbench.h"
#include "workload/social.h"

namespace sdur::bench {

using workload::MicroConfig;
using workload::MicroWorkload;
using workload::RunConfig;
using workload::RunResult;
using workload::SocialConfig;
using workload::SocialWorkload;

inline double bench_scale() {
  if (const char* env = std::getenv("SDUR_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.01) return v;
  }
  // Default tuned so the full figure suite finishes in tens of minutes on
  // one core; raise for tighter percentiles.
  return 0.5;
}

inline sim::Time scaled(sim::Time t) {
  return static_cast<sim::Time>(static_cast<double>(t) * bench_scale());
}

/// Knobs a figure sweeps over.
struct MicroSetup {
  DeploymentSpec::Kind kind = DeploymentSpec::Kind::kWan1;
  PartitionId partitions = 2;
  double global_fraction = 0.1;
  std::uint64_t items_per_partition = 100'000;
  std::uint32_t reorder_threshold = 0;
  bool delaying = false;
  sim::Time fixed_delay = 0;
  bool bloom = false;
  std::uint64_t seed = 1;
};

inline std::unique_ptr<Deployment> make_micro_deployment(const MicroSetup& s) {
  DeploymentSpec spec;
  spec.kind = s.kind;
  spec.partitions = s.partitions;
  spec.partitioning = MicroWorkload::make_partitioning(s.partitions, s.items_per_partition);
  spec.server.reorder_threshold = s.reorder_threshold;
  spec.server.delaying_enabled = s.delaying;
  spec.server.fixed_delay = s.fixed_delay;
  spec.server.bloom_readsets = s.bloom;
  spec.seed = s.seed;
  return std::make_unique<Deployment>(spec);
}

inline RunConfig probe_config() {
  RunConfig cfg;
  cfg.settle = sim::msec(1200);
  cfg.warmup = scaled(sim::sec(1));
  cfg.measure = scaled(sim::sec(4));
  return cfg;
}

inline RunConfig final_config(std::uint32_t clients) {
  RunConfig cfg;
  cfg.clients = clients;
  cfg.settle = sim::msec(1200);
  cfg.warmup = scaled(sim::sec(1));
  cfg.measure = scaled(sim::sec(8));
  return cfg;
}

/// Finds the ~75%-of-max client count for a microbenchmark setup.
inline std::uint32_t find_clients(const MicroSetup& s, std::uint32_t start = 16,
                                  std::uint32_t max = 2048) {
  MicroConfig mc;
  mc.items_per_partition = s.items_per_partition;
  mc.global_fraction = s.global_fraction;
  return workload::find_operating_point(
      [&] { return make_micro_deployment(s); },
      [&] { return std::make_unique<MicroWorkload>(mc); }, probe_config(), 0.75, start, max);
}

/// Runs the microbenchmark at a given client count.
inline RunResult run_micro(const MicroSetup& s, std::uint32_t clients) {
  MicroConfig mc;
  mc.items_per_partition = s.items_per_partition;
  mc.global_fraction = s.global_fraction;
  MicroWorkload wl(mc);
  auto dep = make_micro_deployment(s);
  return workload::run_experiment(*dep, wl, final_config(clients));
}

/// Runs the microbenchmark, adjusting the client count so total committed
/// throughput lands within ~5% of `target_tput` (the paper holds load
/// constant when comparing delaying/reordering against the baseline:
/// an improved configuration serves the same load with fewer in-flight
/// clients, so its latency drops instead of its throughput rising).
inline RunResult run_micro_matched(const MicroSetup& s, std::uint32_t start_clients,
                                   double target_tput, std::uint32_t* used_clients = nullptr) {
  std::uint32_t clients = start_clients;
  RunResult r = run_micro(s, clients);
  for (int attempt = 0; attempt < 3; ++attempt) {
    const double tput = r.throughput();
    if (tput <= 0 || std::abs(tput - target_tput) / target_tput < 0.05) break;
    clients = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(static_cast<double>(clients) * target_tput / tput));
    r = run_micro(s, clients);
  }
  if (used_clients) *used_clients = clients;
  return r;
}

// --- Table formatting ---------------------------------------------------------

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Prints one row in the paper's style: throughput (tps), 99th percentile
/// (bars in the paper) and average (diamonds) latency in ms.
inline void print_class_row(const char* label, const RunResult& r, const std::string& cls) {
  std::printf("  %-28s tput=%8.0f tps   p99=%8.1f ms   avg=%8.1f ms   aborts=%llu\n", label,
              r.throughput(cls), static_cast<double>(r.p99(cls)) / 1000.0,
              static_cast<double>(r.mean(cls)) / 1000.0,
              static_cast<unsigned long long>(
                  r.classes.count(cls) ? r.classes.at(cls).aborted : 0));
}

/// Prints a latency CDF (paper Figure 2, right panels), downsampled.
inline void print_cdf(const char* label, const RunResult& r, const std::string& cls,
                      std::size_t points = 12) {
  auto it = r.classes.find(cls);
  if (it == r.classes.end() || it->second.latency.count() == 0) return;
  const auto cdf = it->second.latency.cdf();
  std::printf("  CDF %-26s", label);
  const std::size_t step = std::max<std::size_t>(1, cdf.size() / points);
  for (std::size_t i = 0; i < cdf.size(); i += step) {
    std::printf(" %.0fms:%.2f", static_cast<double>(cdf[i].first) / 1000.0, cdf[i].second);
  }
  std::printf(" %.0fms:1.00\n", static_cast<double>(cdf.back().first) / 1000.0);
}

}  // namespace sdur::bench
