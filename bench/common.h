// Shared helpers for the figure-reproduction benches.
//
// Every bench binary reproduces one table/figure from the paper's
// evaluation (Section VI). All of them follow the paper's methodology:
// closed-loop clients, results reported at ~75% of the saturation
// throughput (found by a probe-run search once per deployment/mix and
// reused across technique settings, matching "controlling the load to
// keep the throughput approximately constant").
//
// Durations scale with the SDUR_BENCH_SCALE environment variable
// (default 0.5; smaller = faster, noisier).
//
// Besides the human-readable tables on stdout, every bench writes its rows
// as BENCH_<name>.json (see BenchReport below) so the figure data can be
// consumed by scripts without scraping the text output.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sdur/technique_config.h"
#include "workload/driver.h"
#include "workload/microbench.h"
#include "workload/social.h"

namespace sdur::bench {

using workload::MicroConfig;
using workload::MicroWorkload;
using workload::RunConfig;
using workload::RunResult;
using workload::SocialConfig;
using workload::SocialWorkload;

/// Duration scale factor from SDUR_BENCH_SCALE. Defaults to 0.5, tuned so
/// the full figure suite finishes in tens of minutes on one core; raise
/// for tighter percentiles. Out-of-range (or unparseable) values are
/// clamped to [0.01, 100] with a warning rather than silently ignored.
inline double bench_scale() {
  static const double scale = [] {
    const char* env = std::getenv("SDUR_BENCH_SCALE");
    if (env == nullptr || *env == '\0') return 0.5;
    const double v = std::atof(env);
    if (v < 0.01 || v > 100.0) {
      const double clamped = v < 0.01 ? 0.01 : 100.0;
      std::fprintf(stderr, "SDUR_BENCH_SCALE=%s out of range [0.01, 100]; clamping to %g\n", env,
                   clamped);
      return clamped;
    }
    return v;
  }();
  return scale;
}

// --- Machine-readable output --------------------------------------------------

/// Collects the rows a bench prints and writes them to
/// $SDUR_BENCH_JSON_DIR/BENCH_<name>.json (default: current directory) at
/// exit. One report per binary, created by report_open() at the top of
/// main(); print_header() and print_class_row() feed the active report
/// automatically, benches with bespoke tables add rows explicitly.
class BenchReport {
 public:
  class Row {
   public:
    Row& num(const std::string& k, double v) {
      char buf[64];
      if (std::isfinite(v)) {
        std::snprintf(buf, sizeof(buf), "%.10g", v);
      } else {
        std::snprintf(buf, sizeof(buf), "null");
      }
      fields_.emplace_back(k, buf);
      return *this;
    }
    Row& str(const std::string& k, const std::string& v) {
      fields_.emplace_back(k, quote(v));
      return *this;
    }

   private:
    friend class BenchReport;
    static std::string quote(const std::string& s) {
      std::string out = "\"";
      for (char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20) {
          out += ' ';  // control chars never appear in labels; keep JSON valid
          continue;
        }
        out.push_back(c);
      }
      out.push_back('"');
      return out;
    }
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  explicit BenchReport(std::string name) : name_(std::move(name)) {}
  ~BenchReport() { flush(); }

  /// Appends a row; the current section (last print_header) is attached.
  Row& row() {
    rows_.emplace_back();
    if (!section_.empty()) rows_.back().str("section", section_);
    return rows_.back();
  }

  void set_section(const std::string& s) { section_ = s; }

  void flush() {
    if (flushed_) return;
    flushed_ = true;
    // Reports live under bench_json/ (run_benches.sh merges them into
    // TRAJECTORY.json there). With no explicit SDUR_BENCH_JSON_DIR, try
    // bench_json/ relative to the working directory first and fall back to
    // the working directory itself (e.g. ctest smoke runs in build/, which
    // has no bench_json/).
    const char* dir = std::getenv("SDUR_BENCH_JSON_DIR");
    const std::string file = "BENCH_" + name_ + ".json";
    std::string path;
    std::FILE* f = nullptr;
    if (dir && *dir) {
      path = std::string(dir) + "/" + file;
      f = std::fopen(path.c_str(), "w");
    } else {
      path = "bench_json/" + file;
      f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        path = file;
        f = std::fopen(path.c_str(), "w");
      }
    }
    if (f == nullptr) {
      std::fprintf(stderr, "BenchReport: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\"bench\":\"%s\",\"scale\":%.10g,\"rows\":[", name_.c_str(), bench_scale());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fputs(i == 0 ? "\n  {" : ",\n  {", f);
      const auto& fields = rows_[i].fields_;
      for (std::size_t j = 0; j < fields.size(); ++j) {
        std::fprintf(f, "%s%s:%s", j == 0 ? "" : ",", Row::quote(fields[j].first).c_str(),
                     fields[j].second.c_str());
      }
      std::fputc('}', f);
    }
    std::fputs(rows_.empty() ? "]}\n" : "\n]}\n", f);
    std::fclose(f);
  }

 private:
  std::string name_;
  std::string section_;
  std::deque<Row> rows_;  // deque: row() hands out stable references
  bool flushed_ = false;
};

inline BenchReport*& report_slot() {
  static BenchReport* active = nullptr;
  return active;
}

/// Opens this binary's report (call once at the top of main).
inline BenchReport& report_open(const std::string& name) {
  static BenchReport rep(name);
  report_slot() = &rep;
  return rep;
}

/// The active report, or nullptr when the binary opened none.
inline BenchReport* report() { return report_slot(); }

inline sim::Time scaled(sim::Time t) {
  return static_cast<sim::Time>(static_cast<double>(t) * bench_scale());
}

/// Knobs a figure sweeps over. Technique knobs live in `techniques`
/// (the single source of technique configuration, see
/// sdur/technique_config.h) — benches toggle `setup.techniques.<knob>`
/// or assign a whole `TechniqueConfig::preset(...)`.
struct MicroSetup {
  DeploymentSpec::Kind kind = DeploymentSpec::Kind::kWan1;
  PartitionId partitions = 2;
  double global_fraction = 0.1;
  std::uint64_t items_per_partition = 100'000;
  /// Key skew (Zipf theta; 0 = uniform) — contended cells shrink
  /// items_per_partition and raise this.
  double zipf = 0.0;
  TechniqueConfig techniques;
  std::uint64_t seed = 1;
  /// P-DUR multi-core replica model (src/pdur/): > 1 gives every server
  /// this many simulated cores and makes the workload core-aware.
  std::uint32_t pdur_cores = 1;
  /// Fraction of transactions whose keys deliberately span >= 2 cores
  /// (only meaningful with pdur_cores > 1).
  double cross_core_fraction = 0.0;
};

inline std::unique_ptr<Deployment> make_micro_deployment(const MicroSetup& s) {
  DeploymentSpec spec;
  spec.kind = s.kind;
  spec.partitions = s.partitions;
  spec.partitioning = MicroWorkload::make_partitioning(s.partitions, s.items_per_partition);
  spec.server.techniques = s.techniques;
  spec.server.pdur.cores = s.pdur_cores;
  spec.seed = s.seed;
  return std::make_unique<Deployment>(spec);
}

inline RunConfig probe_config() {
  RunConfig cfg;
  cfg.settle = sim::msec(1200);
  cfg.warmup = scaled(sim::sec(1));
  cfg.measure = scaled(sim::sec(4));
  return cfg;
}

inline RunConfig final_config(std::uint32_t clients) {
  RunConfig cfg;
  cfg.clients = clients;
  cfg.settle = sim::msec(1200);
  cfg.warmup = scaled(sim::sec(1));
  cfg.measure = scaled(sim::sec(8));
  return cfg;
}

/// Finds the ~75%-of-max client count for a microbenchmark setup.
inline std::uint32_t find_clients(const MicroSetup& s, std::uint32_t start = 16,
                                  std::uint32_t max = 2048) {
  MicroConfig mc;
  mc.items_per_partition = s.items_per_partition;
  mc.global_fraction = s.global_fraction;
  mc.zipf_theta = s.zipf;
  mc.cores = s.pdur_cores;
  mc.cross_core_fraction = s.cross_core_fraction;
  return workload::find_operating_point(
      [&] { return make_micro_deployment(s); },
      [&] { return std::make_unique<MicroWorkload>(mc); }, probe_config(), 0.75, start, max);
}

/// Runs the microbenchmark at a given client count.
inline RunResult run_micro(const MicroSetup& s, std::uint32_t clients) {
  MicroConfig mc;
  mc.items_per_partition = s.items_per_partition;
  mc.global_fraction = s.global_fraction;
  mc.zipf_theta = s.zipf;
  mc.cores = s.pdur_cores;
  mc.cross_core_fraction = s.cross_core_fraction;
  MicroWorkload wl(mc);
  auto dep = make_micro_deployment(s);
  return workload::run_experiment(*dep, wl, final_config(clients));
}

/// Runs the microbenchmark, adjusting the client count so total committed
/// throughput lands within ~5% of `target_tput` (the paper holds load
/// constant when comparing delaying/reordering against the baseline:
/// an improved configuration serves the same load with fewer in-flight
/// clients, so its latency drops instead of its throughput rising).
inline RunResult run_micro_matched(const MicroSetup& s, std::uint32_t start_clients,
                                   double target_tput, std::uint32_t* used_clients = nullptr) {
  std::uint32_t clients = start_clients;
  RunResult r = run_micro(s, clients);
  for (int attempt = 0; attempt < 3; ++attempt) {
    const double tput = r.throughput();
    if (tput <= 0 || std::abs(tput - target_tput) / target_tput < 0.05) break;
    clients = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(static_cast<double>(clients) * target_tput / tput));
    r = run_micro(s, clients);
  }
  if (used_clients) *used_clients = clients;
  return r;
}

// --- Table formatting ---------------------------------------------------------

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
  if (auto* rep = report()) rep->set_section(title);
}

/// Prints one row in the paper's style: throughput (tps), 99th percentile
/// (bars in the paper) and average (diamonds) latency in ms.
inline void print_class_row(const char* label, const RunResult& r, const std::string& cls) {
  const double aborts =
      static_cast<double>(r.classes.count(cls) ? r.classes.at(cls).aborted : 0);
  std::printf("  %-28s tput=%8.0f tps   p99=%8.1f ms   avg=%8.1f ms   aborts=%.0f\n", label,
              r.throughput(cls), static_cast<double>(r.p99(cls)) / 1000.0,
              static_cast<double>(r.mean(cls)) / 1000.0, aborts);
  if (auto* rep = report()) {
    rep->row()
        .str("label", label)
        .str("class", cls)
        .num("tput_tps", r.throughput(cls))
        .num("p99_ms", static_cast<double>(r.p99(cls)) / 1000.0)
        .num("avg_ms", static_cast<double>(r.mean(cls)) / 1000.0)
        .num("aborts", aborts);
  }
}

/// Prints a latency CDF (paper Figure 2, right panels), downsampled.
inline void print_cdf(const char* label, const RunResult& r, const std::string& cls,
                      std::size_t points = 12) {
  auto it = r.classes.find(cls);
  if (it == r.classes.end() || it->second.latency.count() == 0) return;
  const auto cdf = it->second.latency.cdf();
  std::printf("  CDF %-26s", label);
  const std::size_t step = std::max<std::size_t>(1, cdf.size() / points);
  for (std::size_t i = 0; i < cdf.size(); i += step) {
    std::printf(" %.0fms:%.2f", static_cast<double>(cdf[i].first) / 1000.0, cdf[i].second);
  }
  std::printf(" %.0fms:1.00\n", static_cast<double>(cdf.back().first) / 1000.0);
}

}  // namespace sdur::bench
