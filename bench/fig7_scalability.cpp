// DSN'12 scalability experiment: local-transaction throughput as the
// number of partitions grows (the headline property of the base SDUR
// paper: "local transactions scale linearly with the number of
// partitions, under certain workloads").
//
// LAN deployment, partitions in {1, 2, 4, 8}, with a local-only mix and a
// 10%-globals mix. Expected shape: near-linear growth at 0% globals,
// sublinear growth at 10% (global certification serializes across
// partitions).
#include "common.h"

using namespace sdur;
using namespace sdur::bench;

int main() {
  auto& rep = report_open("fig7_scalability");
  print_header("DSN'12 scalability — local throughput vs. partitions (LAN)");

  for (double mix : {0.0, 0.10}) {
    std::printf("\n%2.0f%% global transactions:\n", mix * 100);
    double base_tput = 0;
    for (PartitionId partitions : {1u, 2u, 4u, 8u}) {
      if (partitions == 1 && mix > 0) {
        std::printf("  %u partition(s): (skipped: no globals possible)\n", partitions);
        continue;
      }
      MicroSetup setup;
      setup.kind = DeploymentSpec::Kind::kLan;
      setup.partitions = partitions;
      setup.global_fraction = mix;
      setup.items_per_partition = 20'000;
      const std::uint32_t clients = find_clients(setup, 16, 4096);
      const RunResult r = run_micro(setup, clients);
      const double tput = r.throughput();
      if (base_tput == 0) base_tput = tput / partitions;
      std::printf(
          "  %u partition(s), %4u clients: total %8.0f tps (%.2fx per-partition baseline), "
          "local p99 %.1f ms\n",
          partitions, clients, tput, tput / (base_tput * partitions),
          static_cast<double>(r.p99("local")) / 1000.0);
      rep.row()
          .num("partitions", partitions)
          .num("global_fraction", mix)
          .num("clients", clients)
          .num("tput_tps", tput)
          .num("scaling_vs_baseline", tput / (base_tput * partitions))
          .num("p99_local_ms", static_cast<double>(r.p99("local")) / 1000.0);
    }
  }
  return 0;
}
