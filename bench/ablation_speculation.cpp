// Speculative global commit ablation (see DESIGN.md "Speculative global
// commit"): a locally-certified global applies its writes as speculative
// MVStore versions immediately and vacates the pending-list head, so the
// transactions delivered behind it stop paying the cross-region vote
// round trip; the votes later promote the versions (finalize) or undo
// them in place (rollback — nothing can have observed them, because
// reads serve only the stable prefix, which stalls below them).
//
// The sweep runs each global-mix / conflict cell twice (speculation off
// vs on) on WAN 1 with reorder_threshold = 0 — the configuration where
// global head-of-line blocking is purest — and reports for every arm
//   - committed throughput and the abort rate,
//   - the globals' commit_wait stage mean (ready -> speculated: with
//     speculation on, the wait moves into the spec_window stage),
//   - the globals' spec_window stage mean and local / global e2e means,
//   - the speculation counters (speculated / finalized / rolled back).
//
// The contended cell (small keyspace + Zipf skew, shared with
// bench/ablation_convoy_bypass) shows the technique under frequent
// conflicts and vote aborts.
//
// Flags:
//   --smoke   reduced sweep; used by the ablation_speculation_smoke ctest
//             entry. In both modes the binary exits non-zero when the
//             acceptance bar breaks: at 2 partitions / 10% globals /
//             low conflict, speculation must shrink the globals'
//             commit_wait stage mean by >= 2x while raising the abort
//             rate by at most 1 percentage point (with trace compiled
//             out, only the counter and abort-rate bars apply).
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common.h"
#include "trace/export.h"
#include "trace/trace.h"

using namespace sdur;
using namespace sdur::bench;

namespace {

struct ArmResult {
  double tput = 0;
  double abort_rate = 0;                  // aborted / (committed + aborted)
  double global_commit_wait_ms = -1;      // global-class stage mean; -1 = n/a
  double global_spec_window_ms = -1;
  double local_e2e_ms = -1;
  double global_e2e_ms = -1;
  std::uint64_t speculated = 0;
  std::uint64_t finalized = 0;
  std::uint64_t rolled_back = 0;
};

std::size_t stage_index(std::string_view name) {
  for (std::size_t s = 0; s < trace::Breakdown::kStages; ++s) {
    if (std::string_view(trace::Breakdown::stage_name(s)) == name) return s;
  }
  return trace::Breakdown::kStages;  // unreachable: the stage table names both
}

ArmResult run_arm(const MicroSetup& setup, std::uint32_t clients, std::size_t ring) {
#if SDUR_TRACE
  auto& tracer = trace::Tracer::instance();
  tracer.reset();
  tracer.set_ring_capacity(ring);
  tracer.set_enabled(true);
#else
  (void)ring;
#endif
  const RunResult r = run_micro(setup, clients);
  ArmResult out;
  out.tput = r.throughput();
  const double committed =
      static_cast<double>(r.servers.committed_local + r.servers.committed_global);
  const double aborted = static_cast<double>(r.servers.aborted);
  out.abort_rate = committed + aborted > 0 ? aborted / (committed + aborted) : 0.0;
  out.speculated = r.servers.speculated_globals;
  out.finalized = r.servers.spec_commits;
  out.rolled_back = r.servers.spec_aborts;
#if SDUR_TRACE
  tracer.set_enabled(false);
  const trace::Breakdown b = trace::build_breakdown(tracer);
  tracer.reset();  // free the ring before the next arm
  if (b.global.chains > 0) {
    out.global_commit_wait_ms = b.global.stage[stage_index("commit_wait")].mean() / 1000.0;
    out.global_spec_window_ms = b.global.stage[stage_index("spec_window")].mean() / 1000.0;
    out.global_e2e_ms = b.global.e2e.mean() / 1000.0;
  }
  if (b.local.chains > 0) out.local_e2e_ms = b.local.e2e.mean() / 1000.0;
#endif
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") smoke = true;
  }
  auto& rep = report_open("speculation");
  print_header("Speculative global commit ablation (WAN 1, reordering off)");

  struct Cell {
    double global_fraction;
    std::uint64_t items;
    double zipf;
    const char* conflict;
  };
  std::vector<Cell> cells = {{0.1, 100'000, 0.0, "low"}};
  if (!smoke) {
    cells.push_back({0.3, 100'000, 0.0, "low"});
    cells.push_back({0.1, 2'000, 0.99, "zipf"});  // contended cell (shared
                                                  // with ablation_convoy_bypass)
  }
  const std::uint32_t clients = smoke ? 48 : 96;
  const std::size_t ring = smoke ? (1u << 18) : (1u << 20);

  bool ok = true;
  for (const Cell& cell : cells) {
    std::printf("\n2 partitions, %.0f%% global, %s conflict, %u clients:\n",
                cell.global_fraction * 100, cell.conflict, clients);
    ArmResult off;
    for (const bool speculate : {false, true}) {
      MicroSetup setup;
      setup.kind = DeploymentSpec::Kind::kWan1;
      setup.partitions = 2;
      setup.global_fraction = cell.global_fraction;
      setup.items_per_partition = cell.items;
      setup.zipf = cell.zipf;
      setup.techniques.reorder_threshold = 0;
      setup.techniques.speculation = speculate;
      const ArmResult r = run_arm(setup, clients, ring);

      std::printf(
          "  %-8s tput=%8.0f tps  global commit_wait=%8.2f ms  spec_window=%7.2f ms  "
          "local e2e=%6.1f ms  global e2e=%6.1f ms  aborts=%5.2f%%  spec=%llu/%llu/%llu\n",
          speculate ? "spec" : "off", r.tput, r.global_commit_wait_ms, r.global_spec_window_ms,
          r.local_e2e_ms, r.global_e2e_ms, r.abort_rate * 100,
          static_cast<unsigned long long>(r.speculated),
          static_cast<unsigned long long>(r.finalized),
          static_cast<unsigned long long>(r.rolled_back));
      rep.row()
          .str("label", speculate ? "spec" : "off")
          .str("conflict", cell.conflict)
          .num("global_fraction", cell.global_fraction)
          .num("zipf", cell.zipf)
          .num("clients", clients)
          .num("tput_tps", r.tput)
          .num("global_commit_wait_ms", r.global_commit_wait_ms)
          .num("global_spec_window_ms", r.global_spec_window_ms)
          .num("local_e2e_ms", r.local_e2e_ms)
          .num("global_e2e_ms", r.global_e2e_ms)
          .num("abort_rate", r.abort_rate)
          .num("speculated", static_cast<double>(r.speculated))
          .num("spec_finalized", static_cast<double>(r.finalized))
          .num("spec_rolled_back", static_cast<double>(r.rolled_back));

      if (!speculate) {
        off = r;
        continue;
      }
      // Acceptance bar, checked at the headline cell (2 partitions / 10%
      // globals / low conflict). Other cells are reported but not gated.
      if (cell.zipf != 0.0 || cell.global_fraction != 0.1) continue;
      if (r.speculated == 0) {
        std::fprintf(stderr,
                     "ablation_speculation: speculation arm speculated no global at "
                     "%.0f%% globals — the blocking scenario never arose\n",
                     cell.global_fraction * 100);
        ok = false;
      }
      const bool attributed = off.global_commit_wait_ms > 0 && r.global_commit_wait_ms >= 0;
      if (attributed && r.global_commit_wait_ms > off.global_commit_wait_ms / 2.0) {
        std::fprintf(stderr,
                     "ablation_speculation: globals' commit_wait only moved %.2f -> %.2f ms "
                     "(bar: >= 2x shrink)\n",
                     off.global_commit_wait_ms, r.global_commit_wait_ms);
        ok = false;
      }
      if (r.abort_rate > off.abort_rate + 0.01) {
        std::fprintf(stderr,
                     "ablation_speculation: abort rate rose %.2f%% -> %.2f%% "
                     "(bar: <= +1 percentage point)\n",
                     off.abort_rate * 100, r.abort_rate * 100);
        ok = false;
      }
    }
  }
  return ok ? 0 : 1;
}
