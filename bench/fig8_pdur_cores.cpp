// P-DUR core-scaling experiment ("Figure 8"; arXiv:1312.0742, Section V):
// local-transaction throughput as the number of simulated cores per
// replica grows, for different fractions of cross-core transactions.
//
// LAN deployment, a single partition (the experiment isolates the
// intra-replica parallelism; partition scaling is fig7), cores in
// {1, 2, 4, 8}. Expected shape: near-linear growth when every transaction
// is homed on one core (0% cross-core), degrading gracefully as the
// cross-core fraction rises — spanning transactions serialize the involved
// cores behind a deterministic vote/barrier.
#include <string_view>

#include "common.h"

using namespace sdur;
using namespace sdur::bench;

int main(int argc, char** argv) {
  // --smoke: reduced sweep with a fixed client count (no saturation search),
  // used by the fig8_smoke ctest entry to exercise the multi-core path fast.
  const bool smoke = argc > 1 && std::string_view(argv[1]) == "--smoke";
  auto& rep = report_open("fig8_pdur_cores");
  print_header("P-DUR — local throughput vs. simulated cores (LAN, 1 partition)");

  const std::vector<double> crosses = smoke ? std::vector<double>{0.20} : std::vector<double>{0.0, 0.05, 0.20};
  const std::vector<std::uint32_t> core_counts =
      smoke ? std::vector<std::uint32_t>{1, 4} : std::vector<std::uint32_t>{1, 2, 4, 8};
  for (double cross : crosses) {
    std::printf("\n%2.0f%% cross-core transactions:\n", cross * 100);
    double base_tput = 0;
    for (std::uint32_t cores : core_counts) {
      MicroSetup setup;
      setup.kind = DeploymentSpec::Kind::kLan;
      setup.partitions = 1;
      setup.global_fraction = 0.0;
      setup.items_per_partition = 20'000;
      setup.pdur_cores = cores;
      setup.cross_core_fraction = cross;
      const std::uint32_t clients = smoke ? 48 : find_clients(setup, 16, 4096);
      const RunResult r = run_micro(setup, clients);
      const double tput = r.throughput();
      if (base_tput == 0) base_tput = tput;  // 1-core baseline of this mix
      std::printf(
          "  %u core(s), %4u clients: %8.0f tps (%.2fx 1-core), local p99 %6.2f ms, "
          "single/cross-core %llu/%llu\n",
          cores, clients, tput, base_tput > 0 ? tput / base_tput : 0,
          static_cast<double>(r.p99("local")) / 1000.0,
          static_cast<unsigned long long>(r.servers.pdur_single_core),
          static_cast<unsigned long long>(r.servers.pdur_cross_core));
      rep.row()
          .num("cores", cores)
          .num("cross_fraction", cross)
          .num("clients", clients)
          .num("tput_tps", tput)
          .num("speedup_vs_1core", base_tput > 0 ? tput / base_tput : 0)
          .num("p99_local_ms", static_cast<double>(r.p99("local")) / 1000.0)
          .num("single_core_txns", static_cast<double>(r.servers.pdur_single_core))
          .num("cross_core_txns", static_cast<double>(r.servers.pdur_cross_core));
    }
  }
  return 0;
}
