// Figure 5: reordering in WAN 2.
//
// For global mixes {1%, 10%, 50%} and reorder thresholds R in {baseline,
// 40, 80, 120}, throughput and latency of local and global transactions.
//
// Expected shape (paper Section VI-D): locals improve (229 -> 161 ms p99
// at 10% in the paper) but, unlike WAN 1, there is a visible tradeoff: the
// latency of globals grows slightly as locals leap them.
#include "common.h"

using namespace sdur;
using namespace sdur::bench;

int main() {
  report_open("fig5_reorder_wan2");
  const double mixes[] = {0.01, 0.10, 0.50};
  const std::uint32_t thresholds[] = {0, 40, 80, 120};

  print_header("Figure 5 — reordering transactions, WAN 2");

  for (double mix : mixes) {
    MicroSetup base;
    base.kind = DeploymentSpec::Kind::kWan2;
    base.global_fraction = mix;
    const std::uint32_t clients = find_clients(base);

    const RunResult baseline = run_micro(base, clients);
    const double target = baseline.throughput();
    std::printf("\n%2.0f%% globals (~%.0f tps held constant):\n", mix * 100, target);
    for (std::uint32_t threshold : thresholds) {
      MicroSetup setup = base;
      setup.techniques.reorder_threshold = threshold;
      const RunResult r = threshold == 0 ? baseline : run_micro_matched(setup, clients, target);
      char label[64];
      std::snprintf(label, sizeof(label), "%s / locals",
                    threshold == 0 ? "baseline" : ("R=" + std::to_string(threshold)).c_str());
      print_class_row(label, r, "local");
      std::snprintf(label, sizeof(label), "         globals");
      print_class_row(label, r, "global");
    }
  }
  return 0;
}
