// Component microbenchmarks (google-benchmark): the hot paths of the
// library — certification, bloom filters, the multiversion store, the
// wire codec and the latency histogram.
#include <benchmark/benchmark.h>

#include "sdur/certifier.h"
#include "storage/mvstore.h"
#include "util/bloom.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace sdur;

PartTx bench_tx(TxId id, Key k1, Key k2, Version snapshot, bool global) {
  PartTx t;
  t.id = id;
  t.involved = global ? std::vector<PartitionId>{0, 1} : std::vector<PartitionId>{0};
  t.snapshot = snapshot;
  t.readset = util::KeySet::exact({k1, k2});
  t.write_keys = util::KeySet::exact({k1, k2});
  t.writes = {{k1, "valu"}, {k2, "valu"}};
  return t;
}

void BM_CertifierProcessCommit(benchmark::State& state) {
  Certifier cert(100'000);
  util::Rng rng(1);
  std::uint64_t dc = 0;
  TxId id = 1;
  for (auto _ : state) {
    ++dc;
    const Key k1 = rng.below(1'000'000);
    const Key k2 = rng.below(1'000'000);
    auto r = cert.process(bench_tx(id++, k1, k2, cert.stable(), false), dc, dc);
    benchmark::DoNotOptimize(r);
    if (!cert.empty()) cert.resolve(cert.pop_head(), true);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CertifierProcessCommit);

void BM_CertifierScanDepth(benchmark::State& state) {
  // Certification cost as a function of how stale the snapshot is (scan
  // depth through the committed window).
  const auto depth = static_cast<Version>(state.range(0));
  Certifier cert(100'000);
  util::Rng rng(1);
  std::uint64_t dc = 0;
  for (Version v = 0; v < depth + 8; ++v) {
    ++dc;
    cert.process(bench_tx(1000 + static_cast<TxId>(v), rng.below(1'000'000),
                          rng.below(1'000'000), cert.stable(), false),
                 dc, dc);
    cert.resolve(cert.pop_head(), true);
  }
  TxId id = 1;
  for (auto _ : state) {
    ++dc;
    const Version snapshot = cert.stable() - depth;
    auto r = cert.process(bench_tx(id++, rng.below(1'000'000), rng.below(1'000'000),
                                   snapshot, false),
                          dc, dc);
    benchmark::DoNotOptimize(r);
    if (!cert.empty()) cert.resolve(cert.pop_head(), true);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CertifierScanDepth)->Arg(8)->Arg(64)->Arg(512);

void BM_BloomInsertQuery(benchmark::State& state) {
  util::BloomFilter f = util::BloomFilter::for_capacity(1024, 0.01);
  util::Rng rng(2);
  for (auto _ : state) {
    const std::uint64_t k = rng.next();
    f.insert(k);
    benchmark::DoNotOptimize(f.may_contain(k + 1));
    if (f.count() > 1024) f.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomInsertQuery);

void BM_KeySetIntersectExact(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<std::uint64_t> a, b;
  for (int i = 0; i < 64; ++i) {
    a.push_back(rng.next());
    b.push_back(rng.next());
  }
  const auto sa = util::KeySet::exact(a);
  const auto sb = util::KeySet::exact(b);
  for (auto _ : state) benchmark::DoNotOptimize(sa.intersects(sb));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeySetIntersectExact);

void BM_MVStoreSnapshotRead(benchmark::State& state) {
  storage::MVStore store;
  util::Rng rng(4);
  for (Key k = 0; k < 100'000; ++k) store.load(k, "init");
  for (Version v = 1; v <= 50'000; ++v) store.put(rng.below(100'000), "upd", v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.get(rng.below(100'000), 25'000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MVStoreSnapshotRead);

void BM_PartTxCodec(benchmark::State& state) {
  const PartTx t = bench_tx(42, 1, 2, 100, true);
  for (auto _ : state) {
    const auto bytes = t.encode();
    benchmark::DoNotOptimize(PartTx::decode(bytes));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PartTxCodec);

void BM_HistogramRecord(benchmark::State& state) {
  util::Histogram h;
  util::Rng rng(5);
  for (auto _ : state) h.record(static_cast<std::int64_t>(rng.below(1'000'000)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

}  // namespace

BENCHMARK_MAIN();
