// Ablation: Paxos batching and pipelining.
//
// The leader packs forwarded values into batches (one Paxos instance
// carries up to max_batch transactions) and keeps up to pipeline_window
// instances in flight. This bench shows how both knobs shape throughput
// and latency on a LAN, where the ordering layer is the bottleneck.
#include "common.h"

using namespace sdur;
using namespace sdur::bench;

namespace {

void run_case(std::size_t max_batch, std::size_t pipeline) {
  DeploymentSpec spec;
  spec.kind = DeploymentSpec::Kind::kLan;
  spec.partitions = 2;
  const std::uint64_t items = 20'000;
  spec.partitioning = MicroWorkload::make_partitioning(2, items);
  spec.max_batch = max_batch;
  spec.pipeline_window = pipeline;

  MicroConfig mc;
  mc.items_per_partition = items;
  mc.global_fraction = 0.0;
  MicroWorkload wl(mc);
  Deployment dep(spec);
  const RunResult r = workload::run_experiment(dep, wl, final_config(256));

  std::printf("  batch=%3zu pipeline=%3zu: %8.0f tps   local p99=%7.1f ms avg=%6.1f ms\n",
              max_batch, pipeline, r.throughput(),
              static_cast<double>(r.p99("local")) / 1000.0,
              static_cast<double>(r.mean("local")) / 1000.0);
  if (auto* rep = report()) {
    rep->row()
        .num("max_batch", static_cast<double>(max_batch))
        .num("pipeline_window", static_cast<double>(pipeline))
        .num("tput_tps", r.throughput())
        .num("p99_local_ms", static_cast<double>(r.p99("local")) / 1000.0)
        .num("avg_local_ms", static_cast<double>(r.mean("local")) / 1000.0);
  }
}

}  // namespace

int main() {
  report_open("ablation_batching");
  print_header("Ablation — Paxos batching/pipelining (LAN, 0% globals, 256 clients)");
  run_case(1, 8);
  run_case(1, 64);
  run_case(16, 8);
  run_case(16, 64);
  run_case(64, 8);
  run_case(64, 64);
  return 0;
}
