// Vote-exchange batching ablation (see DESIGN.md "Vote exchange &
// batching"): sweeps the vote batcher's flush interval against the legacy
// per-transaction vote unicast, across partition counts and global mix,
// and reports for every arm
//   - committed throughput,
//   - wire messages that exist only to carry votes (kVote unicasts +
//     kVoteBatch flushes; piggybacked votes ride messages that were being
//     sent anyway and cost nothing),
//   - how the votes travelled (batched vs piggybacked vs repair unicasts),
//   - the commit_wait stage mean of global transactions from the trace
//     breakdown (ready -> completed: vote arrival + reorder threshold).
//
// The interval sweep exposes the tradeoff the batcher navigates: longer
// windows collapse more messages (and hand more votes to free piggyback
// rides, especially past the 10ms gossip period) but defer vote sends;
// under load the reorder threshold and the receiver's CPU queue hide that
// deferral, so vote messages drop multiples before commit_wait moves.
//
// Flags:
//   --smoke   reduced sweep; used by the ablation_vote_batching_smoke
//             ctest entry. In both modes the binary exits non-zero when
//             the acceptance bar breaks: some batching arm must move >= 4x
//             fewer vote messages than legacy without increasing the
//             global commit_wait mean by more than 5%.
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common.h"
#include "sdur/messages.h"
#include "trace/export.h"
#include "trace/trace.h"

using namespace sdur;
using namespace sdur::bench;

namespace {

struct Arm {
  const char* label;
  bool batching;
  sim::Time interval;  // 0 = ServerConfig default (only with batching on)
};

struct ArmResult {
  double tput = 0;
  std::uint64_t vote_messages = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t votes_batched = 0;
  std::uint64_t votes_piggybacked = 0;
  std::uint64_t repair_unicasts = 0;
  double commit_wait_ms = -1;  // global-class stage mean; -1 = not attributed
  std::uint64_t chains = 0;
};

std::size_t commit_wait_stage() {
  for (std::size_t s = 0; s < trace::Breakdown::kStages; ++s) {
    if (std::string_view(trace::Breakdown::stage_name(s)) == "commit_wait") return s;
  }
  return trace::Breakdown::kStages;  // unreachable: the stage table names it
}

ArmResult run_arm(const MicroSetup& setup, std::uint32_t clients, std::size_t ring) {
#if SDUR_TRACE
  auto& tracer = trace::Tracer::instance();
  tracer.reset();
  tracer.set_ring_capacity(ring);
  tracer.set_enabled(true);
#else
  (void)ring;
#endif
  const RunResult r = run_micro(setup, clients);
  ArmResult out;
  out.tput = r.throughput();
  out.vote_messages = r.net.per_type_count.at(msgtype::kVote) +
                      r.net.per_type_count.at(msgtype::kVoteBatch);
  out.messages_sent = r.net.messages_sent;
  out.votes_batched = r.servers.votes_batched;
  out.votes_piggybacked = r.servers.votes_piggybacked;
  out.repair_unicasts = setup.techniques.vote_batching ? r.net.per_type_count.at(msgtype::kVote) : 0;
#if SDUR_TRACE
  tracer.set_enabled(false);
  const trace::Breakdown b = trace::build_breakdown(tracer);
  tracer.reset();  // free the ring before the next arm
  out.chains = b.global.chains;
  if (b.global.chains > 0) {
    out.commit_wait_ms = b.global.stage[commit_wait_stage()].mean() / 1000.0;
  }
#endif
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") smoke = true;
  }
  auto& rep = report_open("vote_batching");
  print_header("Vote-exchange batching ablation (LAN, near saturation)");

  const std::vector<Arm> arms =
      smoke ? std::vector<Arm>{{"off", false, 0},
                               {"batch-1ms", true, sim::msec(1)},
                               {"batch-20ms", true, sim::msec(20)}}
            : std::vector<Arm>{{"off", false, 0},
                               {"batch-1ms", true, sim::msec(1)},
                               {"batch-2ms", true, sim::msec(2)},
                               {"batch-3ms", true, sim::msec(3)},
                               {"batch-5ms", true, sim::msec(5)},
                               {"batch-10ms", true, sim::msec(10)}};
  const std::vector<PartitionId> partition_counts =
      smoke ? std::vector<PartitionId>{2} : std::vector<PartitionId>{2, 4};
  const std::vector<double> global_fractions =
      smoke ? std::vector<double>{0.2} : std::vector<double>{0.1, 0.2};
  const std::uint32_t base_clients = smoke ? 32 : 96;
  const std::size_t ring = smoke ? (1u << 18) : (1u << 20);

  bool ok = true;
  for (PartitionId parts : partition_counts) {
    for (double gf : global_fractions) {
      const std::uint32_t clients = base_clients * parts / 2;
      std::printf("\n%u partitions, %.0f%% global, %u clients:\n", parts, gf * 100, clients);
      double off_votes = 0, off_wait = -1;
      bool config_ok = false;
      double best_ratio = 0, best_ratio_wait = -1;
      for (const Arm& arm : arms) {
        MicroSetup setup;
        setup.kind = DeploymentSpec::Kind::kLan;
        setup.partitions = parts;
        setup.global_fraction = gf;
        setup.items_per_partition = 20'000;
        setup.techniques.reorder_threshold = 32;
        setup.techniques.vote_batching = arm.batching;
        if (arm.interval > 0) setup.techniques.vote_batch_interval = arm.interval;
        const ArmResult r = run_arm(setup, clients, ring);

        const double ratio =
            arm.batching && r.vote_messages > 0
                ? off_votes / static_cast<double>(r.vote_messages)
                : (arm.batching ? off_votes : 1.0);
        std::printf(
            "  %-12s tput=%8.0f tps  vote-msgs=%8llu (%5.2fx)  batched=%7llu  "
            "piggybacked=%7llu  repair=%5llu  commit_wait=%7.1f ms (%llu chains)\n",
            arm.label, r.tput, static_cast<unsigned long long>(r.vote_messages),
            arm.batching ? ratio : 1.0, static_cast<unsigned long long>(r.votes_batched),
            static_cast<unsigned long long>(r.votes_piggybacked),
            static_cast<unsigned long long>(r.repair_unicasts), r.commit_wait_ms,
            static_cast<unsigned long long>(r.chains));
        rep.row()
            .str("label", arm.label)
            .num("partitions", parts)
            .num("global_fraction", gf)
            .num("clients", clients)
            .num("tput_tps", r.tput)
            .num("vote_messages", static_cast<double>(r.vote_messages))
            .num("vote_msg_reduction", arm.batching ? ratio : 1.0)
            .num("messages_sent", static_cast<double>(r.messages_sent))
            .num("votes_batched", static_cast<double>(r.votes_batched))
            .num("votes_piggybacked", static_cast<double>(r.votes_piggybacked))
            .num("commit_wait_ms", r.commit_wait_ms);

        if (!arm.batching) {
          off_votes = static_cast<double>(r.vote_messages);
          off_wait = r.commit_wait_ms;
        } else {
          if (ratio > best_ratio) {
            best_ratio = ratio;
            best_ratio_wait = r.commit_wait_ms;
          }
          // Acceptance: >= 4x fewer vote messages without inflating the
          // global commit_wait mean (5% tolerance; with trace compiled
          // out only the message bar applies).
          const bool wait_ok =
              off_wait < 0 || r.commit_wait_ms < 0 || r.commit_wait_ms <= off_wait * 1.05;
          if (ratio >= 4.0 && wait_ok) config_ok = true;
        }
      }
      if (!config_ok) {
        std::fprintf(stderr,
                     "ablation_vote_batching: no arm at %u partitions / %.0f%% globals reached "
                     "4x fewer vote messages without raising commit_wait (best %.2fx, "
                     "commit_wait %.1f ms vs off %.1f ms)\n",
                     parts, gf * 100, best_ratio, best_ratio_wait, off_wait);
        ok = false;
      }
    }
  }
  return ok ? 0 : 1;
}
